// Workflow interchange: export the Montage instance as WfCommons-style
// JSON, load it back, and simulate custom workflows from JSON files.
//
//   $ ./workflow_json [path/to/workflow.json]
//
// With no argument, exports out/montage.json, reloads it, verifies the
// round trip simulates identically, and then runs a small hand-written
// JSON workflow to show the import path. With an argument, loads that
// file and reports its structure and simulated execution.
#include <filesystem>
#include <iostream>

#include <algorithm>

#include "core/table.hpp"
#include "wfsim/montage.hpp"
#include "wfsim/schedule.hpp"
#include "wfsim/wfjson.hpp"

namespace {

using namespace peachy;
using namespace peachy::wf;

void report(const Workflow& wf, const char* label) {
  const Platform plat = eduwrench_platform();
  RunConfig cfg;
  cfg.nodes_on = std::min(16, plat.cluster.total_nodes);
  cfg.pstate = plat.max_pstate();
  const SimResult r = simulate(wf, plat, cfg);
  TextTable t({"property", "value"});
  t.row({"workflow", label});
  t.row({"tasks", TextTable::num(static_cast<std::int64_t>(wf.num_tasks()))});
  t.row({"files", TextTable::num(static_cast<std::int64_t>(wf.num_files()))});
  t.row({"levels", TextTable::num(static_cast<std::int64_t>(wf.num_levels()))});
  t.row({"width", TextTable::num(static_cast<std::int64_t>(wf.width()))});
  t.row({"data (GB)", TextTable::num(wf.total_bytes() / 1e9, 3)});
  t.row({"work (Tflop)", TextTable::num(wf.total_flops() / 1e12, 3)});
  t.row({"time on 16 nodes @ p6 (s)", TextTable::num(r.makespan_s, 1)});
  t.row({"gCO2e", TextTable::num(r.total_gco2, 1)});
  t.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    const Workflow wf = load_workflow(argv[1]);
    report(wf, argv[1]);
    return 0;
  }

  std::filesystem::create_directories("out");

  // Export + reload the paper's instance.
  const Workflow montage = make_montage();
  save_workflow(montage, "out/montage.json", "montage-738");
  const Workflow reloaded = load_workflow("out/montage.json");
  std::cout << "exported out/montage.json and reloaded it\n\n";
  report(reloaded, "montage-738 (via JSON round trip)");

  // Import a hand-written workflow.
  const Workflow custom = from_json(json::parse(R"({
    "name": "diamond-example",
    "files": [
      {"name": "input.dat",  "sizeInBytes": 2e8},
      {"name": "left.dat",   "sizeInBytes": 5e7},
      {"name": "right.dat",  "sizeInBytes": 5e7},
      {"name": "result.dat", "sizeInBytes": 1e6}
    ],
    "tasks": [
      {"name": "split",  "runtimeInFlops": 2e10,
       "inputFiles": ["input.dat"], "outputFiles": ["left.dat", "right.dat"]},
      {"name": "work_l", "runtimeInFlops": 8e10,
       "inputFiles": ["left.dat"], "outputFiles": []},
      {"name": "work_r", "runtimeInFlops": 8e10,
       "inputFiles": ["right.dat"], "outputFiles": ["result.dat"]},
      {"name": "merge",  "runtimeInFlops": 1e10,
       "inputFiles": ["result.dat"], "outputFiles": []}
    ]
  })"));
  report(custom, "diamond-example (hand-written JSON)");
  std::cout << "pass a JSON path to simulate your own workflow: "
               "./workflow_json my_workflow.json\n";
  return 0;
}
