// EASYPAP-style command-line driver for the sandpile kernel.
//
// Mirrors the workflow the paper's student quote praises ("We just add a
// few lines of code, we compile and it is ready for command line
// testing"): pick a variant and a configuration on the command line, run,
// and inspect images/traces/plots.
//
//   $ ./easypap_cli --variant omp-lazy-sync --size 512 --tile 32 \
//                   --config center --grains 100000 \
//                   --dump out/state.ppm --trace out/trace.json \
//                   --metrics out/metrics.txt \
//                   --monitor out/iters.csv --check
//
// Options:
//   --variant NAME   one of the 8 solver variants (default omp-lazy-sync)
//   --config NAME    center | uniform | sparse (default center)
//   --size N         grid side (default 256)
//   --grains G       grains for center/uniform configs (default 100000)
//   --density D      sparse config density (default 0.02)
//   --seed S         sparse config seed (default 42)
//   --tile T         tile side (default 32)
//   --threads N      OpenMP threads (default: runtime default)
//   --schedule P     static | static1 | dynamic | guided | ws
//                    (default dynamic; ws = work-stealing task runtime)
//   --iterations N   cap iterations (default: run to fixed point)
//   --dump PATH      write the final state as PPM
//   --trace PATH     write the per-task trace; a .json path produces a
//                    Chrome trace-event file (open in Perfetto or
//                    chrome://tracing) with runtime spans merged in, any
//                    other path the per-task CSV
//   --metrics PATH   write the obs::Registry counters after the run; a
//                    .json path dumps JSON, any other path Prometheus text
//   --monitor PATH   write per-iteration wall times CSV
//   --check          verify against the sequential reference
//   --list           list variants and exit
//
// Distributed mode (replaces the variant run when --ranks is given):
//   --ranks N            distribute over N message-passing ranks (1-D)
//   --halo K             ghost-cell halo depth (default 1)
//   --transport NAME     inproc | tcp (default inproc)
//   --spawn              ranks are real worker processes (implies tcp)
//   --net-window W       unacked frames per peer on the tcp wire
//                        (default 32; 1 = stop-and-wait)
//   --net-fault-seed S   seeded frame drop/duplication on the tcp wire
//   --net-fault-drop P        explicit frame drop probability [0,1]
//   --net-fault-dup P         explicit frame duplication probability
//   --net-fault-sever-after N hard-kill each link after its Nth frame
//   --checkpoint-every N cut a checkpoint every N exchange rounds
//   --max-restarts M     respawn+restore a failed world up to M times
//   --checkpoint-dir P   keep checkpoints in P (enables resuming an
//                        interrupted run on the next invocation)
//   --platform FILE      machine-model JSON (src/machine codec): report the
//                        model's predicted halo-exchange cost next to the
//                        measured run (calibrate a file with
//                        bench_machine_model, then compare)
#include <algorithm>
#include <iostream>

#include "core/args.hpp"
#include "core/table.hpp"
#include "machine/codec.hpp"
#include "pap/monitor.hpp"
#include "sandpile/distributed.hpp"
#include "sandpile/field.hpp"
#include "sandpile/variants.hpp"
#include "trace/trace.hpp"

namespace {

using namespace peachy;
using namespace peachy::sandpile;

Variant variant_by_name(const std::string& name) {
  for (Variant v : all_variants())
    if (to_string(v) == name) return v;
  throw Error("unknown variant \"" + name + "\" (use --list)");
}

pap::Schedule schedule_by_name(const std::string& name) {
  if (name == "static") return pap::Schedule::kStatic;
  if (name == "static1") return pap::Schedule::kStaticChunk1;
  if (name == "dynamic") return pap::Schedule::kDynamic;
  if (name == "guided") return pap::Schedule::kGuided;
  if (name == "ws" || name == "workstealing")
    return pap::Schedule::kWorkStealing;
  throw Error("unknown schedule \"" + name + "\"");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::set<std::string> flags = {"check", "list", "spawn"};
    const Args args(argc, argv, flags);
    const auto unknown = args.unknown_options(
        {"variant", "config", "size", "grains", "density", "seed", "tile",
         "threads", "schedule", "iterations", "dump", "trace", "metrics",
         "monitor", "check", "list", "ranks", "halo", "transport", "spawn",
         "net-window", "net-fault-seed", "net-fault-drop", "net-fault-dup",
         "net-fault-sever-after", "checkpoint-every", "max-restarts",
         "checkpoint-dir", "metrics-port", "metrics-port-file", "platform"});
    if (!unknown.empty()) {
      std::cerr << "unknown option --" << unknown.front() << "\n";
      return 2;
    }
    if (args.has("list")) {
      for (Variant v : all_variants()) std::cout << to_string(v) << "\n";
      return 0;
    }

    const int size = args.get_int("size", 256);
    const auto grains =
        static_cast<Cell>(args.get_int("grains", 100000));
    const std::string config = args.get("config", "center");

    Field field = [&]() -> Field {
      if (config == "center") return center_pile(size, size, grains);
      if (config == "uniform") return uniform_pile(size, size, grains);
      if (config == "sparse")
        return sparse_random_pile(
            size, size, args.get_double("density", 0.02), 4,
            std::max<Cell>(8, grains / 100),
            static_cast<std::uint64_t>(args.get_int("seed", 42)));
      throw Error("unknown config \"" + config + "\"");
    }();
    const Field initial = field;

    if (args.has("ranks")) {
      // Distributed mode: the grid is block-partitioned over message-passing
      // ranks instead of tiled over OpenMP threads.
      DistributedOptions opt;
      opt.ranks = args.get_int("ranks", 2);
      opt.halo_depth = args.get_int("halo", 1);
      opt.run.transport =
          mpp::transport_from_string(args.get("transport", "inproc"));
      opt.run.spawn = args.has("spawn");
      if (opt.run.spawn) opt.run.transport = mpp::TransportKind::kTcp;
      // --net-fault-seed alone keeps the legacy 2% drop/dup demo; any
      // explicit knob switches to exactly the requested plan.
      const auto fault_seed =
          static_cast<std::uint64_t>(args.get_int("net-fault-seed", 0));
      const bool explicit_plan = args.has("net-fault-drop") ||
                                 args.has("net-fault-dup") ||
                                 args.has("net-fault-sever-after");
      if (explicit_plan) {
        opt.run.tcp.fault.seed = fault_seed ? fault_seed : 1;
        opt.run.tcp.fault.drop = args.get_double("net-fault-drop", 0.0);
        opt.run.tcp.fault.duplicate = args.get_double("net-fault-dup", 0.0);
        opt.run.tcp.fault.sever_after =
            args.get_int("net-fault-sever-after", -1);
        opt.run.tcp.ack_timeout_ms = 20;
      } else if (fault_seed) {
        opt.run.tcp.fault.seed = fault_seed;
        opt.run.tcp.fault.drop = 0.02;
        opt.run.tcp.fault.duplicate = 0.02;
        opt.run.tcp.ack_timeout_ms = 20;
      }
      opt.run.tcp.window_frames = std::max(
          1, args.get_int("net-window", opt.run.tcp.window_frames));
      opt.checkpoint_every = args.get_int("checkpoint-every", 0);
      opt.run.resilience.max_restarts = args.get_int("max-restarts", 0);
      opt.run.resilience.checkpoint_dir = args.get("checkpoint-dir", "");
      // In distributed mode --trace means the *cluster* trace: rank 0
      // merges every rank's spans into one clock-corrected Perfetto file.
      // --metrics-port serves the rank-labeled rollup live at /metrics.
      const std::string cluster_trace = args.get("trace", "");
      const int metrics_port = args.get_int("metrics-port", -1);
      if (!cluster_trace.empty() || metrics_port >= 0) {
        opt.run.telemetry.enabled = true;
        opt.run.telemetry.trace_path = cluster_trace;
        opt.run.telemetry.metrics_port = metrics_port;
        opt.run.telemetry.port_file = args.get("metrics-port-file", "");
      }

      const DistributedResult out = stabilize_distributed(initial, opt);

      TextTable table({"metric", "value"});
      table.row({"mode", std::string("distributed (") +
                             (opt.run.spawn ? "spawned processes + tcp"
                                            : mpp::to_string(opt.run.transport)) +
                             ")"});
      table.row({"config", config + " " + std::to_string(size) + "x" +
                               std::to_string(size)});
      table.row({"ranks", TextTable::num(static_cast<std::int64_t>(opt.ranks))});
      table.row({"halo depth",
                 TextTable::num(static_cast<std::int64_t>(opt.halo_depth))});
      table.row({"exchange rounds",
                 TextTable::num(static_cast<std::int64_t>(out.rounds))});
      table.row({"iterations",
                 TextTable::num(static_cast<std::int64_t>(out.iterations))});
      table.row({"stable", out.stable ? "yes" : "no (capped)"});
      table.row({"messages", TextTable::num(static_cast<std::int64_t>(
                                 out.comm.messages_sent))});
      table.row({"MB sent",
                 TextTable::num(static_cast<double>(out.comm.bytes_sent) / 1e6,
                                2)});
      table.row({"retransmits", TextTable::num(static_cast<std::int64_t>(
                                    out.net.retransmits))});
      table.row({"restarts",
                 TextTable::num(static_cast<std::int64_t>(out.restarts))});

      if (args.has("platform")) {
        // Predict the halo-exchange communication from the machine model:
        // each exchange round, a rank pair trades k padded halo rows each
        // way across a node boundary (the pessimistic placement — one rank
        // per node).
        const machine::Machine mach =
            machine::load_machine(args.get("platform", ""));
        const machine::CoreId src{0, 0, 0, 0};
        const machine::CoreId dst{0, mach.groups[0].nodes > 1 ? 1 : 0, 0, 0};
        const double halo_bytes = static_cast<double>(size + 2) *
                                  opt.halo_depth * sizeof(Cell);
        const double per_round_s =
            2.0 * machine::predict_transfer_s(mach, src, dst, halo_bytes);
        table.row({"model exchange/round ms",
                   TextTable::num(per_round_s * 1e3, 3)});
        table.row({"model comm total ms",
                   TextTable::num(per_round_s * out.rounds * 1e3, 2)});
      }

      if (args.has("check")) {
        Field reference = initial;
        stabilize_reference(reference);
        const bool ok = out.stable && out.field.same_interior(reference);
        table.row({"matches reference", ok ? "yes" : "NO"});
        if (!ok && out.stable) {
          table.print(std::cout);
          return 1;
        }
      }
      table.print(std::cout);

      if (args.has("dump")) {
        out.field.render().write_ppm(args.get("dump", ""));
        std::cout << "state image: " << args.get("dump", "") << "\n";
      }
      if (!cluster_trace.empty())
        std::cout << "cluster trace: " << cluster_trace
                  << " (open in Perfetto / chrome://tracing)\n";
      return 0;
    }

    VariantOptions opt;
    opt.tile_h = opt.tile_w = args.get_int("tile", 32);
    opt.threads = args.get_int("threads", 0);
    opt.schedule = schedule_by_name(args.get("schedule", "dynamic"));
    opt.max_iterations = args.get_int("iterations", 0);
    const std::string trace_path = args.get("trace", "");
    const bool json_trace =
        trace_path.size() >= 5 &&
        trace_path.compare(trace_path.size() - 5, 5, ".json") == 0;
    // A .json trace comes from the obs tracer (tiles + runtime spans, one
    // Perfetto row per thread); the CSV path keeps the worker-indexed
    // TraceRecorder.
    TraceRecorder trace(256);
    if (args.has("trace") && !json_trace) opt.trace = &trace;
    pap::Monitor monitor;
    if (args.has("monitor")) opt.on_iteration = monitor.hook();
    if (json_trace || args.has("metrics")) obs::set_enabled(true);

    const Variant variant =
        variant_by_name(args.get("variant", "omp-lazy-sync"));
    const VariantOutcome out = run_variant(variant, field, opt);

    TextTable table({"metric", "value"});
    table.row({"variant", to_string(variant)});
    table.row({"config", config + " " + std::to_string(size) + "x" +
                             std::to_string(size)});
    table.row({"iterations",
               TextTable::num(static_cast<std::int64_t>(out.run.iterations))});
    table.row({"stable", out.run.stable ? "yes" : "no (capped)"});
    table.row({"tile tasks",
               TextTable::num(static_cast<std::int64_t>(out.run.tasks))});
    table.row({"wall ms",
               TextTable::num(static_cast<double>(out.run.elapsed_ns) / 1e6, 2)});
    table.row({"grains kept", TextTable::num(field.interior_grains())});

    if (args.has("check")) {
      Field reference = initial;
      stabilize_reference(reference);
      const bool ok = out.run.stable && field.same_interior(reference);
      table.row({"matches reference", ok ? "yes" : "NO"});
      if (!ok && out.run.stable) {
        table.print(std::cout);
        return 1;
      }
    }
    table.print(std::cout);

    if (args.has("dump")) {
      field.render().write_ppm(args.get("dump", ""));
      std::cout << "state image: " << args.get("dump", "") << "\n";
    }
    if (args.has("trace")) {
      if (json_trace) {
        obs::Tracer::global().write_chrome_json(trace_path);
        std::cout << "chrome trace: " << trace_path
                  << " (open in Perfetto / chrome://tracing)\n";
      } else {
        trace.write_csv(trace_path);
        std::cout << "task trace: " << trace_path << "\n";
      }
    }
    if (args.has("metrics")) {
      obs::Registry::global().write(args.get("metrics", ""));
      std::cout << "metrics: " << args.get("metrics", "") << "\n";
    }
    if (args.has("monitor")) {
      monitor.write_csv(args.get("monitor", ""));
      std::cout << "per-iteration samples: " << args.get("monitor", "") << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
