// Carbon-aware workflow scheduling: a CLI walk through paper §IV.
//
//   $ ./carbon_scheduler [deadline_seconds]
//
// Executes the Montage-738 workflow on the simulated platform and answers
// the assignment's questions: the Tab #1 performance/CO2 baseline, the two
// single-knob power optimizations under the deadline, the boss's combined
// heuristic, and the Tab #2 cluster+cloud placement exploration including a
// search for the CO2 optimum.
#include <cstdlib>
#include <iostream>

#include "core/table.hpp"
#include "wfsim/montage.hpp"
#include "wfsim/schedule.hpp"

namespace {

using namespace peachy;
using namespace peachy::wf;

std::string fractions_str(const std::vector<double>& f) {
  std::string s = "[";
  for (std::size_t i = 0; i < f.size(); ++i) {
    if (i) s += " ";
    s += TextTable::num(f[i], 2);
  }
  return s + "]";
}

void report_row(TextTable& t, const std::string& label, const SimResult& r) {
  t.row({label, TextTable::num(r.makespan_s, 1),
         TextTable::num(r.cluster_energy_j / 3.6e6, 3),
         TextTable::num(r.cloud_energy_j / 3.6e6, 3),
         TextTable::num(r.total_gco2, 1)});
}

}  // namespace

int main(int argc, char** argv) {
  const double deadline = argc > 1 ? std::atof(argv[1]) : 180.0;
  const Workflow wf = make_montage();
  const Platform plat = eduwrench_platform();

  std::cout << "Montage workflow: " << wf.num_tasks() << " tasks, "
            << wf.num_levels() << " levels, "
            << TextTable::num(wf.total_bytes() / 1e9, 2) << " GB data, "
            << TextTable::num(wf.total_flops() / 1e12, 2) << " Tflop\n"
            << "deadline: " << deadline << " s\n\n";

  // ---- Tab #1: the local cluster.
  std::cout << "== Tab 1: 64-node cluster ("
            << plat.cluster.gco2_per_kwh << " gCO2e/kWh) ==\n";
  RunConfig base;
  base.nodes_on = 64;
  base.pstate = plat.max_pstate();
  const SimResult baseline = simulate(wf, plat, base);
  const SpeedupReport speedup = speedup_vs_one_node(wf, plat, base);

  TextTable t1({"configuration", "time_s", "cluster_kWh", "cloud_kWh",
                "gCO2e"});
  report_row(t1, "Q1 baseline: 64 nodes @ p6", baseline);
  const ClusterChoice fewer =
      min_nodes_for_deadline(wf, plat, plat.max_pstate(), deadline);
  report_row(t1, "Q2a min nodes @ p6: " + std::to_string(fewer.nodes_on),
             fewer.result);
  const ClusterChoice slower = min_pstate_for_deadline(wf, plat, 64, deadline);
  report_row(t1, "Q2b 64 nodes @ min p-state p" + std::to_string(slower.pstate),
             slower.result);
  const ClusterChoice combined = combined_power_heuristic(wf, plat, deadline);
  report_row(t1,
             "Q3 combined: " + std::to_string(combined.nodes_on) +
                 " nodes @ p" + std::to_string(combined.pstate),
             combined.result);
  t1.print(std::cout);
  std::cout << "Q1 speedup vs 1 node: " << TextTable::num(speedup.speedup, 2)
            << "x, efficiency " << TextTable::num(speedup.efficiency, 3)
            << "\n\n";

  // ---- Tab #2: 12 low-power nodes + the green cloud.
  std::cout << "== Tab 2: 12 nodes @ p0 + 16 green cloud VMs ("
            << plat.cloud.gco2_per_kwh << " gCO2e/kWh, "
            << TextTable::num(plat.link.bytes_per_s * 8 / 1e9, 1)
            << " Gbit/s link) ==\n";
  TextTable t2({"placement", "time_s", "cluster_kWh", "cloud_kWh", "gCO2e"});

  RunConfig local12;
  local12.nodes_on = 12;
  local12.pstate = 0;
  report_row(t2, "all on local cluster", simulate(wf, plat, local12));

  RunConfig cloud_all = local12;
  cloud_all.placement = Placement::all(wf, Site::kCloud);
  report_row(t2, "all on cloud", simulate(wf, plat, cloud_all));

  for (const auto& [label, fractions] :
       std::vector<std::pair<std::string, std::vector<double>>>{
           {"levels 0+1 on cloud", {1.0, 1.0}},
           {"level 0 on cloud", {1.0}},
           {"half of levels 0+1 on cloud", {0.5, 0.5}}}) {
    RunConfig cfg = local12;
    cfg.placement = Placement::level_fractions(wf, fractions);
    report_row(t2, "Q2 " + label, simulate(wf, plat, cfg));
  }

  const CloudSearchResult coarse =
      exhaustive_cloud_search(wf, plat, 12, 0, {0.0, 0.5, 1.0});
  report_row(t2, "exhaustive grid optimum", coarse.result);
  const CloudSearchResult refined =
      refine_cloud_fractions(wf, plat, 12, 0, coarse.fractions, 0.125);
  report_row(t2, "after hill-climb refinement", refined.result);
  t2.print(std::cout);

  std::cout << "optimal per-level cloud fractions (levels 0..8): "
            << fractions_str(refined.fractions) << "\n"
            << "simulations evaluated: " << coarse.evaluated << " grid + "
            << refined.evaluated << " refinement\n";
  return 0;
}
