// Carbon-aware workflow scheduling: a CLI walk through paper §IV.
//
//   $ ./carbon_scheduler [deadline_seconds] [--platform machine.json]
//
// By default the workflow runs on the built-in EduWRENCH platform; with
// --platform the cluster/cloud description is loaded from a machine-model
// JSON file (src/machine codec) and adapted into the same simulator.
//
// Executes the Montage-738 workflow on the simulated platform and answers
// the assignment's questions: the Tab #1 performance/CO2 baseline, the two
// single-knob power optimizations under the deadline, the boss's combined
// heuristic, and the Tab #2 cluster+cloud placement exploration including a
// search for the CO2 optimum.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/table.hpp"
#include "machine/codec.hpp"
#include "wfsim/montage.hpp"
#include "wfsim/schedule.hpp"

namespace {

using namespace peachy;
using namespace peachy::wf;

std::string fractions_str(const std::vector<double>& f) {
  std::string s = "[";
  for (std::size_t i = 0; i < f.size(); ++i) {
    if (i) s += " ";
    s += TextTable::num(f[i], 2);
  }
  return s + "]";
}

void report_row(TextTable& t, const std::string& label, const SimResult& r) {
  t.row({label, TextTable::num(r.makespan_s, 1),
         TextTable::num(r.cluster_energy_j / 3.6e6, 3),
         TextTable::num(r.cloud_energy_j / 3.6e6, 3),
         TextTable::num(r.total_gco2, 1)});
}

}  // namespace

int main(int argc, char** argv) try {
  double deadline = 180.0;
  std::string platform_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--platform") == 0 && i + 1 < argc)
      platform_path = argv[++i];
    else
      deadline = std::atof(argv[i]);
  }
  const Workflow wf = make_montage();
  const Platform plat =
      platform_path.empty()
          ? eduwrench_platform()
          : platform_from_machine(machine::load_machine(platform_path));
  if (!platform_path.empty())
    std::cout << "platform: " << platform_path << "\n";

  std::cout << "Montage workflow: " << wf.num_tasks() << " tasks, "
            << wf.num_levels() << " levels, "
            << TextTable::num(wf.total_bytes() / 1e9, 2) << " GB data, "
            << TextTable::num(wf.total_flops() / 1e12, 2) << " Tflop\n"
            << "deadline: " << deadline << " s\n\n";

  // ---- Tab #1: the local cluster.
  const int all_nodes = plat.cluster.total_nodes;
  std::cout << "== Tab 1: " << all_nodes << "-node cluster ("
            << plat.cluster.gco2_per_kwh << " gCO2e/kWh) ==\n";
  RunConfig base;
  base.nodes_on = all_nodes;
  base.pstate = plat.max_pstate();
  const SimResult baseline = simulate(wf, plat, base);
  const SpeedupReport speedup = speedup_vs_one_node(wf, plat, base);

  TextTable t1({"configuration", "time_s", "cluster_kWh", "cloud_kWh",
                "gCO2e"});
  report_row(t1, "Q1 baseline: " + std::to_string(all_nodes) +
                     " nodes @ p" + std::to_string(base.pstate),
             baseline);
  const ClusterChoice fewer =
      min_nodes_for_deadline(wf, plat, plat.max_pstate(), deadline);
  report_row(t1, "Q2a min nodes @ p6: " + std::to_string(fewer.nodes_on),
             fewer.result);
  const ClusterChoice slower = min_pstate_for_deadline(wf, plat, all_nodes, deadline);
  report_row(t1,
             "Q2b " + std::to_string(all_nodes) + " nodes @ min p-state p" +
                 std::to_string(slower.pstate),
             slower.result);
  const ClusterChoice combined = combined_power_heuristic(wf, plat, deadline);
  report_row(t1,
             "Q3 combined: " + std::to_string(combined.nodes_on) +
                 " nodes @ p" + std::to_string(combined.pstate),
             combined.result);
  t1.print(std::cout);
  std::cout << "Q1 speedup vs 1 node: " << TextTable::num(speedup.speedup, 2)
            << "x, efficiency " << TextTable::num(speedup.efficiency, 3)
            << "\n\n";

  // ---- Tab #2: a few low-power nodes + the green cloud.
  const int low_nodes = std::min(12, plat.cluster.total_nodes);
  std::cout << "== Tab 2: " << low_nodes << " nodes @ p0 + " << plat.cloud.vms
            << " green cloud VMs ("
            << plat.cloud.gco2_per_kwh << " gCO2e/kWh, "
            << TextTable::num(plat.link.bytes_per_s * 8 / 1e9, 1)
            << " Gbit/s link) ==\n";
  TextTable t2({"placement", "time_s", "cluster_kWh", "cloud_kWh", "gCO2e"});

  RunConfig local12;
  local12.nodes_on = low_nodes;
  local12.pstate = 0;
  report_row(t2, "all on local cluster", simulate(wf, plat, local12));

  RunConfig cloud_all = local12;
  cloud_all.placement = Placement::all(wf, Site::kCloud);
  report_row(t2, "all on cloud", simulate(wf, plat, cloud_all));

  for (const auto& [label, fractions] :
       std::vector<std::pair<std::string, std::vector<double>>>{
           {"levels 0+1 on cloud", {1.0, 1.0}},
           {"level 0 on cloud", {1.0}},
           {"half of levels 0+1 on cloud", {0.5, 0.5}}}) {
    RunConfig cfg = local12;
    cfg.placement = Placement::level_fractions(wf, fractions);
    report_row(t2, "Q2 " + label, simulate(wf, plat, cfg));
  }

  const CloudSearchResult coarse =
      exhaustive_cloud_search(wf, plat, low_nodes, 0, {0.0, 0.5, 1.0});
  report_row(t2, "exhaustive grid optimum", coarse.result);
  const CloudSearchResult refined =
      refine_cloud_fractions(wf, plat, low_nodes, 0, coarse.fractions,
                             0.125);
  report_row(t2, "after hill-climb refinement", refined.result);
  t2.print(std::cout);

  std::cout << "optimal per-level cloud fractions (levels 0..8): "
            << fractions_str(refined.fractions) << "\n"
            << "simulations evaluated: " << coarse.evaluated << " grid + "
            << refined.evaluated << " refinement\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
