// Quickstart: simulate an Abelian sandpile and render the fixed point.
//
//   $ ./quickstart [height width grains]
//
// Drops `grains` (default 25 000, as in paper Fig. 1a) on the center cell
// of a height x width pile, stabilizes it with the lazy OpenMP variant,
// checks the result against the sequential reference, and writes
// out/quickstart.ppm with the paper's 4-color palette.
//
// To watch the run instead of just timing it, use the full CLI driver:
// `easypap_cli --trace out/trace.json` writes a Chrome trace (open it in
// Perfetto / chrome://tracing) and `--metrics out/metrics.txt` dumps the
// runtime's counters; see docs/assignment_sandpile.md.
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "core/table.hpp"
#include "sandpile/field.hpp"
#include "sandpile/variants.hpp"

int main(int argc, char** argv) {
  using namespace peachy;
  using namespace peachy::sandpile;

  const int height = argc > 1 ? std::atoi(argv[1]) : 128;
  const int width = argc > 2 ? std::atoi(argv[2]) : 128;
  const Cell grains =
      argc > 3 ? static_cast<Cell>(std::atol(argv[3])) : 25000u;

  std::cout << "Abelian sandpile quickstart: " << height << "x" << width
            << " pile, " << grains << " grains on the center cell\n\n";

  // Parallel solve (lazy tiled OpenMP, the assignment-2 configuration).
  Field field = center_pile(height, width, grains);
  VariantOptions opt;
  opt.tile_h = opt.tile_w = 16;
  const VariantOutcome out = run_variant(Variant::kOmpLazySync, field, opt);

  // Cross-check against the sequential reference solver.
  Field reference = center_pile(height, width, grains);
  stabilize_reference(reference);
  const bool match = field.same_interior(reference);

  TextTable table({"metric", "value"});
  table.row({"variant", to_string(out.variant)});
  table.row({"iterations", TextTable::num(static_cast<std::int64_t>(
                               out.run.iterations))});
  table.row({"tile tasks executed",
             TextTable::num(static_cast<std::int64_t>(out.run.tasks))});
  table.row({"wall time (ms)",
             TextTable::num(static_cast<double>(out.run.elapsed_ns) / 1e6, 2)});
  table.row({"grains kept", TextTable::num(field.interior_grains())});
  table.row({"grains lost to sink", TextTable::num(field.sink_grains())});
  for (Cell g = 0; g < kTopple; ++g)
    table.row({"cells with " + std::to_string(g) + " grain(s)",
               TextTable::num(field.count_cells_with(g))});
  table.row({"matches sequential reference", match ? "yes" : "NO"});
  table.print(std::cout);

  std::filesystem::create_directories("out");
  field.render().write_ppm("out/quickstart.ppm");
  std::cout << "\nWrote out/quickstart.ppm (black=0, green=1, blue=2, red=3 "
               "grains, as in Fig. 1)\n";
  return match ? 0 : 1;
}
