// Sandpile gallery: every visual artifact of paper §II plus the sandpile
// group identity fractal.
//
// Writes to out/:
//   fig1a_center.ppm   — 128x128, 25 000 grains in the center cell (Fig. 1a)
//   fig1b_uniform4.ppm — 128x128, 4 grains in every cell (Fig. 1b)
//   identity.ppm       — the group identity of the 128x128 sandpile
//   anim_XXX.ppm       — frames of the center pile collapsing
//   owner_map.ppm      — Fig. 4-style hybrid CPU/device tile ownership
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "pap/hybrid.hpp"
#include "sandpile/field.hpp"
#include "sandpile/kernels.hpp"
#include "sandpile/theory.hpp"
#include "sandpile/variants.hpp"
#include "trace/trace.hpp"

int main() {
  using namespace peachy;
  using namespace peachy::sandpile;
  std::filesystem::create_directories("out");

  // --- Fig. 1a: 25 000 grains in the center of a 128x128 pile.
  {
    Field f = center_pile(128, 128, 25000);
    stabilize_reference(f);
    f.render().upscaled(3).write_ppm("out/fig1a_center.ppm");
    std::cout << "fig1a_center.ppm: " << f.interior_grains()
              << " grains kept, " << f.sink_grains() << " lost to the sink\n";
  }

  // --- Fig. 1b: 4 grains in every cell.
  {
    Field f = uniform_pile(128, 128, 4);
    stabilize_reference(f);
    f.render().upscaled(3).write_ppm("out/fig1b_uniform4.ppm");
    std::cout << "fig1b_uniform4.ppm: fixed point of the all-4s pile\n";
  }

  // --- The sandpile group identity (the classic fractal).
  {
    const Field id = group_identity(128, 128);
    id.render().upscaled(3).write_ppm("out/identity.ppm");
    std::cout << "identity.ppm: sandpile group identity (recurrent: "
              << (is_recurrent(id) ? "yes" : "no") << ")\n";
  }

  // --- Animation frames: the center pile collapsing, one frame every 32
  // synchronous iterations.
  {
    Field f = center_pile(96, 96, 16000);
    SyncEngine engine(f);
    pap::Tile whole{0, 0, 0, 0, 0, 96, 96};
    whole.h = whole.w = 96;
    whole.y0 = whole.x0 = 0;
    int frame = 0;
    char name[64];
    for (int iter = 0; engine.compute_tile(whole); ++iter) {
      engine.swap_buffers();
      if (iter % 32 == 0) {
        std::snprintf(name, sizeof name, "out/anim_%03d.ppm", frame++);
        f.render().write_ppm(name);
      }
    }
    std::cout << "wrote " << frame << " animation frames (out/anim_*.ppm)\n";
  }

  // --- Fig. 4-style owner map: hybrid CPU + simulated device, lazy tiles.
  {
    Field f = sparse_random_pile(256, 256, 0.04, 16, 64, 2022);
    AsyncEngine engine(f);
    pap::TileGrid tiles(256, 256, 16, 16);
    pap::HybridOptions opt;
    opt.cpu.workers = 4;
    opt.policy = pap::HybridPolicy::kDynamicEft;
    opt.max_iterations = 40;
    TraceRecorder trace(opt.cpu.workers + 1);
    opt.trace = &trace;
    pap::HybridRunner runner(tiles, opt);
    const pap::HybridResult r = runner.run(engine.kernel(/*drain=*/true));
    const auto last_iter = trace.iteration(r.iterations - 1);
    render_owner_map(last_iter, 256, 256).upscaled(2).write_ppm(
        "out/owner_map.ppm");
    std::cout << "owner_map.ppm: " << r.cpu_tasks << " CPU tile tasks, "
              << r.device_tasks
              << " device tile tasks (black = stable tiles, as in Fig. 4)\n";
  }

  std::cout << "done.\n";
  return 0;
}
