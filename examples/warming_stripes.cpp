// Warming stripes end-to-end: the full §III data-science workflow.
//
//  (1) data acquisition   — synthesize the DWD-like dataset and write the
//                           12 month-major files to out/dwd/;
//  (2) pre-processing     — read them back, inject the "download made in
//                           late 2020" gap (missing winter months);
//  (3) analysis           — annual Germany means via the MapReduce engine
//                           (typed job) and the Hadoop-streaming flavor,
//                           cross-checked against a sequential reference;
//  (4) result validation  — detect incomplete years and show the warm bias
//                           a naive average would report.
//
// Writes out/warming_stripes.ppm (Fig. 6) and a biased variant.
//
// Distributed mode (the dmr engine): --ranks N runs the annual-means job
// across N ranks, --transport inproc|tcp picks the wire, --spawn forks
// real worker processes, --spill-bytes B caps the per-rank shuffle buffer
// (forcing the external sort to disk), and --sever-after K severs the wire
// after K frames to demonstrate checkpoint/respawn recovery (see README
// "Distributed Warming Stripes").
#include <algorithm>
#include <filesystem>
#include <iostream>

#include "climate/analytics.hpp"
#include "climate/dwd.hpp"
#include "climate/pipeline.hpp"
#include "climate/stripes.hpp"
#include "core/args.hpp"
#include "core/table.hpp"
#include "mapreduce/io.hpp"

int main(int argc, char** argv) {
  using namespace peachy;
  using namespace peachy::climate;

  const Args args(argc, argv, {"spawn"});
  const auto unknown = args.unknown_options(
      {"ranks", "transport", "spawn", "spill-bytes", "sever-after",
       "net-window", "trace", "metrics-port", "metrics-port-file"});
  if (!unknown.empty()) {
    std::cerr << "unknown option --" << unknown.front()
              << " (try --ranks N --transport inproc|tcp --spawn "
                 "--spill-bytes B --sever-after K --net-window W "
                 "--trace FILE --metrics-port P --metrics-port-file FILE)\n";
    return 2;
  }
  std::filesystem::create_directories("out/dwd");

  // (1) Data acquisition.
  DwdModelParams params;  // 1881-2019, calibrated to Fig. 6
  const MonthlyDataset source = synthesize_dwd(params);
  write_month_major(source, "out/dwd");
  std::cout << "wrote 12 month-major files to out/dwd/ ("
            << source.present_count() << " observations)\n";

  // (2) Pre-processing: read back; simulate the late-2020 download gap on a
  // copy extended through 2020.
  MonthlyDataset data = read_month_major("out/dwd", params.first_year,
                                         params.last_year);

  // (3a) Distributed analysis first when requested: --spawn forks worker
  // processes, which must happen before the typed pipelines below create
  // the process-shared task arena (threads do not survive fork).
  const int ranks = args.get_int("ranks", 0);
  if (ranks > 0) {
    DmrPipelineConfig dcfg;
    dcfg.options.ranks = ranks;
    dcfg.options.run.transport =
        mpp::transport_from_string(args.get("transport", "inproc"));
    dcfg.options.run.spawn = args.has("spawn");
    dcfg.options.map_workers = 2;
    dcfg.options.reduce_workers = 2;
    dcfg.options.spill_buffer_bytes =
        static_cast<std::size_t>(args.get_int("spill-bytes", 0));
    dcfg.options.run.tcp.window_frames = std::max(
        1, args.get_int("net-window", dcfg.options.run.tcp.window_frames));
    // Cluster telemetry (README "Watching a cluster run"): --trace writes
    // one merged clock-corrected Perfetto trace; --metrics-port serves the
    // rank-labeled Prometheus rollup live at /metrics while the job runs.
    const std::string trace_path = args.get("trace", "");
    const int metrics_port = args.get_int("metrics-port", -1);
    if (!trace_path.empty() || metrics_port >= 0) {
      dcfg.options.run.telemetry.enabled = true;
      dcfg.options.run.telemetry.trace_path = trace_path;
      dcfg.options.run.telemetry.metrics_port = metrics_port;
      dcfg.options.run.telemetry.port_file =
          args.get("metrics-port-file", "");
    }
    const int sever_after = args.get_int("sever-after", 0);
    if (sever_after > 0) {
      // Kill-and-recover demo: sever the wire mid-shuffle; the supervisor
      // respawns the world and restores the last committed map epoch.
      dcfg.options.map_epochs = 4;
      dcfg.options.checkpoint_every = 1;
      dcfg.options.run.spawn = true;
      dcfg.options.run.transport = mpp::TransportKind::kTcp;
      dcfg.options.run.resilience.max_restarts = 3;
      dcfg.options.run.tcp.ack_timeout_ms = 20;
      dcfg.options.run.tcp.fault.seed = 7;
      dcfg.options.run.tcp.fault.sever_after = sever_after;
    }
    const AnnualSeries dmr_series = annual_means_dmr(data, dcfg);
    const DmrPipelineStats& stats = last_dmr_stats();
    TextTable dmr_table({"dmr", "value"});
    dmr_table.row({"ranks", TextTable::num(static_cast<std::int64_t>(ranks))});
    dmr_table.row({"transport",
                   std::string(mpp::to_string(dcfg.options.run.transport)) +
                       (dcfg.options.run.spawn ? " (spawned)" : "")});
    dmr_table.row({"shuffle records",
                   TextTable::num(static_cast<std::int64_t>(
                       stats.counters.shuffle_records))});
    dmr_table.row({"shuffle bytes (cross-rank)",
                   TextTable::num(static_cast<std::int64_t>(
                       stats.counters.shuffle_bytes))});
    dmr_table.row({"spill runs", TextTable::num(static_cast<std::int64_t>(
                                     stats.counters.spill.spills))});
    dmr_table.row({"world restarts",
                   TextTable::num(static_cast<std::int64_t>(stats.restarts))});
    dmr_table.print(std::cout);
    render_stripes(dmr_series).write_ppm("out/warming_stripes_dmr.ppm");
    std::cout << "wrote out/warming_stripes_dmr.ppm (distributed, " << ranks
              << " ranks)\n\n";
  }

  // (3) Analysis with MapReduce (typed engine, 4 mappers / 2 reducers).
  PipelineConfig cfg;
  cfg.map_workers = 4;
  cfg.reduce_workers = 2;
  const AnnualSeries mr_series = annual_means_mapreduce(data, cfg);
  const AnnualSeries reference = annual_means_reference(data);
  const AnnualSeries streaming = annual_means_streaming(
      month_major_all_lines(data), params.first_year, params.last_year, {});

  double max_diff = 0;
  for (std::size_t i = 0; i < mr_series.mean_c.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::abs(mr_series.mean_c[i] - reference.mean_c[i]));
    max_diff = std::max(max_diff,
                        std::abs(streaming.mean_c[i] - reference.mean_c[i]));
  }
  const auto& counters = last_pipeline_counters();
  TextTable table({"phase", "value"});
  table.row({"map inputs (lines)", TextTable::num(static_cast<std::int64_t>(
                                       counters.map_inputs))});
  table.row({"map outputs", TextTable::num(static_cast<std::int64_t>(
                                counters.map_outputs))});
  table.row({"shuffled records (combiner on)",
             TextTable::num(static_cast<std::int64_t>(
                 counters.shuffle_records))});
  table.row({"reduce groups (years)", TextTable::num(static_cast<std::int64_t>(
                                          counters.groups))});
  table.row({"max |MapReduce - reference| (°C)", TextTable::num(max_diff, 9)});
  table.row({"overall mean (°C)", TextTable::num(mr_series.overall_mean(), 2)});
  table.row({"colorbar", TextTable::num(mr_series.overall_mean() - 1.5, 2) +
                             " .. " +
                             TextTable::num(mr_series.overall_mean() + 1.5, 2)});
  table.print(std::cout);

  // (4) Validation: what happens if the last year's winter is missing?
  MonthlyDataset gappy = data;
  drop_months(gappy, params.last_year, 11, 12);
  const ValidationReport report = validate(gappy);
  const AnnualSeries biased = annual_means_reference(gappy);
  const std::size_t last = biased.mean_c.size() - 1;
  std::cout << "\nvalidation: " << report.incomplete_years.size()
            << " incomplete year(s), " << report.missing_cells
            << " missing cells\n";
  std::cout << "naive mean of " << params.last_year
            << " without Nov+Dec: " << biased.mean_c[last]
            << " °C vs true " << reference.mean_c[last]
            << " °C (warm bias: +"
            << biased.mean_c[last] - reference.mean_c[last] << " °C)\n";

  // Render Fig. 6 (and the biased rendering that ignores the gap).
  StripesSpec spec;
  render_stripes(mr_series, spec).write_ppm("out/warming_stripes.ppm");
  spec.grey_incomplete = false;
  render_stripes(biased, spec).write_ppm("out/warming_stripes_biased.ppm");
  std::cout << "\nwrote out/warming_stripes.ppm ("
            << mr_series.mean_c.size() << " stripes, " << params.first_year
            << "-" << params.last_year << ") and the biased variant\n";

  // --- Follow-up analytics (the course's "later assignments"): per-state
  // stripes, warming trends via regression-in-MapReduce, top-5 warmest
  // years via job chaining.
  const StateAnnualSeries per_state = state_annual_means_mapreduce(data, 4, 2);
  render_state_stripes(per_state).write_ppm("out/state_stripes.ppm");
  std::cout << "wrote out/state_stripes.ppm (one band per state, each on "
               "its own colorbar)\n\n";

  const auto trends = state_trends_mapreduce(data, 4, 2);
  TextTable trend_table({"state", "mean °C", "trend °C/decade"});
  for (const StateTrend& t : trends)
    trend_table.row({state_names()[static_cast<std::size_t>(t.state)],
                     TextTable::num(t.mean_c, 2),
                     TextTable::num(t.slope_c_per_decade, 3)});
  trend_table.print(std::cout);

  std::cout << "\ntop-5 warmest years (chained MapReduce top-K):\n";
  TextTable top_table({"rank", "year", "mean °C"});
  int rank = 1;
  for (const YearMean& ym : warmest_years_mapreduce(data, 5))
    top_table.row({TextTable::num(static_cast<std::int64_t>(rank++)),
                   TextTable::num(static_cast<std::int64_t>(ym.year)),
                   TextTable::num(ym.mean_c, 2)});
  top_table.print(std::cout);

  return max_diff < 1e-9 ? 0 : 1;
}
