// peachyctl — command-line client for the peachyd job service.
//
//   peachyctl submit --kind sandpile --tenant alice --ranks 2 \
//             --grains 60000 --wait
//   peachyctl status 3            peachyctl result 3
//   peachyctl list [--tenant a]   peachyctl cancel 3
//   peachyctl stats               peachyctl shutdown
//
// Talks the framed wire protocol to --host/--port (default
// 127.0.0.1:7411). `submit --wait` polls until the job is terminal and
// pretty-prints the result blob; without --wait it prints the id and
// returns immediately.
#include <cstdint>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "core/args.hpp"
#include "core/error.hpp"
#include "core/table.hpp"
#include "sandpile/result_blob.hpp"
#include "svc/client.hpp"
#include "svc/runner.hpp"

namespace {

using namespace peachy;

int usage() {
  std::cerr
      << "usage: peachyctl [--host H] [--port N] COMMAND\n"
      << "  submit --kind sandpile|dmr|wfsim [--tenant T] [--name S]\n"
      << "         [--ranks N] [--isolation threads|process]\n"
      << "         [--deadline-ms N] [--wait]\n"
      << "         sandpile: [--height N] [--width N] [--grains N]\n"
      << "         dmr:      [--words N] [--seed N] [--vocabulary N]\n"
      << "         wfsim:    [--steps N] [--nodes N] [--pstate N]\n"
      << "  status ID | result ID | cancel ID | list [--tenant T]\n"
      << "  stats | shutdown\n";
  return 2;
}

void print_status(const svc::JobStatus& s) {
  std::cout << "job " << s.id << ": " << svc::to_string(s.state) << " ("
            << svc::to_string(s.kind) << ", tenant " << s.tenant;
  if (!s.name.empty()) std::cout << ", \"" << s.name << "\"";
  if (s.restarts > 0) std::cout << ", restarts " << s.restarts;
  if (s.peak_rss_bytes > 0)
    std::cout << ", peak rss " << (s.peak_rss_bytes >> 10) << " KiB";
  std::cout << ")";
  if (!s.error.empty()) std::cout << " error: " << s.error;
  std::cout << "\n";
}

void print_result(const svc::Client& client, const svc::JobStatus& status) {
  const std::vector<std::byte> blob = client.result(status.id);
  if (status.kind == svc::JobKind::kSandpile) {
    const auto r = sandpile::detail::decode_result(blob);
    std::cout << "sandpile " << r.field.height() << "x" << r.field.width()
              << ": " << (r.aborted ? "aborted" : r.stable ? "stable"
                                                           : "round budget")
              << " after " << r.rounds << " exchange rounds, "
              << r.field.interior_grains() << " grains on the board\n";
  } else if (status.kind == svc::JobKind::kDmr) {
    const auto counts = svc::decode_dmr_result(blob);
    std::uint64_t total = 0;
    for (const auto& [word, count] : counts) total += count;
    std::cout << "word count: " << counts.size() << " distinct words, "
              << total << " total; top of the list:\n";
    TextTable table({"word", "count"});
    for (std::size_t i = 0; i < counts.size() && i < 10; ++i)
      table.row({counts[i].first,
                 TextTable::num(static_cast<std::int64_t>(counts[i].second))});
    table.print(std::cout);
  } else if (status.kind == svc::JobKind::kWfsim) {
    TextTable table({"cloud fraction", "makespan s", "gCO2"});
    for (const svc::WfsimRow& row : svc::decode_wfsim_result(blob))
      table.row({TextTable::num(row.fraction), TextTable::num(row.makespan_s),
                 TextTable::num(row.total_gco2)});
    table.print(std::cout);
  } else {
    std::cout << "result: " << blob.size() << " bytes\n";
  }
}

std::uint64_t id_arg(const Args& args) {
  if (args.positional().size() < 2)
    throw Error("this command needs a job id");
  return static_cast<std::uint64_t>(std::stoull(args.positional()[1]));
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv, /*flag_names=*/{"wait"});
  if (args.positional().empty()) return usage();
  const std::string command = args.positional()[0];
  const svc::Client client(args.get("host", "127.0.0.1"),
                           args.get_int("port", 7411));
  try {
    if (command == "submit") {
      svc::JobSpec spec;
      spec.kind = svc::job_kind_from_string(args.get("kind", "sandpile"));
      spec.tenant = args.get("tenant", "default");
      spec.name = args.get("name", "");
      spec.ranks = static_cast<std::uint32_t>(args.get_int("ranks", 2));
      spec.isolation =
          svc::isolation_from_string(args.get("isolation", "default"));
      spec.deadline_ms =
          static_cast<std::uint32_t>(args.get_int("deadline-ms", 0));
      spec.sandpile.height =
          static_cast<std::uint32_t>(args.get_int("height", 64));
      spec.sandpile.width =
          static_cast<std::uint32_t>(args.get_int("width", 64));
      spec.sandpile.grains =
          static_cast<std::uint32_t>(args.get_int("grains", 60000));
      spec.dmr.words = static_cast<std::uint32_t>(args.get_int("words", 20000));
      spec.dmr.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
      spec.dmr.vocabulary =
          static_cast<std::uint32_t>(args.get_int("vocabulary", 128));
      spec.wfsim.sweep_steps =
          static_cast<std::uint32_t>(args.get_int("steps", 8));
      spec.wfsim.nodes_on =
          static_cast<std::uint32_t>(args.get_int("nodes", 64));
      spec.wfsim.pstate =
          static_cast<std::uint32_t>(args.get_int("pstate", 6));
      const svc::SubmitResult sub = client.submit(spec);
      if (!sub.accepted) {
        std::cerr << "rejected: " << sub.reject_reason << "\n";
        return 1;
      }
      std::cout << "submitted job " << sub.id << "\n";
      if (args.has("wait")) {
        const svc::JobStatus done =
            client.await(sub.id, std::chrono::minutes(30));
        print_status(done);
        if (done.state == svc::JobState::kDone) print_result(client, done);
        return done.state == svc::JobState::kDone ? 0 : 1;
      }
    } else if (command == "status") {
      print_status(client.status(id_arg(args)));
    } else if (command == "result") {
      const svc::JobStatus status = client.status(id_arg(args));
      print_status(status);
      if (status.state == svc::JobState::kDone) print_result(client, status);
    } else if (command == "cancel") {
      std::cout << client.cancel(id_arg(args)) << "\n";
    } else if (command == "list") {
      TextTable table({"id", "state", "kind", "tenant", "name"});
      for (const svc::JobBrief& b : client.list(args.get("tenant", "")))
        table.row({TextTable::num(static_cast<std::int64_t>(b.id)),
                   svc::to_string(b.state), svc::to_string(b.kind), b.tenant,
                   b.name});
      table.print(std::cout);
    } else if (command == "stats") {
      const svc::ServiceStats s = client.stats();
      std::cout << s.queued << " queued, " << s.running << " running, "
                << s.busy_ranks << "/" << s.pool_ranks << " ranks busy; "
                << s.submitted << " submitted, " << s.completed
                << " completed, " << s.rejected << " rejected\n";
    } else if (command == "shutdown") {
      client.shutdown();
      std::cout << "shutdown requested\n";
    } else {
      return usage();
    }
  } catch (const Error& e) {
    std::cerr << "peachyctl: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
