// Ghost Cell Pattern demo (paper §II.B, fourth assignment).
//
// Distributes a sandpile across message-passing ranks with a 1-D row
// decomposition and sweeps the halo depth k: deeper halos exchange every k
// iterations (fewer, larger messages, redundant border compute), shallower
// halos exchange every iteration. Prints the communication/computation
// trade-off and verifies every configuration against the sequential
// reference.
#include <iostream>

#include "core/table.hpp"
#include "sandpile/distributed.hpp"
#include "sandpile/field.hpp"

int main() {
  using namespace peachy;
  using namespace peachy::sandpile;

  const int size = 256;
  const Field initial = center_pile(size, size, 60000);
  Field reference = initial;
  stabilize_reference(reference);
  std::cout << "distributed sandpile: " << size << "x" << size
            << ", 60 000 grains centered, 4 ranks (in-process message "
               "passing)\n\n";

  TextTable table({"halo depth k", "exchange rounds", "iterations",
                   "messages", "MB sent", "matches reference"});
  for (int k : {1, 2, 4, 8, 16}) {
    DistributedOptions opt;
    opt.ranks = 4;
    opt.halo_depth = k;
    const DistributedResult r = stabilize_distributed(initial, opt);
    table.row({TextTable::num(static_cast<std::int64_t>(k)),
               TextTable::num(static_cast<std::int64_t>(r.rounds)),
               TextTable::num(static_cast<std::int64_t>(r.iterations)),
               TextTable::num(static_cast<std::int64_t>(r.comm.messages_sent)),
               TextTable::num(static_cast<double>(r.comm.bytes_sent) / 1e6, 2),
               r.field.same_interior(reference) ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\nDeeper halos trade redundant border computation for "
               "fewer (larger) messages — the paper's §II.B trade-off.\n";
  return 0;
}
