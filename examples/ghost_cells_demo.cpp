// Ghost Cell Pattern demo (paper §II.B, fourth assignment).
//
// Distributes a sandpile across message-passing ranks with a 1-D row
// decomposition and sweeps the halo depth k: deeper halos exchange every k
// iterations (fewer, larger messages, redundant border compute), shallower
// halos exchange every iteration. Prints the communication/computation
// trade-off and verifies every configuration against the sequential
// reference.
//
// By default the ranks are threads exchanging through in-process mailboxes;
// with --transport tcp every halo crosses a real loopback socket, and with
// --spawn the ranks become separate worker processes. --net-fault-seed
// turns on deterministic frame drop/duplication to show the wire protocol
// absorbing faults.
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/args.hpp"
#include "core/table.hpp"
#include "sandpile/distributed.hpp"
#include "sandpile/field.hpp"

namespace {

void usage() {
  std::cout <<
      "ghost_cells_demo [options]\n"
      "  --size N             grid side length (default 256)\n"
      "  --grains N           grains on the center cell (default 60000)\n"
      "  --ranks N            message-passing ranks (default 4)\n"
      "  --transport NAME     inproc | tcp (default inproc)\n"
      "  --spawn              ranks are real processes (implies tcp)\n"
      "  --net-window W       unacked frames per peer on the tcp wire\n"
      "                       (default 32; 1 = stop-and-wait)\n"
      "  --net-fault-seed S   inject seeded frame drops/duplicates (tcp)\n"
      "  --net-fault-drop P        explicit frame drop probability [0,1]\n"
      "  --net-fault-dup P         explicit frame duplication probability\n"
      "  --net-fault-sever-after N hard-kill each link after its Nth frame\n"
      "  --checkpoint-every N  checkpoint local slabs every N rounds\n"
      "  --max-restarts M      respawn+restore a failed world up to M times\n"
      "  --checkpoint-dir PATH keep checkpoints here (enables resume across\n"
      "                        invocations; default: private temp dir)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace peachy;
  using namespace peachy::sandpile;

  const Args args(argc, argv, {"spawn", "help"});
  if (args.has("help")) {
    usage();
    return 0;
  }
  const auto unknown = args.unknown_options(
      {"size", "grains", "ranks", "transport", "spawn", "net-window",
       "net-fault-seed",
       "net-fault-drop", "net-fault-dup", "net-fault-sever-after",
       "checkpoint-every", "max-restarts", "checkpoint-dir", "help"});
  if (!unknown.empty()) {
    std::cerr << "unknown option --" << unknown.front() << "\n";
    usage();
    return 2;
  }

  const int size = args.get_int("size", 256);
  const int grains = args.get_int("grains", 60000);
  const int ranks = args.get_int("ranks", 4);

  mpp::RunOptions run;
  run.transport = mpp::transport_from_string(args.get("transport", "inproc"));
  run.spawn = args.has("spawn");
  if (run.spawn) run.transport = mpp::TransportKind::kTcp;
  // Fault plan: --net-fault-seed alone keeps the legacy 2% drop/dup demo;
  // any explicit knob switches to exactly the requested plan (unset knobs
  // default to off).
  const std::uint64_t fault_seed = static_cast<std::uint64_t>(
      args.get_int("net-fault-seed", 0));
  const bool explicit_plan = args.has("net-fault-drop") ||
                             args.has("net-fault-dup") ||
                             args.has("net-fault-sever-after");
  if (explicit_plan) {
    run.tcp.fault.seed = fault_seed ? fault_seed : 1;
    run.tcp.fault.drop = args.get_double("net-fault-drop", 0.0);
    run.tcp.fault.duplicate = args.get_double("net-fault-dup", 0.0);
    run.tcp.fault.sever_after = args.get_int("net-fault-sever-after", -1);
    run.tcp.ack_timeout_ms = 20;
  } else if (fault_seed) {
    run.tcp.fault.seed = fault_seed;
    run.tcp.fault.drop = 0.02;
    run.tcp.fault.duplicate = 0.02;
    run.tcp.ack_timeout_ms = 20;
  }
  run.tcp.window_frames =
      std::max(1, args.get_int("net-window", run.tcp.window_frames));
  run.resilience.max_restarts = args.get_int("max-restarts", 0);
  run.resilience.checkpoint_dir = args.get("checkpoint-dir", "");
  const int checkpoint_every = args.get_int("checkpoint-every", 0);

  const Field initial = center_pile(size, size, static_cast<Cell>(grains));
  Field reference = initial;
  stabilize_reference(reference);
  std::cout << "distributed sandpile: " << size << "x" << size << ", "
            << grains << " grains centered, " << ranks << " ranks over "
            << (run.spawn ? "spawned processes + tcp"
                          : mpp::to_string(run.transport))
            << "\n\n";

  TextTable table({"halo depth k", "exchange rounds", "iterations",
                   "messages", "MB sent", "retransmits", "restarts",
                   "matches reference"});
  for (int k : {1, 2, 4, 8, 16}) {
    DistributedOptions opt;
    opt.ranks = ranks;
    opt.halo_depth = k;
    opt.checkpoint_every = checkpoint_every;
    opt.run = run;
    // Each sweep run gets its own checkpoint subdirectory — slab geometry
    // depends on k, so runs must not restore each other's checkpoints.
    if (!run.resilience.checkpoint_dir.empty())
      opt.run.resilience.checkpoint_dir =
          run.resilience.checkpoint_dir + "/k" + std::to_string(k);
    const DistributedResult r = stabilize_distributed(initial, opt);
    table.row({TextTable::num(static_cast<std::int64_t>(k)),
               TextTable::num(static_cast<std::int64_t>(r.rounds)),
               TextTable::num(static_cast<std::int64_t>(r.iterations)),
               TextTable::num(static_cast<std::int64_t>(r.comm.messages_sent)),
               TextTable::num(static_cast<double>(r.comm.bytes_sent) / 1e6, 2),
               TextTable::num(static_cast<std::int64_t>(r.net.retransmits)),
               TextTable::num(static_cast<std::int64_t>(r.restarts)),
               r.field.same_interior(reference) ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\nDeeper halos trade redundant border computation for "
               "fewer (larger) messages — the paper's §II.B trade-off.\n";
  if (fault_seed)
    std::cout << "Injected faults (seed " << fault_seed
              << ") were absorbed by the wire protocol's ack/retransmit "
                 "loop; the grids above still match the reference.\n";
  return 0;
}
