// peachyd — run the always-on multi-tenant job service (README cookbook,
// DESIGN.md "Job service").
//
//   ./peachyd --state out/peachyd --port 7411 --metrics-port 9464 \
//             --pool-ranks 8 --weights alice=3,bob=1
//
// The daemon listens for peachyctl submissions, persists every accepted
// job under --state (queued jobs and running-job checkpoints survive a
// kill -9), executes on a shared rank pool with weighted fair-share
// dispatch, and serves Prometheus text on the metrics port. It runs until
// `peachyctl shutdown` or SIGINT/SIGTERM.
//
// With --default-isolation process every job runs in forked worker
// processes: a crashing job becomes a FAILED record with a flight dump
// instead of a daemon outage. --rlimit-as-mb/--rlimit-cpu-s fence each
// worker via setrlimit; --job-deadline-ms caps wall-clock per job
// (SIGTERM, then SIGKILL after --term-grace-ms).
#include <signal.h>

#include <iostream>
#include <set>
#include <string>

#include "core/args.hpp"
#include "core/error.hpp"
#include "svc/daemon.hpp"

namespace {

peachy::svc::Daemon* g_daemon = nullptr;

void handle_signal(int) {
  // stop() is not async-signal-safe in general, but the daemon's stop path
  // only touches its own synchronization; good enough for a demo driver.
  if (g_daemon != nullptr) g_daemon->stop();
}

}  // namespace

int main(int argc, char** argv) {
  using peachy::Args;
  const Args args(argc, argv);
  const auto unknown = args.unknown_options(
      {"state", "port", "metrics-port", "pool-ranks", "max-queued",
       "max-queued-per-tenant", "weights", "max-restarts",
       "default-isolation", "rlimit-as-mb", "rlimit-cpu-s",
       "job-deadline-ms", "term-grace-ms"});
  if (!unknown.empty()) {
    std::cerr << "unknown option --" << unknown.front() << "\n"
              << "usage: peachyd --state DIR [--port N] [--metrics-port N]\n"
              << "               [--pool-ranks N] [--max-queued N]\n"
              << "               [--max-queued-per-tenant N]\n"
              << "               [--weights a=3,b=1] [--max-restarts N]\n"
              << "               [--default-isolation threads|process]\n"
              << "               [--rlimit-as-mb N] [--rlimit-cpu-s N]\n"
              << "               [--job-deadline-ms N] [--term-grace-ms N]\n";
    return 2;
  }

  peachy::svc::DaemonOptions options;
  options.state_dir = args.get("state", "out/peachyd");
  options.port = args.get_int("port", 7411);
  options.metrics_port = args.get_int("metrics-port", -1);
  options.pool_ranks = args.get_int("pool-ranks", 8);
  options.max_queued = args.get_int("max-queued", 64);
  options.max_queued_per_tenant = args.get_int("max-queued-per-tenant", 32);
  options.tenant_weights = args.get("weights", "");
  options.max_restarts = args.get_int("max-restarts", 2);
  options.default_isolation =
      peachy::svc::isolation_from_string(args.get("default-isolation", "threads"));
  options.rlimit_as_bytes =
      static_cast<std::uint64_t>(args.get_int("rlimit-as-mb", 0)) << 20;
  options.rlimit_cpu_seconds =
      static_cast<std::uint64_t>(args.get_int("rlimit-cpu-s", 0));
  options.job_deadline_ms =
      static_cast<std::uint32_t>(args.get_int("job-deadline-ms", 0));
  options.term_grace_ms = args.get_int("term-grace-ms", 2000);

  try {
    peachy::svc::Daemon daemon(options);
    g_daemon = &daemon;
    ::signal(SIGINT, handle_signal);
    ::signal(SIGTERM, handle_signal);
    std::cout << "peachyd listening on " << options.host << ":"
              << daemon.port() << "  (state: " << options.state_dir
              << ", pool: " << options.pool_ranks << " ranks)\n";
    if (daemon.metrics_port() > 0)
      std::cout << "metrics: http://127.0.0.1:" << daemon.metrics_port()
                << "/metrics\n";
    if (daemon.recovered_queued() + daemon.recovered_running() > 0)
      std::cout << "recovered " << daemon.recovered_queued()
                << " queued and " << daemon.recovered_running()
                << " interrupted job(s) from " << options.state_dir << "\n";
    daemon.wait_for_shutdown();
    g_daemon = nullptr;
    std::cout << "peachyd: shutdown requested, draining\n";
  } catch (const peachy::Error& e) {
    std::cerr << "peachyd: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
