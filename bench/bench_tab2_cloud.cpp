// §IV Tab #2 reproduction: cluster + green cloud placement.
//
// Setting: the organization powers only 12 local nodes at the lowest
// p-state and owns 16 VMs on a remote green cloud behind a bandwidth-
// limited link with cloud-side storage (data locality).
//
// Q1: "all on the local cluster" vs "all on the cloud" baselines.
// Q2: three options for placing the first two workflow levels.
// Q3-5: per-level cloud fractions — the "treasure hunt". The fraction
// sweeps printed here are the landscape students explore interactively.
#include <iostream>

#include "core/table.hpp"
#include "wfsim/montage.hpp"
#include "wfsim/schedule.hpp"

namespace {

using namespace peachy;
using namespace peachy::wf;

SimResult run(const Workflow& wf, const Platform& plat,
              const Placement& placement) {
  RunConfig cfg;
  cfg.nodes_on = 12;
  cfg.pstate = 0;
  cfg.placement = placement;
  return simulate(wf, plat, cfg);
}

void add_row(TextTable& t, const std::string& label, const SimResult& r) {
  t.row({label, TextTable::num(r.makespan_s, 1),
         TextTable::num(static_cast<std::int64_t>(r.tasks_on_cloud)),
         TextTable::num(r.transferred_bytes / 1e9, 2),
         TextTable::num(r.link_busy_s, 1),
         TextTable::num(r.cluster_gco2, 1), TextTable::num(r.cloud_gco2, 1),
         TextTable::num(r.total_gco2, 1)});
}

}  // namespace

int main() {
  const Workflow wf = make_montage();
  const Platform plat = eduwrench_platform();

  std::cout << "Tab #2 — 12 local nodes @ p0 (" << plat.cluster.gco2_per_kwh
            << " gCO2e/kWh) + 16 cloud VMs (" << plat.cloud.gco2_per_kwh
            << " gCO2e/kWh) behind a "
            << TextTable::num(plat.link.bytes_per_s * 8 / 1e9, 1)
            << " Gbit/s link\n\n";

  TextTable t({"placement", "time_s", "cloud tasks", "GB moved", "link_s",
               "cluster gCO2e", "cloud gCO2e", "total gCO2e"});

  // --- Q1 baselines.
  add_row(t, "Q1 all local", run(wf, plat, Placement::all(wf, Site::kCluster)));
  add_row(t, "Q1 all cloud", run(wf, plat, Placement::all(wf, Site::kCloud)));

  // --- Q2: three options for the first two levels.
  add_row(t, "Q2 levels 0+1 on cloud",
          run(wf, plat, Placement::level_fractions(wf, {1.0, 1.0})));
  add_row(t, "Q2 level 0 on cloud only",
          run(wf, plat, Placement::level_fractions(wf, {1.0, 0.0})));
  add_row(t, "Q2 half of levels 0+1 on cloud",
          run(wf, plat, Placement::level_fractions(wf, {0.5, 0.5})));

  // --- Q3-5 treasure hunt: sweep the cloud fraction of the wide levels
  // (0 = mProject, 1 = mDiffFit, 4 = mBackground).
  for (double frac : {0.25, 0.5, 0.75, 1.0}) {
    add_row(t,
            "hunt: " + TextTable::num(frac, 2) + " of levels 0,1,4 on cloud",
            run(wf, plat,
                Placement::level_fractions(wf, {frac, frac, 0, 0, frac})));
  }
  t.print(std::cout);

  std::cout << "\nexpected shape: all-local is slow and dirty; all-cloud "
               "pays the link and leaves 12 powered nodes idling; mixed "
               "placements win the treasure hunt (see bench_tab2_optimal "
               "for the exhaustive optimum).\n";
  return 0;
}
