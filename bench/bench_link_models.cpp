// Modeling-choice ablation: FIFO store-and-forward vs SimGrid-style fair
// sharing on the cluster<->cloud link (DESIGN.md documents FIFO as our
// default substitution; WRENCH's SimGrid backend fair-shares). The §IV
// conclusions must be robust to this choice — this bench quantifies how
// much the observables move and verifies the qualitative ordering of the
// Tab #2 placements is identical under both models.
#include <iostream>

#include "core/table.hpp"
#include "wfsim/montage.hpp"
#include "wfsim/schedule.hpp"

namespace {

using namespace peachy;
using namespace peachy::wf;

}  // namespace

int main() {
  const Workflow wf = make_montage();

  std::cout << "link-model ablation — Montage-738, 12 nodes @ p0 + 16 VMs\n\n";

  struct Case {
    const char* label;
    Placement placement;
  };
  std::vector<Case> cases;
  cases.push_back({"all local", Placement::all(wf, Site::kCluster)});
  cases.push_back({"all cloud", Placement::all(wf, Site::kCloud)});
  cases.push_back({"levels 0+1 on cloud",
                   Placement::level_fractions(wf, {1.0, 1.0})});
  cases.push_back({"3/4 of levels 0,1,4 on cloud",
                   Placement::level_fractions(wf, {0.75, 0.75, 0, 0, 0.75})});

  TextTable t({"placement", "fifo time_s", "fair time_s", "fifo gCO2e",
               "fair gCO2e", "gCO2e delta %"});
  std::vector<double> fifo_co2, fair_co2;
  for (const Case& c : cases) {
    Platform fifo = eduwrench_platform();
    Platform fair = eduwrench_platform();
    fair.link.sharing = LinkSharing::kFairShare;
    RunConfig cfg;
    cfg.nodes_on = 12;
    cfg.pstate = 0;
    cfg.placement = c.placement;
    const SimResult rf = simulate(wf, fifo, cfg);
    const SimResult rs = simulate(wf, fair, cfg);
    fifo_co2.push_back(rf.total_gco2);
    fair_co2.push_back(rs.total_gco2);
    t.row({c.label, TextTable::num(rf.makespan_s, 1),
           TextTable::num(rs.makespan_s, 1), TextTable::num(rf.total_gco2, 1),
           TextTable::num(rs.total_gco2, 1),
           TextTable::num(100.0 * (rs.total_gco2 / rf.total_gco2 - 1.0), 1)});
  }
  t.print(std::cout);

  // The qualitative ordering of placements must agree across models.
  bool same_order = true;
  for (std::size_t i = 0; i < cases.size(); ++i)
    for (std::size_t j = 0; j < cases.size(); ++j)
      if ((fifo_co2[i] < fifo_co2[j]) != (fair_co2[i] < fair_co2[j]))
        same_order = false;
  std::cout << "\nplacement ordering identical under both link models: "
            << (same_order ? "yes" : "NO") << "\n"
            << "expected shape: fair sharing shifts absolute numbers a few "
               "percent but preserves every qualitative conclusion.\n";
  return same_order ? 0 : 1;
}
