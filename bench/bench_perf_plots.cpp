// EASYPAP-style performance plots (§II: "EASYPAP features performance
// graph plot tools" used in every student report). Produces the two plot
// datasets the assignment's reports revolve around:
//  * out/perf_iterations.csv — per-iteration wall time for eager vs lazy
//    on a sparsifying workload (the lazy curve collapses as tiles go
//    quiet; the eager curve stays flat);
//  * out/perf_sweep.csv — the variant x tile-size sweep (the "performance
//    plots" behind the reports), also printed as a table.
#include <filesystem>
#include <iostream>

#include "pap/monitor.hpp"
#include "sandpile/field.hpp"
#include "sandpile/variants.hpp"

int main() {
  using namespace peachy;
  using namespace peachy::sandpile;
  std::filesystem::create_directories("out");

  // --- Per-iteration curves: eager vs lazy on the same workload.
  {
    pap::Experiment curves({"variant", "iteration"}, {"wall_us"});
    for (const Variant v : {Variant::kOmpTiledSync, Variant::kOmpLazySync}) {
      Field f = sparse_random_pile(512, 512, 0.0008, 500, 2000, 77);
      VariantOptions opt;
      opt.tile_h = opt.tile_w = 32;
      // Thread the monitor through run_variant via the trace-free hook:
      // run_variant wires the sync swap itself, so sample around it by
      // running the variant and reading its per-iteration trace instead.
      TraceRecorder trace(64);
      opt.trace = &trace;
      const VariantOutcome out = run_variant(v, f, opt);
      for (int it = 0; it < out.run.iterations; ++it) {
        const auto s = summarize_iteration(trace.iteration(it), it, 64);
        curves.record({to_string(v), std::to_string(it)},
                      {static_cast<double>(s.busy_ns) / 1e3});
      }
    }
    curves.write_csv("out/perf_iterations.csv");
    std::cout << "wrote out/perf_iterations.csv (per-iteration busy time, "
                 "eager vs lazy)\n";
  }

  // --- The sweep table: variants x tile sizes on one workload.
  {
    pap::Experiment sweep({"variant", "tile"},
                          {"wall_ms", "iterations", "tasks"});
    for (const Variant v :
         {Variant::kOmpTiledSync, Variant::kOmpLazySync,
          Variant::kOmpSyncVector, Variant::kOmpLazyAsyncWave}) {
      for (int tile : {16, 32, 64}) {
        Field f = sparse_random_pile(512, 512, 0.0008, 500, 2000, 77);
        VariantOptions opt;
        opt.tile_h = opt.tile_w = tile;
        const VariantOutcome out = run_variant(v, f, opt);
        sweep.record({to_string(v), std::to_string(tile)},
                     {static_cast<double>(out.run.elapsed_ns) / 1e6,
                      static_cast<double>(out.run.iterations),
                      static_cast<double>(out.run.tasks)});
      }
    }
    sweep.table(1).print(std::cout);
    sweep.write_csv("out/perf_sweep.csv");
    std::cout << "\nwrote out/perf_sweep.csv\n";
  }

  std::cout << "expected shape: the lazy per-iteration curve decays as the "
               "configuration settles while the eager curve stays flat; "
               "lazy variants dominate the sweep on sparse input.\n";
  return 0;
}
