// google-benchmark microbenchmarks of the sandpile kernels and variants —
// the per-iteration costs behind the §II.B performance plots: generic vs
// vector-friendly synchronous kernels, tiled vs untiled sweeps, and
// full-stabilization costs per variant.
#include <benchmark/benchmark.h>

#include "pap/tile_grid.hpp"
#include "sandpile/field.hpp"
#include "sandpile/kernels.hpp"
#include "sandpile/variants.hpp"

namespace {

using namespace peachy;
using namespace peachy::sandpile;

// One full synchronous sweep via the generic per-cell path.
void BM_SyncKernelGeneric(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Field f = sparse_random_pile(n, n, 0.3, 4, 64, 1);
  SyncEngine engine(f);
  pap::Tile whole{0, 0, 0, 0, 0, n, n};
  whole.h = whole.w = n;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.compute_tile(whole));
    engine.swap_buffers();
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_SyncKernelGeneric)->Arg(256)->Arg(512)->Arg(1024);

// Same sweep through the vector-friendly path (assignment 3's rewrite).
void BM_SyncKernelVector(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Field f = sparse_random_pile(n, n, 0.3, 4, 64, 1);
  SyncEngine engine(f);
  pap::Tile whole{0, 0, 0, 0, 0, n, n};
  whole.h = whole.w = n;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.compute_tile_vector(whole));
    engine.swap_buffers();
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_SyncKernelVector)->Arg(256)->Arg(512)->Arg(1024);

// Tiled sweep: cache behaviour of the tile loop at several tile sizes.
void BM_SyncTiledSweep(benchmark::State& state) {
  const int n = 1024;
  const int tile = static_cast<int>(state.range(0));
  Field f = sparse_random_pile(n, n, 0.3, 4, 64, 1);
  SyncEngine engine(f);
  pap::TileGrid tiles(n, n, tile, tile);
  for (auto _ : state) {
    for (int i = 0; i < tiles.count(); ++i)
      benchmark::DoNotOptimize(engine.compute_tile_vector(tiles.tile(i)));
    engine.swap_buffers();
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_SyncTiledSweep)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// One in-place asynchronous sweep.
void BM_AsyncSweep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Field f = sparse_random_pile(n, n, 0.3, 4, 64, 1);
    AsyncEngine engine(f);
    pap::Tile whole{0, 0, 0, 0, 0, n, n};
    whole.h = whole.w = n;
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine.sweep_tile(whole));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_AsyncSweep)->Arg(256)->Arg(512);

// Full stabilization per variant on a fixed workload (the end-to-end cost
// the students' performance plots compare).
void BM_VariantStabilize(benchmark::State& state) {
  const Variant v = all_variants()[static_cast<std::size_t>(state.range(0))];
  state.SetLabel(to_string(v));
  for (auto _ : state) {
    state.PauseTiming();
    Field f = center_pile(256, 256, 60000);
    state.ResumeTiming();
    VariantOptions opt;
    opt.tile_h = opt.tile_w = 32;
    benchmark::DoNotOptimize(run_variant(v, f, opt));
  }
}
BENCHMARK(BM_VariantStabilize)->DenseRange(0, 7);

}  // namespace

BENCHMARK_MAIN();
