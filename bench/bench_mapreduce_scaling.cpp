// §III scaling study: the MapReduce engine on the warming-stripes workload.
//
// The assignment runs "not only for small data sets but optionally also
// for larger data sets" on the course's Hadoop cluster. This bench sweeps
// (a) worker counts on the standard 1881-2019 dataset and (b) dataset size
// at fixed workers (higher time resolution = more weather stations, the
// growth axes §III.A.4 names), comparing the typed engine and the
// streaming flavor against the sequential reference.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "climate/dwd.hpp"
#include "climate/pipeline.hpp"
#include "core/table.hpp"
#include "core/timer.hpp"

namespace {

using namespace peachy;
using namespace peachy::climate;

double max_error(const AnnualSeries& a, const AnnualSeries& b) {
  double err = 0;
  for (std::size_t i = 0; i < a.mean_c.size(); ++i)
    if (a.has_any[i]) err = std::max(err, std::abs(a.mean_c[i] - b.mean_c[i]));
  return err;
}

}  // namespace

int main() {
  std::cout << "MapReduce scaling on the warming-stripes workload\n\n";

  // --- (a) worker sweep on the standard dataset.
  const MonthlyDataset data = synthesize_dwd({});
  WallTimer t0;
  const AnnualSeries reference = annual_means_reference(data);
  const double ref_ms = t0.elapsed_ms();

  std::cout << "worker sweep (1881-2019, 12 files x 139 years x 16 "
               "states; sequential reference: "
            << TextTable::num(ref_ms, 1) << " ms)\n";
  TextTable workers({"map workers", "reduce workers", "typed ms",
                     "streaming ms", "max err"});
  for (int w : {1, 2, 4, 8}) {
    PipelineConfig cfg;
    cfg.map_workers = w;
    cfg.reduce_workers = std::max(1, w / 2);
    WallTimer t1;
    const AnnualSeries typed = annual_means_mapreduce(data, cfg);
    const double typed_ms = t1.elapsed_ms();

    mr::streaming::StreamingConfig scfg;
    scfg.map_workers = w;
    scfg.reduce_workers = std::max(1, w / 2);
    t1.reset();
    const AnnualSeries streamed = annual_means_streaming(
        month_major_all_lines(data), data.first_year(), data.last_year(),
        scfg);
    const double stream_ms = t1.elapsed_ms();

    workers.row({TextTable::num(static_cast<std::int64_t>(w)),
                 TextTable::num(static_cast<std::int64_t>(cfg.reduce_workers)),
                 TextTable::num(typed_ms, 1), TextTable::num(stream_ms, 1),
                 TextTable::num(std::max(max_error(typed, reference),
                                         max_error(streamed, reference)),
                                12)});
  }
  workers.print(std::cout);

  // --- (b) data-size sweep (replicating the dataset to simulate more
  // stations/time resolution).
  std::cout << "\ndata-size sweep (4 map / 2 reduce workers; input lines "
               "replicated to simulate more stations)\n";
  TextTable sizes({"replication", "input lines", "map outputs", "typed ms",
                   "MB-ish"});
  const auto base_lines = month_major_all_lines(data);
  for (int rep : {1, 2, 4, 8, 16}) {
    std::vector<std::string> lines;
    lines.reserve(base_lines.size() * static_cast<std::size_t>(rep));
    for (int i = 0; i < rep; ++i)
      lines.insert(lines.end(), base_lines.begin(), base_lines.end());

    WallTimer t1;
    const AnnualSeries s = annual_means_streaming(
        lines, data.first_year(), data.last_year(), {4, 2, 2});
    const double ms = t1.elapsed_ms();
    // Replication multiplies counts per key but must not move the means.
    const double err = max_error(s, reference);
    std::size_t bytes = 0;
    for (const auto& l : lines) bytes += l.size();
    sizes.row({TextTable::num(static_cast<std::int64_t>(rep)),
               TextTable::num(static_cast<std::int64_t>(lines.size())),
               TextTable::num(static_cast<std::int64_t>(
                   lines.size() * 16)),  // ~16 obs per data line
               TextTable::num(ms, 1),
               TextTable::num(static_cast<double>(bytes) / 1e6, 1)});
    if (err > 1e-9) {
      std::cout << "ERROR: replicated dataset changed the means by " << err
                << "\n";
      return 1;
    }
  }
  sizes.print(std::cout);
  std::cout << "\nexpected shape: runtime grows linearly with input size; "
               "worker sweeps show engine overheads on this container "
               "(single core), with exact results in every configuration.\n";
  return 0;
}
