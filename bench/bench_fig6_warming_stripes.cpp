// Fig. 6 reproduction: warming stripes for Germany, 1881-2019.
//
// Regenerates the figure from the synthetic DWD-like dataset via the
// MapReduce pipeline and prints the quantitative fingerprint the caption
// gives: the annual range ("from a low around 7°C to a high around 10°C")
// and the colorbar rule (overall mean ± 1.5°C). Also verifies that the
// MapReduce result equals the sequential reference and that the streaming
// (Hadoop-flavored) pipeline agrees.
#include <algorithm>
#include <filesystem>
#include <iostream>

#include "climate/dwd.hpp"
#include "climate/pipeline.hpp"
#include "climate/stripes.hpp"
#include "core/table.hpp"

int main() {
  using namespace peachy;
  using namespace peachy::climate;
  std::filesystem::create_directories("out");

  const DwdModelParams params;  // 1881-2019
  const MonthlyDataset data = synthesize_dwd(params);

  PipelineConfig cfg;
  cfg.map_workers = 4;
  cfg.reduce_workers = 2;
  const AnnualSeries series = annual_means_mapreduce(data, cfg);
  const AnnualSeries reference = annual_means_reference(data);
  const AnnualSeries streamed = annual_means_streaming(
      month_major_all_lines(data), params.first_year, params.last_year, {});

  double lo = 1e9, hi = -1e9, max_err = 0;
  int lo_year = 0, hi_year = 0;
  for (std::size_t i = 0; i < series.mean_c.size(); ++i) {
    if (series.mean_c[i] < lo) {
      lo = series.mean_c[i];
      lo_year = series.year_of(i);
    }
    if (series.mean_c[i] > hi) {
      hi = series.mean_c[i];
      hi_year = series.year_of(i);
    }
    max_err = std::max({max_err,
                        std::abs(series.mean_c[i] - reference.mean_c[i]),
                        std::abs(streamed.mean_c[i] - reference.mean_c[i])});
  }
  const double mean = series.overall_mean();

  std::cout << "Fig. 6 — warming stripes, Germany " << params.first_year
            << "-" << params.last_year << " (synthetic DWD model)\n\n";
  TextTable table({"quantity", "paper", "measured"});
  table.row({"years", "1881-2019",
             std::to_string(params.first_year) + "-" +
                 std::to_string(params.last_year)});
  table.row({"annual low (°C)", "~7",
             TextTable::num(lo, 2) + " (" + std::to_string(lo_year) + ")"});
  table.row({"annual high (°C)", "~10",
             TextTable::num(hi, 2) + " (" + std::to_string(hi_year) + ")"});
  table.row({"colorbar rule", "mean +/- 1.5°C",
             TextTable::num(mean - 1.5, 2) + " .. " +
                 TextTable::num(mean + 1.5, 2)});
  table.row({"mapreduce == reference", "exact",
             "max err " + TextTable::num(max_err, 12)});
  table.print(std::cout);

  render_stripes(series).write_ppm("out/fig6_warming_stripes.ppm");
  std::cout << "\nimage: out/fig6_warming_stripes.ppm ("
            << series.mean_c.size() << " stripes)\n";
  return max_err < 1e-9 ? 0 : 1;
}
