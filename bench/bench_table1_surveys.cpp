// Archival reproduction of the paper's human-subject results:
//   * Table I  — EduWRENCH assignment student feedback (n = 11, §IV.D);
//   * Fig. 5   — EASYPAP survey summary (§II.D);
//   * §III.B   — Warming-Stripes course survey bullets (n = 8).
//
// These are classroom surveys, not system measurements: they cannot be
// re-measured computationally, so this bench archives the published
// numbers verbatim and regenerates the tables (marked "archival" in
// EXPERIMENTS.md). Totals are validated against the stated sample sizes.
#include <iostream>

#include "core/error.hpp"
#include "core/table.hpp"

namespace {

using peachy::TextTable;

struct LikertRow {
  const char* question;
  const char* choices[5];
  int answers[5];  // -1 = choice not offered
};

// Table I, verbatim from the paper (n = 11; "-" entries are zero).
constexpr LikertRow kTable1[] = {
    {"How easy / difficult is the assignment?",
     {"very easy", "somewhat easy", "neither easy nor difficult",
      "somewhat difficult", "very difficult"},
     {1, 6, 4, 0, 0}},
    {"How useful is the assignment?",
     {"very useful", "useful", "somewhat useful", "of little use",
      "not useful"},
     {5, 3, 3, 0, 0}},
    {"To what extent did the assignment help you learn new things?",
     {"to a great extent", "to a moderate extent", "to some extent",
      "to a small extent", "not at all"},
     {5, 4, 2, 0, 0}},
    {"Are you interested in learning more about this topic?",
     {"yes", "no", nullptr, nullptr, nullptr},
     {10, 1, -1, -1, -1}},
    {"How useful is simulation in this assignment?",
     {"very useful", "useful", "somewhat useful", "of little use",
      "not useful"},
     {6, 3, 3, 0, 0}},
    {"How valuable is the overall learning experience in the module?",
     {"very much", "quite a bit", "somewhat", "a little", "not at all"},
     {7, 3, 1, 0, 0}},
};

}  // namespace

int main() {
  std::cout << "Table I — student feedback on the carbon-footprint "
               "assignment (n = 11, ICS 632, Fall 2021) [archival]\n\n";
  {
    TextTable t({"question", "choice", "#answers"});
    for (const LikertRow& row : kTable1) {
      bool first = true;
      int total = 0;
      for (int i = 0; i < 5; ++i) {
        if (row.answers[i] < 0 || row.choices[i] == nullptr) continue;
        t.row({first ? row.question : "",
               row.choices[i],
               row.answers[i] ? std::to_string(row.answers[i]) : "-"});
        total += row.answers[i];
        first = false;
      }
      // Note: the published table itself contains one row summing to 12
      // with n = 11 ("How useful is simulation...": 6+3+3). We archive it
      // verbatim and only guard against transcription drift.
      PEACHY_REQUIRE(total == 11 || total == 12,
                     "Table I row total drifted from the published values: "
                         << row.question << " -> " << total);
      if (total != 11)
        std::cout << "  [note] row sums to " << total
                  << " although n = 11 — inconsistency present in the "
                     "published table\n";
    }
    t.print(std::cout);
  }

  std::cout << "\nFig. 5 — EASYPAP survey (§II.D) [archival narrative]\n\n";
  {
    TextTable t({"item", "reported outcome"});
    t.row({"student involvement", "most students very involved"});
    t.row({"EASYPAP productivity & motivation", "increased (Fig. 5)"});
    t.row({"first report", "half of students submitted >=1 buggy version"});
    t.row({"after detailed feedback", "quality greatly improved"});
    t.row({"beyond expectations",
           "lazy GPU implementations; dynamic CPU/GPU load balancing"});
    t.row({"rigor", "more rigorous from the second report onwards"});
    t.print(std::cout);
  }

  std::cout << "\n§III.B — Warming-Stripes course survey (n = 8, winter "
               "2021/2022) [archival]\n\n";
  {
    TextTable t({"question", "result"});
    t.row({"prerequisites sufficient?", "6 sufficient, 2 absolutely sufficient"});
    t.row({"difficulty", "7 reasonable, 1 difficult"});
    t.row({"interest in MapReduce", "7 increased"});
    t.row({"understanding data-science workflow steps", "7 helped"});
    t.row({"helped with later assignments", "4 yes"});
    t.row({"coolness", "7 mostly cool, 1 very cool"});
    t.row({"climate-crisis awareness changed", "7 no (already high), 2 noted "
                                               "reproducing the stripes was "
                                               "interesting"});
    t.print(std::cout);
  }

  std::cout << "\nAll archived totals validated against stated sample sizes.\n";
  return 0;
}
