// §II.B (4th assignment) reproduction: the Ghost Cell Pattern trade-off —
// "the communication overheads are such that students have to develop a
// solution that trades redundant computation for less-frequent
// communication".
//
// Sweeps halo depth k and rank count for the distributed synchronous
// sandpile over the in-process message-passing runtime, reporting exchange
// rounds, message counts, bytes moved, wall time and a correctness check
// against the sequential reference.
// The final section re-runs a smaller sweep over both mpp transports —
// in-process mailboxes vs real loopback TCP — and records the comparison
// in out/BENCH_net.json.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <span>
#include <vector>

#include "core/json.hpp"
#include "core/table.hpp"
#include "core/timer.hpp"
#include "sandpile/distributed.hpp"
#include "sandpile/distributed2d.hpp"
#include "sandpile/field.hpp"

int main() {
  using namespace peachy;
  using namespace peachy::sandpile;

  constexpr int kSize = 512;
  const Field initial = center_pile(kSize, kSize, 150000);
  Field reference = initial;
  stabilize_reference(reference);

  std::cout << "ghost-cell trade-off — " << kSize << "x" << kSize
            << " pile, 150 000 grains centered, synchronous updates over "
               "mpp (in-process message passing)\n\n";

  TextTable table({"ranks", "halo k", "rounds", "iterations", "messages",
                   "MB sent", "msgs/iteration", "wall ms", "correct"});
  for (int ranks : {2, 4, 8}) {
    for (int k : {1, 2, 4, 8}) {
      DistributedOptions opt;
      opt.ranks = ranks;
      opt.halo_depth = k;
      WallTimer timer;
      const DistributedResult r = stabilize_distributed(initial, opt);
      const double ms = timer.elapsed_ms();
      table.row(
          {TextTable::num(static_cast<std::int64_t>(ranks)),
           TextTable::num(static_cast<std::int64_t>(k)),
           TextTable::num(static_cast<std::int64_t>(r.rounds)),
           TextTable::num(static_cast<std::int64_t>(r.iterations)),
           TextTable::num(static_cast<std::int64_t>(r.comm.messages_sent)),
           TextTable::num(static_cast<double>(r.comm.bytes_sent) / 1e6, 1),
           TextTable::num(static_cast<double>(r.comm.messages_sent) /
                              r.iterations,
                          2),
           TextTable::num(ms, 1),
           r.field.same_interior(reference) ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: messages per iteration fall as 1/k "
               "(less-frequent communication) while bytes per exchange grow "
               "with k (deeper halos + redundant computation) — the "
               "trade-off of the Ghost Cell Pattern.\n";

  // --- 1-D rows vs 2-D blocks: the surface-to-volume argument.
  std::cout << "\n1-D row decomposition vs 2-D block decomposition (16 "
               "ranks, k = 1):\n";
  TextTable decomp({"decomposition", "rounds", "messages", "MB sent",
                    "bytes/rank/round", "correct"});
  {
    DistributedOptions o1;
    o1.ranks = 16;
    const DistributedResult r1 = stabilize_distributed(initial, o1);
    decomp.row({"1-D (16x1 rows)",
                TextTable::num(static_cast<std::int64_t>(r1.rounds)),
                TextTable::num(static_cast<std::int64_t>(
                    r1.comm.messages_sent)),
                TextTable::num(static_cast<double>(r1.comm.bytes_sent) / 1e6, 1),
                TextTable::num(static_cast<double>(r1.comm.bytes_sent) /
                                   (16.0 * r1.rounds),
                               0),
                r1.field.same_interior(reference) ? "yes" : "NO"});

    Distributed2dOptions o2;
    o2.ranks_y = 4;
    o2.ranks_x = 4;
    const Distributed2dResult r2 = stabilize_distributed_2d(initial, o2);
    decomp.row({"2-D (4x4 blocks)",
                TextTable::num(static_cast<std::int64_t>(r2.rounds)),
                TextTable::num(static_cast<std::int64_t>(
                    r2.comm.messages_sent)),
                TextTable::num(static_cast<double>(r2.comm.bytes_sent) / 1e6, 1),
                TextTable::num(static_cast<double>(r2.comm.bytes_sent) /
                                   (16.0 * r2.rounds),
                               0),
                r2.field.same_interior(reference) ? "yes" : "NO"});
  }
  decomp.print(std::cout);
  std::cout << "\nexpected shape: 2-D blocks move fewer bytes per rank per "
               "round (perimeter scales as 1/sqrt(P) vs 1-D's constant "
               "full-width rows), at the cost of twice the messages.\n";

  // --- Transport comparison: the same halo exchanges over in-process
  // mailboxes vs real loopback sockets (framing + CRC + ack/retransmit).
  constexpr int kNetSize = 128;
  const Field net_initial = center_pile(kNetSize, kNetSize, 20000);
  Field net_reference = net_initial;
  stabilize_reference(net_reference);

  std::cout << "\ninproc vs tcp transport — " << kNetSize << "x" << kNetSize
            << " pile, 20 000 grains centered:\n";
  TextTable net_table({"ranks", "halo k", "transport", "rounds", "messages",
                       "MB sent", "retransmits", "wall ms", "us/exchange",
                       "correct"});
  json::Array net_rows;
  for (int ranks : {2, 4}) {
    for (int k : {1, 2, 4, 8}) {
      double inproc_ms = 0.0;
      for (const auto transport :
           {mpp::TransportKind::kInproc, mpp::TransportKind::kTcp}) {
        DistributedOptions opt;
        opt.ranks = ranks;
        opt.halo_depth = k;
        opt.run.transport = transport;
        WallTimer timer;
        const DistributedResult r = stabilize_distributed(net_initial, opt);
        const double ms = timer.elapsed_ms();
        if (transport == mpp::TransportKind::kInproc) inproc_ms = ms;
        const bool correct = r.field.same_interior(net_reference);
        net_table.row(
            {TextTable::num(static_cast<std::int64_t>(ranks)),
             TextTable::num(static_cast<std::int64_t>(k)),
             mpp::to_string(transport),
             TextTable::num(static_cast<std::int64_t>(r.rounds)),
             TextTable::num(static_cast<std::int64_t>(r.comm.messages_sent)),
             TextTable::num(static_cast<double>(r.comm.bytes_sent) / 1e6, 2),
             TextTable::num(static_cast<std::int64_t>(r.net.retransmits)),
             TextTable::num(ms, 1),
             TextTable::num(ms * 1e3 / r.rounds, 1),
             correct ? "yes" : "NO"});
        json::Object row;
        row["ranks"] = json::Value(static_cast<std::int64_t>(ranks));
        row["halo_depth"] = json::Value(static_cast<std::int64_t>(k));
        row["transport"] = json::Value(mpp::to_string(transport));
        row["rounds"] = json::Value(static_cast<std::int64_t>(r.rounds));
        row["iterations"] =
            json::Value(static_cast<std::int64_t>(r.iterations));
        row["messages"] =
            json::Value(static_cast<std::int64_t>(r.comm.messages_sent));
        row["bytes"] =
            json::Value(static_cast<std::int64_t>(r.comm.bytes_sent));
        row["retransmits"] =
            json::Value(static_cast<std::int64_t>(r.net.retransmits));
        row["wall_ms"] = json::Value(ms);
        row["us_per_exchange"] = json::Value(ms * 1e3 / r.rounds);
        if (transport == mpp::TransportKind::kTcp)
          row["tcp_vs_inproc"] = json::Value(ms / inproc_ms);
        row["correct"] = json::Value(correct);
        net_rows.push_back(json::Value(std::move(row)));
      }
    }
  }
  net_table.print(std::cout);
  std::cout << "\nexpected shape: tcp pays a per-exchange latency floor "
               "(syscalls, framing, acks), so deeper halos close more of the "
               "gap to inproc — exactly the exchange-frequency trade-off the "
               "pattern teaches.\n";

  // --- Sliding-window sweep: raw burst throughput. Rank 0 pushes a fixed
  // burst of frames at rank 1; window 1 is the stop-and-wait protocol this
  // transport replaced (one frame in flight, one ack round-trip per frame),
  // so the column is the before/after comparison in one table.
  constexpr int kBurstFrames = 256;
  constexpr std::size_t kBurstBytes = 4096;
  std::cout << "\nsliding-window burst throughput — 2 tcp ranks, "
            << kBurstFrames << " x " << kBurstBytes / 1024
            << " KiB frames (window 1 = stop-and-wait baseline):\n";
  TextTable burst_table(
      {"window", "wall ms", "MB/s", "stalls", "acks", "retransmits"});
  json::Array burst_rows;
  for (const int window : {1, 2, 4, 8, 16, 32}) {
    mpp::RunOptions run;
    run.transport = mpp::TransportKind::kTcp;
    run.tcp.window_frames = window;
    WallTimer timer;
    const mpp::RunOutcome out = mpp::run_world(2, run, [](mpp::Comm& comm) {
      std::vector<std::byte> buf(kBurstBytes);
      if (comm.rank() == 0) {
        for (int i = 0; i < kBurstFrames; ++i)
          comm.send(1, 1, std::span<const std::byte>(buf));
        std::uint32_t done = 0;
        comm.recv(1, 2, &done, 1);  // completion: every frame arrived
      } else {
        for (int i = 0; i < kBurstFrames; ++i)
          comm.recv(0, 1, buf.data(), buf.size());
        const std::uint32_t done = 1;
        comm.send(0, 2, &done, 1);
      }
    });
    const double ms = timer.elapsed_ms();
    const double mb_per_s =
        static_cast<double>(kBurstFrames) * kBurstBytes / 1e6 / (ms / 1e3);
    burst_table.row(
        {TextTable::num(static_cast<std::int64_t>(window)),
         TextTable::num(ms, 1), TextTable::num(mb_per_s, 1),
         TextTable::num(static_cast<std::int64_t>(out.net.window_stalls)),
         TextTable::num(static_cast<std::int64_t>(out.net.acks_sent)),
         TextTable::num(static_cast<std::int64_t>(out.net.retransmits))});
    json::Object row;
    row["window"] = json::Value(static_cast<std::int64_t>(window));
    row["frames"] = json::Value(static_cast<std::int64_t>(kBurstFrames));
    row["frame_bytes"] = json::Value(static_cast<std::int64_t>(kBurstBytes));
    row["wall_ms"] = json::Value(ms);
    row["mb_per_s"] = json::Value(mb_per_s);
    row["window_stalls"] =
        json::Value(static_cast<std::int64_t>(out.net.window_stalls));
    row["acks_sent"] =
        json::Value(static_cast<std::int64_t>(out.net.acks_sent));
    row["retransmits"] =
        json::Value(static_cast<std::int64_t>(out.net.retransmits));
    burst_rows.push_back(json::Value(std::move(row)));
  }
  burst_table.print(std::cout);
  std::cout << "\nexpected shape: throughput rises (or stays flat) with the "
               "window — stop-and-wait pays one ack round-trip per frame, "
               "the pipelined window amortizes it over the whole burst.\n";

  // --- Sliding-window sweep over the real halo exchange.
  std::cout << "\nsliding-window halo sweep — tcp, 4 ranks, k = 1:\n";
  TextTable win_table(
      {"window", "wall ms", "us/exchange", "stalls", "acks", "correct"});
  json::Array win_rows;
  for (const int window : {1, 2, 4, 8, 16, 32}) {
    DistributedOptions opt;
    opt.ranks = 4;
    opt.halo_depth = 1;
    opt.run.transport = mpp::TransportKind::kTcp;
    opt.run.tcp.window_frames = window;
    WallTimer timer;
    const DistributedResult r = stabilize_distributed(net_initial, opt);
    const double ms = timer.elapsed_ms();
    const bool correct = r.field.same_interior(net_reference);
    win_table.row(
        {TextTable::num(static_cast<std::int64_t>(window)),
         TextTable::num(ms, 1), TextTable::num(ms * 1e3 / r.rounds, 1),
         TextTable::num(static_cast<std::int64_t>(r.net.window_stalls)),
         TextTable::num(static_cast<std::int64_t>(r.net.acks_sent)),
         correct ? "yes" : "NO"});
    json::Object row;
    row["window"] = json::Value(static_cast<std::int64_t>(window));
    row["wall_ms"] = json::Value(ms);
    row["us_per_exchange"] = json::Value(ms * 1e3 / r.rounds);
    row["window_stalls"] =
        json::Value(static_cast<std::int64_t>(r.net.window_stalls));
    row["acks_sent"] =
        json::Value(static_cast<std::int64_t>(r.net.acks_sent));
    row["retransmits"] =
        json::Value(static_cast<std::int64_t>(r.net.retransmits));
    row["correct"] = json::Value(correct);
    win_rows.push_back(json::Value(std::move(row)));
  }
  win_table.print(std::cout);

  json::Object doc;
  doc["grid"] = json::Value(static_cast<std::int64_t>(kNetSize));
  doc["grains"] = json::Value(static_cast<std::int64_t>(20000));
  doc["sweep"] = json::Value(std::move(net_rows));
  doc["burst_window_sweep"] = json::Value(std::move(burst_rows));
  doc["window_sweep"] = json::Value(std::move(win_rows));
  std::filesystem::create_directories("out");
  std::ofstream("out/BENCH_net.json")
      << json::Value(std::move(doc)).dump(true) << "\n";
  std::cout << "\nwrote out/BENCH_net.json\n";
  return 0;
}
