// §II.B (4th assignment) reproduction: the Ghost Cell Pattern trade-off —
// "the communication overheads are such that students have to develop a
// solution that trades redundant computation for less-frequent
// communication".
//
// Sweeps halo depth k and rank count for the distributed synchronous
// sandpile over the in-process message-passing runtime, reporting exchange
// rounds, message counts, bytes moved, wall time and a correctness check
// against the sequential reference.
#include <iostream>

#include "core/table.hpp"
#include "core/timer.hpp"
#include "sandpile/distributed.hpp"
#include "sandpile/distributed2d.hpp"
#include "sandpile/field.hpp"

int main() {
  using namespace peachy;
  using namespace peachy::sandpile;

  constexpr int kSize = 512;
  const Field initial = center_pile(kSize, kSize, 150000);
  Field reference = initial;
  stabilize_reference(reference);

  std::cout << "ghost-cell trade-off — " << kSize << "x" << kSize
            << " pile, 150 000 grains centered, synchronous updates over "
               "mpp (in-process message passing)\n\n";

  TextTable table({"ranks", "halo k", "rounds", "iterations", "messages",
                   "MB sent", "msgs/iteration", "wall ms", "correct"});
  for (int ranks : {2, 4, 8}) {
    for (int k : {1, 2, 4, 8}) {
      DistributedOptions opt;
      opt.ranks = ranks;
      opt.halo_depth = k;
      WallTimer timer;
      const DistributedResult r = stabilize_distributed(initial, opt);
      const double ms = timer.elapsed_ms();
      table.row(
          {TextTable::num(static_cast<std::int64_t>(ranks)),
           TextTable::num(static_cast<std::int64_t>(k)),
           TextTable::num(static_cast<std::int64_t>(r.rounds)),
           TextTable::num(static_cast<std::int64_t>(r.iterations)),
           TextTable::num(static_cast<std::int64_t>(r.comm.messages_sent)),
           TextTable::num(static_cast<double>(r.comm.bytes_sent) / 1e6, 1),
           TextTable::num(static_cast<double>(r.comm.messages_sent) /
                              r.iterations,
                          2),
           TextTable::num(ms, 1),
           r.field.same_interior(reference) ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: messages per iteration fall as 1/k "
               "(less-frequent communication) while bytes per exchange grow "
               "with k (deeper halos + redundant computation) — the "
               "trade-off of the Ghost Cell Pattern.\n";

  // --- 1-D rows vs 2-D blocks: the surface-to-volume argument.
  std::cout << "\n1-D row decomposition vs 2-D block decomposition (16 "
               "ranks, k = 1):\n";
  TextTable decomp({"decomposition", "rounds", "messages", "MB sent",
                    "bytes/rank/round", "correct"});
  {
    DistributedOptions o1;
    o1.ranks = 16;
    const DistributedResult r1 = stabilize_distributed(initial, o1);
    decomp.row({"1-D (16x1 rows)",
                TextTable::num(static_cast<std::int64_t>(r1.rounds)),
                TextTable::num(static_cast<std::int64_t>(
                    r1.comm.messages_sent)),
                TextTable::num(static_cast<double>(r1.comm.bytes_sent) / 1e6, 1),
                TextTable::num(static_cast<double>(r1.comm.bytes_sent) /
                                   (16.0 * r1.rounds),
                               0),
                r1.field.same_interior(reference) ? "yes" : "NO"});

    Distributed2dOptions o2;
    o2.ranks_y = 4;
    o2.ranks_x = 4;
    const Distributed2dResult r2 = stabilize_distributed_2d(initial, o2);
    decomp.row({"2-D (4x4 blocks)",
                TextTable::num(static_cast<std::int64_t>(r2.rounds)),
                TextTable::num(static_cast<std::int64_t>(
                    r2.comm.messages_sent)),
                TextTable::num(static_cast<double>(r2.comm.bytes_sent) / 1e6, 1),
                TextTable::num(static_cast<double>(r2.comm.bytes_sent) /
                                   (16.0 * r2.rounds),
                               0),
                r2.field.same_interior(reference) ? "yes" : "NO"});
  }
  decomp.print(std::cout);
  std::cout << "\nexpected shape: 2-D blocks move fewer bytes per rank per "
               "round (perimeter scales as 1/sqrt(P) vs 1-D's constant "
               "full-width rows), at the cost of twice the messages.\n";
  return 0;
}
