// §IV Tab #2, the paper's stated future work, implemented:
//   "In the future, we will run our simulator to exhaustively evaluate all
//    possible options so as to compute the actual optimal CO2 emission for
//    this (NP-complete) problem."
//
// Placement search space restricted to per-level cloud fractions (the same
// space the assignment's UI exposes): exhaustive {0, 1/2, 1}^9 grid
// (19 683 simulations), then hill-climb refinement at 1/8 granularity.
// Prints the optimum, its placement, and how far the Q1/Q2 answers are
// from it — the number the authors wanted to state in the assignment.
#include <iostream>

#include "core/table.hpp"
#include "core/timer.hpp"
#include "wfsim/montage.hpp"
#include "wfsim/schedule.hpp"

int main() {
  using namespace peachy;
  using namespace peachy::wf;

  const Workflow wf = make_montage();
  const Platform plat = eduwrench_platform();

  std::cout << "Tab #2 exhaustive CO2 optimum (per-level cloud fractions, "
               "12 nodes @ p0 + 16 VMs)\n\n";

  WallTimer timer;
  const CloudSearchResult grid =
      exhaustive_cloud_search(wf, plat, 12, 0, {0.0, 0.5, 1.0});
  const double grid_s = timer.elapsed_s();
  timer.reset();
  const CloudSearchResult best =
      refine_cloud_fractions(wf, plat, 12, 0, grid.fractions, 0.125);
  const double refine_s = timer.elapsed_s();

  RunConfig all_local;
  all_local.nodes_on = 12;
  all_local.pstate = 0;
  const SimResult local = simulate(wf, plat, all_local);
  RunConfig all_cloud = all_local;
  all_cloud.placement = Placement::all(wf, Site::kCloud);
  const SimResult cloud = simulate(wf, plat, all_cloud);

  TextTable t({"configuration", "time_s", "total gCO2e", "vs optimum"});
  auto add = [&](const std::string& label, const SimResult& r) {
    t.row({label, TextTable::num(r.makespan_s, 1),
           TextTable::num(r.total_gco2, 1),
           "+" + TextTable::num(100.0 * (r.total_gco2 /
                                             best.result.total_gco2 -
                                         1.0),
                                1) +
               "%"});
  };
  add("all local (Q1)", local);
  add("all cloud (Q1)", cloud);
  add("grid optimum {0,1/2,1}^9", grid.result);
  add("refined optimum (1/8 steps)", best.result);
  t.print(std::cout);

  std::cout << "\noptimal per-level cloud fractions (L0..L8): [";
  for (std::size_t i = 0; i < best.fractions.size(); ++i)
    std::cout << (i ? " " : "") << TextTable::num(best.fractions[i], 3);
  std::cout << "]\n"
            << "grid: " << grid.evaluated << " simulations in "
            << TextTable::num(grid_s, 1) << " s; refinement: "
            << best.evaluated << " more in " << TextTable::num(refine_s, 1)
            << " s\n"
            << "actual optimal CO2 emission (restricted space): "
            << TextTable::num(best.result.total_gco2, 1) << " gCO2e\n";
  return 0;
}
