// Distributed-shuffle cost model for the dmr engine.
//
// Section 1 scales the rank count on a fixed word-count job over inproc
// and tcp transports and reports wall time, cross-rank shuffle bytes, and
// partition skew — the numbers that explain when a distributed shuffle
// pays for itself.
//
// Section 2 sweeps the spill-buffer cap from "everything in memory" down
// to a tiny fraction of the intermediate size and measures what the
// external sort costs: spill-run count, bytes written to disk, and wall
// time, with output correctness asserted against the in-process engine at
// every point. Results land in out/BENCH_dmr.json.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/json.hpp"
#include "core/table.hpp"
#include "core/timer.hpp"
#include "dmr/job.hpp"
#include "mapreduce/job.hpp"

namespace {

using peachy::mr::Emitter;
using InputPair = std::pair<int, std::string>;

std::vector<InputPair> corpus(int lines) {
  // Synthetic text with a Zipf-ish word mix: a few hot words plus a long
  // tail, so the partition-skew column has something to show.
  const char* hot[] = {"the", "of", "and", "stripe", "peach"};
  std::vector<InputPair> inputs;
  inputs.reserve(static_cast<std::size_t>(lines));
  for (int i = 0; i < lines; ++i) {
    std::string line;
    for (int w = 0; w < 12; ++w) {
      if (w) line += ' ';
      const int roll = (i * 131 + w * 37) % 100;
      if (roll < 55) {
        line += hot[roll % 5];
      } else {
        line += "word" + std::to_string((i * 17 + w * 7) % 500);
      }
    }
    inputs.emplace_back(i, line);
  }
  return inputs;
}

void word_mapper(const int&, const std::string& line,
                 Emitter<std::string, std::uint64_t>& out) {
  std::size_t start = 0;
  while (start < line.size()) {
    std::size_t end = line.find(' ', start);
    if (end == std::string::npos) end = line.size();
    if (end > start) out.emit(line.substr(start, end - start), 1);
    start = end + 1;
  }
}

void sum_reducer(const std::string& key,
                 const std::vector<std::uint64_t>& values,
                 Emitter<std::string, std::uint64_t>& out) {
  std::uint64_t total = 0;
  for (const std::uint64_t v : values) total += v;
  out.emit(key, total);
}

constexpr int kMapTasks = 16;
constexpr int kPartitions = 8;

peachy::dmr::Result<std::string, std::uint64_t> run_job(
    const std::vector<InputPair>& inputs, peachy::dmr::Options opt) {
  opt.map_tasks = kMapTasks;
  opt.partitions = kPartitions;
  opt.map_workers = 2;
  opt.reduce_workers = 2;
  peachy::dmr::Job<int, std::string, std::string, std::uint64_t, std::string,
                   std::uint64_t>
      job;
  job.mapper(word_mapper).reducer(sum_reducer).options(std::move(opt));
  // No combiner: keep the full map output flowing through the shuffle so
  // the bench measures shuffle and spill machinery, not pre-aggregation.
  return job.run(inputs);
}

double skew_ratio(const std::vector<std::size_t>& per_partition) {
  if (per_partition.empty()) return 0.0;
  std::size_t total = 0;
  std::size_t biggest = 0;
  for (const std::size_t n : per_partition) {
    total += n;
    biggest = std::max(biggest, n);
  }
  const double even =
      static_cast<double>(total) / static_cast<double>(per_partition.size());
  return even > 0.0 ? static_cast<double>(biggest) / even : 0.0;
}

}  // namespace

int main() {
  using namespace peachy;

  const auto inputs = corpus(4000);

  // The in-process reference both sections assert against.
  mr::Job<int, std::string, std::string, std::uint64_t, std::string,
          std::uint64_t>
      ref;
  mr::JobConfig ref_cfg;
  ref_cfg.map_workers = 2;
  ref_cfg.reduce_workers = 2;
  ref_cfg.map_tasks = kMapTasks;
  ref_cfg.partitions = kPartitions;
  ref.mapper(word_mapper).reducer(sum_reducer).config(ref_cfg);
  const auto expect = ref.run(inputs);

  // --- Section 1: rank scaling per transport ---------------------------
  std::cout << "dmr shuffle scaling — word count over " << inputs.size()
            << " lines, " << kMapTasks << " map tasks, " << kPartitions
            << " partitions, no combiner\n\n";
  TextTable scale_table({"transport", "ranks", "wall ms", "shuffle MB",
                         "local MB", "skew (max/mean)", "correct"});
  json::Array scale_rows;
  for (const auto transport :
       {mpp::TransportKind::kInproc, mpp::TransportKind::kTcp}) {
    for (const int ranks : {1, 2, 4}) {
      dmr::Options opt;
      opt.ranks = ranks;
      opt.run.transport = transport;
      WallTimer timer;
      const auto r = run_job(inputs, opt);
      const double ms = timer.elapsed_ms();
      const bool correct = r.output == expect;
      const double shuffle_mb =
          static_cast<double>(r.counters.shuffle_bytes) / (1024.0 * 1024.0);
      const double local_mb =
          static_cast<double>(r.counters.local_bytes) / (1024.0 * 1024.0);
      const double skew = skew_ratio(r.counters.partition_records);
      scale_table.row({mpp::to_string(transport),
                       TextTable::num(static_cast<std::int64_t>(ranks)),
                       TextTable::num(ms, 1), TextTable::num(shuffle_mb, 2),
                       TextTable::num(local_mb, 2), TextTable::num(skew, 2),
                       correct ? "yes" : "NO"});
      json::Object row;
      row["transport"] = json::Value(mpp::to_string(transport));
      row["ranks"] = json::Value(static_cast<std::int64_t>(ranks));
      row["wall_ms"] = json::Value(ms);
      row["shuffle_bytes"] =
          json::Value(static_cast<std::int64_t>(r.counters.shuffle_bytes));
      row["local_bytes"] =
          json::Value(static_cast<std::int64_t>(r.counters.local_bytes));
      row["shuffle_records"] =
          json::Value(static_cast<std::int64_t>(r.counters.shuffle_records));
      row["partition_skew"] = json::Value(skew);
      row["correct"] = json::Value(correct);
      scale_rows.push_back(json::Value(std::move(row)));
    }
  }
  scale_table.print(std::cout);

  // --- Section 2: spill-threshold sweep --------------------------------
  // Total intermediate footprint ~= shuffle + local bytes from a probe run.
  dmr::Options probe;
  probe.ranks = 2;
  const auto probed = run_job(inputs, probe);
  const std::size_t intermediate =
      probed.counters.shuffle_bytes + probed.counters.local_bytes;

  std::cout << "\nspill-threshold sweep — 2 inproc ranks, intermediate "
               "footprint ~"
            << intermediate / 1024 << " KiB per job\n\n";
  TextTable spill_table({"buffer cap", "spill runs", "spilled MB", "wall ms",
                         "correct"});
  json::Array spill_rows;
  for (const double fraction : {0.0, 1.0, 0.5, 0.25, 0.1, 0.02}) {
    dmr::Options opt;
    opt.ranks = 2;
    opt.spill_buffer_bytes =
        static_cast<std::size_t>(static_cast<double>(intermediate) * fraction);
    WallTimer timer;
    const auto r = run_job(inputs, opt);
    const double ms = timer.elapsed_ms();
    const bool correct = r.output == expect;
    const double spilled_mb =
        static_cast<double>(r.counters.spill.spilled_bytes) /
        (1024.0 * 1024.0);
    spill_table.row(
        {fraction == 0.0
             ? std::string("unbounded")
             : TextTable::num(fraction * 100.0, 0) + "% of intermediate",
         TextTable::num(static_cast<std::int64_t>(r.counters.spill.spills)),
         TextTable::num(spilled_mb, 2), TextTable::num(ms, 1),
         correct ? "yes" : "NO"});
    json::Object row;
    row["buffer_fraction"] = json::Value(fraction);
    row["buffer_bytes"] =
        json::Value(static_cast<std::int64_t>(opt.spill_buffer_bytes));
    row["spill_runs"] =
        json::Value(static_cast<std::int64_t>(r.counters.spill.spills));
    row["spilled_bytes"] =
        json::Value(static_cast<std::int64_t>(r.counters.spill.spilled_bytes));
    row["wall_ms"] = json::Value(ms);
    row["correct"] = json::Value(correct);
    spill_rows.push_back(json::Value(std::move(row)));
  }
  spill_table.print(std::cout);
  std::cout << "\nexpected shape: spill cost rises as the buffer shrinks "
               "(more, smaller sorted runs to merge), while output stays "
               "byte-identical to the in-process engine throughout.\n";

  // --- Section 3: sliding-window sweep over the tcp shuffle -------------
  // map_epochs amplifies the shuffle traffic (every epoch re-ships each
  // partition block), making the transport's window geometry visible;
  // window 1 is the stop-and-wait protocol the pipelined transport
  // replaced.
  std::cout << "\nsliding-window sweep — tcp, 4 ranks, 8 map epochs, 32 map "
               "tasks (window 1 = stop-and-wait baseline):\n\n";
  TextTable win_table(
      {"window", "wall ms", "stalls", "acks", "retransmits", "correct"});
  json::Array win_rows;
  for (const int window : {1, 2, 4, 8, 16, 32}) {
    dmr::Options opt;
    opt.ranks = 4;
    opt.map_epochs = 8;
    opt.map_tasks = 32;
    opt.partitions = kPartitions;
    opt.map_workers = 2;
    opt.reduce_workers = 2;
    opt.run.transport = mpp::TransportKind::kTcp;
    opt.run.tcp.window_frames = window;
    dmr::Job<int, std::string, std::string, std::uint64_t, std::string,
             std::uint64_t>
        job;
    job.mapper(word_mapper).reducer(sum_reducer).options(std::move(opt));
    WallTimer timer;
    const auto r = job.run(inputs);
    const double ms = timer.elapsed_ms();
    const bool correct = r.output == expect;
    win_table.row(
        {TextTable::num(static_cast<std::int64_t>(window)),
         TextTable::num(ms, 1),
         TextTable::num(static_cast<std::int64_t>(r.net.window_stalls)),
         TextTable::num(static_cast<std::int64_t>(r.net.acks_sent)),
         TextTable::num(static_cast<std::int64_t>(r.net.retransmits)),
         correct ? "yes" : "NO"});
    json::Object row;
    row["window"] = json::Value(static_cast<std::int64_t>(window));
    row["wall_ms"] = json::Value(ms);
    row["window_stalls"] =
        json::Value(static_cast<std::int64_t>(r.net.window_stalls));
    row["acks_sent"] =
        json::Value(static_cast<std::int64_t>(r.net.acks_sent));
    row["retransmits"] =
        json::Value(static_cast<std::int64_t>(r.net.retransmits));
    row["correct"] = json::Value(correct);
    win_rows.push_back(json::Value(std::move(row)));
  }
  win_table.print(std::cout);
  std::cout << "\nexpected shape: wall time falls (or stays flat) as the "
               "window opens — the shuffle's many small blocks stop paying "
               "one ack round-trip each — with output byte-identical to the "
               "in-process engine at every setting.\n";

  json::Object doc;
  doc["rank_scaling"] = json::Value(std::move(scale_rows));
  doc["spill_sweep"] = json::Value(std::move(spill_rows));
  doc["window_sweep"] = json::Value(std::move(win_rows));
  std::filesystem::create_directories("out");
  std::ofstream("out/BENCH_dmr.json")
      << json::Value(std::move(doc)).dump(true) << "\n";
  std::cout << "\nwrote out/BENCH_dmr.json\n";
  return 0;
}
