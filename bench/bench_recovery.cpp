// Fault-tolerance cost model: what does resilience cost when nothing
// fails, and how long does recovery take when something does?
//
// Section 1 sweeps the checkpoint interval on the 1-D distributed sandpile
// (in-process ranks) and reports the wall-time overhead of cutting
// consistent checkpoints vs the checkpoint-free baseline.
//
// Section 2 runs the same problem over spawned worker processes with a
// deterministic link-sever fault plan and supervision enabled, and compares
// against the fault-free spawned run: the difference is the time to detect
// the dead rank, respawn the world, and restore from the last committed
// checkpoint. Results land in out/BENCH_recovery.json.
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/json.hpp"
#include "core/table.hpp"
#include "core/timer.hpp"
#include "sandpile/distributed.hpp"
#include "sandpile/field.hpp"

int main() {
  using namespace peachy;
  using namespace peachy::sandpile;

  // --- Section 1: checkpoint overhead on a clean run -------------------
  constexpr int kSize = 256;
  const Field initial = center_pile(kSize, kSize, 60000);
  Field reference = initial;
  stabilize_reference(reference);

  std::cout << "checkpoint overhead — " << kSize << "x" << kSize
            << " pile, 60 000 grains centered, 4 in-process ranks, k = 1\n\n";

  TextTable overhead_table({"checkpoint every", "rounds", "checkpoints",
                            "wall ms", "overhead %", "correct"});
  json::Array overhead_rows;
  double baseline_ms = 0.0;
  for (int every : {0, 8, 4, 2, 1}) {
    DistributedOptions opt;
    opt.ranks = 4;
    opt.checkpoint_every = every;
    // max_restarts > 0 gives the run a private checkpoint directory even
    // though nothing will fail; the cost measured is pure checkpointing.
    opt.run.resilience.max_restarts = 1;
    WallTimer timer;
    const DistributedResult r = stabilize_distributed(initial, opt);
    const double ms = timer.elapsed_ms();
    if (every == 0) baseline_ms = ms;
    const double overhead_pct =
        baseline_ms > 0.0 ? (ms / baseline_ms - 1.0) * 100.0 : 0.0;
    const std::int64_t checkpoints = every > 0 ? r.rounds / every : 0;
    const bool correct = r.field.same_interior(reference);
    overhead_table.row(
        {every > 0 ? TextTable::num(static_cast<std::int64_t>(every))
                   : std::string("never"),
         TextTable::num(static_cast<std::int64_t>(r.rounds)),
         TextTable::num(checkpoints), TextTable::num(ms, 1),
         TextTable::num(overhead_pct, 1), correct ? "yes" : "NO"});
    json::Object row;
    row["checkpoint_every"] = json::Value(static_cast<std::int64_t>(every));
    row["rounds"] = json::Value(static_cast<std::int64_t>(r.rounds));
    row["checkpoints"] = json::Value(checkpoints);
    row["wall_ms"] = json::Value(ms);
    row["overhead_pct"] = json::Value(overhead_pct);
    row["correct"] = json::Value(correct);
    overhead_rows.push_back(json::Value(std::move(row)));
  }
  overhead_table.print(std::cout);
  std::cout << "\nexpected shape: overhead grows roughly linearly in "
               "checkpoint frequency — each cut gathers every slab at rank 0 "
               "and commits one file via atomic rename.\n";

  // --- Section 2: time-to-recover under a severed link -----------------
  constexpr int kFaultSize = 96;
  const Field fault_initial = center_pile(kFaultSize, kFaultSize, 12000);
  Field fault_reference = fault_initial;
  stabilize_reference(fault_reference);

  std::cout << "\ntime to recover — " << kFaultSize << "x" << kFaultSize
            << " pile, 12 000 grains, 2 spawned worker processes, "
               "checkpoint every 4 rounds\n\n";

  auto spawned_run = [&](int sever_after) {
    DistributedOptions opt;
    opt.ranks = 2;
    opt.checkpoint_every = 4;
    opt.run.spawn = true;
    opt.run.transport = mpp::TransportKind::kTcp;
    opt.run.resilience.max_restarts = 2;
    opt.run.tcp.ack_timeout_ms = 20;
    if (sever_after >= 0) {
      opt.run.tcp.fault.seed = 7;
      opt.run.tcp.fault.sever_after = sever_after;
    }
    return opt;
  };

  TextTable recover_table({"scenario", "rounds", "restarts", "wall ms",
                           "correct"});
  json::Object recovery;
  double clean_ms = 0.0;
  for (const int sever_after : {-1, 120}) {
    const DistributedOptions opt = spawned_run(sever_after);
    WallTimer timer;
    const DistributedResult r = stabilize_distributed(fault_initial, opt);
    const double ms = timer.elapsed_ms();
    const bool correct = r.field.same_interior(fault_reference);
    const bool faulty = sever_after >= 0;
    if (!faulty) clean_ms = ms;
    recover_table.row(
        {faulty ? "link severed mid-run" : "fault-free",
         TextTable::num(static_cast<std::int64_t>(r.rounds)),
         TextTable::num(static_cast<std::int64_t>(r.restarts)),
         TextTable::num(ms, 1), correct ? "yes" : "NO"});
    json::Object row;
    row["rounds"] = json::Value(static_cast<std::int64_t>(r.rounds));
    row["restarts"] = json::Value(static_cast<std::int64_t>(r.restarts));
    row["wall_ms"] = json::Value(ms);
    row["correct"] = json::Value(correct);
    if (faulty) {
      row["time_to_recover_ms"] = json::Value(ms - clean_ms);
      recovery["severed"] = json::Value(std::move(row));
    } else {
      recovery["clean"] = json::Value(std::move(row));
    }
  }
  recover_table.print(std::cout);
  std::cout << "\nexpected shape: the severed run pays detection (peer "
               "death surfaces through the ack/heartbeat machinery), a "
               "world respawn, and re-execution back from the last committed "
               "checkpoint — yet ends byte-identical to the clean run.\n";

  json::Object doc;
  doc["checkpoint_overhead"] = json::Value(std::move(overhead_rows));
  doc["recovery"] = json::Value(std::move(recovery));
  std::filesystem::create_directories("out");
  std::ofstream("out/BENCH_recovery.json")
      << json::Value(std::move(doc)).dump(true) << "\n";
  std::cout << "\nwrote out/BENCH_recovery.json\n";
  return 0;
}
