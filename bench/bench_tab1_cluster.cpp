// §IV Tab #1 reproduction: performance and CO2 of the Montage workflow on
// the 64-node local cluster (291 gCO2e/kWh, 7 p-states, power-off allowed).
//
// Q1: baseline at full power — execution time, speedup, efficiency.
// Q2: under the 3-minute bound, binary-search (a) the minimum node count at
//     the highest p-state and (b) the minimum p-state with all 64 nodes;
//     report the CO2 of each option.
// Q3: the boss's combined heuristic (power off AND downclock) — expected to
//     beat both single-knob options.
// Plus the full node-count and p-state sweeps behind the searches.
#include <iostream>

#include "core/table.hpp"
#include "wfsim/montage.hpp"
#include "wfsim/schedule.hpp"

int main() {
  using namespace peachy;
  using namespace peachy::wf;

  const Workflow wf = make_montage();
  const Platform plat = eduwrench_platform();
  constexpr double kDeadline = 180.0;

  std::cout << "Tab #1 — Montage-" << wf.num_tasks()
            << " on the 64-node cluster (7 p-states, "
            << plat.cluster.gco2_per_kwh << " gCO2e/kWh), deadline "
            << kDeadline << " s\n\n";

  // --- Q1 baseline.
  RunConfig base;
  base.nodes_on = 64;
  base.pstate = plat.max_pstate();
  const SimResult baseline = simulate(wf, plat, base);
  const SpeedupReport sp = speedup_vs_one_node(wf, plat, base);
  std::cout << "Q1 baseline (64 nodes @ p" << base.pstate << "):\n";
  TextTable q1({"metric", "value"});
  q1.row({"execution time (s)", TextTable::num(baseline.makespan_s, 1)});
  q1.row({"1-node time (s)", TextTable::num(sp.t1_s, 1)});
  q1.row({"speedup", TextTable::num(sp.speedup, 2)});
  q1.row({"parallel efficiency", TextTable::num(sp.efficiency, 3)});
  q1.row({"energy (kWh)",
          TextTable::num(baseline.cluster_energy_j / 3.6e6, 3)});
  q1.row({"gCO2e", TextTable::num(baseline.total_gco2, 1)});
  q1.print(std::cout);

  // --- Node sweep at max p-state (the curve students binary-search over).
  std::cout << "\nnode-count sweep @ p" << plat.max_pstate() << ":\n";
  TextTable nodes_t({"nodes", "time_s", "meets 180s", "gCO2e"});
  for (int n : {8, 16, 24, 32, 40, 48, 56, 64}) {
    RunConfig cfg;
    cfg.nodes_on = n;
    cfg.pstate = plat.max_pstate();
    const SimResult r = simulate(wf, plat, cfg);
    nodes_t.row({TextTable::num(static_cast<std::int64_t>(n)),
                 TextTable::num(r.makespan_s, 1),
                 r.makespan_s <= kDeadline ? "yes" : "no",
                 TextTable::num(r.total_gco2, 1)});
  }
  nodes_t.print(std::cout);

  // --- P-state sweep with all 64 nodes.
  std::cout << "\np-state sweep @ 64 nodes:\n";
  TextTable ps_t({"pstate", "Gflop/s", "busy W", "time_s", "meets 180s",
                  "gCO2e"});
  for (int p = 0; p < plat.num_pstates(); ++p) {
    RunConfig cfg;
    cfg.nodes_on = 64;
    cfg.pstate = p;
    const SimResult r = simulate(wf, plat, cfg);
    ps_t.row({"p" + std::to_string(p),
              TextTable::num(plat.cluster.pstates[static_cast<std::size_t>(p)]
                                 .gflops,
                             0),
              TextTable::num(plat.cluster.pstates[static_cast<std::size_t>(p)]
                                 .busy_watts,
                             0),
              TextTable::num(r.makespan_s, 1),
              r.makespan_s <= kDeadline ? "yes" : "no",
              TextTable::num(r.total_gco2, 1)});
  }
  ps_t.print(std::cout);

  // --- Q2 + Q3.
  const ClusterChoice fewer =
      min_nodes_for_deadline(wf, plat, plat.max_pstate(), kDeadline);
  const ClusterChoice slower = min_pstate_for_deadline(wf, plat, 64, kDeadline);
  const ClusterChoice combined = combined_power_heuristic(wf, plat, kDeadline);

  std::cout << "\nQ2/Q3 under the " << kDeadline << " s bound:\n";
  TextTable q23({"option", "nodes", "pstate", "time_s", "gCO2e",
                 "vs baseline"});
  auto add = [&](const std::string& label, const ClusterChoice& c) {
    q23.row({label, TextTable::num(static_cast<std::int64_t>(c.nodes_on)),
             "p" + std::to_string(c.pstate),
             TextTable::num(c.result.makespan_s, 1),
             TextTable::num(c.result.total_gco2, 1),
             TextTable::num(100.0 * (1.0 - c.result.total_gco2 /
                                               baseline.total_gco2),
                            1) +
                 "% less"});
  };
  add("Q2a power off (min nodes @ max p-state)", fewer);
  add("Q2b downclock (min p-state @ 64 nodes)", slower);
  add("Q3 boss heuristic (both knobs)", combined);
  q23.print(std::cout);

  const bool q3_wins =
      combined.result.total_gco2 < fewer.result.total_gco2 &&
      combined.result.total_gco2 < slower.result.total_gco2;
  std::cout << "\npaper's Q3 claim (combined beats both single-knob "
               "options): "
            << (q3_wins ? "REPRODUCED" : "NOT reproduced") << "\n";
  return q3_wins ? 0 : 1;
}
