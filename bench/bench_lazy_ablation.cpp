// §II.B ablation: the assignment ladder itself — what each optimization
// step buys. Runs every variant on the same two workloads (a dense center
// pile and a sparse configuration) and reports wall time, iterations and
// tile tasks. This is the evidence behind the assignment's narrative:
// tiling helps caches, laziness skips stable regions, the simplified
// kernel vectorizes, and the async multi-wave variant cuts iteration
// counts drastically.
#include <iostream>

#include "core/table.hpp"
#include "sandpile/field.hpp"
#include "sandpile/variants.hpp"

namespace {

using namespace peachy;
using namespace peachy::sandpile;

void run_workload(const char* label, const Field& initial) {
  Field reference = initial;
  stabilize_reference(reference);

  std::cout << label << "\n";
  TextTable table({"variant", "wall ms", "speedup vs seq-sync", "iterations",
                   "tile tasks", "correct"});
  double seq_ms = 0;
  for (const Variant v : all_variants()) {
    Field f = initial;
    VariantOptions opt;
    opt.tile_h = opt.tile_w = 32;
    const VariantOutcome out = run_variant(v, f, opt);
    const double ms = static_cast<double>(out.run.elapsed_ns) / 1e6;
    if (v == Variant::kSeqSync) seq_ms = ms;
    table.row({to_string(v), TextTable::num(ms, 1),
               TextTable::num(seq_ms > 0 ? seq_ms / ms : 1.0, 2) + "x",
               TextTable::num(static_cast<std::int64_t>(out.run.iterations)),
               TextTable::num(static_cast<std::int64_t>(out.run.tasks)),
               f.same_interior(reference) ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "assignment-ladder ablation (tile 32x32, OpenMP defaults)\n\n";
  run_workload("workload A: 512x512, 200000 grains in the center cell",
               center_pile(512, 512, 200000));
  run_workload("workload B: 512x512 sparse (3% cells loaded with 16..128)",
               sparse_random_pile(512, 512, 0.03, 16, 128, 7));
  std::cout << "expected shape: lazy variants execute far fewer tasks on "
               "sparse input; the vector-friendly kernel beats the generic "
               "per-cell kernel; async waves need far fewer iterations "
               "than synchronous sweeps.\n";
  return 0;
}
