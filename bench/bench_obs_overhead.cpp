// Overhead of the obs layer on the sandpile omp-tiled kernel.
//
// The acceptance contract for src/obs is "near-zero when disabled, cheap
// when enabled": every instrumentation site is gated on one relaxed atomic
// load, so the disabled path must be indistinguishable from uninstrumented
// code. Instrumentation cannot be compiled out per-run, so the
// uninstrumented baseline is approximated by a gate-off series; a second,
// independently sampled gate-off series ("disabled") is interleaved with
// it rep by rep, so the baseline-vs-disabled delta both bounds the
// measurement noise and demonstrates the disabled gate costs nothing
// beyond it. The "enabled" series runs with the registry and tracer live.
//
// Thresholds (DESIGN.md "Observability"): disabled <= 2% over baseline,
// enabled <= 10%. Writes out/BENCH_obs.json for regression tracking.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <vector>

#include "core/json.hpp"
#include "core/table.hpp"
#include "core/timer.hpp"
#include "obs/obs.hpp"
#include "sandpile/field.hpp"
#include "sandpile/variants.hpp"

namespace {

using namespace peachy;
using namespace peachy::sandpile;

double median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main() {
  // Tile size matters: the tracer pays a fixed ~quarter-microsecond per
  // tile event, so the budget is stated against the assignment's realistic
  // geometry (64^2 tiles = 4096 cells of stencil work each), not against
  // degenerate tiles whose compute is smaller than a timestamp.
  constexpr int kSize = 512;
  constexpr Cell kGrains = 25000;
  constexpr int kIterations = 64;  // fixed cap: identical work in every rep
  constexpr int kReps = 15;

  const Field initial = center_pile(kSize, kSize, kGrains);
  VariantOptions opt;
  opt.tile_h = opt.tile_w = 64;
  opt.max_iterations = kIterations;

  const auto timed_run = [&]() -> double {
    Field field = initial;  // copied outside the timer
    WallTimer timer;
    run_variant(Variant::kOmpTiledSync, field, opt);
    return static_cast<double>(timer.elapsed_ns());
  };

  // Warm up threads, pages and the obs singletons.
  obs::set_enabled(true);
  timed_run();
  obs::set_enabled(false);
  timed_run();

  std::vector<double> baseline, disabled, enabled;
  for (int r = 0; r < kReps; ++r) {
    // Interleaved so drift (turbo, thermals) hits all three series alike,
    // and baseline/disabled alternate positions so neither systematically
    // inherits the other's cache state.
    obs::set_enabled(false);
    const double first = timed_run();
    const double second = timed_run();
    baseline.push_back(r % 2 ? second : first);
    disabled.push_back(r % 2 ? first : second);
    obs::set_enabled(true);
    enabled.push_back(timed_run());
    obs::Tracer::global().clear();  // bound memory between enabled reps
  }
  obs::set_enabled(false);

  const double baseline_ms = median(baseline) / 1e6;
  const double disabled_ms = median(disabled) / 1e6;
  const double enabled_ms = median(enabled) / 1e6;
  const double disabled_pct = (disabled_ms / baseline_ms - 1.0) * 100.0;
  const double enabled_pct = (enabled_ms / baseline_ms - 1.0) * 100.0;

  std::cout << "obs overhead on omp-tiled sandpile, " << kSize << "x" << kSize
            << ", " << kIterations << " iterations (median of " << kReps
            << ")\n";
  TextTable table({"mode", "wall ms", "vs baseline"});
  table.row({"baseline (gate off)", TextTable::num(baseline_ms, 2), "—"});
  table.row({"disabled (gate off)", TextTable::num(disabled_ms, 2),
             TextTable::num(disabled_pct, 2) + "%"});
  table.row({"enabled", TextTable::num(enabled_ms, 2),
             TextTable::num(enabled_pct, 2) + "%"});
  table.print(std::cout);
  std::cout << "contract: disabled <= 2%, enabled <= 10%  ->  "
            << (disabled_pct <= 2.0 && enabled_pct <= 10.0 ? "OK" : "EXCEEDED")
            << "\n";

  json::Object doc;
  doc["kernel"] = json::Value("omp-tiled-sync");
  doc["size"] = json::Value(static_cast<std::int64_t>(kSize));
  doc["iterations"] = json::Value(static_cast<std::int64_t>(kIterations));
  doc["reps"] = json::Value(static_cast<std::int64_t>(kReps));
  doc["baseline_ms"] = json::Value(baseline_ms);
  doc["disabled_ms"] = json::Value(disabled_ms);
  doc["enabled_ms"] = json::Value(enabled_ms);
  doc["disabled_overhead_pct"] = json::Value(disabled_pct);
  doc["enabled_overhead_pct"] = json::Value(enabled_pct);
  std::filesystem::create_directories("out");
  std::ofstream("out/BENCH_obs.json")
      << json::Value(std::move(doc)).dump(true) << "\n";
  std::cout << "\nwrote out/BENCH_obs.json\n";
  return 0;
}
