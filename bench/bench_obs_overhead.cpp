// Overhead of the obs layer: on the sandpile omp-tiled kernel, and on a
// spawned 4-rank world over the pipelined tcp transport.
//
// The acceptance contract for src/obs is "near-zero when disabled, cheap
// when enabled": every instrumentation site is gated on one relaxed atomic
// load, so the disabled path must be indistinguishable from uninstrumented
// code. Instrumentation cannot be compiled out per-run, so the
// uninstrumented baseline is approximated by a gate-off series; a second,
// independently sampled gate-off series ("disabled") is interleaved with
// it rep by rep, so the baseline-vs-disabled delta both bounds the
// measurement noise and demonstrates the disabled gate costs nothing
// beyond it. The "enabled" series runs with the registry and tracer live.
//
// The cluster case measures the distributed tier on top: a 4-rank spawned
// ring exchange where "enabled" adds per-message trace contexts on the
// wire plus span/counter recording, and "aggregation" further ships
// periodic metric snapshots to rank 0 over the telemetry channel.
//
// Thresholds (DESIGN.md "Observability"): disabled <= 2% over baseline,
// enabled <= 10%; telemetry aggregation <= 3% on top of enabled. Writes
// out/BENCH_obs.json for regression tracking.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <vector>

#include "core/json.hpp"
#include "core/table.hpp"
#include "core/timer.hpp"
#include "mpp/mpp.hpp"
#include "obs/obs.hpp"
#include "sandpile/field.hpp"
#include "sandpile/variants.hpp"

namespace {

using namespace peachy;
using namespace peachy::sandpile;

double median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// The cluster workload: every rank pushes fixed-size payloads around a
// 4-rank ring for a fixed round count — pure transport pressure through
// the sliding-window/coalescing send path, with a Comm-level context mint
// per message when telemetry is on.
constexpr int kClusterRanks = 4;
constexpr int kClusterRounds = 150;
constexpr std::size_t kPayloadInts = 8192;  // 64 KiB per message

void ring_exchange(mpp::Comm& comm) {
  const int next = (comm.rank() + 1) % comm.size();
  const int prev = (comm.rank() + comm.size() - 1) % comm.size();
  std::vector<std::int64_t> out(kPayloadInts, comm.rank());
  std::vector<std::int64_t> in(kPayloadInts);
  for (int round = 0; round < kClusterRounds; ++round) {
    comm.send(next, 1, out.data(), out.size());
    comm.recv(prev, 1, in.data(), in.size());
  }
}

/// One spawned 4-rank run under the given telemetry policy; returns wall
/// ns including spawn + rendezvous (identical across the three series).
double timed_cluster_run(const mpp::Telemetry& telemetry) {
  WallTimer timer;
  mpp::run_spawned(kClusterRanks, {}, ring_exchange, {}, {}, telemetry);
  return static_cast<double>(timer.elapsed_ns());
}

}  // namespace

int main() {
  // Tile size matters: the tracer pays a fixed ~quarter-microsecond per
  // tile event, so the budget is stated against the assignment's realistic
  // geometry (64^2 tiles = 4096 cells of stencil work each), not against
  // degenerate tiles whose compute is smaller than a timestamp.
  constexpr int kSize = 512;
  constexpr Cell kGrains = 25000;
  constexpr int kIterations = 64;  // fixed cap: identical work in every rep
  constexpr int kReps = 15;

  const Field initial = center_pile(kSize, kSize, kGrains);
  VariantOptions opt;
  opt.tile_h = opt.tile_w = 64;
  opt.max_iterations = kIterations;

  const auto timed_run = [&]() -> double {
    Field field = initial;  // copied outside the timer
    WallTimer timer;
    run_variant(Variant::kOmpTiledSync, field, opt);
    return static_cast<double>(timer.elapsed_ns());
  };

  // Warm up threads, pages and the obs singletons.
  obs::set_enabled(true);
  timed_run();
  obs::set_enabled(false);
  timed_run();

  std::vector<double> baseline, disabled, enabled;
  for (int r = 0; r < kReps; ++r) {
    // Interleaved so drift (turbo, thermals) hits all three series alike,
    // and baseline/disabled alternate positions so neither systematically
    // inherits the other's cache state.
    obs::set_enabled(false);
    const double first = timed_run();
    const double second = timed_run();
    baseline.push_back(r % 2 ? second : first);
    disabled.push_back(r % 2 ? first : second);
    obs::set_enabled(true);
    enabled.push_back(timed_run());
    obs::Tracer::global().clear();  // bound memory between enabled reps
  }
  obs::set_enabled(false);

  const double baseline_ms = median(baseline) / 1e6;
  const double disabled_ms = median(disabled) / 1e6;
  const double enabled_ms = median(enabled) / 1e6;
  const double disabled_pct = (disabled_ms / baseline_ms - 1.0) * 100.0;
  const double enabled_pct = (enabled_ms / baseline_ms - 1.0) * 100.0;

  std::cout << "obs overhead on omp-tiled sandpile, " << kSize << "x" << kSize
            << ", " << kIterations << " iterations (median of " << kReps
            << ")\n";
  TextTable table({"mode", "wall ms", "vs baseline"});
  table.row({"baseline (gate off)", TextTable::num(baseline_ms, 2), "—"});
  table.row({"disabled (gate off)", TextTable::num(disabled_ms, 2),
             TextTable::num(disabled_pct, 2) + "%"});
  table.row({"enabled", TextTable::num(enabled_ms, 2),
             TextTable::num(enabled_pct, 2) + "%"});
  table.print(std::cout);
  std::cout << "contract: disabled <= 2%, enabled <= 10%  ->  "
            << (disabled_pct <= 2.0 && enabled_pct <= 10.0 ? "OK" : "EXCEEDED")
            << "\n";

  // --- Cluster tier: spawned ranks over the pipelined tcp transport ------
  mpp::Telemetry off;  // baseline: obs gate off in every rank
  mpp::Telemetry on;   // contexts on the wire + recording, no shipping
  on.enabled = true;
  on.interval_ms = 1 << 30;  // periodic shipper never fires; one final snap
  mpp::Telemetry shipping = on;  // + periodic metric snapshots to rank 0
  shipping.interval_ms = 25;

  constexpr int kClusterReps = 9;
  timed_cluster_run(off);  // warm the page cache / listen queue path
  std::vector<double> cl_base, cl_enabled, cl_shipping;
  for (int r = 0; r < kClusterReps; ++r) {
    cl_base.push_back(timed_cluster_run(off));
    cl_enabled.push_back(timed_cluster_run(on));
    cl_shipping.push_back(timed_cluster_run(shipping));
  }

  const double cl_base_ms = median(cl_base) / 1e6;
  const double cl_enabled_ms = median(cl_enabled) / 1e6;
  const double cl_shipping_ms = median(cl_shipping) / 1e6;
  const double cl_enabled_pct = (cl_enabled_ms / cl_base_ms - 1.0) * 100.0;
  const double cl_agg_pct = (cl_shipping_ms / cl_enabled_ms - 1.0) * 100.0;

  std::cout << "\nobs overhead on a spawned " << kClusterRanks
            << "-rank tcp ring, " << kClusterRounds << " rounds x "
            << kPayloadInts * sizeof(std::int64_t) / 1024
            << " KiB (median of " << kClusterReps << ")\n";
  TextTable cluster({"mode", "wall ms", "vs previous"});
  cluster.row({"telemetry off", TextTable::num(cl_base_ms, 2), "—"});
  cluster.row({"enabled (ctx + spans)", TextTable::num(cl_enabled_ms, 2),
               TextTable::num(cl_enabled_pct, 2) + "%"});
  cluster.row({"+ aggregation (25 ms)", TextTable::num(cl_shipping_ms, 2),
               TextTable::num(cl_agg_pct, 2) + "%"});
  cluster.print(std::cout);
  std::cout << "contract: enabled <= 10%, aggregation <= 3% on top  ->  "
            << (cl_enabled_pct <= 10.0 && cl_agg_pct <= 3.0 ? "OK"
                                                            : "EXCEEDED")
            << "\n";

  json::Object doc;
  doc["kernel"] = json::Value("omp-tiled-sync");
  doc["size"] = json::Value(static_cast<std::int64_t>(kSize));
  doc["iterations"] = json::Value(static_cast<std::int64_t>(kIterations));
  doc["reps"] = json::Value(static_cast<std::int64_t>(kReps));
  doc["baseline_ms"] = json::Value(baseline_ms);
  doc["disabled_ms"] = json::Value(disabled_ms);
  doc["enabled_ms"] = json::Value(enabled_ms);
  doc["disabled_overhead_pct"] = json::Value(disabled_pct);
  doc["enabled_overhead_pct"] = json::Value(enabled_pct);
  json::Object cl;
  cl["ranks"] = json::Value(static_cast<std::int64_t>(kClusterRanks));
  cl["rounds"] = json::Value(static_cast<std::int64_t>(kClusterRounds));
  cl["payload_bytes"] = json::Value(
      static_cast<std::int64_t>(kPayloadInts * sizeof(std::int64_t)));
  cl["reps"] = json::Value(static_cast<std::int64_t>(kClusterReps));
  cl["baseline_ms"] = json::Value(cl_base_ms);
  cl["enabled_ms"] = json::Value(cl_enabled_ms);
  cl["aggregation_ms"] = json::Value(cl_shipping_ms);
  cl["enabled_overhead_pct"] = json::Value(cl_enabled_pct);
  cl["aggregation_overhead_pct"] = json::Value(cl_agg_pct);
  doc["cluster"] = json::Value(std::move(cl));
  std::filesystem::create_directories("out");
  std::ofstream("out/BENCH_obs.json")
      << json::Value(std::move(doc)).dump(true) << "\n";
  std::cout << "\nwrote out/BENCH_obs.json\n";
  return 0;
}
