// Fig. 3 reproduction: execution traces of the lazy asynchronous kernel
// (asandPile) over a 2048x2048 sparse configuration, comparing 32x32 vs
// 64x64 tiles at the 500th iteration.
//
// The paper's figure shows the per-worker task timeline; headless, we
// report the numbers the figure visualizes: how many tile tasks the lazy
// variant still executes at iteration 500 for each tile size, per-worker
// busy time and load imbalance, and we render the executed-tile maps
// (out/fig3_tiles_*.ppm). Expected shape: 64x64 tiles run fewer, larger
// tasks with coarser load balancing; 32x32 runs more, smaller tasks.
#include <filesystem>
#include <iostream>

#include "core/table.hpp"
#include "sandpile/field.hpp"
#include "sandpile/variants.hpp"
#include "trace/trace.hpp"

int main() {
  using namespace peachy;
  using namespace peachy::sandpile;
  std::filesystem::create_directories("out");

  constexpr int kSize = 2048;
  constexpr int kIteration = 500;
  const int threads = 4;  // fixed worker count for comparable traces

  std::cout << "Fig. 3 — lazy async (asandPile) traces @ iteration "
            << kIteration << " over a " << kSize << "x" << kSize
            << " sparse configuration\n\n";

  TextTable table({"tile size", "tasks@500", "active tiles %", "busy ms@500",
                   "imbalance", "mean task us", "total iterations",
                   "total tasks"});

  for (int tile : {32, 64}) {
    // Sparse configuration: ~0.02% of cells carry tall piles whose
    // avalanches are still expanding at iteration 500 (full stabilization
    // takes ~1400 iterations), leaving most of the grid quiet — the regime
    // Fig. 3 visualizes.
    Field f = sparse_random_pile(kSize, kSize, 0.0002, 3000, 12000, 4242);
    TraceRecorder trace(threads);
    VariantOptions opt;
    opt.tile_h = opt.tile_w = tile;
    opt.threads = threads;
    opt.trace = &trace;
    opt.max_iterations = kIteration + 1;  // run through iteration 500
    const VariantOutcome out = run_variant(Variant::kOmpLazyAsyncWave, f, opt);

    const auto records = trace.iteration(kIteration);
    const IterationSummary s =
        summarize_iteration(records, kIteration, threads);
    const int tiles_total = ((kSize + tile - 1) / tile) *
                            ((kSize + tile - 1) / tile);

    table.row({std::to_string(tile) + "x" + std::to_string(tile),
               TextTable::num(static_cast<std::int64_t>(s.tasks)),
               TextTable::num(100.0 * static_cast<double>(s.tasks) /
                                  tiles_total,
                              2),
               TextTable::num(static_cast<double>(s.busy_ns) / 1e6, 3),
               TextTable::num(s.imbalance, 3),
               TextTable::num(s.tasks ? static_cast<double>(s.busy_ns) / 1e3 /
                                            static_cast<double>(s.tasks)
                                      : 0.0,
                              2),
               TextTable::num(static_cast<std::int64_t>(out.run.iterations)),
               TextTable::num(static_cast<std::int64_t>(out.run.tasks))});

    render_owner_map(records, kSize, kSize, 4)
        .write_ppm("out/fig3_tiles_" + std::to_string(tile) + ".ppm");
    render_timeline(records, threads, 1400, 28)
        .write_ppm("out/fig3_timeline_" + std::to_string(tile) + ".ppm");
    trace.write_csv("out/fig3_trace_" + std::to_string(tile) + ".csv");
  }
  table.print(std::cout);
  std::cout << "\ntile maps: out/fig3_tiles_{32,64}.ppm "
               "(color = executing worker, black = skipped/stable tiles)\n"
            << "task timelines (the paper's trace view): "
               "out/fig3_timeline_{32,64}.ppm\n"
            << "full traces: out/fig3_trace_{32,64}.csv\n";
  return 0;
}
