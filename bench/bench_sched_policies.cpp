// §II.B ablation: OpenMP loop-scheduling policy x tile size for the lazy
// sandpile — the experiment students run to "experimentally determine the
// most suitable OpenMP loop scheduling policy" against the load imbalance
// of sparse configurations.
//
// Methodology (EASYPAP's offline trace exploration, quantified): one real
// lazy run per tile size records every tile task's cost; each scheduling
// policy is then *replayed* over the measured per-iteration task costs on
// W modeled workers, yielding its load-imbalance ratio deterministically.
// This keeps the comparison meaningful on any host — on a single-core
// container, directly timing OpenMP's dynamic schedule degenerates (one
// thread drains the whole queue), whereas the replay answers the question
// the assignment actually asks: how well does each policy spread the
// sparse phase's uneven tile costs across W workers?
#include <algorithm>
#include <iostream>
#include <numeric>
#include <vector>

#include "core/stats.hpp"
#include "core/table.hpp"
#include "sandpile/field.hpp"
#include "sandpile/variants.hpp"
#include "trace/trace.hpp"

namespace {

using namespace peachy;

// Replays one iteration's task costs (ns, in recorded start order) through
// a modeled policy on `workers` lanes and returns max/mean lane load.
double replay_imbalance(const std::vector<double>& costs, int workers,
                        pap::Schedule policy) {
  const int n = static_cast<int>(costs.size());
  std::vector<double> lane(static_cast<std::size_t>(workers), 0.0);
  switch (policy) {
    case pap::Schedule::kStatic: {  // contiguous blocks
      const int chunk = (n + workers - 1) / workers;
      for (int i = 0; i < n; ++i)
        lane[static_cast<std::size_t>(std::min(i / chunk, workers - 1))] +=
            costs[static_cast<std::size_t>(i)];
      break;
    }
    case pap::Schedule::kStaticChunk1: {  // round-robin
      for (int i = 0; i < n; ++i)
        lane[static_cast<std::size_t>(i % workers)] +=
            costs[static_cast<std::size_t>(i)];
      break;
    }
    case pap::Schedule::kDynamic:        // self-scheduling, chunk 1: each
    case pap::Schedule::kWorkStealing: { // task goes to the earliest lane
      // (an idealized work-stealing run balances the same way).
      for (int i = 0; i < n; ++i) {
        auto it = std::min_element(lane.begin(), lane.end());
        *it += costs[static_cast<std::size_t>(i)];
      }
      break;
    }
    case pap::Schedule::kGuided: {  // decreasing chunks to earliest lane
      int i = 0;
      int remaining = n;
      while (remaining > 0) {
        const int chunk = std::max(1, remaining / (2 * workers));
        auto it = std::min_element(lane.begin(), lane.end());
        for (int k = 0; k < chunk; ++k)
          *it += costs[static_cast<std::size_t>(i + k)];
        i += chunk;
        remaining -= chunk;
      }
      break;
    }
  }
  double sum = 0, mx = 0;
  for (double v : lane) {
    sum += v;
    mx = std::max(mx, v);
  }
  const double mean = sum / workers;
  return mean > 0 ? mx / mean : 1.0;
}

}  // namespace

int main() {
  using namespace peachy::sandpile;

  constexpr int kSize = 1024;
  constexpr int kWorkers = 4;
  std::cout << "scheduling policy x tile size — lazy sync sandpile, "
            << kSize << "x" << kSize
            << " sparse configuration, trace replay on " << kWorkers
            << " modeled workers\n\n";

  TextTable table({"tile", "wall ms (1 run)", "iterations", "tasks",
                   "static", "static,1", "dynamic", "guided"});
  for (int tile : {16, 32, 64, 128}) {
    Field f = sparse_random_pile(kSize, kSize, 0.0002, 500, 2000, 31337);
    TraceRecorder trace(8);
    VariantOptions opt;
    opt.threads = kWorkers;
    opt.tile_h = opt.tile_w = tile;
    opt.trace = &trace;
    const VariantOutcome out = run_variant(Variant::kOmpLazySync, f, opt);

    // Median replay imbalance per policy over the sparse second half of
    // the run (iterations with at least 2 tasks per worker).
    std::vector<std::vector<double>> imb(4);
    for (int it = out.run.iterations / 2; it < out.run.iterations; ++it) {
      const auto records = trace.iteration(it);
      if (records.size() < 2 * kWorkers) continue;
      std::vector<double> costs;
      costs.reserve(records.size());
      for (const TaskRecord& r : records)
        costs.push_back(static_cast<double>(r.duration_ns()));
      int p = 0;
      for (const pap::Schedule policy :
           {pap::Schedule::kStatic, pap::Schedule::kStaticChunk1,
            pap::Schedule::kDynamic, pap::Schedule::kGuided})
        imb[static_cast<std::size_t>(p++)].push_back(
            replay_imbalance(costs, kWorkers, policy));
    }

    std::vector<std::string> row = {
        std::to_string(tile),
        TextTable::num(static_cast<double>(out.run.elapsed_ns) / 1e6, 1),
        TextTable::num(static_cast<std::int64_t>(out.run.iterations)),
        TextTable::num(static_cast<std::int64_t>(out.run.tasks))};
    for (auto& v : imb)
      row.push_back(v.empty() ? "n/a" : TextTable::num(quantile(v, 0.5), 3));
    table.row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\ncells: median load-imbalance ratio (max worker load / "
               "mean) — 1.0 is perfect.\n"
            << "expected shape: static blocks suffer on clustered sparse "
               "activity; dynamic/guided self-scheduling stay near 1; "
               "larger tiles leave fewer tasks to balance, raising every "
               "policy's imbalance.\n";
  return 0;
}
