// Throughput and latency of the peachyd job service under concurrent
// clients.
//
// An in-process daemon (real TCP listener, real framed protocol — the
// clients go through the same socket path peachyctl uses) executes small
// sandpile jobs on a shared rank pool while N client threads submit and
// await them. Reported per scenario: sustained jobs/sec and the
// submit-to-complete latency distribution (p50/p90/p99), the two numbers
// that tell you whether admission control and the fair-share dispatcher
// add meaningful overhead on top of raw job runtime. A single-client
// scenario anchors the baseline; the 8- and 16-client scenarios show how
// throughput scales when the pool, not the protocol, should be the
// bottleneck. Results land in out/BENCH_service.json.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/json.hpp"
#include "core/table.hpp"
#include "core/timer.hpp"
#include "svc/client.hpp"
#include "svc/daemon.hpp"

namespace {

using namespace peachy;

struct Scenario {
  int clients = 8;
  int jobs_per_client = 8;
  svc::Isolation isolation = svc::Isolation::kThreads;
};

const char* isolation_name(svc::Isolation iso) {
  return iso == svc::Isolation::kProcess ? "process" : "threads";
}

struct ScenarioResult {
  int clients = 0;
  int jobs = 0;
  double wall_s = 0;
  double jobs_per_sec = 0;
  double p50_ms = 0, p90_ms = 0, p99_ms = 0;
  std::uint64_t rejected = 0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

svc::JobSpec small_job(int client,
                       svc::Isolation iso = svc::Isolation::kThreads) {
  svc::JobSpec spec;
  spec.kind = svc::JobKind::kSandpile;
  // Three tenants so the fair-share scheduler actually has shares to
  // balance — the bench exercises the real dispatch path, not a bypass.
  spec.tenant = "tenant-" + std::to_string(client % 3);
  spec.name = "bench";
  spec.ranks = 2;
  spec.isolation = iso;
  spec.sandpile = {16, 16, 2000, 1, 0};  // no checkpointing: pure runtime
  return spec;
}

ScenarioResult run_scenario(const svc::Daemon& daemon, const Scenario& sc) {
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(sc.clients));
  std::atomic<std::uint64_t> rejected{0};
  WallTimer wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < sc.clients; ++c) {
    threads.emplace_back([&, c] {
      const svc::Client client("127.0.0.1", daemon.port());
      for (int j = 0; j < sc.jobs_per_client; ++j) {
        WallTimer t;
        svc::SubmitResult sub = client.submit(small_job(c, sc.isolation));
        // Admission control pushing back is part of the measured system:
        // retry until accepted, the clock keeps running.
        while (!sub.accepted) {
          rejected.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          sub = client.submit(small_job(c, sc.isolation));
        }
        client.await(sub.id, std::chrono::milliseconds(60000),
                     std::chrono::milliseconds(2));
        latencies[static_cast<std::size_t>(c)].push_back(t.elapsed_ms());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s = wall.elapsed_s();

  std::vector<double> all;
  for (const auto& per_client : latencies)
    all.insert(all.end(), per_client.begin(), per_client.end());
  std::sort(all.begin(), all.end());

  ScenarioResult r;
  r.clients = sc.clients;
  r.jobs = sc.clients * sc.jobs_per_client;
  r.wall_s = wall_s;
  r.jobs_per_sec = static_cast<double>(r.jobs) / wall_s;
  r.p50_ms = percentile(all, 0.50);
  r.p90_ms = percentile(all, 0.90);
  r.p99_ms = percentile(all, 0.99);
  r.rejected = rejected.load();
  return r;
}

}  // namespace

int main() {
  svc::DaemonOptions options;
  options.state_dir = "out/bench_svc_state";
  options.pool_ranks = 8;
  options.max_queued = 256;
  options.max_queued_per_tenant = 128;
  std::filesystem::remove_all(options.state_dir);
  std::filesystem::create_directories("out");
  svc::Daemon daemon(options);

  std::cout << "peachyd job service: " << options.pool_ranks
            << "-rank pool, 2-rank sandpile jobs, submit+await over real "
               "client connections\n\n";

  const Scenario scenarios[] = {{1, 16}, {8, 8}, {16, 6}};
  TextTable table({"clients", "jobs", "wall s", "jobs/s", "p50 ms", "p90 ms",
                   "p99 ms", "rejected"});
  json::Array rows;
  for (const Scenario& sc : scenarios) {
    const ScenarioResult r = run_scenario(daemon, sc);
    table.row({TextTable::num(static_cast<std::int64_t>(r.clients)),
               TextTable::num(static_cast<std::int64_t>(r.jobs)),
               TextTable::num(r.wall_s), TextTable::num(r.jobs_per_sec),
               TextTable::num(r.p50_ms), TextTable::num(r.p90_ms),
               TextTable::num(r.p99_ms),
               TextTable::num(static_cast<std::int64_t>(r.rejected))});
    json::Object row;
    row["clients"] = json::Value(static_cast<std::int64_t>(r.clients));
    row["jobs"] = json::Value(static_cast<std::int64_t>(r.jobs));
    row["wall_s"] = json::Value(r.wall_s);
    row["jobs_per_sec"] = json::Value(r.jobs_per_sec);
    row["p50_ms"] = json::Value(r.p50_ms);
    row["p90_ms"] = json::Value(r.p90_ms);
    row["p99_ms"] = json::Value(r.p99_ms);
    row["rejected_submits"] = json::Value(static_cast<std::int64_t>(r.rejected));
    rows.push_back(json::Value(std::move(row)));
  }
  table.print(std::cout);

  // Isolation sweep: the same small job on the threaded pool vs forked
  // worker processes, solo and under contention. The jobs/s and p50 gaps
  // are the per-job price of crash containment (fork + TCP mesh + wait).
  std::cout << "\nisolation sweep: threads vs process substrate\n\n";
  const Scenario iso_scenarios[] = {
      {1, 8, svc::Isolation::kThreads},
      {1, 8, svc::Isolation::kProcess},
      {8, 4, svc::Isolation::kThreads},
      {8, 4, svc::Isolation::kProcess},
  };
  TextTable iso_table({"isolation", "clients", "jobs", "wall s", "jobs/s",
                       "p50 ms", "p90 ms", "p99 ms"});
  json::Array iso_rows;
  for (const Scenario& sc : iso_scenarios) {
    const ScenarioResult r = run_scenario(daemon, sc);
    iso_table.row({isolation_name(sc.isolation),
                   TextTable::num(static_cast<std::int64_t>(r.clients)),
                   TextTable::num(static_cast<std::int64_t>(r.jobs)),
                   TextTable::num(r.wall_s), TextTable::num(r.jobs_per_sec),
                   TextTable::num(r.p50_ms), TextTable::num(r.p90_ms),
                   TextTable::num(r.p99_ms)});
    json::Object row;
    row["isolation"] = json::Value(isolation_name(sc.isolation));
    row["clients"] = json::Value(static_cast<std::int64_t>(r.clients));
    row["jobs"] = json::Value(static_cast<std::int64_t>(r.jobs));
    row["wall_s"] = json::Value(r.wall_s);
    row["jobs_per_sec"] = json::Value(r.jobs_per_sec);
    row["p50_ms"] = json::Value(r.p50_ms);
    row["p90_ms"] = json::Value(r.p90_ms);
    row["p99_ms"] = json::Value(r.p99_ms);
    iso_rows.push_back(json::Value(std::move(row)));
  }
  iso_table.print(std::cout);
  std::cout << "expected shape: process isolation adds a fixed per-job cost "
               "(fork, rlimits, TCP mesh setup, exit-status reaping) that "
               "dominates these tiny jobs; on real workloads the overhead "
               "amortizes toward zero.\n";

  const svc::ServiceStats stats = daemon.stats();
  std::cout << "\ndaemon totals: " << stats.submitted << " submitted, "
            << stats.completed << " completed, " << stats.rejected
            << " rejected\n";
  std::cout << "expected shape: sustained jobs/s stays in the same band as "
               "clients grow — the rank pool and dispatcher are the "
               "bottleneck, not the per-connection protocol — while p50/p99 "
               "climb with queueing delay as more submitters share the "
               "pool.\n";

  json::Object doc;
  doc["pool_ranks"] =
      json::Value(static_cast<std::int64_t>(options.pool_ranks));
  doc["job"] = json::Value("sandpile 16x16, 2000 grains, 2 ranks");
  doc["scenarios"] = json::Value(std::move(rows));
  doc["isolation_sweep"] = json::Value(std::move(iso_rows));
  doc["daemon_submitted"] =
      json::Value(static_cast<std::int64_t>(stats.submitted));
  doc["daemon_completed"] =
      json::Value(static_cast<std::int64_t>(stats.completed));
  std::ofstream("out/BENCH_service.json")
      << json::Value(std::move(doc)).dump(true) << "\n";
  std::cout << "\nwrote out/BENCH_service.json\n";
  return 0;
}
