// Self-organized criticality (Bak–Tang–Wiesenfeld [3], the model the
// sandpile assignment simulates): drive piles of several sizes to the
// critical state, sample single-grain avalanches, and print the log-binned
// avalanche-size distribution with the fitted power-law exponent — the
// headline result of the original paper, reproduced as the "cool
// extension" of the assignment. Writes the critical-state image
// (out/soc_critical.ppm), visually distinct from the deterministic
// fixed points of Fig. 1.
#include <filesystem>
#include <iostream>

#include "core/table.hpp"
#include "core/timer.hpp"
#include "sandpile/field.hpp"
#include "sandpile/soc.hpp"

int main() {
  using namespace peachy;
  using namespace peachy::sandpile;
  std::filesystem::create_directories("out");

  std::cout << "self-organized criticality — avalanche statistics of the "
               "BTW sandpile\n\n";

  TextTable summary({"grid", "driving grains", "stationary density",
                     "sampled avalanches", "max size", "max area",
                     "max duration", "tau (size)", "wall ms"});

  std::vector<LogBin> bins_64;
  for (const int n : {32, 64}) {
    WallTimer timer;
    Field f(n, n);
    Rng rng(20220525);
    drive_to_criticality(f, static_cast<std::int64_t>(30) * n * n, rng);
    const double density =
        static_cast<double>(f.interior_grains()) / (static_cast<double>(n) * n);

    const auto avalanches = sample_avalanches(f, 12000, rng);
    std::vector<std::int64_t> sizes;
    std::int64_t max_size = 0, max_area = 0, max_duration = 0;
    for (const Avalanche& a : avalanches) {
      if (a.size > 0) sizes.push_back(a.size);
      max_size = std::max(max_size, a.size);
      max_area = std::max(max_area, a.area);
      max_duration = std::max(max_duration, a.duration);
    }
    const auto bins = log_binned(sizes);
    if (n == 64) {
      bins_64 = bins;
      f.render().upscaled(4).write_ppm("out/soc_critical.ppm");
    }

    summary.row({std::to_string(n) + "x" + std::to_string(n),
                 TextTable::num(static_cast<std::int64_t>(30) * n * n),
                 TextTable::num(density, 3),
                 TextTable::num(static_cast<std::int64_t>(avalanches.size())),
                 TextTable::num(max_size), TextTable::num(max_area),
                 TextTable::num(max_duration),
                 TextTable::num(power_law_exponent(bins, 20), 3),
                 TextTable::num(timer.elapsed_ms(), 0)});
  }
  summary.print(std::cout);

  std::cout << "\navalanche-size distribution, 64x64 (log-binned):\n";
  TextTable dist({"size bin", "count", "density"});
  for (const LogBin& b : bins_64) {
    if (b.count == 0) continue;
    dist.row({"[" + std::to_string(b.lo) + "," + std::to_string(b.hi) + ")",
              TextTable::num(b.count),
              TextTable::num(b.density, 8)});
  }
  dist.print(std::cout);

  std::cout << "\nexpected shape: stationary density ~2.1 grains/cell; "
               "straight line in log-log (power law) with tau ~1.0-1.3 "
               "until the finite-size cutoff.\n"
            << "critical-state image: out/soc_critical.ppm\n";
  return 0;
}
