// Beyond the assignment's homogeneity assumption ("all powered on nodes
// operate in the same p-state"): per-node p-states. Sweeps mixed clusters
// (k fast + 16-k slow nodes) on the Montage workload and reports the
// makespan/CO2 frontier, with the fastest-node-first dispatcher making the
// fast nodes absorb the wide levels. Homogeneous rows reproduce the Tab #1
// model exactly (asserted in tests).
#include <iostream>

#include "core/table.hpp"
#include "wfsim/montage.hpp"
#include "wfsim/schedule.hpp"

int main() {
  using namespace peachy;
  using namespace peachy::wf;

  const Workflow wf = make_montage();
  const Platform plat = eduwrench_platform();
  constexpr int kNodes = 16;

  std::cout << "heterogeneous cluster ablation — " << kNodes
            << " nodes, k at p6 (22 Gflop/s) + " << kNodes
            << "-k at p0 (10 Gflop/s), Montage-738\n\n";

  TextTable t({"fast nodes", "slow nodes", "time_s", "kWh", "gCO2e",
               "gCO2e x time (tradeoff)"});
  for (int fast = 0; fast <= kNodes; fast += 4) {
    RunConfig cfg;
    cfg.nodes_on = kNodes;
    cfg.node_pstates.assign(kNodes, 0);
    for (int i = 0; i < fast; ++i)
      cfg.node_pstates[static_cast<std::size_t>(i)] = plat.max_pstate();
    const SimResult r = simulate(wf, plat, cfg);
    t.row({TextTable::num(static_cast<std::int64_t>(fast)),
           TextTable::num(static_cast<std::int64_t>(kNodes - fast)),
           TextTable::num(r.makespan_s, 1),
           TextTable::num(r.cluster_energy_j / 3.6e6, 3),
           TextTable::num(r.total_gco2, 1),
           TextTable::num(r.total_gco2 * r.makespan_s / 1e3, 1)});
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: adding fast nodes cuts makespan with "
               "diminishing returns while CO2 rises superlinearly with the "
               "fast fraction — the per-node generalization of the Tab #1 "
               "power trade-off.\n";
  return 0;
}
