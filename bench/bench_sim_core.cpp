// google-benchmark microbenchmarks of the discrete-event core and the
// workflow simulator — the substrate costs behind §IV (how cheap one
// simulated execution is, which is what makes the exhaustive search of
// bench_tab2_optimal tractable).
#include <benchmark/benchmark.h>

#include "sim/engine.hpp"
#include "wfsim/montage.hpp"
#include "wfsim/schedule.hpp"

namespace {

using namespace peachy;

// Raw event throughput: schedule-and-run chains of dependent events.
void BM_EngineEventChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    int count = 0;
    std::function<void()> step = [&] {
      if (++count < n) engine.schedule_in(1.0, step);
    };
    engine.schedule_at(0.0, step);
    engine.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineEventChain)->Arg(1000)->Arg(100000);

// Heap pressure: many concurrent timers in one queue.
void BM_EngineWideQueue(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < n; ++i)
      engine.schedule_at((i * 7919) % n, [] {});
    engine.run();
    benchmark::DoNotOptimize(engine.processed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineWideQueue)->Arg(1000)->Arg(100000);

// One full Montage-738 execution simulation (all-cluster).
void BM_SimulateMontageCluster(benchmark::State& state) {
  const wf::Workflow workflow = wf::make_montage();
  const wf::Platform plat = wf::eduwrench_platform();
  wf::RunConfig cfg;
  cfg.nodes_on = static_cast<int>(state.range(0));
  cfg.pstate = plat.max_pstate();
  for (auto _ : state)
    benchmark::DoNotOptimize(wf::simulate(workflow, plat, cfg));
  state.SetItemsProcessed(state.iterations() * workflow.num_tasks());
}
BENCHMARK(BM_SimulateMontageCluster)->Arg(8)->Arg(64);

// One cluster+cloud simulation with transfers over the shared link.
void BM_SimulateMontageHybridCloud(benchmark::State& state) {
  const wf::Workflow workflow = wf::make_montage();
  const wf::Platform plat = wf::eduwrench_platform();
  wf::RunConfig cfg;
  cfg.nodes_on = 12;
  cfg.pstate = 0;
  cfg.placement =
      wf::Placement::level_fractions(workflow, {1.0, 1.0, 0, 0, 0.5});
  for (auto _ : state)
    benchmark::DoNotOptimize(wf::simulate(workflow, plat, cfg));
  state.SetItemsProcessed(state.iterations() * workflow.num_tasks());
}
BENCHMARK(BM_SimulateMontageHybridCloud);

}  // namespace

BENCHMARK_MAIN();
