// Fig. 4 reproduction: distribution of tiles during a hybrid CPU + device
// execution with dynamic load balancing (black areas = stable tiles).
//
// The GPU is simulated (see DESIGN.md): the kernel still runs exactly, but
// tiles assigned to the device lane are billed at device throughput. The
// bench compares the balancing policies of the last assignment (CPU-only,
// device-only, static split, dynamic earliest-finish-time) on modeled
// makespan, and writes the Fig. 4-style ownership map of the EFT run.
#include <filesystem>
#include <iostream>

#include "core/table.hpp"
#include "pap/hybrid.hpp"
#include "sandpile/field.hpp"
#include "sandpile/kernels.hpp"
#include "trace/trace.hpp"

int main() {
  using namespace peachy;
  using namespace peachy::pap;
  using namespace peachy::sandpile;
  std::filesystem::create_directories("out");

  constexpr int kSize = 512;
  constexpr int kTile = 32;
  std::cout << "Fig. 4 — hybrid CPU+device tile distribution, " << kSize
            << "x" << kSize << " sparse pile, " << kTile << "x" << kTile
            << " tiles, lazy evaluation\n\n";

  TextTable table({"policy", "iterations", "cpu tasks", "device tasks",
                   "modeled time ms", "vs cpu-only", "device share %"});

  double cpu_only_time = 0;
  for (const HybridPolicy policy :
       {HybridPolicy::kCpuOnly, HybridPolicy::kDeviceOnly,
        HybridPolicy::kStaticFraction, HybridPolicy::kDynamicEft}) {
    Field f = sparse_random_pile(kSize, kSize, 0.05, 32, 256, 99);
    AsyncEngine engine(f);
    TileGrid tiles(kSize, kSize, kTile, kTile);

    HybridOptions opt;
    opt.cpu.workers = 4;
    opt.cpu.cells_per_us = 150;
    opt.device.cells_per_us = 3000;
    opt.device.batch_latency_us = 80;
    opt.policy = policy;
    opt.device_fraction = 0.5;
    opt.lazy = true;
    TraceRecorder trace(opt.cpu.workers + 1);
    opt.trace = &trace;

    HybridRunner runner(tiles, opt);
    const HybridResult r = runner.run(engine.kernel(/*drain=*/true));
    if (policy == HybridPolicy::kCpuOnly) cpu_only_time = r.modeled_time_us;

    const double total_tasks =
        static_cast<double>(r.cpu_tasks + r.device_tasks);
    table.row(
        {to_string(policy),
         TextTable::num(static_cast<std::int64_t>(r.iterations)),
         TextTable::num(static_cast<std::int64_t>(r.cpu_tasks)),
         TextTable::num(static_cast<std::int64_t>(r.device_tasks)),
         TextTable::num(r.modeled_time_us / 1e3, 2),
         TextTable::num(cpu_only_time / r.modeled_time_us, 2) + "x",
         TextTable::num(100.0 * static_cast<double>(r.device_tasks) /
                            total_tasks,
                        1)});

    if (policy == HybridPolicy::kDynamicEft) {
      // Owner map of a mid-run iteration (the Fig. 4 visual): color = lane,
      // black = stable tiles that were skipped.
      const int mid_iter = r.iterations / 2;
      render_owner_map(trace.iteration(mid_iter), kSize, kSize, 2)
          .write_ppm("out/fig4_owner_map.ppm");
    }
  }
  table.print(std::cout);
  std::cout << "\nFig. 4-style ownership map (EFT policy, mid-run "
               "iteration): out/fig4_owner_map.ppm\n"
            << "expected shape: dynamic EFT beats cpu-only and device-only; "
               "black regions grow as tiles stabilize.\n";

  // ---- Memory-contention sweep: the queued device model under shrinking
  // DRAM bandwidth. As the channel tightens the device lane stalls, the
  // EFT balancer reacts by shifting tiles back to the CPU pool, and the
  // device's task share drops — the trade-off the hybrid assignment asks
  // students to reason about (a faster ALU does not help a starved one).
  // A smaller pile than the table above: the sweep re-stabilizes the field
  // once per bandwidth point.
  constexpr int kSweepSize = 256;
  std::cout << "\n== queued device: DRAM contention sweep (dynamic EFT, "
            << kSweepSize << "x" << kSweepSize << ") ==\n";
  TextTable sweep({"dram GB/s", "modeled time ms", "device share %",
                   "device stall ms", "dram MB"});
  for (const double gb_per_s : {64.0, 8.0, 1.0}) {
    Field f = sparse_random_pile(kSweepSize, kSweepSize, 0.05, 32, 256, 99);
    AsyncEngine engine(f);
    TileGrid tiles(kSweepSize, kSweepSize, kTile, kTile);

    HybridOptions opt;
    opt.cpu.workers = 4;
    opt.cpu.cells_per_us = 150;
    opt.device.cells_per_us = 3000;
    opt.device.batch_latency_us = 80;
    opt.device.dram_bytes_per_us = gb_per_s * 1e3;  // GB/s -> bytes/us
    opt.policy = HybridPolicy::kDynamicEft;
    opt.lazy = true;

    HybridRunner runner(tiles, opt);
    const HybridResult r = runner.run(engine.kernel(/*drain=*/true));
    const double total_tasks =
        static_cast<double>(r.cpu_tasks + r.device_tasks);
    sweep.row({TextTable::num(gb_per_s, 0),
               TextTable::num(r.modeled_time_us / 1e3, 2),
               TextTable::num(100.0 * static_cast<double>(r.device_tasks) /
                                  total_tasks,
                              1),
               TextTable::num(r.device_stall_us / 1e3, 2),
               TextTable::num(static_cast<double>(r.device_dram_bytes) / 1e6,
                              1)});
  }
  sweep.print(std::cout);
  std::cout << "expected shape: stalls grow and the device share falls as "
               "bandwidth shrinks.\n";
  return 0;
}
