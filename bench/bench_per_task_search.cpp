// §IV Tab #2, beyond the assignment UI: searching the *per-task* placement
// space — the actual NP-complete problem the paper names (2^738 options) —
// with best-improvement local search and simulated annealing, and
// comparing against the per-level-fraction optimum students can reach in
// the browser. Expected shape: per-task search matches or beats the
// per-level optimum (levels are a strict subset of its space).
#include <iostream>

#include "core/table.hpp"
#include "core/timer.hpp"
#include "wfsim/montage.hpp"
#include "wfsim/schedule.hpp"

int main() {
  using namespace peachy;
  using namespace peachy::wf;

  const Platform plat = eduwrench_platform();
  const Workflow wf = make_montage();

  std::cout << "per-task placement search — Montage-" << wf.num_tasks()
            << ", 12 nodes @ p0 + 16 VMs (search space 2^" << wf.num_tasks()
            << ")\n\n";

  TextTable t({"method", "time_s", "total gCO2e", "simulations", "wall s"});
  WallTimer timer;

  // Baseline: the best per-level-fraction placement (the assignment's UI
  // space), from the coarse grid + refinement.
  timer.reset();
  const CloudSearchResult grid =
      exhaustive_cloud_search(wf, plat, 12, 0, {0.0, 0.5, 1.0});
  const CloudSearchResult frac =
      refine_cloud_fractions(wf, plat, 12, 0, grid.fractions, 0.125);
  t.row({"per-level fractions (grid + refine)",
         TextTable::num(frac.result.makespan_s, 1),
         TextTable::num(frac.result.total_gco2, 1),
         TextTable::num(static_cast<std::int64_t>(grid.evaluated +
                                                  frac.evaluated)),
         TextTable::num(timer.elapsed_s(), 1)});

  // Per-task local search seeded from the fraction optimum.
  timer.reset();
  const PlacementSearchResult local = per_task_local_search(
      wf, plat, 12, 0, Placement::level_fractions(wf, frac.fractions), 6);
  t.row({"+ per-task local search",
         TextTable::num(local.result.makespan_s, 1),
         TextTable::num(local.result.total_gco2, 1),
         TextTable::num(static_cast<std::int64_t>(local.evaluated)),
         TextTable::num(timer.elapsed_s(), 1)});

  // Simulated annealing from all-local (no hints).
  timer.reset();
  AnnealParams ap;
  ap.iterations = 6000;
  ap.seed = 7;
  const PlacementSearchResult annealed =
      anneal_placement(wf, plat, 12, 0, Placement::all(wf, Site::kCluster), ap);
  t.row({"simulated annealing (from all-local)",
         TextTable::num(annealed.result.makespan_s, 1),
         TextTable::num(annealed.result.total_gco2, 1),
         TextTable::num(static_cast<std::int64_t>(annealed.evaluated)),
         TextTable::num(timer.elapsed_s(), 1)});
  t.print(std::cout);

  const double best = std::min(local.result.total_gco2,
                               annealed.result.total_gco2);
  std::cout << "\nper-task search vs per-level optimum: "
            << TextTable::num(frac.result.total_gco2, 1) << " -> "
            << TextTable::num(best, 1) << " gCO2e ("
            << TextTable::num(
                   100.0 * (1.0 - best / frac.result.total_gco2), 1)
            << "% further reduction)\n"
            << "cloud tasks in the best placement: "
            << (local.result.total_gco2 <= annealed.result.total_gco2
                    ? local.placement.cloud_task_count()
                    : annealed.placement.cloud_task_count())
            << " of " << wf.num_tasks() << "\n";
  return best <= frac.result.total_gco2 + 1e-9 ? 0 : 1;
}
