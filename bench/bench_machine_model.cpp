// Machine-model validation harness: calibrate the hierarchical platform
// description from real transport telemetry, then check its predictions
// against workloads it was NOT fitted on.
//
// Phase 1 runs the distributed sandpile's halo exchange over real loopback
// TCP at several halo depths; each run's net.rtt_ns / net.frame_bytes
// histograms become one calibration point, and machine::from_measurements
// fits the NIC/fabric edges (rtt = 2*latency + bytes/bandwidth, least
// squares). Phase 2 replays held-out workloads — a ghost-cell sweep at an
// unseen halo depth and dmr shuffle jobs — and compares the model's
// predicted transfer time against the transport's measured RTT total. The
// acceptance bar is 25% per workload (DESIGN.md). Phase 3 extrapolates:
// the calibrated machine predicts transfers and a contended 4-flow halo
// round no measurement was taken for.
//
// Results land in out/BENCH_machine.json.
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/json.hpp"
#include "core/table.hpp"
#include "dmr/job.hpp"
#include "machine/calibrate.hpp"
#include "machine/codec.hpp"
#include "machine/simulate.hpp"
#include "mpp/mpp.hpp"
#include "obs/obs.hpp"
#include "sandpile/field.hpp"
#include "sandpile/distributed.hpp"

namespace {

using namespace peachy;

// The machine being calibrated: every mpp rank is one node of a loopback
// "cluster". On-node edges are free and infinitely wide so the NIC/fabric
// fit is the only thing the predictions depend on.
machine::Machine loopback_machine() {
  machine::NodeGroup g;
  g.name = "loopback";
  g.nodes = 4;
  g.sockets_per_node = 1;
  g.cores_per_socket = 1;
  g.core_gflops = 1.0;
  g.l3 = {1e15, 0.0};
  g.membus = {1e15, 0.0};
  g.nic = {1e9, 1e-6};  // placeholder; replaced by from_measurements
  machine::Machine m;
  m.groups.push_back(g);
  m.fabric = {1e9, 0.0};
  return m;
}

// Runs `body` with a freshly reset global metric registry and returns the
// snapshot it produced — one observed operating point.
template <typename Body>
std::vector<obs::MetricSample> observed_run(Body&& body) {
  obs::Registry::global().reset();
  body();
  return obs::Registry::global().samples();
}

void ghost_cells_tcp(const sandpile::Field& initial, int ranks, int halo) {
  sandpile::DistributedOptions opt;
  opt.ranks = ranks;
  opt.halo_depth = halo;
  opt.run.transport = mpp::TransportKind::kTcp;
  sandpile::stabilize_distributed(initial, opt);
}

using InputPair = std::pair<int, std::string>;

std::vector<InputPair> word_corpus(int lines) {
  const char* words[] = {"peach", "stripe", "rank",  "shuffle",
                         "spill", "merge",  "epoch", "reduce"};
  std::vector<InputPair> inputs;
  for (int i = 0; i < lines; ++i) {
    std::string line;
    for (int w = 0; w < 9; ++w) {
      if (w) line += ' ';
      line += words[(i * 3 + w * 5) % 8];
    }
    inputs.emplace_back(i, line);
  }
  return inputs;
}

// A shuffle-dominated dmr job over TCP: whole lines travel as values and
// mapping/reducing are near-free, so the telemetry is almost pure shuffle.
// `epochs` map epochs split the same traffic across that many exchange
// barriers — more, smaller frames, keeping the coalesced frame size inside
// the regime the calibration swept (per-byte cost on a real host is not
// constant across regimes: MB-sized frames fall out of cache and cost
// roughly twice as much per byte as the ≤16 KB frames fitted here).
void dmr_shuffle_tcp(int ranks, int lines, int epochs) {
  dmr::Job<int, std::string, std::string, std::string, std::string,
           std::uint64_t>
      job;
  job.mapper([](const int& id, const std::string& line,
                mr::Emitter<std::string, std::string>& out) {
    out.emit(std::to_string(id % 64), line);
  });
  job.reducer([](const std::string& key,
                 const std::vector<std::string>& values,
                 mr::Emitter<std::string, std::uint64_t>& out) {
    std::uint64_t total = 0;
    for (const std::string& v : values) total += v.size();
    out.emit(key, total);
  });
  dmr::Options opt;
  opt.ranks = ranks;
  opt.run.transport = mpp::TransportKind::kTcp;
  opt.map_workers = 1;
  opt.reduce_workers = 1;
  opt.map_tasks = 8;
  opt.map_epochs = epochs;
  opt.partitions = 2 * ranks;
  job.options(std::move(opt));
  job.run(word_corpus(lines));
}

// Measured vs predicted for one held-out workload snapshot. The transport's
// RTT total is ground truth; the prediction routes the run's mean frame
// through the calibrated machine once per observed frame. `flows` is the
// workload's concurrent flow count: calibration ran bidirectional 2-rank
// exchanges (2 flows), so a workload with F flows fair-shares the fitted
// bandwidth at F/2 of the calibration conditions. `frames_per_burst` is
// how many frames the workload writes back-to-back at one peer: the
// transport acks cumulatively, so every frame in a burst observes the
// whole burst's stream time, not just its own. Ghost-cell exchanges send
// one halo frame per peer per iteration (burst = 1); the dmr shuffle's
// length-prefixed protocol sends length + block per peer (burst = 2).
struct Validation {
  std::string name;
  int flows = 2;
  int frames_per_burst = 1;
  bool counted = true;  ///< false = informational row, outside the bar
  std::uint64_t frames = 0;
  double mean_bytes = 0.0;
  double measured_s = 0.0;
  double predicted_s = 0.0;
  double error_pct = 0.0;
};

Validation validate(const machine::Machine& m, std::string name,
                    const std::vector<obs::MetricSample>& snapshot,
                    int flows = 2, int frames_per_burst = 1,
                    bool counted = true) {
  Validation v;
  v.name = std::move(name);
  v.flows = flows;
  v.frames_per_burst = frames_per_burst;
  v.counted = counted;
  const machine::CalibrationPoint p = machine::calibration_point(snapshot);
  v.frames = p.frames;
  v.mean_bytes = p.mean_frame_bytes;
  v.measured_s = p.mean_rtt_s * static_cast<double>(p.frames);
  // The measured quantity is a round trip, so the prediction is one too:
  // the data one way (route latency + stream time, with the stream
  // fair-shared across the workload's flows) plus the empty ack's route
  // latency back. predict_transfer_s(…, 0) is exactly the route latency.
  // A frame's ack covers its whole burst (cumulative acks), so the
  // streamed bytes per observed RTT are the burst's, i.e. burst size x
  // the run's mean frame.
  const machine::CoreId src{0, 0, 0, 0};
  const machine::CoreId dst{0, 1, 0, 0};
  const double latency_s = machine::predict_transfer_s(m, src, dst, 0.0);
  const double burst_bytes = p.mean_frame_bytes * frames_per_burst;
  const double stream_s =
      machine::predict_transfer_s(m, src, dst, burst_bytes) - latency_s;
  v.predicted_s = static_cast<double>(p.frames) *
                  (2.0 * latency_s + stream_s * flows / 2.0);
  v.error_pct = 100.0 * std::abs(v.predicted_s - v.measured_s) /
                v.measured_s;
  return v;
}

}  // namespace

int main() {
  std::filesystem::create_directories("out");
  obs::set_enabled(true);  // instrumentation sites are gated off by default
  constexpr double kTargetPct = 25.0;

  // ---- Phase 1: calibration runs. All at 2 TCP ranks; the grid width
  // sets the halo-frame size, so sweeping width x halo depth spans frame
  // sizes from ~300 B to ~17 KB — wide enough that every validation
  // workload's mean frame interpolates instead of extrapolating.
  constexpr int kSize = 128;
  const sandpile::Field initial = sandpile::center_pile(kSize, kSize, 20000);
  const sandpile::Field wide = sandpile::center_pile(64, 1024, 30000);
  std::cout << "machine-model calibration — ghost-cell halo exchange over "
               "loopback TCP, 2 ranks, frame size swept via grid width x "
               "halo depth\n\n";

  std::vector<std::vector<obs::MetricSample>> snapshots;
  std::vector<machine::CalibrationPoint> points;
  TextTable cal({"grid", "halo k", "frames", "mean bytes", "mean rtt us"});
  const struct {
    const sandpile::Field* field;
    const char* label;
    int halo;
  } runs[] = {{&initial, "128x128", 1}, {&initial, "128x128", 2},
              {&initial, "128x128", 4}, {&initial, "128x128", 8},
              {&wide, "64x1024", 2},    {&wide, "64x1024", 4},
              {&wide, "64x1024", 8}};
  for (const auto& r : runs) {
    snapshots.push_back(
        observed_run([&] { ghost_cells_tcp(*r.field, 2, r.halo); }));
    points.push_back(machine::calibration_point(snapshots.back()));
    const machine::CalibrationPoint& p = points.back();
    cal.row({r.label, TextTable::num(static_cast<std::int64_t>(r.halo)),
             TextTable::num(static_cast<std::int64_t>(p.frames)),
             TextTable::num(p.mean_frame_bytes, 0),
             TextTable::num(p.mean_rtt_s * 1e6, 1)});
  }
  cal.print(std::cout);

  const machine::LinkFit fit = machine::fit_link(points);
  const machine::Machine mach =
      machine::from_measurements(loopback_machine(), snapshots);
  std::cout << "\nfitted NIC: "
            << TextTable::num(fit.link.bytes_per_s / 1e6, 1) << " MB/s, "
            << TextTable::num(fit.link.latency_s * 1e6, 1)
            << " us one-way latency (max residual "
            << TextTable::num(fit.max_residual_s * 1e6, 1) << " us over "
            << fit.points << " points)\n";

  // ---- Phase 2: held-out validation. None of these runs fed the fit.
  // Ghost-cell flows: a halo exchange keeps both directions of every
  // interior boundary in flight — 2*(ranks-1) flows. Dmr shuffle is
  // all-to-all: ranks*(ranks-1) flows.
  std::cout << "\n== validation: predicted vs measured transfer time ==\n";
  std::vector<Validation> checks;
  checks.push_back(validate(
      mach, "ghost-cell 2 ranks k=3",
      observed_run([&] { ghost_cells_tcp(initial, 2, 3); })));
  checks.push_back(validate(
      mach, "ghost-cell 2 ranks k=6 wide",
      observed_run([&] { ghost_cells_tcp(wide, 2, 6); })));
  // Informational: at 4 ranks the measured RTTs also absorb host-scheduler
  // contention (8 rank + transport threads), which the link model does not
  // describe — reported to show the flow-scaling trend, not gated.
  checks.push_back(validate(
      mach, "ghost-cell 4 ranks k=2 (info)",
      observed_run([&] { ghost_cells_tcp(initial, 4, 2); }), 6,
      /*frames_per_burst=*/1, /*counted=*/false));
  // Several repetitions accumulate into one snapshot for stable means. The
  // corpus is sized so a single map epoch coalesces each rank pair's
  // shuffle into one mid-span block per direction; the shuffle protocol
  // writes length + block back-to-back, so frames arrive in bursts of two
  // and every RTT covers the burst (frames_per_burst = 2).
  checks.push_back(validate(mach, "dmr shuffle 2 ranks", observed_run([&] {
                              for (int i = 0; i < 24; ++i)
                                dmr_shuffle_tcp(2, 2000, 1);
                            }),
                            2, /*frames_per_burst=*/2));
  // Informational: the 12-flow all-to-all also absorbs scheduler
  // contention from 4x(rank+transport) threads — reported to show the
  // flow-scaling trend, not gated.
  checks.push_back(validate(mach, "dmr shuffle 4 ranks (info)",
                            observed_run([&] {
                              for (int i = 0; i < 8; ++i)
                                dmr_shuffle_tcp(4, 6000, 1);
                            }),
                            12, /*frames_per_burst=*/2, /*counted=*/false));

  bool all_within = true;
  TextTable val({"workload", "flows", "frames", "mean bytes", "measured ms",
                 "predicted ms", "error %", "within 25%"});
  for (const Validation& v : checks) {
    const bool ok = v.error_pct <= kTargetPct;
    if (v.counted) all_within = all_within && ok;
    val.row({v.name, TextTable::num(static_cast<std::int64_t>(v.flows)),
             TextTable::num(static_cast<std::int64_t>(v.frames)),
             TextTable::num(v.mean_bytes, 0),
             TextTable::num(v.measured_s * 1e3, 2),
             TextTable::num(v.predicted_s * 1e3, 2),
             TextTable::num(v.error_pct, 1),
             !v.counted ? (ok ? "yes (info)" : "no (info)")
                        : (ok ? "yes" : "NO")});
  }
  val.print(std::cout);
  std::cout << (all_within
                    ? "all gated workloads within the 25% acceptance bar\n"
                    : "ACCEPTANCE FAILED: a workload missed the 25% bar\n");

  // ---- Phase 3: extrapolation — what the calibrated machine says about
  // runs nobody measured.
  std::cout << "\n== extrapolation on the calibrated machine ==\n";
  TextTable extra({"transfer", "predicted ms"});
  const machine::CoreId c0{0, 0, 0, 0};
  for (const double mb : {1.0, 16.0, 256.0}) {
    extra.row({TextTable::num(mb, 0) + " MB cross-node",
               TextTable::num(machine::predict_transfer_s(
                                  mach, c0, {0, 1, 0, 0}, mb * 1e6) *
                                  1e3,
                              2)});
  }
  // A contended halo round: four flows ring-exchange 1 MB at once; the
  // shared fabric fair-shares, so this is slower than one uncontended flow.
  machine::Dag ring;
  for (int n = 0; n < 4; ++n)
    ring.tasks.push_back({0.0, {0, n, 0, 0}, {}});
  for (int n = 0; n < 4; ++n) {
    ring.tasks.push_back({0.0, {0, (n + 1) % 4, 0, 0}, {}});
    ring.transfers.push_back({n, 4 + n, 1e6});
  }
  const machine::Report ring_report = machine::simulate(mach, ring);
  extra.row({"4-flow 1 MB ring exchange",
             TextTable::num(ring_report.makespan_s * 1e3, 2)});
  extra.print(std::cout);

  // ---- JSON record.
  json::Object doc;
  json::Object fitted;
  fitted["bytes_per_s"] = json::Value(fit.link.bytes_per_s);
  fitted["latency_s"] = json::Value(fit.link.latency_s);
  fitted["max_residual_s"] = json::Value(fit.max_residual_s);
  fitted["points"] = json::Value(static_cast<std::int64_t>(fit.points));
  doc["fit"] = json::Value(std::move(fitted));
  json::Array cal_rows;
  for (const machine::CalibrationPoint& p : points) {
    json::Object row;
    row["frames"] = json::Value(static_cast<std::int64_t>(p.frames));
    row["mean_frame_bytes"] = json::Value(p.mean_frame_bytes);
    row["mean_rtt_s"] = json::Value(p.mean_rtt_s);
    cal_rows.push_back(json::Value(std::move(row)));
  }
  doc["calibration_points"] = json::Value(std::move(cal_rows));
  json::Array val_rows;
  for (const Validation& v : checks) {
    json::Object row;
    row["workload"] = json::Value(v.name);
    row["frames"] = json::Value(static_cast<std::int64_t>(v.frames));
    row["mean_frame_bytes"] = json::Value(v.mean_bytes);
    row["measured_s"] = json::Value(v.measured_s);
    row["predicted_s"] = json::Value(v.predicted_s);
    row["flows"] = json::Value(static_cast<std::int64_t>(v.flows));
    row["frames_per_burst"] =
        json::Value(static_cast<std::int64_t>(v.frames_per_burst));
    row["gated"] = json::Value(v.counted);
    row["error_pct"] = json::Value(v.error_pct);
    row["within_target"] = json::Value(v.error_pct <= kTargetPct);
    val_rows.push_back(json::Value(std::move(row)));
  }
  doc["validation"] = json::Value(std::move(val_rows));
  doc["target_error_pct"] = json::Value(kTargetPct);
  doc["all_within_target"] = json::Value(all_within);
  doc["ring_exchange_makespan_s"] = json::Value(ring_report.makespan_s);
  std::ofstream("out/BENCH_machine.json")
      << json::Value(std::move(doc)).dump(true) << "\n";
  // The calibrated description itself, ready for --platform on the CLI
  // drivers: predict runs nobody measured on the machine just fitted.
  machine::save_machine(mach, "out/machine_calibrated.json");
  std::cout << "\nwrote out/BENCH_machine.json and "
               "out/machine_calibrated.json\n";
  return all_within ? 0 : 1;
}
