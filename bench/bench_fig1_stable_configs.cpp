// Fig. 1 reproduction: the two stable configurations over 128x128 piles.
//
//  (a) 25 000 grains dropped on the center cell;
//  (b) 4 grains in every cell.
//
// The paper shows the images; this bench regenerates them (out/fig1*.ppm)
// and prints the quantitative fingerprint of each fixed point — grain
// histogram per color class, sink losses, and iteration counts — plus a
// cross-variant agreement check (Dhar's theorem end-to-end).
#include <filesystem>
#include <iostream>

#include "core/table.hpp"
#include "core/timer.hpp"
#include "sandpile/field.hpp"
#include "sandpile/variants.hpp"

int main() {
  using namespace peachy;
  using namespace peachy::sandpile;
  std::filesystem::create_directories("out");

  struct Config {
    const char* label;
    const char* file;
    Field initial;
  };
  Config configs[] = {
      {"Fig1a: 25000 grains in center cell", "out/fig1a_center.ppm",
       center_pile(128, 128, 25000)},
      {"Fig1b: 4 grains in each cell", "out/fig1b_uniform4.ppm",
       uniform_pile(128, 128, 4)},
  };

  std::cout << "Fig. 1 — stable configurations over 128x128 sand piles\n"
            << "(black pixels = 0 grains, green = 1, blue = 2, red = 3)\n\n";

  TextTable table({"configuration", "iterations", "black(0)", "green(1)",
                   "blue(2)", "red(3)", "kept", "sunk", "variants agree"});
  for (Config& cfg : configs) {
    Field f = cfg.initial;
    VariantOptions opt;
    opt.tile_h = opt.tile_w = 16;
    const VariantOutcome out = run_variant(Variant::kOmpLazySync, f, opt);

    // Cross-check: the async-wave variant must reach the same fixed point.
    Field g = cfg.initial;
    run_variant(Variant::kOmpLazyAsyncWave, g, opt);
    const bool agree = f.same_interior(g);

    f.render().upscaled(3).write_ppm(cfg.file);
    table.row({cfg.label,
               TextTable::num(static_cast<std::int64_t>(out.run.iterations)),
               TextTable::num(f.count_cells_with(0)),
               TextTable::num(f.count_cells_with(1)),
               TextTable::num(f.count_cells_with(2)),
               TextTable::num(f.count_cells_with(3)),
               TextTable::num(f.interior_grains()),
               TextTable::num(f.sink_grains()), agree ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\nimages: out/fig1a_center.ppm, out/fig1b_uniform4.ppm\n";
  return 0;
}
