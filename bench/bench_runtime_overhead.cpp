// Microbenchmark for the work-stealing task runtime: fork/join dispatch
// overhead against the mutex-queue thread pool it replaced, a grain sweep,
// and steal rates under an unbalanced load. The legacy pool is embedded
// here verbatim-in-spirit (FIFO queue, one mutex, condition variable,
// futures per chunk) because core/thread_pool.hpp is now a shim over the
// runtime — the old design only survives as this baseline.
//
// Reported configurations, all at 8 lanes:
//  * arena          — persistent TaskArena, chunks dealt into deques
//  * legacy         — persistent mutex-queue pool, one future per chunk
//  * legacy/phase   — pool constructed + torn down per dispatch (exactly
//                     what mr::Job did per map/reduce phase)
//
// Writes out/BENCH_runtime.json for regression tracking.
#include <algorithm>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <functional>
#include <future>
#include <iostream>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "core/json.hpp"
#include "core/table.hpp"
#include "core/task_runtime.hpp"
#include "core/timer.hpp"

namespace {

using namespace peachy;

// The pre-runtime ThreadPool, kept as the comparison baseline.
class LegacyPool {
 public:
  explicit LegacyPool(std::size_t threads) {
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ~LegacyPool() {
    {
      std::lock_guard lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  template <typename F>
  std::future<void> submit(F&& f) {
    auto task = std::make_shared<std::packaged_task<void()>>(std::forward<F>(f));
    std::future<void> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    const std::size_t chunks = std::min(n, workers_.size() * 4);
    const std::size_t chunk = (n + chunks - 1) / chunks;
    std::vector<std::future<void>> futs;
    futs.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = c * chunk;
      const std::size_t hi = std::min(n, lo + chunk);
      if (lo >= hi) break;
      futs.push_back(submit([lo, hi, &fn] {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      }));
    }
    for (auto& f : futs) f.get();
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop();
      }
      task();
    }
  }

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

// Median wall time of `reps` calls to once(), in ns per call.
template <typename F>
double median_ns(int reps, F&& once) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    once();
    samples.push_back(static_cast<double>(timer.elapsed_ns()));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main() {
  constexpr std::size_t kLanes = 8;
  constexpr std::size_t kTasks = 64;  // tiles of a typical small iteration
  constexpr int kReps = 300;
  constexpr int kPhaseReps = 40;  // pool construction is slow; fewer reps

  TaskArena arena(kLanes - 1);  // 7 workers + the caller = 8 lanes
  const auto noop = [](std::size_t) {};

  // Warm up both schedulers (first dispatch pays page faults and wakeups).
  for (int r = 0; r < 20; ++r)
    arena.parallel_for_index(kTasks, noop, {.grain = 1});

  const double arena_ns = median_ns(kReps, [&] {
    arena.parallel_for_index(kTasks, noop, {.grain = 1});
  });

  double legacy_ns = 0;
  {
    LegacyPool pool(kLanes);
    for (int r = 0; r < 20; ++r) pool.parallel_for(kTasks, noop);
    legacy_ns = median_ns(kReps, [&] { pool.parallel_for(kTasks, noop); });
  }

  const double phase_ns = median_ns(kPhaseReps, [&] {
    LegacyPool pool(kLanes);
    pool.parallel_for(kTasks, noop);
  });

  TextTable dispatch({"scheduler", "dispatch us", "vs arena"});
  dispatch.row({"arena", TextTable::num(arena_ns / 1e3, 2), "1.00x"});
  dispatch.row({"legacy", TextTable::num(legacy_ns / 1e3, 2),
                TextTable::num(legacy_ns / arena_ns, 2) + "x"});
  dispatch.row({"legacy/phase", TextTable::num(phase_ns / 1e3, 2),
                TextTable::num(phase_ns / arena_ns, 2) + "x"});
  std::cout << "fork/join dispatch, " << kLanes << " lanes, " << kTasks
            << " empty tasks (median of " << kReps << ")\n";
  dispatch.print(std::cout);

  // Grain sweep over an unbalanced load: every 64th index is ~500x heavier.
  const std::size_t kN = 4096;
  const auto work = [](std::size_t i) {
    const std::size_t reps = (i % 64 == 0) ? 5000 : 10;
    volatile std::uint64_t acc = 0;
    for (std::size_t r = 0; r < reps; ++r) acc = acc + (i ^ r);
  };
  std::cout << "\ngrain sweep, unbalanced load, n=" << kN << "\n";
  TextTable sweep({"grain", "wall us", "chunks", "steals"});
  json::Array grain_rows;
  for (const std::size_t grain : {std::size_t{1}, std::size_t{8},
                                  std::size_t{64}, std::size_t{512}}) {
    arena.reset_counters();
    const double ns =
        median_ns(20, [&] { arena.parallel_for_index(kN, work, {.grain = grain}); });
    const RuntimeCounters c = arena.counters();
    sweep.row({TextTable::num(static_cast<std::int64_t>(grain)),
               TextTable::num(ns / 1e3, 1),
               TextTable::num(static_cast<std::int64_t>(c.tasks)),
               TextTable::num(static_cast<std::int64_t>(c.steals))});
    json::Object row;
    row["grain"] = json::Value(static_cast<std::int64_t>(grain));
    row["wall_ns"] = json::Value(ns);
    row["tasks"] = json::Value(static_cast<std::int64_t>(c.tasks));
    row["steals"] = json::Value(static_cast<std::int64_t>(c.steals));
    grain_rows.push_back(json::Value(std::move(row)));
  }
  sweep.print(std::cout);

  json::Object doc;
  doc["lanes"] = json::Value(static_cast<std::int64_t>(kLanes));
  doc["tasks_per_dispatch"] = json::Value(static_cast<std::int64_t>(kTasks));
  doc["arena_dispatch_ns"] = json::Value(arena_ns);
  doc["legacy_dispatch_ns"] = json::Value(legacy_ns);
  doc["legacy_per_phase_ns"] = json::Value(phase_ns);
  doc["legacy_vs_arena"] = json::Value(legacy_ns / arena_ns);
  doc["legacy_per_phase_vs_arena"] = json::Value(phase_ns / arena_ns);
  doc["grain_sweep"] = json::Value(std::move(grain_rows));
  std::filesystem::create_directories("out");
  std::ofstream("out/BENCH_runtime.json")
      << json::Value(std::move(doc)).dump(true) << "\n";
  std::cout << "\nwrote out/BENCH_runtime.json\n";
  return 0;
}
