// JSON machine codec: canonical round trips, strict unknown-key rejection,
// and loud failures for malformed text and missing files.
#include <gtest/gtest.h>

#include <stdlib.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/error.hpp"
#include "machine/codec.hpp"

namespace peachy::machine {
namespace {

Machine sample_machine() {
  Machine m;
  NodeGroup cluster;
  cluster.name = "cluster";
  cluster.nodes = 8;
  cluster.sockets_per_node = 2;
  cluster.cores_per_socket = 4;
  cluster.core_gflops = 10.0;
  cluster.core_clock_states = {1.0, 1.2, 1.4};
  cluster.l3 = {200e9, 20e-9};
  cluster.membus = {25e9, 90e-9};
  cluster.upi = {20e9, 120e-9};
  cluster.nic = {1.25e9, 50e-6};
  NodeGroup cloud;
  cloud.name = "cloud";
  cloud.nodes = 2;
  cloud.cores_per_socket = 8;
  cloud.core_gflops = 14.0;
  cloud.l3 = {180e9, 25e-9};
  cloud.membus = {20e9, 95e-9};
  cloud.nic = {1.25e9, 50e-6};
  cloud.uplink = {125e6, 0.010};
  m.groups = {cluster, cloud};
  m.fabric = {1.25e9, 0.5e-6};
  return m;
}

TEST(MachineCodec, DumpParseRoundTripPreservesEveryField) {
  const Machine m = sample_machine();
  const Machine back = parse_machine(dump_machine(m));
  ASSERT_EQ(back.groups.size(), 2u);
  const NodeGroup& g = back.groups[0];
  EXPECT_EQ(g.name, "cluster");
  EXPECT_EQ(g.nodes, 8);
  EXPECT_EQ(g.sockets_per_node, 2);
  EXPECT_EQ(g.cores_per_socket, 4);
  EXPECT_DOUBLE_EQ(g.core_gflops, 10.0);
  EXPECT_EQ(g.core_clock_states, (std::vector<double>{1.0, 1.2, 1.4}));
  EXPECT_DOUBLE_EQ(g.upi.bytes_per_s, 20e9);
  EXPECT_DOUBLE_EQ(g.nic.latency_s, 50e-6);
  EXPECT_TRUE(back.groups[1].has_uplink());
  EXPECT_DOUBLE_EQ(back.groups[1].uplink.latency_s, 0.010);
  EXPECT_DOUBLE_EQ(back.fabric.bytes_per_s, 1.25e9);
  // Canonical serialization: dumping the round-tripped machine is stable.
  EXPECT_EQ(dump_machine(back), dump_machine(m));
}

TEST(MachineCodec, OptionalSectionsStayAbsent) {
  Machine m;
  NodeGroup g;
  g.name = "solo";
  g.core_gflops = 5.0;
  g.l3 = {100e9, 0.0};
  g.membus = {50e9, 0.0};
  g.nic = {1e9, 1e-6};
  m.groups = {g};
  const std::string text = dump_machine(m);
  EXPECT_EQ(text.find("upi"), std::string::npos);
  EXPECT_EQ(text.find("uplink"), std::string::npos);
  EXPECT_EQ(text.find("core_clock_states"), std::string::npos);
  const Machine back = parse_machine(text);
  EXPECT_FALSE(back.groups[0].has_uplink());
  EXPECT_TRUE(back.groups[0].core_clock_states.empty());
}

TEST(MachineCodec, UnknownKeysAreRejectedAtEveryLevel) {
  const std::string good = dump_machine(sample_machine());
  // Top level.
  EXPECT_THROW(parse_machine("{\"fabric\":{\"bytes_per_s\":1,\"latency_s\":0},"
                             "\"groups\":[],\"color\":\"red\"}"),
               Error);
  // Link level.
  std::string bad_link = good;
  bad_link.replace(bad_link.find("\"bytes_per_s\""), 13, "\"bytes_per_sec\"");
  EXPECT_THROW(parse_machine(bad_link), Error);
  // Group level.
  std::string bad_group = good;
  bad_group.replace(bad_group.find("\"core_gflops\""), 13, "\"gflops\"");
  EXPECT_THROW(parse_machine(bad_group), Error);
}

TEST(MachineCodec, MalformedTextAndInvalidMachinesThrow) {
  EXPECT_THROW(parse_machine("not json at all {"), Error);
  EXPECT_THROW(parse_machine("[1, 2, 3]"), Error);
  // Structurally valid JSON, structurally invalid machine: zero NIC bw.
  Machine m = sample_machine();
  m.groups[0].nic.bytes_per_s = 0.0;
  EXPECT_THROW(parse_machine(to_json(m).dump(true)), Error);
}

TEST(MachineCodec, FileRoundTripAndMissingFileError) {
  char tmpl[] = "/tmp/peachy-machine-XXXXXX";
  const std::string dir = ::mkdtemp(tmpl);
  const std::string path = dir + "/machine.json";
  const Machine m = sample_machine();
  save_machine(m, path);
  const Machine back = load_machine(path);
  EXPECT_EQ(dump_machine(back), dump_machine(m));

  EXPECT_THROW(load_machine(dir + "/absent.json"), Error);
  // Parse errors carry the file path for the CLI's error message.
  std::ofstream(path) << "{ broken";
  try {
    load_machine(path);
    FAIL() << "expected a parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace peachy::machine
