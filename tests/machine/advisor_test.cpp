// Placement advisor: deterministic rank->node blocks, LPT partition
// assignment that beats the static p % R mapping on skewed traffic, and
// loud input validation.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/error.hpp"
#include "machine/advisor.hpp"

namespace peachy::machine {
namespace {

Machine four_node_machine() {
  Machine m;
  NodeGroup g;
  g.name = "cluster";
  g.nodes = 4;
  g.cores_per_socket = 4;
  g.core_gflops = 10.0;
  g.l3 = {200e9, 20e-9};
  g.membus = {25e9, 90e-9};
  g.nic = {1.25e9, 50e-6};
  m.groups = {g};
  m.fabric = {1.25e9, 0.5e-6};
  return m;
}

TEST(PlacementAdvisor, BlockRankLayoutIsContiguous) {
  const PlacementAdvisor advisor(four_node_machine());
  const Placement p = advisor.recommend(8, std::vector<std::uint64_t>(8, 100));
  ASSERT_EQ(p.rank_node.size(), 8u);
  // 8 ranks over 4 nodes: two per node, contiguous blocks.
  EXPECT_EQ(p.rank_node, (std::vector<int>{0, 0, 1, 1, 2, 2, 3, 3}));
}

TEST(PlacementAdvisor, MoreNodesThanRanksUsesAPrefix) {
  const PlacementAdvisor advisor(four_node_machine());
  const Placement p = advisor.recommend(2, std::vector<std::uint64_t>(4, 100));
  EXPECT_EQ(p.rank_node, (std::vector<int>{0, 1}));
}

TEST(PlacementAdvisor, UniformTrafficIsPerfectlyBalanced) {
  const PlacementAdvisor advisor(four_node_machine());
  const std::vector<std::uint64_t> uniform(16, 1000);
  const Placement rec = advisor.recommend(4, uniform);
  EXPECT_DOUBLE_EQ(rec.load_imbalance, 1.0);
  const Placement base = advisor.baseline(4, uniform);
  EXPECT_DOUBLE_EQ(base.load_imbalance, 1.0);
}

TEST(PlacementAdvisor, LptBeatsStaticMappingOnSkewedTraffic) {
  const PlacementAdvisor advisor(four_node_machine());
  // Zipf-ish skew: the static p % R mapping piles the two heaviest
  // partitions onto ranks 0 and 1 while LPT spreads them.
  const std::vector<std::uint64_t> skewed = {8000, 4000, 200, 100,
                                             2000, 1000, 50,  25};
  const Placement rec = advisor.recommend(4, skewed);
  const Placement base = advisor.baseline(4, skewed);
  EXPECT_LT(rec.load_imbalance, base.load_imbalance);
  EXPECT_LE(rec.predicted_shuffle_s, base.predicted_shuffle_s);
  // Every partition is owned by a valid rank.
  for (int owner : rec.partition_owner) {
    EXPECT_GE(owner, 0);
    EXPECT_LT(owner, 4);
  }
}

TEST(PlacementAdvisor, SingleNodePredictsZeroCrossTraffic) {
  Machine m = four_node_machine();
  m.groups[0].nodes = 1;
  m.fabric = {};
  const PlacementAdvisor advisor(std::move(m));
  const Placement p = advisor.recommend(4, {500, 300, 200, 100});
  EXPECT_DOUBLE_EQ(p.cross_node_bytes, 0.0);
  EXPECT_DOUBLE_EQ(p.predicted_shuffle_s, 0.0);
}

TEST(PlacementAdvisor, RecommendationIsDeterministic) {
  const PlacementAdvisor advisor(four_node_machine());
  const std::vector<std::uint64_t> traffic = {7, 7, 7, 3, 3, 1, 1, 9};
  const Placement a = advisor.recommend(3, traffic);
  const Placement b = advisor.recommend(3, traffic);
  EXPECT_EQ(a.rank_node, b.rank_node);
  EXPECT_EQ(a.partition_owner, b.partition_owner);
  EXPECT_EQ(a.predicted_shuffle_s, b.predicted_shuffle_s);
}

TEST(PlacementAdvisor, RejectsBadInputs) {
  EXPECT_THROW(PlacementAdvisor(Machine{}), Error);
  const PlacementAdvisor advisor(four_node_machine());
  EXPECT_THROW(advisor.recommend(0, {1}), Error);
  EXPECT_THROW(advisor.recommend(4, {}), Error);
  EXPECT_THROW(advisor.baseline(-1, {1}), Error);
}

}  // namespace
}  // namespace peachy::machine
