// Hierarchical machine model: structural validation, DVFS states, and the
// deterministic route/cost resolver (same-socket, cross-socket, cross-node,
// cross-group-over-uplink paths).
#include <gtest/gtest.h>

#include "core/error.hpp"
#include "machine/machine.hpp"

namespace peachy::machine {
namespace {

// Two groups: a 4-node dual-socket "cluster" directly on the fabric and a
// 2-node "cloud" behind a slow WAN uplink.
Machine two_group_machine() {
  Machine m;
  NodeGroup cluster;
  cluster.name = "cluster";
  cluster.nodes = 4;
  cluster.sockets_per_node = 2;
  cluster.cores_per_socket = 4;
  cluster.core_gflops = 10.0;
  cluster.core_clock_states = {1.0, 1.2, 1.4};
  cluster.l3 = {200e9, 20e-9};
  cluster.membus = {25e9, 90e-9};
  cluster.upi = {20e9, 120e-9};
  cluster.nic = {1.25e9, 50e-6};
  NodeGroup cloud;
  cloud.name = "cloud";
  cloud.nodes = 2;
  cloud.sockets_per_node = 1;
  cloud.cores_per_socket = 8;
  cloud.core_gflops = 14.0;
  cloud.l3 = {180e9, 25e-9};
  cloud.membus = {20e9, 95e-9};
  cloud.nic = {1.25e9, 50e-6};
  cloud.uplink = {125e6, 0.010};
  m.groups = {cluster, cloud};
  m.fabric = {1.25e9, 0.5e-6};
  return m;
}

TEST(Machine, CountsAndLookup) {
  const Machine m = two_group_machine();
  m.validate();
  EXPECT_EQ(m.total_nodes(), 6);
  EXPECT_EQ(m.total_cores(), 4 * 2 * 4 + 2 * 1 * 8);
  EXPECT_EQ(m.group_index("cloud"), 1);
  EXPECT_EQ(m.group("cluster").nodes, 4);
  EXPECT_THROW(m.group("gpu"), Error);
}

TEST(Machine, GflopsAtSelectsClockState) {
  const Machine m = two_group_machine();
  const NodeGroup& cluster = m.groups[0];
  EXPECT_DOUBLE_EQ(cluster.gflops_at(), 10.0);
  EXPECT_DOUBLE_EQ(cluster.gflops_at(2), 10.0 * 1.4);
  EXPECT_THROW(cluster.gflops_at(3), Error);
  // No state list = single nominal state.
  EXPECT_DOUBLE_EQ(m.groups[1].gflops_at(), 14.0);
}

TEST(Machine, ValidateRejectsStructuralProblems) {
  Machine m = two_group_machine();
  m.groups[0].name = "";
  EXPECT_THROW(m.validate(), Error);

  m = two_group_machine();
  m.groups[1].name = "cluster";  // duplicate
  EXPECT_THROW(m.validate(), Error);

  m = two_group_machine();
  m.groups[0].nodes = 0;
  EXPECT_THROW(m.validate(), Error);

  m = two_group_machine();
  m.groups[0].upi = {};  // dual-socket group needs a UPI link
  EXPECT_THROW(m.validate(), Error);

  m = two_group_machine();
  m.fabric = {};  // multi-node machine needs a fabric
  EXPECT_THROW(m.validate(), Error);

  m = two_group_machine();
  m.groups[0].nic.latency_s = -1e-6;
  EXPECT_THROW(m.validate(), Error);
}

TEST(Machine, CheckCoreBoundsEveryCoordinate) {
  const Machine m = two_group_machine();
  EXPECT_NO_THROW(check_core(m, {0, 3, 1, 3}));
  EXPECT_THROW(check_core(m, {2, 0, 0, 0}), Error);
  EXPECT_THROW(check_core(m, {0, 4, 0, 0}), Error);
  EXPECT_THROW(check_core(m, {0, 0, 2, 0}), Error);
  EXPECT_THROW(check_core(m, {0, 0, 0, 4}), Error);
  EXPECT_THROW(check_core(m, {1, 0, 0, 8}), Error);
}

TEST(Machine, SelfRouteIsFree) {
  const Machine m = two_group_machine();
  const CoreId c{0, 0, 0, 0};
  const Route r = route(m, c, c);
  EXPECT_TRUE(r.edges.empty());
  EXPECT_DOUBLE_EQ(r.latency_s, 0.0);
  EXPECT_DOUBLE_EQ(predict_transfer_s(m, c, c, 1e9), 0.0);
}

TEST(Machine, SameSocketRouteUsesOnlyL3) {
  const Machine m = two_group_machine();
  const Route r = route(m, {0, 0, 0, 0}, {0, 0, 0, 3});
  ASSERT_EQ(r.edges.size(), 1u);
  EXPECT_EQ(r.edges[0].kind, EdgeKind::kL3);
  EXPECT_EQ(r.edges[0].node, 0);
  EXPECT_DOUBLE_EQ(r.latency_s, 20e-9);
  EXPECT_DOUBLE_EQ(r.min_bytes_per_s, 200e9);
}

TEST(Machine, CrossSocketRouteClimbsThroughUpi) {
  const Machine m = two_group_machine();
  const Route r = route(m, {0, 1, 0, 2}, {0, 1, 1, 0});
  // l3 -> membus -> upi -> membus -> l3
  ASSERT_EQ(r.edges.size(), 5u);
  EXPECT_EQ(r.edges[0].kind, EdgeKind::kL3);
  EXPECT_EQ(r.edges[1].kind, EdgeKind::kMembus);
  EXPECT_EQ(r.edges[2].kind, EdgeKind::kUpi);
  EXPECT_EQ(r.edges[3].kind, EdgeKind::kMembus);
  EXPECT_EQ(r.edges[4].kind, EdgeKind::kL3);
  EXPECT_EQ(r.edges[0].socket, 0);
  EXPECT_EQ(r.edges[4].socket, 1);
  EXPECT_DOUBLE_EQ(r.latency_s, 20e-9 + 90e-9 + 120e-9 + 90e-9 + 20e-9);
  EXPECT_DOUBLE_EQ(r.min_bytes_per_s, 20e9);  // UPI bottlenecks
}

TEST(Machine, CrossNodeRouteBottlenecksOnNic) {
  const Machine m = two_group_machine();
  const Route r = route(m, {0, 0, 0, 0}, {0, 3, 1, 2});
  // l3, membus, nic | fabric | nic, membus, l3 (no uplink: direct group)
  ASSERT_EQ(r.edges.size(), 7u);
  EXPECT_EQ(r.edges[2].kind, EdgeKind::kNic);
  EXPECT_EQ(r.edges[3].kind, EdgeKind::kFabric);
  EXPECT_EQ(r.edges[4].kind, EdgeKind::kNic);
  EXPECT_EQ(r.edges[2].node, 0);
  EXPECT_EQ(r.edges[4].node, 3);
  EXPECT_DOUBLE_EQ(r.min_bytes_per_s, 1.25e9);
}

TEST(Machine, CrossGroupRouteTraversesTheUplink) {
  const Machine m = two_group_machine();
  const Route r = route(m, {0, 0, 0, 0}, {1, 1, 0, 0});
  // cluster: l3, membus, nic | fabric | cloud: uplink, nic, membus, l3
  ASSERT_EQ(r.edges.size(), 8u);
  int uplinks = 0;
  for (const EdgeRef& e : r.edges)
    if (e.kind == EdgeKind::kUplink) ++uplinks;
  EXPECT_EQ(uplinks, 1);
  EXPECT_DOUBLE_EQ(r.min_bytes_per_s, 125e6);  // WAN bottleneck
  EXPECT_GT(r.latency_s, 0.010);               // dominated by the uplink
}

TEST(Machine, PredictTransferIsLatencyPlusBandwidthTerm) {
  const Machine m = two_group_machine();
  const CoreId a{0, 0, 0, 0}, b{0, 1, 0, 0};
  const Route r = route(m, a, b);
  const double bytes = 4 << 20;
  EXPECT_DOUBLE_EQ(predict_transfer_s(m, a, b, bytes),
                   r.latency_s + bytes / r.min_bytes_per_s);
  EXPECT_DOUBLE_EQ(predict_transfer_s(m, a, b, bytes, 16),
                   16 * r.latency_s + bytes / r.min_bytes_per_s);
}

TEST(Machine, EdgeSpecResolvesEveryKind) {
  const Machine m = two_group_machine();
  EXPECT_DOUBLE_EQ(edge_spec(m, {EdgeKind::kL3, 0, 0, 0}).bytes_per_s, 200e9);
  EXPECT_DOUBLE_EQ(edge_spec(m, {EdgeKind::kUpi, 0, 1, -1}).bytes_per_s, 20e9);
  EXPECT_DOUBLE_EQ(edge_spec(m, {EdgeKind::kUplink, 1, -1, -1}).bytes_per_s,
                   125e6);
  EXPECT_DOUBLE_EQ(edge_spec(m, {EdgeKind::kFabric, -1, -1, -1}).latency_s,
                   0.5e-6);
}

}  // namespace
}  // namespace peachy::machine
