// Calibration from obs metric snapshots: a synthetic fixture generated from
// a known link must be recovered within tolerance, and every corrupt or
// underdetermined input must fail loudly instead of guessing.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/error.hpp"
#include "machine/calibrate.hpp"

namespace peachy::machine {
namespace {

obs::MetricSample histogram_sample(const char* name, std::uint64_t count,
                                   std::int64_t sum) {
  obs::MetricSample s;
  s.name = name;
  s.kind = obs::MetricSample::Kind::kHistogram;
  s.count = count;
  s.sum = sum;
  return s;
}

// One snapshot as the transport would leave it after a run at one frame
// size, generated from the linear model rtt = 2*latency + bytes/bandwidth.
std::vector<obs::MetricSample> synthetic_snapshot(double frame_bytes,
                                                  double bandwidth,
                                                  double latency_s,
                                                  std::uint64_t frames = 1000) {
  const double rtt_s = 2.0 * latency_s + frame_bytes / bandwidth;
  std::vector<obs::MetricSample> snap;
  snap.push_back(histogram_sample(
      "net.frame_bytes", frames,
      static_cast<std::int64_t>(frame_bytes * static_cast<double>(frames))));
  snap.push_back(histogram_sample(
      "net.rtt_ns", frames,
      static_cast<std::int64_t>(rtt_s * 1e9 * static_cast<double>(frames))));
  return snap;
}

Machine base_machine() {
  Machine m;
  NodeGroup g;
  g.name = "cluster";
  g.nodes = 4;
  g.cores_per_socket = 2;
  g.core_gflops = 10.0;
  g.l3 = {200e9, 20e-9};
  g.membus = {25e9, 90e-9};
  g.nic = {1.0, 1.0};  // deliberately wrong: calibration must replace it
  m.groups = {g};
  m.fabric = {1.0, 1.0};
  return m;
}

TEST(MachineCalibrate, PointExtractsExactHistogramMeans) {
  const auto snap = synthetic_snapshot(4096.0, 1.25e9, 50e-6, 250);
  const CalibrationPoint p = calibration_point(snap);
  EXPECT_EQ(p.frames, 250u);
  EXPECT_NEAR(p.mean_frame_bytes, 4096.0, 1e-9);
  EXPECT_NEAR(p.mean_rtt_s, 2 * 50e-6 + 4096.0 / 1.25e9, 1e-9);
}

TEST(MachineCalibrate, FitRecoversSyntheticLinkWithinTolerance) {
  const double kBw = 1.25e9, kLat = 60e-6;
  std::vector<CalibrationPoint> points;
  for (double bytes : {1024.0, 16384.0, 262144.0, 4194304.0})
    points.push_back(calibration_point(synthetic_snapshot(bytes, kBw, kLat)));
  const LinkFit fit = fit_link(points);
  EXPECT_NEAR(fit.link.bytes_per_s, kBw, 0.02 * kBw);
  EXPECT_NEAR(fit.link.latency_s, kLat, 0.02 * kLat);
  EXPECT_EQ(fit.points, 4);
  EXPECT_LT(fit.max_residual_s, 1e-6);  // the fixture is exactly linear
}

TEST(MachineCalibrate, FromMeasurementsRepairsNicAndFabric) {
  const double kBw = 2e9, kLat = 80e-6;
  std::vector<std::vector<obs::MetricSample>> snapshots;
  for (double bytes : {2048.0, 65536.0, 1048576.0})
    snapshots.push_back(synthetic_snapshot(bytes, kBw, kLat));
  const Machine fitted = from_measurements(base_machine(), snapshots);
  const NodeGroup& g = fitted.groups[0];
  EXPECT_NEAR(g.nic.bytes_per_s, kBw, 0.02 * kBw);
  // The fitted one-way latency is split in half per NIC; the fabric carries
  // bandwidth only, so a nic->fabric->nic prediction reproduces the fit.
  EXPECT_NEAR(g.nic.latency_s, kLat / 2.0, 0.02 * kLat);
  EXPECT_NEAR(fitted.fabric.bytes_per_s, kBw, 0.02 * kBw);
  EXPECT_DOUBLE_EQ(fitted.fabric.latency_s, 0.0);
  // Compute-side edges are untouched.
  EXPECT_DOUBLE_EQ(g.membus.bytes_per_s, 25e9);
  fitted.validate();
}

TEST(MachineCalibrate, MissingMetricThrows) {
  std::vector<obs::MetricSample> snap;
  snap.push_back(histogram_sample("net.rtt_ns", 10, 1000));
  EXPECT_THROW(calibration_point(snap), Error);           // no frame_bytes
  EXPECT_THROW(calibration_point({}), Error);             // empty snapshot
}

TEST(MachineCalibrate, WrongKindEmptyOrCorruptHistogramsThrow) {
  {
    auto snap = synthetic_snapshot(4096.0, 1e9, 1e-5);
    snap[0].kind = obs::MetricSample::Kind::kCounter;
    EXPECT_THROW(calibration_point(snap), Error);
  }
  {
    auto snap = synthetic_snapshot(4096.0, 1e9, 1e-5);
    snap[1].count = 0;  // no observations
    EXPECT_THROW(calibration_point(snap), Error);
  }
  {
    auto snap = synthetic_snapshot(4096.0, 1e9, 1e-5);
    snap[1].sum = -5;  // corrupt sum
    EXPECT_THROW(calibration_point(snap), Error);
  }
}

TEST(MachineCalibrate, UnderdeterminedFitsThrow) {
  // One point: cannot separate latency from bandwidth.
  std::vector<CalibrationPoint> one = {
      calibration_point(synthetic_snapshot(4096.0, 1e9, 1e-5))};
  EXPECT_THROW(fit_link(one), Error);
  // Two points at the same frame size: bandwidth unresolvable.
  std::vector<CalibrationPoint> same = {
      calibration_point(synthetic_snapshot(4096.0, 1e9, 1e-5)),
      calibration_point(synthetic_snapshot(4096.0, 1e9, 1e-5))};
  EXPECT_THROW(fit_link(same), Error);
}

TEST(MachineCalibrate, NonIncreasingRttThrows) {
  // RTT shrinking with size fits a negative slope — rejected, not inverted.
  CalibrationPoint a{1024.0, 2e-3, 10};
  CalibrationPoint b{65536.0, 1e-3, 10};
  EXPECT_THROW(fit_link({a, b}), Error);
}

}  // namespace
}  // namespace peachy::machine
