// Task-DAG simulation over the machine model: FIFO cores, latency-then-
// bandwidth transfers, and SimGrid-style progressive fair share on shared
// edges. The machine below uses 1-gflops cores and zero latency everywhere
// except the NIC, so expected times are exact closed forms.
#include <gtest/gtest.h>

#include "core/error.hpp"
#include "machine/simulate.hpp"

namespace peachy::machine {
namespace {

constexpr double kNicLat = 1e-3;

Machine two_node_machine() {
  Machine m;
  NodeGroup g;
  g.name = "n";
  g.nodes = 2;
  g.sockets_per_node = 1;
  g.cores_per_socket = 2;
  g.core_gflops = 1.0;  // 1e9 flops/s: flops in units of 1e9 == seconds
  g.l3 = {100e9, 0.0};
  g.membus = {50e9, 0.0};
  g.nic = {1e9, kNicLat};
  m.groups = {g};
  m.fabric = {1e9, 0.0};
  return m;
}

TEST(MachineSim, SingleTaskRunsAtCoreSpeed) {
  Dag dag;
  dag.tasks = {{2e9, {0, 0, 0, 0}, {}}};
  const Report r = simulate(two_node_machine(), dag);
  EXPECT_DOUBLE_EQ(r.task_start_s[0], 0.0);
  EXPECT_DOUBLE_EQ(r.makespan_s, 2.0);
}

TEST(MachineSim, SameCoreTasksQueueFifo) {
  Dag dag;
  dag.tasks = {{1e9, {0, 0, 0, 0}, {}}, {1e9, {0, 0, 0, 0}, {}}};
  const Report r = simulate(two_node_machine(), dag);
  EXPECT_DOUBLE_EQ(r.task_finish_s[0], 1.0);
  EXPECT_DOUBLE_EQ(r.task_start_s[1], 1.0);
  EXPECT_DOUBLE_EQ(r.makespan_s, 2.0);
}

TEST(MachineSim, ChainPaysRouteLatencyThenBandwidth) {
  Dag dag;
  dag.tasks = {{1e9, {0, 0, 0, 0}, {}}, {1e9, {0, 1, 0, 0}, {}}};
  dag.transfers = {{0, 1, 1e9}};
  const Report r = simulate(two_node_machine(), dag);
  // src computes 1 s; transfer pays 2 NIC latencies + 1e9 B at 1 GB/s;
  // dst computes 1 s after the last byte lands.
  EXPECT_DOUBLE_EQ(r.transfer_start_s[0], 1.0);
  EXPECT_NEAR(r.transfer_finish_s[0], 1.0 + 2 * kNicLat + 1.0, 1e-12);
  EXPECT_NEAR(r.makespan_s, 3.0 + 2 * kNicLat, 1e-12);
}

TEST(MachineSim, SameCoreTransferIsFree) {
  Dag dag;
  dag.tasks = {{1e9, {0, 0, 0, 0}, {}}, {1e9, {0, 0, 0, 0}, {}}};
  dag.transfers = {{0, 1, 8e9}};  // bytes are irrelevant on a self-route
  const Report r = simulate(two_node_machine(), dag);
  EXPECT_DOUBLE_EQ(r.transfer_finish_s[0], 1.0);
  EXPECT_DOUBLE_EQ(r.makespan_s, 2.0);
}

TEST(MachineSim, ZeroByteTransferIsAPureLatencySignal) {
  Dag dag;
  dag.tasks = {{0.0, {0, 0, 0, 0}, {}}, {0.0, {0, 1, 0, 0}, {}}};
  dag.transfers = {{0, 1, 0.0}};
  const Report r = simulate(two_node_machine(), dag);
  EXPECT_NEAR(r.makespan_s, 2 * kNicLat, 1e-12);
}

TEST(MachineSim, ConcurrentFlowsShareTheBottleneckFairly) {
  // Two flows between the same node pair, started together: each gets half
  // of the 1 GB/s NIC, so 1e9 bytes each takes 2 s of streaming.
  Dag dag;
  dag.tasks = {{0.0, {0, 0, 0, 0}, {}},
               {0.0, {0, 0, 0, 1}, {}},
               {0.0, {0, 1, 0, 0}, {}},
               {0.0, {0, 1, 0, 1}, {}}};
  dag.transfers = {{0, 2, 1e9}, {1, 3, 1e9}};
  const Report r = simulate(two_node_machine(), dag);
  EXPECT_NEAR(r.transfer_finish_s[0], 2 * kNicLat + 2.0, 1e-9);
  EXPECT_NEAR(r.transfer_finish_s[1], 2 * kNicLat + 2.0, 1e-9);
}

TEST(MachineSim, LateFlowStealsHalfTheBandwidthProgressively) {
  // Flow X (2 GB) starts at t=0; flow Y (1 GB) starts when its 1-second
  // source task finishes. X streams alone at 1 GB/s until Y activates, then
  // both run at 0.5 GB/s — with progress advanced before the recompute,
  // both finish together at 1 + 2*lat + 2.0.
  Dag dag;
  dag.tasks = {{0.0, {0, 0, 0, 0}, {}},
               {1e9, {0, 0, 0, 1}, {}},
               {0.0, {0, 1, 0, 0}, {}},
               {0.0, {0, 1, 0, 1}, {}}};
  dag.transfers = {{0, 2, 2e9}, {1, 3, 1e9}};
  const Report r = simulate(two_node_machine(), dag);
  EXPECT_NEAR(r.transfer_finish_s[0], 1.0 + 2 * kNicLat + 2.0, 1e-9);
  EXPECT_NEAR(r.transfer_finish_s[1], 1.0 + 2 * kNicLat + 2.0, 1e-9);
}

TEST(MachineSim, EdgeUsageAccountsBytesAndBusyTime) {
  Dag dag;
  dag.tasks = {{0.0, {0, 0, 0, 0}, {}}, {0.0, {0, 1, 0, 0}, {}}};
  dag.transfers = {{0, 1, 1e9}};
  const Report r = simulate(two_node_machine(), dag);
  const EdgeUsage* nic = nullptr;
  for (const EdgeUsage& u : r.edges)
    if (u.edge.kind == EdgeKind::kNic && u.edge.node == 0) nic = &u;
  ASSERT_NE(nic, nullptr);
  EXPECT_DOUBLE_EQ(nic->bytes, 1e9);
  EXPECT_NEAR(nic->busy_s, 1.0, 1e-9);
}

TEST(MachineSim, DependenciesGateWithoutTransfers) {
  Dag dag;
  dag.tasks = {{1e9, {0, 0, 0, 0}, {}}, {1e9, {0, 1, 0, 0}, {0}}};
  const Report r = simulate(two_node_machine(), dag);
  EXPECT_DOUBLE_EQ(r.task_start_s[1], 1.0);
  EXPECT_DOUBLE_EQ(r.makespan_s, 2.0);
}

TEST(MachineSim, RejectsMalformedDags) {
  const Machine m = two_node_machine();
  Dag cyclic;
  cyclic.tasks = {{1e9, {0, 0, 0, 0}, {1}}, {1e9, {0, 0, 0, 1}, {0}}};
  EXPECT_THROW(simulate(m, cyclic), Error);

  Dag bad_core;
  bad_core.tasks = {{1e9, {0, 7, 0, 0}, {}}};
  EXPECT_THROW(simulate(m, bad_core), Error);

  Dag bad_transfer;
  bad_transfer.tasks = {{1e9, {0, 0, 0, 0}, {}}};
  bad_transfer.transfers = {{0, 3, 10.0}};
  EXPECT_THROW(simulate(m, bad_transfer), Error);

  Dag self_transfer;
  self_transfer.tasks = {{1e9, {0, 0, 0, 0}, {}}};
  self_transfer.transfers = {{0, 0, 10.0}};
  EXPECT_THROW(simulate(m, self_transfer), Error);
}

TEST(MachineSim, DeterministicAcrossRuns) {
  Dag dag;
  dag.tasks = {{0.5e9, {0, 0, 0, 0}, {}},
               {1e9, {0, 0, 0, 1}, {}},
               {0.25e9, {0, 1, 0, 0}, {}},
               {2e9, {0, 1, 0, 1}, {0, 1}}};
  dag.transfers = {{0, 3, 3e8}, {1, 2, 7e8}, {2, 3, 1e8}};
  const Machine m = two_node_machine();
  const Report a = simulate(m, dag);
  const Report b = simulate(m, dag);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.task_finish_s, b.task_finish_s);
  EXPECT_EQ(a.transfer_finish_s, b.transfer_finish_s);
}

}  // namespace
}  // namespace peachy::machine
