// Integration tests pinning the headline numbers of EXPERIMENTS.md — the
// end-to-end claims each bench binary reports, frozen as regressions.
// If a refactor changes any of these, EXPERIMENTS.md must be re-measured.
#include <gtest/gtest.h>

#include <filesystem>

#include "climate/dwd.hpp"
#include "climate/pipeline.hpp"
#include "climate/stripes.hpp"
#include "mapreduce/io.hpp"
#include "sandpile/distributed.hpp"
#include "sandpile/field.hpp"
#include "sandpile/variants.hpp"
#include "wfsim/montage.hpp"
#include "wfsim/schedule.hpp"

namespace peachy {
namespace {

// --- Fig. 1 fingerprints (exact: the fixed point is unique by Dhar).

TEST(PaperClaims, Fig1aFingerprint) {
  sandpile::Field f = sandpile::center_pile(128, 128, 25000);
  sandpile::stabilize_reference(f);
  EXPECT_EQ(f.interior_grains(), 25000);  // never reaches the border
  EXPECT_EQ(f.sink_grains(), 0);
  EXPECT_EQ(f.count_cells_with(0), 6216);
  EXPECT_EQ(f.count_cells_with(1), 1236);
  EXPECT_EQ(f.count_cells_with(2), 3032);
  EXPECT_EQ(f.count_cells_with(3), 5900);
}

TEST(PaperClaims, Fig1bFingerprint) {
  sandpile::Field f = sandpile::uniform_pile(128, 128, 4);
  sandpile::stabilize_reference(f);
  EXPECT_EQ(f.interior_grains(), 39664);
  EXPECT_EQ(f.sink_grains(), 128 * 128 * 4 - 39664);
  EXPECT_TRUE(f.is_stable());
}

TEST(PaperClaims, Fig1VariantsAgreeWithReference) {
  for (const auto make : {+[] { return sandpile::center_pile(128, 128, 25000); },
                          +[] { return sandpile::uniform_pile(128, 128, 4); }}) {
    sandpile::Field expected = make();
    sandpile::stabilize_reference(expected);
    sandpile::Field f = make();
    sandpile::VariantOptions opt;
    opt.tile_h = opt.tile_w = 16;
    sandpile::run_variant(sandpile::Variant::kOmpLazyAsyncWave, f, opt);
    EXPECT_TRUE(f.same_interior(expected));
  }
}

// --- §III end-to-end: files on disk -> mr::io -> streaming MapReduce ->
// stripes, against the in-memory reference.

TEST(PaperClaims, WarmingStripesFromDiskEndToEnd) {
  const auto dir =
      (std::filesystem::temp_directory_path() / "peachy_e2e_dwd").string();
  climate::DwdModelParams params;
  params.first_year = 1950;
  params.last_year = 2000;
  const climate::MonthlyDataset data = climate::synthesize_dwd(params);
  climate::write_month_major(data, dir);

  const auto lines = mr::read_lines_in_dir(dir, ".csv");
  const climate::AnnualSeries series = climate::annual_means_streaming(
      lines, params.first_year, params.last_year, {2, 2, 2});
  const climate::AnnualSeries reference =
      climate::annual_means_reference(data);
  for (std::size_t i = 0; i < series.mean_c.size(); ++i)
    EXPECT_NEAR(series.mean_c[i], reference.mean_c[i], 1e-9) << i;

  const Image img = climate::render_stripes(series);
  EXPECT_EQ(img.width(), static_cast<int>(series.mean_c.size()) * 4);
  std::filesystem::remove_all(dir);
}

TEST(PaperClaims, Fig6CalibrationHolds) {
  const climate::MonthlyDataset data = climate::synthesize_dwd({});
  const climate::AnnualSeries s = climate::annual_means_reference(data);
  const double mean = s.overall_mean();
  // Colorbar = mean ± 1.5 °C with mean near 8.4 °C.
  EXPECT_NEAR(mean, 8.4, 0.3);
  EXPECT_EQ(s.mean_c.size(), 139u);  // 1881..2019
}

// --- §IV headline claims.

TEST(PaperClaims, Tab1DeadlineStructure) {
  const wf::Workflow workflow = wf::make_montage();
  const wf::Platform plat = wf::eduwrench_platform();
  wf::RunConfig base;
  base.nodes_on = 64;
  base.pstate = plat.max_pstate();
  const wf::SimResult baseline = simulate(workflow, plat, base);
  // Baseline comfortably under 3 minutes but not trivial.
  EXPECT_GT(baseline.makespan_s, 60.0);
  EXPECT_LT(baseline.makespan_s, 180.0);

  const wf::ClusterChoice combined =
      wf::combined_power_heuristic(workflow, plat, 180.0);
  const wf::ClusterChoice fewer =
      wf::min_nodes_for_deadline(workflow, plat, plat.max_pstate(), 180.0);
  const wf::ClusterChoice slower =
      wf::min_pstate_for_deadline(workflow, plat, 64, 180.0);
  // The paper's Q3: combining knobs strictly beats either alone.
  EXPECT_LT(combined.result.total_gco2, fewer.result.total_gco2);
  EXPECT_LT(combined.result.total_gco2, slower.result.total_gco2);
  // And all three beat the baseline.
  EXPECT_LT(fewer.result.total_gco2, baseline.total_gco2);
  EXPECT_LT(slower.result.total_gco2, baseline.total_gco2);
}

TEST(PaperClaims, Tab2CloudStructure) {
  const wf::Workflow workflow = wf::make_montage();
  const wf::Platform plat = wf::eduwrench_platform();
  wf::RunConfig local;
  local.nodes_on = 12;
  local.pstate = 0;
  const wf::SimResult r_local = simulate(workflow, plat, local);
  wf::RunConfig cloud = local;
  cloud.placement = wf::Placement::all(workflow, wf::Site::kCloud);
  const wf::SimResult r_cloud = simulate(workflow, plat, cloud);
  // All-cloud emits far less than all-local...
  EXPECT_LT(r_cloud.total_gco2, r_local.total_gco2 * 0.7);
  // ...but a mixed placement (the treasure hunt's direction) beats both.
  wf::RunConfig mixed = local;
  mixed.placement = wf::Placement::level_fractions(
      workflow, {0.75, 0.75, 0, 0, 0.75});
  const wf::SimResult r_mixed = simulate(workflow, plat, mixed);
  EXPECT_LT(r_mixed.total_gco2, r_cloud.total_gco2);
}

TEST(PaperClaims, Montage738And75GB) {
  const wf::Workflow workflow = wf::make_montage();
  EXPECT_EQ(workflow.num_tasks(), 738);
  EXPECT_NEAR(workflow.total_bytes(), 7.5e9, 1.0);
}

// --- Ghost-cell trade-off (§II.B): messages per iteration ~ 1/k.

TEST(PaperClaims, GhostCellMessageScaling) {
  const sandpile::Field initial = sandpile::center_pile(96, 96, 20000);
  std::vector<double> msgs_per_iter;
  for (int k : {1, 2, 4}) {
    sandpile::DistributedOptions opt;
    opt.ranks = 4;
    opt.halo_depth = k;
    const auto r = sandpile::stabilize_distributed(initial, opt);
    msgs_per_iter.push_back(static_cast<double>(r.comm.messages_sent) /
                            r.iterations);
  }
  EXPECT_NEAR(msgs_per_iter[0] / msgs_per_iter[1], 2.0, 0.1);
  EXPECT_NEAR(msgs_per_iter[0] / msgs_per_iter[2], 4.0, 0.2);
}

}  // namespace
}  // namespace peachy
