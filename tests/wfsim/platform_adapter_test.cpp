// The EduWRENCH platform is now expressed through the hierarchical machine
// model (machine::Machine -> wf::Platform adapter). These tests pin the
// adapter to the legacy constants *bit-exactly*: the machine stores clock
// multipliers, and the adapter evaluates the same double expressions the
// hand-written platform used, so Table 1/2 outputs stay byte-identical.
#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "machine/machine.hpp"
#include "wfsim/platform.hpp"

namespace peachy::wf {
namespace {

TEST(PlatformAdapter, EduwrenchMachineDescribesThePaperPlatform) {
  const machine::Machine m = eduwrench_machine();
  m.validate();
  EXPECT_EQ(m.group("cluster").nodes, 64);
  EXPECT_EQ(m.group("cloud").nodes, 16);
  EXPECT_EQ(m.group("cluster").core_clock_states.size(), 7u);
  EXPECT_TRUE(m.group("cloud").has_uplink());
  EXPECT_FALSE(m.group("cluster").has_uplink());
}

TEST(PlatformAdapter, AdapterReproducesLegacyConstantsBitExactly) {
  const Platform p = platform_from_machine(eduwrench_machine());
  EXPECT_EQ(p.cluster.total_nodes, 64);
  EXPECT_EQ(p.cluster.idle_watts, 95.0);
  EXPECT_EQ(p.cluster.gco2_per_kwh, 291.0);
  ASSERT_EQ(p.cluster.pstates.size(), 7u);
  for (int i = 0; i < 7; ++i) {
    // The exact double expressions of the hand-written platform: any
    // re-association (e.g. storing derived speeds and dividing back) would
    // break byte-identical Table 1/2 output.
    const double clock = 1.0 + 0.2 * i;
    const auto& ps = p.cluster.pstates[static_cast<std::size_t>(i)];
    EXPECT_EQ(ps.gflops, 10.0 * clock) << "pstate " << i;
    EXPECT_EQ(ps.busy_watts, 95.0 + 30.0 * std::pow(clock, 2.5))
        << "pstate " << i;
  }
  EXPECT_EQ(p.cloud.vms, 16);
  EXPECT_EQ(p.cloud.vm_gflops, 14.0);
  EXPECT_EQ(p.cloud.vm_busy_watts, 150.0);
  EXPECT_EQ(p.cloud.gco2_per_kwh, 25.0);
  EXPECT_EQ(p.link.bytes_per_s, 125e6);
  EXPECT_EQ(p.link.latency_s, 0.010);
}

TEST(PlatformAdapter, EduwrenchPlatformIsTheAdaptedMachine) {
  const Platform legacy = eduwrench_platform();
  const Platform adapted = platform_from_machine(eduwrench_machine());
  ASSERT_EQ(legacy.cluster.pstates.size(), adapted.cluster.pstates.size());
  for (std::size_t i = 0; i < legacy.cluster.pstates.size(); ++i) {
    EXPECT_EQ(legacy.cluster.pstates[i].gflops,
              adapted.cluster.pstates[i].gflops);
    EXPECT_EQ(legacy.cluster.pstates[i].busy_watts,
              adapted.cluster.pstates[i].busy_watts);
  }
  EXPECT_EQ(legacy.link.bytes_per_s, adapted.link.bytes_per_s);
}

TEST(PlatformAdapter, MissingGroupsOrUplinkFailLoudly) {
  machine::Machine m = eduwrench_machine();
  m.groups[1].name = "edge";  // no "cloud" group any more
  EXPECT_THROW(platform_from_machine(m), Error);

  machine::Machine no_uplink = eduwrench_machine();
  no_uplink.groups[1].uplink = {};
  EXPECT_THROW(platform_from_machine(no_uplink), Error);
}

TEST(PlatformAdapter, EnergyModelKnobsFlowThrough) {
  EnergyModel e;
  e.cluster_idle_watts = 80.0;
  e.cluster_dynamic_watts = 40.0;
  e.vm_busy_watts = 100.0;
  const Platform p = platform_from_machine(eduwrench_machine(), e);
  EXPECT_EQ(p.cluster.idle_watts, 80.0);
  EXPECT_EQ(p.cluster.pstates[0].busy_watts, 80.0 + 40.0);  // clock 1.0
  EXPECT_EQ(p.cloud.vm_busy_watts, 100.0);
}

}  // namespace
}  // namespace peachy::wf
