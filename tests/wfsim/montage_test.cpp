#include "wfsim/montage.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace peachy::wf {
namespace {

TEST(Montage, PaperInstanceHas738TasksAnd75GB) {
  const Workflow wf = make_montage();
  EXPECT_EQ(wf.num_tasks(), 738);
  EXPECT_NEAR(wf.total_bytes(), 7.5e9, 1.0);
}

TEST(Montage, NineLevelStructure) {
  const Workflow wf = make_montage();
  ASSERT_EQ(wf.num_levels(), 9);
  EXPECT_EQ(wf.tasks_in_level(0).size(), 180u);  // mProject
  EXPECT_EQ(wf.tasks_in_level(1).size(), 360u);  // mDiffFit
  EXPECT_EQ(wf.tasks_in_level(2).size(), 1u);    // mConcatFit
  EXPECT_EQ(wf.tasks_in_level(3).size(), 1u);    // mBgModel
  EXPECT_EQ(wf.tasks_in_level(4).size(), 180u);  // mBackground
  EXPECT_EQ(wf.tasks_in_level(5).size(), 1u);    // mImgtbl
  EXPECT_EQ(wf.tasks_in_level(6).size(), 1u);    // mAdd
  EXPECT_EQ(wf.tasks_in_level(7).size(), 13u);   // mShrink
  EXPECT_EQ(wf.tasks_in_level(8).size(), 1u);    // mJPEG
  EXPECT_EQ(wf.width(), 360);
}

TEST(Montage, TaskNamesFollowLevels) {
  const Workflow wf = make_montage();
  EXPECT_EQ(wf.task(wf.tasks_in_level(0)[0]).name.substr(0, 8), "mProject");
  EXPECT_EQ(wf.task(wf.tasks_in_level(6)[0]).name, "mAdd");
  EXPECT_EQ(wf.task(wf.tasks_in_level(8)[0]).name, "mJPEG");
}

TEST(Montage, EntryTasksReadWorkflowInputs) {
  const Workflow wf = make_montage();
  for (int id : wf.tasks_in_level(0)) {
    const Task& t = wf.task(id);
    ASSERT_EQ(t.inputs.size(), 1u);
    EXPECT_EQ(wf.file(t.inputs[0]).producer, -1);
  }
}

TEST(Montage, CustomWidthScalesTaskCount) {
  MontageParams p;
  p.base_width = 10;
  p.shrink_tasks = 2;
  const Workflow wf = make_montage(p);
  EXPECT_EQ(wf.num_tasks(), 4 * 10 + 2 + 5);
  EXPECT_NEAR(wf.total_bytes(), 7.5e9, 1.0);  // still normalized
}

TEST(Montage, FlopsScaleMultipliesWork) {
  MontageParams p;
  p.flops_scale = 2.0;
  const Workflow doubled = make_montage(p);
  const Workflow base = make_montage();
  EXPECT_NEAR(doubled.total_flops(), 2.0 * base.total_flops(), 1.0);
}

TEST(Montage, ValidatesParams) {
  MontageParams p;
  p.base_width = 1;
  EXPECT_THROW(make_montage(p), Error);
  p = {};
  p.shrink_tasks = 0;
  EXPECT_THROW(make_montage(p), Error);
  p = {};
  p.total_bytes = 0;
  EXPECT_THROW(make_montage(p), Error);
}

TEST(Montage, MosaicFeedsEveryShrink) {
  const Workflow wf = make_montage();
  const int add_id = wf.tasks_in_level(6)[0];
  const Task& add = wf.task(add_id);
  ASSERT_EQ(add.outputs.size(), 1u);
  const File& mosaic = wf.file(add.outputs[0]);
  EXPECT_EQ(mosaic.consumers.size(), 13u);
}

}  // namespace
}  // namespace peachy::wf
