#include "wfsim/simulate.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "wfsim/montage.hpp"

namespace peachy::wf {
namespace {

// Two independent tasks, each 10 Gflop reading one 1 MB input.
Workflow two_tasks() {
  WorkflowBuilder b;
  const int f0 = b.add_file("f0", 1e6);
  const int f1 = b.add_file("f1", 1e6);
  b.add_task("a", 10e9, {f0}, {});
  b.add_task("b", 10e9, {f1}, {});
  return b.build();
}

// chain: a -> b through a 125 MB file (1 s on the default link).
Workflow chain() {
  WorkflowBuilder b;
  const int in = b.add_file("in", 1e3);
  const int mid = b.add_file("mid", 125e6);
  const int out = b.add_file("out", 1e3);
  b.add_task("a", 10e9, {in}, {mid});
  b.add_task("b", 10e9, {mid}, {out});
  return b.build();
}

Platform platform() { return eduwrench_platform(); }

TEST(Simulate, SingleNodeSerializesIndependentTasks) {
  const Workflow wf = two_tasks();
  RunConfig cfg;
  cfg.nodes_on = 1;
  cfg.pstate = 0;  // 10 Gflop/s -> 1 s per task
  const SimResult r = simulate(wf, platform(), cfg);
  EXPECT_NEAR(r.makespan_s, 2.0, 1e-9);
  EXPECT_NEAR(r.cluster_busy_node_s, 2.0, 1e-9);
  EXPECT_EQ(r.tasks_on_cluster, 2);
  EXPECT_EQ(r.transfers, 0);  // inputs already on cluster storage
}

TEST(Simulate, TwoNodesRunInParallel) {
  const Workflow wf = two_tasks();
  RunConfig cfg;
  cfg.nodes_on = 2;
  cfg.pstate = 0;
  const SimResult r = simulate(wf, platform(), cfg);
  EXPECT_NEAR(r.makespan_s, 1.0, 1e-9);
}

TEST(Simulate, PStateSpeedsUpCompute) {
  const Workflow wf = two_tasks();
  RunConfig cfg;
  cfg.nodes_on = 1;
  cfg.pstate = platform().max_pstate();  // 22 Gflop/s
  const SimResult r = simulate(wf, platform(), cfg);
  EXPECT_NEAR(r.makespan_s, 2.0 * 10.0 / 22.0, 1e-9);
}

TEST(Simulate, DependenciesRespected) {
  const Workflow wf = chain();
  RunConfig cfg;
  cfg.nodes_on = 2;
  cfg.pstate = 0;
  const SimResult r = simulate(wf, platform(), cfg);
  // Both on cluster, file local: 1 s + 1 s, extra node useless.
  EXPECT_NEAR(r.makespan_s, 2.0, 1e-9);
}

TEST(Simulate, CloudPlacementPaysTransfer) {
  const Workflow wf = chain();
  RunConfig cfg;
  cfg.nodes_on = 1;
  cfg.pstate = 0;
  cfg.placement = Placement::all(wf, Site::kCluster);
  cfg.placement.set(1, Site::kCloud);  // child on cloud
  const SimResult r = simulate(wf, platform(), cfg);
  // a: 1 s on cluster; transfer 125 MB over 125 MB/s + 10 ms latency;
  // b: 10e9 / 14e9 s on a VM.
  EXPECT_NEAR(r.makespan_s, 1.0 + 1.01 + 10.0 / 14.0, 1e-6);
  EXPECT_EQ(r.transfers, 1);
  EXPECT_NEAR(r.transferred_bytes, 125e6, 1);
  EXPECT_EQ(r.tasks_on_cloud, 1);
}

TEST(Simulate, DataLocalityOnCloudAvoidsTransfer) {
  const Workflow wf = chain();
  RunConfig cfg;
  cfg.nodes_on = 1;
  cfg.pstate = 0;
  cfg.placement = Placement::all(wf, Site::kCloud);
  const SimResult r = simulate(wf, platform(), cfg);
  // Only the tiny workflow input crosses the link; "mid" stays on the
  // cloud storage (the §IV.B data-locality point).
  EXPECT_EQ(r.transfers, 1);
  EXPECT_NEAR(r.transferred_bytes, 1e3, 1e-9);
}

TEST(Simulate, SharedFileTransferredOnce) {
  // Two cloud tasks consume the same cluster-resident input.
  WorkflowBuilder b;
  const int f = b.add_file("shared", 50e6);
  b.add_task("a", 1e9, {f}, {});
  b.add_task("c", 1e9, {f}, {});
  const Workflow wf = b.build();
  RunConfig cfg;
  cfg.nodes_on = 1;
  cfg.placement = Placement::all(wf, Site::kCloud);
  const SimResult r = simulate(wf, platform(), cfg);
  EXPECT_EQ(r.transfers, 1);  // deduplicated in-flight transfer
}

TEST(Simulate, LinkIsFifoSerialized) {
  // Two cloud tasks each pulling their own 125 MB file: the second waits.
  WorkflowBuilder b;
  const int f0 = b.add_file("f0", 125e6);
  const int f1 = b.add_file("f1", 125e6);
  b.add_task("a", 14e9, {f0}, {});
  b.add_task("c", 14e9, {f1}, {});
  const Workflow wf = b.build();
  RunConfig cfg;
  cfg.nodes_on = 1;
  cfg.placement = Placement::all(wf, Site::kCloud);
  const SimResult r = simulate(wf, platform(), cfg);
  // Transfers: 1.01 and then 1.01 more; second task starts at 2.02 and
  // runs 1 s.
  EXPECT_NEAR(r.makespan_s, 3.02, 1e-6);
  EXPECT_NEAR(r.link_busy_s, 2.02, 1e-6);
}

TEST(Simulate, FairShareSingleTransferMatchesFifo) {
  const Workflow wf = chain();
  Platform fair = platform();
  fair.link.sharing = LinkSharing::kFairShare;
  RunConfig cfg;
  cfg.nodes_on = 1;
  cfg.pstate = 0;
  cfg.placement = Placement::all(wf, Site::kCluster);
  cfg.placement.set(1, Site::kCloud);
  const SimResult fifo = simulate(wf, platform(), cfg);
  const SimResult shared = simulate(wf, fair, cfg);
  EXPECT_NEAR(fifo.makespan_s, shared.makespan_s, 1e-6);
  EXPECT_EQ(fifo.transfers, shared.transfers);
}

TEST(Simulate, FairShareSplitsBandwidthBetweenConcurrentTransfers) {
  // Two cloud tasks each pulling their own 125 MB file.
  WorkflowBuilder b;
  const int f0 = b.add_file("f0", 125e6);
  const int f1 = b.add_file("f1", 125e6);
  b.add_task("a", 14e9, {f0}, {});
  b.add_task("c", 14e9, {f1}, {});
  const Workflow wf = b.build();
  Platform fair = platform();
  fair.link.sharing = LinkSharing::kFairShare;
  RunConfig cfg;
  cfg.nodes_on = 1;
  cfg.placement = Placement::all(wf, Site::kCloud);
  const SimResult r = simulate(wf, fair, cfg);
  // Both transfers overlap at half rate: done at 0.01 + 2.0; both tasks
  // then run 1 s in parallel on two VMs.
  EXPECT_NEAR(r.makespan_s, 3.01, 1e-6);
  // Link busy wall-clock is the overlapped window, not the byte total.
  EXPECT_NEAR(r.link_busy_s, 2.0, 1e-6);
  // FIFO finishes the first task earlier but the last at the same time.
  const SimResult fifo = simulate(wf, platform(), cfg);
  EXPECT_NEAR(fifo.makespan_s, 3.02, 1e-6);
}

TEST(Simulate, FairShareRateAdaptsWhenTransferJoins) {
  // t0 starts a 125 MB pull alone; 0.51 s later (after its parent runs) a
  // second 125 MB pull joins. First transfer: 0.5 s at full rate (62.5 MB)
  // + shared tail.
  WorkflowBuilder b;
  const int big0 = b.add_file("big0", 125e6);
  const int tiny = b.add_file("tiny", 0.0);
  const int big1 = b.add_file("big1", 125e6);
  b.add_task("starter", 5e9, {tiny}, {big1});    // 0.5 s on the cluster @ p0
  b.add_task("a", 14e9, {big0}, {});             // cloud, pulls immediately
  b.add_task("c", 14e9, {big1}, {});             // cloud, pulls at 0.5 s
  const Workflow wf = b.build();
  Platform fair = platform();
  fair.link.sharing = LinkSharing::kFairShare;
  RunConfig cfg;
  cfg.nodes_on = 1;
  cfg.pstate = 0;
  cfg.placement = Placement::all(wf, Site::kCloud);
  cfg.placement.set(0, Site::kCluster);
  const SimResult r = simulate(wf, fair, cfg);
  // Transfer A: starts 0.01, alone until 0.51 (62.5 MB done), then shares
  // with B: 62.5 MB left at 62.5 MB/s -> 1.0 s -> done at 1.51.
  // Transfer B: starts 0.51, 62.5 MB done by 1.51, then alone: 62.5 MB at
  // full rate -> done at 2.01. Task c ends 3.01 (the makespan).
  EXPECT_NEAR(r.makespan_s, 3.01, 1e-4);
}

TEST(Simulate, FairShareMontageReproducesShape) {
  // The Tab #2 qualitative conclusions must not depend on the link model.
  const Workflow wf = make_montage();
  Platform fair = platform();
  fair.link.sharing = LinkSharing::kFairShare;
  RunConfig local;
  local.nodes_on = 12;
  local.pstate = 0;
  RunConfig cloud = local;
  cloud.placement = Placement::all(wf, Site::kCloud);
  const SimResult r_local = simulate(wf, fair, local);
  const SimResult r_cloud = simulate(wf, fair, cloud);
  EXPECT_LT(r_cloud.total_gco2, r_local.total_gco2);
  EXPECT_LT(r_cloud.makespan_s, r_local.makespan_s);
}

TEST(Simulate, VmCountLimitsCloudParallelism) {
  WorkflowBuilder b;
  for (int i = 0; i < 32; ++i)
    b.add_task("t" + std::to_string(i), 14e9, {}, {});
  const Workflow wf = b.build();
  RunConfig cfg;
  cfg.nodes_on = 0;
  cfg.placement = Placement::all(wf, Site::kCloud);
  const SimResult r = simulate(wf, platform(), cfg);
  // 32 one-second tasks over 16 VMs -> 2 s.
  EXPECT_NEAR(r.makespan_s, 2.0, 1e-9);
  EXPECT_EQ(r.tasks_on_cloud, 32);
}

TEST(Simulate, EnergyAccountingIdentity) {
  const Workflow wf = two_tasks();
  RunConfig cfg;
  cfg.nodes_on = 2;
  cfg.pstate = 0;
  const Platform p = platform();
  const SimResult r = simulate(wf, p, cfg);
  const double busy_w = p.cluster.pstates[0].busy_watts;
  const double expected = r.cluster_busy_node_s * busy_w +
                          (2 * r.makespan_s - r.cluster_busy_node_s) *
                              p.cluster.idle_watts;
  EXPECT_NEAR(r.cluster_energy_j, expected, 1e-6);
  EXPECT_NEAR(r.cluster_gco2,
              r.cluster_energy_j / 3.6e6 * p.cluster.gco2_per_kwh, 1e-9);
  EXPECT_DOUBLE_EQ(r.cloud_energy_j, 0.0);
  EXPECT_NEAR(r.total_gco2, r.cluster_gco2 + r.cloud_gco2, 1e-12);
}

TEST(Simulate, IdleNodesBurnCarbon) {
  const Workflow wf = two_tasks();
  RunConfig few;
  few.nodes_on = 2;
  few.pstate = 0;
  RunConfig many = few;
  many.nodes_on = 64;
  const SimResult r_few = simulate(wf, platform(), few);
  const SimResult r_many = simulate(wf, platform(), many);
  EXPECT_NEAR(r_few.makespan_s, r_many.makespan_s, 1e-9);
  EXPECT_GT(r_many.total_gco2, r_few.total_gco2 * 5);
}

TEST(Simulate, HomogeneousVectorMatchesScalarConfig) {
  const Workflow wf = make_montage();
  RunConfig scalar;
  scalar.nodes_on = 24;
  scalar.pstate = 3;
  RunConfig vec = scalar;
  vec.node_pstates.assign(24, 3);
  const SimResult a = simulate(wf, platform(), scalar);
  const SimResult b = simulate(wf, platform(), vec);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_NEAR(a.cluster_energy_j, b.cluster_energy_j, 1e-6);
  EXPECT_NEAR(a.total_gco2, b.total_gco2, 1e-9);
}

TEST(Simulate, HeterogeneousSingleTaskUsesFastestNode) {
  WorkflowBuilder b;
  b.add_task("t", 22e9, {}, {});
  const Workflow wf = b.build();
  RunConfig cfg;
  cfg.nodes_on = 3;
  cfg.node_pstates = {0, 6, 2};  // speeds 10, 22, 14 Gflop/s
  const SimResult r = simulate(wf, platform(), cfg);
  EXPECT_NEAR(r.makespan_s, 1.0, 1e-9);  // 22e9 / 22 Gflop/s on node 1
}

TEST(Simulate, HeterogeneousMakespanBetweenExtremes) {
  const Workflow wf = make_montage();
  const Platform p = platform();
  auto run_uniform = [&](int ps) {
    RunConfig cfg;
    cfg.nodes_on = 16;
    cfg.pstate = ps;
    return simulate(wf, p, cfg).makespan_s;
  };
  RunConfig mixed;
  mixed.nodes_on = 16;
  mixed.node_pstates.assign(16, 0);
  for (int i = 0; i < 8; ++i) mixed.node_pstates[static_cast<std::size_t>(i)] = 6;
  const double t_mixed = simulate(wf, p, mixed).makespan_s;
  EXPECT_LT(t_mixed, run_uniform(0));
  EXPECT_GT(t_mixed, run_uniform(6));
}

TEST(Simulate, HeterogeneousValidation) {
  const Workflow wf = two_tasks();
  RunConfig cfg;
  cfg.nodes_on = 2;
  cfg.node_pstates = {0};  // wrong length
  EXPECT_THROW(simulate(wf, platform(), cfg), Error);
  cfg.node_pstates = {0, 99};  // bad p-state
  EXPECT_THROW(simulate(wf, platform(), cfg), Error);
}

TEST(Simulate, ValidatesConfig) {
  const Workflow wf = two_tasks();
  RunConfig cfg;
  cfg.pstate = 99;
  EXPECT_THROW(simulate(wf, platform(), cfg), Error);
  cfg = RunConfig{};
  cfg.nodes_on = 1000;
  EXPECT_THROW(simulate(wf, platform(), cfg), Error);
  cfg = RunConfig{};
  cfg.nodes_on = 0;  // cluster tasks but no nodes
  EXPECT_THROW(simulate(wf, platform(), cfg), Error);
}

TEST(Simulate, MontageMakespanMonotoneInNodes) {
  const Workflow wf = make_montage();
  const Platform p = platform();
  double prev = 1e18;
  for (int nodes : {4, 8, 16, 32, 64}) {
    RunConfig cfg;
    cfg.nodes_on = nodes;
    cfg.pstate = p.max_pstate();
    const double t = simulate(wf, p, cfg).makespan_s;
    EXPECT_LE(t, prev + 1e-9) << nodes << " nodes";
    prev = t;
  }
}

TEST(Simulate, MontageMakespanMonotoneInPstate) {
  const Workflow wf = make_montage();
  const Platform p = platform();
  double prev = 1e18;
  for (int ps = 0; ps < p.num_pstates(); ++ps) {
    RunConfig cfg;
    cfg.nodes_on = 64;
    cfg.pstate = ps;
    const double t = simulate(wf, p, cfg).makespan_s;
    EXPECT_LT(t, prev) << "pstate " << ps;
    prev = t;
  }
}

TEST(Simulate, DeterministicAcrossRuns) {
  const Workflow wf = make_montage();
  RunConfig cfg;
  cfg.nodes_on = 48;
  cfg.pstate = 3;
  cfg.placement = Placement::level_fractions(wf, {0.5, 0.25, 0, 1});
  const SimResult a = simulate(wf, platform(), cfg);
  const SimResult b = simulate(wf, platform(), cfg);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_DOUBLE_EQ(a.total_gco2, b.total_gco2);
  EXPECT_EQ(a.transfers, b.transfers);
}

TEST(Placement, LevelFractions) {
  const Workflow wf = make_montage();
  const Placement p = Placement::level_fractions(wf, {1.0, 0.5});
  int cloud_l0 = 0, cloud_l1 = 0, cloud_rest = 0;
  for (const Task& t : wf.tasks()) {
    if (p.site_of(t.id) != Site::kCloud) continue;
    if (t.level == 0) ++cloud_l0;
    else if (t.level == 1) ++cloud_l1;
    else ++cloud_rest;
  }
  EXPECT_EQ(cloud_l0, 180);
  EXPECT_EQ(cloud_l1, 180);
  EXPECT_EQ(cloud_rest, 0);
  EXPECT_EQ(p.cloud_task_count(), 360);
}

TEST(Placement, RejectsBadFractions) {
  const Workflow wf = two_tasks();
  EXPECT_THROW(Placement::level_fractions(wf, {1.5}), Error);
  EXPECT_THROW(Placement::level_fractions(wf, {-0.1}), Error);
}

TEST(SpeedupReport, MontageSpeedupShape) {
  // Q1 of Tab #1: speedup is substantial but efficiency < 1 because of the
  // serial bottleneck tasks (mConcatFit, mBgModel, mAdd).
  const Workflow wf = make_montage();
  RunConfig cfg;
  cfg.nodes_on = 64;
  cfg.pstate = platform().max_pstate();
  const SpeedupReport rep = speedup_vs_one_node(wf, platform(), cfg);
  EXPECT_GT(rep.speedup, 5.0);
  EXPECT_LT(rep.speedup, 64.0);
  EXPECT_GT(rep.efficiency, 0.05);
  EXPECT_LT(rep.efficiency, 1.0);
  EXPECT_NEAR(rep.speedup, rep.t1_s / rep.tn_s, 1e-12);
}

}  // namespace
}  // namespace peachy::wf
