#include "wfsim/workflow.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace peachy::wf {
namespace {

// Diamond: t0 -> (t1, t2) -> t3.
Workflow diamond() {
  WorkflowBuilder b;
  const int in = b.add_file("in", 100);
  const int a = b.add_file("a", 10);
  const int c = b.add_file("c", 10);
  const int d = b.add_file("d", 10);
  const int out = b.add_file("out", 5);
  b.add_task("t0", 1e9, {in}, {a, c});
  b.add_task("t1", 2e9, {a}, {d});
  b.add_task("t2", 3e9, {c}, {});
  b.add_task("t3", 4e9, {d}, {out});
  return b.build();
}

TEST(Workflow, DerivesParentsAndChildren) {
  const Workflow wf = diamond();
  EXPECT_TRUE(wf.task(0).parents.empty());
  EXPECT_EQ(wf.task(0).children, (std::vector<int>{1, 2}));
  EXPECT_EQ(wf.task(1).parents, (std::vector<int>{0}));
  EXPECT_EQ(wf.task(3).parents, (std::vector<int>{1}));
  EXPECT_TRUE(wf.task(3).children.empty());
}

TEST(Workflow, DerivesLevels) {
  const Workflow wf = diamond();
  EXPECT_EQ(wf.num_levels(), 3);
  EXPECT_EQ(wf.task(0).level, 0);
  EXPECT_EQ(wf.task(1).level, 1);
  EXPECT_EQ(wf.task(2).level, 1);
  EXPECT_EQ(wf.task(3).level, 2);
  EXPECT_EQ(wf.tasks_in_level(1), (std::vector<int>{1, 2}));
  EXPECT_EQ(wf.width(), 2);
}

TEST(Workflow, Totals) {
  const Workflow wf = diamond();
  EXPECT_DOUBLE_EQ(wf.total_flops(), 10e9);
  EXPECT_DOUBLE_EQ(wf.total_bytes(), 135);
}

TEST(Workflow, FileProducersAndConsumers) {
  const Workflow wf = diamond();
  EXPECT_EQ(wf.file(0).producer, -1);  // workflow input
  EXPECT_EQ(wf.file(1).producer, 0);
  EXPECT_EQ(wf.file(1).consumers, (std::vector<int>{1}));
}

TEST(WorkflowBuilder, RejectsTwoProducers) {
  WorkflowBuilder b;
  const int f = b.add_file("f", 1);
  b.add_task("t0", 1, {}, {f});
  EXPECT_THROW(b.add_task("t1", 1, {}, {f}), Error);
}

TEST(WorkflowBuilder, RejectsUnknownFiles) {
  WorkflowBuilder b;
  EXPECT_THROW(b.add_task("t", 1, {42}, {}), Error);
  EXPECT_THROW(b.add_task("t", 1, {}, {42}), Error);
}

TEST(WorkflowBuilder, RejectsNegativeSizes) {
  WorkflowBuilder b;
  EXPECT_THROW(b.add_file("f", -1), Error);
  EXPECT_THROW(b.add_task("t", -1, {}, {}), Error);
}

TEST(WorkflowBuilder, RejectsEmptyWorkflow) {
  WorkflowBuilder b;
  EXPECT_THROW(b.build(), Error);
}

TEST(WorkflowBuilder, DetectsCycles) {
  // t0 consumes t1's output and vice versa.
  WorkflowBuilder b;
  const int f0 = b.add_file("f0", 1);
  const int f1 = b.add_file("f1", 1);
  b.add_task("t0", 1, {f1}, {f0});
  b.add_task("t1", 1, {f0}, {f1});
  EXPECT_THROW(b.build(), Error);
}

TEST(Workflow, LevelIsLongestPath) {
  // t0 -> t1 -> t3, and t0 -> t3 directly: t3 is level 2, not 1.
  WorkflowBuilder b;
  const int a = b.add_file("a", 1);
  const int c = b.add_file("c", 1);
  const int d = b.add_file("d", 1);
  b.add_task("t0", 1, {}, {a, c});
  b.add_task("t1", 1, {a}, {d});
  b.add_task("t3", 1, {c, d}, {});
  const Workflow wf = b.build();
  EXPECT_EQ(wf.task(2).level, 2);
}

TEST(Workflow, IndependentTasksAllLevelZero) {
  WorkflowBuilder b;
  b.add_task("a", 1, {}, {});
  b.add_task("b", 1, {}, {});
  const Workflow wf = b.build();
  EXPECT_EQ(wf.num_levels(), 1);
  EXPECT_EQ(wf.tasks_in_level(0).size(), 2u);
  EXPECT_THROW(wf.tasks_in_level(1), Error);
}

}  // namespace
}  // namespace peachy::wf
