#include "wfsim/schedule.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/error.hpp"
#include "wfsim/montage.hpp"

namespace peachy::wf {
namespace {

struct Fixture : ::testing::Test {
  Workflow wf = make_montage();
  Platform plat = eduwrench_platform();
  // The assignment's bound: "execute the workflow in under 3 minutes".
  static constexpr double kDeadline = 180.0;
};

TEST_F(Fixture, BaselineIsComfortablyUnderDeadline) {
  RunConfig cfg;
  cfg.nodes_on = 64;
  cfg.pstate = plat.max_pstate();
  const SimResult r = simulate(wf, plat, cfg);
  EXPECT_LT(r.makespan_s, kDeadline);
  EXPECT_GT(r.makespan_s, 30.0);  // not trivially fast either
}

TEST_F(Fixture, MinNodesSearchFindsBoundary) {
  const ClusterChoice c =
      min_nodes_for_deadline(wf, plat, plat.max_pstate(), kDeadline);
  ASSERT_TRUE(c.feasible);
  EXPECT_LT(c.nodes_on, 64);
  EXPECT_GT(c.nodes_on, 1);
  EXPECT_LE(c.result.makespan_s, kDeadline);
  // One fewer node must miss the deadline (minimality).
  RunConfig cfg;
  cfg.nodes_on = c.nodes_on - 1;
  cfg.pstate = plat.max_pstate();
  EXPECT_GT(simulate(wf, plat, cfg).makespan_s, kDeadline);
}

TEST_F(Fixture, MinPstateSearchFindsBoundary) {
  const ClusterChoice c = min_pstate_for_deadline(wf, plat, 64, kDeadline);
  ASSERT_TRUE(c.feasible);
  EXPECT_GT(c.pstate, 0);
  EXPECT_LT(c.pstate, plat.max_pstate());
  EXPECT_LE(c.result.makespan_s, kDeadline);
  RunConfig cfg;
  cfg.nodes_on = 64;
  cfg.pstate = c.pstate - 1;
  EXPECT_GT(simulate(wf, plat, cfg).makespan_s, kDeadline);
}

TEST_F(Fixture, BothSingleKnobOptionsCutCo2VersusBaseline) {
  RunConfig base;
  base.nodes_on = 64;
  base.pstate = plat.max_pstate();
  const double baseline = simulate(wf, plat, base).total_gco2;
  const ClusterChoice fewer =
      min_nodes_for_deadline(wf, plat, plat.max_pstate(), kDeadline);
  const ClusterChoice slower = min_pstate_for_deadline(wf, plat, 64, kDeadline);
  EXPECT_LT(fewer.result.total_gco2, baseline);
  EXPECT_LT(slower.result.total_gco2, baseline);
}

TEST_F(Fixture, CombinedHeuristicBeatsBothSingleKnobOptions) {
  // Q3 of Tab #1: "it leads to lower CO2 emission than both previously
  // evaluated options".
  const ClusterChoice fewer =
      min_nodes_for_deadline(wf, plat, plat.max_pstate(), kDeadline);
  const ClusterChoice slower = min_pstate_for_deadline(wf, plat, 64, kDeadline);
  const ClusterChoice combined = combined_power_heuristic(wf, plat, kDeadline);
  ASSERT_TRUE(combined.feasible);
  EXPECT_LE(combined.result.total_gco2, fewer.result.total_gco2);
  EXPECT_LE(combined.result.total_gco2, slower.result.total_gco2);
  EXPECT_LT(combined.result.total_gco2,
            std::min(fewer.result.total_gco2, slower.result.total_gco2));
  EXPECT_LE(combined.result.makespan_s, kDeadline);
}

TEST_F(Fixture, InfeasibleDeadlineReported) {
  const ClusterChoice c = min_nodes_for_deadline(wf, plat, 0, 1.0);
  EXPECT_FALSE(c.feasible);
  const ClusterChoice h = combined_power_heuristic(wf, plat, 1.0);
  EXPECT_FALSE(h.feasible);
}

TEST_F(Fixture, SearchValidation) {
  EXPECT_THROW(min_nodes_for_deadline(wf, plat, 0, -1.0), Error);
  EXPECT_THROW(min_pstate_for_deadline(wf, plat, 64, 0.0), Error);
}

TEST(CloudSearch, ExhaustiveFindsGridOptimum) {
  // Small workflow so {0,1}^levels is enumerable and verifiable.
  MontageParams p;
  p.base_width = 8;
  p.shrink_tasks = 2;
  const Workflow wf = make_montage(p);
  const Platform plat = eduwrench_platform();

  const CloudSearchResult best =
      exhaustive_cloud_search(wf, plat, 12, 0, {0.0, 1.0});
  EXPECT_EQ(best.evaluated, 512u);  // 2^9 combinations
  ASSERT_EQ(best.fractions.size(), 9u);

  // The optimum must beat (or match) both trivial placements.
  RunConfig all_local;
  all_local.nodes_on = 12;
  all_local.pstate = 0;
  const double local_co2 = simulate(wf, plat, all_local).total_gco2;
  RunConfig all_cloud = all_local;
  all_cloud.placement = Placement::all(wf, Site::kCloud);
  const double cloud_co2 = simulate(wf, plat, all_cloud).total_gco2;
  EXPECT_LE(best.result.total_gco2, local_co2);
  EXPECT_LE(best.result.total_gco2, cloud_co2);
}

TEST(CloudSearch, RefinementNeverWorsens) {
  MontageParams p;
  p.base_width = 8;
  p.shrink_tasks = 2;
  const Workflow wf = make_montage(p);
  const Platform plat = eduwrench_platform();

  const std::vector<double> start(9, 0.5);
  RunConfig cfg;
  cfg.nodes_on = 12;
  cfg.pstate = 0;
  cfg.placement = Placement::level_fractions(wf, start);
  const double start_co2 = simulate(wf, plat, cfg).total_gco2;

  const CloudSearchResult refined =
      refine_cloud_fractions(wf, plat, 12, 0, start, 0.25);
  EXPECT_LE(refined.result.total_gco2, start_co2);
  EXPECT_GE(refined.evaluated, 1u);
}

TEST(PerTaskSearch, LocalSearchNeverWorsens) {
  MontageParams p;
  p.base_width = 8;
  p.shrink_tasks = 2;
  const Workflow wf = make_montage(p);
  const Platform plat = eduwrench_platform();

  RunConfig start_cfg;
  start_cfg.nodes_on = 12;
  start_cfg.pstate = 0;
  const double start_co2 = simulate(wf, plat, start_cfg).total_gco2;

  const PlacementSearchResult r = per_task_local_search(
      wf, plat, 12, 0, Placement::all(wf, Site::kCluster), 4);
  EXPECT_LE(r.result.total_gco2, start_co2);
  EXPECT_GE(r.evaluated, static_cast<std::size_t>(wf.num_tasks()));
}

TEST(PerTaskSearch, BeatsOrMatchesLevelFractions) {
  // Per-level fractions are a strict subset of per-task placements, so
  // local search seeded at the fraction optimum can only improve.
  MontageParams p;
  p.base_width = 8;
  p.shrink_tasks = 2;
  const Workflow wf = make_montage(p);
  const Platform plat = eduwrench_platform();

  const CloudSearchResult frac =
      exhaustive_cloud_search(wf, plat, 12, 0, {0.0, 0.5, 1.0});
  const PlacementSearchResult local = per_task_local_search(
      wf, plat, 12, 0, Placement::level_fractions(wf, frac.fractions), 4);
  EXPECT_LE(local.result.total_gco2, frac.result.total_gco2 + 1e-9);
}

TEST(PerTaskSearch, AnnealingDeterministicInSeed) {
  MontageParams p;
  p.base_width = 6;
  p.shrink_tasks = 2;
  const Workflow wf = make_montage(p);
  const Platform plat = eduwrench_platform();
  AnnealParams ap;
  ap.iterations = 300;
  ap.seed = 42;
  const PlacementSearchResult a =
      anneal_placement(wf, plat, 12, 0, Placement{}, ap);
  const PlacementSearchResult b =
      anneal_placement(wf, plat, 12, 0, Placement{}, ap);
  EXPECT_DOUBLE_EQ(a.result.total_gco2, b.result.total_gco2);
  for (int t = 0; t < wf.num_tasks(); ++t)
    EXPECT_EQ(a.placement.site_of(t) == Site::kCloud,
              b.placement.site_of(t) == Site::kCloud);
}

TEST(PerTaskSearch, AnnealingImprovesOnAllLocal) {
  MontageParams p;
  p.base_width = 8;
  p.shrink_tasks = 2;
  const Workflow wf = make_montage(p);
  const Platform plat = eduwrench_platform();
  RunConfig cfg;
  cfg.nodes_on = 12;
  cfg.pstate = 0;
  const double all_local = simulate(wf, plat, cfg).total_gco2;
  AnnealParams ap;
  ap.iterations = 800;
  ap.seed = 3;
  const PlacementSearchResult r =
      anneal_placement(wf, plat, 12, 0, Placement{}, ap);
  EXPECT_LT(r.result.total_gco2, all_local);
}

TEST(PerTaskSearch, Validation) {
  MontageParams p;
  p.base_width = 6;
  p.shrink_tasks = 2;
  const Workflow wf = make_montage(p);
  const Platform plat = eduwrench_platform();
  EXPECT_THROW(per_task_local_search(wf, plat, 12, 0, Placement{}, 0), Error);
  AnnealParams bad;
  bad.iterations = 0;
  EXPECT_THROW(anneal_placement(wf, plat, 12, 0, Placement{}, bad), Error);
  bad = AnnealParams{};
  bad.cooling = 1.5;
  EXPECT_THROW(anneal_placement(wf, plat, 12, 0, Placement{}, bad), Error);
}

TEST(CloudSearch, Validation) {
  const Workflow wf = make_montage();
  const Platform plat = eduwrench_platform();
  EXPECT_THROW(exhaustive_cloud_search(wf, plat, 12, 0, {}), Error);
  EXPECT_THROW(exhaustive_cloud_search(wf, plat, 12, 0, {2.0}), Error);
  EXPECT_THROW(refine_cloud_fractions(wf, plat, 12, 0, {0.5}, 0.0), Error);
}

}  // namespace
}  // namespace peachy::wf
