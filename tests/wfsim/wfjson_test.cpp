#include "wfsim/wfjson.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "core/error.hpp"
#include "wfsim/montage.hpp"
#include "wfsim/simulate.hpp"

namespace peachy::wf {
namespace {

TEST(WfJson, MontageRoundTripsExactly) {
  const Workflow original = make_montage();
  const Workflow back = from_json(to_json(original, "montage"));
  ASSERT_EQ(back.num_tasks(), original.num_tasks());
  ASSERT_EQ(back.num_files(), original.num_files());
  EXPECT_EQ(back.num_levels(), original.num_levels());
  EXPECT_DOUBLE_EQ(back.total_flops(), original.total_flops());
  EXPECT_DOUBLE_EQ(back.total_bytes(), original.total_bytes());
  for (int t = 0; t < original.num_tasks(); ++t) {
    EXPECT_EQ(back.task(t).name, original.task(t).name);
    EXPECT_EQ(back.task(t).parents, original.task(t).parents);
    EXPECT_EQ(back.task(t).level, original.task(t).level);
  }
}

TEST(WfJson, RoundTripSimulatesIdentically) {
  MontageParams p;
  p.base_width = 12;
  p.shrink_tasks = 3;
  const Workflow original = make_montage(p);
  const Workflow back = from_json(to_json(original));
  const Platform plat = eduwrench_platform();
  RunConfig cfg;
  cfg.nodes_on = 8;
  cfg.pstate = 3;
  const SimResult a = simulate(original, plat, cfg);
  const SimResult b = simulate(back, plat, cfg);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_DOUBLE_EQ(a.total_gco2, b.total_gco2);
}

TEST(WfJson, FileRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "peachy_wfjson";
  std::filesystem::create_directories(dir);
  MontageParams p;
  p.base_width = 6;
  p.shrink_tasks = 2;
  const Workflow original = make_montage(p);
  const std::string path = (dir / "wf.json").string();
  save_workflow(original, path, "mini-montage");
  const Workflow back = load_workflow(path);
  EXPECT_EQ(back.num_tasks(), original.num_tasks());
  EXPECT_DOUBLE_EQ(back.total_bytes(), original.total_bytes());
  std::filesystem::remove_all(dir);
}

TEST(WfJson, ParsesHandWrittenDocument) {
  const Workflow wf = from_json(json::parse(R"({
    "name": "tiny",
    "files": [
      {"name": "in",  "sizeInBytes": 100},
      {"name": "mid", "sizeInBytes": 50},
      {"name": "out", "sizeInBytes": 10}
    ],
    "tasks": [
      {"name": "a", "runtimeInFlops": 1e9,
       "inputFiles": ["in"], "outputFiles": ["mid"]},
      {"name": "b", "runtimeInFlops": 2e9,
       "inputFiles": ["mid"], "outputFiles": ["out"]}
    ]
  })"));
  EXPECT_EQ(wf.num_tasks(), 2);
  EXPECT_EQ(wf.num_levels(), 2);
  EXPECT_EQ(wf.task(1).parents, (std::vector<int>{0}));
}

TEST(WfJson, RejectsBadDocuments) {
  // Unknown file reference.
  EXPECT_THROW(from_json(json::parse(R"({
    "files": [], "tasks": [
      {"name": "a", "runtimeInFlops": 1,
       "inputFiles": ["ghost"], "outputFiles": []}]})")),
               Error);
  // Duplicate file names.
  EXPECT_THROW(from_json(json::parse(R"({
    "files": [{"name": "f", "sizeInBytes": 1},
              {"name": "f", "sizeInBytes": 2}],
    "tasks": []})")),
               Error);
  // Missing required keys.
  EXPECT_THROW(from_json(json::parse(R"({"files": []})")), Error);
}

TEST(WfJson, LoadMissingFileThrows) {
  EXPECT_THROW(load_workflow("/nonexistent/wf.json"), Error);
}

}  // namespace
}  // namespace peachy::wf
