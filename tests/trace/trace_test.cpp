#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "core/colormap.hpp"
#include "core/csv.hpp"
#include "core/error.hpp"

namespace peachy {
namespace {

TaskRecord rec(int iter, int worker, int y0, int x0, int h, int w,
               std::int64_t start, std::int64_t end) {
  return TaskRecord{iter, worker, y0, x0, h, w, start, end};
}

TEST(TraceRecorder, RequiresWorkerLane) {
  EXPECT_THROW(TraceRecorder(0), Error);
  TraceRecorder t(2);
  EXPECT_THROW(t.record(rec(0, 2, 0, 0, 1, 1, 0, 1)), Error);
  EXPECT_THROW(t.record(rec(0, -1, 0, 0, 1, 1, 0, 1)), Error);
}

TEST(TraceRecorder, RejectsOutOfRangeWorkerWithoutCorruptingLanes) {
  // Regression: an out-of-range worker id must be rejected up front, not
  // index lanes_[] out of bounds, and must leave prior records intact.
  TraceRecorder t(3);
  t.record(rec(0, 0, 0, 0, 1, 1, 0, 1));
  t.record(rec(0, 2, 0, 0, 1, 1, 1, 2));  // last valid lane is fine
  EXPECT_THROW(t.record(rec(0, 3, 0, 0, 1, 1, 2, 3)), Error);
  EXPECT_THROW(t.record(rec(0, 1000000, 0, 0, 1, 1, 2, 3)), Error);
  EXPECT_THROW(t.record(rec(0, -1000000, 0, 0, 1, 1, 2, 3)), Error);
  EXPECT_EQ(t.total_tasks(), 2u);
  EXPECT_EQ(t.merged().size(), 2u);
}

TEST(TraceRecorder, MergedSortsByIterationThenStart) {
  TraceRecorder t(2);
  t.record(rec(1, 0, 0, 0, 8, 8, 50, 60));
  t.record(rec(0, 1, 0, 0, 8, 8, 40, 45));
  t.record(rec(0, 0, 8, 0, 8, 8, 10, 20));
  const auto all = t.merged();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].iteration, 0);
  EXPECT_EQ(all[0].start_ns, 10);
  EXPECT_EQ(all[1].start_ns, 40);
  EXPECT_EQ(all[2].iteration, 1);
}

TEST(TraceRecorder, IterationFilter) {
  TraceRecorder t(1);
  t.record(rec(0, 0, 0, 0, 1, 1, 0, 1));
  t.record(rec(2, 0, 0, 0, 1, 1, 2, 3));
  t.record(rec(2, 0, 1, 0, 1, 1, 1, 2));
  const auto it2 = t.iteration(2);
  ASSERT_EQ(it2.size(), 2u);
  EXPECT_EQ(it2[0].start_ns, 1);  // sorted by start
  EXPECT_TRUE(t.iteration(5).empty());
}

TEST(TraceRecorder, ConcurrentLanesDoNotInterfere) {
  TraceRecorder t(4);
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w)
    threads.emplace_back([&t, w] {
      for (int i = 0; i < 1000; ++i)
        t.record(rec(0, w, i, w, 1, 1, i, i + 1));
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.total_tasks(), 4000u);
}

TEST(TraceRecorder, ClearResets) {
  TraceRecorder t(1);
  t.record(rec(0, 0, 0, 0, 1, 1, 0, 1));
  t.clear();
  EXPECT_EQ(t.total_tasks(), 0u);
}

TEST(TraceRecorder, CsvExport) {
  const auto dir = std::filesystem::temp_directory_path() / "peachy_trace";
  std::filesystem::create_directories(dir);
  TraceRecorder t(2);
  t.record(rec(0, 1, 4, 8, 16, 16, 100, 250));
  const std::string path = (dir / "trace.csv").string();
  t.write_csv(path);
  const auto rows = read_csv(path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "iteration");
  EXPECT_EQ(rows[1][1], "1");    // worker
  EXPECT_EQ(rows[1][7], "250");  // end_ns
  std::filesystem::remove_all(dir);
}

TEST(SummarizeIteration, ComputesBusySpanImbalance) {
  std::vector<TaskRecord> records = {
      rec(0, 0, 0, 0, 1, 1, 0, 30),   // worker 0 busy 30
      rec(0, 1, 0, 1, 1, 1, 0, 10),   // worker 1 busy 10
      rec(1, 0, 0, 0, 1, 1, 50, 60),  // other iteration, ignored
  };
  const IterationSummary s = summarize_iteration(records, 0, 2);
  EXPECT_EQ(s.tasks, 2u);
  EXPECT_EQ(s.busy_ns, 40);
  EXPECT_EQ(s.span_ns, 30);
  // mean busy 20, max 30 -> 1.5.
  EXPECT_DOUBLE_EQ(s.imbalance, 1.5);
  EXPECT_EQ(s.per_worker_busy_ns[0], 30);
  EXPECT_EQ(s.per_worker_busy_ns[1], 10);
}

TEST(SummarizeIteration, EmptyIterationIsNeutral) {
  const IterationSummary s = summarize_iteration({}, 3, 4);
  EXPECT_EQ(s.tasks, 0u);
  EXPECT_EQ(s.span_ns, 0);
  EXPECT_DOUBLE_EQ(s.imbalance, 1.0);
}

TEST(RenderOwnerMap, PaintsTilesAndLeavesStableBlack) {
  std::vector<TaskRecord> records = {rec(0, 2, 0, 0, 4, 4, 0, 1)};
  const Image img = render_owner_map(records, 8, 8);
  EXPECT_EQ(img.height(), 8);
  EXPECT_EQ(img.width(), 8);
  EXPECT_EQ(img(1, 1), distinct_color(2));
  EXPECT_EQ(img(6, 6), (Rgb{0, 0, 0}));  // untouched = stable = black
}

TEST(RenderTimeline, GeometryAndLanes) {
  std::vector<TaskRecord> records = {
      rec(0, 0, 0, 0, 8, 8, 0, 500),     // worker 0: first half
      rec(0, 1, 8, 0, 8, 8, 500, 1000),  // worker 1: second half
  };
  const Image img = render_timeline(records, 2, 100, 10);
  EXPECT_EQ(img.height(), 2 * 11 - 1);
  EXPECT_EQ(img.width(), 100);
  // Worker 0 busy early, idle late.
  EXPECT_NE(img(5, 10), (Rgb{0, 0, 0}));
  EXPECT_EQ(img(5, 90), (Rgb{0, 0, 0}));
  // Worker 1 idle early, busy late.
  EXPECT_EQ(img(16, 10), (Rgb{0, 0, 0}));
  EXPECT_NE(img(16, 90), (Rgb{0, 0, 0}));
  // Lane separator row stays black.
  EXPECT_EQ(img(10, 50), (Rgb{0, 0, 0}));
}

TEST(RenderTimeline, TinyTasksStillVisible) {
  std::vector<TaskRecord> records = {
      rec(0, 0, 0, 0, 1, 1, 0, 1),          // 1 ns task
      rec(0, 0, 0, 0, 1, 1, 1000000, 1000001),
  };
  const Image img = render_timeline(records, 1, 50, 8);
  EXPECT_NE(img(4, 0), (Rgb{0, 0, 0}));  // first task occupies >= 1 px
}

TEST(RenderTimeline, EmptyTraceIsBlack) {
  const Image img = render_timeline({}, 3, 64, 8);
  EXPECT_EQ(img.height(), 3 * 9 - 1);
  for (int x = 0; x < img.width(); x += 7)
    EXPECT_EQ(img(4, x), (Rgb{0, 0, 0}));
}

TEST(RenderTimeline, ValidatesGeometry) {
  EXPECT_THROW(render_timeline({}, 0, 64, 8), Error);
  EXPECT_THROW(render_timeline({}, 2, 1, 8), Error);
  EXPECT_THROW(render_timeline({}, 2, 64, 1), Error);
}

TEST(RenderOwnerMap, Downscaling) {
  std::vector<TaskRecord> records = {rec(0, 0, 0, 0, 32, 32, 0, 1)};
  const Image img = render_owner_map(records, 64, 64, 8);
  EXPECT_EQ(img.height(), 8);
  EXPECT_EQ(img(0, 0), distinct_color(0));
  EXPECT_EQ(img(7, 7), (Rgb{0, 0, 0}));
}

}  // namespace
}  // namespace peachy
