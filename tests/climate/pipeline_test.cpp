#include "climate/pipeline.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "climate/stripes.hpp"

namespace peachy::climate {
namespace {

DwdModelParams small_params() {
  DwdModelParams p;
  p.first_year = 1950;
  p.last_year = 1980;
  return p;
}

void expect_series_equal(const AnnualSeries& a, const AnnualSeries& b) {
  ASSERT_EQ(a.first_year, b.first_year);
  ASSERT_EQ(a.mean_c.size(), b.mean_c.size());
  for (std::size_t i = 0; i < a.mean_c.size(); ++i) {
    EXPECT_EQ(a.has_any[i], b.has_any[i]) << "year index " << i;
    EXPECT_EQ(a.complete[i], b.complete[i]) << "year index " << i;
    if (a.has_any[i])
      EXPECT_NEAR(a.mean_c[i], b.mean_c[i], 1e-9) << "year index " << i;
  }
}

TEST(Pipeline, TypedJobMatchesReference) {
  const MonthlyDataset d = synthesize_dwd(small_params());
  expect_series_equal(annual_means_mapreduce(d), annual_means_reference(d));
}

// The result must be identical for every worker configuration.
class PipelineWorkerSweep
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(PipelineWorkerSweep, WorkerCountInvariant) {
  const auto [mw, rw, combiner] = GetParam();
  const MonthlyDataset d = synthesize_dwd(small_params());
  PipelineConfig cfg;
  cfg.map_workers = mw;
  cfg.reduce_workers = rw;
  cfg.use_combiner = combiner;
  expect_series_equal(annual_means_mapreduce(d, cfg),
                      annual_means_reference(d));
}

INSTANTIATE_TEST_SUITE_P(Workers, PipelineWorkerSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 2, 4),
                                            ::testing::Bool()));

TEST(Pipeline, TypedJobHandlesMissingData) {
  MonthlyDataset d = synthesize_dwd(small_params());
  drop_months(d, 1980, 10, 12);
  drop_months(d, 1950, 1, 1);
  d.clear(1960, 6, 5);
  expect_series_equal(annual_means_mapreduce(d), annual_means_reference(d));
}

TEST(Pipeline, CombinerCompressesShuffleTraffic) {
  const MonthlyDataset d = synthesize_dwd(small_params());
  PipelineConfig with;
  with.use_combiner = true;
  annual_means_mapreduce(d, with);
  const auto with_counters = last_pipeline_counters();
  PipelineConfig without;
  without.use_combiner = false;
  annual_means_mapreduce(d, without);
  const auto without_counters = last_pipeline_counters();
  EXPECT_LT(with_counters.shuffle_records, without_counters.shuffle_records);
  EXPECT_EQ(with_counters.groups, without_counters.groups);
}

TEST(Pipeline, StreamingMatchesReferenceOnMonthMajor) {
  const MonthlyDataset d = synthesize_dwd(small_params());
  const auto series = annual_means_streaming(month_major_all_lines(d), 1950,
                                             1980, {});
  expect_series_equal(series, annual_means_reference(d));
}

TEST(Pipeline, StreamingMatchesReferenceOnLongFormat) {
  // §III.A.4: the same mapper must digest a completely different layout.
  const MonthlyDataset d = synthesize_dwd(small_params());
  const auto series =
      annual_means_streaming(long_format_lines(d), 1950, 1980, {});
  expect_series_equal(series, annual_means_reference(d));
}

TEST(Pipeline, StreamingDigestsMixedLayouts) {
  // Half the years delivered month-major, the other half long-format, in
  // one input stream.
  DwdModelParams pa = small_params();
  pa.last_year = 1965;
  DwdModelParams pb = small_params();
  pb.first_year = 1966;
  const MonthlyDataset a = synthesize_dwd(pa);
  const MonthlyDataset b = synthesize_dwd(pb);

  std::vector<std::string> lines = month_major_all_lines(a);
  for (auto& l : long_format_lines(b)) lines.push_back(std::move(l));

  const auto series = annual_means_streaming(lines, 1950, 1980, {});
  const AnnualSeries ref_a = annual_means_reference(a);
  const AnnualSeries ref_b = annual_means_reference(b);
  for (int y = 1950; y <= 1965; ++y)
    EXPECT_NEAR(series.mean_c[static_cast<std::size_t>(y - 1950)],
                ref_a.mean_c[static_cast<std::size_t>(y - 1950)], 1e-6);
  for (int y = 1966; y <= 1980; ++y)
    EXPECT_NEAR(series.mean_c[static_cast<std::size_t>(y - 1950)],
                ref_b.mean_c[static_cast<std::size_t>(y - 1966)], 1e-6);
}

TEST(Pipeline, StreamingIgnoresJunkLines) {
  const MonthlyDataset d = synthesize_dwd(small_params());
  std::vector<std::string> lines = month_major_all_lines(d);
  lines.insert(lines.begin(), "# a comment");
  lines.push_back("totally,unrelated");
  lines.push_back("");
  const auto series = annual_means_streaming(lines, 1950, 1980, {});
  expect_series_equal(series, annual_means_reference(d));
}

TEST(Pipeline, StreamingRejectsOutOfRangeYears) {
  const MonthlyDataset d = synthesize_dwd(small_params());
  EXPECT_THROW(annual_means_streaming(month_major_all_lines(d), 1960, 1970, {}),
               peachy::Error);
}

TEST(Pipeline, EmptyInputGivesEmptySeries) {
  const auto series = annual_means_streaming({}, 2000, 2002, {});
  EXPECT_EQ(series.mean_c.size(), 3u);
  for (bool h : series.has_any) EXPECT_FALSE(h);
}

// --- Distributed pipeline (dmr) determinism ---------------------------------

// Bitwise equality, not EXPECT_NEAR: the distributed engine must add the
// same doubles in the same order as the in-process one.
void expect_series_bitwise(const AnnualSeries& a, const AnnualSeries& b) {
  ASSERT_EQ(a.first_year, b.first_year);
  ASSERT_EQ(a.mean_c.size(), b.mean_c.size());
  EXPECT_EQ(a.has_any, b.has_any);
  EXPECT_EQ(a.complete, b.complete);
  for (std::size_t i = 0; i < a.mean_c.size(); ++i)
    EXPECT_EQ(a.mean_c[i], b.mean_c[i]) << "year index " << i;
}

// A job shape shared by the reference and the distributed runs: identity
// requires matching map_tasks/partitions on both engines.
constexpr int kSweepTasks = 8;
constexpr int kSweepParts = 4;

AnnualSeries typed_reference(const MonthlyDataset& d) {
  PipelineConfig cfg;
  cfg.map_tasks = kSweepTasks;
  cfg.partitions = kSweepParts;
  return annual_means_mapreduce(d, cfg);
}

DmrPipelineConfig dmr_config(int ranks, int workers = 2,
                             mpp::TransportKind transport =
                                 mpp::TransportKind::kInproc) {
  DmrPipelineConfig cfg;
  cfg.options.ranks = ranks;
  cfg.options.run.transport = transport;
  cfg.options.map_workers = workers;
  cfg.options.reduce_workers = workers;
  cfg.options.map_tasks = kSweepTasks;
  cfg.options.partitions = kSweepParts;
  return cfg;
}

TEST(Pipeline, DmrMatchesTypedPipelineBitwise) {
  const MonthlyDataset d = synthesize_dwd(small_params());
  const AnnualSeries expect = typed_reference(d);
  for (const int ranks : {1, 2, 4})
    expect_series_bitwise(annual_means_dmr(d, dmr_config(ranks)), expect);
}

TEST(Pipeline, DmrWorkerCountInvariant) {
  // Same stripes-feeding series across 1, 2, and 8 worker threads per rank.
  const MonthlyDataset d = synthesize_dwd(small_params());
  const AnnualSeries expect = typed_reference(d);
  for (const int workers : {1, 2, 8})
    expect_series_bitwise(annual_means_dmr(d, dmr_config(2, workers)),
                          expect);
}

TEST(Pipeline, DmrHandlesMissingDataIdentically) {
  MonthlyDataset d = synthesize_dwd(small_params());
  drop_months(d, 1980, 10, 12);
  drop_months(d, 1950, 1, 1);
  d.clear(1960, 6, 5);
  const AnnualSeries expect = typed_reference(d);
  for (const int workers : {1, 2, 8})
    expect_series_bitwise(annual_means_dmr(d, dmr_config(2, workers)),
                          expect);
  expect_series_equal(annual_means_dmr(d, dmr_config(4)),
                      annual_means_reference(d));
}

TEST(Pipeline, DmrTcpTransportMatchesInproc) {
  const MonthlyDataset d = synthesize_dwd(small_params());
  const AnnualSeries expect = typed_reference(d);
  expect_series_bitwise(
      annual_means_dmr(d, dmr_config(2, 2, mpp::TransportKind::kTcp)),
      expect);
  const DmrPipelineStats& stats = last_dmr_stats();
  EXPECT_GT(stats.counters.shuffle_records, 0u);
  EXPECT_EQ(stats.restarts, 0);
}

TEST(Pipeline, DmrForcedSpillKeepsSeriesBitwise) {
  const MonthlyDataset d = synthesize_dwd(small_params());
  const AnnualSeries expect = typed_reference(d);
  DmrPipelineConfig cfg = dmr_config(2);
  cfg.options.spill_buffer_bytes = 128;  // force the external sort to disk
  expect_series_bitwise(annual_means_dmr(d, cfg), expect);
  EXPECT_GT(last_dmr_stats().counters.spill.spills, 0u);
}

TEST(Pipeline, StripesPpmIdenticalAcrossEnginesAndWorkers) {
  // The rendered Warming Stripes image — the artifact the assignment
  // grades — must be pixel-identical whichever engine and worker count
  // produced the series, including with missing data injected.
  MonthlyDataset d = synthesize_dwd(small_params());
  drop_months(d, 1972, 2, 4);
  const Image expect = render_stripes(typed_reference(d));
  for (const int workers : {1, 2, 8}) {
    PipelineConfig cfg;
    cfg.map_workers = workers;
    cfg.reduce_workers = workers;
    cfg.map_tasks = kSweepTasks;
    cfg.partitions = kSweepParts;
    const Image typed = render_stripes(annual_means_mapreduce(d, cfg));
    const Image dist = render_stripes(annual_means_dmr(d, dmr_config(2, workers)));
    ASSERT_EQ(typed.width(), expect.width());
    ASSERT_EQ(dist.width(), expect.width());
    for (int y = 0; y < expect.height(); ++y)
      for (int x = 0; x < expect.width(); ++x) {
        ASSERT_EQ(typed(y, x), expect(y, x))
            << "typed pixel (" << y << "," << x << ") workers=" << workers;
        ASSERT_EQ(dist(y, x), expect(y, x))
            << "dmr pixel (" << y << "," << x << ") workers=" << workers;
      }
  }
}

}  // namespace
}  // namespace peachy::climate
