#include "climate/dwd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>

#include "core/error.hpp"

namespace peachy::climate {
namespace {

TEST(MonthlyDataset, SetGetClear) {
  MonthlyDataset d(2000, 2001);
  EXPECT_FALSE(d.has(2000, 1, 0));
  d.set(2000, 1, 0, 5.5);
  EXPECT_TRUE(d.has(2000, 1, 0));
  EXPECT_DOUBLE_EQ(d.get(2000, 1, 0), 5.5);
  EXPECT_EQ(d.present_count(), 1u);
  d.clear(2000, 1, 0);
  EXPECT_FALSE(d.has(2000, 1, 0));
  EXPECT_EQ(d.present_count(), 0u);
  EXPECT_THROW(d.get(2000, 1, 0), Error);
}

TEST(MonthlyDataset, BoundsChecked) {
  MonthlyDataset d(2000, 2001);
  EXPECT_THROW(d.set(1999, 1, 0, 0.0), Error);
  EXPECT_THROW(d.set(2000, 0, 0, 0.0), Error);
  EXPECT_THROW(d.set(2000, 13, 0, 0.0), Error);
  EXPECT_THROW(d.set(2000, 1, 16, 0.0), Error);
  EXPECT_THROW(MonthlyDataset(2001, 2000), Error);
}

TEST(MonthlyDataset, ObservationsInOrder) {
  MonthlyDataset d(2000, 2000);
  d.set(2000, 2, 1, 1.0);
  d.set(2000, 1, 3, 2.0);
  const auto obs = d.observations();
  ASSERT_EQ(obs.size(), 2u);
  EXPECT_EQ(obs[0].month, 1);
  EXPECT_EQ(obs[0].state, 3);
  EXPECT_EQ(obs[1].month, 2);
}

TEST(SynthesizeDwd, CompleteAndDeterministic) {
  DwdModelParams p;
  p.first_year = 1950;
  p.last_year = 1960;
  const MonthlyDataset a = synthesize_dwd(p);
  const MonthlyDataset b = synthesize_dwd(p);
  EXPECT_EQ(a.present_count(), 11u * 12 * 16);
  for (const auto& o : a.observations())
    EXPECT_DOUBLE_EQ(o.temp_c, b.get(o.year, o.month, o.state));
}

TEST(SynthesizeDwd, CalibratedToPaperShape) {
  // Fig. 6 narrative: Germany annual means range from a low around 7 °C to
  // a high around 10 °C across 1881-2019, rising over time.
  const MonthlyDataset d = synthesize_dwd({});
  const AnnualSeries s = annual_means_reference(d);
  double lo = 1e9, hi = -1e9;
  for (double m : s.mean_c) {
    lo = std::min(lo, m);
    hi = std::max(hi, m);
  }
  EXPECT_GT(lo, 6.0);
  EXPECT_LT(lo, 8.0);
  EXPECT_GT(hi, 9.0);
  EXPECT_LT(hi, 11.0);
  // Warming: last 20 years clearly above the first 20.
  double early = 0, late = 0;
  for (int i = 0; i < 20; ++i) {
    early += s.mean_c[static_cast<std::size_t>(i)] / 20;
    late += s.mean_c[s.mean_c.size() - 1 - static_cast<std::size_t>(i)] / 20;
  }
  EXPECT_GT(late - early, 1.0);
}

TEST(SynthesizeDwd, SeasonalCycleVisible) {
  const MonthlyDataset d = synthesize_dwd({});
  // July must be far warmer than January on average.
  double jan = 0, jul = 0;
  int n = 0;
  for (int y = 1900; y <= 1950; ++y) {
    for (int s = 0; s < kNumStates; ++s) {
      jan += d.get(y, 1, s);
      jul += d.get(y, 7, s);
      ++n;
    }
  }
  EXPECT_GT((jul - jan) / n, 12.0);
}

TEST(MonthMajorLines, HeaderAndRows) {
  DwdModelParams p;
  p.first_year = 2000;
  p.last_year = 2002;
  const MonthlyDataset d = synthesize_dwd(p);
  const auto lines = month_major_lines(d, 6);
  ASSERT_EQ(lines.size(), 4u);  // header + 3 years
  EXPECT_EQ(lines[0].substr(0, 5), "year,");
  EXPECT_EQ(lines[1].substr(0, 5), "2000,");
}

TEST(MonthMajorLines, MissingCellsRenderEmpty) {
  MonthlyDataset d(2000, 2000);
  d.set(2000, 1, 0, 3.0);
  const auto lines = month_major_lines(d, 1);
  // year,3.0,,,,... (15 empty fields follow)
  EXPECT_EQ(lines[1].substr(0, 9), "2000,3.0,");
  EXPECT_EQ(std::count(lines[1].begin(), lines[1].end(), ','), 16);
}

TEST(MonthMajorFiles, RoundTripThroughDisk) {
  const auto dir =
      (std::filesystem::temp_directory_path() / "peachy_dwd").string();
  DwdModelParams p;
  p.first_year = 1990;
  p.last_year = 1995;
  MonthlyDataset d = synthesize_dwd(p);
  drop_months(d, 1995, 11, 12);  // exercise missing cells
  write_month_major(d, dir);
  const MonthlyDataset back = read_month_major(dir, 1990, 1995);
  EXPECT_EQ(back.present_count(), d.present_count());
  for (const auto& o : d.observations())
    EXPECT_DOUBLE_EQ(back.get(o.year, o.month, o.state), o.temp_c);
  std::filesystem::remove_all(dir);
}

TEST(LongFormat, OneLinePerObservation) {
  DwdModelParams p;
  p.first_year = 2000;
  p.last_year = 2000;
  const MonthlyDataset d = synthesize_dwd(p);
  const auto lines = long_format_lines(d);
  EXPECT_EQ(lines.size(), 12u * 16);
  // "Baden-Wuerttemberg,2000,1,<t>"
  EXPECT_EQ(lines[0].substr(0, 19), "Baden-Wuerttemberg,");
}

TEST(DropMonths, RemovesAllStates) {
  DwdModelParams p;
  p.first_year = 2020;
  p.last_year = 2020;
  MonthlyDataset d = synthesize_dwd(p);
  drop_months(d, 2020, 10, 12);
  EXPECT_EQ(d.present_count(), 9u * 16);
  EXPECT_FALSE(d.has(2020, 11, 4));
  EXPECT_TRUE(d.has(2020, 9, 4));
  EXPECT_THROW(drop_months(d, 2020, 0, 2), Error);
  EXPECT_THROW(drop_months(d, 2020, 5, 2), Error);
}

TEST(Validate, FlagsIncompleteYears) {
  DwdModelParams p;
  p.first_year = 2018;
  p.last_year = 2020;
  MonthlyDataset d = synthesize_dwd(p);
  drop_months(d, 2020, 11, 12);
  d.clear(2018, 3, 7);
  const ValidationReport r = validate(d);
  ASSERT_EQ(r.incomplete_years.size(), 2u);
  EXPECT_EQ(r.incomplete_years[0], 2018);
  EXPECT_EQ(r.incomplete_years[1], 2020);
  EXPECT_EQ(r.missing_cells, 2u * 16 + 1);
}

TEST(AnnualMeansReference, IncompleteYearBiasIsVisible) {
  // The §III.A.3 lesson: dropping the cold winter months inflates the naive
  // annual mean.
  DwdModelParams p;
  p.first_year = 2019;
  p.last_year = 2020;
  MonthlyDataset d = synthesize_dwd(p);
  const AnnualSeries full = annual_means_reference(d);
  drop_months(d, 2020, 11, 12);
  drop_months(d, 2020, 1, 2);
  const AnnualSeries biased = annual_means_reference(d);
  EXPECT_FALSE(biased.complete[1]);
  EXPECT_TRUE(biased.has_any[1]);
  EXPECT_GT(biased.mean_c[1], full.mean_c[1] + 1.0);  // warm-biased
}

TEST(AnnualSeries, OverallMeanSkipsIncompleteYears) {
  AnnualSeries s;
  s.first_year = 2000;
  s.mean_c = {10.0, 50.0, 12.0};
  s.complete = {true, false, true};
  s.has_any = {true, true, true};
  EXPECT_DOUBLE_EQ(s.overall_mean(), 11.0);
  EXPECT_EQ(s.year_of(2), 2002);
}

TEST(AnnualSeries, OverallMeanRequiresACompleteYear) {
  AnnualSeries s;
  s.first_year = 2000;
  s.mean_c = {10.0};
  s.complete = {false};
  s.has_any = {true};
  EXPECT_THROW(s.overall_mean(), peachy::Error);
}

TEST(StateNames, SixteenUniqueStates) {
  std::set<std::string> names(state_names().begin(), state_names().end());
  EXPECT_EQ(names.size(), 16u);
}

}  // namespace
}  // namespace peachy::climate
