#include "climate/stripes.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace peachy::climate {
namespace {

AnnualSeries ramp_series(int years, double lo, double hi) {
  AnnualSeries s;
  s.first_year = 1900;
  for (int i = 0; i < years; ++i) {
    s.mean_c.push_back(lo + (hi - lo) * i / (years - 1));
    s.complete.push_back(true);
    s.has_any.push_back(true);
  }
  return s;
}

TEST(StripesScale, PaperColorbarRule) {
  // "first computing the average temperature of the whole time span and
  // then adding and subtracting 1.5°C".
  const AnnualSeries s = ramp_series(11, 7.0, 10.0);  // mean 8.5
  const DivergingScale scale = stripes_scale(s);
  EXPECT_NEAR(scale.lo(), 7.0, 1e-9);
  EXPECT_NEAR(scale.hi(), 10.0, 1e-9);
}

TEST(StripesScale, CustomHalfRange) {
  const AnnualSeries s = ramp_series(3, 8.0, 8.0 + 1e-12);
  const DivergingScale scale = stripes_scale(s, 2.0);
  EXPECT_NEAR(scale.lo(), 6.0, 1e-6);
  EXPECT_NEAR(scale.hi(), 10.0, 1e-6);
  EXPECT_THROW(stripes_scale(s, 0.0), peachy::Error);
}

TEST(RenderStripes, GeometryMatchesSpec) {
  const AnnualSeries s = ramp_series(10, 7, 10);
  StripesSpec spec;
  spec.stripe_width = 3;
  spec.height = 50;
  const Image img = render_stripes(s, spec);
  EXPECT_EQ(img.width(), 30);
  EXPECT_EQ(img.height(), 50);
}

TEST(RenderStripes, ColdLeftWarmRight) {
  const AnnualSeries s = ramp_series(40, 7, 10);
  const Image img = render_stripes(s);
  const Rgb left = img(10, 0);
  const Rgb right = img(10, img.width() - 1);
  EXPECT_GT(left.b, left.r);   // early years blue
  EXPECT_GT(right.r, right.b); // late years red
}

TEST(RenderStripes, StripesAreVerticallyUniform) {
  const AnnualSeries s = ramp_series(5, 7, 10);
  const Image img = render_stripes(s);
  for (int x = 0; x < img.width(); ++x)
    for (int y = 1; y < img.height(); ++y)
      ASSERT_EQ(img(y, x), img(0, x));
}

TEST(RenderStripes, IncompleteYearsGrey) {
  AnnualSeries s = ramp_series(5, 7, 10);
  s.complete[2] = false;
  StripesSpec spec;
  spec.stripe_width = 1;
  const Image img = render_stripes(s, spec);
  EXPECT_EQ(img(0, 2), DivergingScale::missing());
  EXPECT_NE(img(0, 1), DivergingScale::missing());
}

TEST(RenderStripes, BiasedModeShowsIncompleteYears) {
  AnnualSeries s = ramp_series(5, 7, 10);
  s.complete[2] = false;
  StripesSpec spec;
  spec.stripe_width = 1;
  spec.grey_incomplete = false;
  const Image img = render_stripes(s, spec);
  EXPECT_NE(img(0, 2), DivergingScale::missing());
}

TEST(RenderStripes, EmptySeriesRejected) {
  EXPECT_THROW(render_stripes(AnnualSeries{}), peachy::Error);
}

}  // namespace
}  // namespace peachy::climate
