#include "climate/analytics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/colormap.hpp"
#include "core/error.hpp"

namespace peachy::climate {
namespace {

DwdModelParams small_params() {
  DwdModelParams p;
  p.first_year = 1940;
  p.last_year = 1990;
  return p;
}

TEST(StateAnnualMeans, MapReduceMatchesReference) {
  const MonthlyDataset d = synthesize_dwd(small_params());
  const StateAnnualSeries mr_series = state_annual_means_mapreduce(d);
  const StateAnnualSeries ref = state_annual_means_reference(d);
  ASSERT_EQ(mr_series.mean_c.size(), static_cast<std::size_t>(kNumStates));
  for (int s = 0; s < kNumStates; ++s)
    for (std::size_t y = 0; y < ref.mean_c[0].size(); ++y) {
      EXPECT_EQ(mr_series.has[static_cast<std::size_t>(s)][y],
                ref.has[static_cast<std::size_t>(s)][y]);
      EXPECT_NEAR(mr_series.mean_c[static_cast<std::size_t>(s)][y],
                  ref.mean_c[static_cast<std::size_t>(s)][y], 1e-9);
    }
}

TEST(StateAnnualMeans, WorkerCountInvariant) {
  const MonthlyDataset d = synthesize_dwd(small_params());
  const StateAnnualSeries base = state_annual_means_mapreduce(d, 1, 1);
  for (int mw : {2, 4})
    for (int rw : {2, 3}) {
      const StateAnnualSeries other = state_annual_means_mapreduce(d, mw, rw);
      for (int s = 0; s < kNumStates; ++s)
        for (std::size_t y = 0; y < base.mean_c[0].size(); ++y)
          EXPECT_NEAR(other.mean_c[static_cast<std::size_t>(s)][y],
                      base.mean_c[static_cast<std::size_t>(s)][y], 1e-9);
    }
}

TEST(StateAnnualMeans, MissingDataPropagates) {
  MonthlyDataset d = synthesize_dwd(small_params());
  for (int m = 1; m <= 12; ++m) d.clear(1950, m, 3);  // state 3 dark in 1950
  const StateAnnualSeries s = state_annual_means_mapreduce(d);
  const auto yi = static_cast<std::size_t>(1950 - d.first_year());
  EXPECT_FALSE(s.has[3][yi]);
  EXPECT_TRUE(s.has[2][yi]);
}

TEST(StateTrends, RecoversSyntheticWarming) {
  // The generator injects a known warming signal; each state's fitted
  // slope must be positive and of the right magnitude over the steep era.
  DwdModelParams p;
  p.first_year = 1970;
  p.last_year = 2019;
  p.annual_noise_c = 0.05;   // keep the fit tight
  p.monthly_noise_c = 0.10;
  const MonthlyDataset d = synthesize_dwd(p);
  const auto trends = state_trends_mapreduce(d);
  ASSERT_EQ(trends.size(), static_cast<std::size_t>(kNumStates));
  // Post-1970 warming: (2.3 - 0.35) °C over 49 years ≈ 0.4 °C/decade.
  for (const StateTrend& t : trends) {
    EXPECT_NEAR(t.slope_c_per_decade, 0.4, 0.1) << "state " << t.state;
    EXPECT_EQ(t.years, 50);
  }
}

TEST(StateTrends, ExactRegressionOnConstructedData) {
  // Hand-built dataset: state 0 warms by exactly 0.02 °C/year, state 1 is
  // flat. Regression through MapReduce must recover both slopes exactly.
  MonthlyDataset d(2000, 2009);
  for (int y = 2000; y <= 2009; ++y)
    for (int m = 1; m <= 12; ++m)
      for (int s = 0; s < kNumStates; ++s)
        d.set(y, m, s, s == 0 ? 10.0 + 0.02 * (y - 2000) : 5.0);
  const auto trends = state_trends_mapreduce(d);
  EXPECT_NEAR(trends[0].slope_c_per_decade, 0.2, 1e-9);
  EXPECT_NEAR(trends[1].slope_c_per_decade, 0.0, 1e-9);
  EXPECT_NEAR(trends[1].mean_c, 5.0, 1e-9);
}

TEST(WarmestYears, TopKOrderedAndComplete) {
  const MonthlyDataset d = synthesize_dwd({});  // 1881-2019 with warming
  const auto top = warmest_years_mapreduce(d, 5);
  ASSERT_EQ(top.size(), 5u);
  for (std::size_t i = 1; i < top.size(); ++i)
    EXPECT_GE(top[i - 1].mean_c, top[i].mean_c);
  // Warming trend: the warmest years are late ones.
  for (const YearMean& ym : top) EXPECT_GT(ym.year, 1980);
}

TEST(WarmestYears, MatchesSequentialTopK) {
  const MonthlyDataset d = synthesize_dwd(small_params());
  const AnnualSeries ref = annual_means_reference(d);
  std::vector<YearMean> expected;
  for (std::size_t i = 0; i < ref.mean_c.size(); ++i)
    if (ref.complete[i]) expected.push_back({ref.year_of(i), ref.mean_c[i]});
  std::sort(expected.begin(), expected.end(),
            [](const YearMean& a, const YearMean& b) {
              if (a.mean_c != b.mean_c) return a.mean_c > b.mean_c;
              return a.year < b.year;
            });
  const auto top = warmest_years_mapreduce(d, 3);
  ASSERT_EQ(top.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(top[static_cast<std::size_t>(i)].year,
              expected[static_cast<std::size_t>(i)].year);
    EXPECT_NEAR(top[static_cast<std::size_t>(i)].mean_c,
                expected[static_cast<std::size_t>(i)].mean_c, 1e-9);
  }
}

TEST(WarmestYears, ExcludesIncompleteYears) {
  MonthlyDataset d = synthesize_dwd(small_params());
  // Make the hottest year incomplete: it must vanish from the top list.
  const auto top_before = warmest_years_mapreduce(d, 1);
  drop_months(d, top_before[0].year, 12, 12);
  const auto top_after = warmest_years_mapreduce(d, 1);
  EXPECT_NE(top_after[0].year, top_before[0].year);
}

TEST(WarmestYears, ValidatesK) {
  const MonthlyDataset d = synthesize_dwd(small_params());
  EXPECT_THROW(warmest_years_mapreduce(d, 0), Error);
}

TEST(RenderStateStripes, GeometryAndGreyBands) {
  DwdModelParams p;
  p.first_year = 2000;
  p.last_year = 2009;
  MonthlyDataset d = synthesize_dwd(p);
  for (int m = 1; m <= 12; ++m) d.clear(2005, m, 7);
  const StateAnnualSeries s = state_annual_means_mapreduce(d);
  const Image img = render_state_stripes(s, 10, 3);
  EXPECT_EQ(img.height(), kNumStates * 10);
  EXPECT_EQ(img.width(), 10 * 3);
  // State 7's 2005 stripe is grey; its neighbour years are not.
  EXPECT_EQ(img(7 * 10 + 5, 5 * 3 + 1), peachy::DivergingScale::missing());
  EXPECT_NE(img(7 * 10 + 5, 4 * 3 + 1), peachy::DivergingScale::missing());
}

TEST(RenderStateStripes, PerStateScalesDiffer) {
  // Two states with very different baselines must both span blue->red on
  // their own scales.
  MonthlyDataset d(2000, 2019);
  for (int y = 2000; y <= 2019; ++y)
    for (int m = 1; m <= 12; ++m)
      for (int s = 0; s < kNumStates; ++s)
        d.set(y, m, s, (s == 0 ? 0.0 : 20.0) + 0.1 * (y - 2000));
  const StateAnnualSeries series = state_annual_means_mapreduce(d);
  const Image img = render_state_stripes(series, 4, 2);
  auto redness = [&](int y, int x) {
    return static_cast<int>(img(y, x).r) - static_cast<int>(img(y, x).b);
  };
  // First year blue-ish, last year red-ish, for both bands.
  EXPECT_LT(redness(1, 0), 0);
  EXPECT_GT(redness(1, img.width() - 1), 0);
  EXPECT_LT(redness(4 * 4 + 1, 0), 0);
  EXPECT_GT(redness(4 * 4 + 1, img.width() - 1), 0);
}

}  // namespace
}  // namespace peachy::climate
