#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "core/json.hpp"
#include "core/timer.hpp"
#include "pap/runner.hpp"
#include "trace/trace.hpp"

namespace peachy::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Enables the gate for the test body and restores the prior state after.
class ObsEnabled : public ::testing::Test {
 protected:
  void SetUp() override { prev_ = set_enabled(true); }
  void TearDown() override { set_enabled(prev_); }

 private:
  bool prev_ = false;
};

TEST(ObsGate, SetEnabledReturnsPreviousState) {
  const bool prev = set_enabled(true);
  EXPECT_TRUE(set_enabled(false));
  EXPECT_FALSE(enabled());
  set_enabled(prev);
}

TEST(ObsRegistry, CounterSumsShardsAcrossThreads) {
  Registry r;
  Counter& c = r.counter("test.adds");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), 80000u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsRegistry, NamesAreStickyPerKind) {
  Registry r;
  Counter& a = r.counter("metric");
  Counter& b = r.counter("metric");
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(r.gauge("metric"), Error);
  EXPECT_THROW(r.histogram("metric"), Error);
}

TEST(ObsRegistry, GaugeSetsAndAdds) {
  Registry r;
  Gauge& g = r.gauge("lanes");
  g.set(4);
  g.add(-1);
  EXPECT_EQ(g.value(), 3);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(ObsRegistry, HistogramUsesPowerOfTwoBuckets) {
  Registry r;
  Histogram& h = r.histogram("ns");
  h.observe(0);     // bucket 0
  h.observe(1);     // bucket 1: [1,2)
  h.observe(2);     // bucket 2: [2,4)
  h.observe(3);     // bucket 2
  h.observe(1000);  // bucket 10: [512,1024)
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1006);
  const auto buckets = h.buckets();
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 2u);
  EXPECT_EQ(buckets[10], 1u);
}

TEST(ObsRegistry, PrometheusTextExposition) {
  Registry r;
  r.counter("pap.tile_tasks").add(7);
  r.gauge("arena.lanes").set(4);
  r.histogram("run.ns").observe(5);  // bucket 3, le="8"
  const std::string text = r.prometheus_text();
  EXPECT_NE(text.find("# TYPE pap_tile_tasks counter\npap_tile_tasks 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE arena_lanes gauge\narena_lanes 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE run_ns histogram\n"), std::string::npos);
  EXPECT_NE(text.find("run_ns_bucket{le=\"8\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("run_ns_bucket{le=\"+Inf\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("run_ns_sum 5\n"), std::string::npos);
  EXPECT_NE(text.find("run_ns_count 1\n"), std::string::npos);
}

TEST(ObsRegistry, JsonDumpParsesBackWithCoreJson) {
  Registry r;
  r.counter("pap.tile_tasks").add(7);
  r.gauge("arena.lanes").set(-2);
  r.histogram("run.ns").observe(5);
  const json::Value doc = json::parse(r.json_dump());
  EXPECT_EQ(doc.at("counters").at("pap.tile_tasks").as_int(), 7);
  EXPECT_EQ(doc.at("gauges").at("arena.lanes").as_int(), -2);
  const json::Value& h = doc.at("histograms").at("run.ns");
  EXPECT_EQ(h.at("count").as_int(), 1);
  EXPECT_EQ(h.at("sum").as_int(), 5);
  ASSERT_EQ(h.at("buckets").as_array().size(), 4u);  // trimmed after bucket 3
  EXPECT_EQ(h.at("buckets").as_array()[3].as_int(), 1);
}

TEST(ObsRegistry, ResetKeepsCachedReferencesValid) {
  Registry r;
  Counter& c = r.counter("c");
  c.add(5);
  r.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);  // instrumentation sites cache references across resets
  EXPECT_EQ(c.value(), 1u);
}

TEST(ObsRegistry, WritePicksFormatFromExtension) {
  const auto dir = std::filesystem::temp_directory_path() / "peachy_obs_reg";
  std::filesystem::create_directories(dir);
  Registry r;
  r.counter("hits").add(3);
  const std::string json_path = (dir / "m.json").string();
  const std::string text_path = (dir / "m.txt").string();
  r.write(json_path);
  r.write(text_path);
  EXPECT_EQ(json::parse(read_file(json_path)).at("counters").at("hits").as_int(),
            3);
  EXPECT_EQ(read_file(text_path).rfind("# TYPE", 0), 0u);
  std::filesystem::remove_all(dir);
}

TEST(ObsTracer, DisabledTracerRecordsNothing) {
  const bool prev = set_enabled(false);
  Tracer t(4);
  t.begin("a", "test");
  t.end();
  t.instant("b", "test");
  t.complete("c", "test", 0, 10);
  EXPECT_EQ(t.total_events(), 0u);
  set_enabled(prev);
}

TEST_F(ObsEnabled, MismatchedEndIsNoOp) {
  Tracer t(4);
  t.end();  // nothing open on this tracer — must not crash or record
  EXPECT_EQ(t.total_events(), 0u);
}

TEST_F(ObsEnabled, NestedSpansExportContainedChromeEvents) {
  Tracer t(4);
  t.begin("outer", "test");
  t.begin("inner", "test");
  t.end({{"k", 42}});
  t.end();
  ASSERT_EQ(t.total_events(), 2u);

  const json::Value doc = json::parse(t.chrome_json());
  const json::Array& events = doc.as_array();
  ASSERT_EQ(events.size(), 2u);
  double outer_ts = -1, outer_end = -1, inner_ts = -1, inner_end = -1;
  for (const json::Value& ev : events) {
    EXPECT_EQ(ev.at("ph").as_string(), "X");
    EXPECT_TRUE(ev.at("ts").is_number());
    EXPECT_TRUE(ev.at("dur").is_number());
    EXPECT_TRUE(ev.at("tid").is_number());
    const double ts = ev.at("ts").as_number();
    const double end = ts + ev.at("dur").as_number();
    if (ev.at("name").as_string() == "outer") {
      outer_ts = ts;
      outer_end = end;
    } else {
      EXPECT_EQ(ev.at("name").as_string(), "inner");
      EXPECT_EQ(ev.at("args").at("k").as_int(), 42);
      inner_ts = ts;
      inner_end = end;
    }
  }
  // The inner span nests inside the outer one (1 ns of slack for the
  // microsecond rounding in the export).
  const double eps = 0.0011;
  EXPECT_GE(inner_ts, outer_ts - eps);
  EXPECT_LE(inner_end, outer_end + eps);
}

TEST_F(ObsEnabled, ChromeJsonIsSortedRebasedAndMarksInstants) {
  Tracer t(4);
  t.complete("late", "test", 2000, 3000);
  t.complete("early", "test", 1000, 1500);
  t.instant("now", "test", {{"x", 1}});
  const json::Value doc = json::parse(t.chrome_json());
  const json::Array& events = doc.as_array();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].at("name").as_string(), "early");
  EXPECT_EQ(events[0].at("ts").as_number(), 0.0);  // rebased to first event
  double prev = 0.0;
  for (const json::Value& ev : events) {
    EXPECT_GE(ev.at("ts").as_number(), prev);  // monotonic after sort
    prev = ev.at("ts").as_number();
    if (ev.at("ph").as_string() == "i") {
      EXPECT_EQ(ev.at("s").as_string(), "t");
      EXPECT_FALSE(ev.contains("dur"));
    } else {
      EXPECT_TRUE(ev.contains("dur"));
    }
  }
  EXPECT_EQ(events[1].at("dur").as_number(), 1.0);  // 1000 ns = 1 µs
}

TEST_F(ObsEnabled, TaskRecordsConvertToChromeTrace) {
  TraceRecorder rec(2);
  rec.record(TaskRecord{0, 0, 0, 0, 8, 8, 1000, 3000});
  rec.record(TaskRecord{0, 1, 8, 0, 8, 8, 1500, 2500});
  const std::vector<TraceEvent> events = to_trace_events(rec.merged());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "tile");
  EXPECT_EQ(events[0].tid, 0);
  EXPECT_EQ(events[1].tid, 1);
  EXPECT_EQ(events[0].dur_ns, 2000);

  const auto dir = std::filesystem::temp_directory_path() / "peachy_obs_trace";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "trace.json").string();
  rec.write_chrome_json(path);
  const json::Value doc = json::parse(read_file(path));
  const json::Array& arr = doc.as_array();
  ASSERT_EQ(arr.size(), 2u);
  for (const json::Value& ev : arr) {
    EXPECT_EQ(ev.at("ph").as_string(), "X");
    EXPECT_EQ(ev.at("name").as_string(), "tile");
    EXPECT_TRUE(ev.at("args").contains("iter"));
    EXPECT_TRUE(ev.at("args").contains("y0"));
  }
  EXPECT_EQ(arr[0].at("tid").as_int(), 0);
  EXPECT_EQ(arr[1].at("tid").as_int(), 1);
  EXPECT_EQ(arr[1].at("dur").as_number(), 1.0);
  std::filesystem::remove_all(dir);
}

TEST_F(ObsEnabled, SpanRaiiRecordsOnGlobalTracer) {
  Tracer::global().clear();
  {
    Span span("raii.test", "test");
    span.arg("k", 7);
  }
  int hits = 0;
  for (const TraceEvent& ev : Tracer::global().snapshot())
    if (ev.name == "raii.test") {
      ++hits;
      ASSERT_EQ(ev.args.size(), 1u);
      EXPECT_EQ(ev.args[0].second, 7);
    }
  EXPECT_EQ(hits, 1);
  Tracer::global().clear();
}

// End-to-end: a Runner iteration feeds both the global registry and the
// global tracer (the instrumentation the CLI's --trace/--metrics expose).
TEST_F(ObsEnabled, RunnerFeedsGlobalRegistryAndTracer) {
  Tracer::global().clear();
  const std::uint64_t runs_before =
      Registry::global().counter("pap.runs").value();
  pap::TileGrid tiles(16, 16, 8, 8);
  pap::RunOptions opt;
  opt.max_iterations = 2;
  pap::Runner(tiles, opt).run([](const pap::Tile&, int) { return true; });
  EXPECT_EQ(Registry::global().counter("pap.runs").value(), runs_before + 1);
  int iteration_spans = 0, tile_spans = 0;
  for (const TraceEvent& ev : Tracer::global().snapshot()) {
    if (ev.name == "pap.iteration") ++iteration_spans;
    if (ev.name == "tile") ++tile_spans;
  }
  EXPECT_EQ(iteration_spans, 2);
  EXPECT_EQ(tile_spans, 2 * 4);  // 4 tiles per iteration
  Tracer::global().clear();
}

}  // namespace
}  // namespace peachy::obs
