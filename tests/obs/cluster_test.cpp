// Distributed-observability units: trace-context encode/decode and span-id
// minting, the Cristian clock-offset estimator against synthetic skewed
// peers, the rank-labeled Prometheus rollup (golden output), the sorted
// single-process exposition (golden output), and the crash flight recorder.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/cluster.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"

namespace peachy::obs {
namespace {

namespace cluster = peachy::obs::cluster;

TEST(TraceContext, EncodeDecodeRoundTrip) {
  const cluster::TraceContext ctx{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  std::byte buf[cluster::kContextBytes];
  cluster::encode_context(ctx, buf);
  const cluster::TraceContext back = cluster::decode_context(buf);
  EXPECT_EQ(back.trace_id, ctx.trace_id);
  EXPECT_EQ(back.span_id, ctx.span_id);
  EXPECT_TRUE(back.valid());
}

TEST(TraceContext, ZeroTraceIdIsInvalid) {
  EXPECT_FALSE(cluster::TraceContext{}.valid());
  EXPECT_TRUE((cluster::TraceContext{1, 0}).valid());
}

TEST(TraceContext, SpanIdsEmbedRankAndNeverRepeat) {
  const int saved_rank = cluster::rank();
  cluster::set_rank(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t id = cluster::next_span_id();
    EXPECT_NE(id, 0u);
    EXPECT_EQ(id >> 48, 6u);  // rank + 1 in the high 16 bits
    EXPECT_TRUE(seen.insert(id).second) << "duplicate span id " << id;
  }
  cluster::set_rank(saved_rank);
}

TEST(TraceContext, ScopedContextSavesAndRestores) {
  cluster::clear_current();
  EXPECT_FALSE(cluster::current().valid());
  {
    cluster::ScopedContext outer({7, 70});
    EXPECT_EQ(cluster::current().span_id, 70u);
    {
      cluster::ScopedContext inner({7, 71});
      EXPECT_EQ(cluster::current().span_id, 71u);
    }
    EXPECT_EQ(cluster::current().span_id, 70u);
  }
  EXPECT_FALSE(cluster::current().valid());
}

TEST(TraceContext, ContextIsPerThread) {
  cluster::ScopedContext mine({9, 90});
  cluster::TraceContext other_thread;
  std::thread([&] { other_thread = cluster::current(); }).join();
  EXPECT_FALSE(other_thread.valid());
  EXPECT_EQ(cluster::current().span_id, 90u);
}

// --- OffsetEstimator --------------------------------------------------------

TEST(OffsetEstimator, ConvergesOnSkewedPeer) {
  // Peer clock runs 5 ms ahead; symmetric 1 ms RTT.
  const std::int64_t skew = 5'000'000;
  cluster::OffsetEstimator est;
  EXPECT_FALSE(est.valid());
  std::int64_t t = 1'000'000'000;
  for (int i = 0; i < 16; ++i) {
    const std::int64_t origin = t;
    const std::int64_t peer = t + 500'000 + skew;  // read mid-flight
    const std::int64_t now = t + 1'000'000;
    EXPECT_TRUE(est.sample(origin, peer, now));
    t += 10'000'000;
  }
  EXPECT_TRUE(est.valid());
  EXPECT_EQ(est.samples(), 16u);
  EXPECT_EQ(est.min_rtt_ns(), 1'000'000);
  EXPECT_NEAR(static_cast<double>(est.offset_ns()),
              static_cast<double>(skew), 1000.0);
}

TEST(OffsetEstimator, RejectsCongestedSamples) {
  cluster::OffsetEstimator est;
  // Clean probe: 1 ms rtt, zero true offset.
  ASSERT_TRUE(est.sample(0, 500'000, 1'000'000));
  const std::int64_t clean = est.offset_ns();
  // Congested probe: 10 ms rtt with the peer answering early — the naive
  // midpoint sample would be wildly wrong. Must be rejected (rtt > 1.5x min).
  EXPECT_FALSE(
      est.sample(10'000'000, 10'500'000, 20'000'000));
  EXPECT_EQ(est.offset_ns(), clean);
  EXPECT_EQ(est.samples(), 1u);
}

TEST(OffsetEstimator, TracksNegativeOffset) {
  // Peer clock runs 2 ms behind.
  cluster::OffsetEstimator est;
  std::int64_t t = 0;
  for (int i = 0; i < 8; ++i) {
    est.sample(t, t + 100'000 - 2'000'000, t + 200'000);
    t += 1'000'000;
  }
  EXPECT_NEAR(static_cast<double>(est.offset_ns()), -2'000'000.0, 1000.0);
}

// --- Prometheus output ------------------------------------------------------

TEST(Prometheus, SingleProcessTextIsSortedAcrossKinds) {
  Registry reg;
  reg.gauge("zeta.gauge").set(-3);
  reg.counter("alpha.count").add(2);
  Histogram& h = reg.histogram("mid.hist");
  h.observe(0);
  h.observe(3);  // bucket 2: [2, 4)
  const std::string expected =
      "# TYPE alpha_count counter\n"
      "alpha_count 2\n"
      "# TYPE mid_hist histogram\n"
      "mid_hist_bucket{le=\"1\"} 1\n"
      "mid_hist_bucket{le=\"4\"} 2\n"
      "mid_hist_bucket{le=\"+Inf\"} 2\n"
      "mid_hist_sum 3\n"
      "mid_hist_count 2\n"
      "# TYPE zeta_gauge gauge\n"
      "zeta_gauge -3\n";
  EXPECT_EQ(reg.prometheus_text(), expected);
  // Scrapes are deterministic: same registry, same bytes.
  EXPECT_EQ(reg.prometheus_text(), expected);
}

TEST(Prometheus, ClusterRollupLabelsEveryRank) {
  MetricSample count;
  count.name = "mpp.messages";
  count.kind = MetricSample::Kind::kCounter;
  MetricSample gauge;
  gauge.name = "net.offset";
  gauge.kind = MetricSample::Kind::kGauge;

  std::vector<cluster::RankMetrics> ranks(2);
  ranks[0].rank = 0;
  count.value = 10;
  ranks[0].samples = {count};
  ranks[1].rank = 1;
  count.value = 20;
  gauge.value = -7;
  ranks[1].samples = {count, gauge};

  const std::string expected =
      "# TYPE mpp_messages counter\n"
      "mpp_messages{rank=\"0\"} 10\n"
      "mpp_messages{rank=\"1\"} 20\n"
      "# TYPE net_offset gauge\n"
      "net_offset{rank=\"1\"} -7\n";
  EXPECT_EQ(cluster::cluster_prometheus_text(ranks), expected);
}

TEST(Prometheus, ClusterRollupLabelsHistogramBuckets) {
  MetricSample hist;
  hist.name = "lat";
  hist.kind = MetricSample::Kind::kHistogram;
  hist.count = 1;
  hist.sum = 3;
  hist.buckets.assign(64, 0);
  hist.buckets[2] = 1;  // one observation in [2, 4)
  std::vector<cluster::RankMetrics> ranks(1);
  ranks[0].rank = 2;
  ranks[0].samples = {hist};
  const std::string text = cluster::cluster_prometheus_text(ranks);
  EXPECT_NE(text.find("lat_bucket{rank=\"2\",le=\"4\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_bucket{rank=\"2\",le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("lat_sum{rank=\"2\"} 3"), std::string::npos);
  EXPECT_NE(text.find("lat_count{rank=\"2\"} 1"), std::string::npos);
}

TEST(Prometheus, RegistrySamplesMatchLiveValues) {
  Registry reg;
  reg.counter("c").add(5);
  reg.gauge("g").set(9);
  const std::vector<MetricSample> samples = reg.samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].name, "c");
  EXPECT_EQ(samples[0].value, 5);
  EXPECT_EQ(samples[1].name, "g");
  EXPECT_EQ(samples[1].value, 9);
}

// --- Flight recorder --------------------------------------------------------

class FlightTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("peachy-flight-" + std::to_string(::getpid()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    FlightRecorder::global().clear();
    FlightRecorder::global().set_dump_dir(dir_.string());
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST_F(FlightTest, EmptyRingDumpsNothing) {
  EXPECT_EQ(FlightRecorder::global().dump("test"), "");
}

TEST_F(FlightTest, DumpWritesRankNamedJson) {
  FlightRecorder& fr = FlightRecorder::global();
  fr.set_identity(3);
  fr.note("net.retransmit", 1, 4, 100);
  fr.note("net.peer_suspected", 2);
  const std::string path = fr.dump("peer-died");
  ASSERT_NE(path, "");
  EXPECT_NE(path.find("flight-3.json"), std::string::npos) << path;
  const std::string text = slurp(path);
  EXPECT_NE(text.find("\"reason\":\"peer-died\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"rank\":3"), std::string::npos);
  EXPECT_NE(text.find("net.retransmit"), std::string::npos);
  EXPECT_NE(text.find("net.peer_suspected"), std::string::npos);
  EXPECT_EQ(fr.total_notes(), 2u);
}

TEST_F(FlightTest, RingKeepsNewestEvents) {
  FlightRecorder& fr = FlightRecorder::global();
  fr.set_identity(0);
  const std::size_t n = FlightRecorder::kCapacity + 100;
  for (std::size_t i = 0; i < n; ++i)
    fr.note("evt", static_cast<std::int64_t>(i));
  EXPECT_EQ(fr.total_notes(), n);
  const std::string text = slurp(fr.dump("wrap"));
  // The oldest surviving entry is n - kCapacity; entry 0 was overwritten.
  EXPECT_EQ(text.find("\"args\":[0,0,0,0]"), std::string::npos);
  std::ostringstream oldest;
  oldest << "\"args\":[" << (n - FlightRecorder::kCapacity) << ",0,0,0]";
  EXPECT_NE(text.find(oldest.str()), std::string::npos) << oldest.str();
}

TEST_F(FlightTest, NotesAreSafeFromConcurrentThreads) {
  FlightRecorder& fr = FlightRecorder::global();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&fr, t] {
      for (int i = 0; i < 2000; ++i) fr.note("concurrent", t, i);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(fr.total_notes(), 8000u);
  EXPECT_NE(fr.dump("stress"), "");
}

}  // namespace
}  // namespace peachy::obs
