#include "sandpile/soc.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace peachy::sandpile {
namespace {

TEST(DropGrain, NoAvalancheBelowThreshold) {
  Field f(8, 8);
  const Avalanche av = drop_grain(f, 3, 3);
  EXPECT_EQ(av.size, 0);
  EXPECT_EQ(av.area, 0);
  EXPECT_EQ(av.duration, 0);
  EXPECT_EQ(f.at(3, 3), 1u);
}

TEST(DropGrain, SingleToppleAvalanche) {
  Field f(8, 8);
  f.at(3, 3) = 3;
  const Avalanche av = drop_grain(f, 3, 3);
  EXPECT_EQ(av.size, 1);
  EXPECT_EQ(av.area, 1);
  EXPECT_EQ(av.duration, 1);
  EXPECT_EQ(av.lost, 0);
  EXPECT_EQ(f.at(3, 3), 0u);
  EXPECT_EQ(f.at(2, 3), 1u);
}

TEST(DropGrain, FieldStableAfterDrop) {
  Field f = max_stable_pile(16, 16);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const int y = static_cast<int>(rng.uniform_int(0, 15));
    const int x = static_cast<int>(rng.uniform_int(0, 15));
    drop_grain(f, y, x);
    ASSERT_TRUE(f.is_stable());
  }
}

TEST(DropGrain, GrainConservedIntoSink) {
  Field f = max_stable_pile(8, 8);
  const std::int64_t before = f.interior_grains() + f.sink_grains();
  const Avalanche av = drop_grain(f, 0, 0);  // corner: guaranteed losses
  EXPECT_EQ(f.interior_grains() + f.sink_grains(), before + 1);
  EXPECT_GT(av.lost, 0);
}

TEST(DropGrain, MatchesReferenceFixedPoint) {
  Field a = max_stable_pile(12, 12);
  Field b = a;
  drop_grain(a, 5, 5);
  ++b.at(5, 5);
  stabilize_reference(b);
  EXPECT_TRUE(a.same_interior(b));
}

TEST(DropGrain, MaxStableFullCascade) {
  // Dropping on the all-3s pile topples at least the connected component
  // reached by the cascade; area must exceed 1 and duration the manhattan
  // radius to the border.
  Field f = max_stable_pile(9, 9);
  const Avalanche av = drop_grain(f, 4, 4);
  EXPECT_GT(av.area, 9);
  EXPECT_GE(av.duration, 4);
  EXPECT_GE(av.size, av.area);
}

TEST(DropGrain, OutOfBoundsThrows) {
  Field f(4, 4);
  EXPECT_THROW(drop_grain(f, -1, 0), Error);
  EXPECT_THROW(drop_grain(f, 0, 4), Error);
}

TEST(DriveToCriticality, ReachesStationaryDensity) {
  Field f(24, 24);
  Rng rng(7);
  drive_to_criticality(f, 20000, rng);
  // The 2-D BTW stationary state has mean grain density ~2.12.
  const double density = static_cast<double>(f.interior_grains()) /
                         (24.0 * 24.0);
  EXPECT_GT(density, 1.9);
  EXPECT_LT(density, 2.4);
  EXPECT_TRUE(f.is_stable());
}

TEST(DriveToCriticality, DeterministicInSeed) {
  Field a(12, 12), b(12, 12);
  Rng ra(3), rb(3);
  const std::int64_t ta = drive_to_criticality(a, 2000, ra);
  const std::int64_t tb = drive_to_criticality(b, 2000, rb);
  EXPECT_EQ(ta, tb);
  EXPECT_TRUE(a.same_interior(b));
}

TEST(SampleAvalanches, HeavyTailAtCriticality) {
  Field f(32, 32);
  Rng rng(11);
  drive_to_criticality(f, 30000, rng);
  const auto avalanches = sample_avalanches(f, 3000, rng);
  ASSERT_EQ(avalanches.size(), 3000u);
  std::vector<std::int64_t> sizes;
  for (const Avalanche& a : avalanches) sizes.push_back(a.size);
  std::sort(sizes.begin(), sizes.end());
  const std::int64_t median = sizes[sizes.size() / 2];
  const std::int64_t max = sizes.back();
  // Criticality: the largest avalanche dwarfs the median (heavy tail).
  EXPECT_GE(max, 20 * std::max<std::int64_t>(median, 1));
}

TEST(LogBinned, BinsAndDensities) {
  std::int64_t zeros = 0;
  const auto bins = log_binned({0, 1, 1, 2, 3, 4, 7, 8}, &zeros);
  EXPECT_EQ(zeros, 1);
  ASSERT_EQ(bins.size(), 4u);  // [1,2) [2,4) [4,8) [8,16)
  EXPECT_EQ(bins[0].count, 2);
  EXPECT_EQ(bins[1].count, 2);
  EXPECT_EQ(bins[2].count, 2);
  EXPECT_EQ(bins[3].count, 1);
  // density = count / (positives * width); positives = 7.
  EXPECT_NEAR(bins[0].density, 2.0 / 7.0, 1e-12);
  EXPECT_NEAR(bins[2].density, 2.0 / (7.0 * 4.0), 1e-12);
}

TEST(LogBinned, RejectsNegatives) {
  EXPECT_THROW(log_binned({1, -2, 3}), Error);
}

TEST(PowerLawExponent, RecoversKnownSlope) {
  // Construct bins whose density is exactly center^-1.5.
  std::vector<LogBin> bins;
  for (std::int64_t lo = 1; lo <= 1 << 12; lo *= 2) {
    LogBin b;
    b.lo = lo;
    b.hi = 2 * lo;
    b.count = 1000;  // above min_count
    const double center = std::sqrt(static_cast<double>(lo) * (2.0 * lo));
    b.density = std::pow(center, -1.5);
    bins.push_back(b);
  }
  EXPECT_NEAR(power_law_exponent(bins), 1.5, 1e-9);
}

TEST(PowerLawExponent, NeedsTwoBins) {
  std::vector<LogBin> bins(1);
  bins[0] = {1, 2, 100, 0.5};
  EXPECT_THROW(power_law_exponent(bins), Error);
}

TEST(Criticality, AvalancheSizesFollowPowerLaw) {
  // The headline SOC result: at criticality the avalanche-size
  // distribution is a power law with tau roughly 1.0-1.4 (finite-size
  // effects widen the window on small grids).
  Field f(48, 48);
  Rng rng(2024);
  drive_to_criticality(f, 60000, rng);
  const auto avalanches = sample_avalanches(f, 8000, rng);
  std::vector<std::int64_t> sizes;
  for (const Avalanche& a : avalanches)
    if (a.size > 0) sizes.push_back(a.size);
  const auto bins = log_binned(sizes);
  const double tau = power_law_exponent(bins, 20);
  EXPECT_GT(tau, 0.8);
  EXPECT_LT(tau, 1.6);
}

}  // namespace
}  // namespace peachy::sandpile
