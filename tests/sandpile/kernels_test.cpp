#include "sandpile/kernels.hpp"

#include <gtest/gtest.h>

#include "sandpile/field.hpp"

namespace peachy::sandpile {
namespace {

pap::Tile whole(const Field& f) {
  pap::Tile t;
  t.y0 = 0;
  t.x0 = 0;
  t.h = f.height();
  t.w = f.width();
  return t;
}

TEST(SyncEngine, MatchesFig2Semantics) {
  // next(y,x) = cur%4 + left/4 + right/4 + up/4 + down/4.
  Field f(3, 3);
  f.at(1, 1) = 11;
  f.at(0, 1) = 5;
  SyncEngine e(f);
  EXPECT_TRUE(e.compute_tile(whole(f)));
  e.swap_buffers();
  EXPECT_EQ(f.at(1, 1), 11u % 4 + 5u / 4);  // keeps 3, gets 1 from above
  EXPECT_EQ(f.at(0, 1), 5u % 4 + 11u / 4);  // keeps 1, gets 2 from below
  EXPECT_EQ(f.at(0, 0), 5u / 4);            // left neighbour of the 5
  EXPECT_EQ(f.at(2, 2), 0u);
}

TEST(SyncEngine, ReportsNoChangeOnStableTile) {
  Field f = max_stable_pile(6, 6);
  SyncEngine e(f);
  EXPECT_FALSE(e.compute_tile(whole(f)));
}

TEST(SyncEngine, BorderLossesGoToSink) {
  // A toppling corner cell sends 2 of 4 shares out of the grid.
  Field f(2, 2);
  f.at(0, 0) = 4;
  SyncEngine e(f);
  e.compute_tile(whole(f));
  e.swap_buffers();
  EXPECT_EQ(f.interior_grains(), 2);  // two grains lost to the sink frame
}

TEST(SyncEngine, VectorPathIdenticalToGenericPath) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Field a = sparse_random_pile(33, 47, 0.3, 4, 60, seed);
    Field b = a;
    SyncEngine ea(a), eb(b);
    // Drive several full iterations through both code paths.
    for (int iter = 0; iter < 10; ++iter) {
      const bool ca = ea.compute_tile(whole(a));
      const bool cb = eb.compute_tile_vector(whole(b));
      EXPECT_EQ(ca, cb) << "iter " << iter;
      ea.swap_buffers();
      eb.swap_buffers();
      ASSERT_TRUE(a.same_interior(b)) << "iter " << iter << " seed " << seed;
    }
  }
}

TEST(SyncEngine, VectorPathOnSubTiles) {
  Field a = sparse_random_pile(32, 32, 0.4, 4, 30, 9);
  Field b = a;
  SyncEngine ea(a), eb(b);
  pap::TileGrid tiles(32, 32, 8, 8);
  for (int iter = 0; iter < 5; ++iter) {
    for (int i = 0; i < tiles.count(); ++i) {
      ea.compute_tile(tiles.tile(i));
      eb.compute_tile_vector(tiles.tile(i));
    }
    ea.swap_buffers();
    eb.swap_buffers();
    ASSERT_TRUE(a.same_interior(b)) << "iter " << iter;
  }
}

TEST(SyncEngine, RepeatedSyncIterationsReachReferenceFixedPoint) {
  Field f = center_pile(17, 17, 1000);
  Field expected = f;
  stabilize_reference(expected);
  SyncEngine e(f);
  int iterations = 0;
  while (e.compute_tile(whole(f))) {
    e.swap_buffers();
    ASSERT_LT(++iterations, 100000);
  }
  e.swap_buffers();
  EXPECT_TRUE(f.same_interior(expected));
}

TEST(AsyncEngine, SweepMatchesFig2Semantics) {
  Field f(3, 3);
  f.at(1, 1) = 11;
  AsyncEngine e(f);
  EXPECT_TRUE(e.sweep_tile(whole(f)));
  EXPECT_EQ(f.at(1, 1), 3u);
  EXPECT_EQ(f.at(0, 1), 2u);
  EXPECT_EQ(f.at(1, 0), 2u);
  EXPECT_EQ(f.at(1, 2), 2u);
  EXPECT_EQ(f.at(2, 1), 2u);
}

TEST(AsyncEngine, SweepIsInPlaceAndOrderDependent) {
  // Row-major sweep: a topple can cascade within the same sweep (cells after
  // the toppled one see the new grains immediately).
  Field f(1, 3);
  f.at(0, 0) = 4;
  f.at(0, 1) = 3;
  AsyncEngine e(f);
  e.sweep_tile(whole(f));
  // (0,0) topples first making (0,1) hold 4, which topples in the same sweep.
  EXPECT_EQ(f.at(0, 1), 0u);
  EXPECT_EQ(f.at(0, 2), 1u);
}

TEST(AsyncEngine, SweepStableReturnsFalse) {
  Field f = max_stable_pile(4, 4);
  AsyncEngine e(f);
  EXPECT_FALSE(e.sweep_tile(whole(f)));
}

TEST(AsyncEngine, DrainStabilizesTileLocally) {
  Field f = center_pile(9, 9, 300);
  Field expected = f;
  stabilize_reference(expected);
  AsyncEngine e(f);
  EXPECT_TRUE(e.drain_tile(whole(f)));
  EXPECT_TRUE(f.is_stable());
  EXPECT_TRUE(f.same_interior(expected));
}

TEST(AsyncEngine, AsyncDepositsIntoSinkFrame) {
  Field f(2, 2);
  f.at(0, 0) = 8;
  AsyncEngine e(f);
  e.drain_tile(whole(f));
  const std::int64_t total = f.interior_grains() + f.sink_grains();
  EXPECT_EQ(total, 8);         // async never destroys grains
  EXPECT_GT(f.sink_grains(), 0);
}

TEST(Engines, SyncAndAsyncAgreeOnFixedPoint) {
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    Field sync_f = sparse_random_pile(21, 27, 0.3, 4, 50, seed);
    Field async_f = sync_f;

    SyncEngine se(sync_f);
    while (se.compute_tile(whole(sync_f))) se.swap_buffers();
    se.swap_buffers();

    AsyncEngine ae(async_f);
    ae.drain_tile(whole(async_f));

    EXPECT_TRUE(sync_f.same_interior(async_f)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace peachy::sandpile
