#include "sandpile/theory.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "sandpile/field.hpp"

namespace peachy::sandpile {
namespace {

TEST(Theory, AddAndSubtract) {
  Field a = uniform_pile(3, 3, 2);
  Field b = uniform_pile(3, 3, 1);
  const Field sum = add(a, b);
  EXPECT_EQ(sum.count_cells_with(3), 9);
  const Field diff = subtract(sum, b);
  EXPECT_TRUE(diff.same_interior(a));
}

TEST(Theory, SubtractUnderflowThrows) {
  Field a = uniform_pile(3, 3, 1);
  Field b = uniform_pile(3, 3, 2);
  EXPECT_THROW(subtract(a, b), Error);
}

TEST(Theory, ShapeMismatchThrows) {
  Field a(3, 3), b(3, 4);
  EXPECT_THROW(add(a, b), Error);
  EXPECT_THROW(subtract(a, b), Error);
}

TEST(Theory, ScaleMultiplies) {
  const Field f = scale(uniform_pile(2, 2, 3), 2);
  EXPECT_EQ(f.count_cells_with(6), 4);
}

TEST(Theory, GroupAddStabilizes) {
  const Field m = max_stable_pile(8, 8);
  const Field sum = group_add(m, m);
  EXPECT_TRUE(sum.is_stable());
}

TEST(Theory, GroupAddIsCommutative) {
  const Field a = group_add(max_stable_pile(12, 12),
                            uniform_pile(12, 12, 2));
  Field x = sparse_random_pile(12, 12, 0.5, 1, 3, 4);
  stabilize_reference(x);
  EXPECT_TRUE(group_add(a, x).same_interior(group_add(x, a)));
}

TEST(Theory, GroupAddIsAssociativeOnStableConfigs) {
  Field a = sparse_random_pile(10, 10, 0.6, 1, 3, 1);
  Field b = sparse_random_pile(10, 10, 0.6, 1, 3, 2);
  Field c = sparse_random_pile(10, 10, 0.6, 1, 3, 3);
  stabilize_reference(a);
  stabilize_reference(b);
  stabilize_reference(c);
  const Field left = group_add(group_add(a, b), c);
  const Field right = group_add(a, group_add(b, c));
  EXPECT_TRUE(left.same_interior(right));
}

TEST(Theory, IdentityIsStableAndIdempotent) {
  const Field id = group_identity(16, 16);
  EXPECT_TRUE(id.is_stable());
  EXPECT_TRUE(group_add(id, id).same_interior(id));
}

TEST(Theory, IdentityIsNeutralOnRecurrentConfigs) {
  const Field id = group_identity(12, 12);
  // Stabilizations of configurations >= the max-stable one are recurrent.
  Field r = uniform_pile(12, 12, 6);
  stabilize_reference(r);
  EXPECT_TRUE(group_add(r, id).same_interior(r));
}

TEST(Theory, IdentityIsRecurrent) {
  EXPECT_TRUE(is_recurrent(group_identity(12, 12)));
}

TEST(Theory, IdentityHasFourFoldSymmetry) {
  const int n = 14;
  const Field id = group_identity(n, n);
  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x) {
      EXPECT_EQ(id.at(y, x), id.at(n - 1 - y, x));
      EXPECT_EQ(id.at(y, x), id.at(y, n - 1 - x));
    }
}

TEST(Theory, BurningTestRejectsAllZeros) {
  // The all-zero configuration is famously non-recurrent.
  EXPECT_FALSE(is_recurrent(Field(8, 8)));
}

TEST(Theory, BurningTestAcceptsMaxStable) {
  EXPECT_TRUE(is_recurrent(max_stable_pile(8, 8)));
}

TEST(Theory, BurningTestRequiresStableInput) {
  Field f(4, 4);
  f.at(1, 1) = 10;
  EXPECT_THROW(is_recurrent(f), Error);
}

TEST(Theory, StabilizedLargeUniformIsRecurrent) {
  Field f = uniform_pile(10, 10, 8);
  stabilize_reference(f);
  EXPECT_TRUE(is_recurrent(f));
}

}  // namespace
}  // namespace peachy::sandpile
