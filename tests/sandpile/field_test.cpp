#include "sandpile/field.hpp"

#include <gtest/gtest.h>

#include "core/colormap.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"

namespace peachy::sandpile {
namespace {

TEST(Field, StartsEmptyAndStable) {
  Field f(8, 8);
  EXPECT_EQ(f.interior_grains(), 0);
  EXPECT_EQ(f.sink_grains(), 0);
  EXPECT_TRUE(f.is_stable());
}

TEST(Field, PaddedFrameSurroundsInterior) {
  Field f(4, 6);
  EXPECT_EQ(f.padded().height(), 6);
  EXPECT_EQ(f.padded().width(), 8);
  f.at(0, 0) = 7;
  EXPECT_EQ(f.padded()(1, 1), 7u);
}

TEST(Field, RejectsEmptyShapes) {
  EXPECT_THROW(Field(0, 5), Error);
  EXPECT_THROW(Field(5, 0), Error);
}

TEST(Field, StabilityThreshold) {
  Field f(3, 3);
  f.at(1, 1) = 3;
  EXPECT_TRUE(f.is_stable());
  f.at(1, 1) = 4;
  EXPECT_FALSE(f.is_stable());
}

TEST(Field, CountCellsWith) {
  Field f(2, 2);
  f.at(0, 0) = 1;
  f.at(0, 1) = 1;
  f.at(1, 0) = 3;
  EXPECT_EQ(f.count_cells_with(1), 2);
  EXPECT_EQ(f.count_cells_with(3), 1);
  EXPECT_EQ(f.count_cells_with(0), 1);
}

TEST(Field, RenderUsesPalette) {
  Field f(2, 2);
  f.at(0, 0) = 0;
  f.at(0, 1) = 1;
  f.at(1, 0) = 2;
  f.at(1, 1) = 3;
  const Image img = f.render();
  EXPECT_EQ(img(0, 0), sandpile_color(0));
  EXPECT_EQ(img(0, 1), sandpile_color(1));
  EXPECT_EQ(img(1, 0), sandpile_color(2));
  EXPECT_EQ(img(1, 1), sandpile_color(3));
}

TEST(Field, SameInteriorIgnoresSink) {
  Field a(3, 3), b(3, 3);
  a.at(1, 1) = 2;
  b.at(1, 1) = 2;
  b.padded()(0, 0) = 99;  // sink corner differs
  EXPECT_TRUE(a.same_interior(b));
  EXPECT_FALSE(a == b);
  b.at(1, 1) = 3;
  EXPECT_FALSE(a.same_interior(b));
}

TEST(InitialConfigs, CenterPile) {
  const Field f = center_pile(9, 9, 25000);
  EXPECT_EQ(f.at(4, 4), 25000u);
  EXPECT_EQ(f.interior_grains(), 25000);
}

TEST(InitialConfigs, UniformPile) {
  const Field f = uniform_pile(5, 7, 4);
  EXPECT_EQ(f.interior_grains(), 5 * 7 * 4);
  EXPECT_EQ(f.count_cells_with(4), 35);
}

TEST(InitialConfigs, MaxStableIsStable) {
  const Field f = max_stable_pile(6, 6);
  EXPECT_TRUE(f.is_stable());
  EXPECT_EQ(f.count_cells_with(3), 36);
}

TEST(InitialConfigs, SparseRandomDeterministic) {
  const Field a = sparse_random_pile(32, 32, 0.1, 8, 64, 7);
  const Field b = sparse_random_pile(32, 32, 0.1, 8, 64, 7);
  EXPECT_TRUE(a.same_interior(b));
  const Field c = sparse_random_pile(32, 32, 0.1, 8, 64, 8);
  EXPECT_FALSE(a.same_interior(c));
}

TEST(InitialConfigs, SparseRandomDensityRespected) {
  const Field f = sparse_random_pile(100, 100, 0.2, 10, 10, 3);
  const std::int64_t loaded = 10000 - f.count_cells_with(0);
  EXPECT_NEAR(static_cast<double>(loaded), 2000.0, 150.0);
  EXPECT_EQ(f.interior_grains(), loaded * 10);
}

TEST(InitialConfigs, SparseRandomValidation) {
  EXPECT_THROW(sparse_random_pile(8, 8, -0.1, 1, 2, 0), Error);
  EXPECT_THROW(sparse_random_pile(8, 8, 1.5, 1, 2, 0), Error);
  EXPECT_THROW(sparse_random_pile(8, 8, 0.5, 5, 2, 0), Error);
}

TEST(StabilizeReference, SingleTopple) {
  Field f(3, 3);
  f.at(1, 1) = 4;
  const std::int64_t topples = stabilize_reference(f);
  EXPECT_EQ(topples, 1);
  EXPECT_EQ(f.at(1, 1), 0u);
  EXPECT_EQ(f.at(0, 1), 1u);
  EXPECT_EQ(f.at(2, 1), 1u);
  EXPECT_EQ(f.at(1, 0), 1u);
  EXPECT_EQ(f.at(1, 2), 1u);
  EXPECT_TRUE(f.is_stable());
}

TEST(StabilizeReference, PaperExampleElevenGrains) {
  // Fig. 2 narrative: a cell with 11 grains gives 2 to each neighbour and
  // keeps 3.
  Field f(3, 3);
  f.at(1, 1) = 11;
  stabilize_reference(f);
  EXPECT_EQ(f.at(1, 1), 3u);
  EXPECT_EQ(f.at(0, 1), 2u);
  EXPECT_EQ(f.at(1, 0), 2u);
  EXPECT_EQ(f.at(1, 2), 2u);
  EXPECT_EQ(f.at(2, 1), 2u);
}

TEST(StabilizeReference, GrainsConservedPlusSink) {
  Field f = center_pile(33, 33, 25000);
  const std::int64_t before = f.interior_grains();
  stabilize_reference(f);
  EXPECT_TRUE(f.is_stable());
  EXPECT_EQ(f.interior_grains() + f.sink_grains(), before);
  EXPECT_GT(f.sink_grains(), 0);  // 25000 grains overflow a 33x33 grid
}

TEST(StabilizeReference, SmallPileNeverReachesSink) {
  // 4 grains in the middle of a large grid cannot reach the border.
  Field f = center_pile(65, 65, 4);
  stabilize_reference(f);
  EXPECT_EQ(f.sink_grains(), 0);
  EXPECT_EQ(f.interior_grains(), 4);
}

TEST(StabilizeReference, AlreadyStableIsNoop) {
  Field f = max_stable_pile(8, 8);
  EXPECT_EQ(stabilize_reference(f), 0);
}

TEST(StabilizeReference, SymmetryOfCenterPile) {
  // The BTW fixed point of a centered pile is 4-fold symmetric.
  Field f = center_pile(31, 31, 10000);
  stabilize_reference(f);
  for (int y = 0; y < 31; ++y)
    for (int x = 0; x < 31; ++x) {
      EXPECT_EQ(f.at(y, x), f.at(30 - y, x));
      EXPECT_EQ(f.at(y, x), f.at(y, 30 - x));
      EXPECT_EQ(f.at(y, x), f.at(x, y));
    }
}

// Dhar's abelian property: stabilizing in a randomized order reaches the
// same fixed point as the deterministic worklist.
class AbelianPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AbelianPropertyTest, RandomToppleOrderReachesSameFixedPoint) {
  const std::uint64_t seed = GetParam();
  Field initial = sparse_random_pile(24, 24, 0.25, 4, 40, seed);
  Field expected = initial;
  stabilize_reference(expected);

  // Randomized stabilization: repeatedly pick a random unstable cell.
  Field f = initial;
  Rng rng(seed * 7919 + 1);
  auto& g = f.padded();
  for (;;) {
    std::vector<std::pair<int, int>> unstable;
    for (int y = 0; y < f.height(); ++y)
      for (int x = 0; x < f.width(); ++x)
        if (f.at(y, x) >= kTopple) unstable.emplace_back(y, x);
    if (unstable.empty()) break;
    const auto [y, x] =
        unstable[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(unstable.size()) - 1))];
    const Cell grains = g(y + 1, x + 1);
    const Cell share = grains / kTopple;
    g(y + 1, x + 1) = grains % kTopple;
    g(y, x + 1) += share;
    g(y + 2, x + 1) += share;
    g(y + 1, x) += share;
    g(y + 1, x + 2) += share;
  }
  EXPECT_TRUE(f.same_interior(expected)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AbelianPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace peachy::sandpile
