#include "sandpile/variants.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>

#include "sandpile/field.hpp"

namespace peachy::sandpile {
namespace {

// --- The central property: every variant reaches the reference fixed point
// (Dhar's theorem makes them all legal computation orders). Swept over
// variants x initial configurations x tile sizes.

struct ConfigCase {
  const char* name;
  Field (*make)();
};

Field make_center() { return center_pile(40, 40, 3000); }
Field make_uniform6() { return uniform_pile(24, 24, 6); }
Field make_sparse() { return sparse_random_pile(40, 40, 0.15, 8, 64, 99); }
Field make_non_square() { return sparse_random_pile(26, 42, 0.3, 4, 32, 5); }
Field make_stable() { return max_stable_pile(16, 16); }

const ConfigCase kConfigs[] = {
    {"center", make_center},       {"uniform6", make_uniform6},
    {"sparse", make_sparse},       {"non_square", make_non_square},
    {"stable", make_stable},
};

class VariantEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<Variant, int, int>> {};

TEST_P(VariantEquivalenceTest, ReachesReferenceFixedPoint) {
  const auto [variant, config_idx, tile] = GetParam();
  const ConfigCase& cfg = kConfigs[config_idx];

  Field expected = cfg.make();
  stabilize_reference(expected);

  Field f = cfg.make();
  VariantOptions opt;
  opt.tile_h = tile;
  opt.tile_w = tile;
  opt.threads = 2;
  const VariantOutcome out = run_variant(variant, f, opt);

  EXPECT_TRUE(out.run.stable) << to_string(variant) << " on " << cfg.name;
  EXPECT_TRUE(f.is_stable());
  EXPECT_TRUE(f.same_interior(expected))
      << to_string(variant) << " diverged on " << cfg.name << " tile " << tile;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariantsAllConfigs, VariantEquivalenceTest,
    ::testing::Combine(::testing::ValuesIn(all_variants()),
                       ::testing::Range(0, 5),
                       ::testing::Values(8, 16)),
    [](const ::testing::TestParamInfo<std::tuple<Variant, int, int>>& info) {
      std::string name = to_string(std::get<0>(info.param)) + "_" +
                         kConfigs[std::get<1>(info.param)].name + "_t" +
                         std::to_string(std::get<2>(info.param));
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(Variants, StableInputFinishesInOneIterationEagerSync) {
  Field f = max_stable_pile(16, 16);
  VariantOptions opt;
  const VariantOutcome out = run_variant(Variant::kSeqSync, f, opt);
  EXPECT_EQ(out.run.iterations, 1);
  EXPECT_TRUE(out.run.stable);
}

TEST(Variants, LazyExecutesFewerTasksOnSparseInput) {
  // A single hot spot in a big grid: the lazy variant should touch far
  // fewer tiles than the eager one.
  auto make = [] {
    Field f(128, 128);
    f.at(64, 64) = 400;
    return f;
  };
  VariantOptions opt;
  opt.tile_h = opt.tile_w = 16;

  Field eager_f = make();
  const auto eager = run_variant(Variant::kOmpTiledSync, eager_f, opt);
  Field lazy_f = make();
  const auto lazy = run_variant(Variant::kOmpLazySync, lazy_f, opt);

  EXPECT_TRUE(eager_f.same_interior(lazy_f));
  EXPECT_LT(lazy.run.tasks, eager.run.tasks / 2);
}

TEST(Variants, AsyncWaveUsesFewerIterationsThanSync) {
  // Draining tiles locally lets grains travel a whole tile per iteration
  // instead of one cell.
  Field sync_f = center_pile(64, 64, 20000);
  Field wave_f = sync_f;
  VariantOptions opt;
  opt.tile_h = opt.tile_w = 16;
  const auto sync_out = run_variant(Variant::kSeqSync, sync_f, opt);
  const auto wave_out = run_variant(Variant::kOmpLazyAsyncWave, wave_f, opt);
  EXPECT_TRUE(sync_f.same_interior(wave_f));
  EXPECT_LT(wave_out.run.iterations, sync_out.run.iterations);
}

TEST(Variants, MaxIterationsStopsEarly) {
  Field f = center_pile(64, 64, 50000);
  VariantOptions opt;
  opt.max_iterations = 5;
  const auto out = run_variant(Variant::kSeqSync, f, opt);
  EXPECT_EQ(out.run.iterations, 5);
  EXPECT_FALSE(out.run.stable);
  EXPECT_FALSE(f.is_stable());
}

TEST(Variants, TraceCapturesLazyShrinkage) {
  // Fig. 3's core observation: as the configuration settles, fewer tiles
  // are computed per iteration.
  Field f = sparse_random_pile(64, 64, 0.05, 16, 32, 17);
  TraceRecorder trace(64);
  VariantOptions opt;
  opt.tile_h = opt.tile_w = 8;
  opt.trace = &trace;
  const auto out = run_variant(Variant::kOmpLazySync, f, opt);
  ASSERT_TRUE(out.run.stable);
  const auto first = trace.iteration(0).size();
  const auto last = trace.iteration(out.run.iterations - 1).size();
  EXPECT_EQ(first, 64u);  // full first sweep over 8x8 tiles
  EXPECT_LT(last, first);
}

TEST(Variants, NonSquareTilesReachReferenceFixedPoint) {
  Field expected = sparse_random_pile(30, 46, 0.25, 4, 40, 31);
  stabilize_reference(expected);
  for (const auto [th, tw] : {std::pair{4, 16}, {16, 4}, {7, 11}}) {
    Field f = sparse_random_pile(30, 46, 0.25, 4, 40, 31);
    VariantOptions opt;
    opt.tile_h = th;
    opt.tile_w = tw;
    run_variant(Variant::kOmpLazyAsyncWave, f, opt);
    EXPECT_TRUE(f.same_interior(expected)) << th << "x" << tw;
  }
}

TEST(Variants, IterationHookObservesRun) {
  Field f = center_pile(32, 32, 500);
  int calls = 0;
  VariantOptions opt;
  opt.on_iteration = [&calls](int, bool) { ++calls; };
  const VariantOutcome out = run_variant(Variant::kOmpLazySync, f, opt);
  EXPECT_EQ(calls, out.run.iterations);
}

TEST(Variants, AllNamesDistinct) {
  std::set<std::string> names;
  for (Variant v : all_variants()) names.insert(to_string(v));
  EXPECT_EQ(names.size(), all_variants().size());
}

TEST(Variants, ThreadCountsAgree) {
  // Same fixed point regardless of the number of OpenMP threads.
  Field base = sparse_random_pile(48, 48, 0.2, 4, 40, 123);
  Field expected = base;
  stabilize_reference(expected);
  for (int threads : {1, 2, 4, 8}) {
    Field f = base;
    VariantOptions opt;
    opt.threads = threads;
    opt.tile_h = opt.tile_w = 8;
    run_variant(Variant::kOmpLazyAsyncWave, f, opt);
    EXPECT_TRUE(f.same_interior(expected)) << threads << " threads";
  }
}

}  // namespace
}  // namespace peachy::sandpile
