#include "sandpile/distributed.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "core/error.hpp"
#include "sandpile/field.hpp"

namespace peachy::sandpile {
namespace {

TEST(Distributed, ValidatesOptions) {
  const Field f = center_pile(16, 16, 100);
  DistributedOptions opt;
  opt.ranks = 0;
  EXPECT_THROW(stabilize_distributed(f, opt), Error);
  opt.ranks = 4;
  opt.halo_depth = 0;
  EXPECT_THROW(stabilize_distributed(f, opt), Error);
  opt.halo_depth = 1;
  opt.ranks = 32;  // more ranks than rows
  EXPECT_THROW(stabilize_distributed(Field(8, 8), opt), Error);
}

TEST(Distributed, SingleRankMatchesReference) {
  Field initial = center_pile(20, 20, 2000);
  Field expected = initial;
  stabilize_reference(expected);
  DistributedOptions opt;
  opt.ranks = 1;
  const DistributedResult r = stabilize_distributed(initial, opt);
  EXPECT_TRUE(r.stable);
  EXPECT_TRUE(r.field.same_interior(expected));
  EXPECT_EQ(r.comm.messages_sent, 0u);  // no neighbours to talk to
}

// Sweep ranks x halo depth over a non-trivial configuration.
class DistributedSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DistributedSweepTest, MatchesReferenceFixedPoint) {
  const auto [ranks, depth] = GetParam();
  Field initial = sparse_random_pile(36, 30, 0.25, 4, 48, 77);
  Field expected = initial;
  stabilize_reference(expected);

  DistributedOptions opt;
  opt.ranks = ranks;
  opt.halo_depth = depth;
  const DistributedResult r = stabilize_distributed(initial, opt);
  EXPECT_TRUE(r.stable);
  EXPECT_TRUE(r.field.same_interior(expected))
      << ranks << " ranks, halo depth " << depth;
  EXPECT_EQ(r.iterations, r.rounds * depth);
}

INSTANTIATE_TEST_SUITE_P(RanksByDepth, DistributedSweepTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 7),
                                            ::testing::Values(1, 2, 3, 5)));

TEST(Distributed, DeeperHaloMeansFewerRounds) {
  Field initial = center_pile(48, 48, 8000);
  DistributedOptions opt;
  opt.ranks = 4;

  opt.halo_depth = 1;
  const DistributedResult shallow = stabilize_distributed(initial, opt);
  opt.halo_depth = 4;
  const DistributedResult deep = stabilize_distributed(initial, opt);

  EXPECT_TRUE(shallow.field.same_interior(deep.field));
  EXPECT_LT(deep.rounds, shallow.rounds);
  // The comm/compute trade: fewer messages with deeper halos...
  EXPECT_LT(deep.comm.messages_sent, shallow.comm.messages_sent);
  // ...but not proportionally fewer bytes (each exchange carries k rows).
  EXPECT_GT(deep.comm.bytes_sent,
            shallow.comm.bytes_sent / 4);
}

TEST(Distributed, MaxRoundsBoundsExecution) {
  Field initial = center_pile(32, 32, 50000);
  DistributedOptions opt;
  opt.ranks = 2;
  opt.max_rounds = 3;
  const DistributedResult r = stabilize_distributed(initial, opt);
  EXPECT_FALSE(r.stable);
  EXPECT_EQ(r.rounds, 3);
}

TEST(Distributed, StableInputTerminatesInOneRound) {
  const Field initial = max_stable_pile(16, 16);
  DistributedOptions opt;
  opt.ranks = 4;
  const DistributedResult r = stabilize_distributed(initial, opt);
  EXPECT_TRUE(r.stable);
  EXPECT_EQ(r.rounds, 1);
  EXPECT_TRUE(r.field.same_interior(initial));
}

TEST(Distributed, UnevenRowPartitionWorks) {
  // 17 rows over 5 ranks: blocks of 3,4,3,4,3.
  Field initial = sparse_random_pile(17, 23, 0.3, 4, 32, 3);
  Field expected = initial;
  stabilize_reference(expected);
  DistributedOptions opt;
  opt.ranks = 5;
  opt.halo_depth = 2;
  const DistributedResult r = stabilize_distributed(initial, opt);
  EXPECT_TRUE(r.field.same_interior(expected));
}

TEST(Distributed, InputFieldIsNotModified) {
  const Field initial = center_pile(16, 16, 600);
  const Field snapshot = initial;
  DistributedOptions opt;
  opt.ranks = 2;
  stabilize_distributed(initial, opt);
  EXPECT_TRUE(initial.same_interior(snapshot));
}

}  // namespace
}  // namespace peachy::sandpile
