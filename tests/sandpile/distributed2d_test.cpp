#include "sandpile/distributed2d.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "core/error.hpp"
#include "sandpile/distributed.hpp"
#include "sandpile/field.hpp"

namespace peachy::sandpile {
namespace {

TEST(Distributed2d, ValidatesOptions) {
  const Field f = center_pile(16, 16, 100);
  Distributed2dOptions opt;
  opt.ranks_y = 0;
  EXPECT_THROW(stabilize_distributed_2d(f, opt), Error);
  opt = Distributed2dOptions{};
  opt.halo_depth = 0;
  EXPECT_THROW(stabilize_distributed_2d(f, opt), Error);
  opt = Distributed2dOptions{};
  opt.ranks_x = 32;  // more columns of ranks than grid columns
  EXPECT_THROW(stabilize_distributed_2d(Field(8, 8), opt), Error);
}

TEST(Distributed2d, SingleRankMatchesReference) {
  Field initial = center_pile(20, 20, 2000);
  Field expected = initial;
  stabilize_reference(expected);
  Distributed2dOptions opt;
  opt.ranks_y = opt.ranks_x = 1;
  const Distributed2dResult r = stabilize_distributed_2d(initial, opt);
  EXPECT_TRUE(r.stable);
  EXPECT_TRUE(r.field.same_interior(expected));
  EXPECT_EQ(r.comm.messages_sent, 0u);
}

// The crucial sweep: process-grid shape x halo depth. Corner propagation
// (two-phase exchange) is only exercised for k >= 2 on grids with both
// dimensions > 1, so those cases matter most.
class Distributed2dSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Distributed2dSweep, MatchesReferenceFixedPoint) {
  const auto [py, px, depth] = GetParam();
  Field initial = sparse_random_pile(34, 38, 0.25, 4, 48, 555);
  Field expected = initial;
  stabilize_reference(expected);

  Distributed2dOptions opt;
  opt.ranks_y = py;
  opt.ranks_x = px;
  opt.halo_depth = depth;
  const Distributed2dResult r = stabilize_distributed_2d(initial, opt);
  EXPECT_TRUE(r.stable);
  EXPECT_TRUE(r.field.same_interior(expected))
      << py << "x" << px << " ranks, halo " << depth;
  EXPECT_EQ(r.iterations, r.rounds * depth);
}

INSTANTIATE_TEST_SUITE_P(GridByDepth, Distributed2dSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 2, 3, 5)));

TEST(Distributed2d, CornerPropagationAcrossDiagonal) {
  // A pile near a 4-rank corner: its avalanche must cross into the
  // diagonal rank's block, which only works if corners travel through the
  // two-phase exchange.
  Field initial(16, 16);
  initial.at(7, 7) = 600;  // at the junction of a 2x2 decomposition
  Field expected = initial;
  stabilize_reference(expected);
  Distributed2dOptions opt;
  opt.ranks_y = opt.ranks_x = 2;
  opt.halo_depth = 3;  // k >= 2 exercises diagonal dependencies
  const Distributed2dResult r = stabilize_distributed_2d(initial, opt);
  EXPECT_TRUE(r.field.same_interior(expected));
}

TEST(Distributed2d, AgreesWith1dDecomposition) {
  Field initial = sparse_random_pile(32, 32, 0.2, 4, 40, 9);
  DistributedOptions opt1;
  opt1.ranks = 4;
  opt1.halo_depth = 2;
  Distributed2dOptions opt2;
  opt2.ranks_y = 2;
  opt2.ranks_x = 2;
  opt2.halo_depth = 2;
  const DistributedResult a = stabilize_distributed(initial, opt1);
  const Distributed2dResult b = stabilize_distributed_2d(initial, opt2);
  EXPECT_TRUE(a.field.same_interior(b.field));
}

TEST(Distributed2d, PerimeterBeatsRowVolumeOnWideGrids) {
  // Surface-to-volume: on a square grid with P ranks, a 2-D decomposition
  // moves fewer cells per round than 1-D once P is large enough.
  Field initial = center_pile(64, 64, 40000);
  DistributedOptions opt1;
  opt1.ranks = 16;
  opt1.halo_depth = 1;
  Distributed2dOptions opt2;
  opt2.ranks_y = 4;
  opt2.ranks_x = 4;
  opt2.halo_depth = 1;
  const DistributedResult a = stabilize_distributed(initial, opt1);
  const Distributed2dResult b = stabilize_distributed_2d(initial, opt2);
  EXPECT_TRUE(a.field.same_interior(b.field));
  ASSERT_EQ(a.rounds, b.rounds);  // same sync schedule
  EXPECT_LT(b.comm.bytes_sent, a.comm.bytes_sent);
}

TEST(Distributed2d, MaxRoundsBounds) {
  Field initial = center_pile(32, 32, 50000);
  Distributed2dOptions opt;
  opt.ranks_y = opt.ranks_x = 2;
  opt.max_rounds = 2;
  const Distributed2dResult r = stabilize_distributed_2d(initial, opt);
  EXPECT_FALSE(r.stable);
  EXPECT_EQ(r.rounds, 2);
}

TEST(Distributed2d, UnevenBlocksWork) {
  // 17x13 over a 3x5 grid: every block size differs.
  Field initial = sparse_random_pile(17, 13, 0.4, 4, 24, 2);
  Field expected = initial;
  stabilize_reference(expected);
  Distributed2dOptions opt;
  opt.ranks_y = 3;
  opt.ranks_x = 5;
  opt.halo_depth = 2;
  const Distributed2dResult r = stabilize_distributed_2d(initial, opt);
  EXPECT_TRUE(r.field.same_interior(expected));
}

TEST(Distributed2d, StableInputOneRound) {
  const Field initial = max_stable_pile(16, 16);
  Distributed2dOptions opt;
  opt.ranks_y = opt.ranks_x = 2;
  const Distributed2dResult r = stabilize_distributed_2d(initial, opt);
  EXPECT_TRUE(r.stable);
  EXPECT_EQ(r.rounds, 1);
  EXPECT_TRUE(r.field.same_interior(initial));
}

}  // namespace
}  // namespace peachy::sandpile
