// Kill-and-recover: a spawned distributed sandpile whose wire is severed
// mid-run must detect the dead rank, respawn the world, restore the last
// committed checkpoint, and still produce the byte-identical final grid.
// This is the end-to-end acceptance test for the whole recovery stack
// (fault injector -> failure detection -> supervision -> checkpoint).
#include <gtest/gtest.h>

#include <stdlib.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "sandpile/distributed.hpp"
#include "sandpile/distributed2d.hpp"
#include "sandpile/field.hpp"

namespace peachy::sandpile {
namespace {

// A fresh private directory per test, removed on teardown.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/peachy-recovery-XXXXXX";
    path_ = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// scripts/fault_sweep.sh varies the sever point through this env var so one
// test body covers many failure instants; a bare run uses the default.
int sweep_sever_after() {
  const char* env = std::getenv("PEACHY_FAULT_SEED");
  const int seed = env ? std::atoi(env) : 1;
  return 20 + (seed % 25) * 6;
}

TEST(Recovery, Spawned2dSeveredRankRecoversByteIdentical) {
  const Field initial = center_pile(24, 24, 1500);
  Field reference = initial;
  stabilize_reference(reference);

  Distributed2dOptions opt;
  opt.ranks_y = 2;
  opt.ranks_x = 2;
  opt.checkpoint_every = 4;
  opt.run.spawn = true;
  opt.run.transport = mpp::TransportKind::kTcp;
  opt.run.resilience.max_restarts = 3;
  opt.run.tcp.ack_timeout_ms = 20;
  opt.run.tcp.fault.seed = 7;
  opt.run.tcp.fault.sever_after = sweep_sever_after();

  const Distributed2dResult r = stabilize_distributed_2d(initial, opt);
  ASSERT_TRUE(r.stable);
  EXPECT_GE(r.restarts, 1) << "the sever never fired; the test is vacuous";
  EXPECT_TRUE(r.field.same_interior(reference))
      << "recovered grid differs from the fault-free result";
}

TEST(Recovery, Spawned1dSeveredRankRecoversByteIdentical) {
  const Field initial = sparse_random_pile(30, 30, 0.3, 2, 9, 555);
  Field reference = initial;
  stabilize_reference(reference);

  DistributedOptions opt;
  opt.ranks = 2;
  opt.checkpoint_every = 4;
  opt.run.spawn = true;
  opt.run.transport = mpp::TransportKind::kTcp;
  opt.run.resilience.max_restarts = 3;
  opt.run.tcp.ack_timeout_ms = 20;
  opt.run.tcp.fault.seed = 11;
  opt.run.tcp.fault.sever_after = 60;

  const DistributedResult r = stabilize_distributed(initial, opt);
  ASSERT_TRUE(r.stable);
  EXPECT_GE(r.restarts, 1);
  EXPECT_TRUE(r.field.same_interior(reference));
}

TEST(Recovery, CappedRunResumesFromNamedCheckpointDir) {
  // Invocation one runs 40 rounds and commits a checkpoint at round 40;
  // invocation two restores it and runs to stability — the pair must land
  // exactly where one uninterrupted run does.
  const Field initial = center_pile(48, 48, 20000);
  Field reference = initial;
  stabilize_reference(reference);

  DistributedOptions base;
  base.ranks = 3;
  base.checkpoint_every = 8;
  const DistributedResult uninterrupted = stabilize_distributed(initial, base);
  ASSERT_TRUE(uninterrupted.stable);
  ASSERT_GT(uninterrupted.rounds, 40) << "problem too small to interrupt";

  TempDir dir;
  DistributedOptions capped = base;
  capped.max_rounds = 40;
  capped.run.resilience.checkpoint_dir = dir.path();
  const DistributedResult first = stabilize_distributed(initial, capped);
  EXPECT_FALSE(first.stable);

  DistributedOptions resumed = base;
  resumed.run.resilience.checkpoint_dir = dir.path();
  const DistributedResult second = stabilize_distributed(initial, resumed);
  ASSERT_TRUE(second.stable);
  EXPECT_EQ(second.rounds, uninterrupted.rounds);
  EXPECT_TRUE(second.field.same_interior(reference));
}

TEST(Recovery, CheckpointingDoesNotPerturbTheResult) {
  // Cutting checkpoints must be invisible to the computation: same rounds,
  // same grid as the checkpoint-free run.
  const Field initial = sparse_random_pile(40, 40, 0.35, 2, 9, 321);

  DistributedOptions plain;
  plain.ranks = 4;
  plain.halo_depth = 2;
  const DistributedResult a = stabilize_distributed(initial, plain);

  DistributedOptions ckpt = plain;
  ckpt.checkpoint_every = 2;
  ckpt.run.resilience.max_restarts = 1;  // private temp checkpoint dir
  const DistributedResult b = stabilize_distributed(initial, ckpt);

  ASSERT_TRUE(a.stable);
  ASSERT_TRUE(b.stable);
  EXPECT_EQ(b.restarts, 0);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_TRUE(a.field.same_interior(b.field));
}

}  // namespace
}  // namespace peachy::sandpile
