#include "core/args.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace peachy {
namespace {

Args make(std::initializer_list<const char*> tokens,
          const std::set<std::string>& flags = {}) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return Args(static_cast<int>(argv.size()), argv.data(), flags);
}

TEST(Args, OptionWithSeparateValue) {
  const Args a = make({"--size", "512"});
  EXPECT_TRUE(a.has("size"));
  EXPECT_EQ(a.get("size", ""), "512");
  EXPECT_EQ(a.get_int("size", 0), 512);
}

TEST(Args, OptionWithEqualsValue) {
  const Args a = make({"--tile=32", "--ratio=0.5"});
  EXPECT_EQ(a.get_int("tile", 0), 32);
  EXPECT_DOUBLE_EQ(a.get_double("ratio", 0), 0.5);
}

TEST(Args, FlagsConsumeNoValue) {
  const Args a = make({"--trace", "positional"}, {"trace"});
  EXPECT_TRUE(a.has("trace"));
  ASSERT_EQ(a.positional().size(), 1u);
  EXPECT_EQ(a.positional()[0], "positional");
}

TEST(Args, DefaultsWhenAbsent) {
  const Args a = make({});
  EXPECT_FALSE(a.has("size"));
  EXPECT_EQ(a.get("size", "128"), "128");
  EXPECT_EQ(a.get_int("size", 7), 7);
  EXPECT_DOUBLE_EQ(a.get_double("x", 1.5), 1.5);
}

TEST(Args, MissingValueThrows) {
  EXPECT_THROW(make({"--size"}), Error);
}

TEST(Args, BadNumbersThrow) {
  const Args a = make({"--n=abc", "--d=1.2.3"});
  EXPECT_THROW(a.get_int("n", 0), Error);
  EXPECT_THROW(a.get_double("d", 0), Error);
}

TEST(Args, FlagQueriedAsValueThrows) {
  const Args a = make({"--trace"}, {"trace"});
  EXPECT_THROW(a.get("trace", "x"), Error);
}

TEST(Args, UnknownOptionDetection) {
  const Args a = make({"--size=1", "--typo=2", "--trace"}, {"trace"});
  const auto unknown = a.unknown_options({"size", "trace"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(Args, PositionalOrderPreserved) {
  const Args a = make({"a", "--k", "v", "b", "c"});
  ASSERT_EQ(a.positional().size(), 3u);
  EXPECT_EQ(a.positional()[0], "a");
  EXPECT_EQ(a.positional()[2], "c");
}

}  // namespace
}  // namespace peachy
