#include "core/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "core/error.hpp"

namespace peachy {
namespace {

TEST(ThreadPool, RequiresAtLeastOneThread) {
  EXPECT_THROW(ThreadPool(0), Error);
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i)
    futs.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ParallelForSmallerThanPool) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.parallel_for(3, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 7) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForDeliversExceptionExactlyOnce) {
  // Regression test for the task-runtime rewire: one failing index must
  // surface as exactly one exception on the caller, and the pool must stay
  // usable afterwards.
  ThreadPool pool(4);
  int caught = 0;
  try {
    pool.parallel_for(100, [](std::size_t i) {
      if (i == 13) throw std::runtime_error("boom");
    });
  } catch (const std::runtime_error& e) {
    ++caught;
    EXPECT_STREQ(e.what(), "boom");
  }
  EXPECT_EQ(caught, 1);

  std::atomic<int> counter{0};
  pool.parallel_for(25, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 25);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
    // Destructor must run all 50 queued tasks before joining.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ThreadCountReported) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.thread_count(), 5u);
}

}  // namespace
}  // namespace peachy
