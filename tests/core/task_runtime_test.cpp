#include "core/task_runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/error.hpp"

namespace peachy {
namespace {

TEST(TaskArena, RequiresAtLeastOneWorker) {
  EXPECT_THROW(TaskArena arena(0), Error);
}

TEST(TaskArena, LanesAreWorkersPlusCaller) {
  TaskArena arena(3);
  EXPECT_EQ(arena.workers(), 3u);
  EXPECT_EQ(arena.lanes(), 4u);
}

TEST(TaskArena, ParallelForCoversEveryIndexExactlyOnce) {
  TaskArena arena(3);
  for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                              std::size_t{1000}}) {
    std::vector<std::atomic<int>> hits(n);
    arena.parallel_for_index(
        n, [&](std::size_t i) { hits[i].fetch_add(1); }, {.grain = 1});
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(TaskArena, RangeChunksPartitionTheRange) {
  TaskArena arena(2);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  arena.parallel_for(
      103,
      [&](std::size_t lo, std::size_t hi) {
        std::lock_guard lock(mu);
        chunks.emplace_back(lo, hi);
      },
      {.grain = 10});
  std::size_t covered = 0;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_LT(lo, hi);
    EXPECT_EQ(lo % 10, 0u);  // grain-aligned chunk starts
    covered += hi - lo;
  }
  EXPECT_EQ(covered, 103u);
  EXPECT_EQ(chunks.size(), 11u);  // ceil(103 / 10)
}

TEST(TaskArena, MaxWorkersOneIsSerialAndOrdered) {
  TaskArena arena(2);
  std::vector<std::size_t> order;  // no lock needed: serial path
  arena.parallel_for_index(
      100,
      [&](std::size_t i) {
        EXPECT_EQ(TaskArena::current_lane(), 0);
        order.push_back(i);
      },
      {.max_workers = 1});
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(TaskArena::current_lane(), -1);  // only set inside loop bodies
}

TEST(TaskArena, NestedParallelForRunsInline) {
  TaskArena arena(2);
  std::atomic<int> inner_total{0};
  arena.parallel_for_index(
      4,
      [&](std::size_t) {
        const int outer_lane = TaskArena::current_lane();
        arena.parallel_for_index(10, [&](std::size_t) {
          // The nested loop must not migrate work to another lane.
          EXPECT_EQ(TaskArena::current_lane(), outer_lane);
          inner_total.fetch_add(1);
        });
      },
      {.grain = 1});
  EXPECT_EQ(inner_total.load(), 40);
}

TEST(TaskArena, ExceptionPropagatesExactlyOnceAndArenaSurvives) {
  TaskArena arena(3);
  int caught = 0;
  try {
    arena.parallel_for_index(
        256,
        [](std::size_t i) {
          if (i == 37) throw std::runtime_error("boom");
        },
        {.grain = 1});
  } catch (const std::runtime_error& e) {
    ++caught;
    EXPECT_STREQ(e.what(), "boom");
  }
  EXPECT_EQ(caught, 1);

  // The arena must be fully reusable after a failed loop.
  std::atomic<int> sum{0};
  arena.parallel_for_index(64, [&](std::size_t) { sum.fetch_add(1); },
                           {.grain = 1});
  EXPECT_EQ(sum.load(), 64);
}

TEST(TaskArena, ExceptionOnSerialPathAlsoPropagates) {
  TaskArena arena(1);
  EXPECT_THROW(arena.parallel_for_index(
                   8, [](std::size_t) { throw std::runtime_error("x"); },
                   {.max_workers = 1}),
               std::runtime_error);
}

TEST(TaskArena, CountersTrackTasksAndDispatches) {
  TaskArena arena(2);
  arena.reset_counters();
  arena.parallel_for_index(96, [](std::size_t) {}, {.grain = 1});
  const RuntimeCounters c = arena.counters();
  EXPECT_EQ(c.tasks, 96u);       // grain 1: one chunk per index
  EXPECT_EQ(c.dispatches, 1u);   // one parallel dispatch
  arena.parallel_for_index(10, [](std::size_t) {}, {.max_workers = 1});
  EXPECT_EQ(arena.counters().dispatches, 1u);  // serial path never dispatches

  arena.reset_counters();
  const RuntimeCounters zero = arena.counters();
  EXPECT_EQ(zero.tasks, 0u);
  EXPECT_EQ(zero.steals, 0u);
}

TEST(TaskArena, CounterDeltasSubtract) {
  const RuntimeCounters a{10, 4, 2};
  const RuntimeCounters b{7, 1, 1};
  const RuntimeCounters d = a - b;
  EXPECT_EQ(d.tasks, 3u);
  EXPECT_EQ(d.steals, 3u);
  EXPECT_EQ(d.dispatches, 1u);
}

TEST(TaskArena, UnbalancedChunkCostsStillCoverEverything) {
  // A few indices are ~1000x more expensive than the rest; stealing must
  // keep the result exact regardless of which lane drew the heavy ones.
  TaskArena arena(3);
  std::atomic<std::uint64_t> total{0};
  const std::size_t n = 400;
  arena.parallel_for_index(
      n,
      [&](std::size_t i) {
        const std::size_t reps = (i % 100 == 0) ? 20000 : 20;
        std::uint64_t acc = 0;
        for (std::size_t r = 0; r < reps; ++r) acc += (i + r) % 7;
        total.fetch_add(acc + 1);
      },
      {.grain = 1});
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t reps = (i % 100 == 0) ? 20000 : 20;
    std::uint64_t acc = 0;
    for (std::size_t r = 0; r < reps; ++r) acc += (i + r) % 7;
    expected += acc + 1;
  }
  EXPECT_EQ(total.load(), expected);
}

TEST(TaskArena, PostRunsDetachedTasks) {
  TaskArena arena(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) arena.post([&] { ran.fetch_add(1); });
  // post() is fire-and-forget; a parallel_for afterwards does not act as a
  // barrier for it, so spin briefly.
  for (int spin = 0; spin < 10000 && ran.load() < 16; ++spin)
    std::this_thread::yield();
  EXPECT_EQ(ran.load(), 16);
}

TEST(TaskArena, SharedArenaIsAProcessSingleton) {
  TaskArena& a = TaskArena::shared();
  TaskArena& b = TaskArena::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.workers(), 1u);
}

}  // namespace
}  // namespace peachy
