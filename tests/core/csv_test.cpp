#include "core/csv.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/error.hpp"

namespace peachy {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "peachy_csv_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST(CsvEscape, PlainFieldUntouched) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, QuotesWhenNeeded) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(SplitCsvLine, SimpleFields) {
  const auto f = split_csv_line("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
}

TEST(SplitCsvLine, EmptyFieldsPreserved) {
  const auto f = split_csv_line("a,,c,");
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[1], "");
  EXPECT_EQ(f[3], "");
}

TEST(SplitCsvLine, QuotedCommaAndEscapedQuote) {
  const auto f = split_csv_line("\"a,b\",\"say \"\"hi\"\"\",plain");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a,b");
  EXPECT_EQ(f[1], "say \"hi\"");
  EXPECT_EQ(f[2], "plain");
}

TEST_F(CsvTest, WriteReadRoundTrip) {
  {
    CsvWriter w(path("t.csv"));
    w.row({"name", "value"});
    w.row({"with,comma", "1"});
    w.row({"with \"quote\"", "2"});
  }
  const auto rows = read_csv(path("t.csv"));
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[1][0], "with,comma");
  EXPECT_EQ(rows[2][0], "with \"quote\"");
  EXPECT_EQ(rows[2][1], "2");
}

TEST_F(CsvTest, ReadSkipsEmptyLinesAndCrLf) {
  {
    std::ofstream os(path("crlf.csv"), std::ios::binary);
    os << "a,b\r\n\r\nc,d\r\n";
  }
  const auto rows = read_csv(path("crlf.csv"));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "b");
  EXPECT_EQ(rows[1][0], "c");
}

TEST_F(CsvTest, MissingFileThrows) {
  EXPECT_THROW(read_csv(path("missing.csv")), Error);
}

TEST_F(CsvTest, WriterToBadPathThrows) {
  EXPECT_THROW(CsvWriter((dir_ / "no" / "x.csv").string()), Error);
}

}  // namespace
}  // namespace peachy
