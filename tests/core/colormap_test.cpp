#include "core/colormap.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace peachy {
namespace {

TEST(SandpileColor, PaperPalette) {
  // Fig. 1: black = 0 grains, green = 1, blue = 2, red = 3.
  EXPECT_EQ(sandpile_color(0), (Rgb{0, 0, 0}));
  const Rgb one = sandpile_color(1);
  EXPECT_GT(one.g, one.r);
  EXPECT_GT(one.g, one.b);
  const Rgb two = sandpile_color(2);
  EXPECT_GT(two.b, two.r);
  EXPECT_GT(two.b, two.g);
  const Rgb three = sandpile_color(3);
  EXPECT_GT(three.r, three.g);
  EXPECT_GT(three.r, three.b);
}

TEST(SandpileColor, UnstableCellsAreWhite) {
  EXPECT_EQ(sandpile_color(4), (Rgb{255, 255, 255}));
  EXPECT_EQ(sandpile_color(25000), (Rgb{255, 255, 255}));
}

TEST(DivergingScale, EndsAndMidpoint) {
  DivergingScale scale(0.0, 10.0);
  const Rgb cold = scale(0.0);
  const Rgb hot = scale(10.0);
  const Rgb mid = scale(5.0);
  EXPECT_GT(cold.b, cold.r);   // deep blue
  EXPECT_GT(hot.r, hot.b);     // deep red
  // Near-white center (RdBu midpoint is 247,247,247).
  EXPECT_GT(mid.r, 230);
  EXPECT_GT(mid.g, 230);
  EXPECT_GT(mid.b, 230);
}

TEST(DivergingScale, ClampsOutOfRange) {
  DivergingScale scale(-1.0, 1.0);
  EXPECT_EQ(scale(-100.0), scale(-1.0));
  EXPECT_EQ(scale(100.0), scale(1.0));
}

TEST(DivergingScale, MonotoneRednessInCentralRange) {
  // The ColorBrewer RdBu ramp darkens at both extremes, so red-minus-blue
  // is only monotone away from the tails; the stripes' informative range
  // is the central band.
  DivergingScale scale(0.0, 1.0);
  int prev = -512;
  for (int i = 2; i <= 8; ++i) {
    const Rgb c = scale(i / 10.0);
    const int redness = static_cast<int>(c.r) - static_cast<int>(c.b);
    EXPECT_GE(redness, prev) << "at t=" << i / 10.0;
    prev = redness;
  }
  // Tails: cold side clearly blue, warm side clearly red.
  const Rgb cold = scale(0.05);
  const Rgb warm = scale(0.95);
  EXPECT_LT(static_cast<int>(cold.r) - static_cast<int>(cold.b), -50);
  EXPECT_GT(static_cast<int>(warm.r) - static_cast<int>(warm.b), 50);
}

TEST(DivergingScale, RequiresOrderedRange) {
  EXPECT_THROW(DivergingScale(1.0, 1.0), Error);
  EXPECT_THROW(DivergingScale(2.0, 1.0), Error);
}

TEST(DistinctColor, NegativeIndexIsBlack) {
  EXPECT_EQ(distinct_color(-1), (Rgb{0, 0, 0}));
}

TEST(DistinctColor, SmallIndicesAreDistinct) {
  for (int i = 0; i < 12; ++i)
    for (int j = i + 1; j < 12; ++j)
      EXPECT_FALSE(distinct_color(i) == distinct_color(j))
          << "colors " << i << " and " << j << " collide";
}

TEST(DistinctColor, CyclesForLargeIndices) {
  EXPECT_EQ(distinct_color(0), distinct_color(12));
  EXPECT_EQ(distinct_color(5), distinct_color(17));
}

}  // namespace
}  // namespace peachy
