#include "core/grid2d.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace peachy {
namespace {

TEST(Grid2D, DefaultConstructedIsEmpty) {
  Grid2D<int> g;
  EXPECT_EQ(g.height(), 0);
  EXPECT_EQ(g.width(), 0);
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.size(), 0u);
}

TEST(Grid2D, ConstructionFillsValue) {
  Grid2D<int> g(3, 5, 7);
  EXPECT_EQ(g.height(), 3);
  EXPECT_EQ(g.width(), 5);
  EXPECT_EQ(g.size(), 15u);
  for (int y = 0; y < 3; ++y)
    for (int x = 0; x < 5; ++x) EXPECT_EQ(g(y, x), 7);
}

TEST(Grid2D, RowMajorLayout) {
  Grid2D<int> g(2, 3, 0);
  g(0, 0) = 1;
  g(0, 2) = 3;
  g(1, 0) = 4;
  EXPECT_EQ(g.data()[0], 1);
  EXPECT_EQ(g.data()[2], 3);
  EXPECT_EQ(g.data()[3], 4);
  EXPECT_EQ(g.row(1), g.data() + 3);
}

TEST(Grid2D, AtThrowsOutOfBounds) {
  Grid2D<int> g(2, 2);
  EXPECT_THROW(g.at(-1, 0), Error);
  EXPECT_THROW(g.at(0, -1), Error);
  EXPECT_THROW(g.at(2, 0), Error);
  EXPECT_THROW(g.at(0, 2), Error);
  EXPECT_NO_THROW(g.at(1, 1));
}

TEST(Grid2D, InBounds) {
  Grid2D<int> g(4, 6);
  EXPECT_TRUE(g.in_bounds(0, 0));
  EXPECT_TRUE(g.in_bounds(3, 5));
  EXPECT_FALSE(g.in_bounds(4, 0));
  EXPECT_FALSE(g.in_bounds(0, 6));
  EXPECT_FALSE(g.in_bounds(-1, 0));
}

TEST(Grid2D, FillOverwritesEverything) {
  Grid2D<int> g(3, 3, 1);
  g.fill(9);
  EXPECT_EQ(g.sum(), 81);
}

TEST(Grid2D, SumUsesWideAccumulator) {
  Grid2D<std::uint32_t> g(100, 100, 3000000000u);
  // 10^4 cells x 3e9 overflows 32 bits; sum must not.
  EXPECT_EQ(g.sum<std::int64_t>(), static_cast<std::int64_t>(3000000000u) * 10000);
}

TEST(Grid2D, EqualityIsDeep) {
  Grid2D<int> a(2, 2, 1), b(2, 2, 1);
  EXPECT_EQ(a, b);
  b(1, 1) = 2;
  EXPECT_FALSE(a == b);
  Grid2D<int> c(2, 3, 1);
  EXPECT_FALSE(a == c);
}

TEST(Grid2D, NegativeDimensionsThrow) {
  EXPECT_THROW(Grid2D<int>(-1, 5), Error);
  EXPECT_THROW(Grid2D<int>(5, -1), Error);
}

TEST(Grid2D, ZeroByZeroIsAllowed) {
  Grid2D<int> g(0, 0);
  EXPECT_TRUE(g.empty());
}

}  // namespace
}  // namespace peachy
