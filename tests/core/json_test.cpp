#include "core/json.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"

namespace peachy::json {
namespace {

TEST(Json, ParsePrimitives) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParseNestedStructures) {
  const Value v = parse(R"({"a": [1, 2, {"b": null}], "c": "x"})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("c").as_string(), "x");
  const Array& a = v.at("a").as_array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[1].as_int(), 2);
  EXPECT_TRUE(a[2].at("b").is_null());
}

TEST(Json, StringEscapes) {
  const Value v = parse(R"("line\nbreak \"q\" \\ \t A")");
  EXPECT_EQ(v.as_string(), "line\nbreak \"q\" \\ \t A");
}

TEST(Json, UnicodeEscapeToUtf8) {
  EXPECT_EQ(parse(R"("é")").as_string(), "\xc3\xa9");    // é
  EXPECT_EQ(parse(R"("€")").as_string(), "\xe2\x82\xac"); // €
  EXPECT_EQ(parse(R"("A")").as_string(), "A");
}

TEST(Json, RoundTripThroughDump) {
  const Value v = parse(
      R"({"num": 1.5, "int": 7, "arr": [true, null, "s"], "obj": {"k": -2}})");
  const Value again = parse(v.dump());
  EXPECT_EQ(v, again);
  const Value pretty = parse(v.dump(/*indent=*/true));
  EXPECT_EQ(v, pretty);
}

TEST(Json, DumpIsCanonical) {
  // Object keys serialize sorted, so semantically equal docs dump equal.
  const Value a = parse(R"({"b": 1, "a": 2})");
  const Value b = parse(R"({"a": 2, "b": 1})");
  EXPECT_EQ(a.dump(), b.dump());
}

TEST(Json, IntegersDumpWithoutDecimals) {
  EXPECT_EQ(Value(42).dump(), "42");
  EXPECT_EQ(Value(-7).dump(), "-7");
  EXPECT_EQ(parse("1e2").dump(), "100");
}

TEST(Json, AsIntValidation) {
  EXPECT_EQ(parse("9").as_int(), 9);
  EXPECT_THROW(parse("1.5").as_int(), Error);
}

TEST(Json, TypeMismatchThrows) {
  const Value v = parse("[1]");
  EXPECT_THROW(v.as_object(), Error);
  EXPECT_THROW(v.as_string(), Error);
  EXPECT_THROW(v.at("k"), Error);
  EXPECT_THROW(parse("{}").at("missing"), Error);
}

TEST(Json, Contains) {
  const Value v = parse(R"({"k": 1})");
  EXPECT_TRUE(v.contains("k"));
  EXPECT_FALSE(v.contains("x"));
  EXPECT_FALSE(parse("[]").contains("k"));
}

TEST(Json, MalformedInputsThrow) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2",
        "{\"a\" 1}", "[1 2]", "\"bad\\escape\"", "nul", "--1"})
    EXPECT_THROW(parse(bad), Error) << bad;
}

TEST(Json, WhitespaceTolerated) {
  const Value v = parse("  {\n\t\"a\" :\r [ 1 , 2 ]\n}  ");
  EXPECT_EQ(v.at("a").as_array().size(), 2u);
}

TEST(Json, ControlCharactersEscapedOnDump) {
  const Value v(std::string("a\x01" "b"));
  EXPECT_EQ(v.dump(), "\"a\\u0001b\"");
  EXPECT_EQ(parse(v.dump()).as_string(), "a\x01" "b");
}

// Property: random documents survive dump -> parse -> dump unchanged.
class JsonFuzzTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static Value random_value(peachy::Rng& rng, int depth) {
    const int kind = static_cast<int>(rng.uniform_int(0, depth > 2 ? 3 : 5));
    switch (kind) {
      case 0: return Value(nullptr);
      case 1: return Value(rng.bernoulli(0.5));
      case 2:
        return rng.bernoulli(0.5)
                   ? Value(static_cast<std::int64_t>(rng.uniform_int(-1000000, 1000000)))
                   : Value(rng.uniform(-1e6, 1e6));
      case 3: {
        std::string s;
        const auto len = rng.uniform_int(0, 12);
        for (int i = 0; i < len; ++i)
          s += static_cast<char>(rng.uniform_int(32, 126));
        return Value(std::move(s));
      }
      case 4: {
        Array arr;
        const auto len = rng.uniform_int(0, 4);
        for (int i = 0; i < len; ++i)
          arr.push_back(random_value(rng, depth + 1));
        return Value(std::move(arr));
      }
      default: {
        Object obj;
        const auto len = rng.uniform_int(0, 4);
        for (int i = 0; i < len; ++i)
          obj["k" + std::to_string(i)] = random_value(rng, depth + 1);
        return Value(std::move(obj));
      }
    }
  }
};

TEST_P(JsonFuzzTest, DumpParseRoundTrip) {
  peachy::Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const Value v = random_value(rng, 0);
    const std::string compact = v.dump();
    const std::string pretty = v.dump(/*indent=*/true);
    EXPECT_EQ(parse(compact), v) << compact;
    EXPECT_EQ(parse(pretty), v) << pretty;
    EXPECT_EQ(parse(compact).dump(), compact);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Json, EmptyContainers) {
  EXPECT_EQ(parse("[]").dump(), "[]");
  EXPECT_EQ(parse("{}").dump(), "{}");
  EXPECT_EQ(parse("{ }").as_object().size(), 0u);
}

}  // namespace
}  // namespace peachy::json
