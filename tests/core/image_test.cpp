#include "core/image.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace peachy {
namespace {

class ImageFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "peachy_image_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST(Image, ConstructionAndFill) {
  Image img(4, 6, Rgb{1, 2, 3});
  EXPECT_EQ(img.height(), 4);
  EXPECT_EQ(img.width(), 6);
  EXPECT_EQ(img(3, 5), (Rgb{1, 2, 3}));
}

TEST(Image, FillRectClipsToBounds) {
  Image img(4, 4);
  img.fill_rect(2, 2, 10, 10, Rgb{255, 0, 0});
  EXPECT_EQ(img(3, 3), (Rgb{255, 0, 0}));
  EXPECT_EQ(img(1, 1), (Rgb{0, 0, 0}));
  // Negative origin clips too.
  img.fill_rect(-2, -2, 3, 3, Rgb{0, 255, 0});
  EXPECT_EQ(img(0, 0), (Rgb{0, 255, 0}));
}

TEST(Image, UpscaledReplicatesPixels) {
  Image img(2, 2);
  img(0, 0) = Rgb{10, 0, 0};
  img(1, 1) = Rgb{0, 20, 0};
  const Image big = img.upscaled(3);
  EXPECT_EQ(big.height(), 6);
  EXPECT_EQ(big.width(), 6);
  EXPECT_EQ(big(0, 0), (Rgb{10, 0, 0}));
  EXPECT_EQ(big(2, 2), (Rgb{10, 0, 0}));
  EXPECT_EQ(big(5, 5), (Rgb{0, 20, 0}));
  EXPECT_EQ(big(2, 3), (Rgb{0, 0, 0}));
}

TEST(Image, UpscaleFactorMustBePositive) {
  Image img(2, 2);
  EXPECT_THROW(img.upscaled(0), Error);
}

TEST_F(ImageFileTest, PpmRoundTrip) {
  Image img(3, 5);
  for (int y = 0; y < 3; ++y)
    for (int x = 0; x < 5; ++x)
      img(y, x) = Rgb{static_cast<std::uint8_t>(y * 50),
                      static_cast<std::uint8_t>(x * 40), 77};
  const std::string path = (dir_ / "roundtrip.ppm").string();
  img.write_ppm(path);
  const Image back = Image::read_ppm(path);
  ASSERT_EQ(back.height(), 3);
  ASSERT_EQ(back.width(), 5);
  for (int y = 0; y < 3; ++y)
    for (int x = 0; x < 5; ++x) EXPECT_EQ(back(y, x), img(y, x));
}

TEST_F(ImageFileTest, ReadMissingFileThrows) {
  EXPECT_THROW(Image::read_ppm((dir_ / "nope.ppm").string()), Error);
}

TEST_F(ImageFileTest, WriteToBadPathThrows) {
  Image img(2, 2);
  EXPECT_THROW(img.write_ppm((dir_ / "no_dir" / "x.ppm").string()), Error);
}

TEST_F(ImageFileTest, ReadRejectsWrongMagic) {
  const std::string path = (dir_ / "bad.ppm").string();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("P3\n2 2\n255\n", f);
  std::fclose(f);
  EXPECT_THROW(Image::read_ppm(path), Error);
}

TEST_F(ImageFileTest, ReadRejectsTruncatedPayload) {
  const std::string path = (dir_ / "short.ppm").string();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("P6\n4 4\n255\nxx", f);  // far fewer than 48 payload bytes
  std::fclose(f);
  EXPECT_THROW(Image::read_ppm(path), Error);
}

}  // namespace
}  // namespace peachy
