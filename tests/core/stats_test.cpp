#include "core/stats.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace peachy {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 42.0);
  EXPECT_EQ(s.max(), 42.0);
}

TEST(OnlineStats, KnownSample) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MatchesBatchOnRandomData) {
  Rng rng(17);
  OnlineStats s;
  double sum = 0;
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.normal(10, 4);
    values.push_back(v);
    s.add(v);
    sum += v;
  }
  const double mean = sum / 5000;
  double sq = 0;
  for (double v : values) sq += (v - mean) * (v - mean);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), sq / 4999, 1e-6);
}

TEST(Quantile, InterpolatesLinearly) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0 / 3.0), 2.0);
}

TEST(Quantile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(quantile({9, 1, 5}, 0.5), 5.0);
}

TEST(Quantile, Errors) {
  EXPECT_THROW(quantile({}, 0.5), Error);
  EXPECT_THROW(quantile({1.0}, -0.1), Error);
  EXPECT_THROW(quantile({1.0}, 1.1), Error);
}

TEST(ImbalanceRatio, BalancedIsOne) {
  EXPECT_DOUBLE_EQ(imbalance_ratio({3, 3, 3, 3}), 1.0);
}

TEST(ImbalanceRatio, KnownSkew) {
  // loads 1,1,1,5: mean 2, max 5 -> 2.5.
  EXPECT_DOUBLE_EQ(imbalance_ratio({1, 1, 1, 5}), 2.5);
}

TEST(ImbalanceRatio, Errors) {
  EXPECT_THROW(imbalance_ratio({}), Error);
  EXPECT_THROW(imbalance_ratio({0, 0}), Error);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bucket 0
  h.add(9.9);   // bucket 4
  h.add(-3.0);  // clamped to 0
  h.add(42.0);  // clamped to 4
  h.add(5.0);   // bucket 2
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.edge(0), 0.0);
  EXPECT_DOUBLE_EQ(h.edge(5), 10.0);
}

TEST(Histogram, RejectsBadSpec) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

}  // namespace
}  // namespace peachy
