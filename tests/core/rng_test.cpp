#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace peachy {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all of 2,3,4,5 hit
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(99);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(5);
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(Rng, BernoulliRates) {
  Rng rng(3);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Splitmix64, AdvancesState) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 0u);
}

}  // namespace
}  // namespace peachy
