#include "core/table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/error.hpp"

namespace peachy {
namespace {

TEST(TextTable, PrintsHeaderSeparatorAndRows) {
  TextTable t({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"b", "20"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // 4 lines: header, separator, 2 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTable, NumericCellsRightAligned) {
  TextTable t({"metric", "count"});
  t.row({"x", "5"});
  t.row({"yyyy", "12345"});
  std::ostringstream os;
  t.print(os);
  // In the first row "5" must be padded to the width of "12345".
  EXPECT_NE(os.str().find("    5"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), Error);
  EXPECT_THROW(t.row({"1", "2", "3"}), Error);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(3.14159, 4), "3.1416");
  EXPECT_EQ(TextTable::num(static_cast<std::int64_t>(-42)), "-42");
}

TEST(TextTable, RowsCounter) {
  TextTable t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.row({"x"});
  t.row({"y"});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace peachy
