// Rendezvous under crowds: the accept loop must survive every rank of a
// wide world dialing at the same instant, and ranks that dial before the
// server thread is serving (the port-is-published-but-listener-not-
// accepting race) must still get their table via connect_to's retry
// discipline. peachyd leans on exactly this when many clients pile onto
// one daemon endpoint.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "net/rendezvous.hpp"
#include "net/socket.hpp"

namespace peachy::net {
namespace {

// Every rank registers a distinctive fake listener port so the broadcast
// table proves who the server actually heard from.
int fake_port(int rank) { return 40000 + rank; }

TEST(Rendezvous, SixteenSimultaneousDialsAllGetTheFullTable) {
  constexpr int kWorld = 16;
  RendezvousServer server(kWorld, /*collect_results=*/false,
                          /*timeout_ms=*/15000);
  server.start();

  std::vector<std::vector<int>> tables(kWorld);
  std::atomic<int> failures{0};
  std::vector<std::thread> ranks;
  ranks.reserve(kWorld);
  for (int r = 0; r < kWorld; ++r) {
    ranks.emplace_back([&, r] {
      try {
        RendezvousSession session = rendezvous_register(
            "127.0.0.1", server.port(), r, kWorld, fake_port(r), 15000);
        tables[static_cast<std::size_t>(r)] = session.peer_ports;
      } catch (const Error&) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : ranks) t.join();
  server.join();

  ASSERT_EQ(failures.load(), 0);
  for (int r = 0; r < kWorld; ++r) {
    const auto& table = tables[static_cast<std::size_t>(r)];
    ASSERT_EQ(table.size(), static_cast<std::size_t>(kWorld)) << "rank " << r;
    for (int peer = 0; peer < kWorld; ++peer)
      EXPECT_EQ(table[static_cast<std::size_t>(peer)], fake_port(peer))
          << "rank " << r << " has a wrong entry for peer " << peer;
  }
}

TEST(Rendezvous, DialsBeforeServingStartsStillRegister) {
  constexpr int kWorld = 8;
  RendezvousServer server(kWorld, /*collect_results=*/false,
                          /*timeout_ms=*/15000);
  // Dial first: the port is known (bound in the constructor) but nothing
  // accepts yet — connections park in the backlog or retry.
  std::vector<std::vector<int>> tables(kWorld);
  std::atomic<int> failures{0};
  std::vector<std::thread> ranks;
  for (int r = 0; r < kWorld; ++r) {
    ranks.emplace_back([&, r] {
      try {
        RendezvousSession session = rendezvous_register(
            "127.0.0.1", server.port(), r, kWorld, fake_port(r), 15000);
        tables[static_cast<std::size_t>(r)] = session.peer_ports;
      } catch (const Error&) {
        failures.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.start();
  for (std::thread& t : ranks) t.join();
  server.join();

  ASSERT_EQ(failures.load(), 0);
  for (int r = 0; r < kWorld; ++r)
    ASSERT_EQ(tables[static_cast<std::size_t>(r)].size(),
              static_cast<std::size_t>(kWorld))
        << "rank " << r;
}

TEST(Rendezvous, BackToBackWorldsReusePortsCleanly) {
  // Serial worlds, each with concurrent dials — the accept loop must come
  // up fresh each time with no state bleeding between rounds.
  for (int round = 0; round < 3; ++round) {
    constexpr int kWorld = 6;
    RendezvousServer server(kWorld, false, 10000);
    server.start();
    std::vector<std::thread> ranks;
    std::atomic<int> ok{0};
    for (int r = 0; r < kWorld; ++r) {
      ranks.emplace_back([&, r] {
        RendezvousSession session = rendezvous_register(
            "127.0.0.1", server.port(), r, kWorld, fake_port(r), 10000);
        if (session.peer_ports.size() == kWorld) ok.fetch_add(1);
      });
    }
    for (std::thread& t : ranks) t.join();
    server.join();
    ASSERT_EQ(ok.load(), kWorld) << "round " << round;
  }
}

}  // namespace
}  // namespace peachy::net
