// mpp::run_spawned: ranks as real forked (or fork+exec'd) processes, wired
// up through the rendezvous server. These tests fork, so they carry the
// `spawn` label and are excluded from the tsan preset (TSan cannot follow
// threads created after fork; ASan is fine).
#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "mpp/mpp.hpp"
#include "net/process.hpp"
#include "sandpile/distributed.hpp"
#include "sandpile/distributed2d.hpp"
#include "sandpile/field.hpp"

namespace peachy {
namespace {

TEST(Spawn, ForkedWorkersAllreduceAndReturnResult) {
  const mpp::RunOutcome out = mpp::run_spawned(
      3, {}, [](mpp::Comm& comm) {
        const std::int64_t sum = comm.allreduce_sum(comm.rank() + 1);
        EXPECT_EQ(sum, 6);  // runs inside the worker process
        if (comm.rank() == 0) {
          const std::uint32_t answer = static_cast<std::uint32_t>(sum);
          comm.set_result(&answer, sizeof(answer));
        }
      });
  ASSERT_EQ(out.rank0_result.size(), sizeof(std::uint32_t));
  std::uint32_t answer = 0;
  std::memcpy(&answer, out.rank0_result.data(), sizeof(answer));
  EXPECT_EQ(answer, 6u);
  EXPECT_GT(out.comm.messages_sent, 0u);
}

TEST(Spawn, WorkerExceptionPropagatesNamingRank) {
  try {
    mpp::run_spawned(2, {}, [](mpp::Comm& comm) {
      if (comm.rank() == 1) throw Error("boom in worker");
      // Rank 0 blocks on rank 1 and is released by its death.
      std::int64_t x = 0;
      comm.recv(1, 1, &x, 1);
    });
    FAIL() << "worker failure should propagate";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("boom in worker"), std::string::npos) << msg;
  }
}

TEST(Spawn, KilledWorkerIsDetectedNotHung) {
  try {
    mpp::run_spawned(2, {}, [](mpp::Comm& comm) {
      if (comm.rank() == 1) ::raise(SIGKILL);
      std::int64_t x = 0;
      comm.recv(1, 1, &x, 1);  // released as PeerDied by the death
    });
    FAIL() << "killed worker should surface as an error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("died before reporting"), std::string::npos) << msg;
    // The report names the root cause decoded from the wait status.
    EXPECT_NE(msg.find("signal 9"), std::string::npos) << msg;
  }
}

TEST(Spawn, WaitAllKillsAndReapsASleeperAtTheDeadline) {
  net::ProcessLauncher launcher;
  launcher.fork_workers(2, [](int rank) {
    if (rank == 1) ::sleep(30);  // far past the deadline
    return 0;
  });
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<int> codes = launcher.wait_all(300);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(5)) << "wait_all hung";
  ASSERT_EQ(codes.size(), 2u);
  EXPECT_EQ(codes[0], 0);
  EXPECT_EQ(codes[1], 255);  // SIGKILLed straggler
  EXPECT_NE(net::describe_exit_code(codes[1]).find("deadline"),
            std::string::npos)
      << net::describe_exit_code(codes[1]);
}

TEST(Spawn, RespawnReplacesARanksProcess) {
  net::ProcessLauncher launcher;
  launcher.fork_workers(1, [](int) {
    ::sleep(30);
    return 0;
  });
  ASSERT_EQ(launcher.spawned(), 1);
  // Each respawn SIGKILLs + reaps the previous incarnation and forks a
  // fresh one from the recorded recipe.
  const pid_t second = launcher.respawn(0);
  const pid_t third = launcher.respawn(0);
  EXPECT_GT(second, 0);
  EXPECT_GT(third, 0);
  EXPECT_NE(second, third);
  EXPECT_EQ(launcher.spawned(), 1);
  const std::vector<int> codes = launcher.wait_all(200);
  ASSERT_EQ(codes.size(), 1u);
  EXPECT_EQ(codes[0], 255);  // the live incarnation still sleeps
}

TEST(Spawn, Sandpile1dByteIdenticalAcrossAllBackends) {
  const sandpile::Field initial =
      sandpile::sparse_random_pile(40, 40, 0.35, 2, 9, 777);

  sandpile::DistributedOptions opts;
  opts.ranks = 3;
  opts.halo_depth = 2;
  const sandpile::DistributedResult inproc =
      sandpile::stabilize_distributed(initial, opts);

  sandpile::DistributedOptions spawned = opts;
  spawned.run.transport = mpp::TransportKind::kTcp;
  spawned.run.spawn = true;
  const sandpile::DistributedResult procs =
      sandpile::stabilize_distributed(initial, spawned);

  ASSERT_TRUE(inproc.stable);
  ASSERT_TRUE(procs.stable);
  EXPECT_EQ(inproc.rounds, procs.rounds);
  EXPECT_EQ(inproc.comm.messages_sent, procs.comm.messages_sent);
  EXPECT_EQ(inproc.comm.bytes_sent, procs.comm.bytes_sent);
  EXPECT_TRUE(inproc.field.same_interior(procs.field));
}

TEST(Spawn, Sandpile2dByteIdenticalAcrossAllBackends) {
  const sandpile::Field initial =
      sandpile::sparse_random_pile(36, 44, 0.35, 2, 9, 4242);

  sandpile::Distributed2dOptions opts;
  opts.ranks_y = 2;
  opts.ranks_x = 2;
  opts.halo_depth = 2;
  const sandpile::Distributed2dResult inproc =
      sandpile::stabilize_distributed_2d(initial, opts);

  sandpile::Distributed2dOptions spawned = opts;
  spawned.run.transport = mpp::TransportKind::kTcp;
  spawned.run.spawn = true;
  const sandpile::Distributed2dResult procs =
      sandpile::stabilize_distributed_2d(initial, spawned);

  ASSERT_TRUE(inproc.stable);
  ASSERT_TRUE(procs.stable);
  EXPECT_EQ(inproc.rounds, procs.rounds);
  EXPECT_EQ(inproc.comm.messages_sent, procs.comm.messages_sent);
  EXPECT_EQ(inproc.comm.bytes_sent, procs.comm.bytes_sent);
  EXPECT_TRUE(inproc.field.same_interior(procs.field));
}

TEST(Spawn, SeededFaultsAreDeterministicAcrossProcessRuns) {
  const sandpile::Field initial = sandpile::center_pile(16, 16, 800);

  sandpile::DistributedOptions opts;
  opts.ranks = 2;
  opts.halo_depth = 2;
  opts.run.transport = mpp::TransportKind::kTcp;
  opts.run.spawn = true;
  opts.run.tcp.fault.seed = 99;
  opts.run.tcp.fault.drop = 0.05;
  opts.run.tcp.fault.duplicate = 0.05;
  opts.run.tcp.ack_timeout_ms = 20;  // recover injected drops quickly

  const sandpile::DistributedResult a =
      sandpile::stabilize_distributed(initial, opts);
  const sandpile::DistributedResult b =
      sandpile::stabilize_distributed(initial, opts);

  ASSERT_TRUE(a.stable);
  EXPECT_TRUE(a.field.same_interior(b.field));
  EXPECT_GT(a.net.fault_dropped + a.net.fault_duplicated, 0u);
  EXPECT_EQ(a.net.fault_dropped, b.net.fault_dropped);
  EXPECT_EQ(a.net.fault_duplicated, b.net.fault_duplicated);
}

// Exec mode: each worker is a fresh copy of this very test binary. The
// child runs main(), gtest filters it down to this one test, and the
// PEACHY_MPP_* environment routes the re-entered run_spawned call into the
// worker path (it never launches grandchildren).
TEST(Spawn, ExecModeRespawnsThisBinary) {
  const std::vector<std::string> argv = {
      "/proc/self/exe", "--gtest_filter=Spawn.ExecModeRespawnsThisBinary"};
  const mpp::RunOutcome out =
      mpp::run_spawned(2, argv, [](mpp::Comm& comm) {
        std::int64_t token = comm.rank() == 0 ? 7 : 0;
        if (comm.rank() == 0) {
          comm.send(1, 2, &token, 1);
        } else {
          comm.recv(0, 2, &token, 1);
          EXPECT_EQ(token, 7);
        }
        const std::int64_t hi = comm.allreduce_max(comm.rank());
        if (comm.rank() == 0) comm.set_result(&hi, sizeof(hi));
      });
  ASSERT_EQ(out.rank0_result.size(), sizeof(std::int64_t));
  std::int64_t hi = 0;
  std::memcpy(&hi, out.rank0_result.data(), sizeof(hi));
  EXPECT_EQ(hi, 1);
}

}  // namespace
}  // namespace peachy
