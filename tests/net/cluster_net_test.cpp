// Distributed telemetry at the wire level: trace contexts must survive the
// fault injector (drops force retransmits, duplicates force dedup, delays
// force reordering) with exactly one context per delivered message, and the
// clock-offset estimator must recover a deliberately skewed peer clock from
// PING/PONG probe traffic.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/timer.hpp"
#include "net/rendezvous.hpp"
#include "net/socket.hpp"
#include "net/tcp.hpp"
#include "net/wire.hpp"
#include "obs/cluster.hpp"
#include "obs/obs.hpp"

namespace peachy::net {
namespace {

using namespace std::chrono_literals;
namespace cluster = peachy::obs::cluster;

/// Runs a 2-rank TcpTransport world body on two threads sharing one
/// rendezvous. Rethrows the first rank's failure.
void run_pair(const TcpOptions& opt,
              const std::function<void(TcpTransport&)>& rank0,
              const std::function<void(TcpTransport&)>& rank1) {
  RendezvousServer server(2, /*collect_results=*/false, 10000);
  server.start();
  std::exception_ptr errs[2];
  auto runner = [&](int rank, const std::function<void(TcpTransport&)>& body) {
    try {
      TcpTransport t(rank, 2, server.port(), opt);
      body(t);
      t.shutdown();
    } catch (...) {
      errs[rank] = std::current_exception();
    }
  };
  std::thread t0(runner, 0, rank0), t1(runner, 1, rank1);
  t0.join();
  t1.join();
  server.join();
  for (auto& e : errs)
    if (e) std::rethrow_exception(e);
}

TEST(ClusterNet, ContextSurvivesSeededFaults) {
  const bool was_enabled = obs::set_enabled(true);
  TcpOptions opt;
  opt.ack_timeout_ms = 20;
  opt.recv_timeout_ms = 15000;
  opt.fault.seed = 1234;
  opt.fault.drop = 0.15;
  opt.fault.duplicate = 0.15;
  opt.fault.delay = 0.15;
  opt.fault.delay_ms = 5;

  constexpr int kMessages = 60;
  std::vector<MsgInfo> got;
  run_pair(
      opt,
      [&](TcpTransport& t) {
        for (std::uint32_t i = 0; i < kMessages; ++i) {
          // One distinct context per message, like Comm::send does.
          cluster::ScopedContext ctx({777, 1000 + i});
          t.send(1, 5, &i, sizeof i);
        }
      },
      [&](TcpTransport& t) {
        for (int i = 0; i < kMessages; ++i) {
          MsgInfo info;
          const std::vector<std::byte> payload = t.recv(0, 5, &info);
          std::uint32_t value = 0;
          ASSERT_EQ(payload.size(), sizeof value);
          std::memcpy(&value, payload.data(), sizeof value);
          EXPECT_EQ(value, static_cast<std::uint32_t>(i));
          got.push_back(info);
        }
      });

  // Every message delivered exactly once, each with exactly the context it
  // was sent under — retransmits and injected duplicates must not create
  // extra or mismatched contexts.
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kMessages));
  std::set<std::uint64_t> spans;
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_TRUE(got[static_cast<std::size_t>(i)].has_ctx);
    EXPECT_EQ(got[static_cast<std::size_t>(i)].trace_id, 777u);
    EXPECT_EQ(got[static_cast<std::size_t>(i)].span_id,
              1000u + static_cast<std::uint64_t>(i));
    spans.insert(got[static_cast<std::size_t>(i)].span_id);
  }
  EXPECT_EQ(spans.size(), static_cast<std::size_t>(kMessages));
  obs::set_enabled(was_enabled);
}

TEST(ClusterNet, NoContextWhenNoneIsCurrent) {
  const bool was_enabled = obs::set_enabled(true);
  TcpOptions opt;
  MsgInfo info;
  run_pair(
      opt,
      [&](TcpTransport& t) {
        cluster::clear_current();
        const std::uint64_t v = 1;
        t.send(1, 9, &v, sizeof v);
      },
      [&](TcpTransport& t) { t.recv(0, 9, &info); });
  EXPECT_FALSE(info.has_ctx);
  obs::set_enabled(was_enabled);
}

// --- Clock sync against a fake peer with a skewed clock ---------------------

// Joins the mesh as rank 1 of 2 (rendezvous REGISTER, dial rank 0, HELLO
// handshake) — the window_test fake-peer idiom.
Socket fake_rank1_join(int rendezvous_port) {
  Socket listen = Socket::listen_on("127.0.0.1", 0, 4);
  RendezvousSession session = rendezvous_register(
      "127.0.0.1", rendezvous_port, /*rank=*/1, /*world=*/2,
      listen.local_port(), /*timeout_ms=*/5000);
  Socket s = Socket::connect_to("127.0.0.1", session.peer_ports[0], 5000);
  FrameHeader hello;
  hello.type = FrameType::kHello;
  hello.src = 1;
  hello.tag = 0;
  send_frame(s, hello);
  FrameHeader h;
  std::vector<std::byte> payload;
  PEACHY_REQUIRE(recv_frame(s, h, payload, 5000),
                 "fake peer: rank 0 closed during the handshake");
  PEACHY_REQUIRE(h.type == FrameType::kHelloAck,
                 "fake peer: expected HELLO_ACK");
  return s;
}

TEST(ClusterNet, EstimatesSkewedPeerClockFromProbes) {
  // The fake rank 1 answers clock probes with its "own clock" running a
  // fixed 25 ms ahead of ours; rank 0's estimator must report that skew.
  constexpr std::int64_t kSkewNs = 25'000'000;

  RendezvousServer server(2, /*collect_results=*/false, 10000);
  server.start();

  std::thread fake([&] {
    Socket s = fake_rank1_join(server.port());
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    int pongs = 0;
    while (std::chrono::steady_clock::now() < deadline && pongs < 8) {
      FrameHeader h;
      std::vector<std::byte> payload;
      try {
        if (!recv_frame(s, h, payload, 500)) break;
      } catch (const Error&) {
        continue;  // poll timeout: keep waiting for the next probe
      }
      if (h.type == FrameType::kPing && payload.size() == 8) {
        // Echo the origin, answer with a skewed "peer now".
        std::vector<std::byte> reply = payload;
        append_u64(reply,
                   static_cast<std::uint64_t>(peachy::now_ns() + kSkewNs));
        FrameHeader pong;
        pong.type = FrameType::kPong;
        pong.src = 1;
        send_frame(s, pong, reply.data(), reply.size());
        ++pongs;
      } else if (h.type == FrameType::kGoodbye) {
        break;
      }
    }
    FrameHeader bye;
    bye.type = FrameType::kGoodbye;
    bye.src = 1;
    send_frame(s, bye);
  });

  TcpOptions opt;
  opt.clock_sync_ms = 20;
  TcpTransport t(0, 2, server.port(), opt);
  // Wait for the initial probe burst to be answered.
  std::map<int, TcpTransport::ClockEstimate> est;
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline) {
    est = t.clock_estimates();
    if (est.count(1) && est[1].samples >= 4) break;
    std::this_thread::sleep_for(10ms);
  }
  t.shutdown();
  fake.join();
  server.join();

  ASSERT_TRUE(est.count(1)) << "no clock estimate for the fake peer";
  EXPECT_TRUE(est[1].valid);
  EXPECT_GE(est[1].samples, 4u);
  // Loopback RTT is tens of microseconds; allow a generous 2 ms of error
  // around the injected 25 ms skew.
  EXPECT_NEAR(static_cast<double>(est[1].offset_ns),
              static_cast<double>(kSkewNs), 2e6);
  EXPECT_GE(est[1].min_rtt_ns, 0);
}

}  // namespace
}  // namespace peachy::net
