// Heartbeat failure detector: an idle link must carry PINGs, and a peer
// that goes silent (wedged, not closed) must be suspected and reported as
// dead — the gap EOF-based detection cannot cover.
//
// The fake peer speaks just enough of the wire protocol to join a 2-rank
// mesh (rendezvous REGISTER + HELLO/HELLO_ACK) and then misbehaves on
// purpose, which is exactly what a real TcpTransport never does.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "mpp/mpp.hpp"
#include "net/rendezvous.hpp"
#include "net/socket.hpp"
#include "net/tcp.hpp"
#include "net/wire.hpp"

namespace peachy::net {
namespace {

using namespace std::chrono_literals;

// Joins the mesh as rank 1 of 2: registers with the rendezvous, dials rank
// 0, and completes the HELLO handshake. Returns the connected data socket.
Socket fake_rank1_join(int rendezvous_port) {
  Socket listen = Socket::listen_on("127.0.0.1", 0, 4);
  RendezvousSession session = rendezvous_register(
      "127.0.0.1", rendezvous_port, /*rank=*/1, /*world=*/2,
      listen.local_port(), /*timeout_ms=*/5000);
  Socket s = Socket::connect_to("127.0.0.1", session.peer_ports[0], 5000);
  FrameHeader hello;
  hello.type = FrameType::kHello;
  hello.src = 1;
  hello.tag = 0;
  send_frame(s, hello);
  FrameHeader h;
  std::vector<std::byte> payload;
  PEACHY_REQUIRE(recv_frame(s, h, payload, 5000),
                 "fake peer: rank 0 closed during the handshake");
  PEACHY_REQUIRE(h.type == FrameType::kHelloAck,
                 "fake peer: expected HELLO_ACK");
  return s;
}

TEST(Heartbeat, PingsFlowOnAnIdleLink) {
  RendezvousServer server(2, /*collect_results=*/false, 5000);
  server.start();

  std::atomic<int> pings{0};
  std::thread fake([&] {
    Socket s = fake_rank1_join(server.port());
    bool said_goodbye = false;
    // Count rank 0's PINGs; after a few, say goodbye so rank 0's shutdown
    // drain completes, then keep reading until its goodbye (or EOF).
    for (;;) {
      FrameHeader h;
      std::vector<std::byte> payload;
      if (!recv_frame(s, h, payload, 5000)) break;
      if (h.type == FrameType::kPing) ++pings;
      if (h.type == FrameType::kGoodbye) break;
      if (pings >= 3 && !said_goodbye) {
        FrameHeader bye;
        bye.type = FrameType::kGoodbye;
        bye.src = 1;
        send_frame(s, bye);
        said_goodbye = true;
      }
    }
  });

  TcpOptions opt;
  opt.heartbeat_ms = 20;
  opt.suspicion_timeout_ms = 60000;  // the fake never pings back; tolerate it
  TcpTransport transport(/*rank=*/0, /*world=*/2, server.port(), opt);

  // No application traffic at all — liveness must come from heartbeats.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (transport.stats().heartbeats_sent < 3 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(5ms);
  EXPECT_GE(transport.stats().heartbeats_sent, 3u);

  transport.shutdown();
  fake.join();
  server.join();
  EXPECT_GE(pings.load(), 3);
}

TEST(Heartbeat, SilentPeerIsSuspectedAndReportedDead) {
  RendezvousServer server(2, /*collect_results=*/false, 5000);
  server.start();

  std::atomic<bool> done{false};
  std::thread fake([&] {
    Socket s = fake_rank1_join(server.port());
    // Wedge: keep the connection open but never send another frame. A
    // closed socket would be caught by EOF handling; only the heartbeat
    // timer can catch this.
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (!done.load() && std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(10ms);
  });

  TcpOptions opt;
  opt.heartbeat_ms = 20;
  opt.suspicion_timeout_ms = 150;
  opt.recv_timeout_ms = 8000;
  TcpTransport transport(/*rank=*/0, /*world=*/2, server.port(), opt);

  std::string message;
  try {
    transport.recv(1, 7);  // the fake never sends; suspicion must fire
    ADD_FAILURE() << "recv returned from a silent peer";
  } catch (const PeerDied& e) {
    message = e.what();
  }
  done = true;
  EXPECT_NE(message.find("rank 1"), std::string::npos) << message;
  EXPECT_NE(message.find("suspicion"), std::string::npos) << message;

  transport.shutdown();
  fake.join();
  server.join();
}

TEST(Heartbeat, EnabledHeartbeatsDoNotPerturbData) {
  // Aggressive pings interleaved with real traffic: payloads and seeded
  // fault decisions must be exactly what they are without heartbeats.
  mpp::RunOptions opts;
  opts.transport = mpp::TransportKind::kTcp;
  opts.tcp.heartbeat_ms = 2;
  opts.tcp.fault.seed = 4242;
  opts.tcp.fault.drop = 0.2;

  std::int64_t sum = 0;
  const mpp::RunOutcome out =
      mpp::run_world(2, opts, [&sum](mpp::Comm& comm) {
        std::int64_t acc = 0;
        for (int i = 0; i < 20; ++i) {
          std::int64_t x = i;
          if (comm.rank() == 0) {
            comm.send(1, 4, &x, 1);
            comm.recv(1, 5, &x, 1);
            acc += x;
          } else {
            std::int64_t got = 0;
            comm.recv(0, 4, &got, 1);
            got *= 2;
            comm.send(0, 5, &got, 1);
          }
        }
        if (comm.rank() == 0) sum = acc;
      });
  std::int64_t expect = 0;
  for (int i = 0; i < 20; ++i) expect += i * 2;
  EXPECT_EQ(sum, expect);
  // PINGs are outside the data sequence space: the injector saw only the
  // data frames, so the seeded drop count replays the no-heartbeat world.
  EXPECT_GT(out.net.fault_dropped, 0u);
}

}  // namespace
}  // namespace peachy::net
