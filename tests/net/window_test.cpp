// Sliding-window protocol: window geometry, cumulative acks, retransmit
// recovery, and out-of-order reassembly — the behaviors that distinguish
// the pipelined transport from the stop-and-wait protocol it replaced.
//
// The fake peer speaks just enough of the wire protocol to join a 2-rank
// mesh (rendezvous REGISTER + HELLO/HELLO_ACK) and then observes or
// perturbs the frame stream in ways a real TcpTransport never would:
// withholding acks, reordering, duplicating.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "mpp/mpp.hpp"
#include "net/rendezvous.hpp"
#include "net/socket.hpp"
#include "net/tcp.hpp"
#include "net/wire.hpp"
#include "sandpile/distributed.hpp"
#include "sandpile/field.hpp"

namespace peachy::net {
namespace {

using namespace std::chrono_literals;

// Joins the mesh as rank 1 of 2: registers with the rendezvous, dials rank
// 0, and completes the HELLO handshake. Returns the connected data socket.
Socket fake_rank1_join(int rendezvous_port) {
  Socket listen = Socket::listen_on("127.0.0.1", 0, 4);
  RendezvousSession session = rendezvous_register(
      "127.0.0.1", rendezvous_port, /*rank=*/1, /*world=*/2,
      listen.local_port(), /*timeout_ms=*/5000);
  Socket s = Socket::connect_to("127.0.0.1", session.peer_ports[0], 5000);
  FrameHeader hello;
  hello.type = FrameType::kHello;
  hello.src = 1;
  hello.tag = 0;
  send_frame(s, hello);
  FrameHeader h;
  std::vector<std::byte> payload;
  PEACHY_REQUIRE(recv_frame(s, h, payload, 5000),
                 "fake peer: rank 0 closed during the handshake");
  PEACHY_REQUIRE(h.type == FrameType::kHelloAck,
                 "fake peer: expected HELLO_ACK");
  return s;
}

void fake_send_ack(const Socket& s, std::uint64_t ack) {
  FrameHeader h;
  h.type = FrameType::kAck;
  h.flags = kFlagCarriesAck;
  h.src = 1;
  h.ack = ack;
  send_frame(s, h);
}

void fake_send_goodbye(const Socket& s) {
  FrameHeader h;
  h.type = FrameType::kGoodbye;
  h.src = 1;
  send_frame(s, h);
}

// Reads frames until one of type `want` arrives (skipping PINGs and other
// control traffic); fails the test on EOF.
FrameHeader fake_expect(const Socket& s, FrameType want,
                        std::vector<std::byte>* payload_out = nullptr) {
  for (;;) {
    FrameHeader h;
    std::vector<std::byte> payload;
    if (!recv_frame(s, h, payload, 5000)) {
      ADD_FAILURE() << "fake peer: EOF while waiting for frame type "
                    << static_cast<int>(want);
      return h;
    }
    if (h.type == want) {
      if (payload_out) *payload_out = std::move(payload);
      return h;
    }
  }
}

TEST(Window, SizeOneDegeneratesToStopAndWait) {
  // With window_frames = 1 the sender may never have a second DATA frame on
  // the wire before the first is acked — the defining property of
  // stop-and-wait. The fake peer withholds each ack long enough to observe
  // that nothing else arrives, then acks and expects exactly the next seq.
  RendezvousServer server(2, /*collect_results=*/false, 5000);
  server.start();

  constexpr int kFrames = 3;
  std::atomic<bool> premature{false};
  std::thread fake([&] {
    Socket s = fake_rank1_join(server.port());
    for (std::uint64_t i = 0; i < kFrames; ++i) {
      std::vector<std::byte> payload;
      const FrameHeader h = fake_expect(s, FrameType::kData, &payload);
      EXPECT_EQ(h.seq, i);
      ASSERT_EQ(payload.size(), sizeof(std::uint64_t));
      std::uint64_t value = 0;
      std::memcpy(&value, payload.data(), sizeof value);
      EXPECT_EQ(value, i * 10);
      // The ack for seq i has not been sent: the link must stay silent.
      // (ack_timeout is cranked up so no retransmit lands in this window.)
      FrameHeader extra;
      std::vector<std::byte> extra_payload;
      try {
        recv_frame(s, extra, extra_payload, 300);
        if (extra.type == FrameType::kData) premature = true;
      } catch (const Error&) {
        // timeout: the expected outcome — one frame in flight, no more
      }
      fake_send_ack(s, i + 1);
    }
    fake_expect(s, FrameType::kGoodbye);
    fake_send_goodbye(s);
  });

  TcpOptions opt;
  opt.window_frames = 1;
  opt.ack_timeout_ms = 30000;  // quiet: no retransmits during the stalls
  TcpTransport transport(/*rank=*/0, /*world=*/2, server.port(), opt);
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    const std::uint64_t value = i * 10;
    // Each send past the first blocks until the fake acks its predecessor.
    transport.send(1, 7, &value, sizeof value);
  }
  transport.shutdown();
  fake.join();
  server.join();
  EXPECT_FALSE(premature.load())
      << "a second DATA frame was on the wire before the first was acked";
  EXPECT_GE(transport.stats().window_stalls, static_cast<std::uint64_t>(
                                                 kFrames - 1));
}

TEST(Window, WholeWindowRidesUnacked) {
  // The pipelining claim itself: with window_frames = 8 the fake peer must
  // see all 8 DATA frames before it acks anything — impossible under
  // stop-and-wait, where frame i+1 waits for ack i.
  RendezvousServer server(2, /*collect_results=*/false, 5000);
  server.start();

  constexpr int kFrames = 8;
  std::atomic<int> seen_before_ack{0};
  std::thread fake([&] {
    Socket s = fake_rank1_join(server.port());
    for (std::uint64_t i = 0; i < kFrames; ++i) {
      const FrameHeader h = fake_expect(s, FrameType::kData);
      EXPECT_EQ(h.seq, i);
      ++seen_before_ack;
    }
    fake_send_ack(s, kFrames);  // one cumulative ack covers the burst
    fake_expect(s, FrameType::kGoodbye);
    fake_send_goodbye(s);
  });

  TcpOptions opt;
  opt.window_frames = kFrames;
  opt.ack_timeout_ms = 30000;
  TcpTransport transport(/*rank=*/0, /*world=*/2, server.port(), opt);
  for (std::uint64_t i = 0; i < kFrames; ++i)
    transport.send(1, 7, &i, sizeof i);
  transport.shutdown();  // drains: returns only after the cumulative ack
  fake.join();
  server.join();
  EXPECT_EQ(seen_before_ack.load(), kFrames);
  EXPECT_EQ(transport.stats().window_stalls, 0u);
  EXPECT_EQ(transport.stats().retransmits, 0u);
}

TEST(Window, RetransmitRecoversADroppedCumulativeAck) {
  // The fake peer swallows the first DATA frame's ack entirely; the
  // per-peer retransmit timer must re-send the frame, after which the fake
  // finally acks and the sender's shutdown drain completes.
  RendezvousServer server(2, /*collect_results=*/false, 5000);
  server.start();

  std::atomic<int> copies{0};
  std::thread fake([&] {
    Socket s = fake_rank1_join(server.port());
    const FrameHeader first = fake_expect(s, FrameType::kData);
    EXPECT_EQ(first.seq, 0u);
    ++copies;
    // No ack: the sender must hit its timer and send seq 0 again.
    const FrameHeader again = fake_expect(s, FrameType::kData);
    EXPECT_EQ(again.seq, 0u);
    ++copies;
    fake_send_ack(s, 1);
    fake_expect(s, FrameType::kGoodbye);
    fake_send_goodbye(s);
  });

  TcpOptions opt;
  opt.ack_timeout_ms = 40;
  TcpTransport transport(/*rank=*/0, /*world=*/2, server.port(), opt);
  const std::uint64_t value = 42;
  transport.send(1, 3, &value, sizeof value);
  transport.shutdown();
  fake.join();
  server.join();
  EXPECT_EQ(copies.load(), 2);
  EXPECT_GE(transport.stats().retransmits, 1u);
}

TEST(Window, OutOfOrderFramesAreReassembledInOrder) {
  // The fake peer writes seq 1, a duplicate of seq 1, then seq 0. The
  // receiver must park seq 1, deliver 0 then 1 on the gap fill, and drop
  // the duplicate — recv() order is seq order, each payload exactly once.
  RendezvousServer server(2, /*collect_results=*/false, 5000);
  server.start();

  std::thread fake([&] {
    Socket s = fake_rank1_join(server.port());
    const auto data = [&](std::uint64_t seq, std::uint32_t value) {
      FrameHeader h;
      h.type = FrameType::kData;
      h.src = 1;
      h.tag = 5;
      h.seq = seq;
      send_frame(s, h, &value, sizeof value);
    };
    data(1, 111);
    data(1, 111);  // duplicate inside the reassembly window
    data(0, 100);
    fake_expect(s, FrameType::kGoodbye);
    fake_send_goodbye(s);
  });

  TcpOptions opt;
  opt.recv_timeout_ms = 400;  // the no-third-message probe below
  TcpTransport transport(/*rank=*/0, /*world=*/2, server.port(), opt);
  const std::vector<std::byte> first = transport.recv(1, 5);
  const std::vector<std::byte> second = transport.recv(1, 5);
  std::uint32_t a = 0, b = 0;
  ASSERT_EQ(first.size(), sizeof a);
  ASSERT_EQ(second.size(), sizeof b);
  std::memcpy(&a, first.data(), sizeof a);
  std::memcpy(&b, second.data(), sizeof b);
  EXPECT_EQ(a, 100u);
  EXPECT_EQ(b, 111u);
  // The duplicate of seq 1 must not surface as a third message.
  EXPECT_THROW(transport.recv(1, 5), Error);
  transport.shutdown();
  fake.join();
  server.join();
}

TEST(Window, SeqWrapKeepsTheStreamIntact) {
  // Start every connection's sequence space 3 frames below the u64 wrap:
  // a 16-message ping-pong then crosses UINT64_MAX -> 0 mid-stream, which
  // only survives if every comparison uses serial arithmetic (seq_before)
  // rather than plain '<'.
  mpp::RunOptions opts;
  opts.transport = mpp::TransportKind::kTcp;
  opts.tcp.first_seq = std::numeric_limits<std::uint64_t>::max() - 3;
  opts.tcp.window_frames = 4;

  std::int64_t sum = 0;
  mpp::run_world(2, opts, [&sum](mpp::Comm& comm) {
    std::int64_t acc = 0;
    for (int i = 0; i < 16; ++i) {
      std::int64_t x = i;
      if (comm.rank() == 0) {
        comm.send(1, 4, &x, 1);
        comm.recv(1, 5, &x, 1);
        acc += x;
      } else {
        std::int64_t got = 0;
        comm.recv(0, 4, &got, 1);
        got = got * 3 + 1;
        comm.send(0, 5, &got, 1);
      }
    }
    if (comm.rank() == 0) sum = acc;
  });
  std::int64_t expect = 0;
  for (int i = 0; i < 16; ++i) expect += i * 3 + 1;
  EXPECT_EQ(sum, expect);
}

TEST(Window, SeededDuplicatesInsideTheWindowDeliverOnce) {
  // Regression for the pipelined fault path: duplicated and delayed frames
  // land *inside* an open window (other frames in flight around them), and
  // must neither deadlock the window accounting nor deliver twice. The
  // payload check catches double delivery as a wrong sum; completion
  // within the run proves no deadlock.
  mpp::RunOptions opts;
  opts.transport = mpp::TransportKind::kTcp;
  opts.tcp.window_frames = 8;
  opts.tcp.fault.seed = 20260808;
  opts.tcp.fault.duplicate = 0.3;
  opts.tcp.fault.delay = 0.3;
  opts.tcp.fault.delay_ms = 3;

  std::int64_t sum = 0;
  const mpp::RunOutcome out =
      mpp::run_world(2, opts, [&sum](mpp::Comm& comm) {
        constexpr int kRounds = 40;
        if (comm.rank() == 0) {
          for (int i = 0; i < kRounds; ++i) {
            std::int64_t x = i;
            comm.send(1, 4, &x, 1);
          }
          std::int64_t acc = 0;
          for (int i = 0; i < kRounds; ++i) {
            std::int64_t got = 0;
            comm.recv(1, 5, &got, 1);
            acc += got;  // a double-delivered frame would skew the sum
          }
          sum = acc;
        } else {
          for (int i = 0; i < kRounds; ++i) {
            std::int64_t got = 0;
            comm.recv(0, 4, &got, 1);
            got *= 2;
            comm.send(0, 5, &got, 1);
          }
        }
      });
  std::int64_t expect = 0;
  for (int i = 0; i < 40; ++i) expect += i * 2;
  EXPECT_EQ(sum, expect);
  // The seed is chosen so faults actually fired inside the window.
  EXPECT_GT(out.net.fault_duplicated + out.net.fault_delayed, 0u);
}

TEST(Window, BidirectionalBurstsDrainUnderBackpressure) {
  // Regression for a cross-rank write deadlock: both ranks push a burst
  // whose bytes far exceed the kernel socket buffers *before either
  // receives anything*. Under blocking batch writes each side's app thread
  // wedged in sendmsg waiting for the other side to read, while each
  // side's reader was parked on the same write mutex and so never drained
  // its inbound socket — a circular wait with no timeout. Non-blocking
  // writes + the POLLOUT outbox keep the readers draining, so the
  // exchange must complete (and deliver intact payloads).
  mpp::RunOptions opts;
  opts.transport = mpp::TransportKind::kTcp;
  opts.tcp.window_frames = 32;

  constexpr int kFrames = 6;
  constexpr std::size_t kWords = 1024 * 1024;  // 8 MiB/frame, 48 MiB/direction
  std::atomic<std::uint64_t> corrupt{0};
  mpp::run_world(2, opts, [&corrupt](mpp::Comm& comm) {
    const int peer = 1 - comm.rank();
    std::vector<std::uint64_t> block(kWords);
    for (std::size_t i = 0; i < kWords; ++i)
      block[i] = (static_cast<std::uint64_t>(comm.rank()) << 56) | i;
    for (int f = 0; f < kFrames; ++f)
      comm.send(peer, 6, block.data(), block.size());
    std::uint64_t bad = 0;
    for (int f = 0; f < kFrames; ++f) {
      std::vector<std::uint64_t> got(kWords, 0);
      comm.recv(peer, 6, got.data(), got.size());
      for (std::size_t i = 0; i < kWords; ++i)
        if (got[i] != ((static_cast<std::uint64_t>(peer) << 56) | i)) ++bad;
    }
    corrupt += bad;
  });
  EXPECT_EQ(corrupt.load(), 0u);
}

TEST(Window, SendsNeverBlockOnAStalledSocket) {
  // The no-blocking-writes contract, pinned deterministically: the fake
  // peer joins the mesh and then reads *nothing* while the transport sends
  // a full window of 1 MiB frames — far more than the kernel socket
  // buffers hold. Backpressure must park a sender only in window
  // admission, never inside a socket write: every send below is window-
  // admitted, so every send must return (the refused bytes wait in the
  // peer's outbox). Blocking batch writes would wedge send() mid-sendmsg
  // the moment the buffers fill, with no timeout to break it. Once the
  // fake starts reading, the reader's POLLOUT drain must push the queued
  // bytes out and shutdown() must confirm full delivery.
  RendezvousServer server(2, /*collect_results=*/false, 5000);
  server.start();

  constexpr int kFrames = 32;
  constexpr std::size_t kBytes = 1024 * 1024;
  std::atomic<bool> sends_returned{false};
  std::thread fake([&] {
    Socket s = fake_rank1_join(server.port());
    // Stall: no reads until every send() has already returned.
    while (!sends_returned.load()) std::this_thread::sleep_for(1ms);
    std::uint64_t next = 0;
    while (next < kFrames) {
      std::vector<std::byte> payload;
      const FrameHeader h = fake_expect(s, FrameType::kData, &payload);
      EXPECT_EQ(h.seq, next);
      EXPECT_EQ(payload.size(), kBytes);
      ++next;
      fake_send_ack(s, next);
    }
    fake_expect(s, FrameType::kGoodbye);
    fake_send_goodbye(s);
  });

  TcpOptions opt;
  opt.window_frames = kFrames;  // every frame window-admits immediately
  opt.ack_timeout_ms = 30000;   // quiet: no retransmit churn while stalled
  opt.goodbye_timeout_ms = 10000;
  TcpTransport transport(/*rank=*/0, /*world=*/2, server.port(), opt);
  std::vector<std::byte> block(kBytes, std::byte{0x5a});
  for (int i = 0; i < kFrames; ++i)
    transport.send(1, 8, block.data(), block.size());
  sends_returned = true;  // reached only if no send blocked on the socket
  transport.shutdown();
  fake.join();
  server.join();
  EXPECT_EQ(transport.stats().frames_abandoned, 0u);
  EXPECT_EQ(transport.stats().window_stalls, 0u);
}

TEST(Window, InjectedDelayBeyondTheRetryBudgetStillDelivers) {
  // Regression: a retransmit pass used to burn an attempt (and double the
  // backoff) even when every unacked frame was still injector-held — so a
  // hold longer than the whole backoff ladder exhausted max_retries and
  // killed the peer without a single copy of the frame ever reaching the
  // wire. The budget here (~50+100+200 ms) is well short of the 600 ms
  // hold; the run only completes if held-only passes cost no attempt.
  mpp::RunOptions opts;
  opts.transport = mpp::TransportKind::kTcp;
  opts.tcp.window_frames = 4;
  opts.tcp.ack_timeout_ms = 50;
  opts.tcp.max_retries = 2;
  opts.tcp.fault.seed = 7;
  opts.tcp.fault.delay = 1.0;  // hold every frame...
  opts.tcp.fault.delay_ms = 600;  // ...past the whole retry budget

  std::int64_t echoed = -1;
  const mpp::RunOutcome out =
      mpp::run_world(2, opts, [&echoed](mpp::Comm& comm) {
        if (comm.rank() == 0) {
          std::int64_t x = 42;
          comm.send(1, 9, &x, 1);
          std::int64_t back = 0;
          comm.recv(1, 9, &back, 1);
          echoed = back;
        } else {
          std::int64_t got = 0;
          comm.recv(0, 9, &got, 1);
          got += 1;
          comm.send(0, 9, &got, 1);
        }
      });
  EXPECT_EQ(echoed, 43);
  EXPECT_GE(out.net.fault_delayed, 2u);  // both directions actually held
}

TEST(Window, ShutdownDrainTimeoutSurfacesAbandonedFrames) {
  // shutdown() confirms delivery by draining unacked frames — but the
  // drain is bounded. When it expires the abandonment must be loud at the
  // sender: the peer is marked dead (further sends throw PeerDied) and
  // stats count exactly how many accepted sends were never confirmed.
  RendezvousServer server(2, /*collect_results=*/false, 5000);
  server.start();

  std::thread fake([&] {
    Socket s = fake_rank1_join(server.port());
    // Read frames but never ack anything.
    FrameHeader h;
    std::vector<std::byte> payload;
    try {
      while (recv_frame(s, h, payload, 10000)) {
      }
    } catch (const Error&) {
      // socket torn down under us — equally fine, the test is over
    }
  });

  TcpOptions opt;
  opt.ack_timeout_ms = 30000;    // no retransmit churn inside the drain
  opt.goodbye_timeout_ms = 150;  // short, observable drain budget
  {
    TcpTransport transport(/*rank=*/0, /*world=*/2, server.port(), opt);
    const std::uint64_t value = 7;
    transport.send(1, 2, &value, sizeof value);
    transport.shutdown();  // must give up after ~150 ms, not hang or lie
    EXPECT_EQ(transport.stats().frames_abandoned, 1u);
    EXPECT_THROW(transport.send(1, 2, &value, sizeof value), PeerDied);
  }
  fake.join();
  server.join();
}

TEST(Window, SweepIsByteIdenticalAcrossWindowSizes) {
  // The window size is a pure performance knob: the stabilized field must
  // be identical at every setting, including the stop-and-wait degenerate
  // case. This doubles as the CI window-sweep smoke (ctest -L net).
  sandpile::Field initial(12, 12);
  for (int y = 0; y < 12; ++y)
    for (int x = 0; x < 12; ++x)
      initial.at(y, x) = static_cast<sandpile::Cell>((y * 31 + x * 7) % 9);

  std::vector<sandpile::Field> fields;
  for (const int window : {1, 2, 8, 32}) {
    sandpile::DistributedOptions opt;
    opt.ranks = 3;
    opt.run.transport = mpp::TransportKind::kTcp;
    opt.run.tcp.window_frames = window;
    sandpile::DistributedResult r = sandpile::stabilize_distributed(initial, opt);
    EXPECT_TRUE(r.stable);
    fields.push_back(std::move(r.field));
  }
  for (std::size_t i = 1; i < fields.size(); ++i) {
    ASSERT_EQ(fields[i].height(), fields[0].height());
    ASSERT_EQ(fields[i].width(), fields[0].width());
    std::size_t diff = 0;
    for (int y = 0; y < fields[0].height(); ++y)
      for (int x = 0; x < fields[0].width(); ++x)
        if (fields[i].at(y, x) != fields[0].at(y, x)) ++diff;
    EXPECT_EQ(diff, 0u) << "window sweep entry " << i
                        << " diverged from the window=1 baseline";
  }
}

}  // namespace
}  // namespace peachy::net
