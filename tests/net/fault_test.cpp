// FaultInjector: seeded decisions must be deterministic and per-connection
// independent — the properties the reproducible fault tests lean on.
#include "net/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace peachy::net {
namespace {

std::vector<FaultInjector::Decision> roll(const FaultPlan& plan, int src,
                                          int dst, int n) {
  FaultInjector inj(plan, src, dst);
  std::vector<FaultInjector::Decision> out;
  for (int i = 0; i < n; ++i) out.push_back(inj.next());
  return out;
}

TEST(Fault, InactiveByDefault) {
  FaultPlan plan;
  EXPECT_FALSE(plan.active());
  plan.drop = 0.5;  // still inactive: seed 0 disables everything
  EXPECT_FALSE(plan.active());
  plan.seed = 42;
  EXPECT_TRUE(plan.active());
}

TEST(Fault, SeededDecisionsAreDeterministic) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.drop = 0.3;
  plan.duplicate = 0.2;
  plan.delay = 0.1;
  const auto a = roll(plan, 0, 1, 200);
  const auto b = roll(plan, 0, 1, 200);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].drop, b[i].drop) << "frame " << i;
    EXPECT_EQ(a[i].duplicate, b[i].duplicate) << "frame " << i;
    EXPECT_EQ(a[i].sever, b[i].sever) << "frame " << i;
    EXPECT_EQ(a[i].delay_ms, b[i].delay_ms) << "frame " << i;
  }
}

TEST(Fault, DirectionsAreIndependentStreams) {
  FaultPlan plan;
  plan.seed = 99;
  plan.drop = 0.5;
  const auto forward = roll(plan, 0, 1, 100);
  const auto backward = roll(plan, 1, 0, 100);
  int differing = 0;
  for (std::size_t i = 0; i < forward.size(); ++i)
    if (forward[i].drop != backward[i].drop) ++differing;
  // Identical streams would mean the direction is not part of the hash.
  EXPECT_GT(differing, 0);
}

TEST(Fault, DifferentSeedsDiffer) {
  FaultPlan a, b;
  a.seed = 1;
  b.seed = 2;
  a.drop = b.drop = 0.5;
  const auto ra = roll(a, 0, 1, 100);
  const auto rb = roll(b, 0, 1, 100);
  int differing = 0;
  for (std::size_t i = 0; i < ra.size(); ++i)
    if (ra[i].drop != rb[i].drop) ++differing;
  EXPECT_GT(differing, 0);
}

TEST(Fault, DropRateRoughlyHonored) {
  FaultPlan plan;
  plan.seed = 7;
  plan.drop = 0.25;
  FaultInjector inj(plan, 2, 3);
  for (int i = 0; i < 2000; ++i) inj.next();
  const double rate =
      static_cast<double>(inj.counters().dropped) / 2000.0;
  EXPECT_NEAR(rate, 0.25, 0.05);
}

TEST(Fault, SeverAfterFiresExactlyOnce) {
  FaultPlan plan;
  plan.seed = 5;
  plan.sever_after = 3;
  FaultInjector inj(plan, 0, 1);
  int severed_at = -1;
  for (int i = 0; i < 10; ++i) {
    const auto d = inj.next();
    if (d.sever && severed_at < 0) severed_at = i;
  }
  EXPECT_EQ(severed_at, 3);
  EXPECT_EQ(inj.counters().severed, 1u);
}

TEST(Fault, PlanEncodeDecodeRoundTrip) {
  FaultPlan plan;
  plan.seed = 0xabcdef;
  plan.drop = 0.125;
  plan.duplicate = 0.25;
  plan.delay = 0.5;
  plan.delay_ms = 7;
  plan.sever_after = 42;
  const FaultPlan back = FaultPlan::decode(plan.encode());
  EXPECT_EQ(back.seed, plan.seed);
  EXPECT_DOUBLE_EQ(back.drop, plan.drop);
  EXPECT_DOUBLE_EQ(back.duplicate, plan.duplicate);
  EXPECT_DOUBLE_EQ(back.delay, plan.delay);
  EXPECT_EQ(back.delay_ms, plan.delay_ms);
  EXPECT_EQ(back.sever_after, plan.sever_after);

  // A seeded run must see the same faults after the env round trip.
  const auto a = roll(plan, 0, 1, 50);
  const auto b = roll(back, 0, 1, 50);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].drop, b[i].drop) << "frame " << i;
}

}  // namespace
}  // namespace peachy::net
