// FaultInjector: seeded decisions must be deterministic and per-connection
// independent — the properties the reproducible fault tests lean on.
#include "net/fault.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/error.hpp"

namespace peachy::net {
namespace {

std::vector<FaultInjector::Decision> roll(const FaultPlan& plan, int src,
                                          int dst, int n) {
  FaultInjector inj(plan, src, dst);
  std::vector<FaultInjector::Decision> out;
  for (int i = 0; i < n; ++i) out.push_back(inj.next());
  return out;
}

TEST(Fault, InactiveByDefault) {
  FaultPlan plan;
  EXPECT_FALSE(plan.active());
  plan.drop = 0.5;  // still inactive: seed 0 disables everything
  EXPECT_FALSE(plan.active());
  plan.seed = 42;
  EXPECT_TRUE(plan.active());
}

TEST(Fault, SeededDecisionsAreDeterministic) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.drop = 0.3;
  plan.duplicate = 0.2;
  plan.delay = 0.1;
  const auto a = roll(plan, 0, 1, 200);
  const auto b = roll(plan, 0, 1, 200);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].drop, b[i].drop) << "frame " << i;
    EXPECT_EQ(a[i].duplicate, b[i].duplicate) << "frame " << i;
    EXPECT_EQ(a[i].sever, b[i].sever) << "frame " << i;
    EXPECT_EQ(a[i].delay_ms, b[i].delay_ms) << "frame " << i;
  }
}

TEST(Fault, DirectionsAreIndependentStreams) {
  FaultPlan plan;
  plan.seed = 99;
  plan.drop = 0.5;
  const auto forward = roll(plan, 0, 1, 100);
  const auto backward = roll(plan, 1, 0, 100);
  int differing = 0;
  for (std::size_t i = 0; i < forward.size(); ++i)
    if (forward[i].drop != backward[i].drop) ++differing;
  // Identical streams would mean the direction is not part of the hash.
  EXPECT_GT(differing, 0);
}

TEST(Fault, DifferentSeedsDiffer) {
  FaultPlan a, b;
  a.seed = 1;
  b.seed = 2;
  a.drop = b.drop = 0.5;
  const auto ra = roll(a, 0, 1, 100);
  const auto rb = roll(b, 0, 1, 100);
  int differing = 0;
  for (std::size_t i = 0; i < ra.size(); ++i)
    if (ra[i].drop != rb[i].drop) ++differing;
  EXPECT_GT(differing, 0);
}

TEST(Fault, DropRateRoughlyHonored) {
  FaultPlan plan;
  plan.seed = 7;
  plan.drop = 0.25;
  FaultInjector inj(plan, 2, 3);
  for (int i = 0; i < 2000; ++i) inj.next();
  const double rate =
      static_cast<double>(inj.counters().dropped) / 2000.0;
  EXPECT_NEAR(rate, 0.25, 0.05);
}

TEST(Fault, SeverAfterFiresExactlyOnce) {
  FaultPlan plan;
  plan.seed = 5;
  plan.sever_after = 3;
  FaultInjector inj(plan, 0, 1);
  int severed_at = -1;
  for (int i = 0; i < 10; ++i) {
    const auto d = inj.next();
    if (d.sever && severed_at < 0) severed_at = i;
  }
  EXPECT_EQ(severed_at, 3);
  EXPECT_EQ(inj.counters().severed, 1u);
}

TEST(Fault, PlanEncodeDecodeRoundTrip) {
  FaultPlan plan;
  plan.seed = 0xabcdef;
  plan.drop = 0.125;
  plan.duplicate = 0.25;
  plan.delay = 0.5;
  plan.delay_ms = 7;
  plan.sever_after = 42;
  const FaultPlan back = FaultPlan::decode(plan.encode());
  EXPECT_EQ(back.seed, plan.seed);
  EXPECT_DOUBLE_EQ(back.drop, plan.drop);
  EXPECT_DOUBLE_EQ(back.duplicate, plan.duplicate);
  EXPECT_DOUBLE_EQ(back.delay, plan.delay);
  EXPECT_EQ(back.delay_ms, plan.delay_ms);
  EXPECT_EQ(back.sever_after, plan.sever_after);

  // A seeded run must see the same faults after the env round trip.
  const auto a = roll(plan, 0, 1, 50);
  const auto b = roll(back, 0, 1, 50);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].drop, b[i].drop) << "frame " << i;
}

// --- Decode hardening: a fault plan travels through an environment
// variable into forked workers, so a corrupted encoding must fail loudly
// (clear error naming the input) instead of silently disabling faults.

void expect_bad_plan(const std::string& text) {
  try {
    FaultPlan::decode(text);
    FAIL() << "decode accepted \"" << text << "\"";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("bad fault plan encoding"),
              std::string::npos)
        << e.what();
  }
}

TEST(Fault, DecodeRejectsTruncatedEncodings) {
  expect_bad_plan("");
  expect_bad_plan("12");
  expect_bad_plan("12:0.5");
  expect_bad_plan("12:0.5:0.5:0.5:2");       // 5 of 6 fields
  expect_bad_plan("12:0.5:0.5:0.5:2:3:9");   // 7 fields
}

TEST(Fault, DecodeRejectsCorruptFields) {
  expect_bad_plan("abc:0:0:0:2:-1");      // seed not a number
  expect_bad_plan("12:zero:0:0:2:-1");    // probability not a number
  expect_bad_plan("12:0.5x:0:0:2:-1");    // trailing garbage in a field
  expect_bad_plan("12:0:0:0:2:-1x");      // trailing garbage at the end
  expect_bad_plan("12:0:0:0::-1");        // empty field
}

TEST(Fault, DecodeRejectsOutOfRangeValues) {
  expect_bad_plan("12:1.5:0:0:2:-1");    // drop probability > 1
  expect_bad_plan("12:-0.1:0:0:2:-1");   // negative probability
  expect_bad_plan("12:0:2:0:2:-1");      // duplicate probability > 1
  expect_bad_plan("12:0:0:0:-3:-1");     // negative delay_ms
  expect_bad_plan("12:0:0:0:2:-2");      // sever_after below -1
}

TEST(Fault, DecodeAcceptsBoundaryValues) {
  const FaultPlan plan = FaultPlan::decode("1:0:1:0.5:0:-1");
  EXPECT_EQ(plan.seed, 1u);
  EXPECT_DOUBLE_EQ(plan.drop, 0.0);
  EXPECT_DOUBLE_EQ(plan.duplicate, 1.0);
  EXPECT_DOUBLE_EQ(plan.delay, 0.5);
  EXPECT_EQ(plan.delay_ms, 0);
  EXPECT_EQ(plan.sever_after, -1);
}

}  // namespace
}  // namespace peachy::net
