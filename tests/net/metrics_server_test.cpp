// MetricsServer routing regression: the server must parse the request
// line properly — exact path match (no "/metricsfoo" accidentally
// scraping), HEAD answered with GET's headers and no body, junk methods
// and unparseable requests refused — instead of prefix-matching the raw
// request buffer.
#include <gtest/gtest.h>
#include <poll.h>

#include <memory>
#include <string>

#include "net/metrics_server.hpp"
#include "net/socket.hpp"
#include "obs/obs.hpp"

namespace peachy {
namespace {

std::string http_request(int port, const std::string& request) {
  const net::Socket sock =
      net::Socket::connect_to("127.0.0.1", port, 5000);
  sock.send_all(request.data(), request.size(), 5000);
  sock.shutdown_write();
  std::string response;
  char buf[4096];
  for (;;) {  // drain until EOF (the server sends Connection: close)
    const ssize_t n = sock.recv_some(buf, sizeof buf);
    if (n == 0) break;
    if (n < 0) {
      pollfd pf{sock.fd(), POLLIN, 0};
      if (::poll(&pf, 1, 5000) <= 0) break;
      continue;
    }
    response.append(buf, static_cast<std::size_t>(n));
  }
  return response;
}

std::string body_of(const std::string& response) {
  const std::size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? "" : response.substr(at + 4);
}

class MetricsServerRouting : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::global().counter("routing.test.counter").add(7);
    server_ = std::make_unique<obs::MetricsServer>(
        obs::MetricsServer::Options{"127.0.0.1", 0});
  }
  std::unique_ptr<obs::MetricsServer> server_;
};

TEST_F(MetricsServerRouting, GetMetricsServesPrometheusText) {
  const std::string r =
      http_request(server_->port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(r.find("200 OK"), std::string::npos) << r;
  EXPECT_NE(r.find("routing_test_counter"), std::string::npos) << r;
}

TEST_F(MetricsServerRouting, QueryStringDoesNotBreakTheRoute) {
  const std::string r = http_request(
      server_->port(), "GET /metrics?format=prometheus HTTP/1.0\r\n\r\n");
  EXPECT_NE(r.find("200 OK"), std::string::npos) << r;
}

TEST_F(MetricsServerRouting, MetricsPrefixedPathIsNotFound) {
  const std::string r =
      http_request(server_->port(), "GET /metricsfoo HTTP/1.0\r\n\r\n");
  EXPECT_NE(r.find("404 Not Found"), std::string::npos) << r;
}

TEST_F(MetricsServerRouting, UnknownPathIsNotFound) {
  const std::string r =
      http_request(server_->port(), "GET /jobs HTTP/1.0\r\n\r\n");
  EXPECT_NE(r.find("404 Not Found"), std::string::npos) << r;
}

TEST_F(MetricsServerRouting, HeadMetricsHasHeadersButNoBody) {
  const std::string get =
      http_request(server_->port(), "GET /metrics HTTP/1.0\r\n\r\n");
  const std::string head =
      http_request(server_->port(), "HEAD /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(head.find("200 OK"), std::string::npos) << head;
  EXPECT_TRUE(body_of(head).empty()) << head;
  // HEAD advertises the length the matching GET would deliver.
  const std::string want =
      "Content-Length: " + std::to_string(body_of(get).size());
  EXPECT_NE(head.find(want), std::string::npos) << head;
}

TEST_F(MetricsServerRouting, HeadHealthzHasNoBody) {
  const std::string r =
      http_request(server_->port(), "HEAD /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(r.find("200 OK"), std::string::npos) << r;
  EXPECT_TRUE(body_of(r).empty()) << r;
  EXPECT_NE(r.find("Content-Length: 3"), std::string::npos) << r;  // "ok\n"
}

TEST_F(MetricsServerRouting, PostIsMethodNotAllowed) {
  const std::string r = http_request(
      server_->port(), "POST /metrics HTTP/1.0\r\n\r\nname=value");
  EXPECT_NE(r.find("405 Method Not Allowed"), std::string::npos) << r;
}

TEST_F(MetricsServerRouting, GarbageRequestIsBadRequest) {
  const std::string r = http_request(server_->port(), "NONSENSE\r\n\r\n");
  EXPECT_NE(r.find("400 Bad Request"), std::string::npos) << r;
}

}  // namespace
}  // namespace peachy
