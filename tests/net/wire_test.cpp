// Wire protocol: header codec, CRC32, and corruption detection.
#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "core/error.hpp"

namespace peachy::net {
namespace {

TEST(Wire, HeaderRoundTrip) {
  FrameHeader h;
  h.type = FrameType::kData;
  h.flags = 7;
  h.src = 3;
  h.tag = -4242;
  h.seq = 0x0123456789abcdefULL;
  h.ack = 0xfedcba9876543210ULL;
  h.len = 1024;
  h.crc = 0xdeadbeef;

  std::byte buf[kHeaderBytes];
  encode_header(h, buf);
  const FrameHeader back = decode_header(buf);
  EXPECT_EQ(back.version, kWireVersion);
  EXPECT_EQ(back.type, FrameType::kData);
  EXPECT_EQ(back.flags, 7);
  EXPECT_EQ(back.src, 3);
  EXPECT_EQ(back.tag, -4242);
  EXPECT_EQ(back.seq, 0x0123456789abcdefULL);
  EXPECT_EQ(back.ack, 0xfedcba9876543210ULL);
  EXPECT_EQ(back.len, 1024u);
  EXPECT_EQ(back.crc, 0xdeadbeefu);
}

TEST(Wire, SeqBeforeIsSerialArithmetic) {
  EXPECT_TRUE(seq_before(0, 1));
  EXPECT_FALSE(seq_before(1, 0));
  EXPECT_FALSE(seq_before(5, 5));
  // Across the u64 wrap: max precedes 0, and a window straddling the wrap
  // stays ordered — the property TcpOptions::first_seq tests lean on.
  const std::uint64_t top = ~std::uint64_t{0};
  EXPECT_TRUE(seq_before(top, 0));
  EXPECT_TRUE(seq_before(top - 3, top));
  EXPECT_TRUE(seq_before(top, 7));
  EXPECT_FALSE(seq_before(7, top));
}

TEST(Wire, BadMagicRejected) {
  FrameHeader h;
  std::byte buf[kHeaderBytes];
  encode_header(h, buf);
  buf[0] = std::byte{0x00};
  EXPECT_THROW(decode_header(buf), Error);
}

TEST(Wire, VersionMismatchNamesBothVersions) {
  FrameHeader h;
  std::byte buf[kHeaderBytes];
  encode_header(h, buf);
  buf[4] = std::byte{99};  // version lives at offset 4 (LE u16)
  buf[5] = std::byte{0};
  try {
    decode_header(buf);
    FAIL() << "expected version mismatch to throw";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("99"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(kWireVersion)), std::string::npos)
        << msg;
  }
}

TEST(Wire, UnknownTypeRejected) {
  FrameHeader h;
  std::byte buf[kHeaderBytes];
  encode_header(h, buf);
  buf[6] = std::byte{200};
  EXPECT_THROW(decode_header(buf), Error);
}

TEST(Wire, OversizedLenRejected) {
  FrameHeader h;
  h.len = kMaxPayloadBytes + 1;
  std::byte buf[kHeaderBytes];
  encode_header(h, buf);
  EXPECT_THROW(decode_header(buf), Error);
}

TEST(Wire, Crc32KnownVector) {
  // The canonical IEEE CRC32 check value.
  const char* s = "123456789";
  EXPECT_EQ(crc32(s, 9), 0xCBF43926u);
}

TEST(Wire, Crc32EmptyIsZero) { EXPECT_EQ(crc32(nullptr, 0), 0u); }

TEST(Wire, EncodeFrameCarriesPayloadAndCrc) {
  const std::string payload = "ghost cells";
  FrameHeader h;
  h.type = FrameType::kData;
  h.src = 1;
  h.tag = 2;
  h.seq = 5;
  const std::vector<std::byte> frame =
      encode_frame(h, payload.data(), payload.size());
  ASSERT_EQ(frame.size(), kHeaderBytes + payload.size());
  const FrameHeader back = decode_header(frame.data());
  EXPECT_EQ(back.len, payload.size());
  EXPECT_EQ(back.crc, crc32(payload.data(), payload.size()));
  EXPECT_EQ(std::memcmp(frame.data() + kHeaderBytes, payload.data(),
                        payload.size()),
            0);
}

TEST(Wire, CorruptedPayloadChangesCrc) {
  std::string payload = "halo exchange round 7";
  const std::uint32_t good = crc32(payload.data(), payload.size());
  payload[3] ^= 1;
  EXPECT_NE(crc32(payload.data(), payload.size()), good);
}

TEST(Wire, ScalarHelpersRoundTrip) {
  std::vector<std::byte> buf;
  append_u32(buf, 0xdeadbeefu);
  append_u64(buf, 0x0123456789abcdefULL);
  const char raw[3] = {'a', 'b', 'c'};
  append_bytes(buf, raw, 3);

  const std::byte* p = buf.data();
  const std::byte* end = p + buf.size();
  EXPECT_EQ(read_u32(p, end), 0xdeadbeefu);
  EXPECT_EQ(read_u64(p, end), 0x0123456789abcdefULL);
  EXPECT_EQ(static_cast<std::size_t>(end - p), 3u);
  // Reading past the end throws instead of walking off the buffer.
  EXPECT_THROW(read_u64(p, end), Error);
}

}  // namespace
}  // namespace peachy::net
