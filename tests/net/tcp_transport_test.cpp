// TcpTransport through mpp::run_world: real loopback sockets under the
// same MPI-shaped semantics as the in-process mailboxes, plus the failure
// behaviors only a real transport has (timeouts, severed links, injected
// drops/duplicates/delays).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "mpp/mpp.hpp"
#include "net/socket.hpp"
#include "sandpile/distributed.hpp"
#include "sandpile/field.hpp"

namespace peachy {
namespace {

mpp::RunOptions tcp_options() {
  mpp::RunOptions o;
  o.transport = mpp::TransportKind::kTcp;
  return o;
}

TEST(TcpTransport, PingPong) {
  const mpp::RunOutcome out =
      mpp::run_world(2, tcp_options(), [](mpp::Comm& comm) {
        if (comm.rank() == 0) {
          const std::int64_t x = 41;
          comm.send(1, 7, &x, 1);
          std::int64_t back = 0;
          comm.recv(1, 7, &back, 1);
          EXPECT_EQ(back, 42);
        } else {
          std::int64_t x = 0;
          comm.recv(0, 7, &x, 1);
          ++x;
          comm.send(0, 7, &x, 1);
        }
      });
  EXPECT_EQ(out.comm.messages_sent, 2u);
  EXPECT_EQ(out.comm.bytes_sent, 16u);
  EXPECT_EQ(out.net.fault_dropped, 0u);
}

TEST(TcpTransport, ZeroLengthMessage) {
  mpp::run_world(2, tcp_options(), [](mpp::Comm& comm) {
    std::uint32_t dummy = 0;
    if (comm.rank() == 0) {
      comm.send(1, 1, &dummy, 0);
    } else {
      comm.recv(0, 1, &dummy, 0);
    }
  });
}

TEST(TcpTransport, LargePayloadSurvivesFraming) {
  // Bigger than any single read/write chunk the kernel is likely to do.
  const std::size_t n = 1u << 20;
  mpp::run_world(2, tcp_options(), [n](mpp::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::uint8_t> data(n);
      for (std::size_t i = 0; i < n; ++i)
        data[i] = static_cast<std::uint8_t>(i * 31 + 7);
      comm.send(1, 3, data.data(), n);
    } else {
      std::vector<std::uint8_t> data(n, 0);
      comm.recv(0, 3, data.data(), n);
      std::size_t bad = 0;
      for (std::size_t i = 0; i < n; ++i)
        if (data[i] != static_cast<std::uint8_t>(i * 31 + 7)) ++bad;
      EXPECT_EQ(bad, 0u);
    }
  });
}

TEST(TcpTransport, ThreeRankCyclicExchangeDoesNotDeadlock) {
  // Everyone sends before anyone receives; a naive synchronous transport
  // would deadlock on the cycle 0->1->2->0.
  mpp::run_world(3, tcp_options(), [](mpp::Comm& comm) {
    const int next = (comm.rank() + 1) % 3;
    const int prev = (comm.rank() + 2) % 3;
    const std::int64_t mine = comm.rank() * 100;
    std::int64_t got = -1;
    comm.send(next, 9, &mine, 1);
    comm.recv(prev, 9, &got, 1);
    EXPECT_EQ(got, prev * 100);
  });
}

TEST(TcpTransport, SingleRankWorldSendsNothing) {
  const mpp::RunOutcome out =
      mpp::run_world(1, tcp_options(), [](mpp::Comm& comm) {
        EXPECT_TRUE(comm.allreduce_or(false) == false);
        comm.barrier();
      });
  EXPECT_EQ(out.comm.messages_sent, 0u);
}

TEST(TcpTransport, RecvTimeoutNamesTheChannel) {
  mpp::RunOptions opts = tcp_options();
  opts.tcp.recv_timeout_ms = 300;
  std::string message;
  mpp::run_world(2, opts, [&message](mpp::Comm& comm) {
    if (comm.rank() == 0) {
      std::int64_t x = 0;
      try {
        comm.recv(1, 77, &x, 1);  // never sent
        ADD_FAILURE() << "recv should have timed out";
      } catch (const Error& e) {
        message = e.what();
      }
    } else {
      // Outlive rank 0's failing recv without receiving anything (a recv
      // here would race against the same transport-wide timeout).
      std::this_thread::sleep_for(std::chrono::milliseconds(600));
    }
  });
  EXPECT_NE(message.find("rank 0"), std::string::npos) << message;
  EXPECT_NE(message.find("77"), std::string::npos) << message;
}

TEST(TcpTransport, SeveredConnectionSurfacesAsPeerDied) {
  mpp::RunOptions opts = tcp_options();
  opts.tcp.fault.seed = 321;
  opts.tcp.fault.sever_after = 0;  // first data frame hard-closes the link
  opts.tcp.recv_timeout_ms = 5000;
  EXPECT_THROW(mpp::run_world(2, opts,
                              [](mpp::Comm& comm) {
                                std::int64_t x = comm.rank();
                                if (comm.rank() == 0) {
                                  comm.send(1, 1, &x, 1);
                                  comm.recv(1, 2, &x, 1);
                                } else {
                                  comm.recv(0, 1, &x, 1);
                                  comm.send(0, 2, &x, 1);
                                }
                              }),
               net::PeerDied);
}

TEST(TcpTransport, SeededFaultsAreDeterministic) {
  mpp::RunOptions opts = tcp_options();
  opts.tcp.fault.seed = 4242;
  opts.tcp.fault.drop = 0.2;
  opts.tcp.fault.duplicate = 0.2;
  opts.tcp.fault.delay = 0.2;

  auto lossy_run = [&opts] {
    std::int64_t sum = 0;
    const mpp::RunOutcome out =
        mpp::run_world(2, opts, [&sum](mpp::Comm& comm) {
          std::int64_t acc = 0;
          for (int i = 0; i < 25; ++i) {
            std::int64_t x = i * (comm.rank() + 1);
            if (comm.rank() == 0) {
              comm.send(1, 4, &x, 1);
              comm.recv(1, 5, &x, 1);
              acc += x;
            } else {
              std::int64_t got = 0;
              comm.recv(0, 4, &got, 1);
              got *= 3;
              comm.send(0, 5, &got, 1);
            }
          }
          if (comm.rank() == 0) sum = acc;
        });
    return std::make_pair(out, sum);
  };

  const auto [a, a_sum] = lossy_run();
  const auto [b, b_sum] = lossy_run();
  // The protocol absorbs the faults: payload results are correct and the
  // injected-fault counters replay exactly. (Retransmit counts depend on
  // timing and are legitimately nondeterministic.)
  std::int64_t expect = 0;
  for (int i = 0; i < 25; ++i) expect += i * 3;
  EXPECT_EQ(a_sum, expect);
  EXPECT_EQ(b_sum, expect);
  EXPECT_GT(a.net.fault_dropped + a.net.fault_duplicated + a.net.fault_delayed,
            0u);
  EXPECT_EQ(a.net.fault_dropped, b.net.fault_dropped);
  EXPECT_EQ(a.net.fault_duplicated, b.net.fault_duplicated);
  EXPECT_EQ(a.net.fault_delayed, b.net.fault_delayed);
  EXPECT_EQ(a.net.fault_severed, 0u);
}

TEST(TcpTransport, DistributedSandpileMatchesInprocByteForByte) {
  const sandpile::Field initial =
      sandpile::sparse_random_pile(48, 48, 0.3, 2, 9, 1234);

  sandpile::DistributedOptions inproc;
  inproc.ranks = 3;
  inproc.halo_depth = 2;
  const sandpile::DistributedResult a =
      sandpile::stabilize_distributed(initial, inproc);

  sandpile::DistributedOptions tcp = inproc;
  tcp.run = tcp_options();
  const sandpile::DistributedResult b =
      sandpile::stabilize_distributed(initial, tcp);

  ASSERT_TRUE(a.stable);
  ASSERT_TRUE(b.stable);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.comm.messages_sent, b.comm.messages_sent);
  EXPECT_EQ(a.comm.bytes_sent, b.comm.bytes_sent);
  EXPECT_TRUE(a.field.same_interior(b.field));
}

}  // namespace
}  // namespace peachy
