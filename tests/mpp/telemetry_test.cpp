// Cluster telemetry end to end: snapshot codec round-trips, a spawned
// 4-rank world writes one merged clock-corrected trace (validated by
// scripts/trace_check.py), the live /metrics endpoint serves the
// rank-labeled rollup mid-run, a severed rank leaves a flight-recorder
// dump, and threaded worlds degrade to a single-process trace.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mpp/mpp.hpp"
#include "mpp/telemetry.hpp"
#include "net/socket.hpp"
#include "obs/obs.hpp"

namespace peachy::mpp {
namespace {

using namespace std::chrono_literals;

std::filesystem::path fresh_dir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("peachy-telemetry-" + tag + "-" +
                    std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(TelemetryCodec, SnapshotRoundTrips) {
  std::vector<obs::MetricSample> samples(2);
  samples[0].name = "mpp.messages";
  samples[0].kind = obs::MetricSample::Kind::kCounter;
  samples[0].value = 42;
  samples[1].name = "lat";
  samples[1].kind = obs::MetricSample::Kind::kHistogram;
  samples[1].count = 3;
  samples[1].sum = 12;
  samples[1].buckets = {0, 1, 2};

  std::vector<obs::TraceEvent> events(1);
  events[0].name = "mpp.send";
  events[0].cat = "mpp";
  events[0].ph = obs::TraceEvent::Phase::kInstant;
  events[0].ts_ns = 123456789;
  events[0].tid = 7;
  events[0].args = {{"span_id", 99}, {"bytes", -1}};

  const std::vector<std::byte> wire =
      telemetry::encode_snapshot(3, samples, events);
  const telemetry::Snapshot back = telemetry::decode_snapshot(wire);

  EXPECT_EQ(back.rank, 3);
  ASSERT_EQ(back.samples.size(), 2u);
  EXPECT_EQ(back.samples[0].name, "mpp.messages");
  EXPECT_EQ(back.samples[0].value, 42);
  EXPECT_EQ(back.samples[1].kind, obs::MetricSample::Kind::kHistogram);
  EXPECT_EQ(back.samples[1].buckets, (std::vector<std::uint64_t>{0, 1, 2}));
  ASSERT_EQ(back.events.size(), 1u);
  EXPECT_EQ(back.events[0].name, "mpp.send");
  EXPECT_EQ(back.events[0].ph, obs::TraceEvent::Phase::kInstant);
  EXPECT_EQ(back.events[0].ts_ns, 123456789);
  EXPECT_EQ(back.events[0].tid, 7);
  ASSERT_EQ(back.events[0].args.size(), 2u);
  EXPECT_EQ(back.events[0].args[1].second, -1);
}

TEST(TelemetryCodec, TruncatedSnapshotThrows) {
  std::vector<std::byte> wire = telemetry::encode_snapshot(0, {}, {});
  wire.pop_back();
  EXPECT_THROW(telemetry::decode_snapshot(wire), Error);
}

// The traffic pattern every e2e test runs: a ring shuffle (rank r sends to
// r+1, so every rank is both sender and receiver) plus collectives.
void ring_body(Comm& comm) {
  const int next = (comm.rank() + 1) % comm.size();
  const int prev = (comm.rank() + comm.size() - 1) % comm.size();
  for (int round = 0; round < 5; ++round) {
    const std::int64_t v = comm.rank() * 100 + round;
    comm.send(next, 11, &v, 1);
    std::int64_t got = 0;
    comm.recv(prev, 11, &got, 1);
    EXPECT_EQ(got, prev * 100 + round);
  }
  const std::int64_t total = comm.allreduce_sum(comm.rank());
  EXPECT_EQ(total, comm.size() * (comm.size() - 1) / 2);
}

TEST(TelemetrySpawned, FourRankWorldWritesOneMergedValidTrace) {
  const auto dir = fresh_dir("trace");
  const std::string trace = (dir / "merged.json").string();

  Telemetry telemetry;
  telemetry.enabled = true;
  telemetry.interval_ms = 50;
  telemetry.trace_path = trace;

  const RunOutcome out = run_spawned(4, {}, ring_body, {}, {}, telemetry);
  EXPECT_GT(out.comm.messages_sent, 0u);
  ASSERT_TRUE(std::filesystem::exists(trace)) << trace;

  // The stdlib validator is the contract: per-track monotone timestamps,
  // every parent_span_id resolved, events from all 4 ranks.
  const std::string cmd = "python3 " PEACHY_SOURCE_DIR
                          "/scripts/trace_check.py \"" +
                          trace + "\" --min-ranks 4";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd;

  // Cross-rank causality in the raw JSON: some mpp.recv adopted a context.
  const std::string text = slurp(trace);
  EXPECT_NE(text.find("mpp.send"), std::string::npos);
  EXPECT_NE(text.find("mpp.recv"), std::string::npos);
  EXPECT_NE(text.find("parent_span_id"), std::string::npos);
  EXPECT_NE(text.find("\"rank 3\""), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(TelemetrySpawned, MetricsEndpointServesRankLabeledRollupMidRun) {
  const auto dir = fresh_dir("metrics");
  const std::string port_file = (dir / "port").string();

  Telemetry telemetry;
  telemetry.enabled = true;
  telemetry.interval_ms = 20;
  telemetry.metrics_port = 0;  // ephemeral; discovered via the port file
  telemetry.port_file = port_file;

  // Scraper thread: wait for rank 0 to publish its port, then GET /metrics
  // repeatedly while the world is still running, keeping the first response
  // that contains the shipped rank-1 rollup. Retrying (rather than one
  // scrape at a fixed delay) keeps the test honest under sanitizer/load
  // slowdowns — the world below holds for several seconds.
  std::string scraped;
  std::thread scraper([&] {
    int port = 0;
    for (int i = 0; i < 300 && port == 0; ++i) {
      std::this_thread::sleep_for(20ms);
      std::ifstream in(port_file);
      in >> port;
    }
    if (port == 0) return;
    const auto deadline = std::chrono::steady_clock::now() + 4s;
    while (std::chrono::steady_clock::now() < deadline) {
      std::string body;
      try {
        net::Socket s = net::Socket::connect_to("127.0.0.1", port, 3000);
        const std::string req = "GET /metrics HTTP/1.0\r\n\r\n";
        s.send_all(req.data(), req.size(), 3000);
        char buf[65536];
        for (;;) {
          const ssize_t n = s.recv_some(buf, sizeof buf);
          if (n == 0) break;
          if (n < 0) {
            std::this_thread::sleep_for(10ms);
            continue;
          }
          body.append(buf, static_cast<std::size_t>(n));
        }
      } catch (const Error&) {
      }
      if (!body.empty()) scraped = body;
      if (body.find("rank=\"1\"") != std::string::npos) return;
      std::this_thread::sleep_for(100ms);
    }
  });

  run_spawned(
      2, {},
      [](Comm& comm) {
        ring_body(comm);
        // Keep the world alive long enough for the scrape.
        std::this_thread::sleep_for(3s);
        comm.barrier();
      },
      {}, {}, telemetry);
  scraper.join();

  ASSERT_NE(scraped.find("200 OK"), std::string::npos) << scraped;
  // The rollup labels rank 0's own metrics and the shipped rank-1 ones.
  EXPECT_NE(scraped.find("mpp_messages{rank=\"0\"}"), std::string::npos)
      << scraped;
  EXPECT_NE(scraped.find("mpp_messages{rank=\"1\"}"), std::string::npos)
      << scraped;
  std::filesystem::remove_all(dir);
}

TEST(TelemetrySpawned, SeveredRankLeavesFlightRecorderDump) {
  const auto dir = fresh_dir("flight");
  ::setenv("PEACHY_FLIGHT_DIR", dir.c_str(), 1);

  Telemetry telemetry;
  telemetry.enabled = true;
  telemetry.interval_ms = 50;

  net::TcpOptions tcp;
  tcp.ack_timeout_ms = 20;
  tcp.max_retries = 3;
  tcp.recv_timeout_ms = 3000;
  tcp.goodbye_timeout_ms = 300;
  tcp.fault.seed = 11;
  // Sever mid-ring (round 4 of 5) so the failure hits application traffic,
  // not the final telemetry snapshot (whose send errors are swallowed by
  // design: telemetry must never mask a clean run's result).
  tcp.fault.sever_after = 3;

  EXPECT_THROW(run_spawned(2, {}, ring_body, tcp, {}, telemetry), Error);
  ::unsetenv("PEACHY_FLIGHT_DIR");

  // At least one rank must have written a post-mortem naming its rank.
  std::vector<std::string> dumps;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    dumps.push_back(entry.path().filename().string());
  ASSERT_FALSE(dumps.empty()) << "no flight dump in " << dir;
  bool named = false, has_reason = false;
  for (const std::string& name : dumps) {
    if (name == "flight-0.json" || name == "flight-1.json") named = true;
    const std::string text = slurp(dir / name);
    if (text.find("\"reason\":") != std::string::npos &&
        text.find("\"events\":[") != std::string::npos)
      has_reason = true;
  }
  EXPECT_TRUE(named) << "dump not named after a rank";
  EXPECT_TRUE(has_reason) << "dump lacks reason/events";
  std::filesystem::remove_all(dir);
}

TEST(TelemetryThreaded, TcpWorldWritesSingleProcessTrace) {
  const auto dir = fresh_dir("threaded");
  const std::string trace = (dir / "trace.json").string();

  RunOptions options;
  options.transport = TransportKind::kTcp;
  options.telemetry.enabled = true;
  options.telemetry.trace_path = trace;

  obs::Tracer::global().clear();
  run_world(2, options, ring_body);
  ASSERT_TRUE(std::filesystem::exists(trace));
  const std::string cmd = "python3 " PEACHY_SOURCE_DIR
                          "/scripts/trace_check.py \"" +
                          trace + "\"";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd;
  EXPECT_NE(slurp(trace).find("mpp.send"), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace peachy::mpp
