// Checkpoint/restore and the supervised restart loop: the pieces that turn
// "a rank died" from a propagated error into a bounded recovery.
#include <gtest/gtest.h>

#include <stdlib.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "mpp/checkpoint.hpp"
#include "mpp/mpp.hpp"

namespace peachy::mpp {
namespace {

// A fresh private directory per test, removed on teardown.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/peachy-resilience-XXXXXX";
    path_ = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<std::byte> blob_of(std::int32_t value) {
  std::vector<std::byte> b(sizeof(value));
  std::memcpy(b.data(), &value, sizeof(value));
  return b;
}

std::int32_t value_of(const std::vector<std::byte>& b) {
  std::int32_t value = -1;
  EXPECT_EQ(b.size(), sizeof(value));
  if (b.size() == sizeof(value)) std::memcpy(&value, b.data(), sizeof(value));
  return value;
}

TEST(Checkpoint, FileRoundTripPreservesEpochAndBlobs) {
  TempDir dir;
  CheckpointImage image;
  image.epoch = 3;
  image.blobs = {blob_of(10), blob_of(20), {}};  // empty blob is legal
  save_checkpoint(dir.path(), image);
  // The commit is an atomic rename: no temp file may survive it.
  EXPECT_FALSE(std::filesystem::exists(dir.path() + "/ckpt.tmp"));

  const auto back = load_checkpoint(dir.path(), 3);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->epoch, 3);
  ASSERT_EQ(back->blobs.size(), 3u);
  EXPECT_EQ(value_of(back->blobs[0]), 10);
  EXPECT_EQ(value_of(back->blobs[1]), 20);
  EXPECT_TRUE(back->blobs[2].empty());
}

TEST(Checkpoint, MissingFileIsNotAnError) {
  TempDir dir;
  EXPECT_FALSE(load_checkpoint(dir.path(), 2).has_value());
}

TEST(Checkpoint, CorruptedFileIsRejected) {
  TempDir dir;
  CheckpointImage image;
  image.epoch = 1;
  image.blobs = {blob_of(42), blob_of(43)};
  save_checkpoint(dir.path(), image);

  const std::string file = dir.path() + "/" + kCheckpointFile;
  {
    // Flip one payload byte; the CRC trailer must catch it.
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(18);
    char b = 0;
    f.seekg(18);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(18);
    f.write(&b, 1);
  }
  EXPECT_THROW(load_checkpoint(dir.path(), 2), Error);
}

TEST(Checkpoint, TruncatedFileIsRejected) {
  TempDir dir;
  CheckpointImage image;
  image.epoch = 1;
  image.blobs = {blob_of(42)};
  save_checkpoint(dir.path(), image);
  const std::string file = dir.path() + "/" + kCheckpointFile;
  std::filesystem::resize_file(file, std::filesystem::file_size(file) - 3);
  EXPECT_THROW(load_checkpoint(dir.path(), 1), Error);
}

TEST(Checkpoint, WorldSizeMismatchIsRejected) {
  TempDir dir;
  CheckpointImage image;
  image.epoch = 1;
  image.blobs = {blob_of(1), blob_of(2)};
  save_checkpoint(dir.path(), image);
  EXPECT_THROW(load_checkpoint(dir.path(), 3), Error);
}

TEST(Resilience, CommCheckpointRestoreRoundTrip) {
  TempDir dir;
  RunOptions opt;
  opt.resilience.checkpoint_dir = dir.path();
  run_world(3, opt, [](Comm& comm) {
    ASSERT_TRUE(comm.checkpointing());
    const std::int32_t mine = 100 + comm.rank();
    const std::vector<std::byte> blob = blob_of(mine);
    const int epoch = comm.checkpoint(blob.data(), blob.size());
    EXPECT_EQ(epoch, 1);
    const auto back = comm.restore();
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(value_of(*back), mine);  // each rank gets its own slab back
    EXPECT_EQ(comm.checkpoint_epoch(), 1);
  });
}

TEST(Resilience, RestoreWithoutACommittedCheckpointIsEmpty) {
  TempDir dir;
  RunOptions opt;
  opt.resilience.checkpoint_dir = dir.path();
  run_world(2, opt, [](Comm& comm) {
    EXPECT_FALSE(comm.restore().has_value());
    EXPECT_EQ(comm.checkpoint_epoch(), 0);
  });
}

TEST(Resilience, CheckpointWithoutADirectoryThrows) {
  run_world(1, RunOptions{}, [](Comm& comm) {
    EXPECT_FALSE(comm.checkpointing());
    const std::int32_t x = 1;
    EXPECT_THROW(comm.checkpoint(&x, sizeof(x)), Error);
    EXPECT_THROW(comm.restore(), Error);
  });
}

TEST(Resilience, SupervisedRunRestartsFromTheLastCheckpoint) {
  std::atomic<int> attempts{0};
  RunOptions opt;
  opt.resilience.max_restarts = 3;  // unnamed dir: private, auto-removed
  const RunOutcome out = run_world(1, opt, [&](Comm& comm) {
    attempts.fetch_add(1);
    if (const auto blob = comm.restore()) {
      // Second attempt: resume from what the failed attempt committed.
      EXPECT_EQ(value_of(*blob), 7);
      EXPECT_EQ(comm.checkpoint_epoch(), 1);
      return;
    }
    const std::vector<std::byte> blob = blob_of(7);
    comm.checkpoint(blob.data(), blob.size());
    throw Error("transient failure after the first checkpoint");
  });
  EXPECT_EQ(attempts.load(), 2);
  EXPECT_EQ(out.restarts, 1);
}

TEST(Resilience, MultiRankSupervisedRestoreHandsEachRankItsSlab) {
  std::atomic<int> bodies{0};
  RunOptions opt;
  opt.resilience.max_restarts = 2;
  const RunOutcome out = run_world(2, opt, [&](Comm& comm) {
    bodies.fetch_add(1);
    const auto blob = comm.restore();
    if (!blob) {
      const std::vector<std::byte> mine = blob_of(10 * (comm.rank() + 1));
      comm.checkpoint(mine.data(), mine.size());
      // Every rank throws, so nobody blocks on a peer that already left.
      throw Error("transient failure on rank " +
                  std::to_string(comm.rank()));
    }
    EXPECT_EQ(value_of(*blob), 10 * (comm.rank() + 1));
    const std::int64_t sum = comm.allreduce_sum(value_of(*blob));
    EXPECT_EQ(sum, 30);
  });
  EXPECT_EQ(bodies.load(), 4);  // 2 ranks x 2 attempts
  EXPECT_EQ(out.restarts, 1);
}

TEST(Resilience, ExhaustedRestartBudgetPropagatesTheError) {
  std::atomic<int> attempts{0};
  RunOptions opt;
  opt.resilience.max_restarts = 2;
  try {
    run_world(1, opt, [&](Comm&) {
      attempts.fetch_add(1);
      throw Error("persistent failure");
    });
    FAIL() << "a persistent failure must eventually surface";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("persistent failure"),
              std::string::npos);
  }
  EXPECT_EQ(attempts.load(), 3);  // initial + 2 restarts
}

TEST(Resilience, NamedCheckpointDirSurvivesTheRun) {
  // Cross-invocation resume: the first (capped) run commits a checkpoint
  // into a caller-named directory; a second run restores from it.
  TempDir dir;
  RunOptions opt;
  opt.resilience.checkpoint_dir = dir.path();
  run_world(1, opt, [](Comm& comm) {
    const std::vector<std::byte> blob = blob_of(55);
    comm.checkpoint(blob.data(), blob.size());
  });
  ASSERT_TRUE(
      std::filesystem::exists(dir.path() + "/" + std::string(kCheckpointFile)));
  run_world(1, opt, [](Comm& comm) {
    const auto blob = comm.restore();
    ASSERT_TRUE(blob.has_value());
    EXPECT_EQ(value_of(*blob), 55);
  });
}

}  // namespace
}  // namespace peachy::mpp
