#include "mpp/mpp.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace peachy::mpp {
namespace {

TEST(Mpp, WorldRequiresRanks) {
  EXPECT_THROW(World(0), Error);
  EXPECT_THROW(World(-2), Error);
}

TEST(Mpp, SingleRankRuns) {
  std::atomic<int> ran{0};
  run(1, [&](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    comm.barrier();
    ++ran;
  });
  EXPECT_EQ(ran.load(), 1);
}

TEST(Mpp, PointToPointRoundTrip) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const int v = 42;
      comm.send(1, 7, &v, 1);
      int back = 0;
      comm.recv(1, 8, &back, 1);
      EXPECT_EQ(back, 43);
    } else {
      int v = 0;
      comm.recv(0, 7, &v, 1);
      const int reply = v + 1;
      comm.send(0, 8, &reply, 1);
    }
  });
}

TEST(Mpp, MessagesMatchOnSourceAndTag) {
  run(3, [](Comm& comm) {
    if (comm.rank() == 0) {
      // Receive tag 2 before tag 1, and from rank 2 before rank 1, to prove
      // matching is not arrival-order dependent.
      const int a = 10, b = 20, c = 30;
      comm.barrier();
      int got = 0;
      comm.recv(2, 2, &got, 1);
      EXPECT_EQ(got, 30);
      comm.recv(1, 2, &got, 1);
      EXPECT_EQ(got, 20);
      comm.recv(1, 1, &got, 1);
      EXPECT_EQ(got, 10);
      (void)a;
      (void)b;
      (void)c;
    } else if (comm.rank() == 1) {
      const int t1 = 10, t2 = 20;
      comm.send(0, 1, &t1, 1);
      comm.send(0, 2, &t2, 1);
      comm.barrier();
    } else {
      const int t2 = 30;
      comm.send(0, 2, &t2, 1);
      comm.barrier();
    }
  });
}

TEST(Mpp, FifoPerChannel) {
  run(2, [](Comm& comm) {
    constexpr int kN = 100;
    if (comm.rank() == 0) {
      for (int i = 0; i < kN; ++i) comm.send(1, 0, &i, 1);
    } else {
      for (int i = 0; i < kN; ++i) {
        int v = -1;
        comm.recv(0, 0, &v, 1);
        EXPECT_EQ(v, i);  // non-overtaking within a channel
      }
    }
  });
}

TEST(Mpp, SizeMismatchThrows) {
  EXPECT_THROW(run(2,
                   [](Comm& comm) {
                     if (comm.rank() == 0) {
                       const std::int64_t v[2] = {1, 2};
                       comm.send(1, 0, v, 2);
                     } else {
                       std::int64_t v = 0;
                       comm.recv(0, 0, &v, 1);  // expects 8 bytes, gets 16
                     }
                   }),
               Error);
}

TEST(Mpp, SendRecvExchangesWithoutDeadlock) {
  run(2, [](Comm& comm) {
    const int partner = 1 - comm.rank();
    std::vector<double> mine(64, comm.rank() + 1.0), theirs(64, 0.0);
    comm.sendrecv(partner, 3, mine.data(), theirs.data(), 64);
    for (double v : theirs) EXPECT_DOUBLE_EQ(v, partner + 1.0);
  });
}

TEST(Mpp, AllreduceSum) {
  for (int ranks : {1, 2, 3, 5, 8}) {
    run(ranks, [ranks](Comm& comm) {
      const std::int64_t total = comm.allreduce_sum(comm.rank() + 1);
      EXPECT_EQ(total, static_cast<std::int64_t>(ranks) * (ranks + 1) / 2);
    });
  }
}

TEST(Mpp, AllreduceMax) {
  run(4, [](Comm& comm) {
    EXPECT_EQ(comm.allreduce_max(comm.rank() * 10), 30);
    EXPECT_EQ(comm.allreduce_max(-comm.rank()), 0);
  });
}

TEST(Mpp, AllreduceOr) {
  run(4, [](Comm& comm) {
    EXPECT_TRUE(comm.allreduce_or(comm.rank() == 2));
    EXPECT_FALSE(comm.allreduce_or(false));
  });
}

TEST(Mpp, RepeatedCollectivesStaySynchronized) {
  run(4, [](Comm& comm) {
    for (int i = 0; i < 50; ++i) {
      const std::int64_t s = comm.allreduce_sum(i);
      EXPECT_EQ(s, 4 * i);
      comm.barrier();
      const std::int64_t m = comm.allreduce_max(comm.rank() + i);
      EXPECT_EQ(m, 3 + i);
    }
  });
}

TEST(Mpp, GatherConcatenatesInRankOrder) {
  run(3, [](Comm& comm) {
    std::vector<int> mine(static_cast<std::size_t>(comm.rank()) + 1,
                          comm.rank());
    const auto all = comm.gather(0, mine);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), 6u);  // 1 + 2 + 3
      EXPECT_EQ(all[0], 0);
      EXPECT_EQ(all[1], 1);
      EXPECT_EQ(all[2], 1);
      EXPECT_EQ(all[3], 2);
      EXPECT_EQ(all[5], 2);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Mpp, GatherEmptyVectorsWork) {
  run(3, [](Comm& comm) {
    std::vector<int> empty;
    const auto all = comm.gather(1, empty);
    EXPECT_TRUE(all.empty());
  });
}

TEST(Mpp, BroadcastDeliversRootData) {
  run(4, [](Comm& comm) {
    std::vector<int> buf(8, comm.rank() == 2 ? 99 : -1);
    comm.broadcast(2, buf.data(), buf.size());
    for (int v : buf) EXPECT_EQ(v, 99);
  });
}

TEST(Mpp, BroadcastSingleRankNoop) {
  run(1, [](Comm& comm) {
    int v = 7;
    comm.broadcast(0, &v, 1);
    EXPECT_EQ(v, 7);
  });
}

TEST(Mpp, ScatterDistributesChunks) {
  run(3, [](Comm& comm) {
    std::vector<int> all;
    if (comm.rank() == 0)
      all = {10, 11, 20, 21, 30, 31};
    const auto mine = comm.scatter(0, all, 2);
    ASSERT_EQ(mine.size(), 2u);
    EXPECT_EQ(mine[0], 10 * (comm.rank() + 1));
    EXPECT_EQ(mine[1], 10 * (comm.rank() + 1) + 1);
  });
}

TEST(Mpp, ScatterValidatesRootSize) {
  // Single-rank world so the throwing root cannot leave peers blocked.
  EXPECT_THROW(run(1,
                   [](Comm& comm) {
                     std::vector<int> all(3);  // not 1 * chunk
                     comm.scatter(0, all, 2);
                   }),
               Error);
}

TEST(Mpp, ScatterGatherRoundTrip) {
  run(4, [](Comm& comm) {
    std::vector<double> all;
    if (comm.rank() == 0)
      for (int i = 0; i < 12; ++i) all.push_back(i * 1.5);
    auto mine = comm.scatter(0, all, 3);
    for (double& v : mine) v *= 2.0;
    const auto gathered = comm.gather(0, mine);
    if (comm.rank() == 0) {
      ASSERT_EQ(gathered.size(), 12u);
      for (int i = 0; i < 12; ++i) EXPECT_DOUBLE_EQ(gathered[i], i * 3.0);
    }
  });
}

TEST(Mpp, StatsCountMessagesAndBytes) {
  const CommStats total = run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const double v[8] = {};
      comm.send(1, 0, v, 8);
    } else {
      double v[8];
      comm.recv(0, 0, v, 8);
    }
  });
  EXPECT_EQ(total.messages_sent, 1u);
  EXPECT_EQ(total.bytes_sent, 64u);
}

TEST(Mpp, ExceptionInRankPropagates) {
  EXPECT_THROW(run(2,
                   [](Comm& comm) {
                     if (comm.rank() == 1) throw Error("rank 1 failed");
                   }),
               Error);
}

TEST(Mpp, SendToBadRankThrows) {
  EXPECT_THROW(run(2,
                   [](Comm& comm) {
                     if (comm.rank() == 0) {
                       int v = 0;
                       comm.send(5, 0, &v, 1);
                     }
                   }),
               Error);
}

}  // namespace
}  // namespace peachy::mpp
