// mpp edge cases, run against BOTH transports through one parameterized
// fixture — the point of the pluggable seam is that inproc mailboxes and
// real sockets are observably identical at the Comm level.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "mpp/mpp.hpp"

namespace peachy::mpp {
namespace {

class TransportSemantics : public ::testing::TestWithParam<TransportKind> {
 protected:
  RunOptions options() const {
    RunOptions o;
    o.transport = GetParam();
    return o;
  }
};

INSTANTIATE_TEST_SUITE_P(
    Backends, TransportSemantics,
    ::testing::Values(TransportKind::kInproc, TransportKind::kTcp),
    [](const ::testing::TestParamInfo<TransportKind>& info) {
      return std::string(to_string(info.param));
    });

TEST_P(TransportSemantics, ZeroLengthSendRecv) {
  run_world(2, options(), [](Comm& comm) {
    std::uint8_t sentinel = 0xab;  // must stay untouched by a 0-byte recv
    if (comm.rank() == 0) {
      comm.send(1, 5, &sentinel, 0);
    } else {
      comm.recv(0, 5, &sentinel, 0);
      EXPECT_EQ(sentinel, 0xab);
    }
  });
}

TEST_P(TransportSemantics, InterleavedTagsStayFifoPerChannel) {
  run_world(2, options(), [](Comm& comm) {
    constexpr int kA = 10, kB = 20;
    if (comm.rank() == 0) {
      for (std::int64_t i = 0; i < 4; ++i) {
        const std::int64_t a = 100 + i, b = 200 + i;
        comm.send(1, kA, &a, 1);
        comm.send(1, kB, &b, 1);
      }
    } else {
      // Drain channel B first: tag A's backlog must not disturb B's FIFO
      // order, and vice versa (MPI's non-overtaking rule per channel).
      for (std::int64_t i = 0; i < 4; ++i) {
        std::int64_t b = 0;
        comm.recv(0, kB, &b, 1);
        EXPECT_EQ(b, 200 + i);
      }
      for (std::int64_t i = 0; i < 4; ++i) {
        std::int64_t a = 0;
        comm.recv(0, kA, &a, 1);
        EXPECT_EQ(a, 100 + i);
      }
    }
  });
}

TEST_P(TransportSemantics, GatherWithEmptyVectors) {
  run_world(3, options(), [](Comm& comm) {
    std::vector<std::int32_t> mine;
    if (comm.rank() == 1) mine = {11, 12};
    const std::vector<std::int32_t> all = comm.gather(0, mine);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), 2u);  // ranks 0 and 2 contributed nothing
      EXPECT_EQ(all[0], 11);
      EXPECT_EQ(all[1], 12);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(TransportSemantics, GatherAllEmpty) {
  run_world(3, options(), [](Comm& comm) {
    const std::vector<std::int32_t> empty;
    const std::vector<std::int32_t> all = comm.gather(0, empty);
    EXPECT_TRUE(all.empty());
  });
}

TEST_P(TransportSemantics, AllreduceOrSingleRankWorld) {
  const RunOutcome out = run_world(1, options(), [](Comm& comm) {
    EXPECT_FALSE(comm.allreduce_or(false));
    EXPECT_TRUE(comm.allreduce_or(true));
  });
  EXPECT_EQ(out.comm.messages_sent, 0u);
}

TEST_P(TransportSemantics, SendRecvExchange) {
  run_world(2, options(), [](Comm& comm) {
    const std::int64_t mine = comm.rank() + 1;
    std::int64_t theirs = 0;
    comm.sendrecv(1 - comm.rank(), 3, &mine, &theirs, 1);
    EXPECT_EQ(theirs, 2 - comm.rank());
  });
}

TEST_P(TransportSemantics, RepeatedCollectivesDoNotCrossTalk) {
  run_world(3, options(), [](Comm& comm) {
    for (std::int64_t round = 0; round < 5; ++round) {
      EXPECT_EQ(comm.allreduce_sum(round), 3 * round);
      EXPECT_EQ(comm.allreduce_max(comm.rank() + round), 2 + round);
      comm.barrier();
    }
  });
}

TEST_P(TransportSemantics, SendToBadRankNamesEverything) {
  run_world(1, options(), [](Comm& comm) {
    const std::int64_t x = 0;
    try {
      comm.send(7, 5, &x, 1);
      ADD_FAILURE() << "send to rank 7 in a 1-rank world must throw";
    } catch (const Error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("rank 0"), std::string::npos) << msg;
      EXPECT_NE(msg.find("bad rank 7"), std::string::npos) << msg;
      EXPECT_NE(msg.find("tag 5"), std::string::npos) << msg;
    }
  });
}

TEST_P(TransportSemantics, SizeMismatchNamesTheChannel) {
  std::string message;
  try {
    run_world(2, options(), [&message](Comm& comm) {
      if (comm.rank() == 0) {
        const std::int32_t small = 1;
        comm.send(1, 6, &small, 1);
      } else {
        std::int64_t big = 0;
        comm.recv(0, 6, &big, 1);  // expects 8 bytes, gets 4
      }
    });
    FAIL() << "size mismatch must propagate";
  } catch (const Error& e) {
    message = e.what();
  }
  EXPECT_NE(message.find("size mismatch"), std::string::npos) << message;
  EXPECT_NE(message.find("rank 1"), std::string::npos) << message;
  EXPECT_NE(message.find("rank 0"), std::string::npos) << message;
  EXPECT_NE(message.find("tag 6"), std::string::npos) << message;
}

}  // namespace
}  // namespace peachy::mpp
