#include "pap/runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>

#include "core/error.hpp"
#include "sandpile/field.hpp"
#include "sandpile/kernels.hpp"

namespace peachy::pap {
namespace {

// A kernel that counts invocations per tile and "changes" for the first
// `active_iters` iterations of selected tiles.
struct CountingKernel {
  explicit CountingKernel(int tiles) : calls(static_cast<std::size_t>(tiles)) {}
  std::vector<std::atomic<int>> calls;

  TileKernel stable_after(int iters) {
    return [this, iters](const Tile& t, int iter) {
      ++calls[static_cast<std::size_t>(t.index)];
      return iter < iters;
    };
  }
};

TEST(Runner, RunsUntilStable) {
  TileGrid tiles(16, 16, 8, 8);
  CountingKernel k(tiles.count());
  Runner runner(tiles, RunOptions{});
  const RunResult r = runner.run(k.stable_after(3));
  // Iterations 0,1,2 change; iteration 3 reports no change and stops.
  EXPECT_EQ(r.iterations, 4);
  EXPECT_TRUE(r.stable);
  EXPECT_EQ(r.tasks, 16u);  // 4 iterations x 4 tiles
  for (auto& c : k.calls) EXPECT_EQ(c.load(), 4);
}

TEST(Runner, MaxIterationsBoundsRun) {
  TileGrid tiles(16, 16, 8, 8);
  RunOptions opt;
  opt.max_iterations = 2;
  CountingKernel k(tiles.count());
  Runner runner(tiles, opt);
  const RunResult r = runner.run(k.stable_after(1000));
  EXPECT_EQ(r.iterations, 2);
  EXPECT_FALSE(r.stable);
}

TEST(Runner, EverySchedulePolicyCoversAllTiles) {
  for (const Schedule s :
       {Schedule::kStatic, Schedule::kStaticChunk1, Schedule::kDynamic,
        Schedule::kGuided, Schedule::kWorkStealing}) {
    TileGrid tiles(32, 32, 8, 8);
    RunOptions opt;
    opt.schedule = s;
    opt.max_iterations = 1;
    CountingKernel k(tiles.count());
    Runner runner(tiles, opt);
    const RunResult r = runner.run(k.stable_after(1000));
    EXPECT_EQ(r.tasks, 16u) << to_string(s);
    for (auto& c : k.calls) EXPECT_EQ(c.load(), 1) << to_string(s);
  }
}

TEST(Runner, LazySkipsQuietTiles) {
  // Only tile 0 keeps changing; lazy execution must not recompute far-away
  // tiles after the first iteration.
  TileGrid tiles(32, 32, 8, 8);  // 4x4 tiles
  RunOptions opt;
  opt.lazy = true;
  opt.max_iterations = 5;
  CountingKernel k(tiles.count());
  Runner runner(tiles, opt);
  runner.run([&](const Tile& t, int) {
    ++k.calls[static_cast<std::size_t>(t.index)];
    return t.index == 0;
  });
  // Tile 15 (far corner) ran only during the initial full sweep.
  EXPECT_EQ(k.calls[15].load(), 1);
  // Tile 0 ran every iteration.
  EXPECT_EQ(k.calls[0].load(), 5);
  // Neighbours of tile 0 (tiles 1 and 4) are reactivated every iteration.
  EXPECT_EQ(k.calls[1].load(), 5);
  EXPECT_EQ(k.calls[4].load(), 5);
  // Diagonal tile 5 is NOT a 4-neighbour; it runs only the first sweep.
  EXPECT_EQ(k.calls[5].load(), 1);
}

TEST(Runner, LazyReachesStableWhenActivationDrains) {
  TileGrid tiles(32, 32, 8, 8);
  RunOptions opt;
  opt.lazy = true;
  Runner runner(tiles, opt);
  const RunResult r = runner.run([](const Tile&, int iter) {
    return iter < 2;  // everything changes twice, then silence
  });
  EXPECT_TRUE(r.stable);
  EXPECT_EQ(r.iterations, 3);  // two changing sweeps + the quiet one
}

TEST(Runner, CheckerboardSplitsWaves) {
  TileGrid tiles(32, 32, 8, 8);  // 4x4 tiles
  RunOptions opt;
  opt.checkerboard = true;
  opt.max_iterations = 1;
  std::mutex mu;
  std::vector<int> wave_of_tile(16, -1);
  int next_wave_mark = 0;
  std::set<int> seen_parities;
  Runner runner(tiles, opt);
  runner.run([&](const Tile& t, int) {
    std::lock_guard lock(mu);
    wave_of_tile[static_cast<std::size_t>(t.index)] = next_wave_mark++;
    seen_parities.insert((t.ty + t.tx) & 1);
    return false;
  });
  // All 16 tiles ran.
  for (int w : wave_of_tile) EXPECT_GE(w, 0);
  EXPECT_EQ(seen_parities.size(), 2u);
  // All parity-0 tiles ran strictly before all parity-1 tiles.
  int max_even = -1, min_odd = 1000;
  for (int i = 0; i < 16; ++i) {
    const Tile t = tiles.tile(i);
    const int mark = wave_of_tile[static_cast<std::size_t>(i)];
    if (((t.ty + t.tx) & 1) == 0)
      max_even = std::max(max_even, mark);
    else
      min_odd = std::min(min_odd, mark);
  }
  EXPECT_LT(max_even, min_odd);
}

TEST(Runner, CheckerboardRequiresTilesAtLeast2x2) {
  RunOptions opt;
  opt.checkerboard = true;
  EXPECT_THROW(Runner(TileGrid(8, 8, 1, 8), opt), Error);
  EXPECT_NO_THROW(Runner(TileGrid(8, 8, 2, 2), opt));
}

TEST(Runner, TraceRecordsEveryTask) {
  TileGrid tiles(32, 32, 8, 8);
  TraceRecorder trace(64);
  RunOptions opt;
  opt.trace = &trace;
  opt.max_iterations = 3;
  Runner runner(tiles, opt);
  const RunResult r = runner.run([](const Tile&, int) { return true; });
  EXPECT_EQ(trace.total_tasks(), r.tasks);
  EXPECT_EQ(trace.iteration(1).size(), 16u);
  for (const TaskRecord& rec : trace.merged()) {
    EXPECT_GE(rec.end_ns, rec.start_ns);
    EXPECT_EQ(rec.h, 8);
  }
}

TEST(Runner, TraceWithTooFewLanesThrows) {
  TraceRecorder trace(1);
  RunOptions opt;
  opt.trace = &trace;
  opt.threads = 4;
  EXPECT_THROW(Runner(TileGrid(8, 8, 4, 4), opt), Error);
}

TEST(Runner, IterationHookSeesChangeFlag) {
  TileGrid tiles(8, 8, 4, 4);
  std::vector<bool> flags;
  RunOptions opt;
  opt.on_iteration = [&flags](int, bool changed) { flags.push_back(changed); };
  Runner runner(tiles, opt);
  runner.run([](const Tile&, int iter) { return iter < 1; });
  ASSERT_EQ(flags.size(), 2u);
  EXPECT_TRUE(flags[0]);
  EXPECT_FALSE(flags[1]);
}

TEST(Runner, NullKernelRejected) {
  Runner runner(TileGrid(8, 8, 4, 4), RunOptions{});
  EXPECT_THROW(runner.run(nullptr), Error);
}

TEST(Runner, LazyCheckerboardCombination) {
  // Lazy + waves together (the Fig. 3 configuration): activation still
  // drains and both parities still execute.
  TileGrid tiles(32, 32, 8, 8);
  RunOptions opt;
  opt.lazy = true;
  opt.checkerboard = true;
  std::mutex mu;
  std::set<int> parities;
  Runner runner(tiles, opt);
  const RunResult r = runner.run([&](const Tile& t, int iter) {
    {
      std::lock_guard lock(mu);
      parities.insert((t.ty + t.tx) & 1);
    }
    return iter < 2;
  });
  EXPECT_TRUE(r.stable);
  EXPECT_EQ(parities.size(), 2u);
  EXPECT_EQ(r.iterations, 3);
}

TEST(Runner, NonSquareTilesAndGrid) {
  TileGrid tiles(30, 70, 7, 16);  // nothing divides anything
  CountingKernel k(tiles.count());
  RunOptions opt;
  opt.max_iterations = 1;
  Runner runner(tiles, opt);
  const RunResult r = runner.run(k.stable_after(10));
  EXPECT_EQ(r.tasks, static_cast<std::size_t>(tiles.count()));
  for (auto& c : k.calls) EXPECT_EQ(c.load(), 1);
}

TEST(Runner, MultiThreadedRunMatchesSingleThreaded) {
  // The kernel is pure per-tile state, so thread count must not change the
  // iteration count or task count.
  for (int threads : {1, 2, 4}) {
    TileGrid tiles(64, 64, 8, 8);
    RunOptions opt;
    opt.threads = threads;
    CountingKernel k(tiles.count());
    Runner runner(tiles, opt);
    const RunResult r = runner.run(k.stable_after(2));
    EXPECT_EQ(r.iterations, 3) << threads;
    EXPECT_EQ(r.tasks, 64u * 3) << threads;
  }
}

TEST(Runner, WorkStealingLazyMatchesDynamicLazy) {
  // The same sandpile relaxed lazily under OpenMP dynamic and under the
  // work-stealing runtime must reach the identical stable field (Dhar's
  // abelian property makes any execution order legal; the runner must not
  // lose or duplicate tile updates).
  auto relax = [](Schedule s) {
    sandpile::Field f = sandpile::center_pile(64, 64, 4096);
    sandpile::SyncEngine engine(f);
    TileGrid tiles(64, 64, 16, 16);
    RunOptions opt;
    opt.schedule = s;
    opt.lazy = true;
    opt.threads = 4;
    opt.on_iteration = engine.swap_hook();
    Runner runner(tiles, opt);
    const RunResult r = runner.run(engine.kernel(false));
    EXPECT_TRUE(r.stable) << to_string(s);
    return f;
  };
  const sandpile::Field dyn = relax(Schedule::kDynamic);
  const sandpile::Field ws = relax(Schedule::kWorkStealing);
  EXPECT_TRUE(dyn.same_interior(ws));
  EXPECT_TRUE(ws.is_stable());
}

TEST(Runner, WorkStealingHandlesUnbalancedTileCosts) {
  // Tile 0 is ~1000x more expensive than the rest; every tile must still
  // run exactly once per iteration and the run must terminate.
  TileGrid tiles(64, 64, 8, 8);  // 64 tiles
  RunOptions opt;
  opt.schedule = Schedule::kWorkStealing;
  opt.max_iterations = 4;
  CountingKernel k(tiles.count());
  std::atomic<std::uint64_t> sink{0};
  Runner runner(tiles, opt);
  const RunResult r = runner.run([&](const Tile& t, int) {
    const int reps = t.index == 0 ? 200000 : 200;
    std::uint64_t acc = 0;
    for (int i = 0; i < reps; ++i) acc += static_cast<std::uint64_t>(i) % 13;
    sink.fetch_add(acc);
    ++k.calls[static_cast<std::size_t>(t.index)];
    return true;
  });
  EXPECT_EQ(r.tasks, 64u * 4);
  for (auto& c : k.calls) EXPECT_EQ(c.load(), 4);
}

TEST(Runner, WorkStealingReportsStealsOtherPoliciesDoNot) {
  TileGrid tiles(64, 64, 8, 8);
  CountingKernel k(tiles.count());
  RunOptions opt;
  opt.max_iterations = 2;
  opt.schedule = Schedule::kDynamic;
  const RunResult omp_run = Runner(tiles, opt).run(k.stable_after(1000));
  EXPECT_EQ(omp_run.steals, 0u);  // OpenMP runs never touch the arena

  opt.schedule = Schedule::kWorkStealing;
  const RunResult ws_run = Runner(tiles, opt).run(k.stable_after(1000));
  EXPECT_EQ(ws_run.tasks, omp_run.tasks);
  // Steals are scheduling-dependent (possibly 0 on an idle machine), but
  // the delta must never exceed the chunks that existed to steal.
  EXPECT_LE(ws_run.steals, ws_run.tasks);
}

TEST(Runner, WorkStealingUsesExplicitArena) {
  TaskArena arena(2);
  arena.reset_counters();
  TileGrid tiles(32, 32, 8, 8);
  RunOptions opt;
  opt.schedule = Schedule::kWorkStealing;
  opt.arena = &arena;
  opt.max_iterations = 3;
  CountingKernel k(tiles.count());
  Runner runner(tiles, opt);
  const RunResult r = runner.run(k.stable_after(1000));
  EXPECT_EQ(r.tasks, 16u * 3);
  // The tile chunks must have run on the supplied arena, not the shared one.
  EXPECT_GE(arena.counters().tasks, r.tasks);
}

TEST(Runner, WorkStealingTraceRecordsArenaLanes) {
  TaskArena arena(2);
  TraceRecorder trace(static_cast<int>(arena.lanes()));
  TileGrid tiles(32, 32, 8, 8);
  RunOptions opt;
  opt.schedule = Schedule::kWorkStealing;
  opt.arena = &arena;
  opt.trace = &trace;
  opt.max_iterations = 2;
  Runner runner(tiles, opt);
  const RunResult r = runner.run([](const Tile&, int) { return true; });
  EXPECT_EQ(trace.total_tasks(), r.tasks);
  for (const TaskRecord& rec : trace.merged()) {
    EXPECT_GE(rec.worker, 0);
    EXPECT_LT(rec.worker, static_cast<int>(arena.lanes()));
  }
}

}  // namespace
}  // namespace peachy::pap
