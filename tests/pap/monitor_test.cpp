#include "pap/monitor.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "core/csv.hpp"
#include "core/error.hpp"

namespace peachy::pap {
namespace {

TEST(Monitor, SamplesEveryIteration) {
  TileGrid tiles(16, 16, 8, 8);
  Monitor monitor;
  RunOptions opt;
  opt.on_iteration = monitor.hook();
  opt.max_iterations = 5;
  Runner runner(tiles, opt);
  runner.run([](const Tile&, int) { return true; });
  ASSERT_EQ(monitor.samples().size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(monitor.samples()[i].iteration, static_cast<int>(i));
    EXPECT_GE(monitor.samples()[i].wall_ns, 0);
    EXPECT_TRUE(monitor.samples()[i].changed);
  }
}

TEST(Monitor, ChainedHookStillRuns) {
  TileGrid tiles(8, 8, 4, 4);
  Monitor monitor;
  int chained_calls = 0;
  RunOptions opt;
  opt.on_iteration =
      monitor.hook([&chained_calls](int, bool) { ++chained_calls; });
  opt.max_iterations = 3;
  Runner runner(tiles, opt);
  runner.run([](const Tile&, int) { return true; });
  EXPECT_EQ(chained_calls, 3);
  EXPECT_EQ(monitor.samples().size(), 3u);
}

TEST(Monitor, LastSampleSeesStability) {
  TileGrid tiles(8, 8, 4, 4);
  Monitor monitor;
  RunOptions opt;
  opt.on_iteration = monitor.hook();
  Runner runner(tiles, opt);
  runner.run([](const Tile&, int iter) { return iter < 2; });
  ASSERT_EQ(monitor.samples().size(), 3u);
  EXPECT_TRUE(monitor.samples()[1].changed);
  EXPECT_FALSE(monitor.samples()[2].changed);
}

TEST(Monitor, ClearAllowsReuse) {
  TileGrid tiles(8, 8, 4, 4);
  Monitor monitor;
  RunOptions opt;
  opt.max_iterations = 2;
  opt.on_iteration = monitor.hook();
  Runner(tiles, opt).run([](const Tile&, int) { return true; });
  monitor.clear();
  EXPECT_TRUE(monitor.samples().empty());
  opt.on_iteration = monitor.hook();
  Runner(tiles, opt).run([](const Tile&, int) { return true; });
  EXPECT_EQ(monitor.samples().size(), 2u);
}

TEST(Monitor, CsvExport) {
  const auto dir = std::filesystem::temp_directory_path() / "peachy_monitor";
  std::filesystem::create_directories(dir);
  TileGrid tiles(8, 8, 4, 4);
  Monitor monitor;
  RunOptions opt;
  opt.max_iterations = 2;
  opt.on_iteration = monitor.hook();
  Runner(tiles, opt).run([](const Tile&, int) { return true; });
  const std::string path = (dir / "m.csv").string();
  monitor.write_csv(path);
  const auto rows = read_csv(path);
  ASSERT_EQ(rows.size(), 3u);
  ASSERT_EQ(rows[0].size(), 6u);
  EXPECT_EQ(rows[0][0], "iteration");
  EXPECT_EQ(rows[0][5], "dispatches");
  EXPECT_EQ(rows[1][2], "1");
  std::filesystem::remove_all(dir);
}

TEST(Monitor, WatchedArenaCountersSampledPerIteration) {
  TaskArena arena(2);
  TileGrid tiles(32, 32, 8, 8);  // 16 tiles per iteration
  Monitor monitor;
  monitor.watch(&arena);
  RunOptions opt;
  opt.schedule = Schedule::kWorkStealing;
  opt.arena = &arena;
  opt.max_iterations = 3;
  opt.on_iteration = monitor.hook();
  Runner(tiles, opt).run([](const Tile&, int) { return true; });
  ASSERT_EQ(monitor.samples().size(), 3u);
  std::uint64_t tasks = 0;
  std::uint64_t dispatches = 0;
  for (const IterationSample& s : monitor.samples()) {
    tasks += s.tasks;
    dispatches += s.dispatches;
  }
  EXPECT_GE(tasks, 16u * 3);  // every tile chunk shows up in some sample
  EXPECT_LE(monitor.total_steals(), tasks);
  EXPECT_GE(dispatches, 3u);  // one parallel_for dispatch per iteration
}

TEST(Monitor, UnwatchedRunsReportZeroRuntimeCounters) {
  TileGrid tiles(8, 8, 4, 4);
  Monitor monitor;  // no watch(): OpenMP run, counters must stay zero
  RunOptions opt;
  opt.max_iterations = 2;
  opt.on_iteration = monitor.hook();
  Runner(tiles, opt).run([](const Tile&, int) { return true; });
  for (const IterationSample& s : monitor.samples()) {
    EXPECT_EQ(s.tasks, 0u);
    EXPECT_EQ(s.steals, 0u);
    EXPECT_EQ(s.dispatches, 0u);
  }
}

TEST(Experiment, TableAndCsv) {
  Experiment exp({"variant", "tile"}, {"ms", "tasks"});
  exp.record({"lazy", "32"}, {12.5, 900});
  exp.record({"eager", "32"}, {31.0, 4096});
  EXPECT_EQ(exp.rows(), 2u);

  std::ostringstream os;
  exp.table().print(os);
  EXPECT_NE(os.str().find("variant"), std::string::npos);
  EXPECT_NE(os.str().find("12.50"), std::string::npos);

  const auto dir = std::filesystem::temp_directory_path() / "peachy_exp";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "e.csv").string();
  exp.write_csv(path);
  const auto rows = read_csv(path);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].size(), 4u);
  EXPECT_EQ(rows[2][0], "eager");
  std::filesystem::remove_all(dir);
}

TEST(Experiment, ValidatesShape) {
  EXPECT_THROW(Experiment({}, {"m"}), Error);
  EXPECT_THROW(Experiment({"f"}, {}), Error);
  Experiment exp({"f"}, {"m"});
  EXPECT_THROW(exp.record({"a", "b"}, {1.0}), Error);
  EXPECT_THROW(exp.record({"a"}, {1.0, 2.0}), Error);
}

}  // namespace
}  // namespace peachy::pap
