#include "pap/hybrid.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace peachy::pap {
namespace {

// Kernel stable after `n` iterations, tracked per tile.
TileKernel stable_after(int n) {
  return [n](const Tile&, int iter) { return iter < n; };
}

HybridOptions base_options() {
  HybridOptions opt;
  opt.cpu.workers = 4;
  opt.cpu.cells_per_us = 100;
  opt.device.cells_per_us = 1000;
  opt.device.batch_latency_us = 5;
  opt.max_iterations = 0;
  return opt;
}

TEST(Hybrid, ValidatesOptions) {
  TileGrid tiles(32, 32, 8, 8);
  HybridOptions opt = base_options();
  opt.cpu.workers = 0;
  EXPECT_THROW(HybridRunner(tiles, opt), Error);
  opt = base_options();
  opt.device_fraction = 1.5;
  EXPECT_THROW(HybridRunner(tiles, opt), Error);
  opt = base_options();
  opt.device.cells_per_us = 0;
  EXPECT_THROW(HybridRunner(tiles, opt), Error);
}

TEST(Hybrid, CpuOnlyNeverUsesDevice) {
  TileGrid tiles(32, 32, 8, 8);
  HybridOptions opt = base_options();
  opt.policy = HybridPolicy::kCpuOnly;
  HybridRunner runner(tiles, opt);
  const HybridResult r = runner.run(stable_after(2));
  EXPECT_EQ(r.device_tasks, 0u);
  EXPECT_GT(r.cpu_tasks, 0u);
  EXPECT_DOUBLE_EQ(r.device_busy_us, 0.0);
}

TEST(Hybrid, DeviceOnlyUsesOnlyDevice) {
  TileGrid tiles(32, 32, 8, 8);
  HybridOptions opt = base_options();
  opt.policy = HybridPolicy::kDeviceOnly;
  HybridRunner runner(tiles, opt);
  const HybridResult r = runner.run(stable_after(2));
  EXPECT_EQ(r.cpu_tasks, 0u);
  EXPECT_GT(r.device_tasks, 0u);
  EXPECT_DOUBLE_EQ(r.cpu_busy_us, 0.0);
}

TEST(Hybrid, StaticFractionSplitsWork) {
  TileGrid tiles(64, 64, 8, 8);  // 64 tiles
  HybridOptions opt = base_options();
  opt.policy = HybridPolicy::kStaticFraction;
  opt.device_fraction = 0.25;
  opt.max_iterations = 1;
  HybridRunner runner(tiles, opt);
  const HybridResult r = runner.run(stable_after(100));
  EXPECT_EQ(r.device_tasks, 16u);
  EXPECT_EQ(r.cpu_tasks, 48u);
}

TEST(Hybrid, EftUsesBothLanesWhenProfitable) {
  TileGrid tiles(64, 64, 8, 8);
  HybridOptions opt = base_options();
  opt.policy = HybridPolicy::kDynamicEft;
  opt.max_iterations = 1;
  HybridRunner runner(tiles, opt);
  const HybridResult r = runner.run(stable_after(100));
  EXPECT_GT(r.device_tasks, 0u);
  EXPECT_GT(r.cpu_tasks, 0u);
}

TEST(Hybrid, EftBeatsSingleLanePoliciesOnModeledTime) {
  TileGrid tiles(128, 128, 16, 16);
  auto run_policy = [&](HybridPolicy p) {
    HybridOptions opt = base_options();
    opt.policy = p;
    opt.max_iterations = 3;
    HybridRunner runner(tiles, opt);
    return runner.run(stable_after(100)).modeled_time_us;
  };
  const double eft = run_policy(HybridPolicy::kDynamicEft);
  EXPECT_LT(eft, run_policy(HybridPolicy::kCpuOnly));
  EXPECT_LT(eft, run_policy(HybridPolicy::kDeviceOnly));
}

TEST(Hybrid, ResultsAreExactDespiteModeledDevice) {
  // The kernel mutates real state; verify the hybrid path executes every
  // tile exactly once per iteration regardless of ownership.
  TileGrid tiles(32, 32, 8, 8);
  std::vector<int> runs(static_cast<std::size_t>(tiles.count()), 0);
  HybridOptions opt = base_options();
  opt.max_iterations = 2;
  opt.lazy = false;
  HybridRunner runner(tiles, opt);
  runner.run([&](const Tile& t, int) {
    ++runs[static_cast<std::size_t>(t.index)];
    return true;
  });
  for (int r : runs) EXPECT_EQ(r, 2);
}

TEST(Hybrid, LazyStopsWhenStable) {
  TileGrid tiles(32, 32, 8, 8);
  HybridOptions opt = base_options();
  opt.lazy = true;
  HybridRunner runner(tiles, opt);
  const HybridResult r = runner.run(stable_after(2));
  EXPECT_TRUE(r.stable);
  EXPECT_EQ(r.iterations, 3);
}

TEST(Hybrid, OwnerMapMarksLanes) {
  TileGrid tiles(32, 32, 8, 8);
  HybridOptions opt = base_options();
  opt.policy = HybridPolicy::kDeviceOnly;
  opt.max_iterations = 1;
  HybridRunner runner(tiles, opt);
  runner.run(stable_after(100));
  for (int owner : runner.last_owner()) EXPECT_EQ(owner, runner.device_lane());
}

TEST(Hybrid, TraceLanesValidated) {
  TileGrid tiles(32, 32, 8, 8);
  TraceRecorder too_small(3);  // needs workers+1 = 5
  HybridOptions opt = base_options();
  opt.trace = &too_small;
  EXPECT_THROW(HybridRunner(tiles, opt), Error);
}

TEST(Hybrid, TraceAttributesDeviceLane) {
  TileGrid tiles(32, 32, 8, 8);
  HybridOptions opt = base_options();
  TraceRecorder trace(opt.cpu.workers + 1);
  opt.trace = &trace;
  opt.policy = HybridPolicy::kDeviceOnly;
  opt.max_iterations = 1;
  HybridRunner runner(tiles, opt);
  runner.run(stable_after(100));
  for (const TaskRecord& r : trace.merged())
    EXPECT_EQ(r.worker, opt.cpu.workers);
}

}  // namespace
}  // namespace peachy::pap
