#include "pap/tile_grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/error.hpp"

namespace peachy::pap {
namespace {

TEST(TileGrid, DivisibleGeometry) {
  TileGrid g(64, 128, 16, 32);
  EXPECT_EQ(g.tiles_y(), 4);
  EXPECT_EQ(g.tiles_x(), 4);
  EXPECT_EQ(g.count(), 16);
  const Tile t = g.tile_at(1, 2);
  EXPECT_EQ(t.y0, 16);
  EXPECT_EQ(t.x0, 64);
  EXPECT_EQ(t.h, 16);
  EXPECT_EQ(t.w, 32);
  EXPECT_EQ(t.index, 1 * 4 + 2);
}

TEST(TileGrid, NonDivisibleEdgesClipped) {
  TileGrid g(10, 10, 4, 4);
  EXPECT_EQ(g.tiles_y(), 3);
  EXPECT_EQ(g.tiles_x(), 3);
  const Tile corner = g.tile_at(2, 2);
  EXPECT_EQ(corner.h, 2);
  EXPECT_EQ(corner.w, 2);
  const Tile inner = g.tile_at(0, 0);
  EXPECT_EQ(inner.h, 4);
  EXPECT_EQ(inner.w, 4);
}

TEST(TileGrid, TilesCoverGridExactlyOnce) {
  TileGrid g(37, 53, 8, 16);
  std::vector<int> cover(37 * 53, 0);
  for (int i = 0; i < g.count(); ++i) {
    const Tile t = g.tile(i);
    for (int y = t.y0; y < t.y0 + t.h; ++y)
      for (int x = t.x0; x < t.x0 + t.w; ++x)
        ++cover[static_cast<std::size_t>(y) * 53 + x];
  }
  EXPECT_TRUE(std::all_of(cover.begin(), cover.end(),
                          [](int c) { return c == 1; }));
}

TEST(TileGrid, TileOfCellInverse) {
  TileGrid g(40, 40, 8, 8);
  for (int i = 0; i < g.count(); ++i) {
    const Tile t = g.tile(i);
    EXPECT_EQ(g.tile_of_cell(t.y0, t.x0), i);
    EXPECT_EQ(g.tile_of_cell(t.y0 + t.h - 1, t.x0 + t.w - 1), i);
  }
}

TEST(TileGrid, NeighborsOfCorner) {
  TileGrid g(32, 32, 8, 8);  // 4x4 tiles
  const auto nb = g.neighbors(0);
  ASSERT_EQ(nb.size(), 2u);
  EXPECT_NE(std::find(nb.begin(), nb.end(), 1), nb.end());
  EXPECT_NE(std::find(nb.begin(), nb.end(), 4), nb.end());
}

TEST(TileGrid, NeighborsOfInteriorTile) {
  TileGrid g(32, 32, 8, 8);
  const auto nb = g.neighbors(5);  // tile (1,1)
  ASSERT_EQ(nb.size(), 4u);
  for (int expected : {1, 4, 6, 9})
    EXPECT_NE(std::find(nb.begin(), nb.end(), expected), nb.end());
}

TEST(TileGrid, OuterDetection) {
  TileGrid g(32, 32, 8, 8);  // 4x4 tiles
  int outer = 0;
  for (int i = 0; i < g.count(); ++i)
    if (g.is_outer(i)) ++outer;
  EXPECT_EQ(outer, 12);  // 16 tiles, 4 inner
  EXPECT_FALSE(g.is_outer(5));
  EXPECT_TRUE(g.is_outer(0));
  EXPECT_TRUE(g.is_outer(15));
}

TEST(TileGrid, SingleTileGrid) {
  TileGrid g(8, 8, 8, 8);
  EXPECT_EQ(g.count(), 1);
  EXPECT_TRUE(g.is_outer(0));
  EXPECT_TRUE(g.neighbors(0).empty());
}

TEST(TileGrid, TileLargerThanGridClips) {
  TileGrid g(5, 5, 100, 100);
  EXPECT_EQ(g.count(), 1);
  const Tile t = g.tile(0);
  EXPECT_EQ(t.h, 5);
  EXPECT_EQ(t.w, 5);
}

TEST(TileGrid, InvalidArgumentsThrow) {
  EXPECT_THROW(TileGrid(0, 8, 4, 4), Error);
  EXPECT_THROW(TileGrid(8, 8, 0, 4), Error);
  TileGrid g(8, 8, 4, 4);
  EXPECT_THROW(g.tile(-1), Error);
  EXPECT_THROW(g.tile(4), Error);
  EXPECT_THROW(g.tile_of_cell(8, 0), Error);
}

}  // namespace
}  // namespace peachy::pap
