// Queued device model (pap::DeviceSim): spill-aware DRAM traffic, the
// closed-form tile estimate, and the event-driven batch executor. The model
// constants below are chosen so every expectation is exact arithmetic:
// 100-byte requests over a 100 B/us channel mean one request = 1 us of
// service, and responses land request_service_end + 0.5 us later.
#include <gtest/gtest.h>

#include <vector>

#include "core/error.hpp"
#include "pap/device.hpp"

namespace peachy::pap {
namespace {

// Memory-bound reference model: ALU streams 1000 cells/us but the channel
// only moves 100 B/us, so any non-trivial tile is DRAM-limited.
DeviceModel memory_bound_model() {
  DeviceModel m;
  m.cells_per_us = 1000;
  m.dram_bytes_per_us = 100;
  m.dram_latency_us = 0.5;
  m.dram_request_bytes = 100;
  m.scratchpad_bytes = 1000;
  m.issue_width = 2;
  m.bytes_per_cell = 1;
  return m;
}

TEST(DeviceSim, TrafficStreamsOnceUntilTheScratchpadSpills) {
  const DeviceSim dev(memory_bound_model());
  EXPECT_EQ(dev.tile_traffic_bytes(0), 0u);
  EXPECT_EQ(dev.tile_traffic_bytes(500), 500u);   // fits: read once
  EXPECT_EQ(dev.tile_traffic_bytes(1000), 1000u); // exactly fits
  // 500 bytes over capacity are written back out: 1500 + 500.
  EXPECT_EQ(dev.tile_traffic_bytes(1500), 2000u);
}

TEST(DeviceSim, EstimateIsBottleneckTimePlusFirstFetchLatency) {
  const DeviceSim dev(memory_bound_model());
  // 500 cells: compute 0.5 us, stream 500/100 = 5 us -> memory-bound.
  EXPECT_DOUBLE_EQ(dev.tile_estimate_us(500), 5.0 + 0.5);

  DeviceModel fast = memory_bound_model();
  fast.dram_bytes_per_us = 10000;
  fast.cells_per_us = 100;
  // Now compute-bound: 5 us of ALU, stream time 0.05 us.
  EXPECT_DOUBLE_EQ(DeviceSim(fast).tile_estimate_us(500), 5.0 + 0.5);
}

TEST(DeviceSim, MemoryBoundTileFinishesAtStreamTimePlusLatency) {
  const DeviceSim dev(memory_bound_model());
  const DeviceBatchStats s = dev.run({500});
  // 5 requests x 1 us keep the channel saturated from t=0; the last
  // response lands at 5.0 + 0.5.
  EXPECT_DOUBLE_EQ(s.total_us, 5.5);
  EXPECT_DOUBLE_EQ(s.compute_us, 0.5);
  EXPECT_DOUBLE_EQ(s.stall_us, 5.0);
  EXPECT_EQ(s.requests, 5u);
  EXPECT_EQ(s.dram_bytes, 500u);
}

TEST(DeviceSim, ComputeBoundTileOverlapsItsMemoryStream) {
  DeviceModel m = memory_bound_model();
  m.cells_per_us = 100;        // 500 cells = 5 us of ALU work
  m.dram_bytes_per_us = 1000;  // each 100-byte request serves in 0.1 us
  const DeviceBatchStats s = DeviceSim(m).run({500});
  // First response at 0.1 + 0.5 starts the ALUs; compute dominates.
  EXPECT_DOUBLE_EQ(s.total_us, 0.6 + 5.0);
  EXPECT_DOUBLE_EQ(s.compute_us, 5.0);
  EXPECT_DOUBLE_EQ(s.stall_us, 0.6);
}

TEST(DeviceSim, BatchRunsTilesBackToBack) {
  const DeviceSim dev(memory_bound_model());
  const DeviceBatchStats one = dev.run({500});
  const DeviceBatchStats two = dev.run({500, 500});
  EXPECT_DOUBLE_EQ(two.total_us, 2 * one.total_us);
  EXPECT_EQ(two.requests, 2 * one.requests);
  EXPECT_EQ(two.dram_bytes, 2 * one.dram_bytes);
}

TEST(DeviceSim, SpilledTilePaysWriteBackTimeOnTheChannel) {
  const DeviceSim dev(memory_bound_model());
  // 1500 cells spill 500 bytes: 2000 bytes = 20 saturated requests.
  const DeviceBatchStats s = dev.run({1500});
  EXPECT_DOUBLE_EQ(s.total_us, 20.0 + 0.5);
  EXPECT_EQ(s.requests, 20u);
  EXPECT_EQ(s.dram_bytes, 2000u);
}

TEST(DeviceSim, WiderIssueWindowNeverSlowsABatch) {
  DeviceModel narrow = memory_bound_model();
  narrow.issue_width = 1;
  DeviceModel wide = memory_bound_model();
  wide.issue_width = 8;
  const std::vector<double> tiles{300, 900, 1500};
  EXPECT_GE(DeviceSim(narrow).run(tiles).total_us,
            DeviceSim(wide).run(tiles).total_us);
}

TEST(DeviceSim, BatchStatsAreDeterministic) {
  const DeviceSim dev(memory_bound_model());
  const std::vector<double> tiles{128, 4096, 77, 1500, 0, 640};
  const DeviceBatchStats a = dev.run(tiles);
  const DeviceBatchStats b = dev.run(tiles);
  EXPECT_EQ(a.total_us, b.total_us);
  EXPECT_EQ(a.compute_us, b.compute_us);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.dram_bytes, b.dram_bytes);
}

TEST(DeviceSim, RejectsIncompleteModels) {
  DeviceModel flat = memory_bound_model();
  flat.dram_bytes_per_us = 0;  // the flat model has no queues to simulate
  EXPECT_THROW(DeviceSim{flat}, Error);

  DeviceModel no_window = memory_bound_model();
  no_window.issue_width = 0;
  EXPECT_THROW(DeviceSim{no_window}, Error);

  DeviceModel no_footprint = memory_bound_model();
  no_footprint.bytes_per_cell = 0;
  EXPECT_THROW(DeviceSim{no_footprint}, Error);

  const DeviceSim dev(memory_bound_model());
  EXPECT_THROW(dev.run({100, -1}), Error);
  EXPECT_THROW(dev.tile_traffic_bytes(-5), Error);
}

}  // namespace
}  // namespace peachy::pap
