// Wire codecs of the job service: spec/status/brief/stats round trips and
// loud failure on truncated payloads — a malformed client must produce a
// kError reply, never a daemon crash or a silently wrong job.
#include <gtest/gtest.h>

#include <vector>

#include "core/error.hpp"
#include "svc/job.hpp"
#include "svc/protocol.hpp"

namespace peachy::svc {
namespace {

TEST(SvcProtocol, StringRoundTripIncludingEmpty) {
  std::vector<std::byte> buf;
  append_string(buf, "tenant-a");
  append_string(buf, "");
  append_string(buf, "x");
  const std::byte* p = buf.data();
  const std::byte* end = p + buf.size();
  EXPECT_EQ(read_string(p, end), "tenant-a");
  EXPECT_EQ(read_string(p, end), "");
  EXPECT_EQ(read_string(p, end), "x");
  EXPECT_EQ(p, end);
}

TEST(SvcProtocol, TruncatedStringThrows) {
  std::vector<std::byte> buf;
  append_string(buf, "hello");
  buf.resize(buf.size() - 2);
  const std::byte* p = buf.data();
  EXPECT_THROW(read_string(p, buf.data() + buf.size()), Error);
}

TEST(SvcProtocol, SandpileSpecRoundTrip) {
  JobSpec spec;
  spec.kind = JobKind::kSandpile;
  spec.tenant = "alice";
  spec.name = "pile-1";
  spec.ranks = 4;
  spec.sandpile = {128, 96, 250000, 2, 8};
  std::vector<std::byte> buf;
  append_spec(buf, spec);
  const std::byte* p = buf.data();
  const JobSpec back = read_spec(p, buf.data() + buf.size());
  EXPECT_EQ(back.kind, JobKind::kSandpile);
  EXPECT_EQ(back.tenant, "alice");
  EXPECT_EQ(back.name, "pile-1");
  EXPECT_EQ(back.ranks, 4u);
  EXPECT_EQ(back.sandpile.height, 128u);
  EXPECT_EQ(back.sandpile.width, 96u);
  EXPECT_EQ(back.sandpile.grains, 250000u);
  EXPECT_EQ(back.sandpile.halo_depth, 2u);
  EXPECT_EQ(back.sandpile.checkpoint_every, 8u);
}

TEST(SvcProtocol, DmrAndWfsimSpecsRoundTrip) {
  JobSpec dmr;
  dmr.kind = JobKind::kDmr;
  dmr.tenant = "bob";
  dmr.ranks = 3;
  dmr.dmr = {50000, 77, 256, 32, 16, 4, 2};
  std::vector<std::byte> buf;
  append_spec(buf, dmr);
  const std::byte* p = buf.data();
  const JobSpec dback = read_spec(p, buf.data() + buf.size());
  EXPECT_EQ(dback.dmr.words, 50000u);
  EXPECT_EQ(dback.dmr.seed, 77u);
  EXPECT_EQ(dback.dmr.map_epochs, 4u);
  EXPECT_EQ(dback.dmr.checkpoint_every, 2u);

  JobSpec wf;
  wf.kind = JobKind::kWfsim;
  wf.wfsim = {12, 32, 3};
  buf.clear();
  append_spec(buf, wf);
  p = buf.data();
  const JobSpec wback = read_spec(p, buf.data() + buf.size());
  EXPECT_EQ(wback.wfsim.sweep_steps, 12u);
  EXPECT_EQ(wback.wfsim.nodes_on, 32u);
  EXPECT_EQ(wback.wfsim.pstate, 3u);
}

TEST(SvcProtocol, SpecRejectsUnknownKindAndAbsurdRanks) {
  JobSpec spec;
  std::vector<std::byte> buf;
  append_spec(buf, spec);
  buf[0] = static_cast<std::byte>(9);  // kind = 9
  const std::byte* p = buf.data();
  EXPECT_THROW(read_spec(p, buf.data() + buf.size()), Error);

  JobSpec wide;
  wide.ranks = 100000;
  buf.clear();
  append_spec(buf, wide);
  p = buf.data();
  EXPECT_THROW(read_spec(p, buf.data() + buf.size()), Error);
}

TEST(SvcProtocol, StatusRoundTrip) {
  JobStatus s;
  s.id = 42;
  s.state = JobState::kFailed;
  s.kind = JobKind::kDmr;
  s.tenant = "carol";
  s.name = "wordcount";
  s.error = "rank 1 died";
  s.restarts = 3;
  s.peak_rss_bytes = 7ull << 20;
  s.has_result = false;
  std::vector<std::byte> buf;
  append_status(buf, s);
  const std::byte* p = buf.data();
  const JobStatus back = read_status(p, buf.data() + buf.size());
  EXPECT_EQ(back.id, 42u);
  EXPECT_EQ(back.state, JobState::kFailed);
  EXPECT_EQ(back.kind, JobKind::kDmr);
  EXPECT_EQ(back.tenant, "carol");
  EXPECT_EQ(back.error, "rank 1 died");
  EXPECT_EQ(back.restarts, 3u);
  EXPECT_EQ(back.peak_rss_bytes, 7ull << 20);
  EXPECT_FALSE(back.has_result);
}

TEST(SvcProtocol, BriefsAndStatsRoundTrip) {
  std::vector<JobBrief> briefs = {
      {1, JobKind::kSandpile, JobState::kDone, "a", "j1"},
      {2, JobKind::kWfsim, JobState::kQueued, "b", ""},
  };
  std::vector<std::byte> buf;
  append_briefs(buf, briefs);
  const std::byte* p = buf.data();
  const auto back = read_briefs(p, buf.data() + buf.size());
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].id, 1u);
  EXPECT_EQ(back[1].state, JobState::kQueued);
  EXPECT_EQ(back[1].tenant, "b");

  ServiceStats stats;
  stats.queued = 5;
  stats.running = 2;
  stats.pool_ranks = 8;
  stats.busy_ranks = 6;
  stats.submitted = 100;
  stats.completed = 93;
  stats.rejected = 7;
  buf.clear();
  append_stats(buf, stats);
  p = buf.data();
  const ServiceStats sback = read_stats(p, buf.data() + buf.size());
  EXPECT_EQ(sback.queued, 5u);
  EXPECT_EQ(sback.busy_ranks, 6u);
  EXPECT_EQ(sback.rejected, 7u);
}

TEST(SvcProtocol, StateAndKindNamesAreStable) {
  EXPECT_STREQ(to_string(JobState::kQueued), "QUEUED");
  EXPECT_STREQ(to_string(JobState::kCancelled), "CANCELLED");
  EXPECT_STREQ(to_string(JobKind::kWfsim), "wfsim");
  EXPECT_EQ(job_kind_from_string("dmr"), JobKind::kDmr);
  EXPECT_THROW(job_kind_from_string("mystery"), Error);
  EXPECT_TRUE(is_terminal(JobState::kFailed));
  EXPECT_FALSE(is_terminal(JobState::kRunning));
}

}  // namespace
}  // namespace peachy::svc
