// Process-isolated job execution: crash containment (a job that abort()s
// is a FAILED record with a flight dump, not a daemon outage), mid-run
// cancellation via SIGTERM -> cooperative abort, wall-clock deadlines,
// kernel resource fences, and threads/process result parity. Every test
// here forks real worker processes, so the file carries the `spawn`
// label and stays out of the tsan preset (TSan cannot follow threads
// created after fork); the asan preset runs it in full.
#include <gtest/gtest.h>
#include <stdlib.h>
#include <sys/resource.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "net/process.hpp"
#include "svc/client.hpp"
#include "svc/daemon.hpp"
#include "svc/runner.hpp"

namespace peachy::svc {
namespace {

using namespace std::chrono_literals;
namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/peachy-svc-process-XXXXXX";
    path_ = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

DaemonOptions base_options(const std::string& state_dir) {
  DaemonOptions o;
  o.state_dir = state_dir;
  o.pool_ranks = 4;
  return o;
}

JobSpec process_dmr(const std::string& tenant, std::uint32_t map_epochs = 2) {
  JobSpec spec;
  spec.kind = JobKind::kDmr;
  spec.tenant = tenant;
  spec.ranks = 2;
  spec.isolation = Isolation::kProcess;
  spec.dmr = {2000, 7, 32, 8, 4, map_epochs, 1};
  return spec;
}

void wait_until_running(const Client& client, std::uint64_t id) {
  const auto deadline = std::chrono::steady_clock::now() + 20s;
  while (client.status(id).state == JobState::kQueued) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(5ms);
  }
}

// --- Crash containment -----------------------------------------------------

TEST(SvcProcessIsolation, CrashingJobFailsWithDumpWhileOtherTenantCompletes) {
  TempDir dir;
  Daemon daemon(base_options(dir.path()));
  Client client("127.0.0.1", daemon.port());

  // Tenant "evil": a process-isolated dmr job whose mapper abort()s after
  // 100 words. Tenant "good": an ordinary job submitted alongside.
  JobSpec evil = process_dmr("evil");
  evil.name = "crasher";
  evil.dmr.fault_abort_at = 100;
  JobSpec good = process_dmr("good");
  good.name = "bystander";
  const SubmitResult esub = client.submit(evil);
  const SubmitResult gsub = client.submit(good);
  ASSERT_TRUE(esub.accepted && gsub.accepted);

  // The crasher dies on every supervised restart and lands FAILED with a
  // triaged cause and the flight-dump path in the error string.
  const JobStatus failed = client.await(esub.id, 120s);
  ASSERT_EQ(failed.state, JobState::kFailed);
  EXPECT_NE(failed.error.find("worker crashed"), std::string::npos)
      << failed.error;
  EXPECT_NE(failed.error.find("flight dump: "), std::string::npos)
      << failed.error;
  // The named flight directory survives and holds at least one
  // post-mortem from a dying worker.
  const fs::path flight =
      fs::path(dir.path()) / "flight" / ("job-" + std::to_string(esub.id));
  ASSERT_TRUE(fs::exists(flight)) << flight;
  bool have_dump = false;
  for (const auto& entry : fs::directory_iterator(flight))
    have_dump |= entry.path().filename().string().rfind("flight-", 0) == 0;
  EXPECT_TRUE(have_dump) << "no flight-<rank>.json under " << flight;

  // The daemon kept serving and the bystander's result is byte-identical
  // to the same job run without a crasher next door.
  const JobStatus done = client.await(gsub.id, 120s);
  ASSERT_EQ(done.state, JobState::kDone);
  const auto got = client.result(gsub.id);

  TempDir quiet_dir;
  Daemon quiet(base_options(quiet_dir.path()));
  Client quiet_client("127.0.0.1", quiet.port());
  const SubmitResult ref = quiet_client.submit(good);
  ASSERT_TRUE(ref.accepted);
  ASSERT_EQ(quiet_client.await(ref.id, 120s).state, JobState::kDone);
  EXPECT_EQ(got, quiet_client.result(ref.id));
}

TEST(SvcProcessIsolation, DoneJobsLeaveNoFlightDirectory) {
  TempDir dir;
  Daemon daemon(base_options(dir.path()));
  Client client("127.0.0.1", daemon.port());
  const SubmitResult sub = client.submit(process_dmr("alice"));
  ASSERT_TRUE(sub.accepted);
  ASSERT_EQ(client.await(sub.id, 120s).state, JobState::kDone);
  EXPECT_FALSE(fs::exists(fs::path(dir.path()) / "flight" /
                          ("job-" + std::to_string(sub.id))));
}

// --- Mid-run cancellation, process substrate -------------------------------

TEST(SvcProcessIsolation, DmrJobCancelsMidRunViaSigterm) {
  TempDir dir;
  Daemon daemon(base_options(dir.path()));
  Client client("127.0.0.1", daemon.port());
  const SubmitResult sub =
      client.submit(process_dmr("alice", /*map_epochs=*/200));
  ASSERT_TRUE(sub.accepted);
  wait_until_running(client, sub.id);
  client.cancel(sub.id);
  // SIGTERM reaches the workers, they abandon at the next epoch barrier,
  // and the job lands CANCELLED — not FAILED — well within the grace.
  const JobStatus s = client.await(sub.id, 60s);
  EXPECT_EQ(s.state, JobState::kCancelled);
  EXPECT_EQ(daemon.pending_cancels(), 0);
}

TEST(SvcProcessIsolation, WfsimJobCancelsMidRunViaSigterm) {
  TempDir dir;
  Daemon daemon(base_options(dir.path()));
  Client client("127.0.0.1", daemon.port());
  JobSpec spec;
  spec.kind = JobKind::kWfsim;
  spec.tenant = "alice";
  spec.ranks = 2;
  spec.isolation = Isolation::kProcess;
  spec.wfsim = {/*sweep_steps=*/20000, 16, 3};
  const SubmitResult sub = client.submit(spec);
  ASSERT_TRUE(sub.accepted);
  wait_until_running(client, sub.id);
  client.cancel(sub.id);
  const JobStatus s = client.await(sub.id, 60s);
  EXPECT_EQ(s.state, JobState::kCancelled);
}

// --- Deadlines and resource fences -----------------------------------------

TEST(SvcProcessIsolation, WallClockDeadlineFailsTheJobAsTimeout) {
  TempDir dir;
  DaemonOptions o = base_options(dir.path());
  o.term_grace_ms = 500;
  Daemon daemon(o);
  Client client("127.0.0.1", daemon.port());
  // A pile big enough to run for many seconds, capped at 400 ms.
  JobSpec spec;
  spec.kind = JobKind::kSandpile;
  spec.tenant = "alice";
  spec.ranks = 2;
  spec.isolation = Isolation::kProcess;
  spec.deadline_ms = 400;
  spec.sandpile = {64, 64, 40000000, 1, 0};
  const SubmitResult sub = client.submit(spec);
  ASSERT_TRUE(sub.accepted);
  const JobStatus s = client.await(sub.id, 60s);
  ASSERT_EQ(s.state, JobState::kFailed);
  EXPECT_NE(s.error.find("deadline exceeded"), std::string::npos) << s.error;
}

TEST(SvcProcessIsolation, RlimitAddressSpaceFencesChildAllocations) {
  net::ProcessLauncher launcher;
  net::ChildLimits limits;
  limits.address_space_bytes = 256ull << 20;
  launcher.set_child_limits(limits);
  launcher.fork_workers(1, [](int) {
    // Far past the fence: the kernel must refuse, malloc returns nullptr.
    void* p = std::malloc(1ull << 30);
    const int rc = p == nullptr ? 3 : 7;
    std::free(p);
    return rc;
  });
  const std::vector<int> codes = launcher.wait_all(30000);
  ASSERT_EQ(codes.size(), 1u);
  // Plain builds see the polite path (malloc returns nullptr -> exit 3);
  // sanitizer allocators may instead die loudly when the kernel refuses.
  // Either way the fence held: the only forbidden outcome is exit 7, the
  // allocation succeeding.
  EXPECT_NE(codes[0], 7) << "a 1 GiB malloc slipped past RLIMIT_AS";
  EXPECT_NE(codes[0], 0);
}

TEST(SvcProcessIsolation, RlimitCpuKillsASpinningChild) {
  net::ProcessLauncher launcher;
  net::ChildLimits limits;
  limits.cpu_seconds = 1;
  launcher.set_child_limits(limits);
  launcher.fork_workers(1, [](int) {
    volatile std::uint64_t x = 0;
    for (;;) x = x + 1;  // burns CPU until SIGXCPU
    return 0;
  });
  const std::vector<int> codes = launcher.wait_all(30000);
  ASSERT_EQ(codes.size(), 1u);
  EXPECT_EQ(net::classify_exit_code(codes[0]), net::ExitClass::kSignaled)
      << "exit code " << codes[0] << ": " << net::describe_exit_code(codes[0]);
}

// --- Parity ----------------------------------------------------------------

TEST(SvcProcessIsolation, ProcessAndThreadedRunsAgreeByteForByte) {
  TempDir dir;
  Daemon daemon(base_options(dir.path()));
  Client client("127.0.0.1", daemon.port());

  JobSpec threaded = process_dmr("alice");
  threaded.isolation = Isolation::kThreads;
  JobSpec forked = process_dmr("alice");
  const SubmitResult t = client.submit(threaded);
  const SubmitResult f = client.submit(forked);
  ASSERT_TRUE(t.accepted && f.accepted);
  ASSERT_EQ(client.await(t.id, 120s).state, JobState::kDone);
  ASSERT_EQ(client.await(f.id, 120s).state, JobState::kDone);
  EXPECT_EQ(client.result(t.id), client.result(f.id))
      << "isolation must not change the answer";
}

// --- Peak-RSS accounting ---------------------------------------------------

TEST(SvcProcessIsolation, ProcessJobsReportPeakRssThreadedJobsDoNot) {
  TempDir dir;
  Daemon daemon(base_options(dir.path()));
  Client client("127.0.0.1", daemon.port());

  JobSpec threaded = process_dmr("alice");
  threaded.isolation = Isolation::kThreads;
  JobSpec forked = process_dmr("alice");
  const SubmitResult t = client.submit(threaded);
  const SubmitResult f = client.submit(forked);
  ASSERT_TRUE(t.accepted && f.accepted);
  const JobStatus ts = client.await(t.id, 120s);
  const JobStatus fs_ = client.await(f.id, 120s);
  ASSERT_EQ(ts.state, JobState::kDone);
  ASSERT_EQ(fs_.state, JobState::kDone);
  // wait4 sees real worker processes: any live process has at least a page
  // of RSS, and in practice megabytes. Threaded ranks share the daemon's
  // address space — there is nothing separate to meter, so the field is 0.
  EXPECT_GT(fs_.peak_rss_bytes, 1u << 20)
      << "forked workers must report a believable RSS peak";
  EXPECT_EQ(ts.peak_rss_bytes, 0u)
      << "threaded jobs have no separate process to meter";
}

}  // namespace
}  // namespace peachy::svc
