// Admission control and weighted deficit round-robin: bounded queues
// reject with a reason, weights turn into service ratios, a rank-starved
// front job blocks without losing its turn, and cancellation dequeues.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "svc/scheduler.hpp"

namespace peachy::svc {
namespace {

SchedulerOptions small_options(int quantum = 4) {
  SchedulerOptions o;
  o.max_queued = 8;
  o.max_queued_per_tenant = 4;
  o.quantum = quantum;
  return o;
}

// --- Wall-clock rank-time accounting ---------------------------------------

TEST(Scheduler, CompleteSettlesOverrunIntoDebt) {
  // default_job_ms = 100: a 2-rank job is estimated at 200 rank-ms, a
  // turn credits 4 * 100 = 400. The job then *actually* burns 1000
  // rank-ms; settlement must push the tenant 800 under water, and going
  // idle must not launder the debt.
  SchedulerOptions o = small_options(/*quantum=*/4);
  o.default_job_ms = 100;
  FairShareScheduler sched(o);
  sched.enqueue(1, "t", 2);
  ASSERT_EQ(sched.pick(8).value(), 1u);
  sched.complete(1, /*actual_rank_ms=*/1000);
  EXPECT_EQ(sched.deficit_for("t"), -800);
}

TEST(Scheduler, DebtedTenantYieldsToAFreshOne) {
  SchedulerOptions o = small_options(/*quantum=*/4);
  o.default_job_ms = 100;
  FairShareScheduler sched(o);
  // Tenant "long" runs one job that costs 5x its estimate...
  sched.enqueue(1, "long", 2);
  ASSERT_EQ(sched.pick(8).value(), 1u);
  sched.complete(1, 1000);
  // ...then both tenants queue one job each. Despite "long" being first
  // at the cursor, its debt must let "fresh" go first.
  sched.enqueue(2, "long", 2);
  sched.enqueue(3, "fresh", 2);
  EXPECT_EQ(sched.pick(8).value(), 3u);
  EXPECT_EQ(sched.pick(8).value(), 2u);
}

TEST(Scheduler, LongJobTenantConvergesToRankTimeNotDispatchParity) {
  // The ROADMAP fairness fix, end to end: equal weights, equal 2-rank
  // jobs, but tenant "long"'s jobs run 4x as long as tenant "short"'s.
  // Per-dispatch accounting would serve them 1:1 and hand "long" 4x the
  // rank-time; rank-ms accounting must instead serve "short" ~4x as
  // often so measured rank-time converges toward parity.
  SchedulerOptions o;
  o.max_queued = 64;
  o.max_queued_per_tenant = 32;
  o.quantum = 4;
  o.default_job_ms = 100;
  FairShareScheduler sched(o);
  std::uint64_t next_id = 1;
  std::map<std::string, int> served;
  std::map<std::string, long long> rank_ms;
  std::map<std::uint64_t, std::string> owner;
  // Keep both FIFOs topped up so the contest never goes idle.
  const auto top_up = [&](const std::string& tenant) {
    while (sched.queued_for(tenant) < 2) {
      if (!sched.try_admit(tenant).empty()) break;
      owner[next_id] = tenant;
      sched.enqueue(next_id, tenant, 2);
      ++next_id;
    }
  };
  top_up("long");
  top_up("short");
  for (int round = 0; round < 200; ++round) {
    top_up("long");
    top_up("short");
    const auto id = sched.pick(8);
    if (!id) break;  // both tenants exhausted their credit this instant
    const std::string who = owner.at(*id);
    const long long cost = who == "long" ? 800 : 200;  // 2 ranks x wall
    served[who] += 1;
    rank_ms[who] += cost;
    sched.complete(*id, cost);
  }
  ASSERT_GT(served["short"], 0);
  ASSERT_GT(served["long"], 0);
  // Dispatch ratio ~4:1 in favor of the short-job tenant...
  EXPECT_GE(served["short"], 3 * served["long"])
      << "short=" << served["short"] << " long=" << served["long"];
  // ...which is rank-time parity within 50%.
  const double ratio = static_cast<double>(rank_ms["long"]) /
                       static_cast<double>(rank_ms["short"]);
  EXPECT_GT(ratio, 0.5) << "long got starved below its fair share";
  EXPECT_LT(ratio, 1.5) << "long still out-consumes its share";
}

TEST(Scheduler, AdmitsUntilGlobalCapThenRejectsWithReason) {
  FairShareScheduler sched(small_options());
  for (int i = 0; i < 8; ++i) {
    std::string tenant = "t";
    tenant += std::to_string(i);
    ASSERT_EQ(sched.try_admit(tenant), "");
    sched.enqueue(static_cast<std::uint64_t>(i + 1), tenant, 1);
  }
  const std::string reason = sched.try_admit("t-late");
  EXPECT_NE(reason.find("queue full"), std::string::npos) << reason;
}

TEST(Scheduler, PerTenantCapRejectsTheHogOnly) {
  FairShareScheduler sched(small_options());
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(sched.try_admit("hog"), "");
    sched.enqueue(static_cast<std::uint64_t>(i + 1), "hog", 1);
  }
  EXPECT_NE(sched.try_admit("hog").find("tenant 'hog' queue full"),
            std::string::npos);
  EXPECT_EQ(sched.try_admit("polite"), "");
}

TEST(Scheduler, FifoWithinOneTenant) {
  FairShareScheduler sched(small_options());
  sched.enqueue(1, "a", 1);
  sched.enqueue(2, "a", 1);
  sched.enqueue(3, "a", 1);
  EXPECT_EQ(sched.pick(8).value(), 1u);
  EXPECT_EQ(sched.pick(8).value(), 2u);
  EXPECT_EQ(sched.pick(8).value(), 3u);
  EXPECT_FALSE(sched.pick(8).has_value());
}

TEST(Scheduler, WeightsTwoToOneYieldTwoToOneService) {
  // Tenants submit identical 2-rank jobs; quantum = pool capacity (4).
  // With weights 2:1 the service order must settle into a,a,b repeating.
  FairShareScheduler sched(small_options(/*quantum=*/4));
  sched.set_weight("a", 2);
  sched.set_weight("b", 1);
  std::uint64_t id = 0;
  for (int i = 0; i < 6; ++i) sched.enqueue(++id, "a", 2);        // ids 1..6
  for (int i = 0; i < 3; ++i) sched.enqueue(100 + ++id, "b", 2);  // 107..109
  std::map<std::string, int> served;
  std::vector<char> order;
  while (const auto picked = sched.pick(8)) {
    const bool is_a = *picked < 100;
    ++served[is_a ? "a" : "b"];
    order.push_back(is_a ? 'a' : 'b');
  }
  EXPECT_EQ(served["a"], 6);
  EXPECT_EQ(served["b"], 3);
  // First turn: a's deficit = 4*2 = 8 covers two 2-rank jobs... it covers
  // four, actually — a turn serves while the deficit lasts, so expect
  // a,a,a,a then b's 4*1 = 4 covering two, then a,a then b — verify the
  // aggregate ratio over any prefix of 3 stays within one turn's skew.
  ASSERT_EQ(order.size(), 9u);
  int a_seen = 0, b_seen = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    a_seen += order[i] == 'a';
    b_seen += order[i] == 'b';
  }
  // After 6 picks the 2:1 ratio must already show: 4 a's and 2 b's.
  EXPECT_EQ(a_seen, 4);
  EXPECT_EQ(b_seen, 2);
}

TEST(Scheduler, EqualWeightsAlternate) {
  FairShareScheduler sched(small_options(/*quantum=*/2));
  sched.enqueue(1, "a", 2);
  sched.enqueue(2, "a", 2);
  sched.enqueue(3, "b", 2);
  sched.enqueue(4, "b", 2);
  std::vector<std::uint64_t> order;
  while (const auto picked = sched.pick(8)) order.push_back(*picked);
  ASSERT_EQ(order.size(), 4u);
  // One 2-rank job per 2-rank quantum turn: strict alternation.
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 3, 2, 4}));
}

TEST(Scheduler, RankStarvedFrontJobWaitsWithoutLosingItsTurn) {
  FairShareScheduler sched(small_options(/*quantum=*/8));
  sched.enqueue(1, "big", 6);
  sched.enqueue(2, "small", 1);
  // Only 4 ranks free: the big front job cannot run. pick() must signal
  // "wait" rather than let the small job overtake forever (deliberate
  // anti-starvation head-of-line blocking).
  EXPECT_FALSE(sched.pick(4).has_value());
  EXPECT_EQ(sched.queued(), 2);
  // Ranks freed: the big job goes first, then the small one.
  EXPECT_EQ(sched.pick(8).value(), 1u);
  EXPECT_EQ(sched.pick(8).value(), 2u);
}

TEST(Scheduler, JobWiderThanQuantumStillRunsEventually) {
  // Deficit accrues across turns, so a job costing several quanta is
  // served once enough turns have credited it — never starved.
  FairShareScheduler sched(small_options(/*quantum=*/2));
  sched.enqueue(1, "wide", 7);
  EXPECT_EQ(sched.pick(8).value(), 1u);
}

TEST(Scheduler, RemoveCancelsQueuedJobAndCountsDrop) {
  FairShareScheduler sched(small_options());
  sched.enqueue(1, "a", 1);
  sched.enqueue(2, "a", 1);
  EXPECT_TRUE(sched.remove(1));
  EXPECT_FALSE(sched.remove(1));
  EXPECT_EQ(sched.queued(), 1);
  EXPECT_EQ(sched.queued_for("a"), 1);
  EXPECT_EQ(sched.pick(8).value(), 2u);
}

TEST(Scheduler, IdleTenantBanksNoCredit) {
  FairShareScheduler sched(small_options(/*quantum=*/2));
  sched.enqueue(1, "a", 2);
  EXPECT_EQ(sched.pick(8).value(), 1u);  // queue empties -> deficit reset
  // Many turns later, "a" returns alongside "b": service still alternates
  // instead of "a" bursting on banked credit.
  sched.enqueue(10, "a", 2);
  sched.enqueue(11, "a", 2);
  sched.enqueue(12, "b", 2);
  std::vector<std::uint64_t> order;
  while (const auto picked = sched.pick(8)) order.push_back(*picked);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0] >= 10 && order[0] <= 11, true);
  EXPECT_TRUE(order[1] == 12 || order[0] == 12 || order[2] == 12);
}

}  // namespace
}  // namespace peachy::svc
