// peachyd end to end over the wire: submit/status/result/cancel/list/
// stats from real client connections, admission rejections, fair-share
// under contention, concurrent submitters, metrics exposure, and clean
// restart recovery of queued jobs (the SIGKILL flavor lives in
// svc_recovery_test).
#include <gtest/gtest.h>
#include <poll.h>
#include <stdlib.h>

#include <atomic>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "net/socket.hpp"
#include "sandpile/distributed.hpp"
#include "sandpile/field.hpp"
#include "sandpile/result_blob.hpp"
#include "svc/client.hpp"
#include "svc/daemon.hpp"
#include "svc/runner.hpp"

namespace peachy::svc {
namespace {

using namespace std::chrono_literals;

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/peachy-svc-daemon-XXXXXX";
    path_ = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

JobSpec small_sandpile(const std::string& tenant, std::uint32_t grains = 600) {
  JobSpec spec;
  spec.kind = JobKind::kSandpile;
  spec.tenant = tenant;
  spec.name = "pile";
  spec.ranks = 2;
  spec.sandpile = {16, 16, grains, 1, 4};
  return spec;
}

DaemonOptions base_options(const std::string& state_dir) {
  DaemonOptions o;
  o.state_dir = state_dir;
  o.pool_ranks = 4;
  return o;
}

TEST(SvcDaemon, SandpileJobRunsToDoneWithCorrectResult) {
  TempDir dir;
  Daemon daemon(base_options(dir.path()));
  Client client("127.0.0.1", daemon.port());

  const SubmitResult sub = client.submit(small_sandpile("alice"));
  ASSERT_TRUE(sub.accepted) << sub.reject_reason;
  const JobStatus done = client.await(sub.id, 30s);
  ASSERT_EQ(done.state, JobState::kDone);
  EXPECT_TRUE(done.has_result);

  // The service's answer must equal a direct local run of the same spec.
  const auto blob = client.result(sub.id);
  const sandpile::detail::ResultBlob got =
      sandpile::detail::decode_result(blob);
  sandpile::DistributedOptions opt;
  opt.ranks = 2;
  const sandpile::DistributedResult reference = sandpile::
      stabilize_distributed(sandpile::center_pile(16, 16, 600), opt);
  EXPECT_TRUE(got.stable);
  EXPECT_TRUE(got.field.same_interior(reference.field));

  // Terminal jobs leave no checkpoint directory behind.
  EXPECT_FALSE(std::filesystem::exists(
      std::filesystem::path(dir.path()) / "ckpt" /
      ("job-" + std::to_string(sub.id))));
}

TEST(SvcDaemon, DmrAndWfsimJobsComplete) {
  TempDir dir;
  Daemon daemon(base_options(dir.path()));
  Client client("127.0.0.1", daemon.port());

  JobSpec dmr;
  dmr.kind = JobKind::kDmr;
  dmr.tenant = "alice";
  dmr.ranks = 2;
  dmr.dmr = {2000, 7, 32, 8, 4, 2, 1};
  const SubmitResult dsub = client.submit(dmr);
  ASSERT_TRUE(dsub.accepted);

  JobSpec wf;
  wf.kind = JobKind::kWfsim;
  wf.tenant = "bob";
  wf.ranks = 2;
  wf.wfsim = {5, 16, 3};
  const SubmitResult wsub = client.submit(wf);
  ASSERT_TRUE(wsub.accepted);

  ASSERT_EQ(client.await(dsub.id, 60s).state, JobState::kDone);
  ASSERT_EQ(client.await(wsub.id, 60s).state, JobState::kDone);

  const auto counts = decode_dmr_result(client.result(dsub.id));
  ASSERT_FALSE(counts.empty());
  std::uint64_t total = 0;
  for (const auto& [word, count] : counts) total += count;
  EXPECT_EQ(total, 2000u) << "every generated word must be counted once";

  const auto rows = decode_wfsim_result(client.result(wsub.id));
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_DOUBLE_EQ(rows.front().fraction, 0.0);
  EXPECT_DOUBLE_EQ(rows.back().fraction, 1.0);
  for (const auto& row : rows) EXPECT_GT(row.makespan_s, 0.0);
}

TEST(SvcDaemon, AdmissionRejectsWhenQueueFullAndWhenTooWide) {
  TempDir dir;
  DaemonOptions o = base_options(dir.path());
  o.max_queued = 3;
  o.start_paused = true;  // nothing dispatches: the queue only grows
  Daemon daemon(o);
  Client client("127.0.0.1", daemon.port());

  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(client.submit(small_sandpile("alice")).accepted);
  const SubmitResult overflow = client.submit(small_sandpile("alice"));
  EXPECT_FALSE(overflow.accepted);
  EXPECT_NE(overflow.reject_reason.find("queue full"), std::string::npos)
      << overflow.reject_reason;

  JobSpec wide = small_sandpile("bob");
  wide.ranks = 64;  // pool has 4
  const SubmitResult too_wide = client.submit(wide);
  EXPECT_FALSE(too_wide.accepted);
  EXPECT_NE(too_wide.reject_reason.find("pool has"), std::string::npos);

  const ServiceStats stats = client.stats();
  EXPECT_EQ(stats.queued, 3u);
  EXPECT_EQ(stats.rejected, 2u);
}

TEST(SvcDaemon, StatusResultCancelListOverTheWire) {
  TempDir dir;
  DaemonOptions o = base_options(dir.path());
  o.start_paused = true;
  Daemon daemon(o);
  Client client("127.0.0.1", daemon.port());

  const SubmitResult a = client.submit(small_sandpile("alice"));
  const SubmitResult b = client.submit(small_sandpile("bob"));
  ASSERT_TRUE(a.accepted && b.accepted);

  EXPECT_EQ(client.status(a.id).state, JobState::kQueued);
  EXPECT_THROW(client.status(9999), Error);
  EXPECT_THROW(client.result(a.id), Error) << "no result while QUEUED";

  // Cancel the queued job: immediate CANCELLED, never runs.
  EXPECT_EQ(client.cancel(a.id), "cancelled");
  EXPECT_EQ(client.status(a.id).state, JobState::kCancelled);

  const auto all = client.list();
  ASSERT_EQ(all.size(), 2u);
  const auto bobs = client.list("bob");
  ASSERT_EQ(bobs.size(), 1u);
  EXPECT_EQ(bobs[0].id, b.id);

  daemon.resume();
  EXPECT_EQ(client.await(b.id, 30s).state, JobState::kDone);
  // The cancelled job stayed cancelled.
  EXPECT_EQ(client.status(a.id).state, JobState::kCancelled);
}

TEST(SvcDaemon, RunningSandpileJobCancelsCooperatively) {
  TempDir dir;
  DaemonOptions o = base_options(dir.path());
  Daemon daemon(o);
  Client client("127.0.0.1", daemon.port());

  // A big slow pile: plenty of exchange rounds to observe the abort flag.
  const SubmitResult sub =
      client.submit(small_sandpile("alice", /*grains=*/4000000));
  ASSERT_TRUE(sub.accepted);
  // Wait until it is actually running, then cancel.
  const auto deadline = std::chrono::steady_clock::now() + 20s;
  while (client.status(sub.id).state == JobState::kQueued) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(5ms);
  }
  client.cancel(sub.id);
  const JobStatus final_status = client.await(sub.id, 30s);
  EXPECT_EQ(final_status.state, JobState::kCancelled);
}

TEST(SvcDaemon, EightConcurrentSubmittersAllComplete) {
  TempDir dir;
  DaemonOptions o = base_options(dir.path());
  o.max_queued = 64;
  Daemon daemon(o);

  constexpr int kClients = 8;
  constexpr int kJobsEach = 3;
  std::atomic<int> accepted{0};
  std::vector<std::uint64_t> ids[kClients];
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client("127.0.0.1", daemon.port());
      for (int j = 0; j < kJobsEach; ++j) {
        const SubmitResult sub =
            client.submit(small_sandpile("tenant-" + std::to_string(c % 3)));
        if (sub.accepted) {
          ids[c].push_back(sub.id);
          accepted.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  ASSERT_EQ(accepted.load(), kClients * kJobsEach);

  Client client("127.0.0.1", daemon.port());
  std::set<std::uint64_t> unique;
  for (const auto& batch : ids)
    for (const std::uint64_t id : batch) {
      EXPECT_TRUE(unique.insert(id).second) << "duplicate job id " << id;
      EXPECT_EQ(client.await(id, 120s).state, JobState::kDone);
    }
  const ServiceStats stats = client.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kClients * kJobsEach));
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.running, 0u);
  EXPECT_EQ(stats.busy_ranks, 0u);
}

TEST(SvcDaemon, MetricsEndpointExportsPerTenantCounters) {
  TempDir dir;
  DaemonOptions o = base_options(dir.path());
  o.metrics_port = 0;
  Daemon daemon(o);
  ASSERT_GT(daemon.metrics_port(), 0);
  Client client("127.0.0.1", daemon.port());

  const SubmitResult sub = client.submit(small_sandpile("metered"));
  ASSERT_TRUE(sub.accepted);
  client.await(sub.id, 30s);

  const net::Socket sock =
      net::Socket::connect_to("127.0.0.1", daemon.metrics_port(), 5000);
  const std::string req = "GET /metrics HTTP/1.0\r\n\r\n";
  sock.send_all(req.data(), req.size(), 5000);
  sock.shutdown_write();
  std::string response;
  char buf[8192];
  for (;;) {
    const ssize_t n = sock.recv_some(buf, sizeof buf);
    if (n == 0) break;
    if (n < 0) {
      pollfd pf{sock.fd(), POLLIN, 0};
      if (::poll(&pf, 1, 5000) <= 0) break;
      continue;
    }
    response.append(buf, static_cast<std::size_t>(n));
  }
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("svc_jobs_submitted"), std::string::npos)
      << response;
  EXPECT_NE(response.find("svc_tenant_metered_submitted"), std::string::npos)
      << response;
  EXPECT_NE(response.find("svc_tenant_metered_completed"), std::string::npos)
      << response;
}

TEST(SvcDaemon, FairShareServesWeightedTenantsProportionally) {
  TempDir dir;
  DaemonOptions o = base_options(dir.path());
  o.pool_ranks = 2;  // one 2-rank job at a time: strict service order
  o.tenant_weights = "heavy=2,light=1";
  o.start_paused = true;
  Daemon daemon(o);
  Client client("127.0.0.1", daemon.port());

  std::vector<std::uint64_t> heavy, light;
  for (int i = 0; i < 4; ++i)
    heavy.push_back(client.submit(small_sandpile("heavy")).id);
  for (int i = 0; i < 2; ++i)
    light.push_back(client.submit(small_sandpile("light")).id);
  daemon.resume();
  for (const std::uint64_t id : heavy)
    ASSERT_EQ(client.await(id, 60s).state, JobState::kDone);
  for (const std::uint64_t id : light)
    ASSERT_EQ(client.await(id, 60s).state, JobState::kDone);
  // Service ratio is asserted precisely in scheduler_test; here the point
  // is end-to-end: both tenants drain under contention, nobody starves.
}

TEST(SvcDaemon, CleanRestartResumesQueuedJobs) {
  TempDir dir;
  std::vector<std::uint64_t> ids;
  {
    DaemonOptions o = base_options(dir.path());
    o.start_paused = true;  // accept, persist, never dispatch
    Daemon daemon(o);
    Client client("127.0.0.1", daemon.port());
    for (int i = 0; i < 3; ++i) {
      const SubmitResult sub = client.submit(small_sandpile("alice"));
      ASSERT_TRUE(sub.accepted);
      ids.push_back(sub.id);
    }
  }  // graceful stop: QUEUED records stay on disk

  DaemonOptions o = base_options(dir.path());
  Daemon daemon(o);
  EXPECT_EQ(daemon.recovered_queued(), 3);
  EXPECT_EQ(daemon.recovered_running(), 0);
  Client client("127.0.0.1", daemon.port());
  for (const std::uint64_t id : ids)
    EXPECT_EQ(client.await(id, 60s).state, JobState::kDone);
}

TEST(SvcDaemon, ShutdownRequestUnblocksWaiter) {
  TempDir dir;
  Daemon daemon(base_options(dir.path()));
  std::thread waiter([&] { daemon.wait_for_shutdown(); });
  Client client("127.0.0.1", daemon.port());
  client.shutdown();
  waiter.join();  // would hang forever if the request were lost
  const SubmitResult sub = client.submit(small_sandpile("alice"));
  EXPECT_FALSE(sub.accepted) << "a draining daemon must reject new work";
}

}  // namespace
}  // namespace peachy::svc
