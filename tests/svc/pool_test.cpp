// The shared RankPool under concurrent gangs, pooled mpp worlds, and the
// checkpoint retention knob peachyd depends on to not accumulate ckpt
// directories for every retired job.
#include <gtest/gtest.h>

#include <stdlib.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "mpp/mpp.hpp"
#include "mpp/pool.hpp"

namespace peachy::mpp {
namespace {

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/peachy-svc-pool-XXXXXX";
    path_ = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(RankPool, GangSeesDistinctSeatsAndRuns) {
  RankPool pool(4);
  EXPECT_EQ(pool.capacity(), 4);
  std::mutex mu;
  std::set<int> seats;
  pool.run_gang(3, [&](int r) {
    std::lock_guard<std::mutex> lock(mu);
    seats.insert(r);
  });
  EXPECT_EQ(seats, (std::set<int>{0, 1, 2}));
  EXPECT_EQ(pool.available(), 4);
}

TEST(RankPool, ConcurrentGangsNeverExceedCapacity) {
  RankPool pool(4);
  std::atomic<int> active{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> gangs;
  for (int g = 0; g < 8; ++g) {
    gangs.emplace_back([&] {
      pool.run_gang(2, [&](int) {
        const int now = active.fetch_add(1) + 1;
        int expect = peak.load();
        while (now > expect && !peak.compare_exchange_weak(expect, now)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        active.fetch_sub(1);
      });
    });
  }
  for (std::thread& t : gangs) t.join();
  EXPECT_LE(peak.load(), 4) << "more ranks ran than the pool owns";
  EXPECT_EQ(pool.available(), 4);
}

TEST(RankPool, GangExceptionPropagatesAndSeatsRecover) {
  RankPool pool(2);
  EXPECT_THROW(
      pool.run_gang(2,
                    [&](int r) {
                      if (r == 1) throw Error("seat 1 exploded");
                    }),
      Error);
  // The pool must be reusable after a failed gang.
  std::atomic<int> ran{0};
  pool.run_gang(2, [&](int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 2);
}

TEST(RankPool, PooledWorldMatchesPlainThreadedWorld) {
  RankPool pool(4);
  const auto body = [](Comm& comm) {
    const std::int64_t sum = comm.allreduce_sum(comm.rank() + 1);
    if (comm.rank() == 0) {
      const std::uint32_t v = static_cast<std::uint32_t>(sum);
      comm.set_result(&v, sizeof v);
    }
  };
  RunOptions plain;
  const RunOutcome reference = run_world(4, plain, body);
  RunOptions pooled;
  pooled.pool = &pool;
  const RunOutcome outcome = run_world(4, pooled, body);
  EXPECT_EQ(outcome.rank0_result, reference.rank0_result);
  // Two pooled worlds back to back share seats without interference.
  const RunOutcome again = run_world(3, pooled, [](Comm& comm) {
    const std::int64_t sum = comm.allreduce_sum(comm.rank() + 1);
    if (comm.rank() == 0) {
      const std::uint32_t v = static_cast<std::uint32_t>(sum);
      comm.set_result(&v, sizeof v);
    }
  });
  ASSERT_EQ(again.rank0_result.size(), sizeof(std::uint32_t));
  std::uint32_t six = 0;
  std::memcpy(&six, again.rank0_result.data(), sizeof six);
  EXPECT_EQ(six, 6u);
}

TEST(Resilience, NamedCheckpointDirKeptByDefault) {
  TempDir dir;
  const std::string ckpt = dir.path() + "/job-1";
  RunOptions opt;
  opt.resilience.max_restarts = 1;
  opt.resilience.checkpoint_dir = ckpt;
  run_world(2, opt, [](Comm& comm) {
    const std::uint32_t v = 1;
    comm.checkpoint(&v, sizeof v);
  });
  EXPECT_TRUE(std::filesystem::exists(ckpt))
      << "default retention must keep the named dir (resume material)";
}

TEST(Resilience, RemoveCheckpointOnSuccessCleansNamedDir) {
  TempDir dir;
  const std::string ckpt = dir.path() + "/job-2";
  RunOptions opt;
  opt.resilience.max_restarts = 1;
  opt.resilience.checkpoint_dir = ckpt;
  opt.resilience.remove_checkpoint_on_success = true;
  run_world(2, opt, [](Comm& comm) {
    const std::uint32_t v = 2;
    comm.checkpoint(&v, sizeof v);
  });
  EXPECT_FALSE(std::filesystem::exists(ckpt))
      << "retention knob must remove the named dir after a clean run";
}

TEST(Resilience, FailedRunKeepsNamedDirDespiteRetentionKnob) {
  TempDir dir;
  const std::string ckpt = dir.path() + "/job-3";
  RunOptions opt;
  opt.resilience.max_restarts = 0;
  opt.resilience.checkpoint_dir = ckpt;
  opt.resilience.remove_checkpoint_on_success = true;
  EXPECT_THROW(run_world(2, opt,
                         [](Comm& comm) {
                           const std::uint32_t v = 3;
                           comm.checkpoint(&v, sizeof v);
                           if (comm.rank() == 1) throw Error("boom");
                         }),
               Error);
  EXPECT_TRUE(std::filesystem::exists(ckpt))
      << "a failed run's checkpoints are exactly what the retry needs";
}

}  // namespace
}  // namespace peachy::mpp
