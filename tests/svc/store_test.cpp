// JobStore durability: committed records survive reopen byte-for-byte,
// ids never repeat across restarts, commits are atomic (no .tmp debris),
// and corrupt records are skipped loudly instead of trusted.
#include <gtest/gtest.h>

#include <stdlib.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "svc/job.hpp"
#include "svc/queue.hpp"

namespace peachy::svc {
namespace {

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/peachy-svc-store-XXXXXX";
    path_ = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

JobRecord sample_record(std::uint64_t id, JobState state) {
  JobRecord rec;
  rec.id = id;
  rec.state = state;
  rec.spec.kind = JobKind::kDmr;
  rec.spec.tenant = "tenant-" + std::to_string(id % 3);
  rec.spec.name = "job-" + std::to_string(id);
  rec.spec.ranks = 2;
  rec.restarts = static_cast<std::uint32_t>(id % 2);
  rec.peak_rss_bytes = (id + 1) * 4096;
  if (state == JobState::kFailed) rec.error = "worker exploded";
  if (state == JobState::kDone)
    rec.result = {std::byte{0xde}, std::byte{0xad}, std::byte{0xbe}};
  return rec;
}

TEST(JobStore, PutGetRoundTripAndAtomicCommit) {
  TempDir dir;
  JobStore store(dir.path());
  JobRecord rec = sample_record(store.allocate_id(), JobState::kDone);
  store.put(rec);

  EXPECT_FALSE(std::filesystem::exists(
      std::filesystem::path(dir.path()) / "jobs" /
      ("job-" + std::to_string(rec.id) + ".rec.tmp")));

  const auto back = store.get(rec.id);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->id, rec.id);
  EXPECT_EQ(back->state, JobState::kDone);
  EXPECT_EQ(back->spec.tenant, rec.spec.tenant);
  EXPECT_EQ(back->spec.name, rec.spec.name);
  EXPECT_EQ(back->result, rec.result);
  EXPECT_EQ(back->restarts, rec.restarts);
  EXPECT_EQ(back->peak_rss_bytes, rec.peak_rss_bytes);
}

TEST(JobStore, LoadAllSurvivesReopenInIdOrder) {
  TempDir dir;
  {
    JobStore store(dir.path());
    store.put(sample_record(store.allocate_id(), JobState::kDone));
    store.put(sample_record(store.allocate_id(), JobState::kQueued));
    store.put(sample_record(store.allocate_id(), JobState::kRunning));
    store.put(sample_record(store.allocate_id(), JobState::kFailed));
  }
  JobStore reopened(dir.path());
  const auto all = reopened.load_all();
  ASSERT_EQ(all.size(), 4u);
  for (std::size_t i = 1; i < all.size(); ++i)
    EXPECT_LT(all[i - 1].id, all[i].id);
  EXPECT_EQ(all[3].error, "worker exploded");
  EXPECT_EQ(reopened.corrupt_skipped(), 0);
}

TEST(JobStore, IdsContinueAfterRestart) {
  TempDir dir;
  std::uint64_t last = 0;
  {
    JobStore store(dir.path());
    store.put(sample_record(store.allocate_id(), JobState::kQueued));
    last = store.allocate_id();
    store.put(sample_record(last, JobState::kQueued));
  }
  JobStore reopened(dir.path());
  EXPECT_GT(reopened.allocate_id(), last)
      << "a restarted daemon must never reuse an id";
}

TEST(JobStore, CorruptRecordIsSkippedNotTrusted) {
  TempDir dir;
  std::uint64_t good_id = 0, bad_id = 0;
  {
    JobStore store(dir.path());
    good_id = store.allocate_id();
    store.put(sample_record(good_id, JobState::kQueued));
    bad_id = store.allocate_id();
    store.put(sample_record(bad_id, JobState::kQueued));
  }
  // Flip one payload byte: the CRC must catch it.
  const auto bad_path = std::filesystem::path(dir.path()) / "jobs" /
                        ("job-" + std::to_string(bad_id) + ".rec");
  {
    std::fstream f(bad_path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(16);
    f.put('\xff');
  }
  JobStore reopened(dir.path());
  const auto all = reopened.load_all();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].id, good_id);
  EXPECT_EQ(reopened.corrupt_skipped(), 1);
  EXPECT_FALSE(reopened.get(bad_id).has_value());
  // The corrupt id is still burned: no reuse.
  EXPECT_GT(reopened.allocate_id(), bad_id);
}

TEST(JobStore, EraseAndCheckpointDirLifecycle) {
  TempDir dir;
  JobStore store(dir.path());
  const std::uint64_t id = store.allocate_id();
  store.put(sample_record(id, JobState::kQueued));

  const std::string ckpt = store.checkpoint_dir(id);
  std::filesystem::create_directories(ckpt);
  std::ofstream(ckpt + "/ckpt.bin") << "bytes";
  EXPECT_TRUE(std::filesystem::exists(ckpt));
  store.remove_checkpoint(id);
  EXPECT_FALSE(std::filesystem::exists(ckpt));

  store.erase(id);
  EXPECT_FALSE(store.get(id).has_value());
  EXPECT_TRUE(store.load_all().empty());
}

TEST(JobStore, RewriteReplacesTheCommittedState) {
  TempDir dir;
  JobStore store(dir.path());
  JobRecord rec = sample_record(store.allocate_id(), JobState::kQueued);
  store.put(rec);
  rec.state = JobState::kRunning;
  store.put(rec);
  rec.state = JobState::kDone;
  rec.result = {std::byte{1}, std::byte{2}};
  store.put(rec);
  const auto back = store.get(rec.id);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->state, JobState::kDone);
  EXPECT_EQ(back->result.size(), 2u);
}

}  // namespace
}  // namespace peachy::svc
