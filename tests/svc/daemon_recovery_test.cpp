// The acceptance bar for peachyd durability: SIGKILL the daemon process
// mid-job and verify that (a) no acknowledged QUEUED job is lost and
// (b) the RUNNING checkpointed job resumes and finishes with a result
// byte-identical to a clean run of the same spec.
//
// The daemon runs in a child process (fork + exec of this binary with
// --daemon, so the child never inherits gtest threads); the child writes
// its chosen port to <state>/port for the parent to read. SIGKILL is the
// whole point — no destructor, no flush, no goodbye.
//
// PEACHY_FAULT_SEED (scripts/fault_sweep.sh --suite svc) switches the kill
// from "wait until a checkpoint exists" (seed 0/unset, deterministic
// mid-run kill) to a seed-scaled timed kill that lands anywhere in the
// job's lifetime — recovery must hold wherever death strikes.
#include <gtest/gtest.h>
#include <signal.h>
#include <stdlib.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "svc/client.hpp"
#include "svc/daemon.hpp"
#include "svc/job.hpp"

namespace peachy::svc {

int daemon_child_main(const std::string& state_dir) {
  DaemonOptions o;
  o.state_dir = state_dir;
  o.pool_ranks = 2;  // one 2-rank job at a time: the rest stay QUEUED
  Daemon daemon(o);
  // Publish the ephemeral port atomically (write-tmp + rename, same
  // discipline as the store) so the parent never reads a half-written file.
  {
    std::ofstream f(state_dir + "/port.tmp");
    f << daemon.port() << "\n";
  }
  std::filesystem::rename(state_dir + "/port.tmp", state_dir + "/port");
  daemon.wait_for_shutdown();
  return 0;
}

namespace {

using namespace std::chrono_literals;

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/peachy-svc-recover-XXXXXX";
    path_ = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

pid_t spawn_daemon(const std::string& state_dir) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execl("/proc/self/exe", "svc_recovery_test", "--daemon",
            state_dir.c_str(), static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  return pid;
}

int wait_for_port(const std::string& state_dir) {
  const auto deadline = std::chrono::steady_clock::now() + 20s;
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream f(state_dir + "/port");
    int port = 0;
    if (f >> port && port > 0) return port;
    std::this_thread::sleep_for(10ms);
  }
  return 0;
}

bool checkpoint_exists(const std::string& state_dir, std::uint64_t id) {
  const auto dir = std::filesystem::path(state_dir) / "ckpt" /
                   ("job-" + std::to_string(id));
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec))
    if (entry.is_regular_file()) return true;
  return false;
}

int fault_seed() {
  const char* s = ::getenv("PEACHY_FAULT_SEED");
  return s != nullptr ? ::atoi(s) : 0;
}

/// Live direct children of `parent` (via /proc/<pid>/stat field 4) — for
/// a daemon running a process-isolated job, these are its rank workers.
std::vector<pid_t> children_of(pid_t parent) {
  std::vector<pid_t> kids;
  for (const auto& entry : std::filesystem::directory_iterator("/proc")) {
    const std::string name = entry.path().filename().string();
    if (name.empty() || name.find_first_not_of("0123456789") != std::string::npos)
      continue;
    std::ifstream f(entry.path() / "stat");
    std::string stat;
    if (!std::getline(f, stat)) continue;
    // pid (comm) state ppid ... — comm may contain spaces, parse past ')'.
    const std::size_t close = stat.rfind(')');
    if (close == std::string::npos) continue;
    pid_t ppid = 0;
    char state = 0;
    if (std::sscanf(stat.c_str() + close + 1, " %c %d", &state, &ppid) != 2)
      continue;
    if (ppid == parent && state != 'Z') kids.push_back(::atoi(name.c_str()));
  }
  return kids;
}

TEST(SvcRecovery, DaemonSigkillMidJobRecoversByteIdentical) {
  TempDir dir;
  const pid_t child = spawn_daemon(dir.path());
  ASSERT_GT(child, 0);
  const int port = wait_for_port(dir.path());
  ASSERT_GT(port, 0) << "daemon child never published its port";
  Client client("127.0.0.1", port);

  // One long checkpointed job (runs immediately — the pool fits exactly
  // one) plus three that must still be QUEUED when the axe falls.
  JobSpec slow;
  slow.kind = JobKind::kSandpile;
  slow.tenant = "victim";
  slow.name = "slow";
  slow.ranks = 2;
  slow.sandpile = {32, 32, 120000, 1, 2};
  const SubmitResult running = client.submit(slow);
  ASSERT_TRUE(running.accepted) << running.reject_reason;

  std::vector<std::uint64_t> queued_ids;
  for (int i = 0; i < 3; ++i) {
    JobSpec quick;
    quick.kind = JobKind::kSandpile;
    quick.tenant = "bystander";
    quick.name = "quick-" + std::to_string(i);
    quick.ranks = 2;
    quick.sandpile = {16, 16, 600, 1, 4};
    const SubmitResult sub = client.submit(quick);
    ASSERT_TRUE(sub.accepted) << sub.reject_reason;
    queued_ids.push_back(sub.id);
  }

  // Choose the moment of death. Seed 0: wait until the running job has
  // committed a checkpoint, guaranteeing a genuine mid-computation kill.
  // Seeded sweep runs: a seed-scaled delay lands the kill anywhere.
  const int seed = fault_seed();
  if (seed == 0) {
    const auto deadline = std::chrono::steady_clock::now() + 60s;
    while (!checkpoint_exists(dir.path(), running.id)) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "running job never checkpointed";
      std::this_thread::sleep_for(5ms);
    }
  } else {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(10 + (seed * 37) % 600));
  }
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus));

  // Restart on the same state directory, in-process this time.
  DaemonOptions o;
  o.state_dir = dir.path();
  o.pool_ranks = 2;
  Daemon daemon(o);
  Client again("127.0.0.1", daemon.port());

  // (a) No acknowledged job was lost: all four ids are visible.
  std::set<std::uint64_t> visible;
  for (const JobBrief& brief : again.list()) visible.insert(brief.id);
  EXPECT_TRUE(visible.count(running.id)) << "running job vanished";
  for (const std::uint64_t id : queued_ids)
    EXPECT_TRUE(visible.count(id)) << "queued job " << id << " vanished";
  if (seed == 0) {
    // Deterministic mode killed mid-run by construction.
    EXPECT_EQ(daemon.recovered_running(), 1);
    EXPECT_GE(again.status(running.id).restarts, 1u);
  }

  // Everything drains to DONE.
  ASSERT_EQ(again.await(running.id, 300s).state, JobState::kDone);
  for (const std::uint64_t id : queued_ids)
    ASSERT_EQ(again.await(id, 300s).state, JobState::kDone);

  // (b) The resumed job's result is byte-identical to a clean run of the
  // same spec on the recovered daemon.
  const SubmitResult fresh = again.submit(slow);
  ASSERT_TRUE(fresh.accepted);
  ASSERT_EQ(again.await(fresh.id, 300s).state, JobState::kDone);
  EXPECT_EQ(again.result(running.id), again.result(fresh.id))
      << "resumed result diverged from a clean run";
}

// The crash-containment half of the sweep: SIGKILL not the daemon but a
// *worker child* of a process-isolated job, at a seeded instant. The
// daemon must shrug — supervise the restart, resume from the job's named
// checkpoint, and still produce a byte-identical result — and must keep
// serving other requests throughout.
TEST(SvcRecovery, WorkerSigkillMidProcessJobRecoversByteIdentical) {
  TempDir dir;
  const pid_t child = spawn_daemon(dir.path());
  ASSERT_GT(child, 0);
  const int port = wait_for_port(dir.path());
  ASSERT_GT(port, 0) << "daemon child never published its port";
  Client client("127.0.0.1", port);

  JobSpec slow;
  slow.kind = JobKind::kSandpile;
  slow.tenant = "victim";
  slow.name = "slow-isolated";
  slow.ranks = 2;
  slow.isolation = Isolation::kProcess;
  slow.sandpile = {32, 32, 120000, 1, 2};
  const SubmitResult running = client.submit(slow);
  ASSERT_TRUE(running.accepted) << running.reject_reason;

  // Choose the instant. Seed 0 waits for a committed checkpoint, which
  // guarantees live workers mid-computation; sweep seeds land anywhere in
  // the job's lifetime (including before fork or after exit — then there
  // is simply nobody to kill, and the job must complete untouched).
  const int seed = fault_seed();
  if (seed == 0) {
    const auto deadline = std::chrono::steady_clock::now() + 60s;
    while (!checkpoint_exists(dir.path(), running.id)) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "running job never checkpointed";
      std::this_thread::sleep_for(5ms);
    }
  } else {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(10 + (seed * 37) % 600));
  }
  const std::vector<pid_t> workers = children_of(child);
  if (seed == 0) {
    ASSERT_FALSE(workers.empty()) << "no worker to kill";
  }
  if (!workers.empty()) {
    ASSERT_EQ(::kill(workers.front(), SIGKILL), 0);
  }

  // The daemon survives its worker's death and keeps answering.
  EXPECT_EQ(::kill(child, 0), 0) << "daemon died with its worker";
  ASSERT_EQ(client.await(running.id, 300s).state, JobState::kDone)
      << client.status(running.id).error;
  EXPECT_EQ(::kill(child, 0), 0);

  // Byte-identity against a clean run of the same spec on the same daemon.
  const SubmitResult fresh = client.submit(slow);
  ASSERT_TRUE(fresh.accepted);
  ASSERT_EQ(client.await(fresh.id, 300s).state, JobState::kDone);
  EXPECT_EQ(client.result(running.id), client.result(fresh.id))
      << "post-worker-kill result diverged from a clean run";

  client.shutdown();
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
}

}  // namespace
}  // namespace peachy::svc

int main(int argc, char** argv) {
  if (argc >= 3 && std::string(argv[1]) == "--daemon")
    return peachy::svc::daemon_child_main(argv[2]);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
