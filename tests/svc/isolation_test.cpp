// End-to-end cancellation in the default threaded substrate, the cancel
// bookkeeping invariants, and the client's retry/backoff/deadline layer.
// Everything here runs ranks as pool threads inside the test process —
// no fork — so the whole file is ThreadSanitizer-clean and runs under the
// tsan preset (the fork-based process-isolation flavors live in
// process_isolation_test.cpp, excluded from tsan like all spawn tests).
#include <gtest/gtest.h>
#include <stdlib.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "svc/client.hpp"
#include "svc/daemon.hpp"
#include "svc/protocol.hpp"

namespace peachy::svc {
namespace {

using namespace std::chrono_literals;

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/peachy-svc-isolation-XXXXXX";
    path_ = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

DaemonOptions base_options(const std::string& state_dir) {
  DaemonOptions o;
  o.state_dir = state_dir;
  o.pool_ranks = 4;
  return o;
}

/// Blocks until the job leaves QUEUED (so a cancel lands mid-run, not
/// while still waiting for dispatch).
void wait_until_running(const Client& client, std::uint64_t id) {
  const auto deadline = std::chrono::steady_clock::now() + 20s;
  while (client.status(id).state == JobState::kQueued) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(5ms);
  }
}

// --- Mid-run cancellation, threaded substrate ------------------------------

TEST(SvcIsolation, DmrJobCancelsMidRunThreaded) {
  TempDir dir;
  Daemon daemon(base_options(dir.path()));
  Client client("127.0.0.1", daemon.port());

  // Enough epochs that the job cannot finish before the cancel arrives;
  // the epoch-barrier poll must then abandon the rest within one epoch.
  JobSpec spec;
  spec.kind = JobKind::kDmr;
  spec.tenant = "alice";
  spec.name = "long-dmr";
  spec.ranks = 2;
  spec.dmr = {20000, 7, 64, 8, 4, /*map_epochs=*/200, /*ckpt_every=*/4};
  const SubmitResult sub = client.submit(spec);
  ASSERT_TRUE(sub.accepted) << sub.reject_reason;
  wait_until_running(client, sub.id);
  client.cancel(sub.id);
  const JobStatus s = client.await(sub.id, 60s);
  EXPECT_EQ(s.state, JobState::kCancelled);
  EXPECT_FALSE(s.has_result);
  EXPECT_EQ(daemon.pending_cancels(), 0)
      << "a consumed cancel flag must not outlive its job";
}

TEST(SvcIsolation, WfsimJobCancelsMidRunThreaded) {
  TempDir dir;
  Daemon daemon(base_options(dir.path()));
  Client client("127.0.0.1", daemon.port());

  JobSpec spec;
  spec.kind = JobKind::kWfsim;
  spec.tenant = "alice";
  spec.name = "long-sweep";
  spec.ranks = 2;
  spec.wfsim = {/*sweep_steps=*/20000, 16, 3};
  const SubmitResult sub = client.submit(spec);
  ASSERT_TRUE(sub.accepted) << sub.reject_reason;
  wait_until_running(client, sub.id);
  client.cancel(sub.id);
  const JobStatus s = client.await(sub.id, 60s);
  EXPECT_EQ(s.state, JobState::kCancelled);
  EXPECT_EQ(daemon.pending_cancels(), 0);
}

// --- Cancel bookkeeping ----------------------------------------------------

TEST(SvcIsolation, CancelOfTerminalJobAnswersItsStateWithoutLeaking) {
  TempDir dir;
  Daemon daemon(base_options(dir.path()));
  Client client("127.0.0.1", daemon.port());

  JobSpec spec;
  spec.kind = JobKind::kSandpile;
  spec.tenant = "alice";
  spec.ranks = 2;
  spec.sandpile = {16, 16, 600, 1, 4};
  const SubmitResult sub = client.submit(spec);
  ASSERT_TRUE(sub.accepted);
  ASSERT_EQ(client.await(sub.id, 30s).state, JobState::kDone);

  // Cancelling a finished job reports its terminal state; it neither
  // pretends "cancellation requested" nor parks a flag that would cancel
  // a later job.
  EXPECT_EQ(client.cancel(sub.id), "already DONE");
  EXPECT_EQ(client.status(sub.id).state, JobState::kDone);
  EXPECT_EQ(daemon.pending_cancels(), 0);

  // Unknown ids are an error, not a parked flag.
  EXPECT_THROW(client.cancel(424242), Error);
  EXPECT_EQ(daemon.pending_cancels(), 0);
}

// --- Client retry / backoff / deadline -------------------------------------

/// Replies to one framed request with a valid kOk kStats reply.
void serve_stats_once(const net::Socket& conn) {
  net::FrameHeader h;
  std::vector<std::byte> payload;
  ASSERT_TRUE(net::recv_frame(conn, h, payload, 5000));
  std::vector<std::byte> reply;
  append_stats(reply, ServiceStats{});
  net::FrameHeader rh;
  rh.type = net::FrameType::kJobReply;
  rh.tag = static_cast<std::int32_t>(ReplyStatus::kOk);
  net::send_frame(conn, rh, reply.data(), reply.size());
}

TEST(SvcIsolation, IdempotentCallRetriesThroughFlakyConnections) {
  const net::Socket listener = net::Socket::listen_on("127.0.0.1", 0, 8);
  std::thread server([&] {
    // Two connections die without a reply (daemon "restarting"), the
    // third is served. An idempotent op must ride this out.
    for (int i = 0; i < 2; ++i) {
      const net::Socket conn = listener.accept(10000);
      // Closed by destructor without replying.
    }
    const net::Socket conn = listener.accept(10000);
    serve_stats_once(conn);
  });
  RetryPolicy retry;
  retry.max_attempts = 5;
  retry.base_backoff_ms = 10;
  retry.max_backoff_ms = 50;
  Client client("127.0.0.1", listener.local_port(), 5000, retry);
  EXPECT_NO_THROW(client.stats());
  server.join();
}

TEST(SvcIsolation, SubmitIsNeverRetriedOnceTheRequestWasSent) {
  const net::Socket listener = net::Socket::listen_on("127.0.0.1", 0, 8);
  std::thread server([&] {
    // Read the whole submit request, then die without replying — the
    // daemon may or may not have committed the job; a client retry here
    // would risk a double submit.
    const net::Socket conn = listener.accept(10000);
    net::FrameHeader h;
    std::vector<std::byte> payload;
    net::recv_frame(conn, h, payload, 5000);
  });
  RetryPolicy retry;
  retry.max_attempts = 5;
  retry.base_backoff_ms = 10;
  retry.max_backoff_ms = 50;
  Client client("127.0.0.1", listener.local_port(), 5000, retry);
  JobSpec spec;
  spec.kind = JobKind::kSandpile;
  spec.tenant = "alice";
  spec.ranks = 1;
  spec.sandpile = {8, 8, 40, 1, 0};
  EXPECT_THROW(client.submit(spec), Error);
  server.join();
  // No second connection may arrive; accept() must sit at its timeout.
  EXPECT_THROW(listener.accept(500), Error)
      << "client retried a non-idempotent submit";
}

TEST(SvcIsolation, CallDeadlineBoundsTheRetryLoop) {
  // Nobody listens here: every attempt fails at connect. The per-call
  // deadline must cut the retry loop off far before max_attempts-many
  // full backoffs elapse.
  net::Socket parked = net::Socket::listen_on("127.0.0.1", 0, 1);
  const int dead_port = parked.local_port();
  RetryPolicy retry;
  retry.max_attempts = 100;
  retry.base_backoff_ms = 40;
  retry.max_backoff_ms = 200;
  retry.call_deadline_ms = 300;
  Client client("127.0.0.1", dead_port, 100, retry);
  parked.close();  // free the port: connects now fail fast
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(client.stats(), Error);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 3000) << "deadline did not bound the retries";
}

TEST(SvcIsolation, ErrorRepliesAreNeverRetried) {
  TempDir dir;
  Daemon daemon(base_options(dir.path()));
  RetryPolicy retry;
  retry.max_attempts = 5;
  retry.base_backoff_ms = 200;
  retry.max_backoff_ms = 200;
  Client client("127.0.0.1", daemon.port(), 5000, retry);
  // kNotFound is an answer, not an outage: 5 attempts x 200 ms of backoff
  // would show up as over a second of stalling if it were retried.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(client.status(999999), Error);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 500) << "an answered error was retried";
}

}  // namespace
}  // namespace peachy::svc
