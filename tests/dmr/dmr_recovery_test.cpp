// Kill-and-recover for the distributed MapReduce engine: a spawned dmr job
// whose wire is severed mid-shuffle must detect the dead rank, respawn the
// world, restore the last committed map-epoch checkpoint, and still produce
// output byte-identical to the fault-free single-process reference.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "dmr/job.hpp"
#include "mapreduce/job.hpp"
#include "mpp/mpp.hpp"

namespace peachy::dmr {
namespace {

using InputPair = std::pair<int, std::string>;

std::vector<InputPair> corpus(int lines) {
  const char* words[] = {"warming", "stripe", "rank", "epoch", "spill",
                         "merge",   "peach",  "sort", "wire",  "fault"};
  std::vector<InputPair> inputs;
  for (int i = 0; i < lines; ++i) {
    std::string line;
    for (int w = 0; w < 9; ++w) {
      if (w) line += ' ';
      line += words[(i * 7 + w * 5) % 10];
    }
    inputs.emplace_back(i, line);
  }
  return inputs;
}

void word_mapper(const int&, const std::string& line,
                 mr::Emitter<std::string, std::uint64_t>& out) {
  std::size_t start = 0;
  while (start < line.size()) {
    std::size_t end = line.find(' ', start);
    if (end == std::string::npos) end = line.size();
    if (end > start) out.emit(line.substr(start, end - start), 1);
    start = end + 1;
  }
}

void sum_reducer(const std::string& key,
                 const std::vector<std::uint64_t>& values,
                 mr::Emitter<std::string, std::uint64_t>& out) {
  std::uint64_t total = 0;
  for (const std::uint64_t v : values) total += v;
  out.emit(key, total);
}

// scripts/fault_sweep.sh --suite dmr varies the sever point through this
// env var so one test body covers many failure instants. The busiest link
// of this job shape carries 16 frames (4 epoch exchanges + the result
// transfer), so seeds map onto severs 1..15 — every instant at which the
// wire can die. If the job shape ever shrinks the frame budget, the
// "sever never fired" assert below catches the drift.
int sweep_sever_after() {
  const char* env = std::getenv("PEACHY_FAULT_SEED");
  const int seed = env ? std::atoi(env) : 7;
  return 1 + (seed - 1) % 15;
}

TEST(DmrRecovery, SpawnedFaultFreeRunMatchesReference) {
  const auto inputs = corpus(60);

  mr::Job<int, std::string, std::string, std::uint64_t, std::string,
          std::uint64_t>
      ref;
  mr::JobConfig cfg;
  cfg.map_tasks = 8;
  cfg.partitions = 4;
  ref.mapper(word_mapper).combiner(sum_reducer).reducer(sum_reducer);
  ref.config(cfg);
  const auto expect = ref.run(inputs);

  Job<int, std::string, std::string, std::uint64_t, std::string,
      std::uint64_t>
      job;
  Options opt;
  opt.ranks = 2;
  opt.map_tasks = 8;
  opt.partitions = 4;
  opt.run.spawn = true;
  opt.run.transport = mpp::TransportKind::kTcp;
  job.mapper(word_mapper).combiner(sum_reducer).reducer(sum_reducer);
  job.options(opt);
  const auto r = job.run(inputs);
  EXPECT_EQ(r.output, expect);
  EXPECT_EQ(r.restarts, 0);
}

TEST(DmrRecovery, SpawnedSeveredRankRecoversByteIdentical) {
  const auto inputs = corpus(120);

  mr::Job<int, std::string, std::string, std::uint64_t, std::string,
          std::uint64_t>
      ref;
  mr::JobConfig cfg;
  cfg.map_tasks = 8;
  cfg.partitions = 4;
  ref.mapper(word_mapper).combiner(sum_reducer).reducer(sum_reducer);
  ref.config(cfg);
  const auto expect = ref.run(inputs);

  Job<int, std::string, std::string, std::uint64_t, std::string,
      std::uint64_t>
      job;
  Options opt;
  opt.ranks = 2;
  opt.map_tasks = 8;
  opt.partitions = 4;
  opt.map_epochs = 4;        // several shuffle epochs to sever between
  opt.checkpoint_every = 1;  // commit after every epoch
  opt.run.spawn = true;
  opt.run.transport = mpp::TransportKind::kTcp;
  opt.run.resilience.max_restarts = 3;
  opt.run.tcp.ack_timeout_ms = 20;
  opt.run.tcp.fault.seed = 7;
  opt.run.tcp.fault.sever_after = sweep_sever_after();
  job.mapper(word_mapper).combiner(sum_reducer).reducer(sum_reducer);
  job.options(opt);

  const auto r = job.run(inputs);
  EXPECT_GE(r.restarts, 1) << "the sever never fired; the test is vacuous";
  EXPECT_EQ(r.output, expect)
      << "recovered output differs from the fault-free reference";
}

TEST(DmrRecovery, CheckpointingDoesNotPerturbTheResult) {
  const auto inputs = corpus(80);

  Job<int, std::string, std::string, std::uint64_t, std::string,
      std::uint64_t>
      plain;
  Options base;
  base.ranks = 2;
  base.map_tasks = 8;
  base.partitions = 4;
  base.map_epochs = 4;
  plain.mapper(word_mapper).combiner(sum_reducer).reducer(sum_reducer);
  plain.options(base);
  const auto expect = plain.run(inputs);

  Job<int, std::string, std::string, std::uint64_t, std::string,
      std::uint64_t>
      ckpt;
  Options opt = base;
  opt.checkpoint_every = 1;
  opt.run.resilience.max_restarts = 1;  // enables the checkpoint dir
  ckpt.mapper(word_mapper).combiner(sum_reducer).reducer(sum_reducer);
  ckpt.options(opt);
  const auto r = ckpt.run(inputs);
  EXPECT_EQ(r.restarts, 0);
  EXPECT_EQ(r.output, expect.output);
}

}  // namespace
}  // namespace peachy::dmr
