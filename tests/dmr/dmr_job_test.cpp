// Distributed MapReduce acceptance: dmr::Job output must be byte-identical
// to the single-process mr::Job for the same job shape (map_tasks,
// partitions, combiner) across any rank/worker count and any transport —
// including when a small spill budget forces the external sort to disk.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "dmr/job.hpp"
#include "machine/advisor.hpp"
#include "mapreduce/job.hpp"
#include "mpp/mpp.hpp"

namespace peachy::dmr {
namespace {

using InputPair = std::pair<int, std::string>;
using CountPair = std::pair<std::string, std::uint64_t>;

// The canonical word-count corpus: enough text that every partition and
// map task sees work, with deliberately repeated hot words.
std::vector<InputPair> word_corpus(int lines) {
  const char* words[] = {"peach",  "stripe", "rank",  "shuffle", "spill",
                         "merge",  "peach",  "epoch", "peach",   "reduce",
                         "stripe", "sort"};
  std::vector<InputPair> inputs;
  inputs.reserve(static_cast<std::size_t>(lines));
  for (int i = 0; i < lines; ++i) {
    std::string line;
    for (int w = 0; w < 7; ++w) {
      if (w) line += ' ';
      line += words[(i * 5 + w * 3 + i % 4) % 12];
    }
    inputs.emplace_back(i, line);
  }
  return inputs;
}

void word_mapper(const int&, const std::string& line,
                 mr::Emitter<std::string, std::uint64_t>& out) {
  std::size_t start = 0;
  while (start < line.size()) {
    std::size_t end = line.find(' ', start);
    if (end == std::string::npos) end = line.size();
    if (end > start) out.emit(line.substr(start, end - start), 1);
    start = end + 1;
  }
}

void sum_reducer(const std::string& key,
                 const std::vector<std::uint64_t>& values,
                 mr::Emitter<std::string, std::uint64_t>& out) {
  std::uint64_t total = 0;
  for (const std::uint64_t v : values) total += v;
  out.emit(key, total);
}

// The single-process reference for a given job shape.
std::vector<CountPair> reference_counts(const std::vector<InputPair>& inputs,
                                        int map_tasks, int partitions,
                                        bool combine) {
  mr::Job<int, std::string, std::string, std::uint64_t, std::string,
          std::uint64_t>
      job;
  job.mapper(word_mapper).reducer(sum_reducer);
  if (combine) job.combiner(sum_reducer);
  mr::JobConfig cfg;
  cfg.map_workers = 2;
  cfg.reduce_workers = 2;
  cfg.map_tasks = map_tasks;
  cfg.partitions = partitions;
  job.config(cfg);
  return job.run(inputs);
}

Result<std::string, std::uint64_t> run_dmr(
    const std::vector<InputPair>& inputs, Options opt, bool combine = true) {
  Job<int, std::string, std::string, std::uint64_t, std::string,
      std::uint64_t>
      job;
  job.mapper(word_mapper).reducer(sum_reducer);
  if (combine) job.combiner(sum_reducer);
  job.options(std::move(opt));
  return job.run(inputs);
}

Options base_options(int ranks, mpp::TransportKind transport,
                     bool spawn = false) {
  Options opt;
  opt.ranks = ranks;
  opt.run.transport = transport;
  opt.run.spawn = spawn;
  opt.map_workers = 2;
  opt.reduce_workers = 2;
  opt.map_tasks = 8;
  opt.partitions = 4;
  return opt;
}

TEST(DmrJob, SingleRankInprocMatchesReference) {
  const auto inputs = word_corpus(64);
  const auto expect = reference_counts(inputs, 8, 4, true);
  const auto r = run_dmr(inputs, base_options(1, mpp::TransportKind::kInproc));
  EXPECT_EQ(r.output, expect);
  EXPECT_EQ(r.counters.map_inputs, inputs.size());
  EXPECT_EQ(r.counters.reduce_outputs, expect.size());
  EXPECT_EQ(r.counters.shuffle_bytes, 0u) << "one rank has no wire traffic";
  EXPECT_GT(r.counters.local_bytes, 0u);
}

TEST(DmrJob, MultiRankInprocMatchesReference) {
  const auto inputs = word_corpus(96);
  const auto expect = reference_counts(inputs, 8, 4, true);
  for (const int ranks : {2, 4}) {
    const auto r =
        run_dmr(inputs, base_options(ranks, mpp::TransportKind::kInproc));
    EXPECT_EQ(r.output, expect) << "ranks=" << ranks;
    EXPECT_GT(r.counters.shuffle_bytes, 0u) << "ranks=" << ranks;
    EXPECT_EQ(r.counters.groups, expect.size()) << "ranks=" << ranks;
  }
}

TEST(DmrJob, TcpTransportMatchesReference) {
  const auto inputs = word_corpus(80);
  const auto expect = reference_counts(inputs, 8, 4, true);
  for (const int ranks : {2, 4}) {
    const auto r =
        run_dmr(inputs, base_options(ranks, mpp::TransportKind::kTcp));
    EXPECT_EQ(r.output, expect) << "ranks=" << ranks;
    EXPECT_GT(r.comm.bytes_sent, 0u);
  }
}

TEST(DmrJob, WithoutCombinerMatchesReference) {
  const auto inputs = word_corpus(64);
  const auto expect = reference_counts(inputs, 8, 4, false);
  const auto r = run_dmr(
      inputs, base_options(2, mpp::TransportKind::kInproc), /*combine=*/false);
  EXPECT_EQ(r.output, expect);
  // No combiner: every mapped record crosses the shuffle.
  EXPECT_EQ(r.counters.combine_outputs, r.counters.map_outputs);
  EXPECT_EQ(r.counters.shuffle_records, r.counters.map_outputs);
}

TEST(DmrJob, ForcedSpillStaysByteIdentical) {
  const auto inputs = word_corpus(128);
  const auto expect = reference_counts(inputs, 8, 4, true);
  Options opt = base_options(2, mpp::TransportKind::kInproc);
  opt.spill_buffer_bytes = 256;  // far below the intermediate size
  const auto r = run_dmr(inputs, opt);
  EXPECT_EQ(r.output, expect);
  EXPECT_GT(r.counters.spill.spills, 0u) << "the cap never forced a spill";
  EXPECT_GT(r.counters.spill.spilled_bytes, 0u);
}

TEST(DmrJob, MapEpochsDoNotChangeTheOutput) {
  const auto inputs = word_corpus(96);
  const auto expect = reference_counts(inputs, 8, 4, true);
  Options opt = base_options(2, mpp::TransportKind::kInproc);
  opt.map_epochs = 4;
  const auto r = run_dmr(inputs, opt);
  EXPECT_EQ(r.output, expect);
  EXPECT_EQ(r.counters.epochs, 4);
}

TEST(DmrJob, MoreRanksThanPartitionsWorks) {
  const auto inputs = word_corpus(40);
  const auto expect = reference_counts(inputs, 8, 2, true);
  Options opt = base_options(4, mpp::TransportKind::kInproc);
  opt.partitions = 2;  // ranks 2 and 3 own nothing
  const auto r = run_dmr(inputs, opt);
  EXPECT_EQ(r.output, expect);
}

TEST(DmrJob, CountersMatchSingleProcessEngine) {
  const auto inputs = word_corpus(64);
  mr::Job<int, std::string, std::string, std::uint64_t, std::string,
          std::uint64_t>
      ref;
  ref.mapper(word_mapper).combiner(sum_reducer).reducer(sum_reducer);
  mr::JobConfig cfg;
  cfg.map_workers = 2;
  cfg.reduce_workers = 2;
  cfg.map_tasks = 8;
  cfg.partitions = 4;
  ref.config(cfg);
  const auto expect = ref.run(inputs);

  const auto r = run_dmr(inputs, base_options(2, mpp::TransportKind::kInproc));
  ASSERT_EQ(r.output, expect);
  // The distributed engine's phase counters agree with the in-process ones.
  EXPECT_EQ(r.counters.map_outputs, ref.counters().map_outputs);
  EXPECT_EQ(r.counters.combine_outputs, ref.counters().combine_outputs);
  EXPECT_EQ(r.counters.shuffle_records, ref.counters().shuffle_records);
  EXPECT_EQ(r.counters.groups, ref.counters().groups);
  EXPECT_EQ(r.counters.reduce_outputs, ref.counters().reduce_outputs);
  // Same records, same partitioner: the skew profile is identical too.
  ASSERT_EQ(r.counters.partition_records.size(),
            ref.counters().partition_records.size());
  EXPECT_EQ(r.counters.partition_records, ref.counters().partition_records);
}

TEST(DmrJob, SecondarySortOrdersValues) {
  // Values carry (weight); sort_values orders each group descending before
  // the reducer concatenates — both engines must agree.
  using Pair = std::pair<std::string, std::string>;
  const std::vector<std::pair<int, std::string>> inputs = {
      {0, "k1 c"}, {1, "k1 a"}, {2, "k2 z"}, {3, "k1 b"}, {4, "k2 y"}};
  const auto mapper = [](const int&, const std::string& line,
                         mr::Emitter<std::string, std::string>& out) {
    out.emit(line.substr(0, 2), line.substr(3));
  };
  const auto reducer = [](const std::string& key,
                          const std::vector<std::string>& values,
                          mr::Emitter<std::string, std::string>& out) {
    std::string joined;
    for (const auto& v : values) joined += v;
    out.emit(key, joined);
  };
  const auto desc = [](const std::string& a, const std::string& b) {
    return a > b;
  };

  mr::Job<int, std::string, std::string, std::string, std::string,
          std::string>
      ref;
  mr::JobConfig cfg;
  cfg.map_tasks = 3;
  cfg.partitions = 2;
  ref.mapper(mapper).reducer(reducer).sort_values(desc).config(cfg);
  const auto expect = ref.run(inputs);

  Job<int, std::string, std::string, std::string, std::string, std::string>
      job;
  Options opt;
  opt.ranks = 2;
  opt.map_tasks = 3;
  opt.partitions = 2;
  job.mapper(mapper).reducer(reducer).sort_values(desc).options(opt);
  const auto r = job.run(inputs);
  EXPECT_EQ(r.output, expect);
  std::vector<Pair> flat(r.output.begin(), r.output.end());
  for (const auto& [k, joined] : flat) {
    if (k == "k1") {
      EXPECT_EQ(joined, "cba");
    }
  }
}

TEST(DmrJob, FloatingPointSumsAreBitExact) {
  // Doubles summed in a fixed order: the distributed engine must add the
  // same values in the same order or the bits drift.
  std::vector<std::pair<int, double>> inputs;
  double x = 0.1;
  for (int i = 0; i < 200; ++i) {
    inputs.emplace_back(i, x);
    x = x * 1.31 + 0.017;
    if (x > 1e6) x = 0.1;
  }
  const auto mapper = [](const int& i, const double& v,
                         mr::Emitter<std::uint64_t, double>& out) {
    out.emit(static_cast<std::uint64_t>(i % 7), v);
  };
  const auto reducer = [](const std::uint64_t& key,
                          const std::vector<double>& values,
                          mr::Emitter<std::uint64_t, double>& out) {
    double sum = 0;
    for (const double v : values) sum += v;
    out.emit(key, sum);
  };

  mr::Job<int, double, std::uint64_t, double, std::uint64_t, double> ref;
  mr::JobConfig cfg;
  cfg.map_tasks = 6;
  cfg.partitions = 3;
  ref.mapper(mapper).combiner(reducer).reducer(reducer).config(cfg);
  const auto expect = ref.run(inputs);

  for (const int ranks : {1, 2, 3}) {
    Job<int, double, std::uint64_t, double, std::uint64_t, double> job;
    Options opt;
    opt.ranks = ranks;
    opt.map_tasks = 6;
    opt.partitions = 3;
    job.mapper(mapper).combiner(reducer).reducer(reducer).options(opt);
    const auto r = job.run(inputs);
    ASSERT_EQ(r.output.size(), expect.size()) << "ranks=" << ranks;
    for (std::size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(r.output[i].first, expect[i].first);
      // Bit-exact, not approximately equal.
      EXPECT_EQ(r.output[i].second, expect[i].second)
          << "ranks=" << ranks << " key=" << expect[i].first;
    }
  }
}

// Custom partition->rank mappings (Options::partition_owner) only move
// where partitions are reduced; the assembled output must stay
// byte-identical to the static p % R default.
TEST(DmrJob, CustomPartitionOwnerKeepsOutputByteIdentical) {
  const auto inputs = word_corpus(96);
  const auto expect =
      run_dmr(inputs, base_options(4, mpp::TransportKind::kInproc)).output;
  for (const std::vector<int>& owner :
       {std::vector<int>{3, 2, 1, 0}, std::vector<int>{0, 0, 0, 0},
        std::vector<int>{1, 3, 1, 3}}) {
    Options opt = base_options(4, mpp::TransportKind::kInproc);
    opt.partition_owner = owner;
    const auto r = run_dmr(inputs, opt);
    EXPECT_EQ(r.output, expect)
        << "owner={" << owner[0] << "," << owner[1] << "," << owner[2] << ","
        << owner[3] << "}";
  }
}

TEST(DmrJob, AdvisorPlacementKeepsOutputByteIdentical) {
  const auto inputs = word_corpus(96);
  Options opt = base_options(4, mpp::TransportKind::kInproc);
  const auto ref = run_dmr(inputs, opt);
  const auto expect = ref.output;

  // Feed the measured skew profile back through the advisor, the way a
  // production caller would re-place a recurring job.
  machine::Machine m;
  machine::NodeGroup g;
  g.name = "cluster";
  g.nodes = 2;
  g.sockets_per_node = 1;
  g.cores_per_socket = 2;
  g.core_gflops = 1.0;
  g.l3 = {100e9, 1e-9};
  g.membus = {25e9, 1e-9};
  g.nic = {1e9, 1e-6};
  m.groups.push_back(g);
  m.fabric = {1e9, 1e-6};
  std::vector<std::uint64_t> traffic;
  for (const std::size_t records : ref.counters.partition_records)
    traffic.push_back(static_cast<std::uint64_t>(records));
  const machine::Placement placed =
      machine::PlacementAdvisor(m).recommend(4, traffic);
  ASSERT_EQ(placed.partition_owner.size(), 4u);

  opt.partition_owner = placed.partition_owner;
  const auto r = run_dmr(inputs, opt);
  EXPECT_EQ(r.output, expect);
  EXPECT_EQ(r.counters.groups, ref.counters.groups);
}

TEST(DmrJob, MalformedPartitionOwnerFailsLoudly) {
  const auto inputs = word_corpus(16);
  Options wrong_size = base_options(2, mpp::TransportKind::kInproc);
  wrong_size.partition_owner = {0, 1};  // job has 4 partitions
  EXPECT_THROW(run_dmr(inputs, wrong_size), Error);

  Options bad_rank = base_options(2, mpp::TransportKind::kInproc);
  bad_rank.partition_owner = {0, 1, 0, 2};  // rank 2 of a 2-rank world
  EXPECT_THROW(run_dmr(inputs, bad_rank), Error);
}

}  // namespace
}  // namespace peachy::dmr
