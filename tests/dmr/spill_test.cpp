// Unit tests for the dmr spill layer: record framing, run files, and the
// external sorter's spill/merge behavior.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "dmr/codec.hpp"
#include "dmr/sorter.hpp"
#include "dmr/spill.hpp"

namespace peachy::dmr {
namespace {

RawRecord make_record(std::uint32_t partition, std::uint32_t task,
                      std::uint32_t seq, const std::string& key,
                      const std::string& value) {
  RawRecord rec;
  rec.partition = partition;
  rec.task = task;
  rec.seq = seq;
  Codec<std::string>::encode(key, rec.key);
  Codec<std::string>::encode(value, rec.value);
  return rec;
}

TEST(SpillFrame, RoundTripsThroughBuffer) {
  std::vector<std::byte> buf;
  append_record(make_record(3, 7, 11, "alpha", "one"), buf);
  append_record(make_record(0, 0, 0, "", ""), buf);  // empty key and value
  append_record(make_record(1, 2, 3, "k", std::string(1000, 'x')), buf);

  std::size_t pos = 0;
  RawRecord rec;
  ASSERT_TRUE(read_record(buf, pos, rec));
  EXPECT_EQ(rec.partition, 3u);
  EXPECT_EQ(rec.task, 7u);
  EXPECT_EQ(rec.seq, 11u);
  EXPECT_EQ(Codec<std::string>::decode(rec.key.data(), rec.key.size()),
            "alpha");
  ASSERT_TRUE(read_record(buf, pos, rec));
  EXPECT_TRUE(rec.key.empty());
  EXPECT_TRUE(rec.value.empty());
  ASSERT_TRUE(read_record(buf, pos, rec));
  EXPECT_EQ(rec.value.size(), 1000u);
  EXPECT_FALSE(read_record(buf, pos, rec));  // clean end
  EXPECT_EQ(pos, buf.size());
}

TEST(SpillFrame, TruncatedFrameThrows) {
  std::vector<std::byte> buf;
  append_record(make_record(1, 1, 1, "key", "value"), buf);
  buf.resize(buf.size() - 2);  // tear the value
  std::size_t pos = 0;
  RawRecord rec;
  EXPECT_THROW(read_record(buf, pos, rec), Error);
}

TEST(SpillRun, WriterReaderRoundTrip) {
  SpillDir dir;
  {
    RunWriter writer(dir.run_path(0));
    for (int i = 0; i < 100; ++i)
      writer.write(make_record(0, 0, static_cast<std::uint32_t>(i),
                               "key" + std::to_string(i),
                               std::to_string(i * i)));
    writer.close();
    EXPECT_EQ(writer.records(), 100u);
  }
  RunReader reader(dir.run_path(0));
  RawRecord rec;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.seq, static_cast<std::uint32_t>(i));
    EXPECT_EQ(Codec<std::string>::decode(rec.key.data(), rec.key.size()),
              "key" + std::to_string(i));
  }
  EXPECT_FALSE(reader.next(rec));
}

TEST(SpillDirTest, TempDirIsRemovedOnDestruction) {
  std::string path;
  {
    SpillDir dir;
    path = dir.path();
    RunWriter writer(dir.run_path(0));
    writer.write(make_record(0, 0, 0, "k", "v"));
    writer.close();
    EXPECT_TRUE(std::filesystem::exists(path));
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(ExternalSorterTest, UnboundedBufferNeverSpills) {
  SpillDir dir;
  ExternalSorter<std::string, std::uint64_t> sorter(dir, 0);
  sorter.add(0, "b", 2, 1, 0);
  sorter.add(0, "a", 1, 0, 0);
  sorter.add(1, "a", 3, 0, 1);
  EXPECT_EQ(sorter.stats().spills, 0u);

  std::vector<std::string> keys;
  std::vector<std::uint32_t> parts;
  sorter.stream([&](std::uint32_t p, const std::string& k, std::uint64_t&,
                    std::uint32_t) {
    parts.push_back(p);
    keys.push_back(k);
  });
  // Sorted by (partition, key): p0/"a", p0/"b", p1/"a".
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "a"}));
  EXPECT_EQ(parts, (std::vector<std::uint32_t>{0, 0, 1}));
}

TEST(ExternalSorterTest, SpillsAndMergesInOrder) {
  SpillDir dir;
  // ~40 bytes per record forces many spills with a 128-byte cap.
  ExternalSorter<std::string, std::uint64_t> sorter(dir, 128);
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    // Insert in descending key order so merge must reorder across runs.
    const int k = n - 1 - i;
    char key[16];
    std::snprintf(key, sizeof key, "key%05d", k);
    sorter.add(static_cast<std::uint32_t>(k % 3), key,
               static_cast<std::uint64_t>(k), static_cast<std::uint32_t>(i),
               0);
  }
  EXPECT_GT(sorter.stats().spills, 1u);
  EXPECT_GT(sorter.stats().spilled_records, 0u);
  EXPECT_EQ(sorter.total_records(), static_cast<std::size_t>(n));

  std::uint32_t last_part = 0;
  std::string last_key;
  std::size_t seen = 0;
  sorter.stream([&](std::uint32_t p, const std::string& k, std::uint64_t& v,
                    std::uint32_t) {
    if (seen > 0) {
      // (partition, key) must be non-decreasing.
      EXPECT_TRUE(p > last_part || (p == last_part && k >= last_key))
          << "out of order at record " << seen;
    }
    EXPECT_EQ(v, static_cast<std::uint64_t>(std::stoi(k.substr(3))));
    last_part = p;
    last_key = k;
    ++seen;
  });
  EXPECT_EQ(seen, static_cast<std::size_t>(n));
}

TEST(ExternalSorterTest, TieBreaksByTaskThenSeq) {
  SpillDir dir;
  ExternalSorter<std::string, std::uint64_t> sorter(dir, 64);  // force spills
  // Same (partition, key) from several "tasks", out of task order.
  sorter.add(0, "k", 30, 3, 0);
  sorter.add(0, "k", 10, 1, 0);
  sorter.add(0, "k", 11, 1, 1);
  sorter.add(0, "k", 20, 2, 0);
  sorter.add(0, "k", 0, 0, 0);

  std::vector<std::uint64_t> values;
  sorter.stream([&](std::uint32_t, const std::string&, std::uint64_t& v,
                    std::uint32_t) { values.push_back(v); });
  EXPECT_EQ(values, (std::vector<std::uint64_t>{0, 10, 11, 20, 30}));
}

TEST(ExternalSorterTest, SnapshotRestoresThroughAddRaw) {
  SpillDir dir;
  ExternalSorter<std::string, std::uint64_t> sorter(dir, 96);
  for (int i = 0; i < 50; ++i)
    sorter.add(static_cast<std::uint32_t>(i % 2), "key" + std::to_string(i),
               static_cast<std::uint64_t>(i), 0,
               static_cast<std::uint32_t>(i));

  // Snapshot into a blob (the checkpoint path)...
  std::vector<std::byte> blob;
  std::size_t snapshot_count = 0;
  sorter.snapshot([&](const RawRecord& rec) {
    append_record(rec, blob);
    ++snapshot_count;
  });
  EXPECT_EQ(snapshot_count, 50u);

  // ...and rebuild a fresh sorter from it (the restore path).
  SpillDir dir2;
  ExternalSorter<std::string, std::uint64_t> restored(dir2, 96);
  std::size_t pos = 0;
  RawRecord rec;
  while (read_record(blob, pos, rec)) restored.add_raw(rec);
  EXPECT_EQ(restored.total_records(), 50u);

  std::vector<std::pair<std::string, std::uint64_t>> a, b;
  sorter.stream([&](std::uint32_t, const std::string& k, std::uint64_t& v,
                    std::uint32_t) { a.emplace_back(k, v); });
  restored.stream([&](std::uint32_t, const std::string& k, std::uint64_t& v,
                      std::uint32_t) { b.emplace_back(k, v); });
  EXPECT_EQ(a, b);
}

TEST(CodecTest, TrivialAndStringRoundTrip) {
  std::vector<std::byte> buf;
  Codec<double>::encode(3.25, buf);
  EXPECT_EQ(Codec<double>::decode(buf.data(), buf.size()), 3.25);
  EXPECT_THROW(Codec<double>::decode(buf.data(), 3), Error);

  std::vector<std::byte> sbuf;
  Codec<std::string>::encode("hello", sbuf);
  EXPECT_EQ(Codec<std::string>::decode(sbuf.data(), sbuf.size()), "hello");
  EXPECT_EQ(byte_size(std::string("hello")), 5u);
  EXPECT_EQ(byte_size(3.25), sizeof(double));
}

}  // namespace
}  // namespace peachy::dmr
