#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace peachy::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(e.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, TiesBreakByScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    e.schedule_at(5.0, [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, NowAdvancesWithEvents) {
  Engine e;
  double seen = -1;
  e.schedule_at(2.5, [&] { seen = e.now(); });
  e.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(e.now(), 2.5);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  std::vector<double> times;
  e.schedule_at(1.0, [&] {
    e.schedule_in(0.5, [&] { times.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 1.5);
}

TEST(Engine, CascadingEventsRun) {
  Engine e;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) e.schedule_in(1.0, chain);
  };
  e.schedule_at(0.0, chain);
  EXPECT_EQ(e.run(), 100u);
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(e.now(), 99.0);
}

TEST(Engine, RunUntilLeavesLaterEventsQueued) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] { ++fired; });
  e.schedule_at(2.0, [&] { ++fired; });
  e.schedule_at(10.0, [&] { ++fired; });
  EXPECT_EQ(e.run_until(5.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(e.empty());
  EXPECT_EQ(e.run(), 1u);
  EXPECT_EQ(fired, 3);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine e;
  e.schedule_at(5.0, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(4.0, [] {}), Error);
  EXPECT_NO_THROW(e.schedule_at(5.0, [] {}));  // now is allowed
}

TEST(Engine, NullCallbackRejected) {
  Engine e;
  EXPECT_THROW(e.schedule_at(1.0, nullptr), Error);
}

TEST(Engine, ProcessedCountsAcrossRuns) {
  Engine e;
  e.schedule_at(1.0, [] {});
  e.run();
  e.schedule_at(2.0, [] {});
  e.run();
  EXPECT_EQ(e.processed(), 2u);
}

}  // namespace
}  // namespace peachy::sim
