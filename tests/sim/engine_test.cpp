#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace peachy::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(e.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, TiesBreakByScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    e.schedule_at(5.0, [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, NowAdvancesWithEvents) {
  Engine e;
  double seen = -1;
  e.schedule_at(2.5, [&] { seen = e.now(); });
  e.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(e.now(), 2.5);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  std::vector<double> times;
  e.schedule_at(1.0, [&] {
    e.schedule_in(0.5, [&] { times.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 1.5);
}

TEST(Engine, CascadingEventsRun) {
  Engine e;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) e.schedule_in(1.0, chain);
  };
  e.schedule_at(0.0, chain);
  EXPECT_EQ(e.run(), 100u);
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(e.now(), 99.0);
}

TEST(Engine, RunUntilLeavesLaterEventsQueued) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] { ++fired; });
  e.schedule_at(2.0, [&] { ++fired; });
  e.schedule_at(10.0, [&] { ++fired; });
  EXPECT_EQ(e.run_until(5.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(e.empty());
  EXPECT_EQ(e.run(), 1u);
  EXPECT_EQ(fired, 3);
}

TEST(Engine, RunUntilFiresEventExactlyAtHorizon) {
  Engine e;
  int fired = 0;
  e.schedule_at(5.0, [&] { ++fired; });
  EXPECT_EQ(e.run_until(5.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
}

TEST(Engine, RunUntilFiresReentrantEventAtHorizon) {
  // An event scheduled *during* run_until for exactly the horizon belongs to
  // this slice, not the next one.
  Engine e;
  std::vector<double> times;
  e.schedule_at(3.0, [&] {
    e.schedule_at(5.0, [&] { times.push_back(e.now()); });
  });
  EXPECT_EQ(e.run_until(5.0), 2u);
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 5.0);
}

TEST(Engine, RunUntilAdvancesClockToHorizonWhenQueueDrains) {
  Engine e;
  e.schedule_at(2.0, [] {});
  EXPECT_EQ(e.run_until(5.0), 1u);
  // The slice covers [0, 5]: the clock lands on the horizon so the next
  // schedule_in anchors there instead of at the last event.
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
  double seen = -1;
  e.schedule_in(1.0, [&] { seen = e.now(); });
  EXPECT_THROW(e.schedule_at(4.0, [] {}), Error);  // inside the past slice
  e.run();
  EXPECT_DOUBLE_EQ(seen, 6.0);
}

TEST(Engine, RunUntilOnEmptyQueueStillAdvancesClock) {
  Engine e;
  EXPECT_EQ(e.run_until(7.0), 0u);
  EXPECT_DOUBLE_EQ(e.now(), 7.0);
  EXPECT_EQ(e.run_until(3.0), 0u);  // horizon in the past: clock keeps
  EXPECT_DOUBLE_EQ(e.now(), 7.0);
}

TEST(Engine, RunKeepsClockAtLastEventNotInfinity) {
  Engine e;
  e.schedule_at(2.0, [] {});
  e.run();
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
  EXPECT_NO_THROW(e.schedule_at(2.0, [] {}));
}

TEST(Engine, ReentrantScheduleAtNowRunsInSameCall) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(1.0, [&] {
    order.push_back(0);
    e.schedule_at(e.now(), [&] { order.push_back(2); });
    order.push_back(1);
  });
  EXPECT_EQ(e.run_until(1.0), 2u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(e.now(), 1.0);
}

TEST(Engine, EqualTimestampOrderIsStableAcrossRunUntilSplits) {
  // The same schedule executed in one run() or chopped into run_until()
  // slices must fire equal-timestamp events in identical order.
  auto record = [](Engine& e, std::vector<int>& order) {
    for (int i = 0; i < 6; ++i)
      e.schedule_at(i < 3 ? 4.0 : 8.0, [&order, i] { order.push_back(i); });
  };
  Engine whole;
  std::vector<int> whole_order;
  record(whole, whole_order);
  whole.run();

  Engine split;
  std::vector<int> split_order;
  record(split, split_order);
  split.run_until(4.0);
  split.run_until(6.0);  // empty slice in between
  split.run_until(8.0);
  EXPECT_EQ(split_order, whole_order);
  EXPECT_EQ(whole_order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine e;
  e.schedule_at(5.0, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(4.0, [] {}), Error);
  EXPECT_NO_THROW(e.schedule_at(5.0, [] {}));  // now is allowed
}

TEST(Engine, NullCallbackRejected) {
  Engine e;
  EXPECT_THROW(e.schedule_at(1.0, nullptr), Error);
}

TEST(Engine, ProcessedCountsAcrossRuns) {
  Engine e;
  e.schedule_at(1.0, [] {});
  e.run();
  e.schedule_at(2.0, [] {});
  e.run();
  EXPECT_EQ(e.processed(), 2u);
}

}  // namespace
}  // namespace peachy::sim
