#include "mapreduce/io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/error.hpp"

namespace peachy::mr {
namespace {

class MrIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "peachy_mr_io";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void write(const std::string& name, const std::string& content) {
    std::ofstream os(dir_ / name, std::ios::binary);
    os << content;
  }

  std::filesystem::path dir_;
};

TEST_F(MrIoTest, ReadLinesBasic) {
  write("a.txt", "one\ntwo\nthree\n");
  const auto lines = read_lines((dir_ / "a.txt").string());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "one");
  EXPECT_EQ(lines[2], "three");
}

TEST_F(MrIoTest, ReadLinesHandlesCrLfAndNoFinalNewline) {
  write("b.txt", "x\r\ny\r\nz");
  const auto lines = read_lines((dir_ / "b.txt").string());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[1], "y");
  EXPECT_EQ(lines[2], "z");
}

TEST_F(MrIoTest, ReadLinesMissingFileThrows) {
  EXPECT_THROW(read_lines((dir_ / "missing.txt").string()), Error);
}

TEST_F(MrIoTest, DirReadsInNameOrder) {
  write("02.csv", "second\n");
  write("01.csv", "first\n");
  write("03.csv", "third\n");
  const auto lines = read_lines_in_dir(dir_.string());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "first");
  EXPECT_EQ(lines[1], "second");
  EXPECT_EQ(lines[2], "third");
}

TEST_F(MrIoTest, DirSuffixFilter) {
  write("data.csv", "keep\n");
  write("notes.txt", "skip\n");
  const auto lines = read_lines_in_dir(dir_.string(), ".csv");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "keep");
}

TEST_F(MrIoTest, DirNotADirectoryThrows) {
  write("f.txt", "x\n");
  EXPECT_THROW(read_lines_in_dir((dir_ / "f.txt").string()), Error);
}

TEST_F(MrIoTest, AsRecordsNumbersLines) {
  const auto records = as_records({"a", "b"});
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].first, 0);
  EXPECT_EQ(records[1].second, "b");
}

}  // namespace
}  // namespace peachy::mr
