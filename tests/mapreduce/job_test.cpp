#include "mapreduce/job.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/rng.hpp"

namespace peachy::mr {
namespace {

using WordCountJob = Job<int, std::string, std::string, int, std::string, int>;

// Classic word count over (line number, line) records.
std::vector<std::pair<std::string, int>> word_count(
    const std::vector<std::pair<int, std::string>>& lines, JobConfig cfg,
    bool with_combiner, JobCounters* counters = nullptr) {
  WordCountJob job;
  job.mapper([](const int&, const std::string& line,
                Emitter<std::string, int>& out) {
       std::string word;
       for (char c : line + " ") {
         if (c == ' ') {
           if (!word.empty()) out.emit(word, 1);
           word.clear();
         } else {
           word += c;
         }
       }
     })
      .reducer([](const std::string& w, const std::vector<int>& vs,
                  Emitter<std::string, int>& out) {
        int total = 0;
        for (int v : vs) total += v;
        out.emit(w, total);
      })
      .config(cfg);
  if (with_combiner)
    job.combiner([](const std::string& w, const std::vector<int>& vs,
                    Emitter<std::string, int>& out) {
      int total = 0;
      for (int v : vs) total += v;
      out.emit(w, total);
    });
  auto result = job.run(lines);
  if (counters) *counters = job.counters();
  return result;
}

std::vector<std::pair<int, std::string>> sample_lines() {
  return {{0, "the quick brown fox"},
          {1, "the lazy dog"},
          {2, "the quick dog barks"},
          {3, ""},
          {4, "fox"}};
}

std::map<std::string, int> as_map(
    const std::vector<std::pair<std::string, int>>& kv) {
  return {kv.begin(), kv.end()};
}

TEST(Job, WordCountCorrect) {
  const auto out = word_count(sample_lines(), JobConfig{}, false);
  const auto m = as_map(out);
  EXPECT_EQ(m.at("the"), 3);
  EXPECT_EQ(m.at("quick"), 2);
  EXPECT_EQ(m.at("fox"), 2);
  EXPECT_EQ(m.at("barks"), 1);
  EXPECT_EQ(m.size(), 7u);
}

TEST(Job, CombinerDoesNotChangeResult) {
  const auto without = as_map(word_count(sample_lines(), JobConfig{}, false));
  const auto with = as_map(word_count(sample_lines(), JobConfig{}, true));
  EXPECT_EQ(without, with);
}

TEST(Job, CombinerShrinksShuffle) {
  JobCounters with{}, without{};
  word_count(sample_lines(), JobConfig{1, 1, 1, 1}, true, &with);
  word_count(sample_lines(), JobConfig{1, 1, 1, 1}, false, &without);
  EXPECT_LT(with.shuffle_records, without.shuffle_records);
  EXPECT_EQ(with.map_outputs, without.map_outputs);
  EXPECT_LT(with.combine_outputs, with.map_outputs);
}

TEST(Job, OutputIndependentOfWorkerCounts) {
  const auto baseline = word_count(sample_lines(), JobConfig{1, 1, 1, 1}, false);
  for (int mw : {1, 2, 4})
    for (int rw : {1, 3}) {
      // Keep partitions fixed so output *order* is comparable too.
      const auto out =
          word_count(sample_lines(), JobConfig{mw, rw, 0, 1}, true);
      EXPECT_EQ(out, baseline) << mw << " map / " << rw << " reduce workers";
    }
}

TEST(Job, PartitionKeysSortedWithinPartition) {
  const auto out = word_count(sample_lines(), JobConfig{2, 1, 0, 1}, false);
  for (std::size_t i = 1; i < out.size(); ++i)
    EXPECT_LT(out[i - 1].first, out[i].first);
}

TEST(Job, CustomPartitionerRespected) {
  WordCountJob job;
  job.mapper([](const int&, const std::string& line,
                Emitter<std::string, int>& out) { out.emit(line, 1); })
      .reducer([](const std::string& k, const std::vector<int>& vs,
                  Emitter<std::string, int>& out) {
        out.emit(k, static_cast<int>(vs.size()));
      })
      .partitioner([](const std::string& key, int parts) {
        return key.size() % 2 == 0 ? 0 : (parts > 1 ? 1 : 0);
      })
      .config(JobConfig{1, 2, 0, 2});
  const auto out = job.run({{0, "aa"}, {1, "b"}, {2, "cc"}, {3, "d"}});
  // Partition 0 (even-length keys, sorted) then partition 1.
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].first, "aa");
  EXPECT_EQ(out[1].first, "cc");
  EXPECT_EQ(out[2].first, "b");
  EXPECT_EQ(out[3].first, "d");
}

TEST(Job, BadPartitionerThrows) {
  WordCountJob job;
  job.mapper([](const int&, const std::string&, Emitter<std::string, int>& o) {
       o.emit("k", 1);
     })
      .reducer([](const std::string&, const std::vector<int>&,
                  Emitter<std::string, int>&) {})
      .partitioner([](const std::string&, int) { return 99; });
  EXPECT_THROW(job.run({{0, "x"}}), Error);
}

TEST(Job, MissingPhasesThrow) {
  WordCountJob no_mapper;
  no_mapper.reducer([](const std::string&, const std::vector<int>&,
                       Emitter<std::string, int>&) {});
  EXPECT_THROW(no_mapper.run({}), Error);

  WordCountJob no_reducer;
  no_reducer.mapper(
      [](const int&, const std::string&, Emitter<std::string, int>&) {});
  EXPECT_THROW(no_reducer.run({}), Error);
}

TEST(Job, EmptyInputYieldsEmptyOutput) {
  JobCounters counters{};
  const auto out = word_count({}, JobConfig{2, 2, 0, 0}, true, &counters);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(counters.map_inputs, 0u);
  EXPECT_EQ(counters.groups, 0u);
}

TEST(Job, CountersConsistent) {
  JobCounters c{};
  word_count(sample_lines(), JobConfig{2, 2, 0, 2}, false, &c);
  EXPECT_EQ(c.map_inputs, 5u);
  EXPECT_EQ(c.map_outputs, 12u);       // total words
  EXPECT_EQ(c.combine_outputs, 12u);   // no combiner configured
  EXPECT_EQ(c.shuffle_records, 12u);
  EXPECT_EQ(c.groups, 7u);
  EXPECT_EQ(c.reduce_outputs, 7u);
}

TEST(Job, GroupValuesKeepDeterministicOrder) {
  // Values for one key must arrive in (map task, emit order) — checked by
  // concatenating them in the reducer.
  Job<int, std::string, std::string, std::string, std::string, std::string>
      job;
  job.mapper([](const int& id, const std::string& v,
                Emitter<std::string, std::string>& out) {
       out.emit("k", std::to_string(id) + ":" + v);
     })
      .reducer([](const std::string& k,
                  const std::vector<std::string>& vs,
                  Emitter<std::string, std::string>& out) {
        std::string joined;
        for (const auto& v : vs) joined += v + "|";
        out.emit(k, joined);
      })
      .config(JobConfig{3, 1, 4, 1});
  const auto out = job.run({{0, "a"}, {1, "b"}, {2, "c"}, {3, "d"}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].second, "0:a|1:b|2:c|3:d|");
}

TEST(Job, SecondarySortOrdersValuesWithinGroup) {
  // Values arrive shuffled across map tasks; sort_values must hand the
  // reducer an ascending stream regardless of split boundaries.
  Job<int, int, std::string, int, std::string, std::string> job;
  job.mapper([](const int&, const int& v, Emitter<std::string, int>& out) {
       out.emit("k", v);
     })
      .sort_values([](const int& a, const int& b) { return a < b; })
      .reducer([](const std::string& k, const std::vector<int>& vs,
                  Emitter<std::string, std::string>& out) {
        std::string joined;
        for (int v : vs) joined += std::to_string(v) + ",";
        out.emit(k, joined);
      })
      .config(JobConfig{3, 1, 5, 1});
  const auto out = job.run({{0, 5}, {1, 1}, {2, 9}, {3, 3}, {4, 7}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].second, "1,3,5,7,9,");
}

TEST(Job, SecondarySortIsStable) {
  // Equal-key elements keep their deterministic arrival order.
  Job<int, std::pair<int, char>, int, std::pair<int, char>, int, std::string>
      job;
  job.mapper([](const int&, const std::pair<int, char>& v,
                Emitter<int, std::pair<int, char>>& out) { out.emit(0, v); })
      .sort_values([](const std::pair<int, char>& a,
                      const std::pair<int, char>& b) {
        return a.first < b.first;
      })
      .reducer([](const int&, const std::vector<std::pair<int, char>>& vs,
                  Emitter<int, std::string>& out) {
        std::string s;
        for (const auto& v : vs) s += v.second;
        out.emit(0, s);
      })
      .config(JobConfig{1, 1, 1, 1});
  const auto out = job.run(
      {{0, {2, 'a'}}, {1, {1, 'b'}}, {2, {2, 'c'}}, {3, {1, 'd'}}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].second, "bdac");
}

TEST(Job, OutputIdenticalAcrossWorkerCountsAndArenas) {
  // The determinism guarantee must hold whether phases run serially, on a
  // narrow explicit arena or on a wide one: 1, 2 and 8 workers, each with
  // its own work-stealing arena, must produce byte-identical output.
  JobConfig base{1, 1, 8, 1};
  const auto baseline = word_count(sample_lines(), base, true);
  for (const int workers : {1, 2, 8}) {
    TaskArena arena(static_cast<std::size_t>(workers));
    JobConfig cfg{workers, workers, 8, 1};
    cfg.arena = &arena;
    const auto out = word_count(sample_lines(), cfg, true);
    EXPECT_EQ(out, baseline) << workers << " workers";
  }
}

TEST(Job, GroupOrderDeterministicOnWideArena) {
  // Per-key value order must stay (map task, emit order) even when map
  // tasks finish out of order on many lanes.
  TaskArena arena(4);
  Job<int, std::string, std::string, std::string, std::string, std::string>
      job;
  JobConfig cfg{4, 2, 8, 1};
  cfg.arena = &arena;
  job.mapper([](const int& id, const std::string& v,
                Emitter<std::string, std::string>& out) {
       out.emit("k", std::to_string(id) + ":" + v);
     })
      .reducer([](const std::string& k, const std::vector<std::string>& vs,
                  Emitter<std::string, std::string>& out) {
        std::string joined;
        for (const auto& v : vs) joined += v + "|";
        out.emit(k, joined);
      })
      .config(cfg);
  const auto out = job.run(
      {{0, "a"}, {1, "b"}, {2, "c"}, {3, "d"}, {4, "e"}, {5, "f"}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].second, "0:a|1:b|2:c|3:d|4:e|5:f|");
}

TEST(Job, ShuffleRecordsAlwaysEqualCombineOutputs) {
  // The flat shuffle must neither drop nor duplicate records: what leaves
  // the combiners is exactly what the reducers receive.
  for (const bool combiner : {false, true})
    for (const int parts : {1, 2, 5}) {
      JobCounters c{};
      word_count(sample_lines(), JobConfig{2, 2, 3, parts}, combiner, &c);
      EXPECT_EQ(c.shuffle_records, c.combine_outputs)
          << (combiner ? "with" : "without") << " combiner, " << parts
          << " partitions";
    }
}

TEST(Job, MeanViaSumCountPairsMatchesDirectMean) {
  // The pattern the climate pipeline uses: emit (key, (sum, count)).
  struct Acc {
    double sum;
    int n;
  };
  Rng rng(5);
  std::vector<std::pair<int, double>> inputs;
  std::map<int, std::pair<double, int>> direct;
  for (int i = 0; i < 500; ++i) {
    const int key = static_cast<int>(rng.uniform_int(0, 9));
    const double v = rng.uniform(-10, 10);
    inputs.emplace_back(key, v);
    direct[key].first += v;
    direct[key].second += 1;
  }
  Job<int, double, int, Acc, int, double> job;
  job.mapper([](const int& k, const double& v, Emitter<int, Acc>& out) {
       out.emit(k, Acc{v, 1});
     })
      .combiner([](const int& k, const std::vector<Acc>& vs,
                   Emitter<int, Acc>& out) {
        Acc t{0, 0};
        for (const Acc& a : vs) {
          t.sum += a.sum;
          t.n += a.n;
        }
        out.emit(k, t);
      })
      .reducer([](const int& k, const std::vector<Acc>& vs,
                  Emitter<int, double>& out) {
        Acc t{0, 0};
        for (const Acc& a : vs) {
          t.sum += a.sum;
          t.n += a.n;
        }
        out.emit(k, t.sum / t.n);
      })
      .config(JobConfig{4, 2, 0, 1});
  const auto out = job.run(inputs);
  ASSERT_EQ(out.size(), direct.size());
  for (const auto& [k, mean] : out)
    EXPECT_NEAR(mean, direct[k].first / direct[k].second, 1e-9) << "key " << k;
}

TEST(Job, ShuffleBytesCountPayloads) {
  JobCounters c{};
  word_count(sample_lines(), JobConfig{1, 1, 2, 2}, false, &c);
  // String keys count content bytes, int values count sizeof: the exact
  // figure is the sum over shuffled records of key.size() + sizeof(int).
  std::size_t expect = 0;
  for (const auto& [id, line] : sample_lines()) {
    std::string word;
    for (char ch : line + " ") {
      if (ch == ' ') {
        if (!word.empty()) expect += word.size() + sizeof(int);
        word.clear();
      } else {
        word += ch;
      }
    }
  }
  EXPECT_EQ(c.shuffle_bytes, expect);
}

TEST(Job, CombinerShrinksShuffleBytes) {
  JobCounters with{};
  JobCounters without{};
  word_count(sample_lines(), JobConfig{2, 2, 2, 2}, true, &with);
  word_count(sample_lines(), JobConfig{2, 2, 2, 2}, false, &without);
  EXPECT_LT(with.shuffle_bytes, without.shuffle_bytes);
}

TEST(Job, PartitionRecordsProfileSkew) {
  JobCounters c{};
  word_count(sample_lines(), JobConfig{2, 2, 0, 3}, false, &c);
  ASSERT_EQ(c.partition_records.size(), 3u);
  std::size_t total = 0;
  for (const std::size_t n : c.partition_records) total += n;
  EXPECT_EQ(total, c.shuffle_records);

  // A single-partition job shows all records in one bucket.
  JobCounters one{};
  word_count(sample_lines(), JobConfig{1, 1, 0, 1}, false, &one);
  ASSERT_EQ(one.partition_records.size(), 1u);
  EXPECT_EQ(one.partition_records[0], one.shuffle_records);
}

TEST(Job, PartitionRecordsIndependentOfWorkerCounts) {
  JobCounters a{};
  JobCounters b{};
  word_count(sample_lines(), JobConfig{1, 1, 4, 4}, false, &a);
  word_count(sample_lines(), JobConfig{4, 4, 4, 4}, false, &b);
  EXPECT_EQ(a.partition_records, b.partition_records);
  EXPECT_EQ(a.shuffle_bytes, b.shuffle_bytes);
}

}  // namespace
}  // namespace peachy::mr
