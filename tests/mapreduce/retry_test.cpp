// Per-task failure containment: a throwing mapper/reducer is re-dispatched
// up to JobConfig::max_task_retries times before the job fails, retried
// tasks re-run their split from scratch, and the output stays byte-equal to
// a clean run — Hadoop's task-level fault tolerance in miniature.
#include "mapreduce/job.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <vector>

namespace peachy::mr {
namespace {

using WordCountJob = Job<int, std::string, std::string, int, std::string, int>;

void word_mapper(const int&, const std::string& line,
                 Emitter<std::string, int>& out) {
  std::string word;
  for (char c : line + " ") {
    if (c == ' ') {
      if (!word.empty()) out.emit(word, 1);
      word.clear();
    } else {
      word += c;
    }
  }
}

void sum_reducer(const std::string& w, const std::vector<int>& vs,
                 Emitter<std::string, int>& out) {
  int total = 0;
  for (int v : vs) total += v;
  out.emit(w, total);
}

std::vector<std::pair<int, std::string>> sample_lines() {
  return {{0, "the quick brown fox"},
          {1, "the lazy dog"},
          {2, "poison the quick dog"},
          {3, "fox barks"}};
}

std::vector<std::pair<std::string, int>> clean_run(const JobConfig& cfg) {
  WordCountJob job;
  job.mapper(word_mapper).reducer(sum_reducer).config(cfg);
  return job.run(sample_lines());
}

TEST(TaskRetry, FlakyMapperCompletesWithIdenticalOutput) {
  JobConfig cfg{2, 2, 4, 1};
  cfg.max_task_retries = 2;
  const auto expected = clean_run(cfg);

  std::atomic<int> failures_left{1};
  WordCountJob job;
  job.mapper([&](const int& k, const std::string& line,
                 Emitter<std::string, int>& out) {
       if (line.find("poison") != std::string::npos &&
           failures_left.fetch_sub(1) > 0)
         throw Error("simulated mapper crash");
       word_mapper(k, line, out);
     })
      .reducer(sum_reducer)
      .config(cfg);
  const auto out = job.run(sample_lines());

  EXPECT_EQ(out, expected);  // same records in the same order
  EXPECT_GE(job.counters().map_task_retries, 1u);
  EXPECT_TRUE(job.counters().failed_tasks.empty());
}

TEST(TaskRetry, FlakyReducerCompletesWithIdenticalOutput) {
  JobConfig cfg{2, 2, 4, 2};
  cfg.max_task_retries = 1;
  WordCountJob clean;
  clean.mapper(word_mapper).reducer(sum_reducer).config(cfg);
  const auto expected = clean.run(sample_lines());

  std::atomic<int> failures_left{1};
  WordCountJob job;
  job.mapper(word_mapper)
      .reducer([&](const std::string& w, const std::vector<int>& vs,
                   Emitter<std::string, int>& out) {
        if (w == "the" && failures_left.fetch_sub(1) > 0)
          throw Error("simulated reducer crash");
        sum_reducer(w, vs, out);
      })
      .config(cfg);
  const auto out = job.run(sample_lines());

  EXPECT_EQ(out, expected);
  EXPECT_GE(job.counters().reduce_task_retries, 1u);
  EXPECT_TRUE(job.counters().failed_tasks.empty());
}

TEST(TaskRetry, ExhaustedRetriesFailTheJobNamingTheTask) {
  JobConfig cfg{2, 1, 4, 1};
  cfg.max_task_retries = 1;
  WordCountJob job;
  job.mapper([](const int&, const std::string& line,
                Emitter<std::string, int>&) {
       if (line.find("poison") != std::string::npos)
         throw Error("permanent mapper failure");
       // Other splits succeed; only the poisoned one exhausts its budget.
     })
      .reducer(sum_reducer)
      .config(cfg);
  try {
    job.run(sample_lines());
    FAIL() << "a permanently failing task must fail the job";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("map task(s) still failing"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("permanent mapper failure"), std::string::npos) << msg;
  }
  ASSERT_EQ(job.counters().failed_tasks.size(), 1u);
  EXPECT_EQ(job.counters().failed_tasks[0].rfind("map:", 0), 0u)
      << job.counters().failed_tasks[0];
  EXPECT_EQ(job.counters().map_task_retries, 1u);
}

TEST(TaskRetry, ZeroRetriesFailsFast) {
  WordCountJob job;
  JobConfig cfg{1, 1, 2, 1};  // max_task_retries defaults to 0
  job.mapper([](const int&, const std::string& line,
                Emitter<std::string, int>&) {
       if (line.find("poison") != std::string::npos)
         throw Error("crash with retries disabled");
     })
      .reducer(sum_reducer)
      .config(cfg);
  EXPECT_THROW(job.run(sample_lines()), Error);
  EXPECT_EQ(job.counters().map_task_retries, 0u);
}

TEST(TaskRetry, OutputIndependentOfWorkerCountUnderRetries) {
  JobConfig base{1, 1, 4, 1};
  base.max_task_retries = 2;
  const auto expected = clean_run(base);
  for (int workers : {2, 4}) {
    std::atomic<int> failures_left{2};  // two distinct crashes per job
    JobConfig cfg{workers, workers, 4, 1};
    cfg.max_task_retries = 2;
    WordCountJob job;
    job.mapper([&](const int& k, const std::string& line,
                   Emitter<std::string, int>& out) {
         if (failures_left.fetch_sub(1) > 0)
           throw Error("simulated crash");
         word_mapper(k, line, out);
       })
        .reducer(sum_reducer)
        .config(cfg);
    EXPECT_EQ(job.run(sample_lines()), expected) << workers << " workers";
    EXPECT_GE(job.counters().map_task_retries, 1u);
  }
}

}  // namespace
}  // namespace peachy::mr
