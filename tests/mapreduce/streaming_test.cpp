#include "mapreduce/streaming.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/error.hpp"

namespace peachy::mr::streaming {
namespace {

// Identity mapper emitting "word\t1" per word; reducer counts per key.
LineMapper word_mapper() {
  return [](const std::string& line, const LineEmit& emit) {
    std::string word;
    for (char c : line + " ") {
      if (c == ' ') {
        if (!word.empty()) emit(word + "\t1");
        word.clear();
      } else {
        word += c;
      }
    }
  };
}

StreamReducer counting_reducer() {
  return [](const std::vector<std::string>& sorted, const LineEmit& emit) {
    std::string key;
    int count = 0;
    auto flush = [&] {
      if (count) emit(key + "\t" + std::to_string(count));
    };
    for (const auto& line : sorted) {
      const auto [k, v] = split_kv(line);
      if (k != key) {
        flush();
        key = k;
        count = 0;
      }
      count += std::stoi(v);
    }
    flush();
  };
}

std::map<std::string, int> to_map(const std::vector<std::string>& lines) {
  std::map<std::string, int> m;
  for (const auto& line : lines) {
    const auto [k, v] = split_kv(line);
    m[k] = std::stoi(v);
  }
  return m;
}

TEST(SplitKv, Basics) {
  EXPECT_EQ(split_kv("a\tb").first, "a");
  EXPECT_EQ(split_kv("a\tb").second, "b");
  EXPECT_EQ(split_kv("a\tb\tc").second, "b\tc");  // first tab only
  EXPECT_EQ(split_kv("noTab").first, "noTab");
  EXPECT_EQ(split_kv("noTab").second, "");
}

TEST(Streaming, WordCount) {
  const std::vector<std::string> input = {"a b a", "c b a"};
  const auto out = run_streaming(input, word_mapper(), counting_reducer());
  const auto m = to_map(out);
  EXPECT_EQ(m.at("a"), 3);
  EXPECT_EQ(m.at("b"), 2);
  EXPECT_EQ(m.at("c"), 1);
}

TEST(Streaming, ReducerSeesWholeSortedPartition) {
  // With one partition, the reducer must receive every record key-sorted.
  std::vector<std::string> seen;
  const StreamReducer spy = [&seen](const std::vector<std::string>& sorted,
                                    const LineEmit&) { seen = sorted; };
  StreamingConfig cfg;
  cfg.partitions = 1;
  run_streaming({"b z", "a z"}, word_mapper(), spy, cfg);
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end(),
                             [](const std::string& x, const std::string& y) {
                               return split_kv(x).first < split_kv(y).first;
                             }));
}

TEST(Streaming, ResultIndependentOfWorkers) {
  std::vector<std::string> input;
  for (int i = 0; i < 100; ++i)
    input.push_back("w" + std::to_string(i % 7) + " w" + std::to_string(i % 3));
  StreamingConfig base;
  base.partitions = 2;
  const auto baseline =
      to_map(run_streaming(input, word_mapper(), counting_reducer(), base));
  for (int mw : {1, 2, 4})
    for (int rw : {1, 2}) {
      StreamingConfig cfg;
      cfg.map_workers = mw;
      cfg.reduce_workers = rw;
      cfg.partitions = 2;
      const auto m =
          to_map(run_streaming(input, word_mapper(), counting_reducer(), cfg));
      EXPECT_EQ(m, baseline) << mw << "/" << rw;
    }
}

TEST(Streaming, SameKeyLandsInOnePartition) {
  // Count reducer invocations per key across partitions: every key must be
  // fully reduced exactly once.
  std::vector<std::string> input;
  for (int i = 0; i < 50; ++i) input.push_back("k" + std::to_string(i % 5));
  StreamingConfig cfg;
  cfg.partitions = 4;
  const auto out =
      run_streaming(input, word_mapper(), counting_reducer(), cfg);
  const auto m = to_map(out);
  EXPECT_EQ(m.size(), 5u);
  for (const auto& [k, count] : m) EXPECT_EQ(count, 10) << k;
  EXPECT_EQ(out.size(), 5u);  // no key split across partitions
}

TEST(Streaming, EmptyInput) {
  const auto out = run_streaming({}, word_mapper(), counting_reducer());
  EXPECT_TRUE(out.empty());
}

TEST(Streaming, NullPhasesRejected) {
  EXPECT_THROW(run_streaming({}, nullptr, counting_reducer()), Error);
  EXPECT_THROW(run_streaming({}, word_mapper(), nullptr), Error);
}

TEST(Streaming, BadWorkerCountsRejected) {
  StreamingConfig cfg;
  cfg.map_workers = 0;
  EXPECT_THROW(run_streaming({}, word_mapper(), counting_reducer(), cfg),
               Error);
}

TEST(SplitLines, HandlesUnixCrlfAndMissingTrailingNewline) {
  EXPECT_EQ(split_lines("a\nb\nc\n"),
            (std::vector<std::string>{"a", "b", "c"}));
  // CRLF terminators (Windows-authored job files).
  EXPECT_EQ(split_lines("a\r\nb\r\nc\r\n"),
            (std::vector<std::string>{"a", "b", "c"}));
  // Missing trailing newline: the final line still counts.
  EXPECT_EQ(split_lines("a\nb\nc"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_lines("a\r\nb\r\nc"),
            (std::vector<std::string>{"a", "b", "c"}));
  // Mixed endings in one file.
  EXPECT_EQ(split_lines("a\r\nb\nc"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_lines(""), (std::vector<std::string>{}));
  EXPECT_EQ(split_lines("\n"), (std::vector<std::string>{""}));
  // A lone '\r' mid-line is content, not a terminator.
  EXPECT_EQ(split_lines("a\rb\n"), (std::vector<std::string>{"a\rb"}));
}

TEST(Streaming, CrlfInputMatchesUnixInput) {
  // A caller that split CRLF text on '\n' alone leaves '\r' on every line;
  // run_streaming must strip it so keys (and therefore counts) match the
  // Unix-authored equivalent of the same file.
  const std::vector<std::string> unix_lines = {"the quick fox",
                                               "the lazy dog"};
  std::vector<std::string> crlf_lines;
  for (const auto& line : unix_lines) crlf_lines.push_back(line + "\r");

  const auto expect =
      run_streaming(unix_lines, word_mapper(), counting_reducer());
  const auto got =
      run_streaming(crlf_lines, word_mapper(), counting_reducer());
  EXPECT_EQ(to_map(got), to_map(expect));
  EXPECT_EQ(to_map(got).count("fox\r"), 0u) << "CR leaked into a key";
}

TEST(Streaming, SplitLinesFeedsStreamingUnchanged) {
  // End to end: raw CRLF text with no trailing newline, split with
  // split_lines, produces the same counts as the clean Unix text.
  const std::string crlf_text = "the quick fox\r\nthe lazy dog";
  const std::string unix_text = "the quick fox\nthe lazy dog\n";
  const auto expect = run_streaming(split_lines(unix_text), word_mapper(),
                                    counting_reducer());
  const auto got = run_streaming(split_lines(crlf_text), word_mapper(),
                                 counting_reducer());
  EXPECT_EQ(to_map(got), to_map(expect));
}

}  // namespace
}  // namespace peachy::mr::streaming
