#!/usr/bin/env bash
# Sweeps a kill-and-recover integration test across 25 fault seeds. Each
# seed moves the link-sever point (see sweep_sever_after() in the suite's
# test file), so the world dies at 25 different instants — early in the
# run, mid-checkpoint-interval, late — and must recover to byte-identical
# output every time. A hang (per-seed timeout) or wrong output fails the
# sweep.
#
# Suites:
#   sandpile (default) — recovery_test, severed rank mid-halo-exchange,
#                        recovered grid must match the fault-free one
#   dmr                — dmr_recovery_test, severed rank mid-shuffle,
#                        reduced output must match the in-process engine
#   svc                — svc_recovery_test, two flavors per seed: SIGKILL
#                        the peachyd daemon process at a seed-scaled
#                        instant (the restarted daemon must recover every
#                        queued job and resume the running one to a
#                        byte-identical result), and SIGKILL a *worker
#                        child* of a process-isolated job (the daemon must
#                        survive, supervise the restart, and still produce
#                        a byte-identical result)
#
# In the sandpile/dmr suites every seed's run deliberately kills a rank,
# so every seed must leave at least one flight-recorder post-mortem
# (flight-<rank>.json); a dying rank that recorded nothing is itself a
# failure. The svc suite SIGKILLs the whole daemon process — instant
# death, nothing gets to record — so no dump is expected there. Dumps
# from FAILING seeds are collected into out/flight/<suite>-seed<N>/ for
# offline debugging; dumps from recovered seeds are discarded.
#
# Usage: fault_sweep.sh [--suite sandpile|dmr|svc] <test binary> [seeds] [timeout_s]
# Wired as the optional `fault_sweep` / `fault_sweep_dmr` / `fault_sweep_svc`
# ctest targets behind -DPEACHY_ENABLE_FAULT_SWEEP=ON.
set -u

SUITE=sandpile
if [ "${1:-}" = "--suite" ]; then
  SUITE="${2:?--suite needs an argument (sandpile|dmr|svc)}"
  shift 2
fi

EXPECT_FLIGHT_DUMP=1
case "$SUITE" in
  sandpile) FILTER='Recovery.Spawned2dSeveredRankRecoversByteIdentical' ;;
  dmr)      FILTER='DmrRecovery.SpawnedSeveredRankRecoversByteIdentical' ;;
  svc)
    FILTER='SvcRecovery.DaemonSigkillMidJobRecoversByteIdentical:SvcRecovery.WorkerSigkillMidProcessJobRecoversByteIdentical'
    EXPECT_FLIGHT_DUMP=0
    ;;
  *)
    echo "fault_sweep: unknown suite '$SUITE' (expected sandpile, dmr or svc)" >&2
    exit 2
    ;;
esac

BIN="${1:?usage: fault_sweep.sh [--suite sandpile|dmr|svc] <test binary> [seeds] [timeout_s]}"
SEEDS="${2:-25}"
PER_SEED_TIMEOUT="${3:-120}"

if [ ! -x "$BIN" ]; then
  echo "fault_sweep: $BIN is not an executable" >&2
  exit 2
fi

COLLECT_DIR="out/flight"
SCRATCH="$(mktemp -d "${TMPDIR:-/tmp}/peachy-fault-sweep.XXXXXX")"
trap 'rm -rf "$SCRATCH"' EXIT

failed=0
for seed in $(seq 1 "$SEEDS"); do
  FLIGHT_DIR="$SCRATCH/seed$seed"
  mkdir -p "$FLIGHT_DIR"
  if PEACHY_FAULT_SEED="$seed" PEACHY_FLIGHT_DIR="$FLIGHT_DIR" \
      timeout "$PER_SEED_TIMEOUT" \
      "$BIN" --gtest_filter="$FILTER" --gtest_brief=1 > /dev/null 2>&1; then
    status="recovered"
  else
    rc=$?
    if [ "$rc" -eq 124 ]; then
      status="HUNG (killed after ${PER_SEED_TIMEOUT}s)"
    else
      status="FAILED (exit $rc)"
    fi
    failed=$((failed + 1))
    # Keep the post-mortems from the broken seed for offline debugging.
    if ls "$FLIGHT_DIR"/flight-*.json > /dev/null 2>&1; then
      mkdir -p "$COLLECT_DIR/$SUITE-seed$seed"
      cp "$FLIGHT_DIR"/flight-*.json "$COLLECT_DIR/$SUITE-seed$seed/"
      status="$status, dumps -> $COLLECT_DIR/$SUITE-seed$seed/"
    fi
  fi
  # Pass or fail, this seed severed a link and killed a rank — a run whose
  # dying rank left no flight dump means the post-mortem path is broken.
  # (Not checked for svc: SIGKILL gives the daemon no chance to record.)
  if [ "$EXPECT_FLIGHT_DUMP" -eq 1 ] && \
      ! ls "$FLIGHT_DIR"/flight-*.json > /dev/null 2>&1; then
    echo "seed $seed: NO FLIGHT DUMP — a rank died but recorded no post-mortem" >&2
    failed=$((failed + 1))
  fi
  case "$status" in
    recovered) echo "seed $seed: $status" ;;
    *)         echo "seed $seed: $status" >&2 ;;
  esac
done

if [ "$failed" -ne 0 ]; then
  echo "fault_sweep: $failed of $SEEDS seeds failed ($SUITE suite)" >&2
  exit 1
fi
echo "fault_sweep: all $SEEDS seeds recovered ($SUITE suite)"
