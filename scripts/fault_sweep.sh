#!/usr/bin/env bash
# Sweeps a kill-and-recover integration test across 25 fault seeds. Each
# seed moves the link-sever point (see sweep_sever_after() in the suite's
# test file), so the world dies at 25 different instants — early in the
# run, mid-checkpoint-interval, late — and must recover to byte-identical
# output every time. A hang (per-seed timeout) or wrong output fails the
# sweep.
#
# Suites:
#   sandpile (default) — recovery_test, severed rank mid-halo-exchange,
#                        recovered grid must match the fault-free one
#   dmr                — dmr_recovery_test, severed rank mid-shuffle,
#                        reduced output must match the in-process engine
#
# Usage: fault_sweep.sh [--suite sandpile|dmr] <test binary> [seeds] [timeout_s]
# Wired as the optional `fault_sweep` / `fault_sweep_dmr` ctest targets
# behind -DPEACHY_ENABLE_FAULT_SWEEP=ON.
set -u

SUITE=sandpile
if [ "${1:-}" = "--suite" ]; then
  SUITE="${2:?--suite needs an argument (sandpile|dmr)}"
  shift 2
fi

case "$SUITE" in
  sandpile) FILTER='Recovery.Spawned2dSeveredRankRecoversByteIdentical' ;;
  dmr)      FILTER='DmrRecovery.SpawnedSeveredRankRecoversByteIdentical' ;;
  *)
    echo "fault_sweep: unknown suite '$SUITE' (expected sandpile or dmr)" >&2
    exit 2
    ;;
esac

BIN="${1:?usage: fault_sweep.sh [--suite sandpile|dmr] <test binary> [seeds] [timeout_s]}"
SEEDS="${2:-25}"
PER_SEED_TIMEOUT="${3:-120}"

if [ ! -x "$BIN" ]; then
  echo "fault_sweep: $BIN is not an executable" >&2
  exit 2
fi

failed=0
for seed in $(seq 1 "$SEEDS"); do
  if PEACHY_FAULT_SEED="$seed" timeout "$PER_SEED_TIMEOUT" \
      "$BIN" --gtest_filter="$FILTER" --gtest_brief=1 > /dev/null 2>&1; then
    echo "seed $seed: recovered"
  else
    rc=$?
    if [ "$rc" -eq 124 ]; then
      echo "seed $seed: HUNG (killed after ${PER_SEED_TIMEOUT}s)" >&2
    else
      echo "seed $seed: FAILED (exit $rc)" >&2
    fi
    failed=$((failed + 1))
  fi
done

if [ "$failed" -ne 0 ]; then
  echo "fault_sweep: $failed of $SEEDS seeds failed ($SUITE suite)" >&2
  exit 1
fi
echo "fault_sweep: all $SEEDS seeds recovered ($SUITE suite)"
