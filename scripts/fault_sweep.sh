#!/usr/bin/env bash
# Sweeps the kill-and-recover integration test across 25 fault seeds. Each
# seed moves the link-sever point (see sweep_sever_after() in
# tests/sandpile/recovery_test.cpp), so the world dies at 25 different
# instants — early in the run, mid-checkpoint-interval, late — and must
# recover to the byte-identical grid every time. A hang (per-seed timeout)
# or a wrong grid fails the sweep.
#
# Usage: scripts/fault_sweep.sh <recovery_test binary> [seeds] [timeout_s]
# Wired as the optional `fault_sweep` ctest target behind
# -DPEACHY_ENABLE_FAULT_SWEEP=ON.
set -u

BIN="${1:?usage: fault_sweep.sh <recovery_test binary> [seeds] [timeout_s]}"
SEEDS="${2:-25}"
PER_SEED_TIMEOUT="${3:-120}"
FILTER='Recovery.Spawned2dSeveredRankRecoversByteIdentical'

if [ ! -x "$BIN" ]; then
  echo "fault_sweep: $BIN is not an executable" >&2
  exit 2
fi

failed=0
for seed in $(seq 1 "$SEEDS"); do
  if PEACHY_FAULT_SEED="$seed" timeout "$PER_SEED_TIMEOUT" \
      "$BIN" --gtest_filter="$FILTER" --gtest_brief=1 > /dev/null 2>&1; then
    echo "seed $seed: recovered"
  else
    rc=$?
    if [ "$rc" -eq 124 ]; then
      echo "seed $seed: HUNG (killed after ${PER_SEED_TIMEOUT}s)" >&2
    else
      echo "seed $seed: FAILED (exit $rc)" >&2
    fi
    failed=$((failed + 1))
  fi
done

if [ "$failed" -ne 0 ]; then
  echo "fault_sweep: $failed of $SEEDS seeds failed" >&2
  exit 1
fi
echo "fault_sweep: all $SEEDS seeds recovered"
