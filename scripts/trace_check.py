#!/usr/bin/env python3
"""Validates a merged cluster trace (Chrome trace-event JSON).

Checks, in order:
  1. The file is a JSON array of trace events.
  2. Every (pid, tid) track's timestamps are monotonically non-decreasing
     (metadata events, ph == "M", are exempt: they carry no timeline).
  3. Complete events ("X") have a non-negative duration.
  4. Every nonzero parent_span_id arg resolves to some event's span_id —
     the cross-rank causal tree is connected, with no dangling references.
  5. With --min-ranks N: at least N distinct pids recorded real events
     (a merged 4-rank trace that silently dropped three ranks fails).

Stdlib only; exits 0 on a valid trace, 1 with a diagnostic otherwise.
Usage: trace_check.py TRACE.json [--min-ranks N]
"""

import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"trace_check: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--min-ranks", type=int, default=0,
                        help="require events from at least this many pids")
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            events = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {args.trace}: {e}")
    if not isinstance(events, list):
        fail("top-level JSON value is not an array")
    if not events:
        fail("trace is empty")

    last_ts = {}          # (pid, tid) -> last timestamp seen
    span_ids = set()
    parent_refs = []      # (index, name, parent_span_id)
    pids_with_events = set()

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i} is not an object")
        if ev.get("ph") == "M":
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in ev:
                fail(f"event {i} ({ev.get('name', '?')}) lacks '{key}'")
        track = (ev["pid"], ev["tid"])
        ts = ev["ts"]
        if track in last_ts and ts < last_ts[track]:
            fail(f"event {i} ({ev['name']}): ts {ts} < previous "
                 f"{last_ts[track]} on track pid={track[0]} tid={track[1]}")
        last_ts[track] = ts
        if ev["ph"] == "X" and ev.get("dur", 0) < 0:
            fail(f"event {i} ({ev['name']}): negative dur {ev['dur']}")
        pids_with_events.add(ev["pid"])
        trace_args = ev.get("args", {})
        if "span_id" in trace_args:
            span_ids.add(trace_args["span_id"])
        parent = trace_args.get("parent_span_id", 0)
        if parent:
            parent_refs.append((i, ev["name"], parent))

    dangling = [(i, name, p) for i, name, p in parent_refs
                if p not in span_ids]
    if dangling:
        i, name, p = dangling[0]
        fail(f"{len(dangling)} dangling parent_span_id reference(s); first: "
             f"event {i} ({name}) -> {p}")

    if len(pids_with_events) < args.min_ranks:
        fail(f"events from only {len(pids_with_events)} rank(s) "
             f"({sorted(pids_with_events)}), need {args.min_ranks}")

    n_events = sum(1 for ev in events if ev.get("ph") != "M")
    print(f"trace_check: OK: {n_events} events, {len(pids_with_events)} "
          f"rank(s), {len(span_ids)} spans, "
          f"{len(parent_refs)} parent links, all resolved")


if __name__ == "__main__":
    main()
