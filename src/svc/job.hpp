// Job model of the peachy job service (DESIGN.md "Job service").
//
// A *job* is one unit of work a tenant submits to peachyd: a sandpile
// stabilization, a distributed MapReduce word count, or a wfsim placement
// sweep. The spec carries everything needed to run it deterministically —
// jobs are replayable by construction, which is what lets a daemon that was
// SIGKILLed mid-job re-dispatch the same spec after restart and (with the
// job's checkpoint directory intact) finish with byte-identical results.
//
// Lifecycle:  QUEUED -> RUNNING -> DONE | FAILED | CANCELLED
// A QUEUED job can also go straight to CANCELLED. Nothing else moves; a
// record in a terminal state never changes again. On daemon restart,
// RUNNING records (the jobs the dead daemon was executing) are demoted back
// to QUEUED with restarts+1 — re-dispatch resumes them from their last
// committed checkpoint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace peachy::svc {

enum class JobKind : std::uint32_t {
  kSandpile = 1,  ///< distributed stabilization of a center pile
  kDmr = 2,       ///< distributed word count over a seeded synthetic corpus
  kWfsim = 3,     ///< cloud-fraction placement sweep of the Montage workflow
};

const char* to_string(JobKind kind);
/// Parses "sandpile" | "dmr" | "wfsim" (CLI values); throws on others.
JobKind job_kind_from_string(const std::string& name);

enum class JobState : std::uint32_t {
  kQueued = 1,
  kRunning = 2,
  kDone = 3,
  kFailed = 4,
  kCancelled = 5,
};

const char* to_string(JobState state);
inline bool is_terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kCancelled;
}

/// Where a job's ranks execute (DESIGN.md "Job service", isolation modes).
enum class Isolation : std::uint32_t {
  kDefault = 0,  ///< whatever DaemonOptions::default_isolation says
  kThreads = 1,  ///< ranks as threads on the shared in-daemon RankPool
  kProcess = 2,  ///< ranks as forked worker processes (crash-contained)
};

const char* to_string(Isolation isolation);
/// Parses "default" | "threads" | "process" (CLI values); throws on others.
Isolation isolation_from_string(const std::string& name);

/// Center-pile stabilization (sandpile/distributed.hpp). checkpoint_every
/// > 0 makes the job resumable across daemon deaths.
struct SandpileParams {
  std::uint32_t height = 64;
  std::uint32_t width = 64;
  std::uint32_t grains = 60000;      ///< dropped on the center cell
  std::uint32_t halo_depth = 1;
  std::uint32_t checkpoint_every = 4;  ///< exchange rounds; 0 = never
};

/// Word count over a deterministic corpus of `words` words drawn from a
/// seeded vocabulary — a stand-in for "the tenant's input files" that
/// every rank can regenerate identically.
struct DmrParams {
  std::uint32_t words = 20000;
  std::uint64_t seed = 1;
  std::uint32_t vocabulary = 128;
  std::uint32_t map_tasks = 16;
  std::uint32_t partitions = 8;
  std::uint32_t map_epochs = 2;
  std::uint32_t checkpoint_every = 1;  ///< epochs; 0 = never
  /// Test hook for crash containment: the mapper calls abort() once this
  /// many words have been mapped in the worker (0 = never). Under process
  /// isolation the daemon must survive it; under threads it would not —
  /// which is exactly the blast-radius difference the tests pin down.
  std::uint32_t fault_abort_at = 0;
};

/// Sweep of per-level cloud fractions 0..1 over the Montage-like workflow
/// on the EduWRENCH platform; steps are dealt round-robin to the job's
/// ranks. Result: (fraction, makespan, total gCO2) per step.
struct WfsimParams {
  std::uint32_t sweep_steps = 8;
  std::uint32_t nodes_on = 64;
  std::uint32_t pstate = 6;
};

struct JobSpec {
  JobKind kind = JobKind::kSandpile;
  std::string tenant = "default";
  std::string name;        ///< free-form label, echoed by list/status
  std::uint32_t ranks = 2; ///< rank-pool gang size this job wants
  /// Execution substrate: in-daemon pool threads or forked worker
  /// processes. kDefault defers to the daemon's configured default.
  Isolation isolation = Isolation::kDefault;
  /// Wall-clock budget for the whole run, restart attempts included
  /// (process isolation only; 0 = the daemon's default, which may be
  /// unlimited). Overrunning jobs get SIGTERM, then SIGKILL.
  std::uint32_t deadline_ms = 0;
  SandpileParams sandpile;
  DmrParams dmr;
  WfsimParams wfsim;
};

/// One job as the daemon tracks (and persists) it.
struct JobRecord {
  std::uint64_t id = 0;
  JobState state = JobState::kQueued;
  JobSpec spec;
  std::string error;              ///< FAILED reason
  std::vector<std::byte> result;  ///< DONE payload (kind-specific blob)
  std::uint32_t restarts = 0;     ///< daemon deaths survived while RUNNING
  /// Peak worker RSS across all ranks and restart attempts (wait4/RUSAGE).
  /// Process isolation only; threaded jobs report 0.
  std::uint64_t peak_rss_bytes = 0;
};

// Spec/record byte codecs (little-endian, net/wire scalar helpers). Used
// by both the wire protocol and the on-disk queue.
void append_spec(std::vector<std::byte>& out, const JobSpec& spec);
JobSpec read_spec(const std::byte*& p, const std::byte* end);

}  // namespace peachy::svc
