#include "svc/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "core/error.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace peachy::svc {

namespace {

using Clock = std::chrono::steady_clock;

/// An error the daemon *answered* (kError/kNotFound). Re-asking cannot
/// change the answer, so the retry loop rethrows these untouched.
class ReplyError : public Error {
 public:
  using Error::Error;
};

bool idempotent(Op op) { return op != Op::kSubmit; }

/// Jitter in [backoff/2, backoff] from a cheap thread-local xorshift —
/// enough to decorrelate N clients hammering a restarting daemon, with
/// no shared state and no clock reads.
int jittered(int backoff_ms) {
  thread_local std::uint64_t seed =
      0x9e3779b97f4a7c15ull ^
      static_cast<std::uint64_t>(std::hash<std::thread::id>{}(
          std::this_thread::get_id()));
  seed ^= seed << 13;
  seed ^= seed >> 7;
  seed ^= seed << 17;
  const int half = std::max(1, backoff_ms / 2);
  return half + static_cast<int>(seed % static_cast<std::uint64_t>(half + 1));
}

}  // namespace

std::pair<ReplyStatus, std::vector<std::byte>> Client::call(
    Op op, const std::vector<std::byte>& payload,
    std::initializer_list<ReplyStatus> tolerate) const {
  const Clock::time_point deadline =
      retry_.call_deadline_ms > 0
          ? Clock::now() + std::chrono::milliseconds(retry_.call_deadline_ms)
          : Clock::time_point::max();
  const int attempts = std::max(1, retry_.max_attempts);
  int backoff = std::max(1, retry_.base_backoff_ms);
  for (int attempt = 1;; ++attempt) {
    int budget_ms = timeout_ms_;
    if (deadline != Clock::time_point::max()) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - Clock::now())
                            .count();
      PEACHY_REQUIRE(left > 0, "call deadline ("
                                   << retry_.call_deadline_ms
                                   << " ms) exhausted after " << (attempt - 1)
                                   << " attempts");
      budget_ms = static_cast<int>(
          std::min<long long>(budget_ms, left));
    }
    bool sent = false;
    try {
      return call_once(op, payload, tolerate, budget_ms, &sent);
    } catch (const ReplyError&) {
      throw;
    } catch (const Error&) {
      // Transport failure. Retry only if (a) attempts remain, (b) the op
      // is safe to re-send (idempotent, or the request never hit the
      // wire), and (c) the backoff still fits the deadline.
      if (attempt >= attempts) throw;
      if (sent && !idempotent(op)) throw;
      const int delay = jittered(backoff);
      if (Clock::now() + std::chrono::milliseconds(delay) >= deadline) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      backoff = std::min(backoff * 2, std::max(1, retry_.max_backoff_ms));
    }
  }
}

std::pair<ReplyStatus, std::vector<std::byte>> Client::call_once(
    Op op, const std::vector<std::byte>& payload,
    std::initializer_list<ReplyStatus> tolerate, int attempt_timeout_ms,
    bool* sent) const {
  const net::Socket sock =
      net::Socket::connect_to(host_, port_, attempt_timeout_ms);
  net::FrameHeader h;
  h.type = net::FrameType::kJobRequest;
  h.tag = static_cast<std::int32_t>(op);
  *sent = true;
  net::send_frame(sock, h, payload.data(), payload.size());
  net::FrameHeader rh;
  std::vector<std::byte> reply;
  PEACHY_REQUIRE(net::recv_frame(sock, rh, reply, attempt_timeout_ms),
                 "peachyd closed the connection without replying");
  PEACHY_REQUIRE(rh.type == net::FrameType::kJobReply,
                 "expected a kJobReply frame, got type "
                     << static_cast<int>(rh.type));
  const auto status = static_cast<ReplyStatus>(rh.tag);
  if (status != ReplyStatus::kOk &&
      std::find(tolerate.begin(), tolerate.end(), status) == tolerate.end()) {
    const std::byte* p = reply.data();
    std::string message;
    try {
      message = read_string(p, p + reply.size());
    } catch (const std::exception&) {
      message = "(unreadable reply)";
    }
    throw ReplyError("peachyd: " + message);
  }
  return {status, std::move(reply)};
}

SubmitResult Client::submit(const JobSpec& spec) const {
  std::vector<std::byte> payload;
  append_spec(payload, spec);
  auto [status, reply] =
      call(Op::kSubmit, payload, {ReplyStatus::kRejected});
  const std::byte* p = reply.data();
  const std::byte* end = p + reply.size();
  SubmitResult r;
  if (status == ReplyStatus::kOk) {
    r.accepted = true;
    r.id = net::read_u64(p, end);
  } else {
    r.reject_reason = read_string(p, end);
  }
  return r;
}

JobStatus Client::status(std::uint64_t id) const {
  std::vector<std::byte> payload;
  net::append_u64(payload, id);
  auto [status, reply] = call(Op::kStatus, payload);
  const std::byte* p = reply.data();
  return read_status(p, p + reply.size());
}

std::vector<std::byte> Client::result(std::uint64_t id) const {
  std::vector<std::byte> payload;
  net::append_u64(payload, id);
  auto [status, reply] = call(Op::kResult, payload);
  return std::move(reply);
}

std::string Client::cancel(std::uint64_t id) const {
  std::vector<std::byte> payload;
  net::append_u64(payload, id);
  auto [status, reply] = call(Op::kCancel, payload);
  const std::byte* p = reply.data();
  return read_string(p, p + reply.size());
}

std::vector<JobBrief> Client::list(const std::string& tenant) const {
  std::vector<std::byte> payload;
  append_string(payload, tenant);
  auto [status, reply] = call(Op::kList, payload);
  const std::byte* p = reply.data();
  return read_briefs(p, p + reply.size());
}

ServiceStats Client::stats() const {
  auto [status, reply] = call(Op::kStats, {});
  const std::byte* p = reply.data();
  return read_stats(p, p + reply.size());
}

void Client::shutdown() const { call(Op::kShutdown, {}); }

JobStatus Client::await(std::uint64_t id, std::chrono::milliseconds deadline,
                        std::chrono::milliseconds poll_every) const {
  const auto until = std::chrono::steady_clock::now() + deadline;
  for (;;) {
    const JobStatus s = status(id);
    if (is_terminal(s.state)) return s;
    PEACHY_REQUIRE(std::chrono::steady_clock::now() < until,
                   "job " << id << " still " << to_string(s.state)
                          << " after " << deadline.count() << " ms");
    std::this_thread::sleep_for(poll_every);
  }
}

}  // namespace peachy::svc
