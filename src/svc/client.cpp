#include "svc/client.hpp"

#include <algorithm>
#include <thread>

#include "core/error.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace peachy::svc {

std::pair<ReplyStatus, std::vector<std::byte>> Client::call(
    Op op, const std::vector<std::byte>& payload,
    std::initializer_list<ReplyStatus> tolerate) const {
  const net::Socket sock = net::Socket::connect_to(host_, port_, timeout_ms_);
  net::FrameHeader h;
  h.type = net::FrameType::kJobRequest;
  h.tag = static_cast<std::int32_t>(op);
  net::send_frame(sock, h, payload.data(), payload.size());
  net::FrameHeader rh;
  std::vector<std::byte> reply;
  PEACHY_REQUIRE(net::recv_frame(sock, rh, reply, timeout_ms_),
                 "peachyd closed the connection without replying");
  PEACHY_REQUIRE(rh.type == net::FrameType::kJobReply,
                 "expected a kJobReply frame, got type "
                     << static_cast<int>(rh.type));
  const auto status = static_cast<ReplyStatus>(rh.tag);
  if (status != ReplyStatus::kOk &&
      std::find(tolerate.begin(), tolerate.end(), status) == tolerate.end()) {
    const std::byte* p = reply.data();
    std::string message;
    try {
      message = read_string(p, p + reply.size());
    } catch (const std::exception&) {
      message = "(unreadable reply)";
    }
    throw Error("peachyd: " + message);
  }
  return {status, std::move(reply)};
}

SubmitResult Client::submit(const JobSpec& spec) const {
  std::vector<std::byte> payload;
  append_spec(payload, spec);
  auto [status, reply] =
      call(Op::kSubmit, payload, {ReplyStatus::kRejected});
  const std::byte* p = reply.data();
  const std::byte* end = p + reply.size();
  SubmitResult r;
  if (status == ReplyStatus::kOk) {
    r.accepted = true;
    r.id = net::read_u64(p, end);
  } else {
    r.reject_reason = read_string(p, end);
  }
  return r;
}

JobStatus Client::status(std::uint64_t id) const {
  std::vector<std::byte> payload;
  net::append_u64(payload, id);
  auto [status, reply] = call(Op::kStatus, payload);
  const std::byte* p = reply.data();
  return read_status(p, p + reply.size());
}

std::vector<std::byte> Client::result(std::uint64_t id) const {
  std::vector<std::byte> payload;
  net::append_u64(payload, id);
  auto [status, reply] = call(Op::kResult, payload);
  return std::move(reply);
}

std::string Client::cancel(std::uint64_t id) const {
  std::vector<std::byte> payload;
  net::append_u64(payload, id);
  auto [status, reply] = call(Op::kCancel, payload);
  const std::byte* p = reply.data();
  return read_string(p, p + reply.size());
}

std::vector<JobBrief> Client::list(const std::string& tenant) const {
  std::vector<std::byte> payload;
  append_string(payload, tenant);
  auto [status, reply] = call(Op::kList, payload);
  const std::byte* p = reply.data();
  return read_briefs(p, p + reply.size());
}

ServiceStats Client::stats() const {
  auto [status, reply] = call(Op::kStats, {});
  const std::byte* p = reply.data();
  return read_stats(p, p + reply.size());
}

void Client::shutdown() const { call(Op::kShutdown, {}); }

JobStatus Client::await(std::uint64_t id, std::chrono::milliseconds deadline,
                        std::chrono::milliseconds poll_every) const {
  const auto until = std::chrono::steady_clock::now() + deadline;
  for (;;) {
    const JobStatus s = status(id);
    if (is_terminal(s.state)) return s;
    PEACHY_REQUIRE(std::chrono::steady_clock::now() < until,
                   "job " << id << " still " << to_string(s.state)
                          << " after " << deadline.count() << " ms");
    std::this_thread::sleep_for(poll_every);
  }
}

}  // namespace peachy::svc
