// Persistent job store of peachyd (DESIGN.md "Job service").
//
// Every job the daemon accepts is durably recorded before the submit reply
// goes out: one framed file per job under <dir>/jobs/, written with the
// same discipline as mpp checkpoints — full image to job-<id>.rec.tmp,
// fsync-free atomic rename over job-<id>.rec, trailing CRC32 over the whole
// record. A reader therefore sees either the previous committed state of a
// job or the next one, never a torn write; a record that fails its CRC
// (torn by a crash mid-rename on exotic filesystems, or bit-rotted) is
// skipped at load with a count, not trusted.
//
// The store is deliberately dumb: it persists and lists JobRecords and
// hands out monotonic ids. The in-memory job table, locking, and the
// QUEUED->RUNNING->... transition rules live in the daemon; the store is
// called under the daemon's lock.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "svc/job.hpp"

namespace peachy::svc {

class JobStore {
 public:
  /// Opens (creating if needed) <dir>/jobs and scans existing records so
  /// allocate_id() continues after the largest persisted id.
  explicit JobStore(std::string dir);

  /// Next unused job id; monotonic across daemon restarts.
  std::uint64_t allocate_id();

  /// Durably commits `rec` (write-tmp + atomic rename). Called on every
  /// state transition, so the on-disk record always matches the last
  /// acknowledged state.
  void put(const JobRecord& rec);

  /// Reads one committed record back; nullopt if absent or corrupt.
  std::optional<JobRecord> get(std::uint64_t id) const;

  /// All committed records, in id order. Corrupt files are skipped and
  /// counted in corrupt_skipped().
  std::vector<JobRecord> load_all();

  /// Deletes a record (terminal-state garbage collection).
  void erase(std::uint64_t id);

  /// Per-job checkpoint directory (created on demand by the runner):
  /// <dir>/ckpt/job-<id>. Named — survives the daemon — so a resumed job
  /// finds its last committed cut.
  std::string checkpoint_dir(std::uint64_t id) const;

  /// Removes a job's checkpoint directory (after DONE/CANCELLED/FAILED).
  void remove_checkpoint(std::uint64_t id);

  /// Per-job flight-recorder dump directory: <dir>/flight/job-<id>. A
  /// process-isolated job's crashing workers write their post-mortems
  /// here; the FAILED record's error string names it.
  std::string flight_dir(std::uint64_t id) const;

  /// Removes a job's flight directory (jobs that end without crashing).
  void remove_flight(std::uint64_t id);

  const std::string& dir() const { return dir_; }
  int corrupt_skipped() const { return corrupt_skipped_; }

 private:
  std::string record_path(std::uint64_t id) const;

  std::string dir_;
  std::uint64_t next_id_ = 1;
  int corrupt_skipped_ = 0;
};

}  // namespace peachy::svc
