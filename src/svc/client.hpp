// peachyctl — client library for the peachyd job service.
//
// Each call opens a fresh connection, sends one kJobRequest frame, reads
// the one kJobReply frame, and closes (protocol.hpp). The client is
// therefore trivially usable from many threads at once — there is no
// shared connection state — which is exactly what bench_job_service's N
// concurrent submitters do.
//
// Error model: transport failures and kError/kNotFound replies throw
// peachy::Error. kRejected (admission control) is an expected outcome, so
// submit() reports it in-band via SubmitResult instead of throwing —
// callers under backpressure retry, they don't unwind.
//
// Retries (RetryPolicy): a call that fails in *transport* — connect
// refused, daemon restarting, torn connection — is retried with jittered
// exponential backoff, bounded by max_attempts and the per-call deadline.
// Two rules keep this safe: an error the daemon *answered* (kError /
// kNotFound) is never retried, because re-asking cannot change the
// answer; and a non-idempotent op (kSubmit) is never retried once its
// request frame may have been received, because the daemon might have
// committed the first copy — a retry would double-submit. Everything
// else (status/result/cancel/list/stats/shutdown) is idempotent and
// retries at any point.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "svc/job.hpp"
#include "svc/protocol.hpp"

namespace peachy::svc {

struct SubmitResult {
  bool accepted = false;
  std::uint64_t id = 0;       ///< valid when accepted
  std::string reject_reason;  ///< set when !accepted
};

struct RetryPolicy {
  int max_attempts = 3;      ///< total tries per call; 1 = never retry
  int base_backoff_ms = 50;  ///< first retry delay, pre-jitter
  int max_backoff_ms = 2000;  ///< exponential growth cap
  /// Whole-call wall budget, attempts + backoffs included; 0 = none.
  int call_deadline_ms = 0;
};

class Client {
 public:
  Client(std::string host, int port, int timeout_ms = 10000,
         RetryPolicy retry = {})
      : host_(std::move(host)),
        port_(port),
        timeout_ms_(timeout_ms),
        retry_(retry) {}

  /// Submits a job; kRejected comes back in-band (see header).
  SubmitResult submit(const JobSpec& spec) const;

  JobStatus status(std::uint64_t id) const;

  /// The DONE result blob (runner.hpp formats). Throws if not DONE.
  std::vector<std::byte> result(std::uint64_t id) const;

  /// Requests cancellation. Returns the daemon's message ("cancelled" for
  /// a queued job, "cancellation requested" for a running one). Throws
  /// kNotFound as an error.
  std::string cancel(std::uint64_t id) const;

  /// Jobs visible on the daemon; `tenant` = "" lists every tenant.
  std::vector<JobBrief> list(const std::string& tenant = "") const;

  ServiceStats stats() const;

  /// Asks the daemon to shut down (it drains running jobs and exits).
  void shutdown() const;

  /// Polls status() until the job is terminal or the deadline passes.
  /// Returns the final status; throws on timeout.
  JobStatus await(std::uint64_t id, std::chrono::milliseconds deadline,
                  std::chrono::milliseconds poll_every =
                      std::chrono::milliseconds(20)) const;

 private:
  /// One request with retries per RetryPolicy; throws on kError/kNotFound
  /// unless the caller opted to see them (`tolerate` holds statuses
  /// passed through).
  std::pair<ReplyStatus, std::vector<std::byte>> call(
      Op op, const std::vector<std::byte>& payload,
      std::initializer_list<ReplyStatus> tolerate = {}) const;
  /// A single connect/send/recv round-trip. Sets *sent once the request
  /// frame is (possibly) on the wire — the point past which kSubmit must
  /// not be retried.
  std::pair<ReplyStatus, std::vector<std::byte>> call_once(
      Op op, const std::vector<std::byte>& payload,
      std::initializer_list<ReplyStatus> tolerate, int attempt_timeout_ms,
      bool* sent) const;

  std::string host_;
  int port_ = 0;
  int timeout_ms_ = 10000;
  RetryPolicy retry_;
};

}  // namespace peachy::svc
