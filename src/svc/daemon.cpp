#include "svc/daemon.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <utility>

#include "core/error.hpp"
#include "mpp/mpp.hpp"
#include "net/metrics_server.hpp"
#include "net/wire.hpp"
#include "obs/obs.hpp"
#include "svc/runner.hpp"

namespace peachy::svc {

namespace {

constexpr int kRequestTimeoutMs = 5000;

/// Parses "alice=3,bob=1" into (tenant, weight) pairs; throws on junk.
std::vector<std::pair<std::string, int>> parse_weights(
    const std::string& spec) {
  std::vector<std::pair<std::string, int>> weights;
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    PEACHY_REQUIRE(eq != std::string::npos && eq > 0 && eq + 1 < entry.size(),
                   "bad tenant weight entry '" << entry
                                               << "' (want tenant=weight)");
    weights.emplace_back(entry.substr(0, eq),
                         std::stoi(entry.substr(eq + 1)));
  }
  return weights;
}

SchedulerOptions scheduler_options(const DaemonOptions& o) {
  SchedulerOptions s;
  s.max_queued = o.max_queued;
  s.max_queued_per_tenant = o.max_queued_per_tenant;
  // Quantum = pool capacity: any admissible job fits in one turn, so a
  // tenant's weight translates directly into its rank-time share.
  s.quantum = std::max(o.pool_ranks, 1);
  return s;
}

}  // namespace

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)),
      store_(options_.state_dir),
      pool_(std::max(options_.pool_ranks, 1)),
      sched_(scheduler_options(options_)) {
  PEACHY_REQUIRE(!options_.state_dir.empty(), "peachyd needs a state dir");
  paused_ = options_.start_paused;
  for (const auto& [tenant, weight] : parse_weights(options_.tenant_weights))
    sched_.set_weight(tenant, weight);

  // Startup recovery: every committed record re-enters the table; QUEUED
  // jobs re-enter the scheduler; RUNNING jobs (the dead daemon's inflight
  // set) are demoted to QUEUED and will resume from their checkpoints.
  for (JobRecord& rec : store_.load_all()) {
    if (rec.state == JobState::kRunning) {
      rec.state = JobState::kQueued;
      ++rec.restarts;
      store_.put(rec);
      ++recovered_running_;
    }
    if (rec.state == JobState::kQueued) {
      sched_.enqueue(rec.id, rec.spec.tenant,
                     static_cast<int>(rec.spec.ranks));
      ++recovered_queued_;
    }
    jobs_.emplace(rec.id, std::move(rec));
  }

  listen_ = net::Socket::listen_on(options_.host, options_.port, 64);
  port_ = listen_.local_port();
  PEACHY_CHECK(::pipe2(wake_pipe_, O_CLOEXEC | O_NONBLOCK) == 0);
  if (options_.metrics_port >= 0)
    metrics_ = std::make_unique<obs::MetricsServer>(
        obs::MetricsServer::Options{options_.host, options_.metrics_port});

  listener_ = std::thread([this] { listen_loop(); });
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

Daemon::~Daemon() { stop(); }

int Daemon::metrics_port() const { return metrics_ ? metrics_->port() : -1; }

void Daemon::resume() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = false;
  dispatch_cv_.notify_all();
}

void Daemon::wait_for_shutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_ || stopping_; });
}

void Daemon::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    dispatch_cv_.notify_all();
    shutdown_cv_.notify_all();
  }
  if (wake_pipe_[1] >= 0) {
    const char b = 'x';
    [[maybe_unused]] ssize_t rc = ::write(wake_pipe_[1], &b, 1);
  }
  if (listener_.joinable()) listener_.join();
  listen_.close();
  if (dispatcher_.joinable()) dispatcher_.join();
  // Running jobs finish (their QUEUED successors stay on disk for the
  // next start); executors park inside the pool, so join before tearing
  // the pool down with the rest of the members.
  std::vector<std::thread> executors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    executors.swap(executors_);
  }
  for (std::thread& t : executors)
    if (t.joinable()) t.join();
  metrics_.reset();
  for (int fd : wake_pipe_)
    if (fd >= 0) ::close(fd);
  wake_pipe_[0] = wake_pipe_[1] = -1;
}

void Daemon::bump(const std::string& name, const std::string& tenant) {
  obs::Registry::global().counter("svc.jobs." + name).add(1);
  obs::Registry::global().counter("svc.tenant." + tenant + "." + name).add(1);
}

// --- Listener --------------------------------------------------------------

void Daemon::listen_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_.fd(), POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, 1000);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
    }
    if (rc <= 0 || !(fds[0].revents & POLLIN)) continue;
    try {
      handle_connection(listen_.accept(1000));
    } catch (const Error&) {
      // One misbehaving client (timeout, torn frame, reset) must not take
      // the service down.
    }
  }
}

void Daemon::handle_connection(net::Socket conn) {
  net::FrameHeader header;
  std::vector<std::byte> payload;
  if (!net::recv_frame(conn, header, payload, kRequestTimeoutMs)) return;
  ReplyStatus status = ReplyStatus::kError;
  std::vector<std::byte> reply;
  if (header.type != net::FrameType::kJobRequest) {
    append_string(reply, "expected a kJobRequest frame");
  } else {
    try {
      std::tie(status, reply) =
          handle_request(static_cast<Op>(header.tag), payload);
    } catch (const std::exception& e) {
      status = ReplyStatus::kError;
      reply.clear();
      append_string(reply, e.what());
    }
  }
  net::FrameHeader rh;
  rh.type = net::FrameType::kJobReply;
  rh.tag = static_cast<std::int32_t>(status);
  net::send_frame(conn, rh, reply.data(), reply.size());
  conn.shutdown_write();
}

std::pair<ReplyStatus, std::vector<std::byte>> Daemon::handle_request(
    Op op, const std::vector<std::byte>& payload) {
  const std::byte* p = payload.data();
  const std::byte* end = p + payload.size();
  std::vector<std::byte> reply;
  switch (op) {
    case Op::kSubmit:
      return handle_submit(payload);
    case Op::kStatus: {
      const std::uint64_t id = net::read_u64(p, end);
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = jobs_.find(id);
      if (it == jobs_.end()) {
        append_string(reply, "no job " + std::to_string(id));
        return {ReplyStatus::kNotFound, std::move(reply)};
      }
      const JobRecord& rec = it->second;
      JobStatus s;
      s.id = rec.id;
      s.state = rec.state;
      s.kind = rec.spec.kind;
      s.tenant = rec.spec.tenant;
      s.name = rec.spec.name;
      s.error = rec.error;
      s.restarts = rec.restarts;
      s.peak_rss_bytes = rec.peak_rss_bytes;
      s.has_result = !rec.result.empty();
      append_status(reply, s);
      return {ReplyStatus::kOk, std::move(reply)};
    }
    case Op::kResult: {
      const std::uint64_t id = net::read_u64(p, end);
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = jobs_.find(id);
      if (it == jobs_.end()) {
        append_string(reply, "no job " + std::to_string(id));
        return {ReplyStatus::kNotFound, std::move(reply)};
      }
      if (it->second.state != JobState::kDone) {
        append_string(reply, "job " + std::to_string(id) + " is " +
                                 to_string(it->second.state) +
                                 (it->second.error.empty()
                                      ? ""
                                      : ": " + it->second.error));
        return {ReplyStatus::kError, std::move(reply)};
      }
      return {ReplyStatus::kOk, it->second.result};
    }
    case Op::kCancel: {
      const std::uint64_t id = net::read_u64(p, end);
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = jobs_.find(id);
      if (it == jobs_.end()) {
        append_string(reply, "no job " + std::to_string(id));
        return {ReplyStatus::kNotFound, std::move(reply)};
      }
      JobRecord& rec = it->second;
      if (is_terminal(rec.state)) {
        append_string(reply, std::string("already ") + to_string(rec.state));
        return {ReplyStatus::kOk, std::move(reply)};
      }
      if (rec.state == JobState::kQueued && sched_.remove(id)) {
        rec.state = JobState::kCancelled;
        store_.put(rec);
        store_.remove_checkpoint(id);
        bump("cancelled", rec.spec.tenant);
        // The dequeue may unblock the dispatcher (a wide job behind this
        // one could now be at the front).
        dispatch_cv_.notify_all();
        append_string(reply, "cancelled");
        return {ReplyStatus::kOk, std::move(reply)};
      }
      // RUNNING (or just picked): cooperative — the job's should_abort
      // sees the flag at its next poll point.
      cancel_requested_.insert(id);
      append_string(reply, "cancellation requested");
      return {ReplyStatus::kOk, std::move(reply)};
    }
    case Op::kList: {
      const std::string tenant = read_string(p, end);
      std::lock_guard<std::mutex> lock(mu_);
      std::vector<JobBrief> briefs;
      for (const auto& [id, rec] : jobs_) {
        if (!tenant.empty() && rec.spec.tenant != tenant) continue;
        briefs.push_back(JobBrief{id, rec.spec.kind, rec.state,
                                  rec.spec.tenant, rec.spec.name});
      }
      append_briefs(reply, briefs);
      return {ReplyStatus::kOk, std::move(reply)};
    }
    case Op::kShutdown: {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_requested_ = true;
      shutdown_cv_.notify_all();
      append_string(reply, "shutting down");
      return {ReplyStatus::kOk, std::move(reply)};
    }
    case Op::kStats: {
      const ServiceStats s = stats();
      append_stats(reply, s);
      return {ReplyStatus::kOk, std::move(reply)};
    }
  }
  append_string(reply, "unknown op " + std::to_string(static_cast<int>(op)));
  return {ReplyStatus::kError, std::move(reply)};
}

std::pair<ReplyStatus, std::vector<std::byte>> Daemon::handle_submit(
    const std::vector<std::byte>& payload) {
  const std::byte* p = payload.data();
  const std::byte* end = p + payload.size();
  const JobSpec spec = read_spec(p, end);
  std::vector<std::byte> reply;
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_ || shutdown_requested_) {
    append_string(reply, "daemon is shutting down");
    return {ReplyStatus::kRejected, std::move(reply)};
  }
  // Admission control: reject-with-reason instead of queueing without
  // bound. A job wider than the pool could never run — reject it too.
  if (static_cast<int>(spec.ranks) > pool_.capacity()) {
    ++rejected_;
    bump("rejected", spec.tenant);
    append_string(reply, "job wants " + std::to_string(spec.ranks) +
                             " ranks, pool has " +
                             std::to_string(pool_.capacity()));
    return {ReplyStatus::kRejected, std::move(reply)};
  }
  const std::string refusal = sched_.try_admit(spec.tenant);
  if (!refusal.empty()) {
    ++rejected_;
    bump("rejected", spec.tenant);
    append_string(reply, refusal);
    return {ReplyStatus::kRejected, std::move(reply)};
  }
  JobRecord rec;
  const std::uint64_t id = rec.id = store_.allocate_id();
  rec.state = JobState::kQueued;
  rec.spec = spec;
  // Durability before acknowledgement: the record hits disk before the
  // reply leaves, so an acknowledged submit survives any daemon death.
  store_.put(rec);
  sched_.enqueue(id, spec.tenant, static_cast<int>(spec.ranks));
  jobs_.emplace(id, std::move(rec));
  ++submitted_;
  bump("submitted", spec.tenant);
  obs::Registry::global().gauge("svc.jobs.queued").set(sched_.queued());
  dispatch_cv_.notify_all();
  net::append_u64(reply, id);
  return {ReplyStatus::kOk, std::move(reply)};
}

// --- Dispatcher / executors ------------------------------------------------

void Daemon::dispatch_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    dispatch_cv_.wait(lock, [this] {
      return stopping_ ||
             (!paused_ && sched_.queued() > 0 &&
              busy_ranks_ < pool_.capacity());
    });
    if (stopping_) return;
    const auto id = sched_.pick(pool_.capacity() - busy_ranks_);
    if (!id) {
      // Front job needs more ranks than are free — wait for a completion
      // to free some. Timed, as a backstop against any missed notify.
      dispatch_cv_.wait_for(lock, std::chrono::milliseconds(500));
      continue;
    }
    JobRecord& rec = jobs_.at(*id);
    rec.state = JobState::kRunning;
    store_.put(rec);
    busy_ranks_ += static_cast<int>(rec.spec.ranks);
    ++running_jobs_;
    obs::Registry::global().gauge("svc.jobs.queued").set(sched_.queued());
    obs::Registry::global().gauge("svc.jobs.running").set(running_jobs_);
    obs::Registry::global().gauge("svc.pool.busy_ranks").set(busy_ranks_);
    executors_.emplace_back([this, job = *id] { execute(job); });
  }
}

void Daemon::execute(std::uint64_t id) {
  JobSpec spec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spec = jobs_.at(id).spec;
  }
  // Resolve the substrate: the spec's explicit ask wins, then the
  // daemon-wide default, then threads.
  Isolation iso = spec.isolation != Isolation::kDefault
                      ? spec.isolation
                      : options_.default_isolation;
  if (iso == Isolation::kDefault) iso = Isolation::kThreads;
  RunnerOptions ro;
  ro.isolation = iso;
  ro.pool = &pool_;
  ro.checkpoint_dir = store_.checkpoint_dir(id);
  ro.max_restarts = options_.max_restarts;
  ro.should_abort = [this, id] {
    std::lock_guard<std::mutex> lock(mu_);
    return cancel_requested_.count(id) > 0;
  };
  if (iso == Isolation::kProcess) {
    ro.rlimit_as_bytes = options_.rlimit_as_bytes;
    ro.rlimit_cpu_seconds = options_.rlimit_cpu_seconds;
    ro.deadline_ms = static_cast<int>(
        spec.deadline_ms != 0 ? spec.deadline_ms : options_.job_deadline_ms);
    ro.term_grace_ms = options_.term_grace_ms;
    ro.flight_dir = store_.flight_dir(id);
    // The crash handler writes its dump with async-signal-safe open();
    // it cannot mkdir, so the directory must exist before any worker runs.
    std::error_code ec;
    std::filesystem::create_directories(ro.flight_dir, ec);
  }
  RunnerOutcome out;
  std::string error;
  bool killed_by_cancel = false;
  const auto started = std::chrono::steady_clock::now();
  try {
    out = run_job(spec, ro);
  } catch (const mpp::SpawnError& e) {
    // Exit-status triage for process-isolated jobs. A cancel that had to
    // be finished with signals is still a cancel, not a failure; the rest
    // land FAILED with the cause class up front and the flight-recorder
    // dump path attached, so `peachyctl status` tells the whole story.
    switch (e.kind()) {
      case mpp::SpawnFailure::kCancelled: killed_by_cancel = true; break;
      case mpp::SpawnFailure::kTimeout:
        error = std::string("deadline exceeded: ") + e.what();
        break;
      case mpp::SpawnFailure::kCrash:
        error = std::string("worker crashed: ") + e.what();
        break;
      case mpp::SpawnFailure::kNonzero:
        error = std::string("worker failed: ") + e.what();
        break;
    }
    if (!error.empty() && !ro.flight_dir.empty())
      error += "; flight dump: " + ro.flight_dir;
  } catch (const std::exception& e) {
    error = e.what();
    if (error.empty()) error = "job execution failed";
  }
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - started)
                              .count();
  std::lock_guard<std::mutex> lock(mu_);
  JobRecord& rec = jobs_.at(id);
  if (killed_by_cancel || out.aborted) {
    rec.state = JobState::kCancelled;
    bump("cancelled", rec.spec.tenant);
  } else if (!error.empty()) {
    rec.state = JobState::kFailed;
    rec.error = error;
    bump("failed", rec.spec.tenant);
  } else {
    rec.state = JobState::kDone;
    rec.result = std::move(out.result);
    bump("completed", rec.spec.tenant);
  }
  rec.restarts += static_cast<std::uint32_t>(out.restarts);
  // wait4 accounting from the worker processes; threaded jobs leave 0.
  rec.peak_rss_bytes = std::max(rec.peak_rss_bytes, out.peak_rss_bytes);
  if (rec.peak_rss_bytes > 0)
    obs::Registry::global()
        .histogram("svc.job.peak_rss_bytes")
        .observe(static_cast<std::int64_t>(rec.peak_rss_bytes));
  // Terminal record first, checkpoint removal second: a crash in between
  // re-runs a finished job at worst; the opposite order could lose one.
  store_.put(rec);
  store_.remove_checkpoint(id);
  // The flight dir outlives FAILED jobs (its path is in the error string);
  // jobs that end any other way leave nothing to post-mortem.
  if (rec.state != JobState::kFailed) store_.remove_flight(id);
  // Settle the fair-share ledger with the measured rank-time, so tenants
  // of long jobs pay for what they used rather than what they claimed.
  sched_.complete(id, static_cast<long long>(rec.spec.ranks) * elapsed_ms);
  ++completed_;
  busy_ranks_ -= static_cast<int>(rec.spec.ranks);
  --running_jobs_;
  cancel_requested_.erase(id);
  obs::Registry::global().gauge("svc.jobs.running").set(running_jobs_);
  obs::Registry::global().gauge("svc.pool.busy_ranks").set(busy_ranks_);
  dispatch_cv_.notify_all();
}

int Daemon::pending_cancels() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(cancel_requested_.size());
}

ServiceStats Daemon::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats s;
  s.queued = static_cast<std::uint32_t>(sched_.queued());
  s.running = static_cast<std::uint32_t>(running_jobs_);
  s.pool_ranks = static_cast<std::uint32_t>(pool_.capacity());
  s.busy_ranks = static_cast<std::uint32_t>(busy_ranks_);
  s.submitted = submitted_;
  s.completed = completed_;
  s.rejected = rejected_;
  return s;
}

}  // namespace peachy::svc
