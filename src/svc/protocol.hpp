// peachyd wire protocol: job-service requests over the framed CRC32 wire.
//
// Transport shape: the client opens a TCP connection to the daemon, sends
// exactly one kJobRequest frame (net/wire.hpp; header.tag = the Op), reads
// exactly one kJobReply frame (header.tag = the Status), and closes. One
// request per connection keeps the daemon's serving loop single-threaded
// and stateless per client — the rendezvous/metrics-server discipline, not
// a general RPC system. Payloads are little-endian scalar/string tuples
// built with the net wire helpers; a malformed payload throws at decode
// and the daemon answers kError with the message instead of dying.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/wire.hpp"
#include "svc/job.hpp"

namespace peachy::svc {

/// Request operation (kJobRequest frame tag).
enum class Op : std::int32_t {
  kSubmit = 1,    ///< payload: JobSpec
  kStatus = 2,    ///< payload: u64 id
  kResult = 3,    ///< payload: u64 id
  kCancel = 4,    ///< payload: u64 id
  kList = 5,      ///< payload: tenant filter string ("" = every tenant)
  kShutdown = 6,  ///< payload: empty; daemon drains and exits
  kStats = 7,     ///< payload: empty; queue/pool occupancy snapshot
};

/// Reply status (kJobReply frame tag).
enum class ReplyStatus : std::int32_t {
  kOk = 0,
  kRejected = 1,  ///< admission control said no; payload = reason string
  kNotFound = 2,  ///< no such job id; payload = message string
  kError = 3,     ///< malformed request or daemon-side failure; message
};

/// status() reply body.
struct JobStatus {
  std::uint64_t id = 0;
  JobState state = JobState::kQueued;
  JobKind kind = JobKind::kSandpile;
  std::string tenant;
  std::string name;
  std::string error;       ///< non-empty iff FAILED
  std::uint32_t restarts = 0;
  /// Peak worker RSS (process isolation; 0 for threaded or unfinished jobs).
  std::uint64_t peak_rss_bytes = 0;
  bool has_result = false;
};

/// One row of a list() reply.
struct JobBrief {
  std::uint64_t id = 0;
  JobKind kind = JobKind::kSandpile;
  JobState state = JobState::kQueued;
  std::string tenant;
  std::string name;
};

/// stats() reply body: the daemon's live occupancy numbers.
struct ServiceStats {
  std::uint32_t queued = 0;
  std::uint32_t running = 0;
  std::uint32_t pool_ranks = 0;
  std::uint32_t busy_ranks = 0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
};

// String payload helpers (u32 length + bytes), shared by every codec here.
void append_string(std::vector<std::byte>& out, const std::string& s);
std::string read_string(const std::byte*& p, const std::byte* end);

// Reply body codecs (the daemon encodes, the client decodes).
void append_status(std::vector<std::byte>& out, const JobStatus& s);
JobStatus read_status(const std::byte*& p, const std::byte* end);
void append_briefs(std::vector<std::byte>& out,
                   const std::vector<JobBrief>& briefs);
std::vector<JobBrief> read_briefs(const std::byte*& p, const std::byte* end);
void append_stats(std::vector<std::byte>& out, const ServiceStats& s);
ServiceStats read_stats(const std::byte*& p, const std::byte* end);

}  // namespace peachy::svc
