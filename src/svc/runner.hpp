// Job execution adapters: one JobSpec in, one result blob out.
//
// Every kind runs as a supervised mpp world on the daemon's shared
// RankPool (mpp::RunOptions::pool) — pooled worlds instead of per-job
// thread spawn, so N concurrent jobs compete for one fixed rank budget and
// admission control has something real to meter. The job's checkpoint
// directory is *named* (JobStore::checkpoint_dir), which is the whole
// recovery story: a daemon SIGKILLed mid-job leaves the last committed
// cut on disk, and the restarted daemon re-dispatches the same spec into
// the same directory, where Comm::restore picks the run back up.
//
// Isolation: RunnerOptions::isolation picks the substrate. kThreads runs
// ranks as pool threads inside the daemon (cheap, zero-copy, but a
// crashing job takes the daemon with it); kProcess forks real worker
// processes via mpp::run_spawned with RLIMIT fences, an optional
// wall-clock deadline, and SIGTERM -> grace -> SIGKILL cancellation —
// worker death is a FAILED record, not a daemon outage.
//
// Cancellation is end-to-end for every kind: sandpile folds should_abort
// into the termination allreduce each exchange round, dmr polls it at
// every epoch barrier, wfsim at every sweep-step iteration. In process
// mode the launcher-side hook drives SIGTERM to the children, whose
// bodies observe mpp::spawn_abort_requested() at the same boundaries.
//
// Result blob formats (little-endian, net wire helpers):
//   sandpile — sandpile::detail::encode_result (H, W, rounds, status, cells)
//   dmr      — u32 pair count | per pair: string word, u64 count
//   wfsim    — u32 row count  | per row: f64 fraction, f64 makespan_s,
//              f64 total_gco2 (doubles as u64 bit patterns)
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "svc/job.hpp"

namespace peachy::mpp {
class RankPool;
}

namespace peachy::svc {

struct RunnerOptions {
  mpp::RankPool* pool = nullptr;    ///< shared pool (required for kThreads)
  std::string checkpoint_dir;       ///< named per-job dir; "" = no ckpt
  int max_restarts = 2;             ///< in-run supervision budget
  /// Polled by the job while it runs, at every exchange round / epoch
  /// barrier / sweep step. Called only in the daemon process (in process
  /// isolation it drives the SIGTERM escalation; the forked workers poll
  /// mpp::spawn_abort_requested() instead).
  std::function<bool()> should_abort;
  /// Keep the named checkpoint dir after success instead of letting mpp
  /// remove it (the daemon removes it itself once the DONE record is
  /// committed — otherwise a crash between "ckpt removed" and "record
  /// committed" would re-run the job from scratch).
  bool keep_checkpoint = true;
  /// Execution substrate. Must be resolved (not kDefault) by the caller.
  Isolation isolation = Isolation::kThreads;
  // --- process isolation only:
  std::uint64_t rlimit_as_bytes = 0;   ///< RLIMIT_AS per worker; 0 = off
  std::uint64_t rlimit_cpu_seconds = 0;  ///< RLIMIT_CPU per worker; 0 = off
  int deadline_ms = 0;       ///< whole-run wall clock; 0 = unlimited
  int term_grace_ms = 2000;  ///< SIGTERM -> SIGKILL escalation grace
  std::string flight_dir;    ///< worker crash dumps land here ("" = inherit)
};

struct RunnerOutcome {
  std::vector<std::byte> result;  ///< kind-specific blob (see header)
  bool aborted = false;           ///< should_abort stopped the run
  int restarts = 0;               ///< supervised world restarts
  /// Peak worker RSS over the whole run (max across ranks and restarts).
  /// Process isolation only — threaded jobs share the daemon's address
  /// space and report 0.
  std::uint64_t peak_rss_bytes = 0;
};

/// Executes `spec` to completion (or abort) on the pool. Throws on
/// execution failure; the daemon turns that into state FAILED.
RunnerOutcome run_job(const JobSpec& spec, const RunnerOptions& options);

/// Decoders for the dmr/wfsim blobs (peachyctl pretty-printing and tests;
/// sandpile blobs decode with sandpile::detail::decode_result).
std::vector<std::pair<std::string, std::uint64_t>> decode_dmr_result(
    const std::vector<std::byte>& blob);

struct WfsimRow {
  double fraction = 0;
  double makespan_s = 0;
  double total_gco2 = 0;
};
std::vector<WfsimRow> decode_wfsim_result(const std::vector<std::byte>& blob);

}  // namespace peachy::svc
