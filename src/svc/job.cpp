#include "svc/job.hpp"

#include "core/error.hpp"
#include "net/wire.hpp"
#include "svc/protocol.hpp"

namespace peachy::svc {

const char* to_string(JobKind kind) {
  switch (kind) {
    case JobKind::kSandpile: return "sandpile";
    case JobKind::kDmr: return "dmr";
    case JobKind::kWfsim: return "wfsim";
  }
  return "?";
}

JobKind job_kind_from_string(const std::string& name) {
  if (name == "sandpile") return JobKind::kSandpile;
  if (name == "dmr") return JobKind::kDmr;
  if (name == "wfsim") return JobKind::kWfsim;
  throw Error("unknown job kind '" + name +
              "' (expected sandpile, dmr or wfsim)");
}

const char* to_string(Isolation isolation) {
  switch (isolation) {
    case Isolation::kDefault: return "default";
    case Isolation::kThreads: return "threads";
    case Isolation::kProcess: return "process";
  }
  return "?";
}

Isolation isolation_from_string(const std::string& name) {
  if (name == "default") return Isolation::kDefault;
  if (name == "threads") return Isolation::kThreads;
  if (name == "process") return Isolation::kProcess;
  throw Error("unknown isolation '" + name +
              "' (expected default, threads or process)");
}

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "QUEUED";
    case JobState::kRunning: return "RUNNING";
    case JobState::kDone: return "DONE";
    case JobState::kFailed: return "FAILED";
    case JobState::kCancelled: return "CANCELLED";
  }
  return "?";
}

void append_spec(std::vector<std::byte>& out, const JobSpec& spec) {
  net::append_u32(out, static_cast<std::uint32_t>(spec.kind));
  append_string(out, spec.tenant);
  append_string(out, spec.name);
  net::append_u32(out, spec.ranks);
  net::append_u32(out, static_cast<std::uint32_t>(spec.isolation));
  net::append_u32(out, spec.deadline_ms);
  switch (spec.kind) {
    case JobKind::kSandpile:
      net::append_u32(out, spec.sandpile.height);
      net::append_u32(out, spec.sandpile.width);
      net::append_u32(out, spec.sandpile.grains);
      net::append_u32(out, spec.sandpile.halo_depth);
      net::append_u32(out, spec.sandpile.checkpoint_every);
      break;
    case JobKind::kDmr:
      net::append_u32(out, spec.dmr.words);
      net::append_u64(out, spec.dmr.seed);
      net::append_u32(out, spec.dmr.vocabulary);
      net::append_u32(out, spec.dmr.map_tasks);
      net::append_u32(out, spec.dmr.partitions);
      net::append_u32(out, spec.dmr.map_epochs);
      net::append_u32(out, spec.dmr.checkpoint_every);
      net::append_u32(out, spec.dmr.fault_abort_at);
      break;
    case JobKind::kWfsim:
      net::append_u32(out, spec.wfsim.sweep_steps);
      net::append_u32(out, spec.wfsim.nodes_on);
      net::append_u32(out, spec.wfsim.pstate);
      break;
  }
}

JobSpec read_spec(const std::byte*& p, const std::byte* end) {
  JobSpec spec;
  const std::uint32_t kind = net::read_u32(p, end);
  PEACHY_REQUIRE(kind >= 1 && kind <= 3, "job spec has unknown kind " << kind);
  spec.kind = static_cast<JobKind>(kind);
  spec.tenant = read_string(p, end);
  spec.name = read_string(p, end);
  spec.ranks = net::read_u32(p, end);
  PEACHY_REQUIRE(spec.ranks >= 1 && spec.ranks <= 4096,
                 "job spec wants " << spec.ranks << " ranks");
  const std::uint32_t isolation = net::read_u32(p, end);
  PEACHY_REQUIRE(isolation <= 2,
                 "job spec has unknown isolation " << isolation);
  spec.isolation = static_cast<Isolation>(isolation);
  spec.deadline_ms = net::read_u32(p, end);
  switch (spec.kind) {
    case JobKind::kSandpile:
      spec.sandpile.height = net::read_u32(p, end);
      spec.sandpile.width = net::read_u32(p, end);
      spec.sandpile.grains = net::read_u32(p, end);
      spec.sandpile.halo_depth = net::read_u32(p, end);
      spec.sandpile.checkpoint_every = net::read_u32(p, end);
      break;
    case JobKind::kDmr:
      spec.dmr.words = net::read_u32(p, end);
      spec.dmr.seed = net::read_u64(p, end);
      spec.dmr.vocabulary = net::read_u32(p, end);
      spec.dmr.map_tasks = net::read_u32(p, end);
      spec.dmr.partitions = net::read_u32(p, end);
      spec.dmr.map_epochs = net::read_u32(p, end);
      spec.dmr.checkpoint_every = net::read_u32(p, end);
      spec.dmr.fault_abort_at = net::read_u32(p, end);
      break;
    case JobKind::kWfsim:
      spec.wfsim.sweep_steps = net::read_u32(p, end);
      spec.wfsim.nodes_on = net::read_u32(p, end);
      spec.wfsim.pstate = net::read_u32(p, end);
      break;
  }
  return spec;
}

}  // namespace peachy::svc
