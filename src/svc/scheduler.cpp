#include "svc/scheduler.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace peachy::svc {

FairShareScheduler::FairShareScheduler(SchedulerOptions options)
    : options_(options) {
  PEACHY_REQUIRE(options_.max_queued >= 1, "max_queued must be >= 1");
  PEACHY_REQUIRE(options_.quantum >= 1, "quantum must be >= 1");
}

FairShareScheduler::Tenant& FairShareScheduler::tenant_slot(
    const std::string& name) {
  for (Tenant& t : tenants_)
    if (t.name == name) return t;
  tenants_.push_back(Tenant{name, 1, 0, 0, {}});
  return tenants_.back();
}

void FairShareScheduler::set_weight(const std::string& tenant, int weight) {
  PEACHY_REQUIRE(weight >= 1, "tenant weight must be >= 1, got " << weight);
  tenant_slot(tenant).weight = weight;
}

std::string FairShareScheduler::try_admit(const std::string& tenant) const {
  if (total_queued_ >= options_.max_queued)
    return "queue full (" + std::to_string(total_queued_) + "/" +
           std::to_string(options_.max_queued) + " jobs queued)";
  for (const Tenant& t : tenants_) {
    if (t.name != tenant) continue;
    if (static_cast<int>(t.queue.size()) >= options_.max_queued_per_tenant)
      return "tenant '" + tenant + "' queue full (" +
             std::to_string(t.queue.size()) + "/" +
             std::to_string(options_.max_queued_per_tenant) + " jobs queued)";
    break;
  }
  return "";
}

void FairShareScheduler::enqueue(std::uint64_t id, const std::string& tenant,
                                 int ranks) {
  tenant_slot(tenant).queue.push_back(Item{id, ranks});
  ++total_queued_;
}

bool FairShareScheduler::remove(std::uint64_t id) {
  for (Tenant& t : tenants_) {
    auto it = std::find_if(t.queue.begin(), t.queue.end(),
                           [&](const Item& i) { return i.id == id; });
    if (it == t.queue.end()) continue;
    t.queue.erase(it);
    --total_queued_;
    // Classic DRR: an emptied queue forfeits its remaining *credit*, so a
    // tenant cannot bank while idle and burst later. Debt (a negative
    // deficit from jobs that ran longer than estimated) is kept — going
    // idle must not launder it.
    if (t.queue.empty()) t.deficit = std::min<long long>(t.deficit, 0);
    return true;
  }
  return false;
}

// A tenant's per-job wall-time estimate: its completion EWMA once it has
// one, the configured default until then.
long long FairShareScheduler::job_ms(const Tenant& t) const {
  if (t.ewma_job_ms > 0)
    return std::max<long long>(1, static_cast<long long>(t.ewma_job_ms));
  return std::max<long long>(1, options_.default_job_ms);
}

void FairShareScheduler::close_turn(Tenant& t, bool forfeit_credit) {
  if (forfeit_credit) t.deficit = std::min<long long>(t.deficit, 0);
  turn_open_ = false;
  cursor_ = (cursor_ + 1) % std::max<std::size_t>(tenants_.size(), 1);
}

std::optional<std::uint64_t> FairShareScheduler::pick(int free_ranks) {
  if (tenants_.empty() || total_queued_ == 0) return std::nullopt;
  // Each iteration either serves a job, returns "wait for ranks", or
  // closes a turn and advances the cursor. Every full lap credits each
  // non-empty tenant with quantum * weight * default_job_ms rank-ms, so
  // the priciest head job (estimate, plus any debt the tenant is paying
  // off) becomes affordable within a bounded number of laps; beyond that
  // the queues are genuinely undecidable this call and we bail out.
  const long long lap_credit =
      static_cast<long long>(options_.quantum) *
      std::max<long long>(1, options_.default_job_ms);
  long long max_cost = 1;
  for (const Tenant& t : tenants_)
    if (!t.queue.empty())
      max_cost = std::max<long long>(
          max_cost, t.queue.front().ranks * job_ms(t) - t.deficit);
  const std::size_t max_steps =
      tenants_.size() *
      static_cast<std::size_t>(max_cost / lap_credit + 2);
  for (std::size_t step = 0; step < max_steps; ++step) {
    Tenant& t = tenants_[cursor_ % tenants_.size()];
    if (t.queue.empty()) {
      close_turn(t, /*forfeit_credit=*/true);
      continue;
    }
    if (!turn_open_) {
      t.deficit += static_cast<long long>(options_.quantum) * t.weight *
                   std::max<long long>(1, options_.default_job_ms);
      turn_open_ = true;
    }
    const Item head = t.queue.front();
    const long long estimate = head.ranks * job_ms(t);
    if (t.deficit < estimate) {
      // Turn exhausted; keep the remainder (or the debt) for later laps.
      close_turn(t, /*forfeit_credit=*/false);
      continue;
    }
    if (head.ranks > free_ranks) return std::nullopt;  // turn stays open
    t.queue.pop_front();
    --total_queued_;
    t.deficit -= estimate;
    inflight_[head.id] =
        Inflight{static_cast<std::size_t>(&t - tenants_.data()), head.ranks,
                 estimate};
    if (t.queue.empty()) close_turn(t, /*forfeit_credit=*/true);
    return head.id;
  }
  return std::nullopt;
}

void FairShareScheduler::complete(std::uint64_t id, long long actual_rank_ms) {
  const auto it = inflight_.find(id);
  if (it == inflight_.end()) return;
  const Inflight fl = it->second;
  inflight_.erase(it);
  Tenant& t = tenants_[fl.tenant_idx];
  // Settle: the estimate was already charged at pick(); charge (or refund)
  // the difference so the tenant's ledger reflects measured rank-time.
  t.deficit -= std::max<long long>(actual_rank_ms, 0) - fl.estimated_rank_ms;
  if (t.queue.empty()) t.deficit = std::min<long long>(t.deficit, 0);
  const double wall_ms =
      static_cast<double>(std::max<long long>(actual_rank_ms, 0)) /
      std::max(fl.ranks, 1);
  t.ewma_job_ms =
      t.ewma_job_ms <= 0 ? wall_ms : 0.5 * t.ewma_job_ms + 0.5 * wall_ms;
}

int FairShareScheduler::queued() const { return total_queued_; }

long long FairShareScheduler::deficit_for(const std::string& tenant) const {
  for (const Tenant& t : tenants_)
    if (t.name == tenant) return t.deficit;
  return 0;
}

int FairShareScheduler::queued_for(const std::string& tenant) const {
  for (const Tenant& t : tenants_)
    if (t.name == tenant) return static_cast<int>(t.queue.size());
  return 0;
}

}  // namespace peachy::svc
