#include "svc/runner.hpp"

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "core/error.hpp"
#include "dmr/job.hpp"
#include "mpp/mpp.hpp"
#include "mpp/pool.hpp"
#include "net/wire.hpp"
#include "sandpile/distributed.hpp"
#include "sandpile/field.hpp"
#include "sandpile/result_blob.hpp"
#include "svc/protocol.hpp"
#include "wfsim/montage.hpp"
#include "wfsim/platform.hpp"
#include "wfsim/simulate.hpp"

namespace peachy::svc {

namespace {

void append_f64(std::vector<std::byte>& out, double v) {
  net::append_u64(out, std::bit_cast<std::uint64_t>(v));
}

double read_f64(const std::byte*& p, const std::byte* end) {
  return std::bit_cast<double>(net::read_u64(p, end));
}

mpp::RunOptions world_options(const RunnerOptions& options) {
  mpp::RunOptions run;
  run.resilience.max_restarts = options.max_restarts;
  run.resilience.checkpoint_dir = options.checkpoint_dir;
  run.resilience.remove_checkpoint_on_success = !options.keep_checkpoint;
  if (options.isolation == Isolation::kProcess) {
    run.transport = mpp::TransportKind::kTcp;
    run.spawn = true;
    // The spawned serve/wait budget is connect+recv, which must cover the
    // whole job runtime; raise it so long jobs are bounded by the
    // SpawnControl deadline (when set), not the rendezvous timeout.
    run.tcp.recv_timeout_ms = std::max(run.tcp.recv_timeout_ms, 120000);
    run.spawn_control.limits.address_space_bytes = options.rlimit_as_bytes;
    run.spawn_control.limits.cpu_seconds = options.rlimit_cpu_seconds;
    run.spawn_control.deadline_ms = options.deadline_ms;
    run.spawn_control.term_grace_ms = options.term_grace_ms;
    run.spawn_control.should_abort = options.should_abort;
    run.spawn_control.flight_dir = options.flight_dir;
  } else {
    run.pool = options.pool;
  }
  return run;
}

// The hook the SPMD body polls at its cancellation cuts. Threaded jobs ask
// the daemon directly; process-isolated bodies run in forked workers where
// the daemon's hook is dead weight — there the probe is the SIGTERM latch
// the supervisor's escalation sets.
std::function<bool()> body_abort_hook(const RunnerOptions& options) {
  if (options.isolation == Isolation::kProcess)
    return [] { return mpp::spawn_abort_requested(); };
  return options.should_abort;
}

RunnerOutcome run_sandpile(const JobSpec& spec, const RunnerOptions& options) {
  const SandpileParams& p = spec.sandpile;
  const sandpile::Field initial =
      sandpile::center_pile(static_cast<int>(p.height),
                            static_cast<int>(p.width), p.grains);
  sandpile::DistributedOptions opt;
  opt.ranks = static_cast<int>(spec.ranks);
  opt.halo_depth = static_cast<int>(p.halo_depth);
  opt.checkpoint_every = static_cast<int>(p.checkpoint_every);
  opt.run = world_options(options);
  opt.should_abort = body_abort_hook(options);
  const sandpile::DistributedResult r =
      sandpile::stabilize_distributed(initial, opt);
  RunnerOutcome out;
  out.result =
      sandpile::detail::encode_result(r.field, r.stable, r.rounds, r.aborted);
  out.aborted = r.aborted;
  out.restarts = r.restarts;
  out.peak_rss_bytes = r.peak_rss_bytes;
  return out;
}

// The tenant's "input files": a deterministic corpus every rank (and every
// re-run after a daemon death) regenerates identically from the seed.
std::vector<std::pair<int, std::string>> synth_corpus(const DmrParams& p) {
  std::uint64_t x = p.seed ? p.seed : 1;
  const auto next = [&x]() {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  constexpr std::uint32_t kWordsPerLine = 8;
  const std::uint32_t lines = (p.words + kWordsPerLine - 1) / kWordsPerLine;
  std::vector<std::pair<int, std::string>> corpus;
  corpus.reserve(lines);
  std::uint32_t emitted = 0;
  for (std::uint32_t i = 0; i < lines; ++i) {
    std::string line;
    for (std::uint32_t w = 0; w < kWordsPerLine && emitted < p.words; ++w) {
      if (w) line += ' ';
      line += 'w';
      line += std::to_string(next() % std::max(p.vocabulary, 1u));
      ++emitted;
    }
    corpus.emplace_back(static_cast<int>(i), std::move(line));
  }
  return corpus;
}

RunnerOutcome run_dmr(const JobSpec& spec, const RunnerOptions& options) {
  const DmrParams& p = spec.dmr;
  dmr::Job<int, std::string, std::string, std::uint64_t, std::string,
           std::uint64_t>
      job;
  // fault_abort_at is the crash-containment test hook: the mapper abort()s
  // the moment it has emitted that many words. Counted per process — in
  // process isolation that is one worker's tally, which is all the tests
  // need (some worker dies; which one is irrelevant).
  const auto mapped = std::make_shared<std::atomic<std::uint32_t>>(0);
  const std::uint32_t abort_at = p.fault_abort_at;
  job.mapper([mapped, abort_at](const int&, const std::string& line,
                                mr::Emitter<std::string, std::uint64_t>& out) {
    std::size_t start = 0;
    while (start < line.size()) {
      std::size_t end = line.find(' ', start);
      if (end == std::string::npos) end = line.size();
      if (end > start) {
        if (abort_at != 0 &&
            mapped->fetch_add(1, std::memory_order_relaxed) + 1 >= abort_at)
          std::abort();
        out.emit(line.substr(start, end - start), 1);
      }
      start = end + 1;
    }
  });
  const auto sum = [](const std::string& key,
                      const std::vector<std::uint64_t>& values,
                      mr::Emitter<std::string, std::uint64_t>& out) {
    std::uint64_t total = 0;
    for (const std::uint64_t v : values) total += v;
    out.emit(key, total);
  };
  job.combiner(sum).reducer(sum);
  dmr::Options opt;
  opt.ranks = static_cast<int>(spec.ranks);
  opt.map_tasks = static_cast<int>(p.map_tasks);
  opt.partitions = static_cast<int>(p.partitions);
  opt.map_epochs = static_cast<int>(p.map_epochs);
  opt.checkpoint_every = static_cast<int>(p.checkpoint_every);
  opt.run = world_options(options);
  opt.should_abort = body_abort_hook(options);
  job.options(std::move(opt));
  const auto r = job.run(synth_corpus(p));
  RunnerOutcome out;
  net::append_u32(out.result, static_cast<std::uint32_t>(r.output.size()));
  for (const auto& [word, count] : r.output) {
    append_string(out.result, word);
    net::append_u64(out.result, count);
  }
  out.aborted = r.aborted;
  out.restarts = r.restarts;
  out.peak_rss_bytes = r.peak_rss_bytes;
  return out;
}

RunnerOutcome run_wfsim(const JobSpec& spec, const RunnerOptions& options) {
  const WfsimParams& p = spec.wfsim;
  PEACHY_REQUIRE(p.sweep_steps >= 1, "wfsim sweep needs >= 1 step");
  // Rank r simulates steps r, r+R, r+2R, ... and rank 0 gathers the rows.
  // Placement sweeps have no cross-step state, so there is nothing to
  // checkpoint — the whole sweep re-runs after a daemon death, which is
  // fine because each step is milliseconds of simulated dispatching.
  mpp::RunOptions run = world_options(options);
  run.resilience.checkpoint_dir.clear();
  const std::uint32_t steps = p.sweep_steps;
  const std::function<bool()> abort_hook = body_abort_hook(options);
  const mpp::RunOutcome outcome = mpp::run_world(
      static_cast<int>(spec.ranks), run, [&](mpp::Comm& comm) {
        const int rank = comm.rank();
        const int R = comm.size();
        const wf::Workflow wf = wf::make_montage();
        const wf::Platform platform = wf::eduwrench_platform();
        const int levels = wf.num_levels();
        // Every rank runs the same iteration count (idle tail iterations
        // included) so the per-iteration cancel collective lines up; rank r
        // owns steps r, r+R, r+2R, ...
        const std::uint32_t iters =
            (steps + static_cast<std::uint32_t>(R) - 1) /
            static_cast<std::uint32_t>(R);
        bool aborted = false;
        std::vector<std::int64_t> mine;  // (step, makespan bits, gco2 bits)
        for (std::uint32_t it = 0; it < iters; ++it) {
          if (abort_hook) {
            const bool stop_mine = rank == 0 && abort_hook();
            if (comm.allreduce_or(stop_mine)) {
              aborted = true;
              break;
            }
          }
          const std::uint32_t s =
              static_cast<std::uint32_t>(rank) +
              it * static_cast<std::uint32_t>(R);
          if (s >= steps) continue;
          const double fraction =
              steps == 1 ? 0.0 : static_cast<double>(s) / (steps - 1);
          wf::RunConfig cfg;
          cfg.nodes_on = static_cast<int>(p.nodes_on);
          cfg.pstate = static_cast<int>(p.pstate);
          cfg.placement = wf::Placement::level_fractions(
              wf, std::vector<double>(static_cast<std::size_t>(levels),
                                      fraction));
          const wf::SimResult r = wf::simulate(wf, platform, cfg);
          mine.push_back(static_cast<std::int64_t>(s));
          mine.push_back(std::bit_cast<std::int64_t>(r.makespan_s));
          mine.push_back(std::bit_cast<std::int64_t>(r.total_gco2));
        }
        const std::vector<std::int64_t> all = comm.gather(0, mine);
        if (rank != 0) return;
        PEACHY_CHECK(all.size() % 3 == 0);
        if (!aborted)
          PEACHY_CHECK(all.size() == static_cast<std::size_t>(steps) * 3);
        std::map<std::int64_t, std::pair<double, double>> rows;
        for (std::size_t i = 0; i < all.size(); i += 3)
          rows[all[i]] = {std::bit_cast<double>(all[i + 1]),
                          std::bit_cast<double>(all[i + 2])};
        std::vector<std::byte> blob;
        // Internal prefix for the launcher (stripped before the blob is
        // stored): whether the cancel collective cut the sweep short.
        net::append_u32(blob, aborted ? 1 : 0);
        net::append_u32(blob, static_cast<std::uint32_t>(rows.size()));
        for (const auto& [s, vals] : rows) {
          const double fraction =
              steps == 1 ? 0.0 : static_cast<double>(s) / (steps - 1);
          append_f64(blob, fraction);
          append_f64(blob, vals.first);
          append_f64(blob, vals.second);
        }
        comm.set_result(blob.data(), blob.size());
      });
  RunnerOutcome out;
  const std::byte* q = outcome.rank0_result.data();
  const std::byte* qend = q + outcome.rank0_result.size();
  out.aborted = net::read_u32(q, qend) != 0;
  out.result.assign(q, qend);
  out.restarts = outcome.restarts;
  out.peak_rss_bytes = outcome.peak_rss_bytes;
  return out;
}

}  // namespace

RunnerOutcome run_job(const JobSpec& spec, const RunnerOptions& options) {
  PEACHY_REQUIRE(options.isolation != Isolation::kDefault,
                 "caller must resolve Isolation::kDefault before running");
  if (options.isolation == Isolation::kThreads)
    PEACHY_REQUIRE(options.pool != nullptr, "runner needs a rank pool");
  if (options.should_abort && options.should_abort()) {
    RunnerOutcome out;
    out.aborted = true;
    return out;
  }
  switch (spec.kind) {
    case JobKind::kSandpile: return run_sandpile(spec, options);
    case JobKind::kDmr: return run_dmr(spec, options);
    case JobKind::kWfsim: return run_wfsim(spec, options);
  }
  throw Error("unreachable job kind");
}

std::vector<std::pair<std::string, std::uint64_t>> decode_dmr_result(
    const std::vector<std::byte>& blob) {
  const std::byte* p = blob.data();
  const std::byte* end = p + blob.size();
  const std::uint32_t n = net::read_u32(p, end);
  std::vector<std::pair<std::string, std::uint64_t>> pairs;
  pairs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string word = read_string(p, end);
    const std::uint64_t count = net::read_u64(p, end);
    pairs.emplace_back(std::move(word), count);
  }
  return pairs;
}

std::vector<WfsimRow> decode_wfsim_result(const std::vector<std::byte>& blob) {
  const std::byte* p = blob.data();
  const std::byte* end = p + blob.size();
  const std::uint32_t n = net::read_u32(p, end);
  std::vector<WfsimRow> rows;
  rows.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    WfsimRow row;
    row.fraction = read_f64(p, end);
    row.makespan_s = read_f64(p, end);
    row.total_gco2 = read_f64(p, end);
    rows.push_back(row);
  }
  return rows;
}

}  // namespace peachy::svc
