// Admission control and fair-share ordering for peachyd.
//
// Two jobs in one class because they share the per-tenant bookkeeping:
//
// 1. Admission: a submit is accepted only if the global queue and the
//    tenant's slice of it have room (bounded queue depth; reject-with-
//    reason instead of buffering without limit). The daemon relays the
//    reason string verbatim in its kRejected reply.
//
// 2. Ordering: weighted deficit round-robin over tenants, *turn-based*,
//    with costs in **rank-milliseconds of wall clock** — not dispatches.
//    Opening a tenant's turn credits its deficit once with
//    quantum * weight * default_job_ms; the tenant is then served from
//    the head of its FIFO while the deficit covers each job's *estimated*
//    cost (ranks * the tenant's EWMA of per-job wall time, default_job_ms
//    until it has history). When a job finishes, complete() settles the
//    estimate against the measured rank-ms: a job that ran 10x longer
//    than estimated drives its tenant's deficit into debt, which the
//    tenant pays off by waiting out laps before being served again. That
//    is the fairness fix from ROADMAP: a tenant of long jobs and a tenant
//    of short jobs at equal weight converge to equal rank-*time*, not
//    equal dispatch counts. When the deficit runs out — or the queue
//    does — the turn closes and the cursor advances. With quantum = pool
//    capacity, any admissible job is affordable within a bounded number
//    of laps, so weights translate directly into rank-time ratios:
//    tenants at weights 2:1 submitting identical jobs are served in the
//    pattern a,a,b.
//
//    When the tenant at the cursor has an affordable head job but the
//    pool lacks free ranks for it, pick() returns nothing WITHOUT closing
//    the turn: the blocked tenant stays first in line and is retried when
//    ranks free up. This is deliberate head-of-line blocking — it keeps a
//    stream of small jobs from starving a large one indefinitely.
//
// Not thread-safe; the daemon calls it under its own lock.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace peachy::svc {

struct SchedulerOptions {
  int max_queued = 64;             ///< global queue-depth cap
  int max_queued_per_tenant = 32;  ///< one tenant's slice of the queue
  int quantum = 4;                 ///< deficit credit per turn, in ranks
  /// Assumed per-job wall time for tenants with no completion history;
  /// the unit that turns `quantum` (ranks) into rank-ms of credit.
  long long default_job_ms = 1000;
};

class FairShareScheduler {
 public:
  explicit FairShareScheduler(SchedulerOptions options = {});

  /// Sets a tenant's weight (default 1). Takes effect at its next turn.
  void set_weight(const std::string& tenant, int weight);

  /// Empty string = admitted; otherwise the rejection reason.
  std::string try_admit(const std::string& tenant) const;

  /// Appends a job to its tenant's FIFO. Call only after try_admit.
  void enqueue(std::uint64_t id, const std::string& tenant, int ranks);

  /// Removes a queued job (cancellation). Returns false if not queued.
  bool remove(std::uint64_t id);

  /// Next job to dispatch given `free_ranks` idle pool ranks, or nullopt
  /// if every tenant is empty or the front job must wait for ranks.
  /// Charges the tenant the job's *estimated* rank-ms cost.
  std::optional<std::uint64_t> pick(int free_ranks);

  /// Settles a picked job's measured cost (ranks * wall-clock ms) against
  /// the estimate charged at pick() time and feeds the tenant's per-job
  /// EWMA. Unknown ids are ignored (job predates a daemon restart).
  void complete(std::uint64_t id, long long actual_rank_ms);

  int queued() const;
  int queued_for(const std::string& tenant) const;
  /// The tenant's current deficit in rank-ms (tests; negative = debt).
  long long deficit_for(const std::string& tenant) const;

 private:
  struct Item {
    std::uint64_t id = 0;
    int ranks = 1;
  };
  struct Tenant {
    std::string name;
    int weight = 1;
    long long deficit = 0;   ///< rank-ms; negative = debt carried forward
    double ewma_job_ms = 0;  ///< per-job wall estimate; 0 = no history yet
    std::deque<Item> queue;
  };
  /// What pick() charged for a dispatched job, so complete() can settle.
  struct Inflight {
    std::size_t tenant_idx = 0;
    int ranks = 1;
    long long estimated_rank_ms = 0;
  };

  Tenant& tenant_slot(const std::string& name);
  long long job_ms(const Tenant& t) const;
  void close_turn(Tenant& t, bool forfeit_credit);

  SchedulerOptions options_;
  std::vector<Tenant> tenants_;
  std::map<std::uint64_t, Inflight> inflight_;
  std::size_t cursor_ = 0;
  bool turn_open_ = false;
  int total_queued_ = 0;
};

}  // namespace peachy::svc
