#include "svc/queue.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "core/error.hpp"
#include "net/wire.hpp"
#include "svc/protocol.hpp"

namespace fs = std::filesystem;

namespace peachy::svc {

namespace {

// Record layout (little-endian, net wire scalar helpers):
//   u32 magic 'PSVJ' | u32 version | u64 id | u32 state | u32 restarts
//   | u64 peak_rss_bytes | spec (append_spec) | string error
//   | u64 result size | result bytes | u32 crc32 of everything above
constexpr std::uint32_t kMagic = 0x4a565350;  // "PSVJ"
// v2: spec grew isolation + deadline_ms (+ dmr fault_abort_at).
// v3: record grew peak_rss_bytes. Records from other versions are skipped
// at load like corrupt ones — the spec codec is shared with the wire
// protocol, so cross-version decode would misparse, and a job service
// retires records quickly anyway.
constexpr std::uint32_t kVersion = 3;

std::vector<std::byte> encode_record(const JobRecord& rec) {
  std::vector<std::byte> buf;
  net::append_u32(buf, kMagic);
  net::append_u32(buf, kVersion);
  net::append_u64(buf, rec.id);
  net::append_u32(buf, static_cast<std::uint32_t>(rec.state));
  net::append_u32(buf, rec.restarts);
  net::append_u64(buf, rec.peak_rss_bytes);
  append_spec(buf, rec.spec);
  append_string(buf, rec.error);
  net::append_u64(buf, rec.result.size());
  net::append_bytes(buf, rec.result.data(), rec.result.size());
  net::append_u32(buf, net::crc32(buf.data(), buf.size()));
  return buf;
}

// Throws on any structural problem; callers translate that into "skip".
JobRecord decode_record(const std::vector<std::byte>& buf) {
  PEACHY_REQUIRE(buf.size() >= 28, "job record is truncated (" << buf.size()
                                                               << " bytes)");
  const std::byte* crc_end = buf.data() + buf.size() - 4;
  {
    const std::byte* q = crc_end;
    const std::uint32_t stored = net::read_u32(q, buf.data() + buf.size());
    const std::uint32_t actual =
        net::crc32(buf.data(), static_cast<std::size_t>(crc_end - buf.data()));
    PEACHY_REQUIRE(stored == actual, "job record CRC mismatch");
  }
  const std::byte* p = buf.data();
  PEACHY_REQUIRE(net::read_u32(p, crc_end) == kMagic, "bad job record magic");
  PEACHY_REQUIRE(net::read_u32(p, crc_end) == kVersion,
                 "unsupported job record version");
  JobRecord rec;
  rec.id = net::read_u64(p, crc_end);
  const std::uint32_t state = net::read_u32(p, crc_end);
  PEACHY_REQUIRE(state >= 1 && state <= 5, "job record has state " << state);
  rec.state = static_cast<JobState>(state);
  rec.restarts = net::read_u32(p, crc_end);
  rec.peak_rss_bytes = net::read_u64(p, crc_end);
  rec.spec = read_spec(p, crc_end);
  rec.error = read_string(p, crc_end);
  const std::uint64_t result_size = net::read_u64(p, crc_end);
  PEACHY_REQUIRE(static_cast<std::uint64_t>(crc_end - p) == result_size,
                 "job record result blob is " << (crc_end - p)
                                              << " bytes, header says "
                                              << result_size);
  rec.result.assign(p, crc_end);
  return rec;
}

std::optional<std::vector<std::byte>> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  in.seekg(0, std::ios::end);
  const std::streamoff len = in.tellg();
  in.seekg(0, std::ios::beg);
  std::vector<std::byte> buf(static_cast<std::size_t>(len > 0 ? len : 0));
  in.read(reinterpret_cast<char*>(buf.data()),
          static_cast<std::streamsize>(buf.size()));
  if (in.gcount() != static_cast<std::streamsize>(buf.size()))
    return std::nullopt;
  return buf;
}

}  // namespace

JobStore::JobStore(std::string dir) : dir_(std::move(dir)) {
  fs::create_directories(fs::path(dir_) / "jobs");
  fs::create_directories(fs::path(dir_) / "ckpt");
  fs::create_directories(fs::path(dir_) / "flight");
  // Continue the id sequence after the largest committed record, corrupt or
  // not — ids must never be reused, even for jobs we can no longer decode.
  for (const auto& entry : fs::directory_iterator(fs::path(dir_) / "jobs")) {
    const std::string name = entry.path().filename().string();
    std::uint64_t id = 0;
    if (std::sscanf(name.c_str(), "job-%lu.rec", &id) == 1)
      next_id_ = std::max(next_id_, id + 1);
  }
}

std::uint64_t JobStore::allocate_id() { return next_id_++; }

std::string JobStore::record_path(std::uint64_t id) const {
  return (fs::path(dir_) / "jobs" / ("job-" + std::to_string(id) + ".rec"))
      .string();
}

std::string JobStore::checkpoint_dir(std::uint64_t id) const {
  return (fs::path(dir_) / "ckpt" / ("job-" + std::to_string(id))).string();
}

void JobStore::put(const JobRecord& rec) {
  const std::vector<std::byte> buf = encode_record(rec);
  const fs::path committed = record_path(rec.id);
  const fs::path tmp = committed.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    PEACHY_REQUIRE(out, "cannot open job record temp file " << tmp.string());
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
    out.flush();
    PEACHY_REQUIRE(out, "short write to job record " << tmp.string());
  }
  std::error_code ec;
  fs::rename(tmp, committed, ec);
  PEACHY_REQUIRE(!ec, "cannot commit job record " << committed.string() << ": "
                                                  << ec.message());
}

std::optional<JobRecord> JobStore::get(std::uint64_t id) const {
  const auto buf = read_file(record_path(id));
  if (!buf) return std::nullopt;
  try {
    return decode_record(*buf);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::vector<JobRecord> JobStore::load_all() {
  corrupt_skipped_ = 0;
  std::vector<JobRecord> records;
  for (const auto& entry : fs::directory_iterator(fs::path(dir_) / "jobs")) {
    const std::string name = entry.path().filename().string();
    std::uint64_t id = 0;
    if (std::sscanf(name.c_str(), "job-%lu.rec", &id) != 1) continue;
    const auto buf = read_file(entry.path());
    if (!buf) {
      ++corrupt_skipped_;
      continue;
    }
    try {
      records.push_back(decode_record(*buf));
    } catch (const std::exception&) {
      ++corrupt_skipped_;
    }
  }
  std::sort(records.begin(), records.end(),
            [](const JobRecord& a, const JobRecord& b) { return a.id < b.id; });
  return records;
}

void JobStore::erase(std::uint64_t id) {
  std::error_code ec;
  fs::remove(record_path(id), ec);
}

void JobStore::remove_checkpoint(std::uint64_t id) {
  std::error_code ec;
  fs::remove_all(checkpoint_dir(id), ec);
}

std::string JobStore::flight_dir(std::uint64_t id) const {
  return (fs::path(dir_) / "flight" / ("job-" + std::to_string(id))).string();
}

void JobStore::remove_flight(std::uint64_t id) {
  std::error_code ec;
  fs::remove_all(flight_dir(id), ec);
}

}  // namespace peachy::svc
