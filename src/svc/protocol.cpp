#include "svc/protocol.hpp"

#include <cstring>

#include "core/error.hpp"

namespace peachy::svc {

void append_string(std::vector<std::byte>& out, const std::string& s) {
  net::append_u32(out, static_cast<std::uint32_t>(s.size()));
  const auto* bytes = reinterpret_cast<const std::byte*>(s.data());
  out.insert(out.end(), bytes, bytes + s.size());
}

std::string read_string(const std::byte*& p, const std::byte* end) {
  const std::uint32_t n = net::read_u32(p, end);
  PEACHY_REQUIRE(static_cast<std::size_t>(end - p) >= n,
                 "truncated string payload (wants " << n << " bytes, has "
                                                    << (end - p) << ")");
  std::string s(n, '\0');
  if (n > 0) std::memcpy(s.data(), p, n);
  p += n;
  return s;
}

void append_status(std::vector<std::byte>& out, const JobStatus& s) {
  net::append_u64(out, s.id);
  net::append_u32(out, static_cast<std::uint32_t>(s.state));
  net::append_u32(out, static_cast<std::uint32_t>(s.kind));
  append_string(out, s.tenant);
  append_string(out, s.name);
  append_string(out, s.error);
  net::append_u32(out, s.restarts);
  net::append_u64(out, s.peak_rss_bytes);
  net::append_u32(out, s.has_result ? 1 : 0);
}

JobStatus read_status(const std::byte*& p, const std::byte* end) {
  JobStatus s;
  s.id = net::read_u64(p, end);
  s.state = static_cast<JobState>(net::read_u32(p, end));
  s.kind = static_cast<JobKind>(net::read_u32(p, end));
  s.tenant = read_string(p, end);
  s.name = read_string(p, end);
  s.error = read_string(p, end);
  s.restarts = net::read_u32(p, end);
  s.peak_rss_bytes = net::read_u64(p, end);
  s.has_result = net::read_u32(p, end) != 0;
  return s;
}

void append_briefs(std::vector<std::byte>& out,
                   const std::vector<JobBrief>& briefs) {
  net::append_u32(out, static_cast<std::uint32_t>(briefs.size()));
  for (const JobBrief& b : briefs) {
    net::append_u64(out, b.id);
    net::append_u32(out, static_cast<std::uint32_t>(b.kind));
    net::append_u32(out, static_cast<std::uint32_t>(b.state));
    append_string(out, b.tenant);
    append_string(out, b.name);
  }
}

std::vector<JobBrief> read_briefs(const std::byte*& p, const std::byte* end) {
  const std::uint32_t n = net::read_u32(p, end);
  std::vector<JobBrief> briefs;
  briefs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    JobBrief b;
    b.id = net::read_u64(p, end);
    b.kind = static_cast<JobKind>(net::read_u32(p, end));
    b.state = static_cast<JobState>(net::read_u32(p, end));
    b.tenant = read_string(p, end);
    b.name = read_string(p, end);
    briefs.push_back(std::move(b));
  }
  return briefs;
}

void append_stats(std::vector<std::byte>& out, const ServiceStats& s) {
  net::append_u32(out, s.queued);
  net::append_u32(out, s.running);
  net::append_u32(out, s.pool_ranks);
  net::append_u32(out, s.busy_ranks);
  net::append_u64(out, s.submitted);
  net::append_u64(out, s.completed);
  net::append_u64(out, s.rejected);
}

ServiceStats read_stats(const std::byte*& p, const std::byte* end) {
  ServiceStats s;
  s.queued = net::read_u32(p, end);
  s.running = net::read_u32(p, end);
  s.pool_ranks = net::read_u32(p, end);
  s.busy_ranks = net::read_u32(p, end);
  s.submitted = net::read_u64(p, end);
  s.completed = net::read_u64(p, end);
  s.rejected = net::read_u64(p, end);
  return s;
}

}  // namespace peachy::svc
