// peachyd — the always-on multi-tenant job service (ROADMAP item; see
// DESIGN.md "Job service" for the full state machine and queue format).
//
// Thread shape:
//   * listener   — accepts client connections (poll + wake pipe, the
//                  rendezvous/metrics-server discipline), handles one
//                  framed request per connection inline. Requests are
//                  cheap (a lock, at most one record write); job
//                  execution never happens on this thread.
//   * dispatcher — waits for (job queued) && (pool ranks free) && (not
//                  paused), asks the FairShareScheduler for the next id,
//                  commits QUEUED -> RUNNING, reserves the gang's ranks
//                  from the budget, and hands the job to an executor.
//   * executors  — one short-lived thread per dispatched job; runs the
//                  mpp world on the shared RankPool and commits the
//                  terminal record. The pool bounds actual parallelism;
//                  executor threads mostly sit inside run_gang.
//
// Durability protocol: a submit is acknowledged only after its QUEUED
// record is committed (write-tmp + rename), so an acknowledged job
// survives any daemon death. Every state transition rewrites the record
// before the daemon acts on it; the checkpoint directory of a terminal
// job is removed only *after* the terminal record is committed, so a
// crash between the two re-runs at worst a finished job, never loses one.
//
// Startup recovery: load every record; terminal jobs go to the in-memory
// table (status/result stay queryable), QUEUED jobs re-enter the
// scheduler, RUNNING jobs — the ones a dead daemon was executing — are
// demoted to QUEUED with restarts+1 and resume from their named
// checkpoint directory when re-dispatched.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "mpp/pool.hpp"
#include "net/socket.hpp"
#include "svc/job.hpp"
#include "svc/protocol.hpp"
#include "svc/queue.hpp"
#include "svc/scheduler.hpp"

namespace peachy::obs {
class MetricsServer;
}

namespace peachy::svc {

struct DaemonOptions {
  std::string host = "127.0.0.1";
  int port = 0;            ///< 0 = ephemeral; read back with port()
  std::string state_dir;   ///< queue + checkpoint root (required)
  int pool_ranks = 8;      ///< shared rank-pool capacity
  int max_queued = 64;     ///< admission: global queue-depth cap
  int max_queued_per_tenant = 32;
  /// "alice=3,bob=1" — fair-share weights; unlisted tenants weigh 1.
  std::string tenant_weights;
  /// Per-job supervision budget (world restarts within one dispatch).
  int max_restarts = 2;
  /// Substrate for jobs whose spec leaves isolation at kDefault. kThreads
  /// runs ranks on the shared pool inside the daemon; kProcess forks real
  /// workers per job (crash containment at fork cost). kDefault here
  /// means kThreads.
  Isolation default_isolation = Isolation::kThreads;
  /// Process-isolation resource fences, applied to every worker of every
  /// process-isolated job. 0 = unlimited.
  std::uint64_t rlimit_as_bytes = 0;     ///< RLIMIT_AS per worker
  std::uint64_t rlimit_cpu_seconds = 0;  ///< RLIMIT_CPU per worker
  /// Daemon-wide wall-clock cap for process-isolated jobs whose spec has
  /// deadline_ms == 0 (a spec deadline wins). 0 = unlimited. Threaded
  /// jobs cannot be deadline-killed (threads are not preemptible) — the
  /// knob is ignored for them.
  std::uint32_t job_deadline_ms = 0;
  /// Cancel/deadline escalation: SIGTERM, this grace, then SIGKILL.
  int term_grace_ms = 2000;
  /// -1 = no metrics endpoint; 0 = ephemeral port; >0 = that port.
  int metrics_port = -1;
  /// Test hook: accept and queue submissions but dispatch nothing until
  /// resume() — lets tests stage a queue and kill the daemon around it.
  bool start_paused = false;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  int port() const { return port_; }
  /// -1 when the metrics endpoint is disabled.
  int metrics_port() const;

  /// Starts dispatching (no-op unless start_paused).
  void resume();

  /// Blocks until a kShutdown request arrives (or stop() is called).
  void wait_for_shutdown();

  /// Graceful stop: close the listener, stop dispatching, let running
  /// executors finish, leave QUEUED records for the next start. Idempotent.
  void stop();

  ServiceStats stats() const;
  int recovered_queued() const { return recovered_queued_; }
  int recovered_running() const { return recovered_running_; }
  /// Cooperative-cancel flags not yet consumed by a terminal transition
  /// (tests: must drain to 0 — a leaked flag would cancel a reused id).
  int pending_cancels() const;

 private:
  void listen_loop();
  void dispatch_loop();
  void execute(std::uint64_t id);
  void handle_connection(net::Socket conn);
  /// Returns (status, reply payload) for one decoded request.
  std::pair<ReplyStatus, std::vector<std::byte>> handle_request(
      Op op, const std::vector<std::byte>& payload);
  std::pair<ReplyStatus, std::vector<std::byte>> handle_submit(
      const std::vector<std::byte>& payload);
  void bump(const std::string& name, const std::string& tenant);

  DaemonOptions options_;
  JobStore store_;
  mpp::RankPool pool_;

  mutable std::mutex mu_;
  FairShareScheduler sched_;
  std::map<std::uint64_t, JobRecord> jobs_;
  std::set<std::uint64_t> cancel_requested_;
  int busy_ranks_ = 0;
  int running_jobs_ = 0;
  bool paused_ = false;
  bool stopping_ = false;
  bool shutdown_requested_ = false;
  std::uint64_t submitted_ = 0, completed_ = 0, rejected_ = 0;
  std::condition_variable dispatch_cv_;  ///< queue/ranks/pause changed
  std::condition_variable shutdown_cv_;
  std::vector<std::thread> executors_;

  net::Socket listen_;
  int port_ = 0;
  int wake_pipe_[2] = {-1, -1};
  int recovered_queued_ = 0;
  int recovered_running_ = 0;
  std::unique_ptr<obs::MetricsServer> metrics_;
  std::thread listener_;
  std::thread dispatcher_;
};

}  // namespace peachy::svc
