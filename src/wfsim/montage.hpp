// Montage-like workflow generator (paper §IV.A: "an astronomy scientific
// workflow (738 tasks with a 7.5 GB total data footprint)", an instance of
// the Montage application).
//
// The generated DAG follows Montage's published structure:
//   L0 mProject    (N)   project each raw image
//   L1 mDiffFit    (2N)  fit overlapping projection pairs
//   L2 mConcatFit  (1)   concatenate all fits
//   L3 mBgModel    (1)   model background corrections
//   L4 mBackground (N)   apply corrections per image
//   L5 mImgtbl     (1)   build the image table
//   L6 mAdd        (1)   co-add into the mosaic
//   L7 mShrink     (S)   shrink mosaic tiles
//   L8 mJPEG       (1)   render the preview
// giving 4N + S + 5 tasks; the default (N=180, S=13) is exactly 738. File
// sizes follow Montage's relative footprint and are normalized so the total
// unique data footprint is exactly `total_bytes`.
#pragma once

#include "wfsim/workflow.hpp"

namespace peachy::wf {

/// Generator knobs.
struct MontageParams {
  int base_width = 180;      ///< N (level-0 parallelism)
  int shrink_tasks = 13;     ///< S
  double total_bytes = 7.5e9;///< normalized unique data footprint
  double flops_scale = 1.0;  ///< scales every task's work
};

/// Builds the Montage-like workflow (defaults reproduce the paper's
/// 738-task / 7.5 GB instance).
Workflow make_montage(const MontageParams& params = {});

}  // namespace peachy::wf
