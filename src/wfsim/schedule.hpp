// Power-management and placement optimization (paper §IV.B questions).
//
// Tab #1: binary searches for the minimum node count / minimum p-state that
// meet an execution-time bound, and the "boss heuristic" that combines both
// knobs; Tab #2: per-level cloud-fraction search, including the exhaustive
// optimum the paper lists as future work ("we will run our simulator to
// exhaustively evaluate all possible options so as to compute the actual
// optimal CO2 emission").
#pragma once

#include "wfsim/simulate.hpp"

namespace peachy::wf {

/// A (nodes, p-state) cluster configuration and its simulated outcome.
struct ClusterChoice {
  int nodes_on = 0;
  int pstate = 0;
  SimResult result;
  bool feasible = false;  ///< meets the deadline
};

/// Minimum number of powered-on nodes (binary search) such that the
/// all-cluster execution in `pstate` finishes within `deadline_s`.
/// Returns feasible == false if even all nodes miss the deadline.
ClusterChoice min_nodes_for_deadline(const Workflow& wf,
                                     const Platform& platform, int pstate,
                                     double deadline_s);

/// Minimum p-state (binary search; makespan is monotone in speed) such that
/// the all-cluster execution on `nodes_on` nodes meets `deadline_s`.
ClusterChoice min_pstate_for_deadline(const Workflow& wf,
                                      const Platform& platform, int nodes_on,
                                      double deadline_s);

/// The boss's combined heuristic: for every p-state, find the minimum
/// feasible node count, then return the (p-state, nodes) pair with the
/// lowest total CO2. By construction this is at least as good as either
/// single-knob optimization.
ClusterChoice combined_power_heuristic(const Workflow& wf,
                                       const Platform& platform,
                                       double deadline_s);

/// Result of a cloud-placement search.
struct CloudSearchResult {
  std::vector<double> fractions;  ///< per-level cloud fraction
  SimResult result;
  std::size_t evaluated = 0;      ///< simulations run
};

/// Exhaustively evaluates every combination of the given per-level cloud
/// fractions (grid^num_levels simulations) and returns the CO2-minimal one.
/// `grid` values must lie in [0,1].
CloudSearchResult exhaustive_cloud_search(const Workflow& wf,
                                          const Platform& platform,
                                          int nodes_on, int pstate,
                                          const std::vector<double>& grid);

/// Hill-climbing refinement around `start`: repeatedly tries moving one
/// level's fraction by ±step (clamped to [0,1]) and keeps strict CO2
/// improvements until a local optimum is reached.
CloudSearchResult refine_cloud_fractions(const Workflow& wf,
                                         const Platform& platform,
                                         int nodes_on, int pstate,
                                         std::vector<double> start,
                                         double step = 0.25);

// --- Per-task placement search -------------------------------------------
//
// The space the paper calls NP-complete is per-*task* placement (2^738
// options for the Montage instance), of which per-level fractions are a
// tiny slice. These optimizers search the full space heuristically.

/// Result of a per-task placement search.
struct PlacementSearchResult {
  Placement placement;
  SimResult result;
  std::size_t evaluated = 0;  ///< simulations run
};

/// Best-improvement local search over single-task site flips: in each pass
/// evaluates flipping every task's site and applies the flip with the
/// largest CO2 reduction; stops at a local optimum or after `max_passes`.
PlacementSearchResult per_task_local_search(const Workflow& wf,
                                            const Platform& platform,
                                            int nodes_on, int pstate,
                                            Placement start,
                                            int max_passes = 8);

/// Simulated-annealing knobs.
struct AnnealParams {
  int iterations = 4000;
  double initial_temperature = 0;  ///< 0 = auto (5% of start CO2)
  double cooling = 0.9985;         ///< geometric cooling per iteration
  std::uint64_t seed = 1;
};

/// Simulated annealing over per-task placements (random single-task
/// flips; worse moves accepted with exp(-dCO2/T)). Deterministic in the
/// seed. Returns the best placement visited.
PlacementSearchResult anneal_placement(const Workflow& wf,
                                       const Platform& platform, int nodes_on,
                                       int pstate, Placement start,
                                       const AnnealParams& params = {});

}  // namespace peachy::wf
