// Workflow execution simulation with energy & carbon accounting (paper §IV).
//
// The execution model mirrors the EduWRENCH activity:
//  * the local cluster runs `nodes_on` single-task nodes, all in one p-state
//    (the assignment's simplifying homogeneity assumption);
//  * the cloud runs a fixed number of single-task VMs;
//  * every file lives at one or both sites; a task placed at a site first
//    pulls its missing inputs through the shared link (FIFO store-and-
//    forward: latency + bytes/bandwidth per file, one transfer at a time);
//    outputs are written to the executing site's storage — hence the data
//    locality the assignment highlights (a cloud child of a cloud parent
//    transfers nothing);
//  * ready tasks are dispatched FIFO (by task id) per site;
//  * energy: cluster busy time is billed at the p-state's busy draw, the
//    remaining powered-on time at idle draw; VM busy time at VM draw. CO2 =
//    energy x site carbon intensity.
#pragma once

#include "wfsim/platform.hpp"
#include "wfsim/workflow.hpp"

namespace peachy::wf {

/// Where a task runs.
enum class Site { kCluster, kCloud };

/// Per-task placement decisions.
class Placement {
 public:
  Placement() = default;

  /// Every task on one site.
  static Placement all(const Workflow& wf, Site site);

  /// Per-level cloud fractions: within level l, the first
  /// round(fraction[l] * level_size) tasks (id order) go to the cloud.
  /// `fractions` may be shorter than the level count (missing = 0).
  static Placement level_fractions(const Workflow& wf,
                                   const std::vector<double>& fractions);

  Site site_of(int task_id) const {
    return sites_.empty() ? Site::kCluster
                          : sites_.at(static_cast<std::size_t>(task_id));
  }
  void set(int task_id, Site site) {
    sites_.at(static_cast<std::size_t>(task_id)) = site;
  }
  bool empty() const { return sites_.empty(); }
  int cloud_task_count() const;

 private:
  std::vector<Site> sites_;
};

/// One simulated execution's configuration.
struct RunConfig {
  int nodes_on = 64;   ///< powered-on cluster nodes (0 allowed if all-cloud)
  int pstate = 6;      ///< p-state of every powered-on node
  Placement placement; ///< empty = everything on the cluster
  /// Heterogeneous extension (lifts the assignment's "all powered-on nodes
  /// operate in the same p-state" simplification): when non-empty, entry i
  /// is node i's p-state and must have exactly nodes_on entries; `pstate`
  /// is ignored. The dispatcher always grabs the fastest free node.
  std::vector<int> node_pstates;
};

/// Observables the assignment asks students to read off the simulator.
struct SimResult {
  double makespan_s = 0;
  double cluster_energy_j = 0;
  double cloud_energy_j = 0;
  double cluster_gco2 = 0;
  double cloud_gco2 = 0;
  double total_gco2 = 0;
  double cluster_busy_node_s = 0;
  double cloud_busy_vm_s = 0;
  double link_busy_s = 0;
  double transferred_bytes = 0;
  std::int64_t transfers = 0;
  int tasks_on_cluster = 0;
  int tasks_on_cloud = 0;
};

/// Simulates one workflow execution. Throws peachy::Error if the
/// configuration cannot run (e.g. cluster tasks with zero powered nodes or
/// an out-of-range p-state).
SimResult simulate(const Workflow& wf, const Platform& platform,
                   const RunConfig& config);

/// Convenience: parallel speedup and efficiency of `result` against the
/// same workload on one cluster node in the same p-state.
struct SpeedupReport {
  double t1_s = 0;
  double tn_s = 0;
  double speedup = 0;
  double efficiency = 0;
};
SpeedupReport speedup_vs_one_node(const Workflow& wf, const Platform& platform,
                                  const RunConfig& config);

}  // namespace peachy::wf
