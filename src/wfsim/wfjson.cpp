#include "wfsim/wfjson.hpp"

#include <fstream>
#include <map>
#include <sstream>

namespace peachy::wf {

json::Value to_json(const Workflow& wf, const std::string& name) {
  json::Array files;
  for (const File& f : wf.files()) {
    json::Object file;
    file["name"] = f.name;
    file["sizeInBytes"] = f.bytes;
    files.push_back(json::Value(std::move(file)));
  }
  json::Array tasks;
  for (const Task& t : wf.tasks()) {
    json::Object task;
    task["name"] = t.name;
    task["runtimeInFlops"] = t.flops;
    json::Array inputs, outputs;
    for (int fid : t.inputs) inputs.push_back(wf.file(fid).name);
    for (int fid : t.outputs) outputs.push_back(wf.file(fid).name);
    task["inputFiles"] = json::Value(std::move(inputs));
    task["outputFiles"] = json::Value(std::move(outputs));
    tasks.push_back(json::Value(std::move(task)));
  }
  json::Object doc;
  doc["name"] = name;
  doc["files"] = json::Value(std::move(files));
  doc["tasks"] = json::Value(std::move(tasks));
  return json::Value(std::move(doc));
}

Workflow from_json(const json::Value& doc) {
  WorkflowBuilder builder;
  std::map<std::string, int> file_ids;
  for (const json::Value& fv : doc.at("files").as_array()) {
    const std::string& name = fv.at("name").as_string();
    PEACHY_REQUIRE(!file_ids.count(name), "duplicate file name " << name);
    file_ids[name] =
        builder.add_file(name, fv.at("sizeInBytes").as_number());
  }
  auto resolve = [&file_ids](const json::Value& names) {
    std::vector<int> ids;
    for (const json::Value& nv : names.as_array()) {
      const auto it = file_ids.find(nv.as_string());
      PEACHY_REQUIRE(it != file_ids.end(),
                     "task references unknown file " << nv.as_string());
      ids.push_back(it->second);
    }
    return ids;
  };
  for (const json::Value& tv : doc.at("tasks").as_array()) {
    builder.add_task(tv.at("name").as_string(),
                     tv.at("runtimeInFlops").as_number(),
                     resolve(tv.at("inputFiles")),
                     resolve(tv.at("outputFiles")));
  }
  return builder.build();
}

void save_workflow(const Workflow& wf, const std::string& path,
                   const std::string& name) {
  std::ofstream os(path);
  PEACHY_REQUIRE(os.good(), "cannot open " << path << " for writing");
  os << to_json(wf, name).dump(/*indent=*/true) << "\n";
  PEACHY_REQUIRE(os.good(), "write failed for " << path);
}

Workflow load_workflow(const std::string& path) {
  std::ifstream is(path);
  PEACHY_REQUIRE(is.good(), "cannot open " << path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return from_json(json::parse(buffer.str()));
}

}  // namespace peachy::wf
