#include "wfsim/workflow.hpp"

#include <algorithm>
#include <deque>
#include <set>

namespace peachy::wf {

const std::vector<int>& Workflow::tasks_in_level(int level) const {
  PEACHY_REQUIRE(level >= 0 && level < num_levels_,
                 "level " << level << " out of [0," << num_levels_ << ")");
  return levels_[static_cast<std::size_t>(level)];
}

double Workflow::total_flops() const {
  double total = 0;
  for (const Task& t : tasks_) total += t.flops;
  return total;
}

double Workflow::total_bytes() const {
  double total = 0;
  for (const File& f : files_) total += f.bytes;
  return total;
}

int Workflow::width() const {
  int w = 0;
  for (const auto& lvl : levels_) w = std::max(w, static_cast<int>(lvl.size()));
  return w;
}

int WorkflowBuilder::add_file(std::string name, double bytes) {
  PEACHY_REQUIRE(bytes >= 0, "file " << name << " has negative size");
  File f;
  f.id = static_cast<int>(wf_.files_.size());
  f.name = std::move(name);
  f.bytes = bytes;
  wf_.files_.push_back(std::move(f));
  return wf_.files_.back().id;
}

int WorkflowBuilder::add_task(std::string name, double flops,
                              std::vector<int> inputs,
                              std::vector<int> outputs) {
  PEACHY_REQUIRE(flops >= 0, "task " << name << " has negative work");
  const int id = static_cast<int>(wf_.tasks_.size());
  for (int fid : inputs)
    PEACHY_REQUIRE(fid >= 0 && fid < wf_.num_files(),
                   "task " << name << " reads unknown file " << fid);
  for (int fid : outputs) {
    PEACHY_REQUIRE(fid >= 0 && fid < wf_.num_files(),
                   "task " << name << " writes unknown file " << fid);
    File& f = wf_.files_[static_cast<std::size_t>(fid)];
    PEACHY_REQUIRE(f.producer == -1, "file " << f.name
                                             << " has two producers: task "
                                             << f.producer << " and " << name);
    f.producer = id;
  }
  Task t;
  t.id = id;
  t.name = std::move(name);
  t.flops = flops;
  t.inputs = std::move(inputs);
  t.outputs = std::move(outputs);
  wf_.tasks_.push_back(std::move(t));
  return id;
}

Workflow WorkflowBuilder::build() {
  PEACHY_REQUIRE(!wf_.tasks_.empty(), "workflow has no tasks");

  // Record consumers; derive parent/child task relations via files.
  for (File& f : wf_.files_) f.consumers.clear();
  for (Task& t : wf_.tasks_) {
    t.parents.clear();
    t.children.clear();
  }
  for (Task& t : wf_.tasks_)
    for (int fid : t.inputs)
      wf_.files_[static_cast<std::size_t>(fid)].consumers.push_back(t.id);
  for (Task& t : wf_.tasks_) {
    std::set<int> parents;
    for (int fid : t.inputs) {
      const int producer = wf_.files_[static_cast<std::size_t>(fid)].producer;
      if (producer >= 0 && producer != t.id) parents.insert(producer);
    }
    t.parents.assign(parents.begin(), parents.end());
    for (int p : t.parents)
      wf_.tasks_[static_cast<std::size_t>(p)].children.push_back(t.id);
  }

  // Topological levels (longest path from an entry task); also detects
  // cycles: if the queue drains before visiting every task, there is one.
  std::vector<int> pending(wf_.tasks_.size());
  std::deque<int> ready;
  for (const Task& t : wf_.tasks_) {
    pending[static_cast<std::size_t>(t.id)] = static_cast<int>(t.parents.size());
    if (t.parents.empty()) ready.push_back(t.id);
  }
  std::size_t visited = 0;
  int max_level = 0;
  while (!ready.empty()) {
    const int id = ready.front();
    ready.pop_front();
    ++visited;
    Task& t = wf_.tasks_[static_cast<std::size_t>(id)];
    max_level = std::max(max_level, t.level);
    for (int c : t.children) {
      Task& child = wf_.tasks_[static_cast<std::size_t>(c)];
      child.level = std::max(child.level, t.level + 1);
      if (--pending[static_cast<std::size_t>(c)] == 0) ready.push_back(c);
    }
  }
  PEACHY_REQUIRE(visited == wf_.tasks_.size(),
                 "workflow has a dependency cycle (" << visited << " of "
                                                     << wf_.tasks_.size()
                                                     << " tasks reachable)");

  wf_.num_levels_ = max_level + 1;
  wf_.levels_.assign(static_cast<std::size_t>(wf_.num_levels_), {});
  for (const Task& t : wf_.tasks_)
    wf_.levels_[static_cast<std::size_t>(t.level)].push_back(t.id);

  return std::move(wf_);
}

}  // namespace peachy::wf
