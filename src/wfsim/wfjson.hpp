// Workflow import/export in a WfCommons-style JSON schema.
//
// Real workflow research exchanges DAGs as JSON instances (wfcommons.org);
// this adapter lets the simulator consume externally described workflows
// and publish the generated Montage instance:
//
// {
//   "name": "...",
//   "files": [ {"name": "f", "sizeInBytes": 123}, ... ],
//   "tasks": [ {"name": "t", "runtimeInFlops": 1e9,
//               "inputFiles": ["f"], "outputFiles": ["g"]}, ... ]
// }
#pragma once

#include <string>

#include "core/json.hpp"
#include "wfsim/workflow.hpp"

namespace peachy::wf {

/// Serializes a workflow to the JSON schema above.
json::Value to_json(const Workflow& wf, const std::string& name = "workflow");

/// Builds a workflow from the JSON schema above (file references by name).
/// Throws peachy::Error on schema violations (unknown file names, duplicate
/// producers, cycles).
Workflow from_json(const json::Value& doc);

/// Convenience: write/read a workflow JSON file.
void save_workflow(const Workflow& wf, const std::string& path,
                   const std::string& name = "workflow");
Workflow load_workflow(const std::string& path);

}  // namespace peachy::wf
