#include "wfsim/platform.hpp"

#include <cmath>

namespace peachy::wf {

machine::Machine eduwrench_machine() {
  machine::Machine m;

  machine::NodeGroup cluster;
  cluster.name = "cluster";
  cluster.nodes = 64;
  cluster.sockets_per_node = 1;
  cluster.cores_per_socket = 1;
  // Speed scales linearly with clock (1.0 .. 2.2 GHz at 10 Gflop/s per
  // GHz) — the seven DVFS states of the assignment's nodes.
  cluster.core_gflops = 10.0;
  for (int i = 0; i < 7; ++i) cluster.core_clock_states.push_back(1.0 + 0.2 * i);
  // Representative LAN-class edges; the wf::Platform adapter does not read
  // these (§IV treats the cluster interconnect as free), but the machine
  // model needs a complete description for routing and validation.
  cluster.l3 = {200e9, 20e-9};
  cluster.membus = {25e9, 90e-9};
  cluster.nic = {1.25e9, 50e-6};
  m.groups.push_back(cluster);

  machine::NodeGroup cloud;
  cloud.name = "cloud";
  cloud.nodes = 16;
  cloud.sockets_per_node = 1;
  cloud.cores_per_socket = 1;
  cloud.core_gflops = 14;
  cloud.l3 = {200e9, 20e-9};
  cloud.membus = {25e9, 90e-9};
  cloud.nic = {1.25e9, 50e-6};
  // The 1 Gbit/s WAN link between the organization and the cloud.
  cloud.uplink = {125e6, 0.010};
  m.groups.push_back(cloud);

  m.fabric = {1.25e9, 0.5e-6};
  m.validate();
  return m;
}

Platform platform_from_machine(const machine::Machine& m,
                               const EnergyModel& energy) {
  m.validate();
  const machine::NodeGroup& cluster = m.group("cluster");
  const machine::NodeGroup& cloud = m.group("cloud");
  PEACHY_REQUIRE(cloud.has_uplink(),
                 "cloud group needs an uplink (the WAN link)");

  Platform p;
  p.cluster.total_nodes = cluster.nodes;
  p.cluster.idle_watts = energy.cluster_idle_watts;
  p.cluster.gco2_per_kwh = energy.cluster_gco2_per_kwh;
  p.cluster.pstates.clear();
  // One p-state per clock multiplier; dynamic power grows superlinearly
  // (~f^2.5), the standard DVFS shape that makes downclocking save energy
  // per flop. A machine without clock states gets a single nominal state.
  std::vector<double> clocks = cluster.core_clock_states;
  if (clocks.empty()) clocks.push_back(1.0);
  for (const double clock : clocks) {
    PState ps;
    ps.gflops = cluster.core_gflops * clock;
    ps.busy_watts =
        energy.cluster_idle_watts +
        energy.cluster_dynamic_watts *
            std::pow(clock, energy.cluster_power_exponent);
    p.cluster.pstates.push_back(ps);
  }
  p.cloud.vms = cloud.nodes;
  p.cloud.vm_gflops = cloud.core_gflops;
  p.cloud.vm_busy_watts = energy.vm_busy_watts;
  p.cloud.gco2_per_kwh = energy.cloud_gco2_per_kwh;
  p.link.bytes_per_s = cloud.uplink.bytes_per_s;
  p.link.latency_s = cloud.uplink.latency_s;
  return p;
}

Platform eduwrench_platform() {
  return platform_from_machine(eduwrench_machine());
}

}  // namespace peachy::wf
