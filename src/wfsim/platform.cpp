#include "wfsim/platform.hpp"

#include <cmath>

namespace peachy::wf {

Platform eduwrench_platform() {
  Platform p;
  p.cluster.total_nodes = 64;
  p.cluster.idle_watts = 95;
  p.cluster.gco2_per_kwh = 291;
  // Seven p-states: speed scales linearly with clock (1.0 .. 2.2 GHz at
  // 10 Gflop/s per GHz); dynamic power grows superlinearly (~f^2.5), the
  // standard DVFS shape that makes downclocking save energy per flop.
  p.cluster.pstates.clear();
  for (int i = 0; i < 7; ++i) {
    const double clock = 1.0 + 0.2 * i;  // GHz
    PState ps;
    ps.gflops = 10.0 * clock;
    ps.busy_watts = p.cluster.idle_watts + 30.0 * std::pow(clock, 2.5);
    p.cluster.pstates.push_back(ps);
  }
  p.cloud.vms = 16;
  p.cloud.vm_gflops = 14;
  p.cloud.vm_busy_watts = 150;
  p.cloud.gco2_per_kwh = 25;
  p.link.bytes_per_s = 125e6;
  p.link.latency_s = 0.010;
  return p;
}

}  // namespace peachy::wf
