#include "wfsim/montage.hpp"

#include <string>

namespace peachy::wf {

namespace {
// Relative file sizes (MB) and per-task work (Gflop), following Montage's
// footprint shape; sizes are normalized to MontageParams::total_bytes.
constexpr double kRawMb = 12.0, kProjMb = 13.0, kFitMb = 0.15;
constexpr double kConcatMb = 1.0, kCorrTableMb = 1.0, kCorrImgMb = 13.0;
constexpr double kTableMb = 1.0, kMosaicMb = 500.0, kShrunkMb = 8.0;
constexpr double kJpegMb = 5.0;

constexpr double kProjectGf = 400, kDiffGf = 40, kConcatGf = 50;
constexpr double kBgModelGf = 400, kBackgroundGf = 150, kImgtblGf = 20;
constexpr double kAddGf = 600, kShrinkGf = 40, kJpegGf = 25;
}  // namespace

Workflow make_montage(const MontageParams& p) {
  PEACHY_REQUIRE(p.base_width >= 2, "montage needs base_width >= 2");
  PEACHY_REQUIRE(p.shrink_tasks >= 1, "montage needs shrink_tasks >= 1");
  PEACHY_REQUIRE(p.total_bytes > 0 && p.flops_scale > 0,
                 "montage sizes must be positive");
  const int n = p.base_width;

  // First pass: compute the un-normalized footprint to derive the scale.
  const double raw_total_mb =
      n * kRawMb + n * kProjMb + 2.0 * n * kFitMb + kConcatMb + kCorrTableMb +
      n * kCorrImgMb + kTableMb + kMosaicMb + p.shrink_tasks * kShrunkMb +
      kJpegMb;
  const double bytes_per_mb = p.total_bytes / raw_total_mb;
  auto sz = [bytes_per_mb](double mb) { return mb * bytes_per_mb; };
  auto gf = [&p](double gflop) { return gflop * 1e9 * p.flops_scale; };

  WorkflowBuilder b;

  // L0: mProject
  std::vector<int> raw(n), proj(n);
  for (int i = 0; i < n; ++i)
    raw[static_cast<std::size_t>(i)] =
        b.add_file("raw_" + std::to_string(i) + ".fits", sz(kRawMb));
  for (int i = 0; i < n; ++i)
    proj[static_cast<std::size_t>(i)] =
        b.add_file("proj_" + std::to_string(i) + ".fits", sz(kProjMb));
  for (int i = 0; i < n; ++i)
    b.add_task("mProject_" + std::to_string(i), gf(kProjectGf),
               {raw[static_cast<std::size_t>(i)]},
               {proj[static_cast<std::size_t>(i)]});

  // L1: mDiffFit — two overlap fits per image (ring neighbourhoods).
  std::vector<int> fits(static_cast<std::size_t>(2 * n));
  for (int i = 0; i < 2 * n; ++i)
    fits[static_cast<std::size_t>(i)] =
        b.add_file("fit_" + std::to_string(i) + ".tbl", sz(kFitMb));
  for (int i = 0; i < 2 * n; ++i) {
    const int a = i % n;
    const int bidx = (a + 1 + i / n) % n;  // neighbour at distance 1 or 2
    b.add_task("mDiffFit_" + std::to_string(i), gf(kDiffGf),
               {proj[static_cast<std::size_t>(a)],
                proj[static_cast<std::size_t>(bidx)]},
               {fits[static_cast<std::size_t>(i)]});
  }

  // L2: mConcatFit
  const int concat = b.add_file("fits_concat.tbl", sz(kConcatMb));
  b.add_task("mConcatFit", gf(kConcatGf), fits, {concat});

  // L3: mBgModel
  const int corrections = b.add_file("corrections.tbl", sz(kCorrTableMb));
  b.add_task("mBgModel", gf(kBgModelGf), {concat}, {corrections});

  // L4: mBackground
  std::vector<int> corrected(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    corrected[static_cast<std::size_t>(i)] =
        b.add_file("corr_" + std::to_string(i) + ".fits", sz(kCorrImgMb));
  for (int i = 0; i < n; ++i)
    b.add_task("mBackground_" + std::to_string(i), gf(kBackgroundGf),
               {proj[static_cast<std::size_t>(i)], corrections},
               {corrected[static_cast<std::size_t>(i)]});

  // L5: mImgtbl
  const int table = b.add_file("images.tbl", sz(kTableMb));
  b.add_task("mImgtbl", gf(kImgtblGf), corrected, {table});

  // L6: mAdd
  const int mosaic = b.add_file("mosaic.fits", sz(kMosaicMb));
  {
    std::vector<int> inputs = corrected;
    inputs.push_back(table);
    b.add_task("mAdd", gf(kAddGf), inputs, {mosaic});
  }

  // L7: mShrink
  std::vector<int> shrunk(static_cast<std::size_t>(p.shrink_tasks));
  for (int i = 0; i < p.shrink_tasks; ++i)
    shrunk[static_cast<std::size_t>(i)] =
        b.add_file("shrunk_" + std::to_string(i) + ".fits", sz(kShrunkMb));
  for (int i = 0; i < p.shrink_tasks; ++i)
    b.add_task("mShrink_" + std::to_string(i), gf(kShrinkGf), {mosaic},
               {shrunk[static_cast<std::size_t>(i)]});

  // L8: mJPEG
  const int jpeg = b.add_file("mosaic.jpg", sz(kJpegMb));
  b.add_task("mJPEG", gf(kJpegGf), shrunk, {jpeg});

  return b.build();
}

}  // namespace peachy::wf
