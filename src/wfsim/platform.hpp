// Platform model for the carbon-footprint assignment (paper §IV.B).
//
// Tab #1: a 64-node local cluster powered by a 291 gCO2e/kWh plant; nodes
// can be powered off, and powered-on nodes all run in one of seven p-states
// trading speed for power.
// Tab #2: 16 virtual machines on a remote green cloud, reachable through a
// bandwidth-limited link; the cloud has its own storage (data locality).
//
// The paper gives the cluster size, p-state count, carbon intensity, VM
// count and the qualitative trade-offs; the remaining constants below are
// our calibration (documented in DESIGN.md/EXPERIMENTS.md) chosen so the
// assignment's answers keep their published shape: the highest-performance
// baseline lands well under the 3-minute bound, single-knob optimizations
// (power off / downclock) both work, and their combination wins.
#pragma once

#include <vector>

#include "core/error.hpp"

namespace peachy::wf {

/// One processor power state.
struct PState {
  double gflops = 0;      ///< compute speed of a node in this state
  double busy_watts = 0;  ///< node power draw while computing
};

/// The local cluster.
struct ClusterConfig {
  int total_nodes = 64;
  std::vector<PState> pstates;  ///< index 0 = slowest/lowest power
  double idle_watts = 95;       ///< draw of a powered-on idle node
  double gco2_per_kwh = 291;    ///< non-green power plant
};

/// The remote green cloud.
struct CloudConfig {
  int vms = 16;
  double vm_gflops = 14;
  double vm_busy_watts = 150;
  double gco2_per_kwh = 25;  ///< green, but not literally zero
};

/// How concurrent transfers share the wide-area link.
enum class LinkSharing {
  kFifo,       ///< store-and-forward: one transfer at a time, full rate
  kFairShare,  ///< progressive fair sharing (SimGrid-style): n concurrent
               ///< transfers each progress at bandwidth/n
};

/// The wide-area link between the organization and the cloud.
struct LinkConfig {
  double bytes_per_s = 125e6;  ///< 1 Gbit/s
  double latency_s = 0.010;
  LinkSharing sharing = LinkSharing::kFifo;
};

struct Platform {
  ClusterConfig cluster;
  CloudConfig cloud;
  LinkConfig link;

  int num_pstates() const { return static_cast<int>(cluster.pstates.size()); }
  int max_pstate() const { return num_pstates() - 1; }
};

/// The assignment's platform: 64 nodes, 7 p-states (10..22 Gflop/s with
/// superlinear dynamic power), 16 green VMs, 1 Gbit/s link.
Platform eduwrench_platform();

}  // namespace peachy::wf
