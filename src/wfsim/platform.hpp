// Platform model for the carbon-footprint assignment (paper §IV.B).
//
// Tab #1: a 64-node local cluster powered by a 291 gCO2e/kWh plant; nodes
// can be powered off, and powered-on nodes all run in one of seven p-states
// trading speed for power.
// Tab #2: 16 virtual machines on a remote green cloud, reachable through a
// bandwidth-limited link; the cloud has its own storage (data locality).
//
// The paper gives the cluster size, p-state count, carbon intensity, VM
// count and the qualitative trade-offs; the remaining constants below are
// our calibration (documented in DESIGN.md/EXPERIMENTS.md) chosen so the
// assignment's answers keep their published shape: the highest-performance
// baseline lands well under the 3-minute bound, single-knob optimizations
// (power off / downclock) both work, and their combination wins.
#pragma once

#include <vector>

#include "core/error.hpp"
#include "machine/machine.hpp"

namespace peachy::wf {

/// One processor power state.
struct PState {
  double gflops = 0;      ///< compute speed of a node in this state
  double busy_watts = 0;  ///< node power draw while computing
};

/// The local cluster.
struct ClusterConfig {
  int total_nodes = 64;
  std::vector<PState> pstates;  ///< index 0 = slowest/lowest power
  double idle_watts = 95;       ///< draw of a powered-on idle node
  double gco2_per_kwh = 291;    ///< non-green power plant
};

/// The remote green cloud.
struct CloudConfig {
  int vms = 16;
  double vm_gflops = 14;
  double vm_busy_watts = 150;
  double gco2_per_kwh = 25;  ///< green, but not literally zero
};

/// How concurrent transfers share the wide-area link.
enum class LinkSharing {
  kFifo,       ///< store-and-forward: one transfer at a time, full rate
  kFairShare,  ///< progressive fair sharing (SimGrid-style): n concurrent
               ///< transfers each progress at bandwidth/n
};

/// The wide-area link between the organization and the cloud.
struct LinkConfig {
  double bytes_per_s = 125e6;  ///< 1 Gbit/s
  double latency_s = 0.010;
  LinkSharing sharing = LinkSharing::kFifo;
};

struct Platform {
  ClusterConfig cluster;
  CloudConfig cloud;
  LinkConfig link;

  int num_pstates() const { return static_cast<int>(cluster.pstates.size()); }
  int max_pstate() const { return num_pstates() - 1; }
};

/// Energy/carbon calibration applied on top of a machine description when
/// deriving a wf::Platform. Speeds and link parameters come from the
/// machine model; watts and carbon intensity are a wfsim concern (the
/// machine model knows nothing about power). Defaults are the assignment's
/// published values.
struct EnergyModel {
  double cluster_idle_watts = 95;
  double cluster_dynamic_watts = 30.0;  ///< coefficient on clock^exponent
  double cluster_power_exponent = 2.5;
  double cluster_gco2_per_kwh = 291;
  double vm_busy_watts = 150;
  double cloud_gco2_per_kwh = 25;
};

/// The assignment's hardware as a hierarchical machine description: a
/// "cluster" node group (64 single-core nodes, seven DVFS clock states) and
/// a "cloud" group (16 VM nodes) reaching the fabric through the 1 Gbit/s
/// WAN uplink. Intra-cluster edges carry representative LAN values; the
/// wf::Platform adapter only reads node counts, speeds and the uplink.
machine::Machine eduwrench_machine();

/// Derives the flat wf::Platform from a machine description. Requires node
/// groups named "cluster" and "cloud"; cluster p-states come from the
/// cluster group's clock states, the WAN link from the cloud group's
/// uplink. Throws peachy::Error when either group is missing or the cloud
/// group has no uplink.
Platform platform_from_machine(const machine::Machine& m,
                               const EnergyModel& energy = {});

/// The assignment's platform: 64 nodes, 7 p-states (10..22 Gflop/s with
/// superlinear dynamic power), 16 green VMs, 1 Gbit/s link. Built as
/// `platform_from_machine(eduwrench_machine())` — the machine model is the
/// source of truth for every speed and link constant.
Platform eduwrench_platform();

}  // namespace peachy::wf
