#include "wfsim/simulate.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <set>

#include "obs/obs.hpp"
#include "sim/engine.hpp"

namespace peachy::wf {

Placement Placement::all(const Workflow& wf, Site site) {
  Placement p;
  p.sites_.assign(static_cast<std::size_t>(wf.num_tasks()), site);
  return p;
}

Placement Placement::level_fractions(const Workflow& wf,
                                     const std::vector<double>& fractions) {
  Placement p = all(wf, Site::kCluster);
  for (int level = 0; level < wf.num_levels(); ++level) {
    const double f = level < static_cast<int>(fractions.size())
                         ? fractions[static_cast<std::size_t>(level)]
                         : 0.0;
    PEACHY_REQUIRE(f >= 0.0 && f <= 1.0,
                   "cloud fraction " << f << " out of [0,1] at level " << level);
    const auto& ids = wf.tasks_in_level(level);
    const auto cutoff = static_cast<std::size_t>(
        std::llround(f * static_cast<double>(ids.size())));
    for (std::size_t i = 0; i < cutoff; ++i) p.set(ids[i], Site::kCloud);
  }
  return p;
}

int Placement::cloud_task_count() const {
  int n = 0;
  for (Site s : sites_)
    if (s == Site::kCloud) ++n;
  return n;
}

namespace {

/// Whole mutable state of one simulation.
struct SimState {
  const Workflow* wf;
  const Platform* plat;
  RunConfig cfg;
  sim::Engine engine;

  // File presence per site, and in-flight transfer tracking.
  // present[site][file], inflight[site][file] -> tasks waiting for it.
  std::vector<std::vector<bool>> present;
  std::vector<std::vector<bool>> inflight;

  // Per-task progress.
  std::vector<int> missing_parents;
  std::vector<int> missing_inputs;  // inputs not yet present at my site
  std::vector<bool> dispatched;

  // Per-site free executors and FIFO ready queues (ordered by task id for
  // determinism).
  // Cluster nodes are individual (possibly heterogeneous): free nodes are
  // kept ordered fastest-first so dispatch grabs the quickest one.
  std::vector<double> node_gflops;      // speed per powered-on node
  std::vector<double> node_busy_watts;  // draw per node while computing
  std::vector<double> node_busy_s;      // accumulated busy time per node
  std::set<std::pair<double, int>, std::greater<>> free_nodes;  // (speed, id)
  std::vector<int> task_node;           // node running each task (-1)
  int free_vms = 0;
  std::set<int> ready_cluster;
  std::set<int> ready_cloud;

  // Link state. FIFO mode uses the queue + busy flag; fair-share mode
  // tracks in-flight transfers with remaining byte counts and reschedules
  // the earliest completion whenever the active set changes (epoch-stamped
  // events stand in for cancellation).
  std::deque<std::pair<int, int>> link_queue;  // (file, dest site)
  bool link_busy = false;
  struct ActiveTransfer {
    int file;
    int dest;
    double remaining_bytes;
  };
  std::vector<ActiveTransfer> link_active;
  double link_progress_time = 0;  // sim time of the last progress update
  std::uint64_t link_epoch = 0;

  // Accounting.
  SimResult result;
  int tasks_done = 0;

  double vm_speed() const { return plat->cloud.vm_gflops * 1e9; }

  static int site_index(Site s) { return s == Site::kCluster ? 0 : 1; }

  Site site_of(int task) const { return cfg.placement.site_of(task); }

  void on_task_ready(int task);
  void try_dispatch();
  void start_task(int task);
  void request_inputs(int task);
  void start_next_transfer();
  void on_transfer_done(int file, int dest);
  void on_task_done(int task);

  // Fair-share link machinery.
  void fair_enqueue(int file, int dest);
  void fair_advance_progress();
  void fair_schedule_completion();
  void fair_on_completion_event(std::uint64_t epoch);
};

void SimState::on_task_ready(int task) {
  if (site_of(task) == Site::kCluster)
    ready_cluster.insert(task);
  else
    ready_cloud.insert(task);
  try_dispatch();
}

void SimState::try_dispatch() {
  while (!free_nodes.empty() && !ready_cluster.empty()) {
    const int task = *ready_cluster.begin();
    ready_cluster.erase(ready_cluster.begin());
    const auto fastest = *free_nodes.begin();
    free_nodes.erase(free_nodes.begin());
    task_node[static_cast<std::size_t>(task)] = fastest.second;
    request_inputs(task);
  }
  while (free_vms > 0 && !ready_cloud.empty()) {
    const int task = *ready_cloud.begin();
    ready_cloud.erase(ready_cloud.begin());
    --free_vms;
    request_inputs(task);
  }
}

// Executor already reserved; count missing inputs and enqueue transfers.
void SimState::request_inputs(int task) {
  const int si = site_index(site_of(task));
  const bool fair = plat->link.sharing == LinkSharing::kFairShare;
  int missing = 0;
  for (int fid : wf->task(task).inputs) {
    const auto f = static_cast<std::size_t>(fid);
    if (present[static_cast<std::size_t>(si)][f]) continue;
    ++missing;
    if (!inflight[static_cast<std::size_t>(si)][f]) {
      inflight[static_cast<std::size_t>(si)][f] = true;
      if (fair)
        fair_enqueue(fid, si);
      else
        link_queue.emplace_back(fid, si);
    }
  }
  missing_inputs[static_cast<std::size_t>(task)] = missing;
  if (missing == 0)
    start_task(task);
  else if (!fair)
    start_next_transfer();
}

void SimState::start_next_transfer() {
  if (link_busy || link_queue.empty()) return;
  const auto [fid, dest] = link_queue.front();
  link_queue.pop_front();
  link_busy = true;
  const double bytes = wf->file(fid).bytes;
  const double duration = plat->link.latency_s + bytes / plat->link.bytes_per_s;
  result.link_busy_s += duration;
  result.transferred_bytes += bytes;
  ++result.transfers;
  engine.schedule_in(duration,
                     [this, fid = fid, dest = dest] { on_transfer_done(fid, dest); });
}

// --- Fair-share link ------------------------------------------------------

void SimState::fair_enqueue(int file, int dest) {
  const double bytes = wf->file(file).bytes;
  result.transferred_bytes += bytes;
  ++result.transfers;
  // Latency is an upfront per-transfer delay; the payload then joins the
  // fair-shared pipe.
  engine.schedule_in(plat->link.latency_s, [this, file, dest, bytes] {
    fair_advance_progress();
    link_active.push_back(ActiveTransfer{file, dest, bytes});
    fair_schedule_completion();
  });
}

// Charges elapsed time against every in-flight transfer at the current
// fair rate and accounts link busy time.
void SimState::fair_advance_progress() {
  const double now = engine.now();
  const double elapsed = now - link_progress_time;
  link_progress_time = now;
  if (link_active.empty() || elapsed <= 0) return;
  const double rate =
      plat->link.bytes_per_s / static_cast<double>(link_active.size());
  for (ActiveTransfer& t : link_active)
    t.remaining_bytes = std::max(0.0, t.remaining_bytes - elapsed * rate);
  result.link_busy_s += elapsed;
}

void SimState::fair_schedule_completion() {
  if (link_active.empty()) return;
  double min_remaining = link_active.front().remaining_bytes;
  for (const ActiveTransfer& t : link_active)
    min_remaining = std::min(min_remaining, t.remaining_bytes);
  const double rate =
      plat->link.bytes_per_s / static_cast<double>(link_active.size());
  const std::uint64_t epoch = ++link_epoch;
  engine.schedule_in(min_remaining / rate,
                     [this, epoch] { fair_on_completion_event(epoch); });
}

void SimState::fair_on_completion_event(std::uint64_t epoch) {
  if (epoch != link_epoch) return;  // superseded by a rate change
  fair_advance_progress();
  // Deliver every transfer that finished (ties complete together).
  std::vector<ActiveTransfer> done;
  for (std::size_t i = 0; i < link_active.size();) {
    if (link_active[i].remaining_bytes <= 1e-6) {
      done.push_back(link_active[i]);
      link_active.erase(link_active.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  for (const ActiveTransfer& t : done) on_transfer_done(t.file, t.dest);
  fair_schedule_completion();
}

void SimState::on_transfer_done(int file, int dest) {
  link_busy = false;
  const auto f = static_cast<std::size_t>(file);
  present[static_cast<std::size_t>(dest)][f] = true;
  inflight[static_cast<std::size_t>(dest)][f] = false;

  // Wake dispatched tasks at `dest` waiting on this file.
  for (int consumer : wf->file(file).consumers) {
    const auto c = static_cast<std::size_t>(consumer);
    if (!dispatched[c] && missing_inputs[c] > 0 &&
        site_index(site_of(consumer)) == dest) {
      if (--missing_inputs[c] == 0) start_task(consumer);
    }
  }
  start_next_transfer();
}

void SimState::start_task(int task) {
  const auto t = static_cast<std::size_t>(task);
  PEACHY_CHECK(!dispatched[t]);
  dispatched[t] = true;
  const Site site = site_of(task);
  double speed = vm_speed();
  if (site == Site::kCluster) {
    const int node = task_node[t];
    PEACHY_CHECK(node >= 0);
    speed = node_gflops[static_cast<std::size_t>(node)] * 1e9;
  }
  const double duration = wf->task(task).flops / speed;
  if (site == Site::kCluster) {
    result.cluster_busy_node_s += duration;
    node_busy_s[static_cast<std::size_t>(task_node[t])] += duration;
    ++result.tasks_on_cluster;
  } else {
    result.cloud_busy_vm_s += duration;
    ++result.tasks_on_cloud;
  }
  if (obs::enabled()) {
    // Task lifecycle: wall timestamps order events; sim-time lives in args
    // (milliseconds, since trace args are integral).
    obs::Tracer::global().instant(
        "wf.task_start", "wfsim",
        {{"task", task},
         {"site", site == Site::kCluster ? 0 : 1},
         {"sim_ms", static_cast<std::int64_t>(engine.now() * 1e3)}});
    obs::Registry::global()
        .counter(site == Site::kCluster ? "wfsim.tasks_cluster"
                                        : "wfsim.tasks_cloud")
        .add(1);
  }
  engine.schedule_in(duration, [this, task] { on_task_done(task); });
}

void SimState::on_task_done(int task) {
  const Site site = site_of(task);
  const int si = site_index(site);
  if (obs::enabled()) {
    obs::Tracer::global().instant(
        "wf.task_done", "wfsim",
        {{"task", task},
         {"site", site == Site::kCluster ? 0 : 1},
         {"sim_ms", static_cast<std::int64_t>(engine.now() * 1e3)}});
  }
  for (int fid : wf->task(task).outputs)
    present[static_cast<std::size_t>(si)][static_cast<std::size_t>(fid)] = true;
  if (site == Site::kCluster) {
    const int node = task_node[static_cast<std::size_t>(task)];
    free_nodes.emplace(node_gflops[static_cast<std::size_t>(node)], node);
  } else {
    ++free_vms;
  }
  ++tasks_done;

  for (int child : wf->task(task).children) {
    const auto c = static_cast<std::size_t>(child);
    if (--missing_parents[c] == 0) on_task_ready(child);
  }
  try_dispatch();
}

}  // namespace

SimResult simulate(const Workflow& wf, const Platform& platform,
                   const RunConfig& config) {
  PEACHY_REQUIRE(config.pstate >= 0 && config.pstate < platform.num_pstates(),
                 "p-state " << config.pstate << " out of [0,"
                            << platform.num_pstates() << ")");
  PEACHY_REQUIRE(config.nodes_on >= 0 &&
                     config.nodes_on <= platform.cluster.total_nodes,
                 "nodes_on " << config.nodes_on << " out of [0,"
                             << platform.cluster.total_nodes << "]");
  PEACHY_REQUIRE(config.node_pstates.empty() ||
                     static_cast<int>(config.node_pstates.size()) ==
                         config.nodes_on,
                 "node_pstates must have nodes_on entries, got "
                     << config.node_pstates.size());

  SimState st;
  st.wf = &wf;
  st.plat = &platform;
  st.cfg = config;
  if (st.cfg.placement.empty())
    st.cfg.placement = Placement::all(wf, Site::kCluster);

  // A cluster-placed task with zero powered nodes can never run.
  for (const Task& t : wf.tasks())
    if (st.cfg.placement.site_of(t.id) == Site::kCluster)
      PEACHY_REQUIRE(config.nodes_on > 0,
                     "task " << t.name
                             << " is placed on the cluster but nodes_on == 0");

  st.present.assign(2, std::vector<bool>(
                           static_cast<std::size_t>(wf.num_files()), false));
  st.inflight.assign(2, std::vector<bool>(
                            static_cast<std::size_t>(wf.num_files()), false));
  // Workflow inputs start on cluster storage.
  for (const File& f : wf.files())
    if (f.producer == -1)
      st.present[0][static_cast<std::size_t>(f.id)] = true;

  st.missing_parents.resize(static_cast<std::size_t>(wf.num_tasks()));
  st.missing_inputs.assign(static_cast<std::size_t>(wf.num_tasks()), 0);
  st.dispatched.assign(static_cast<std::size_t>(wf.num_tasks()), false);
  st.task_node.assign(static_cast<std::size_t>(wf.num_tasks()), -1);
  for (int n = 0; n < config.nodes_on; ++n) {
    const int ps = config.node_pstates.empty()
                       ? config.pstate
                       : config.node_pstates[static_cast<std::size_t>(n)];
    PEACHY_REQUIRE(ps >= 0 && ps < platform.num_pstates(),
                   "node " << n << " has bad p-state " << ps);
    const PState& state = platform.cluster.pstates[static_cast<std::size_t>(ps)];
    st.node_gflops.push_back(state.gflops);
    st.node_busy_watts.push_back(state.busy_watts);
    st.node_busy_s.push_back(0.0);
    st.free_nodes.emplace(state.gflops, n);
  }
  st.free_vms = platform.cloud.vms;

  for (const Task& t : wf.tasks()) {
    st.missing_parents[static_cast<std::size_t>(t.id)] =
        static_cast<int>(t.parents.size());
    if (t.parents.empty()) {
      if (st.site_of(t.id) == Site::kCluster)
        st.ready_cluster.insert(t.id);
      else
        st.ready_cloud.insert(t.id);
    }
  }
  st.engine.schedule_at(0.0, [&st] { st.try_dispatch(); });
  {
    obs::Span span("wf.simulate", "wfsim");
    span.arg("tasks", wf.num_tasks());
    span.arg("files", wf.num_files());
    st.engine.run();
  }

  PEACHY_REQUIRE(st.tasks_done == wf.num_tasks(),
                 "simulation stalled: " << st.tasks_done << " of "
                                        << wf.num_tasks() << " tasks finished");

  SimResult r = st.result;
  r.makespan_s = st.engine.now();

  r.cluster_energy_j = 0;
  for (int n = 0; n < config.nodes_on; ++n) {
    const auto i = static_cast<std::size_t>(n);
    r.cluster_energy_j +=
        st.node_busy_s[i] * st.node_busy_watts[i] +
        std::max(0.0, r.makespan_s - st.node_busy_s[i]) *
            platform.cluster.idle_watts;
  }
  r.cloud_energy_j = r.cloud_busy_vm_s * platform.cloud.vm_busy_watts;

  constexpr double kJoulesPerKwh = 3.6e6;
  r.cluster_gco2 =
      r.cluster_energy_j / kJoulesPerKwh * platform.cluster.gco2_per_kwh;
  r.cloud_gco2 = r.cloud_energy_j / kJoulesPerKwh * platform.cloud.gco2_per_kwh;
  r.total_gco2 = r.cluster_gco2 + r.cloud_gco2;
  return r;
}

SpeedupReport speedup_vs_one_node(const Workflow& wf, const Platform& platform,
                                  const RunConfig& config) {
  RunConfig one = config;
  one.nodes_on = 1;
  one.placement = Placement::all(wf, Site::kCluster);
  const SimResult r1 = simulate(wf, platform, one);
  const SimResult rn = simulate(wf, platform, config);
  SpeedupReport rep;
  rep.t1_s = r1.makespan_s;
  rep.tn_s = rn.makespan_s;
  rep.speedup = r1.makespan_s / rn.makespan_s;
  rep.efficiency = rep.speedup / static_cast<double>(config.nodes_on);
  return rep;
}

}  // namespace peachy::wf
