#include "wfsim/schedule.hpp"

#include <algorithm>
#include <cmath>

#include "core/rng.hpp"

namespace peachy::wf {

namespace {
SimResult run_cluster(const Workflow& wf, const Platform& plat, int nodes,
                      int pstate) {
  RunConfig cfg;
  cfg.nodes_on = nodes;
  cfg.pstate = pstate;
  return simulate(wf, plat, cfg);
}
}  // namespace

ClusterChoice min_nodes_for_deadline(const Workflow& wf,
                                     const Platform& platform, int pstate,
                                     double deadline_s) {
  PEACHY_REQUIRE(deadline_s > 0, "deadline must be positive");
  ClusterChoice best;
  best.pstate = pstate;
  best.nodes_on = platform.cluster.total_nodes;
  best.result = run_cluster(wf, platform, best.nodes_on, pstate);
  best.feasible = best.result.makespan_s <= deadline_s;
  if (!best.feasible) return best;

  // Makespan is non-increasing in node count under FIFO dispatch of a fixed
  // placement, so binary search applies.
  int lo = 1, hi = platform.cluster.total_nodes;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    const SimResult r = run_cluster(wf, platform, mid, pstate);
    if (r.makespan_s <= deadline_s) {
      hi = mid;
      best.nodes_on = mid;
      best.result = r;
    } else {
      lo = mid + 1;
    }
  }
  return best;
}

ClusterChoice min_pstate_for_deadline(const Workflow& wf,
                                      const Platform& platform, int nodes_on,
                                      double deadline_s) {
  PEACHY_REQUIRE(deadline_s > 0, "deadline must be positive");
  ClusterChoice best;
  best.nodes_on = nodes_on;
  best.pstate = platform.max_pstate();
  best.result = run_cluster(wf, platform, nodes_on, best.pstate);
  best.feasible = best.result.makespan_s <= deadline_s;
  if (!best.feasible) return best;

  int lo = 0, hi = platform.max_pstate();
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    const SimResult r = run_cluster(wf, platform, nodes_on, mid);
    if (r.makespan_s <= deadline_s) {
      hi = mid;
      best.pstate = mid;
      best.result = r;
    } else {
      lo = mid + 1;
    }
  }
  return best;
}

ClusterChoice combined_power_heuristic(const Workflow& wf,
                                       const Platform& platform,
                                       double deadline_s) {
  ClusterChoice best;
  best.feasible = false;
  for (int p = 0; p < platform.num_pstates(); ++p) {
    const ClusterChoice c = min_nodes_for_deadline(wf, platform, p, deadline_s);
    if (!c.feasible) continue;
    if (!best.feasible || c.result.total_gco2 < best.result.total_gco2)
      best = c;
  }
  return best;
}

CloudSearchResult exhaustive_cloud_search(const Workflow& wf,
                                          const Platform& platform,
                                          int nodes_on, int pstate,
                                          const std::vector<double>& grid) {
  PEACHY_REQUIRE(!grid.empty(), "fraction grid must be non-empty");
  for (double g : grid)
    PEACHY_REQUIRE(g >= 0.0 && g <= 1.0, "grid value " << g << " out of [0,1]");

  const int levels = wf.num_levels();
  CloudSearchResult best;
  std::vector<std::size_t> idx(static_cast<std::size_t>(levels), 0);
  std::vector<double> fractions(static_cast<std::size_t>(levels), grid[0]);

  bool done = false;
  while (!done) {
    for (int l = 0; l < levels; ++l)
      fractions[static_cast<std::size_t>(l)] =
          grid[idx[static_cast<std::size_t>(l)]];
    RunConfig cfg;
    cfg.nodes_on = nodes_on;
    cfg.pstate = pstate;
    cfg.placement = Placement::level_fractions(wf, fractions);
    const SimResult r = simulate(wf, platform, cfg);
    ++best.evaluated;
    if (best.fractions.empty() || r.total_gco2 < best.result.total_gco2) {
      best.fractions = fractions;
      best.result = r;
    }

    // Odometer increment over the grid.
    int l = 0;
    for (; l < levels; ++l) {
      auto& i = idx[static_cast<std::size_t>(l)];
      if (++i < grid.size()) break;
      i = 0;
    }
    done = l == levels;
  }
  return best;
}

CloudSearchResult refine_cloud_fractions(const Workflow& wf,
                                         const Platform& platform,
                                         int nodes_on, int pstate,
                                         std::vector<double> start,
                                         double step) {
  PEACHY_REQUIRE(step > 0, "step must be positive");
  start.resize(static_cast<std::size_t>(wf.num_levels()), 0.0);

  auto evaluate = [&](const std::vector<double>& fractions) {
    RunConfig cfg;
    cfg.nodes_on = nodes_on;
    cfg.pstate = pstate;
    cfg.placement = Placement::level_fractions(wf, fractions);
    return simulate(wf, platform, cfg);
  };

  CloudSearchResult cur;
  cur.fractions = start;
  cur.result = evaluate(start);
  ++cur.evaluated;

  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t l = 0; l < cur.fractions.size(); ++l) {
      for (double delta : {-step, step}) {
        std::vector<double> candidate = cur.fractions;
        candidate[l] = std::clamp(candidate[l] + delta, 0.0, 1.0);
        if (candidate[l] == cur.fractions[l]) continue;
        const SimResult r = evaluate(candidate);
        ++cur.evaluated;
        if (r.total_gco2 < cur.result.total_gco2) {
          cur.fractions = std::move(candidate);
          cur.result = r;
          improved = true;
        }
      }
    }
  }
  return cur;
}

namespace {
Site flipped(Site s) {
  return s == Site::kCluster ? Site::kCloud : Site::kCluster;
}

SimResult evaluate_placement(const Workflow& wf, const Platform& plat,
                             int nodes_on, int pstate,
                             const Placement& placement) {
  RunConfig cfg;
  cfg.nodes_on = nodes_on;
  cfg.pstate = pstate;
  cfg.placement = placement;
  return simulate(wf, plat, cfg);
}
}  // namespace

PlacementSearchResult per_task_local_search(const Workflow& wf,
                                            const Platform& platform,
                                            int nodes_on, int pstate,
                                            Placement start, int max_passes) {
  PEACHY_REQUIRE(max_passes >= 1, "need >= 1 pass");
  if (start.empty()) start = Placement::all(wf, Site::kCluster);

  PlacementSearchResult cur;
  cur.placement = start;
  cur.result = evaluate_placement(wf, platform, nodes_on, pstate, start);
  ++cur.evaluated;

  for (int pass = 0; pass < max_passes; ++pass) {
    int best_task = -1;
    SimResult best_result;
    for (int t = 0; t < wf.num_tasks(); ++t) {
      Placement candidate = cur.placement;
      candidate.set(t, flipped(candidate.site_of(t)));
      // A cluster-bound flip with 0 powered nodes is invalid; skip.
      if (nodes_on == 0 && candidate.site_of(t) == Site::kCluster) continue;
      const SimResult r =
          evaluate_placement(wf, platform, nodes_on, pstate, candidate);
      ++cur.evaluated;
      if (r.total_gco2 <
          (best_task < 0 ? cur.result.total_gco2 : best_result.total_gco2)) {
        best_task = t;
        best_result = r;
      }
    }
    if (best_task < 0) break;  // local optimum
    cur.placement.set(best_task, flipped(cur.placement.site_of(best_task)));
    cur.result = best_result;
  }
  return cur;
}

PlacementSearchResult anneal_placement(const Workflow& wf,
                                       const Platform& platform, int nodes_on,
                                       int pstate, Placement start,
                                       const AnnealParams& params) {
  PEACHY_REQUIRE(params.iterations >= 1, "need >= 1 iteration");
  PEACHY_REQUIRE(params.cooling > 0 && params.cooling < 1,
                 "cooling must be in (0,1), got " << params.cooling);
  if (start.empty()) start = Placement::all(wf, Site::kCluster);

  PlacementSearchResult best;
  best.placement = start;
  best.result = evaluate_placement(wf, platform, nodes_on, pstate, start);
  ++best.evaluated;

  Placement cur_placement = best.placement;
  double cur_co2 = best.result.total_gco2;
  double temperature = params.initial_temperature > 0
                           ? params.initial_temperature
                           : 0.05 * cur_co2;
  Rng rng(params.seed);

  for (int i = 0; i < params.iterations; ++i) {
    const int t = static_cast<int>(rng.uniform_int(0, wf.num_tasks() - 1));
    Placement candidate = cur_placement;
    candidate.set(t, flipped(candidate.site_of(t)));
    if (nodes_on == 0 && candidate.site_of(t) == Site::kCluster) continue;
    const SimResult r =
        evaluate_placement(wf, platform, nodes_on, pstate, candidate);
    ++best.evaluated;
    const double delta = r.total_gco2 - cur_co2;
    if (delta <= 0 ||
        (temperature > 0 && rng.uniform() < std::exp(-delta / temperature))) {
      cur_placement = std::move(candidate);
      cur_co2 = r.total_gco2;
      if (cur_co2 < best.result.total_gco2) {
        best.placement = cur_placement;
        best.result = r;
      }
    }
    temperature *= params.cooling;
  }
  return best;
}

}  // namespace peachy::wf
