// Workflow (scientific DAG) model — the WRENCH-side substrate of paper §IV.
//
// Tasks consume/produce files; dependencies are derived from file
// producer/consumer relations (as in real workflow systems). Levels are the
// classic workflow notion the assignment reasons in ("execute the first two
// levels of the workflow on the cloud"): level = longest path from an entry
// task.
#pragma once

#include <string>
#include <vector>

#include "core/error.hpp"

namespace peachy::wf {

/// A data file moved between tasks. Workflow inputs have producer == -1.
struct File {
  int id = 0;
  std::string name;
  double bytes = 0;
  int producer = -1;            ///< task producing it, -1 = initial input
  std::vector<int> consumers;   ///< tasks reading it
};

/// One computational task.
struct Task {
  int id = 0;
  std::string name;
  double flops = 0;             ///< work (floating point operations)
  std::vector<int> inputs;      ///< file ids read
  std::vector<int> outputs;     ///< file ids written
  std::vector<int> parents;     ///< derived: tasks producing my inputs
  std::vector<int> children;    ///< derived: tasks consuming my outputs
  int level = 0;                ///< derived: longest path from an entry task
};

/// An immutable DAG of tasks and files. Build with WorkflowBuilder.
class Workflow {
 public:
  const std::vector<Task>& tasks() const { return tasks_; }
  const std::vector<File>& files() const { return files_; }

  const Task& task(int id) const { return tasks_.at(static_cast<std::size_t>(id)); }
  const File& file(int id) const { return files_.at(static_cast<std::size_t>(id)); }

  int num_tasks() const { return static_cast<int>(tasks_.size()); }
  int num_files() const { return static_cast<int>(files_.size()); }
  int num_levels() const { return num_levels_; }

  /// Task ids at `level`, in id order.
  const std::vector<int>& tasks_in_level(int level) const;

  /// Total work over all tasks.
  double total_flops() const;
  /// Total unique data footprint over all files (the paper's 7.5 GB).
  double total_bytes() const;
  /// Maximum number of tasks in any level ("width").
  int width() const;

 private:
  friend class WorkflowBuilder;
  std::vector<Task> tasks_;
  std::vector<File> files_;
  std::vector<std::vector<int>> levels_;
  int num_levels_ = 0;
};

/// Incremental workflow construction + validation.
class WorkflowBuilder {
 public:
  /// Adds a file; returns its id.
  int add_file(std::string name, double bytes);

  /// Adds a task reading `inputs` and writing `outputs` (file ids).
  /// Returns the task id. Each file may have at most one producer.
  int add_task(std::string name, double flops, std::vector<int> inputs,
               std::vector<int> outputs);

  /// Validates (acyclic, single producer per file), derives parents/
  /// children/levels, and returns the finished workflow.
  Workflow build();

 private:
  Workflow wf_;
};

}  // namespace peachy::wf
