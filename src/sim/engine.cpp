#include "sim/engine.hpp"

#include <limits>
#include <utility>

#include "obs/obs.hpp"

namespace peachy::sim {

void Engine::schedule_at(Time t, std::function<void()> fn) {
  PEACHY_REQUIRE(t >= now_, "cannot schedule in the past: t=" << t << " < now="
                                                              << now_);
  PEACHY_CHECK(fn != nullptr);
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

std::size_t Engine::run() {
  return run_until(std::numeric_limits<Time>::infinity());
}

std::size_t Engine::run_until(Time horizon) {
  obs::Span span("sim.run", "sim");
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().t <= horizon) {
    // priority_queue::top() is const; move the callback out via const_cast,
    // safe because we pop immediately after.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.t;
    ev.fn();
    ++n;
    ++processed_;
  }
  // A finite horizon means "simulate up to this instant": the clock lands on
  // the horizon even when the queue drains early, so a later schedule_in()
  // anchors at the horizon instead of at whenever the last event happened to
  // fire. run() passes +inf and keeps the clock at the last event.
  if (horizon != std::numeric_limits<Time>::infinity() && horizon > now_)
    now_ = horizon;
  span.arg("events", static_cast<std::int64_t>(n));
  if (n != 0 && obs::enabled()) {
    static obs::Counter& events =
        obs::Registry::global().counter("sim.events");
    events.add(n);
  }
  return n;
}

}  // namespace peachy::sim
