// Discrete-event simulation core — the SimGrid stand-in under wfsim.
//
// A minimal, deterministic event engine: callbacks scheduled at absolute
// simulated times, executed in (time, insertion-order) order. The workflow
// simulator (src/wfsim) builds cluster/cloud/link/scheduler services on top
// of it, exactly as WRENCH builds on SimGrid.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/error.hpp"

namespace peachy::sim {

/// Simulated time in seconds.
using Time = double;

/// Deterministic discrete-event engine.
///
/// Events with equal timestamps fire in scheduling order (stable), which
/// makes every simulation bit-reproducible.
class Engine {
 public:
  /// Current simulated time. 0 before the first event runs.
  Time now() const { return now_; }

  /// Schedules `fn` at absolute simulated time `t` (must be >= now()).
  void schedule_at(Time t, std::function<void()> fn);

  /// Schedules `fn` `dt` seconds from now (dt >= 0).
  void schedule_in(Time dt, std::function<void()> fn) {
    schedule_at(now_ + dt, std::move(fn));
  }

  /// Runs events until the queue is empty. Returns the number of events
  /// processed by this call.
  std::size_t run();

  /// Runs events with time <= horizon (events scheduled exactly at the
  /// horizon fire, including ones scheduled re-entrantly by callbacks);
  /// later events stay queued. With a finite horizon the clock advances to
  /// `horizon` even if the queue drains early, so repeated run_until()
  /// slices tile the timeline without gaps.
  std::size_t run_until(Time horizon);

  bool empty() const { return queue_.empty(); }
  std::size_t processed() const { return processed_; }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace peachy::sim
