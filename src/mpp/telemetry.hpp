// Cluster-wide telemetry for mpp worlds (DESIGN.md "Distributed telemetry").
//
// A spawned world has no shared memory, so per-rank observability state
// (obs::Registry metrics, obs::Tracer spans) is stranded in worker
// processes. This layer ships it to rank 0 over the world's own transport:
//
//  * Workers run a shipper thread that serializes their metric registry
//    every interval_ms and sends it to rank 0 on a reserved tag; a final
//    snapshot (metrics + the full trace buffer) goes out when the body
//    finishes, before the transport says goodbye — FIFO channel order
//    guarantees rank 0 sees it before the goodbye.
//  * Rank 0 runs a hub thread that drains periodic snapshots with
//    Transport::try_recv (never blocking, never killed by a dying peer)
//    and keeps the latest per rank. A live obs::MetricsServer serves the
//    cluster rollup — every metric labeled {rank="N"} — at /metrics.
//  * At finish, rank 0 gathers the final snapshots, corrects each rank's
//    event timestamps with the clock offsets estimated on the heartbeat
//    path (net::TcpTransport::clock_estimates), and writes one merged
//    Chrome/Perfetto trace where every rank is its own process track.
//
// Snapshots are framed with the same little-endian scalar helpers as the
// rest of the wire (net/wire.hpp append_/read_) — no JSON in the data path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace peachy::net {
class Transport;
}

namespace peachy::mpp {

/// Telemetry policy for a world (RunOptions::telemetry). Inert by default.
struct Telemetry {
  bool enabled = false;
  /// Shipper period for worker -> rank 0 metric snapshots.
  int interval_ms = 200;
  /// Rank 0 writes the merged, clock-corrected Chrome trace here ("" = no
  /// trace file).
  std::string trace_path;
  /// Port for rank 0's /metrics endpoint: -1 = no server, 0 = ephemeral
  /// (read the bound port back from `port_file`).
  int metrics_port = -1;
  /// Rank 0 writes the bound metrics port (decimal + newline) here, so
  /// launchers and scripts can find an ephemeral endpoint.
  std::string port_file;
  /// Cluster-wide trace id. 0 = the launcher mints one; every rank of a
  /// world must share it for cross-rank spans to join one trace.
  std::uint64_t trace_id = 0;

  bool active() const { return enabled; }
};

namespace telemetry {

/// One rank's shipped observability state, decoded.
struct Snapshot {
  int rank = -1;
  std::vector<obs::MetricSample> samples;
  std::vector<obs::TraceEvent> events;
};

/// Reserved channel tags (below the collectives' -4242..-4247 block).
constexpr int kTagPeriodic = -4248;  ///< metrics-only snapshots, latest wins
constexpr int kTagFinal = -4249;     ///< metrics + trace, exactly one per rank

/// Binary snapshot codec (little-endian, versioned). Periodic snapshots
/// ship with an empty event list to keep the steady-state payload small.
std::vector<std::byte> encode_snapshot(
    int rank, const std::vector<obs::MetricSample>& samples,
    const std::vector<obs::TraceEvent>& events);
Snapshot decode_snapshot(const std::vector<std::byte>& payload);

}  // namespace telemetry

/// Per-rank telemetry driver, alive while the world body runs. Construct
/// after the transport joins the mesh, call finish() after the body but
/// *before* Transport::shutdown (the final snapshots ride the same
/// channels as application data). The destructor finishes if finish()
/// was never reached, so an exceptional exit still ships what it can.
class TelemetrySession {
 public:
  TelemetrySession(net::Transport& transport, int world_size,
                   const Telemetry& config);
  ~TelemetrySession();
  TelemetrySession(const TelemetrySession&) = delete;
  TelemetrySession& operator=(const TelemetrySession&) = delete;

  /// Rank 0's bound /metrics port (-1 when no server is running).
  int metrics_port() const;

  /// Workers: ship the final snapshot. Rank 0: gather every rank's final
  /// snapshot (skipping ranks that died first), stop the hub and server,
  /// and write the merged clock-corrected trace. Idempotent; never throws
  /// (telemetry must not mask the body's own outcome).
  void finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace peachy::mpp
