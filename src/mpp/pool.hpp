// RankPool: a persistent, shared pool of rank threads for mpp worlds.
//
// Every mpp entry point so far built its world from scratch — run_world
// spawns one thread (or process) per rank, runs the body, and tears the
// world down. A long-lived job service cannot afford that shape: peachyd
// executes a sustained stream of jobs, each wanting a small world, against
// one machine-wide rank budget. The pool keeps `capacity` worker threads
// alive across jobs and leases rank gangs out of them:
//
//  * acquisition is all-or-nothing — a caller asking for `ranks` threads
//    either gets the whole gang or waits; no caller ever holds a partial
//    gang while waiting for more (the classic resource-deadlock shape).
//  * fairness is the caller's problem by design: peachyd's weighted
//    deficit round-robin decides *which* job dispatches next, the pool
//    only enforces the rank budget.
//
// Wiring: set mpp::RunOptions::pool and run_world() executes its threaded
// world (inproc or tcp) on pooled threads instead of spawning fresh ones —
// sandpile/dmr bodies run unchanged, checkpoint/restore and supervision
// included. Spawned worlds ignore the pool (their ranks are separate
// processes, not threads this process owns).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace peachy::mpp {

class RankPool {
 public:
  /// Starts `capacity` worker threads (>= 1).
  explicit RankPool(int capacity);
  /// Joins every worker. Callers must not be inside run_gang().
  ~RankPool();
  RankPool(const RankPool&) = delete;
  RankPool& operator=(const RankPool&) = delete;

  int capacity() const { return capacity_; }

  /// Ranks not currently leased to a gang. Advisory — another caller can
  /// take them between the read and a run_gang() call; use it for
  /// admission/occupancy reporting, not for correctness.
  int available() const;

  /// Runs fn(r) for r in [0, ranks) on `ranks` pooled threads and blocks
  /// until all of them return. Acquisition is atomic: the gang starts only
  /// once `ranks` workers are free, and a waiting caller holds nothing.
  /// Exceptions thrown by fn are rethrown here (lowest rank wins), after
  /// the whole gang finished. Throws immediately when ranks > capacity.
  void run_gang(int ranks, const std::function<void(int)>& fn);

 private:
  struct Gang;

  void worker_loop();

  const int capacity_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers wait for a gang
  std::condition_variable free_cv_;   ///< callers wait for free ranks
  int free_ = 0;
  bool stopping_ = false;
  Gang* pending_ = nullptr;  ///< gang with unclaimed seats, if any
  std::vector<std::thread> workers_;
};

}  // namespace peachy::mpp
