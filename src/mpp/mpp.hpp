// mpp — a message-passing runtime with MPI-shaped semantics, over a
// pluggable transport.
//
// The paper's fourth sandpile assignment distributes the stencil over a
// cluster with MPI and the Ghost Cell Pattern [Kjolstad & Snir 2010]. mpp
// substitutes for MPI with the same semantics (blocking point-to-point with
// source+tag matching, FIFO per (source, tag) channel; collectives built on
// top of point-to-point so they behave identically everywhere) over one of
// three substrates:
//
//  * inproc — ranks are threads, messages are memcpys into mailboxes.
//    Fast, cost-free communication; the original teaching default.
//  * tcp    — ranks are threads but every message crosses a real loopback
//    socket through peachy_net's framed, CRC-checked, acked wire protocol
//    (net/tcp.hpp). Communication has genuine latency and the fault
//    injector can drop/delay/duplicate frames or sever links.
//  * spawned — mpp::run_spawned forks real worker *processes* wired up by
//    a rendezvous server; the ghost-cell trade-off runs against separate
//    address spaces, like the MPI original.
//
// Message and byte counters make communication volume measurable, which is
// what the ghost-cell trade-off experiment (bench_ghost_cells) reports.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "mpp/telemetry.hpp"
#include "net/inproc.hpp"
#include "net/process.hpp"
#include "net/tcp.hpp"
#include "net/transport.hpp"

namespace peachy::mpp {

class RankPool;

/// Which substrate carries the messages.
enum class TransportKind { kInproc, kTcp };

const char* to_string(TransportKind kind);
/// Parses "inproc" or "tcp" (CLI flag values); throws on anything else.
TransportKind transport_from_string(const std::string& name);

/// Aggregate communication counters for one rank.
struct CommStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
};

/// Frame-level counters from the tcp substrate (zero under inproc).
struct NetStats {
  std::uint64_t retransmits = 0;
  std::uint64_t window_stalls = 0;  ///< sends that blocked on a full window
  std::uint64_t acks_sent = 0;      ///< cumulative acks, pure + piggybacked
  /// send()-accepted frames never confirmed before shutdown()'s bounded
  /// drain expired (the affected peers are marked dead).
  std::uint64_t frames_abandoned = 0;
  std::uint64_t fault_dropped = 0;
  std::uint64_t fault_duplicated = 0;
  std::uint64_t fault_delayed = 0;
  std::uint64_t fault_severed = 0;
};

/// Recovery policy for a supervised world (mpp::run_world / run_spawned).
/// With max_restarts > 0 a failed attempt (PeerDied, a dead worker process,
/// a worker error) is not propagated: every rank is respawned and the body
/// re-runs, restoring from the last committed checkpoint via
/// Comm::restore(). The restart budget bounds how long a persistent fault
/// can spin before the original error finally surfaces.
struct Resilience {
  int max_restarts = 0;        ///< 0 = fail fast (the pre-recovery behavior)
  /// Where checkpoints live. Empty + supervised: a private temp directory
  /// is created and removed with the run. Non-empty: created if missing,
  /// kept afterwards — which is what lets a *new invocation* resume.
  std::string checkpoint_dir;
  /// Clear the fault plan on restart (transient-fault model: the injector
  /// proved the failure path; replaying the same deterministic faults
  /// forever would exhaust the budget without ever finishing).
  bool disarm_faults_on_restart = true;
  /// Remove the *named* checkpoint_dir after a successful run. Off by
  /// default (a kept directory is what cross-invocation resume reads), but
  /// long-lived callers — peachyd retiring thousands of jobs — flip it so
  /// completed work does not accumulate stale ckpt.bin directories.
  /// Unnamed (mkdtemp) directories are always removed, as before.
  bool remove_checkpoint_on_success = false;
};

/// Supervisor-side guard rails for a spawned world: kernel resource fences
/// on every child, a wall-clock deadline spanning restart attempts, and a
/// cooperative cancel hook — all enforced by a launcher-side watchdog with
/// SIGTERM -> grace -> SIGKILL escalation. Workers observe the SIGTERM via
/// mpp::spawn_abort_requested() and get `grace` to exit on their own
/// (checkpoint-preserving shutdown) before the axe falls.
struct SpawnControl {
  net::ChildLimits limits;  ///< RLIMIT_AS / RLIMIT_CPU applied per child
  int deadline_ms = 0;      ///< whole-run wall clock budget; 0 = unlimited
  int term_grace_ms = 2000; ///< SIGTERM -> SIGKILL escalation window
  int poll_ms = 20;         ///< watchdog poll cadence
  /// Polled by the launcher-side watchdog (never inside a worker); true
  /// triggers the SIGTERM escalation. Must be safe to call from a thread.
  std::function<bool()> should_abort;
  /// Flight-recorder dump directory for the workers (their crash handler
  /// writes post-mortems here). Empty = inherit $PEACHY_FLIGHT_DIR.
  std::string flight_dir;

  bool active() const {
    return limits.any() || deadline_ms > 0 ||
           static_cast<bool>(should_abort) || !flight_dir.empty();
  }
};

/// Why a spawned world attempt was torn down, for callers that must triage
/// failure causes without string matching.
enum class SpawnFailure {
  kNonzero,    ///< a worker exited with a nonzero code before reporting
  kCrash,      ///< a worker was killed by a signal (segfault, abort, OOM)
  kTimeout,    ///< the SpawnControl wall-clock deadline fired
  kCancelled,  ///< the SpawnControl cancel hook fired and workers had to be
               ///< killed (a cooperative cancel returns normally instead)
};

/// The error run_spawned throws when the failure has a triaged cause.
/// kTimeout and kCancelled are terminal: the supervisor does not burn
/// restart budget re-running work that was deliberately stopped.
class SpawnError : public Error {
 public:
  SpawnError(SpawnFailure kind, const std::string& message)
      : Error(message), kind_(kind) {}
  SpawnFailure kind() const { return kind_; }

 private:
  SpawnFailure kind_;
};

/// True inside a spawned worker process (set before the body runs). Job
/// bodies use it to pick the right cancel probe: the launcher-side hook is
/// meaningless after fork.
bool in_spawned_worker();

/// True once the supervisor's SIGTERM reached this worker process. The
/// cooperative half of cancellation: bodies poll it at their epoch/step
/// boundary and shut down checkpoint-preservingly.
bool spawn_abort_requested();

/// How to run a world (mpp::run_world).
struct RunOptions {
  TransportKind transport = TransportKind::kInproc;
  /// Fork real worker processes instead of threads (tcp only). With a
  /// non-empty `worker_argv`, workers are fork+exec'd from that command
  /// line and find their way back via PEACHY_MPP_* environment variables;
  /// with an empty one they are plain fork() children.
  bool spawn = false;
  std::vector<std::string> worker_argv;
  /// Socket timeouts, retry budget, and fault plan for the tcp substrate.
  net::TcpOptions tcp;
  /// Checkpoint/restart policy; inert by default.
  Resilience resilience;
  /// Cluster telemetry policy (mpp/telemetry.hpp); inert by default. When
  /// enabled, obs recording is switched on in every rank, trace contexts
  /// propagate across sends, workers ship snapshots to rank 0, and rank 0
  /// can serve /metrics and write a merged clock-corrected trace.
  Telemetry telemetry;
  /// Execute threaded (non-spawned) worlds on this shared pool's threads
  /// instead of spawning one thread per rank (mpp/pool.hpp). Not owned.
  /// peachyd points every job here so concurrent jobs share one rank
  /// budget. Ignored by spawned worlds.
  RankPool* pool = nullptr;
  /// Guard rails for spawned worlds (limits, deadline, cancel hook).
  /// Ignored by threaded worlds.
  SpawnControl spawn_control;
};

/// What a world run produced beyond side effects: aggregate stats and the
/// bytes rank 0 stashed with Comm::set_result — the only way results leave
/// a spawned world, since worker processes share no memory with the
/// launcher.
struct RunOutcome {
  CommStats comm;
  NetStats net;
  std::vector<std::byte> rank0_result;
  /// How many times the supervisor restarted the world (0 = clean run).
  int restarts = 0;
  /// Largest per-worker resident-set peak (bytes) over all ranks and
  /// restart attempts, from wait4/RUSAGE accounting. Only spawned worlds
  /// report it; thread-backed worlds leave 0 (ranks share one address
  /// space, so a per-rank peak is not meaningful).
  std::uint64_t peak_rss_bytes = 0;
};

/// A rank's endpoint into a world: an MPI communicator handle bound to one
/// rank. Move-only; lives on the rank's stack inside mpp::run*.
class Comm {
 public:
  explicit Comm(std::unique_ptr<net::Transport> transport)
      : transport_(std::move(transport)) {}
  Comm(Comm&&) = default;
  Comm& operator=(Comm&&) = default;

  int rank() const { return transport_->rank(); }
  int size() const { return transport_->size(); }

  /// Blocking typed send of `count` elements of trivially copyable T.
  template <typename T>
  void send(int dest, int tag, const T* data, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, data, count * sizeof(T));
  }

  /// Zero-copy byte-view send: the payload reaches the transport as a span
  /// (the tcp backend frames it with scatter-gather I/O instead of staging
  /// it through an intermediate vector). Same blocking semantics as the
  /// typed send.
  void send(int dest, int tag, std::span<const std::byte> payload);

  /// Blocking typed receive; the message size must be exactly `count`
  /// elements (mismatch throws, like an MPI truncation error).
  template <typename T>
  void recv(int src, int tag, T* data, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    recv_bytes(src, tag, data, count * sizeof(T));
  }

  /// Exchange with a partner: sends then receives (deadlock-free because
  /// sends never block on the receiver's matching recv).
  template <typename T>
  void sendrecv(int partner, int tag, const T* send_buf, T* recv_buf,
                std::size_t count) {
    send(partner, tag, send_buf, count);
    recv(partner, tag, recv_buf, count);
  }

  /// Blocks until every rank in the world has entered the barrier.
  void barrier();

  /// All-reduce with a commutative/associative op over one value.
  std::int64_t allreduce_sum(std::int64_t value);
  std::int64_t allreduce_max(std::int64_t value);
  /// Logical-or all-reduce (the "did any rank change a cell?" query that
  /// terminates the distributed sandpile).
  bool allreduce_or(bool value);

  /// Gathers each rank's vector at root, concatenated in rank order.
  /// Non-root ranks receive an empty vector.
  template <typename T>
  std::vector<T> gather(int root, const std::vector<T>& mine) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (rank_() != root) {
      const std::uint64_t n = mine.size();
      send(root, detail_tag_gather(), &n, 1);
      if (n) send(root, detail_tag_gather(), mine.data(), mine.size());
      return {};
    }
    std::vector<T> all;
    for (int r = 0; r < size(); ++r) {
      if (r == rank_()) {
        all.insert(all.end(), mine.begin(), mine.end());
        continue;
      }
      std::uint64_t n = 0;
      recv(r, detail_tag_gather(), &n, 1);
      std::vector<T> part(n);
      if (n) recv(r, detail_tag_gather(), part.data(), n);
      all.insert(all.end(), part.begin(), part.end());
    }
    return all;
  }

  /// Broadcast from root: root's `count` elements overwrite every rank's
  /// buffer. Collective (all ranks must call).
  template <typename T>
  void broadcast(int root, T* data, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (rank_() == root) {
      for (int r = 0; r < size(); ++r)
        if (r != rank_()) send(r, detail_tag_bcast(), data, count);
    } else {
      recv(root, detail_tag_bcast(), data, count);
    }
  }

  /// Scatter from root: rank r receives chunk r of root's `all` vector,
  /// which must hold size() * chunk elements at the root (ignored
  /// elsewhere). Collective.
  template <typename T>
  std::vector<T> scatter(int root, const std::vector<T>& all,
                         std::size_t chunk) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> mine(chunk);
    if (rank_() == root) {
      PEACHY_REQUIRE(all.size() == chunk * static_cast<std::size_t>(size()),
                     "scatter needs " << chunk * static_cast<std::size_t>(size())
                                      << " elements, got " << all.size());
      for (int r = 0; r < size(); ++r) {
        if (r == rank_()) {
          std::copy_n(all.begin() + static_cast<std::ptrdiff_t>(chunk) * r,
                      chunk, mine.begin());
        } else {
          send(r, detail_tag_scatter(),
               all.data() + chunk * static_cast<std::size_t>(r), chunk);
        }
      }
    } else {
      if (chunk) recv(root, detail_tag_scatter(), mine.data(), chunk);
    }
    return mine;
  }

  /// Collective checkpoint: every rank contributes its local state blob,
  /// rank 0 durably commits the set (mpp/checkpoint.hpp) and broadcasts the
  /// new epoch, which is returned on every rank. Call at a point where all
  /// ranks agree on progress (e.g. right after a collective) so the saved
  /// cut is consistent. Throws unless checkpointing() is enabled.
  int checkpoint(const void* data, std::size_t bytes);

  /// Collective restore: rank 0 loads the last committed checkpoint and
  /// redistributes the blobs; every rank gets its own back, or nullopt
  /// when no checkpoint has ever been committed. Sets checkpoint_epoch().
  std::optional<std::vector<std::byte>> restore();

  /// Epoch of the last checkpoint this rank committed or restored; 0 when
  /// neither has happened.
  int checkpoint_epoch() const { return epoch_; }

  /// True when a checkpoint directory is configured (Resilience policy or
  /// set_checkpoint_dir) — bodies gate their checkpoint/restore calls on it.
  bool checkpointing() const { return !ckpt_dir_.empty(); }
  void set_checkpoint_dir(std::string dir) { ckpt_dir_ = std::move(dir); }

  /// Stashes bytes that run_world()/run_spawned() hand back to the
  /// launcher as RunOutcome::rank0_result. Only rank 0's stash is
  /// collected — it is how a spawned world returns its answer across the
  /// process boundary.
  void set_result(const void* data, std::size_t bytes);
  std::vector<std::byte> take_result() { return std::move(result_); }

  /// Communication counters accumulated by this rank so far.
  const CommStats& stats() const { return stats_; }

  /// The substrate underneath (tests and the runtime peek at tcp stats).
  net::Transport& transport() { return *transport_; }

 private:
  int rank_() const { return transport_->rank(); }
  // Reserved negative tags for collectives (user code uses its own tags;
  // a (source, tag) channel keyed on these never collides with it).
  static constexpr int detail_tag_gather() { return -4242; }
  static constexpr int detail_tag_bcast() { return -4243; }
  static constexpr int detail_tag_scatter() { return -4244; }
  static constexpr int detail_tag_barrier() { return -4245; }
  static constexpr int detail_tag_reduce() { return -4246; }
  static constexpr int detail_tag_ckpt() { return -4247; }

  void send_bytes(int dest, int tag, const void* data, std::size_t bytes);
  void recv_bytes(int src, int tag, void* data, std::size_t bytes);
  std::int64_t allreduce(std::int64_t value,
                         std::int64_t (*op)(std::int64_t, std::int64_t));

  std::unique_ptr<net::Transport> transport_;
  CommStats stats_;
  std::vector<std::byte> result_;
  std::string ckpt_dir_;
  int epoch_ = 0;
};

/// SPMD launcher: runs `body(comm)` on `ranks` threads over the in-process
/// transport and joins them. Any exception thrown by a rank is rethrown
/// (lowest rank wins) after all ranks finish. Aggregate stats returned.
CommStats run(int ranks, const std::function<void(Comm&)>& body);

/// Like run(), but the substrate is chosen by `options` — the same body
/// runs bit-identically over mailboxes, loopback sockets, or (with
/// options.spawn) real forked worker processes.
RunOutcome run_world(int ranks, const RunOptions& options,
                     const std::function<void(Comm&)>& body);

/// SPMD launcher whose ranks are real processes talking tcp through a
/// rendezvous server hosted by the launcher. With an empty `worker_argv`
/// the workers are plain fork() children running `body` directly; with a
/// non-empty one each worker is fork+exec'd from that command line, runs
/// main() until it reaches this same run_spawned call site, and is routed
/// into the worker path by the PEACHY_MPP_* environment variables (so pass
/// e.g. {"/proc/self/exe", "--gtest_filter=<this test>"} to re-enter a
/// test body). Worker failures surface as peachy::Error naming the rank;
/// a worker that dies silently is detected, reaped, and reported — the
/// launcher never hangs on a dead child. With resilience.max_restarts > 0
/// the world is supervised instead: failed attempts are respawned and
/// resume from the last committed checkpoint (see Resilience).
RunOutcome run_spawned(int ranks, const std::vector<std::string>& worker_argv,
                       const std::function<void(Comm&)>& body,
                       const net::TcpOptions& tcp = {},
                       const Resilience& resilience = {},
                       const Telemetry& telemetry = {},
                       const SpawnControl& control = {});

/// The shared state behind a group of in-process ranks. Exposed for tests
/// that need to drive ranks manually; most code should use mpp::run*.
class World {
 public:
  explicit World(int ranks);

  int size() const { return hub_->size(); }

  /// Creates the endpoint for `rank` (each rank exactly once).
  Comm comm(int rank);

 private:
  std::shared_ptr<net::InprocHub> hub_;
};

}  // namespace peachy::mpp
