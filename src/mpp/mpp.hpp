// mpp — a message-passing runtime with MPI-shaped semantics, in-process.
//
// The paper's fourth sandpile assignment distributes the stencil over a
// cluster with MPI and the Ghost Cell Pattern [Kjolstad & Snir 2010]. This
// container has no MPI, so mpp substitutes for it: ranks run as threads of
// one process, each with a private mailbox; send/recv/sendrecv/barrier/
// allreduce/gather carry the same semantics (blocking point-to-point with
// source+tag matching, FIFO per (source, tag) channel). Message and byte
// counters make communication volume measurable, which is what the
// ghost-cell trade-off experiment (bench_ghost_cells) reports.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "core/error.hpp"

namespace peachy::mpp {

/// Aggregate communication counters for one rank.
struct CommStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
};

class World;

/// A rank's endpoint into a World. Equivalent to an MPI communicator handle
/// bound to one rank. Not copyable; lives on the rank's stack inside
/// mpp::run.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Blocking typed send of `count` elements of trivially copyable T.
  template <typename T>
  void send(int dest, int tag, const T* data, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, data, count * sizeof(T));
  }

  /// Blocking typed receive; the message size must be exactly `count`
  /// elements (mismatch throws, like an MPI truncation error).
  template <typename T>
  void recv(int src, int tag, T* data, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    recv_bytes(src, tag, data, count * sizeof(T));
  }

  /// Exchange with a partner: sends then receives (internally safe against
  /// deadlock because sends never block on the receiver).
  template <typename T>
  void sendrecv(int partner, int tag, const T* send_buf, T* recv_buf,
                std::size_t count) {
    send(partner, tag, send_buf, count);
    recv(partner, tag, recv_buf, count);
  }

  /// Blocks until every rank in the world has entered the barrier.
  void barrier();

  /// All-reduce with a commutative/associative op over one value.
  std::int64_t allreduce_sum(std::int64_t value);
  std::int64_t allreduce_max(std::int64_t value);
  /// Logical-or all-reduce (the "did any rank change a cell?" query that
  /// terminates the distributed sandpile).
  bool allreduce_or(bool value);

  /// Gathers each rank's vector at root, concatenated in rank order.
  /// Non-root ranks receive an empty vector.
  template <typename T>
  std::vector<T> gather(int root, const std::vector<T>& mine) {
    static_assert(std::is_trivially_copyable_v<T>);
    constexpr int kGatherTag = -4242;
    if (rank_ != root) {
      const std::uint64_t n = mine.size();
      send(root, kGatherTag, &n, 1);
      if (n) send(root, kGatherTag, mine.data(), mine.size());
      return {};
    }
    std::vector<T> all;
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) {
        all.insert(all.end(), mine.begin(), mine.end());
        continue;
      }
      std::uint64_t n = 0;
      recv(r, kGatherTag, &n, 1);
      std::vector<T> part(n);
      if (n) recv(r, kGatherTag, part.data(), n);
      all.insert(all.end(), part.begin(), part.end());
    }
    return all;
  }

  /// Broadcast from root: root's `count` elements overwrite every rank's
  /// buffer. Collective (all ranks must call).
  template <typename T>
  void broadcast(int root, T* data, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    constexpr int kBcastTag = -4243;
    if (rank_ == root) {
      for (int r = 0; r < size(); ++r)
        if (r != rank_) send(r, kBcastTag, data, count);
    } else {
      recv(root, kBcastTag, data, count);
    }
  }

  /// Scatter from root: rank r receives chunk r of root's `all` vector,
  /// which must hold size() * chunk elements at the root (ignored
  /// elsewhere). Collective.
  template <typename T>
  std::vector<T> scatter(int root, const std::vector<T>& all,
                         std::size_t chunk) {
    static_assert(std::is_trivially_copyable_v<T>);
    constexpr int kScatterTag = -4244;
    std::vector<T> mine(chunk);
    if (rank_ == root) {
      PEACHY_REQUIRE(all.size() == chunk * static_cast<std::size_t>(size()),
                     "scatter needs " << chunk * static_cast<std::size_t>(size())
                                      << " elements, got " << all.size());
      for (int r = 0; r < size(); ++r) {
        if (r == rank_) {
          std::copy_n(all.begin() + static_cast<std::ptrdiff_t>(chunk) * r,
                      chunk, mine.begin());
        } else {
          send(r, kScatterTag, all.data() + chunk * static_cast<std::size_t>(r),
               chunk);
        }
      }
    } else {
      if (chunk) recv(root, kScatterTag, mine.data(), chunk);
    }
    return mine;
  }

  /// Communication counters accumulated by this rank so far.
  const CommStats& stats() const { return stats_; }

 private:
  friend class World;
  Comm(World& world, int rank) : world_(&world), rank_(rank) {}

  void send_bytes(int dest, int tag, const void* data, std::size_t bytes);
  void recv_bytes(int src, int tag, void* data, std::size_t bytes);

  World* world_;
  int rank_;
  CommStats stats_;
};

/// SPMD launcher: runs `body(comm)` on `ranks` threads and joins them.
/// Any exception thrown by a rank is rethrown (first one wins) after all
/// ranks finish or abort. Aggregate stats of all ranks are returned.
CommStats run(int ranks, const std::function<void(Comm&)>& body);

/// The shared state behind a group of ranks. Exposed for tests that need
/// to drive ranks manually; most code should use mpp::run.
class World {
 public:
  explicit World(int ranks);

  int size() const { return ranks_; }

  /// Creates the endpoint for `rank` (each rank exactly once).
  Comm comm(int rank) {
    PEACHY_REQUIRE(rank >= 0 && rank < ranks_, "bad rank " << rank);
    return Comm(*this, rank);
  }

 private:
  friend class Comm;

  struct Message {
    int src;
    std::vector<std::byte> payload;
  };
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    // FIFO per (src, tag) channel, preserving MPI's non-overtaking rule.
    std::map<std::pair<int, int>, std::deque<Message>> channels;
  };

  int ranks_;
  std::vector<Mailbox> mailboxes_;

  // Centralized barrier (sense-reversing via generation counter).
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;

  // Reduction scratch: guarded by barrier_mutex_. reduce_acc_ accumulates
  // the in-progress generation; reduce_result_ is published only when a
  // generation completes (late waiters of generation g may read it while
  // generation g+1 is already accumulating into reduce_acc_ — but g+1
  // cannot *complete* before every g-waiter returned, so the published
  // value stays valid).
  std::int64_t reduce_acc_ = 0;
  std::int64_t reduce_result_ = 0;
  int reduce_count_ = 0;
};

}  // namespace peachy::mpp
