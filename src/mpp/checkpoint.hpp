// Durable world checkpoints for the mpp runtime.
//
// A checkpoint is one file holding every rank's opaque state blob plus the
// epoch that produced it. Rank 0 is the only writer: Comm::checkpoint()
// funnels all blobs to rank 0, which commits them here with the classic
// write-to-temp + atomic-rename protocol — a checkpoint either exists
// completely (rename happened) or not at all (crash mid-write leaves only
// the temp file, which the next load ignores). The payload carries a CRC32
// so a torn or tampered file is rejected loudly instead of restoring
// garbage state into every rank.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace peachy::mpp {

/// Everything needed to restart a world: the epoch counter and one state
/// blob per rank (indexed by rank; blobs may be empty).
struct CheckpointImage {
  int epoch = 0;
  std::vector<std::vector<std::byte>> blobs;
};

/// Name of the committed checkpoint file inside a checkpoint directory.
inline constexpr const char* kCheckpointFile = "ckpt.bin";

/// Atomically commits `image` as `dir/ckpt.bin`. Throws peachy::Error on
/// I/O failure; on success the previous checkpoint is replaced as a unit.
void save_checkpoint(const std::string& dir, const CheckpointImage& image);

/// Loads the committed checkpoint, or nullopt when none has ever been
/// committed. Throws peachy::Error on a corrupt file or when the file was
/// written by a world of a different size than `world`.
std::optional<CheckpointImage> load_checkpoint(const std::string& dir,
                                               int world);

}  // namespace peachy::mpp
