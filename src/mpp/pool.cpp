#include "mpp/pool.hpp"

#include <exception>

#include "core/error.hpp"

namespace peachy::mpp {

/// One gang request: `ranks` seats, claimed by workers one at a time.
/// Lives on the caller's stack for the duration of its run_gang().
struct RankPool::Gang {
  int ranks = 0;
  int next_seat = 0;   ///< seats handed to workers so far
  int finished = 0;    ///< seats whose fn returned
  const std::function<void(int)>* fn = nullptr;
  std::vector<std::exception_ptr> errors;  ///< indexed by seat
  std::condition_variable done_cv;
};

RankPool::RankPool(int capacity) : capacity_(capacity) {
  PEACHY_REQUIRE(capacity >= 1, "rank pool needs >= 1 rank, got " << capacity);
  free_ = capacity;
  workers_.reserve(static_cast<std::size_t>(capacity));
  for (int i = 0; i < capacity; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

RankPool::~RankPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

int RankPool::available() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return free_;
}

void RankPool::run_gang(int ranks, const std::function<void(int)>& fn) {
  PEACHY_REQUIRE(ranks >= 1, "gang needs >= 1 rank, got " << ranks);
  PEACHY_REQUIRE(ranks <= capacity_, "gang of " << ranks
                     << " ranks exceeds pool capacity " << capacity_);
  Gang gang;
  gang.ranks = ranks;
  gang.fn = &fn;
  gang.errors.resize(static_cast<std::size_t>(ranks));

  std::unique_lock<std::mutex> lock(mu_);
  // All-or-nothing: wait until the whole gang fits AND no other gang is
  // still handing out seats (one pending gang at a time keeps seat claiming
  // trivially race-free; callers queue on free_cv_).
  free_cv_.wait(lock, [&] { return pending_ == nullptr && free_ >= ranks; });
  free_ -= ranks;
  pending_ = &gang;
  work_cv_.notify_all();
  gang.done_cv.wait(lock, [&] { return gang.finished == gang.ranks; });
  free_ += ranks;
  free_cv_.notify_all();
  lock.unlock();

  for (auto& e : gang.errors)
    if (e) std::rethrow_exception(e);
}

void RankPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stopping_ || pending_ != nullptr; });
    if (stopping_) return;
    Gang* gang = pending_;
    const int seat = gang->next_seat++;
    if (gang->next_seat == gang->ranks) pending_ = nullptr;
    lock.unlock();
    try {
      (*gang->fn)(seat);
    } catch (...) {
      gang->errors[static_cast<std::size_t>(seat)] = std::current_exception();
    }
    lock.lock();
    if (++gang->finished == gang->ranks) gang->done_cv.notify_all();
  }
}

}  // namespace peachy::mpp
