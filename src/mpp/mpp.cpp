#include "mpp/mpp.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <thread>

#include "obs/obs.hpp"

namespace peachy::mpp {

namespace {

obs::Counter& obs_messages() {
  static obs::Counter& c = obs::Registry::global().counter("mpp.messages");
  return c;
}
obs::Counter& obs_bytes() {
  static obs::Counter& c = obs::Registry::global().counter("mpp.bytes");
  return c;
}
obs::Histogram& obs_msg_bytes() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("mpp.message_bytes");
  return h;
}

}  // namespace

World::World(int ranks) : ranks_(ranks), mailboxes_(ranks > 0 ? ranks : 0) {
  PEACHY_REQUIRE(ranks >= 1, "world needs >= 1 rank, got " << ranks);
}

int Comm::size() const { return world_->size(); }

void Comm::send_bytes(int dest, int tag, const void* data, std::size_t bytes) {
  PEACHY_REQUIRE(dest >= 0 && dest < world_->size(),
                 "send to bad rank " << dest);
  World::Message msg;
  msg.src = rank_;
  msg.payload.resize(bytes);
  if (bytes) std::memcpy(msg.payload.data(), data, bytes);
  auto& box = world_->mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard lock(box.mutex);
    box.channels[{rank_, tag}].push_back(std::move(msg));
  }
  box.cv.notify_all();
  ++stats_.messages_sent;
  stats_.bytes_sent += bytes;
  if (obs::enabled()) {
    obs_messages().add(1);
    obs_bytes().add(bytes);
    obs_msg_bytes().observe(static_cast<std::int64_t>(bytes));
    obs::Tracer::global().instant(
        "mpp.send", "mpp",
        {{"src", rank_},
         {"dst", dest},
         {"tag", tag},
         {"bytes", static_cast<std::int64_t>(bytes)}});
  }
}

void Comm::recv_bytes(int src, int tag, void* data, std::size_t bytes) {
  PEACHY_REQUIRE(src >= 0 && src < world_->size(), "recv from bad rank " << src);
  auto& box = world_->mailboxes_[static_cast<std::size_t>(rank_)];
  std::unique_lock lock(box.mutex);
  auto& channel = box.channels[{src, tag}];
  box.cv.wait(lock, [&channel] { return !channel.empty(); });
  World::Message msg = std::move(channel.front());
  channel.pop_front();
  PEACHY_REQUIRE(msg.payload.size() == bytes,
                 "message size mismatch: expected " << bytes << " bytes, got "
                                                    << msg.payload.size());
  if (bytes) std::memcpy(data, msg.payload.data(), bytes);
  if (obs::enabled()) {
    obs::Tracer::global().instant(
        "mpp.recv", "mpp",
        {{"src", src},
         {"dst", rank_},
         {"tag", tag},
         {"bytes", static_cast<std::int64_t>(bytes)}});
  }
}

void Comm::barrier() {
  World& w = *world_;
  std::unique_lock lock(w.barrier_mutex_);
  const std::uint64_t my_gen = w.barrier_generation_;
  if (++w.barrier_waiting_ == w.size()) {
    w.barrier_waiting_ = 0;
    ++w.barrier_generation_;
    w.barrier_cv_.notify_all();
  } else {
    w.barrier_cv_.wait(lock, [&w, my_gen] {
      return w.barrier_generation_ != my_gen;
    });
  }
}

namespace {
// Shared reduction over the barrier state machine. The generation pattern
// guarantees the published accumulator stays valid until every participant
// of this generation has read it (a rank cannot join generation g+1 before
// leaving generation g).
std::int64_t reduce(World& w, std::mutex& m, std::condition_variable& cv,
                    std::uint64_t& gen, std::int64_t& acc,
                    std::int64_t& result, int& count, std::int64_t value,
                    std::int64_t (*op)(std::int64_t, std::int64_t)) {
  std::unique_lock lock(m);
  if (count == 0) acc = value;
  else acc = op(acc, value);
  ++count;
  const std::uint64_t my_gen = gen;
  if (count == w.size()) {
    count = 0;
    result = acc;  // publish: stays untouched until this generation's
    ++gen;         // waiters have all returned (see World comment)
    cv.notify_all();
    return result;
  }
  cv.wait(lock, [&gen, my_gen] { return gen != my_gen; });
  return result;
}
}  // namespace

std::int64_t Comm::allreduce_sum(std::int64_t value) {
  World& w = *world_;
  return reduce(w, w.barrier_mutex_, w.barrier_cv_, w.barrier_generation_,
                w.reduce_acc_, w.reduce_result_, w.reduce_count_, value,
                [](std::int64_t a, std::int64_t b) { return a + b; });
}

std::int64_t Comm::allreduce_max(std::int64_t value) {
  World& w = *world_;
  return reduce(w, w.barrier_mutex_, w.barrier_cv_, w.barrier_generation_,
                w.reduce_acc_, w.reduce_result_, w.reduce_count_, value,
                [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
}

bool Comm::allreduce_or(bool value) { return allreduce_max(value ? 1 : 0) != 0; }

CommStats run(int ranks, const std::function<void(Comm&)>& body) {
  World world(ranks);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(ranks));
  std::vector<CommStats> stats(static_cast<std::size_t>(ranks));
  threads.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm = world.comm(r);
      try {
        body(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
      stats[static_cast<std::size_t>(r)] = comm.stats();
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& err : errors)
    if (err) std::rethrow_exception(err);
  CommStats total;
  for (const auto& s : stats) {
    total.messages_sent += s.messages_sent;
    total.bytes_sent += s.bytes_sent;
  }
  return total;
}

}  // namespace peachy::mpp
