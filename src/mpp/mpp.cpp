#include "mpp/mpp.hpp"

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <thread>
#include <utility>

#include "mpp/checkpoint.hpp"
#include "mpp/pool.hpp"
#include "mpp/telemetry.hpp"
#include "net/metrics_server.hpp"
#include "net/process.hpp"
#include "net/rendezvous.hpp"
#include "obs/cluster.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"

namespace peachy::mpp {

namespace {

using Clock = std::chrono::steady_clock;

obs::Counter& obs_messages() {
  static obs::Counter& c = obs::Registry::global().counter("mpp.messages");
  return c;
}
obs::Counter& obs_bytes() {
  static obs::Counter& c = obs::Registry::global().counter("mpp.bytes");
  return c;
}
obs::Histogram& obs_msg_bytes() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("mpp.message_bytes");
  return h;
}
obs::Counter& obs_checkpoints() {
  static obs::Counter& c = obs::Registry::global().counter("mpp.checkpoints");
  return c;
}
obs::Counter& obs_checkpoint_bytes() {
  static obs::Counter& c =
      obs::Registry::global().counter("mpp.checkpoint_bytes");
  return c;
}
obs::Counter& obs_restores() {
  static obs::Counter& c = obs::Registry::global().counter("mpp.restores");
  return c;
}
obs::Counter& obs_restarts() {
  static obs::Counter& c = obs::Registry::global().counter("mpp.restarts");
  return c;
}

// Process-global worker identity and the SIGTERM latch. sig_atomic_t +
// a plain handler keeps the signal path async-signal-safe; the launcher
// process never sets either, so in_spawned_worker() doubles as "is the
// launcher-side hook usable here".
std::atomic<bool> g_in_spawned_worker{false};
volatile sig_atomic_t g_spawn_abort = 0;

void on_worker_sigterm(int) { g_spawn_abort = 1; }

}  // namespace

bool in_spawned_worker() { return g_in_spawned_worker.load(); }

bool spawn_abort_requested() { return g_spawn_abort != 0; }

const char* to_string(TransportKind kind) {
  return kind == TransportKind::kTcp ? "tcp" : "inproc";
}

TransportKind transport_from_string(const std::string& name) {
  if (name == "inproc") return TransportKind::kInproc;
  if (name == "tcp") return TransportKind::kTcp;
  throw Error("unknown transport '" + name + "' (expected inproc or tcp)");
}

void Comm::send_bytes(int dest, int tag, const void* data, std::size_t bytes) {
  PEACHY_REQUIRE(dest >= 0 && dest < size(),
                 "rank " << rank() << ": send to bad rank " << dest
                         << " (world size " << size() << ", tag " << tag
                         << ")");
  if (!obs::enabled()) {
    transport_->send(dest, tag, data, bytes);
    ++stats_.messages_sent;
    stats_.bytes_sent += bytes;
    return;
  }
  // Propagation rule (DESIGN.md "Distributed telemetry"): every traced send
  // mints a span whose parent is the thread's current context (usually the
  // last adopted recv) and travels as the context on the wire, so the
  // receiving rank's recv span becomes its child.
  namespace cluster = obs::cluster;
  const std::uint64_t trace = cluster::trace_id();
  const std::uint64_t span = cluster::next_span_id();
  const std::uint64_t parent = cluster::current().span_id;
  {
    cluster::ScopedContext ctx({trace, span});
    transport_->send(dest, tag, data, bytes);
  }
  ++stats_.messages_sent;
  stats_.bytes_sent += bytes;
  obs_messages().add(1);
  obs_bytes().add(bytes);
  obs_msg_bytes().observe(static_cast<std::int64_t>(bytes));
  obs::Tracer::global().instant(
      "mpp.send", "mpp",
      {{"src", rank()},
       {"dst", dest},
       {"tag", tag},
       {"bytes", static_cast<std::int64_t>(bytes)},
       {"trace_id", static_cast<std::int64_t>(trace)},
       {"span_id", static_cast<std::int64_t>(span)},
       {"parent_span_id", static_cast<std::int64_t>(parent)}});
}

void Comm::send(int dest, int tag, std::span<const std::byte> payload) {
  PEACHY_REQUIRE(dest >= 0 && dest < size(),
                 "rank " << rank() << ": send to bad rank " << dest
                         << " (world size " << size() << ", tag " << tag
                         << ")");
  if (!obs::enabled()) {
    transport_->send(dest, tag, payload);
    ++stats_.messages_sent;
    stats_.bytes_sent += payload.size();
    return;
  }
  namespace cluster = obs::cluster;
  const std::uint64_t trace = cluster::trace_id();
  const std::uint64_t span = cluster::next_span_id();
  const std::uint64_t parent = cluster::current().span_id;
  {
    cluster::ScopedContext ctx({trace, span});
    transport_->send(dest, tag, payload);
  }
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();
  obs_messages().add(1);
  obs_bytes().add(payload.size());
  obs_msg_bytes().observe(static_cast<std::int64_t>(payload.size()));
  obs::Tracer::global().instant(
      "mpp.send", "mpp",
      {{"src", rank()},
       {"dst", dest},
       {"tag", tag},
       {"bytes", static_cast<std::int64_t>(payload.size())},
       {"trace_id", static_cast<std::int64_t>(trace)},
       {"span_id", static_cast<std::int64_t>(span)},
       {"parent_span_id", static_cast<std::int64_t>(parent)}});
}

void Comm::recv_bytes(int src, int tag, void* data, std::size_t bytes) {
  PEACHY_REQUIRE(src >= 0 && src < size(),
                 "rank " << rank() << ": recv from bad rank " << src
                         << " (world size " << size() << ", tag " << tag
                         << ")");
  net::MsgInfo info;
  const std::vector<std::byte> payload = transport_->recv(src, tag, &info);
  PEACHY_REQUIRE(payload.size() == bytes,
                 "rank " << rank() << ": message size mismatch from rank "
                         << src << " tag " << tag << ": expected " << bytes
                         << " bytes, got " << payload.size());
  if (bytes) std::memcpy(data, payload.data(), bytes);
  if (obs::enabled()) {
    namespace cluster = obs::cluster;
    std::vector<std::pair<std::string, std::int64_t>> args = {
        {"src", src},
        {"dst", rank()},
        {"tag", tag},
        {"bytes", static_cast<std::int64_t>(bytes)}};
    if (info.has_ctx) {
      // Adopt the sender's context: this recv span is a child of the send
      // span, and it stays current on this thread so follow-up sends chain
      // off it — the cross-rank causal tree the merged trace renders.
      const std::uint64_t span = cluster::next_span_id();
      args.emplace_back("trace_id", static_cast<std::int64_t>(info.trace_id));
      args.emplace_back("span_id", static_cast<std::int64_t>(span));
      args.emplace_back("parent_span_id",
                        static_cast<std::int64_t>(info.span_id));
      cluster::set_current({info.trace_id, span});
    }
    obs::Tracer::global().instant("mpp.recv", "mpp", std::move(args));
  }
}

// Collectives are plain messages through rank 0 on reserved tags, so they
// behave identically over mailboxes, sockets, and processes. A size-1 world
// sends nothing (single-rank runs must report zero communication).

void Comm::barrier() {
  if (size() == 1) return;
  std::uint8_t token = 0;
  if (rank_() == 0) {
    for (int r = 1; r < size(); ++r) recv(r, detail_tag_barrier(), &token, 1);
    for (int r = 1; r < size(); ++r) send(r, detail_tag_barrier(), &token, 1);
  } else {
    send(0, detail_tag_barrier(), &token, 1);
    recv(0, detail_tag_barrier(), &token, 1);
  }
}

std::int64_t Comm::allreduce(std::int64_t value,
                             std::int64_t (*op)(std::int64_t, std::int64_t)) {
  if (size() == 1) return value;
  if (rank_() == 0) {
    std::int64_t acc = value;
    for (int r = 1; r < size(); ++r) {
      std::int64_t part = 0;
      recv(r, detail_tag_reduce(), &part, 1);
      acc = op(acc, part);
    }
    for (int r = 1; r < size(); ++r) send(r, detail_tag_reduce(), &acc, 1);
    return acc;
  }
  send(0, detail_tag_reduce(), &value, 1);
  std::int64_t result = 0;
  recv(0, detail_tag_reduce(), &result, 1);
  return result;
}

std::int64_t Comm::allreduce_sum(std::int64_t value) {
  return allreduce(value,
                   [](std::int64_t a, std::int64_t b) { return a + b; });
}

std::int64_t Comm::allreduce_max(std::int64_t value) {
  return allreduce(
      value, [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
}

bool Comm::allreduce_or(bool value) {
  return allreduce_max(value ? 1 : 0) != 0;
}

int Comm::checkpoint(const void* data, std::size_t bytes) {
  PEACHY_REQUIRE(checkpointing(),
                 "rank " << rank() << ": Comm::checkpoint called without a "
                            "checkpoint directory (set Resilience::"
                            "checkpoint_dir or run supervised)");
  obs::Span span("mpp.checkpoint", "mpp");
  span.arg("rank", rank());
  span.arg("bytes", static_cast<std::int64_t>(bytes));
  if (rank_() != 0) {
    const std::uint64_t n = bytes;
    send(0, detail_tag_ckpt(), &n, 1);
    if (bytes) send_bytes(0, detail_tag_ckpt(), data, bytes);
    std::int32_t epoch = 0;
    recv(0, detail_tag_ckpt(), &epoch, 1);
    epoch_ = epoch;
    return epoch_;
  }
  CheckpointImage image;
  image.epoch = epoch_ + 1;
  image.blobs.resize(static_cast<std::size_t>(size()));
  const auto* p = static_cast<const std::byte*>(data);
  image.blobs[0].assign(p, p + bytes);
  std::uint64_t total = bytes;
  for (int r = 1; r < size(); ++r) {
    std::uint64_t n = 0;
    recv(r, detail_tag_ckpt(), &n, 1);
    auto& blob = image.blobs[static_cast<std::size_t>(r)];
    blob.resize(n);
    if (n) recv_bytes(r, detail_tag_ckpt(), blob.data(), n);
    total += n;
  }
  save_checkpoint(ckpt_dir_, image);  // the commit point for this epoch
  epoch_ = image.epoch;
  const std::int32_t epoch = epoch_;
  for (int r = 1; r < size(); ++r) send(r, detail_tag_ckpt(), &epoch, 1);
  if (obs::enabled()) {
    obs_checkpoints().add(1);
    obs_checkpoint_bytes().add(total);
  }
  return epoch_;
}

std::optional<std::vector<std::byte>> Comm::restore() {
  PEACHY_REQUIRE(checkpointing(),
                 "rank " << rank() << ": Comm::restore called without a "
                            "checkpoint directory");
  obs::Span span("mpp.restore", "mpp");
  span.arg("rank", rank());
  if (rank_() == 0) {
    std::optional<CheckpointImage> image = load_checkpoint(ckpt_dir_, size());
    const std::int32_t epoch = image ? image->epoch : -1;
    for (int r = 1; r < size(); ++r) send(r, detail_tag_ckpt(), &epoch, 1);
    if (!image) return std::nullopt;
    for (int r = 1; r < size(); ++r) {
      const auto& blob = image->blobs[static_cast<std::size_t>(r)];
      const std::uint64_t n = blob.size();
      send(r, detail_tag_ckpt(), &n, 1);
      if (n) send_bytes(r, detail_tag_ckpt(), blob.data(), n);
    }
    epoch_ = image->epoch;
    if (obs::enabled()) obs_restores().add(1);
    return std::move(image->blobs[0]);
  }
  std::int32_t epoch = 0;
  recv(0, detail_tag_ckpt(), &epoch, 1);
  if (epoch < 0) return std::nullopt;
  std::uint64_t n = 0;
  recv(0, detail_tag_ckpt(), &n, 1);
  std::vector<std::byte> blob(n);
  if (n) recv_bytes(0, detail_tag_ckpt(), blob.data(), n);
  epoch_ = epoch;
  if (obs::enabled()) obs_restores().add(1);
  return blob;
}

void Comm::set_result(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const std::byte*>(data);
  result_.assign(p, p + bytes);
}

World::World(int ranks) : hub_(std::make_shared<net::InprocHub>(ranks)) {}

Comm World::comm(int rank) {
  PEACHY_REQUIRE(rank >= 0 && rank < hub_->size(),
                 "no rank " << rank << " in a world of " << hub_->size());
  return Comm(std::make_unique<net::InprocTransport>(hub_, rank));
}

namespace {

// ---------------------------------------------------------------------------
// Threaded runner (inproc mailboxes or tcp sockets; ranks are threads).

struct ThreadRank {
  CommStats stats;
  net::TcpTransport::Stats net;
  bool is_tcp = false;
  std::exception_ptr error;
  std::vector<std::byte> result;
};

RunOutcome run_threads(int ranks, const RunOptions& options,
                       const std::string& ckpt_dir,
                       const std::function<void(Comm&)>& body) {
  PEACHY_REQUIRE(ranks >= 1, "world needs >= 1 rank, got " << ranks);
  const bool tcp = options.transport == TransportKind::kTcp;

  // Threaded telemetry is the degenerate single-process case: every rank
  // already feeds the same registry/tracer, so there is nothing to ship —
  // serve the process registry live and write the trace after the join.
  const Telemetry& telemetry = options.telemetry;
  std::unique_ptr<obs::MetricsServer> metrics_server;
  if (telemetry.active()) {
    obs::set_enabled(true);
    if (telemetry.metrics_port >= 0) {
      obs::MetricsServer::Options opts;
      opts.port = telemetry.metrics_port;
      metrics_server = std::make_unique<obs::MetricsServer>(opts);
      if (!telemetry.port_file.empty()) {
        std::ofstream out(telemetry.port_file, std::ios::trunc);
        out << metrics_server->port() << "\n";
      }
    }
  }

  std::shared_ptr<net::InprocHub> hub;
  std::unique_ptr<net::RendezvousServer> server;
  if (tcp) {
    server = std::make_unique<net::RendezvousServer>(
        ranks, /*collect_results=*/false, options.tcp.connect_timeout_ms);
    server->start();
  } else {
    hub = std::make_shared<net::InprocHub>(ranks);
  }

  std::vector<ThreadRank> outcomes(static_cast<std::size_t>(ranks));
  const auto rank_body = [&](int r) {
    ThreadRank& mine = outcomes[static_cast<std::size_t>(r)];
    try {
      std::unique_ptr<net::Transport> transport;
      net::TcpTransport* tcp_ptr = nullptr;
      if (tcp) {
        auto t = std::make_unique<net::TcpTransport>(
            r, ranks, server->port(), options.tcp);
        tcp_ptr = t.get();
        transport = std::move(t);
      } else {
        transport = std::make_unique<net::InprocTransport>(hub, r);
      }
      Comm comm(std::move(transport));
      comm.set_checkpoint_dir(ckpt_dir);
      try {
        body(comm);
      } catch (...) {
        mine.error = std::current_exception();
      }
      // Say goodbye even when the body failed, so peers blocked on this
      // rank observe a shutdown (or PeerDied) instead of hanging.
      try {
        comm.transport().shutdown();
      } catch (...) {
        // Peers that died mid-shutdown are already accounted for.
      }
      mine.stats = comm.stats();
      if (tcp_ptr) {
        mine.net = tcp_ptr->stats();
        mine.is_tcp = true;
      }
      if (r == 0) mine.result = comm.take_result();
    } catch (...) {
      if (!mine.error) mine.error = std::current_exception();
    }
  };
  if (options.pool != nullptr) {
    // Pooled world: the gang blocks until `ranks` pool threads are free,
    // then runs every rank on reused threads — no per-job thread churn,
    // and concurrent worlds share one machine-wide rank budget.
    options.pool->run_gang(ranks, rank_body);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) threads.emplace_back(rank_body, r);
    for (auto& t : threads) t.join();
  }

  if (metrics_server) metrics_server->stop();
  if (telemetry.active() && !telemetry.trace_path.empty()) {
    try {
      obs::Tracer::global().write_chrome_json(telemetry.trace_path);
    } catch (const Error&) {
      // An unwritable trace path must not fail the world.
    }
  }

  std::exception_ptr server_error;
  if (server) {
    try {
      server->join();
    } catch (...) {
      server_error = std::current_exception();
    }
  }
  for (const auto& o : outcomes)
    if (o.error) std::rethrow_exception(o.error);
  if (server_error) std::rethrow_exception(server_error);

  RunOutcome out;
  for (auto& o : outcomes) {
    out.comm.messages_sent += o.stats.messages_sent;
    out.comm.bytes_sent += o.stats.bytes_sent;
    if (o.is_tcp) {
      out.net.retransmits += o.net.retransmits;
      out.net.window_stalls += o.net.window_stalls;
      out.net.acks_sent += o.net.acks_sent;
      out.net.frames_abandoned += o.net.frames_abandoned;
      out.net.fault_dropped += o.net.fault.dropped;
      out.net.fault_duplicated += o.net.fault.duplicated;
      out.net.fault_delayed += o.net.fault.delayed;
      out.net.fault_severed += o.net.fault.severed;
    }
  }
  out.rank0_result = std::move(outcomes[0].result);
  return out;
}

// ---------------------------------------------------------------------------
// Spawned runner (ranks are processes; tcp is the only possible substrate).

constexpr const char* kEnvRank = "PEACHY_MPP_WORKER_RANK";
constexpr const char* kEnvWorld = "PEACHY_MPP_WORLD";
constexpr const char* kEnvPort = "PEACHY_MPP_RENDEZVOUS_PORT";
constexpr const char* kEnvFault = "PEACHY_MPP_FAULT";
constexpr const char* kEnvCkpt = "PEACHY_MPP_CKPT_DIR";
constexpr const char* kEnvWindow = "PEACHY_MPP_NET_WINDOW";
constexpr const char* kEnvTelemetryMs = "PEACHY_MPP_TELEMETRY_MS";
constexpr const char* kEnvTrace = "PEACHY_MPP_TRACE";
constexpr const char* kEnvMetricsPort = "PEACHY_MPP_METRICS_PORT";
constexpr const char* kEnvPortFile = "PEACHY_MPP_PORT_FILE";
constexpr const char* kEnvTraceId = "PEACHY_MPP_TRACE_ID";

/// Runs one worker's life: join the mesh, run the body, report the outcome
/// over the rendezvous connection, _exit. Never returns — a worker process
/// must not fall back into the launcher's code path.
[[noreturn]] void worker_main(int rank, int world, int port,
                              const net::TcpOptions& tcp,
                              const std::string& ckpt_dir,
                              const std::string& flight_dir,
                              const Telemetry& telemetry,
                              const std::function<void(Comm&)>& body) {
  net::WorkerReport report;
  report.reported = true;
  bool sent = false;
  net::TcpOptions worker_tcp = tcp;
  // This process is now a worker: route SIGTERM into the cooperative abort
  // latch (spawn_abort_requested) instead of the default instant death, so
  // a supervised cancel lets the body reach a checkpoint boundary first.
  g_in_spawned_worker.store(true);
  struct sigaction sa = {};
  sa.sa_handler = on_worker_sigterm;
  ::sigaction(SIGTERM, &sa, nullptr);
  // Flight-recorder identity first, telemetry or not: the ring is always
  // on, and a crash or PeerDied dump must name this rank even when the
  // failure happens during mesh setup. Re-reading the dump dir matters for
  // fork()ed workers, which inherit a recorder that may have been
  // constructed in the launcher before the env var was set. An explicit
  // per-run flight_dir (peachyd's per-job dump directory) wins over the
  // inherited environment.
  obs::FlightRecorder::global().set_identity(rank);
  if (!flight_dir.empty())
    obs::FlightRecorder::global().set_dump_dir(flight_dir);
  else if (const char* dir = std::getenv("PEACHY_FLIGHT_DIR"))
    obs::FlightRecorder::global().set_dump_dir(dir);
  obs::FlightRecorder::install_crash_handler();
  // Seed the ring: a crash before the body's first telemetry event must
  // still produce a dump (an empty ring suppresses one).
  obs::FlightRecorder::global().note("worker.start", rank, world);
  if (telemetry.active()) {
    obs::set_enabled(true);
    obs::cluster::set_rank(rank);
    if (telemetry.trace_id) obs::cluster::set_trace_id(telemetry.trace_id);
    // Clock probes ride the heartbeat path; without them the rank-0 trace
    // merge has no offsets to correct with.
    if (worker_tcp.clock_sync_ms <= 0) worker_tcp.clock_sync_ms = 50;
  }
  try {
    auto transport =
        std::make_unique<net::TcpTransport>(rank, world, port, worker_tcp);
    net::TcpTransport* raw = transport.get();
    std::unique_ptr<TelemetrySession> session;
    if (telemetry.active())
      session = std::make_unique<TelemetrySession>(*raw, world, telemetry);
    Comm comm(std::move(transport));
    comm.set_checkpoint_dir(ckpt_dir);
    try {
      body(comm);
      report.ok = true;
    } catch (const std::exception& e) {
      report.error = e.what();
    } catch (...) {
      report.error = "unknown exception";
    }
    // Finals must ship before the goodbye; finish() never throws.
    if (session) session->finish();
    try {
      comm.transport().shutdown();
    } catch (...) {
      if (report.ok) {
        report.ok = false;
        report.error = "shutdown failed";
      }
    }
    report.messages_sent = comm.stats().messages_sent;
    report.bytes_sent = comm.stats().bytes_sent;
    const net::TcpTransport::Stats net_stats = raw->stats();
    report.retransmits = net_stats.retransmits;
    report.window_stalls = net_stats.window_stalls;
    report.acks_sent = net_stats.acks_sent;
    report.frames_abandoned = net_stats.frames_abandoned;
    report.fault_dropped = net_stats.fault.dropped;
    report.fault_duplicated = net_stats.fault.duplicated;
    report.fault_delayed = net_stats.fault.delayed;
    report.fault_severed = net_stats.fault.severed;
    if (rank == 0) report.result = comm.take_result();
    net::rendezvous_report(raw->rendezvous_socket(), rank, report);
    sent = true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "peachy mpp worker rank %d: %s\n", rank, e.what());
  }
  ::_exit(sent && report.ok ? 0 : 1);
}

// Resolves the checkpoint directory a supervised run uses. A caller-named
// directory is created and kept (that is what cross-invocation resume needs);
// an unnamed one under supervision gets a private temp directory that dies
// with the run. Unsupervised runs with no directory get "" — checkpointing
// stays disabled and Comm::checkpoint throws.
class CkptDirGuard {
 public:
  explicit CkptDirGuard(const Resilience& resilience)
      : remove_on_success_(resilience.remove_checkpoint_on_success) {
    if (!resilience.checkpoint_dir.empty()) {
      dir_ = resilience.checkpoint_dir;
      std::filesystem::create_directories(dir_);
    } else if (resilience.max_restarts > 0) {
      char tmpl[] = "/tmp/peachy-ckpt-XXXXXX";
      PEACHY_REQUIRE(::mkdtemp(tmpl) != nullptr,
                     "mkdtemp failed: " << std::strerror(errno));
      dir_ = tmpl;
      owned_ = true;
    }
  }
  ~CkptDirGuard() {
    if (owned_) {
      std::error_code ec;
      std::filesystem::remove_all(dir_, ec);
    }
  }
  CkptDirGuard(const CkptDirGuard&) = delete;
  CkptDirGuard& operator=(const CkptDirGuard&) = delete;

  const std::string& dir() const { return dir_; }

  /// Retention policy for a *named* directory after a clean finish: by
  /// default it is kept (resume material); with
  /// Resilience::remove_checkpoint_on_success it is deleted so finished
  /// jobs stop accumulating ckpt.bin directories. Failed runs always keep
  /// the directory — it is exactly what the retry needs.
  void on_success() {
    if (!remove_on_success_ || owned_ || dir_.empty()) return;
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

 private:
  std::string dir_;
  bool owned_ = false;
  bool remove_on_success_ = false;
};

/// One attempt at a spawned world: spawn every rank (through the launcher's
/// respawn slots, so a later attempt replaces earlier incarnations), serve
/// the rendezvous, reap, and either assemble the outcome or throw the
/// root-cause error. With an active SpawnControl a watchdog thread (started
/// only after the forks, to keep the fork itself single-threaded here)
/// polls the cancel hook and the wall-clock deadline and escalates
/// SIGTERM -> grace -> SIGKILL; `fired` records which guard tripped.
RunOutcome spawn_attempt(int ranks,
                         const std::vector<std::string>& worker_argv,
                         const std::function<void(Comm&)>& body,
                         const net::TcpOptions& tcp,
                         const std::string& ckpt_dir,
                         const Telemetry& telemetry,
                         net::ProcessLauncher& launcher,
                         const SpawnControl& control,
                         Clock::time_point deadline_tp,
                         std::atomic<int>& fired) {
  // The serve/wait budget has to cover mesh setup plus the whole body; a
  // configured deadline extends it so the watchdog, not the rendezvous
  // timeout, is what ends an over-deadline run.
  int budget_ms = tcp.connect_timeout_ms + tcp.recv_timeout_ms;
  if (control.deadline_ms > 0)
    budget_ms = std::max(
        budget_ms, control.deadline_ms + control.term_grace_ms + 2000);

  net::RendezvousServer server(ranks, /*collect_results=*/true, budget_ms);
  launcher.set_child_limits(control.limits);
  if (worker_argv.empty()) {
    launcher.fork_workers(ranks, [&](int rank) -> int {
      server.close_listener_in_child();
      worker_main(rank, ranks, server.port(), tcp, ckpt_dir,
                  control.flight_dir, telemetry, body);
    });
  } else {
    const int port = server.port();
    launcher.exec_workers(
        ranks, worker_argv,
        [&](int rank) -> std::vector<std::pair<std::string, std::string>> {
          std::vector<std::pair<std::string, std::string>> env = {
              {kEnvRank, std::to_string(rank)},
              {kEnvWorld, std::to_string(ranks)},
              {kEnvPort, std::to_string(port)},
              {kEnvFault, tcp.fault.encode()},
              {kEnvWindow, std::to_string(tcp.window_frames)}};
          if (!ckpt_dir.empty()) env.emplace_back(kEnvCkpt, ckpt_dir);
          if (!control.flight_dir.empty())
            env.emplace_back("PEACHY_FLIGHT_DIR", control.flight_dir);
          if (telemetry.active()) {
            env.emplace_back(kEnvTelemetryMs,
                             std::to_string(telemetry.interval_ms));
            env.emplace_back(kEnvTraceId,
                             std::to_string(telemetry.trace_id));
            if (!telemetry.trace_path.empty())
              env.emplace_back(kEnvTrace, telemetry.trace_path);
            if (telemetry.metrics_port >= 0)
              env.emplace_back(kEnvMetricsPort,
                               std::to_string(telemetry.metrics_port));
            if (!telemetry.port_file.empty())
              env.emplace_back(kEnvPortFile, telemetry.port_file);
          }
          return env;
        });
  }

  // The watchdog starts strictly after the forks above, so the children
  // never inherit a half-born thread. It only touches the launcher through
  // signal-sending entry points, which are mutex-guarded against the
  // wait_all reap below.
  std::atomic<bool> watchdog_stop{false};
  std::thread watchdog;
  const bool guarded = control.should_abort || control.deadline_ms > 0;
  if (guarded) {
    watchdog = std::thread([&] {
      const auto poll = std::chrono::milliseconds(std::max(1, control.poll_ms));
      while (!watchdog_stop.load()) {
        int why = 0;
        if (control.should_abort && control.should_abort())
          why = 1;
        else if (control.deadline_ms > 0 && Clock::now() >= deadline_tp)
          why = 2;
        if (why != 0) {
          fired.store(why);
          launcher.terminate_all(SIGTERM);
          const auto kill_at =
              Clock::now() + std::chrono::milliseconds(control.term_grace_ms);
          while (!watchdog_stop.load() && Clock::now() < kill_at)
            std::this_thread::sleep_for(poll);
          if (!watchdog_stop.load()) launcher.kill_all();
          return;
        }
        std::this_thread::sleep_for(poll);
      }
    });
  }

  // Serve inline, then reap every worker (deadline-bounded, never hangs).
  std::exception_ptr serve_error;
  try {
    server.serve();
  } catch (...) {
    serve_error = std::current_exception();
  }
  const std::vector<int> codes = launcher.wait_all(budget_ms);
  watchdog_stop.store(true);
  if (watchdog.joinable()) watchdog.join();

  // One failing rank usually drags its peers down with PeerDied; report
  // the root cause (a silent death or a non-peer-death failure), not the
  // first cascade victim.
  RunOutcome out;
  std::string root_error, any_error;
  net::ExitClass root_class = net::ExitClass::kNonzero;
  for (int r = 0; r < ranks; ++r) {
    const net::WorkerReport& rep =
        server.reports()[static_cast<std::size_t>(r)];
    if (!rep.reported) {
      const int code = codes[static_cast<std::size_t>(r)];
      const std::string msg = "mpp worker rank " + std::to_string(r) +
                              " died before reporting (exit code " +
                              std::to_string(code) + ": " +
                              net::describe_exit_code(code) + ")";
      if (root_error.empty()) {
        root_error = msg;
        root_class = net::classify_exit_code(code);
      }
      if (any_error.empty()) any_error = msg;
      continue;
    }
    if (!rep.ok) {
      const std::string msg =
          "mpp worker rank " + std::to_string(r) + " failed: " + rep.error;
      if (any_error.empty()) any_error = msg;
      if (root_error.empty() &&
          rep.error.find("peer rank") == std::string::npos)
        root_error = msg;
    }
    out.comm.messages_sent += rep.messages_sent;
    out.comm.bytes_sent += rep.bytes_sent;
    out.net.retransmits += rep.retransmits;
    out.net.window_stalls += rep.window_stalls;
    out.net.acks_sent += rep.acks_sent;
    out.net.frames_abandoned += rep.frames_abandoned;
    out.net.fault_dropped += rep.fault_dropped;
    out.net.fault_duplicated += rep.fault_duplicated;
    out.net.fault_delayed += rep.fault_delayed;
    out.net.fault_severed += rep.fault_severed;
    if (r == 0) out.rank0_result = rep.result;
  }
  // Cumulative max across attempts: the launcher is shared by the whole
  // supervise loop and folds every reaped incarnation into its peak.
  out.peak_rss_bytes = launcher.peak_rss_bytes();
  // A tripped guard outranks the per-worker errors below it: a deadline or
  // forced cancel explains every death it caused, and both are terminal
  // (supervise must not spend restart budget re-running stopped work).
  const bool attempt_failed =
      !root_error.empty() || !any_error.empty() || serve_error;
  if (fired.load() == 2)
    throw SpawnError(
        SpawnFailure::kTimeout,
        "spawned world exceeded its " + std::to_string(control.deadline_ms) +
            " ms wall-clock deadline (SIGTERM, then SIGKILL after " +
            std::to_string(control.term_grace_ms) + " ms grace)");
  if (fired.load() == 1 && attempt_failed)
    throw SpawnError(SpawnFailure::kCancelled,
                     "spawned world cancelled; workers did not exit within "
                     "the " +
                         std::to_string(control.term_grace_ms) +
                         " ms SIGTERM grace" +
                         (root_error.empty() ? "" : " (" + root_error + ")"));
  if (!root_error.empty())
    throw SpawnError(root_class == net::ExitClass::kSignaled
                         ? SpawnFailure::kCrash
                         : SpawnFailure::kNonzero,
                     root_error);
  if (!any_error.empty()) throw Error(any_error);
  if (serve_error) std::rethrow_exception(serve_error);
  return out;
}

/// Shared supervision loop: run one attempt, and on a runtime Error either
/// give up (budget exhausted) or disarm the injected faults and go again —
/// the next attempt restores from whatever checkpoint the failed one
/// committed. `attempt_fn(tcp)` runs one full world attempt.
RunOutcome supervise(const Resilience& resilience, const net::TcpOptions& tcp,
                     const std::function<RunOutcome(const net::TcpOptions&)>&
                         attempt_fn) {
  net::TcpOptions attempt_tcp = tcp;
  int restarts = 0;
  for (int attempt = 0;; ++attempt) {
    try {
      RunOutcome out = attempt_fn(attempt_tcp);
      out.restarts = restarts;
      return out;
    } catch (const Error& e) {
      // Deliberate stops (deadline, forced cancel) are terminal: restarting
      // would re-run work the caller just told us to kill.
      if (const auto* spawn = dynamic_cast<const SpawnError*>(&e);
          spawn != nullptr && (spawn->kind() == SpawnFailure::kTimeout ||
                               spawn->kind() == SpawnFailure::kCancelled))
        throw;
      if (attempt >= resilience.max_restarts) throw;
      ++restarts;
      if (obs::enabled()) {
        obs_restarts().add(1);
        obs::Tracer::global().instant("mpp.restart", "mpp",
                                      {{"attempt", attempt + 1}});
      }
      std::fprintf(stderr,
                   "peachy mpp: world failed (%s); restart %d of %d\n",
                   e.what(), restarts, resilience.max_restarts);
      if (resilience.disarm_faults_on_restart)
        attempt_tcp.fault = net::FaultPlan{};
    }
  }
}

}  // namespace

RunOutcome run_spawned(int ranks, const std::vector<std::string>& worker_argv,
                       const std::function<void(Comm&)>& body,
                       const net::TcpOptions& tcp,
                       const Resilience& resilience,
                       const Telemetry& telemetry,
                       const SpawnControl& control) {
  // An exec'd worker re-enters main() and reaches this same call site; the
  // environment routes it into the worker path instead of launching again.
  if (const char* rank_env = std::getenv(kEnvRank)) {
    const char* world_env = std::getenv(kEnvWorld);
    const char* port_env = std::getenv(kEnvPort);
    PEACHY_REQUIRE(world_env && port_env,
                   "worker environment incomplete: "
                       << kEnvRank << " set without " << kEnvWorld << "/"
                       << kEnvPort);
    net::TcpOptions worker_tcp = tcp;
    if (const char* fault_env = std::getenv(kEnvFault))
      worker_tcp.fault = net::FaultPlan::decode(fault_env);
    if (const char* window_env = std::getenv(kEnvWindow))
      worker_tcp.window_frames = std::max(1, std::atoi(window_env));
    const char* ckpt_env = std::getenv(kEnvCkpt);
    Telemetry worker_telemetry;  // env wins over the call site's default
    if (const char* ms_env = std::getenv(kEnvTelemetryMs)) {
      worker_telemetry.enabled = true;
      worker_telemetry.interval_ms = std::max(1, std::atoi(ms_env));
      if (const char* trace_env = std::getenv(kEnvTrace))
        worker_telemetry.trace_path = trace_env;
      if (const char* mport_env = std::getenv(kEnvMetricsPort))
        worker_telemetry.metrics_port = std::atoi(mport_env);
      if (const char* pfile_env = std::getenv(kEnvPortFile))
        worker_telemetry.port_file = pfile_env;
      if (const char* tid_env = std::getenv(kEnvTraceId))
        worker_telemetry.trace_id = std::strtoull(tid_env, nullptr, 10);
    }
    worker_main(std::atoi(rank_env), std::atoi(world_env),
                std::atoi(port_env), worker_tcp,
                ckpt_env ? ckpt_env : "", /*flight_dir=*/"",
                worker_telemetry, body);
  }

  PEACHY_REQUIRE(ranks >= 1, "world needs >= 1 rank, got " << ranks);
  CkptDirGuard ckpt(resilience);
  // Mint the cluster trace id once in the launcher so every rank (and every
  // restart attempt) lands in the same trace.
  Telemetry run_telemetry = telemetry;
  if (run_telemetry.active() && run_telemetry.trace_id == 0)
    run_telemetry.trace_id = obs::cluster::trace_id();
  // The deadline is absolute and spans restart attempts — a job that keeps
  // crashing and restarting still dies on time.
  const auto deadline_tp =
      control.deadline_ms > 0
          ? std::chrono::steady_clock::now() +
                std::chrono::milliseconds(control.deadline_ms)
          : std::chrono::steady_clock::time_point::max();
  std::atomic<int> fired{0};
  // One launcher across attempts: respawned ranks replace (kill + reap)
  // their previous incarnations slot by slot.
  net::ProcessLauncher launcher;
  RunOutcome out =
      supervise(resilience, tcp, [&](const net::TcpOptions& attempt_tcp) {
        return spawn_attempt(ranks, worker_argv, body, attempt_tcp,
                             ckpt.dir(), run_telemetry, launcher, control,
                             deadline_tp, fired);
      });
  ckpt.on_success();
  return out;
}

RunOutcome run_world(int ranks, const RunOptions& options,
                     const std::function<void(Comm&)>& body) {
  if (options.spawn)
    return run_spawned(ranks, options.worker_argv, body, options.tcp,
                       options.resilience, options.telemetry,
                       options.spawn_control);
  CkptDirGuard ckpt(options.resilience);
  RunOutcome out =
      supervise(options.resilience, options.tcp,
                [&](const net::TcpOptions& attempt_tcp) {
                  RunOptions attempt = options;
                  attempt.tcp = attempt_tcp;
                  return run_threads(ranks, attempt, ckpt.dir(), body);
                });
  ckpt.on_success();
  return out;
}

CommStats run(int ranks, const std::function<void(Comm&)>& body) {
  return run_world(ranks, RunOptions{}, body).comm;
}

}  // namespace peachy::mpp
