#include "mpp/mpp.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <thread>
#include <utility>

#include "net/process.hpp"
#include "net/rendezvous.hpp"
#include "obs/obs.hpp"

namespace peachy::mpp {

namespace {

obs::Counter& obs_messages() {
  static obs::Counter& c = obs::Registry::global().counter("mpp.messages");
  return c;
}
obs::Counter& obs_bytes() {
  static obs::Counter& c = obs::Registry::global().counter("mpp.bytes");
  return c;
}
obs::Histogram& obs_msg_bytes() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("mpp.message_bytes");
  return h;
}

}  // namespace

const char* to_string(TransportKind kind) {
  return kind == TransportKind::kTcp ? "tcp" : "inproc";
}

TransportKind transport_from_string(const std::string& name) {
  if (name == "inproc") return TransportKind::kInproc;
  if (name == "tcp") return TransportKind::kTcp;
  throw Error("unknown transport '" + name + "' (expected inproc or tcp)");
}

void Comm::send_bytes(int dest, int tag, const void* data, std::size_t bytes) {
  PEACHY_REQUIRE(dest >= 0 && dest < size(),
                 "rank " << rank() << ": send to bad rank " << dest
                         << " (world size " << size() << ", tag " << tag
                         << ")");
  transport_->send(dest, tag, data, bytes);
  ++stats_.messages_sent;
  stats_.bytes_sent += bytes;
  if (obs::enabled()) {
    obs_messages().add(1);
    obs_bytes().add(bytes);
    obs_msg_bytes().observe(static_cast<std::int64_t>(bytes));
    obs::Tracer::global().instant(
        "mpp.send", "mpp",
        {{"src", rank()},
         {"dst", dest},
         {"tag", tag},
         {"bytes", static_cast<std::int64_t>(bytes)}});
  }
}

void Comm::recv_bytes(int src, int tag, void* data, std::size_t bytes) {
  PEACHY_REQUIRE(src >= 0 && src < size(),
                 "rank " << rank() << ": recv from bad rank " << src
                         << " (world size " << size() << ", tag " << tag
                         << ")");
  const std::vector<std::byte> payload = transport_->recv(src, tag);
  PEACHY_REQUIRE(payload.size() == bytes,
                 "rank " << rank() << ": message size mismatch from rank "
                         << src << " tag " << tag << ": expected " << bytes
                         << " bytes, got " << payload.size());
  if (bytes) std::memcpy(data, payload.data(), bytes);
  if (obs::enabled()) {
    obs::Tracer::global().instant(
        "mpp.recv", "mpp",
        {{"src", src},
         {"dst", rank()},
         {"tag", tag},
         {"bytes", static_cast<std::int64_t>(bytes)}});
  }
}

// Collectives are plain messages through rank 0 on reserved tags, so they
// behave identically over mailboxes, sockets, and processes. A size-1 world
// sends nothing (single-rank runs must report zero communication).

void Comm::barrier() {
  if (size() == 1) return;
  std::uint8_t token = 0;
  if (rank_() == 0) {
    for (int r = 1; r < size(); ++r) recv(r, detail_tag_barrier(), &token, 1);
    for (int r = 1; r < size(); ++r) send(r, detail_tag_barrier(), &token, 1);
  } else {
    send(0, detail_tag_barrier(), &token, 1);
    recv(0, detail_tag_barrier(), &token, 1);
  }
}

std::int64_t Comm::allreduce(std::int64_t value,
                             std::int64_t (*op)(std::int64_t, std::int64_t)) {
  if (size() == 1) return value;
  if (rank_() == 0) {
    std::int64_t acc = value;
    for (int r = 1; r < size(); ++r) {
      std::int64_t part = 0;
      recv(r, detail_tag_reduce(), &part, 1);
      acc = op(acc, part);
    }
    for (int r = 1; r < size(); ++r) send(r, detail_tag_reduce(), &acc, 1);
    return acc;
  }
  send(0, detail_tag_reduce(), &value, 1);
  std::int64_t result = 0;
  recv(0, detail_tag_reduce(), &result, 1);
  return result;
}

std::int64_t Comm::allreduce_sum(std::int64_t value) {
  return allreduce(value,
                   [](std::int64_t a, std::int64_t b) { return a + b; });
}

std::int64_t Comm::allreduce_max(std::int64_t value) {
  return allreduce(
      value, [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
}

bool Comm::allreduce_or(bool value) {
  return allreduce_max(value ? 1 : 0) != 0;
}

void Comm::set_result(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const std::byte*>(data);
  result_.assign(p, p + bytes);
}

World::World(int ranks) : hub_(std::make_shared<net::InprocHub>(ranks)) {}

Comm World::comm(int rank) {
  PEACHY_REQUIRE(rank >= 0 && rank < hub_->size(),
                 "no rank " << rank << " in a world of " << hub_->size());
  return Comm(std::make_unique<net::InprocTransport>(hub_, rank));
}

namespace {

// ---------------------------------------------------------------------------
// Threaded runner (inproc mailboxes or tcp sockets; ranks are threads).

struct ThreadRank {
  CommStats stats;
  net::TcpTransport::Stats net;
  bool is_tcp = false;
  std::exception_ptr error;
  std::vector<std::byte> result;
};

RunOutcome run_threads(int ranks, const RunOptions& options,
                       const std::function<void(Comm&)>& body) {
  PEACHY_REQUIRE(ranks >= 1, "world needs >= 1 rank, got " << ranks);
  const bool tcp = options.transport == TransportKind::kTcp;

  std::shared_ptr<net::InprocHub> hub;
  std::unique_ptr<net::RendezvousServer> server;
  if (tcp) {
    server = std::make_unique<net::RendezvousServer>(
        ranks, /*collect_results=*/false, options.tcp.connect_timeout_ms);
    server->start();
  } else {
    hub = std::make_shared<net::InprocHub>(ranks);
  }

  std::vector<ThreadRank> outcomes(static_cast<std::size_t>(ranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      ThreadRank& mine = outcomes[static_cast<std::size_t>(r)];
      try {
        std::unique_ptr<net::Transport> transport;
        net::TcpTransport* tcp_ptr = nullptr;
        if (tcp) {
          auto t = std::make_unique<net::TcpTransport>(
              r, ranks, server->port(), options.tcp);
          tcp_ptr = t.get();
          transport = std::move(t);
        } else {
          transport = std::make_unique<net::InprocTransport>(hub, r);
        }
        Comm comm(std::move(transport));
        try {
          body(comm);
        } catch (...) {
          mine.error = std::current_exception();
        }
        // Say goodbye even when the body failed, so peers blocked on this
        // rank observe a shutdown (or PeerDied) instead of hanging.
        try {
          comm.transport().shutdown();
        } catch (...) {
          // Peers that died mid-shutdown are already accounted for.
        }
        mine.stats = comm.stats();
        if (tcp_ptr) {
          mine.net = tcp_ptr->stats();
          mine.is_tcp = true;
        }
        if (r == 0) mine.result = comm.take_result();
      } catch (...) {
        if (!mine.error) mine.error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();

  std::exception_ptr server_error;
  if (server) {
    try {
      server->join();
    } catch (...) {
      server_error = std::current_exception();
    }
  }
  for (const auto& o : outcomes)
    if (o.error) std::rethrow_exception(o.error);
  if (server_error) std::rethrow_exception(server_error);

  RunOutcome out;
  for (auto& o : outcomes) {
    out.comm.messages_sent += o.stats.messages_sent;
    out.comm.bytes_sent += o.stats.bytes_sent;
    if (o.is_tcp) {
      out.net.retransmits += o.net.retransmits;
      out.net.fault_dropped += o.net.fault.dropped;
      out.net.fault_duplicated += o.net.fault.duplicated;
      out.net.fault_delayed += o.net.fault.delayed;
      out.net.fault_severed += o.net.fault.severed;
    }
  }
  out.rank0_result = std::move(outcomes[0].result);
  return out;
}

// ---------------------------------------------------------------------------
// Spawned runner (ranks are processes; tcp is the only possible substrate).

constexpr const char* kEnvRank = "PEACHY_MPP_WORKER_RANK";
constexpr const char* kEnvWorld = "PEACHY_MPP_WORLD";
constexpr const char* kEnvPort = "PEACHY_MPP_RENDEZVOUS_PORT";
constexpr const char* kEnvFault = "PEACHY_MPP_FAULT";

/// Runs one worker's life: join the mesh, run the body, report the outcome
/// over the rendezvous connection, _exit. Never returns — a worker process
/// must not fall back into the launcher's code path.
[[noreturn]] void worker_main(int rank, int world, int port,
                              const net::TcpOptions& tcp,
                              const std::function<void(Comm&)>& body) {
  net::WorkerReport report;
  report.reported = true;
  bool sent = false;
  try {
    auto transport =
        std::make_unique<net::TcpTransport>(rank, world, port, tcp);
    net::TcpTransport* raw = transport.get();
    Comm comm(std::move(transport));
    try {
      body(comm);
      report.ok = true;
    } catch (const std::exception& e) {
      report.error = e.what();
    } catch (...) {
      report.error = "unknown exception";
    }
    try {
      comm.transport().shutdown();
    } catch (...) {
      if (report.ok) {
        report.ok = false;
        report.error = "shutdown failed";
      }
    }
    report.messages_sent = comm.stats().messages_sent;
    report.bytes_sent = comm.stats().bytes_sent;
    const net::TcpTransport::Stats net_stats = raw->stats();
    report.retransmits = net_stats.retransmits;
    report.fault_dropped = net_stats.fault.dropped;
    report.fault_duplicated = net_stats.fault.duplicated;
    report.fault_delayed = net_stats.fault.delayed;
    report.fault_severed = net_stats.fault.severed;
    if (rank == 0) report.result = comm.take_result();
    net::rendezvous_report(raw->rendezvous_socket(), rank, report);
    sent = true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "peachy mpp worker rank %d: %s\n", rank, e.what());
  }
  ::_exit(sent && report.ok ? 0 : 1);
}

}  // namespace

RunOutcome run_spawned(int ranks, const std::vector<std::string>& worker_argv,
                       const std::function<void(Comm&)>& body,
                       const net::TcpOptions& tcp) {
  // An exec'd worker re-enters main() and reaches this same call site; the
  // environment routes it into the worker path instead of launching again.
  if (const char* rank_env = std::getenv(kEnvRank)) {
    const char* world_env = std::getenv(kEnvWorld);
    const char* port_env = std::getenv(kEnvPort);
    PEACHY_REQUIRE(world_env && port_env,
                   "worker environment incomplete: "
                       << kEnvRank << " set without " << kEnvWorld << "/"
                       << kEnvPort);
    net::TcpOptions worker_tcp = tcp;
    if (const char* fault_env = std::getenv(kEnvFault))
      worker_tcp.fault = net::FaultPlan::decode(fault_env);
    worker_main(std::atoi(rank_env), std::atoi(world_env),
                std::atoi(port_env), worker_tcp, body);
  }

  PEACHY_REQUIRE(ranks >= 1, "world needs >= 1 rank, got " << ranks);
  // The serve/wait budget has to cover mesh setup plus the whole body.
  const int budget_ms = tcp.connect_timeout_ms + tcp.recv_timeout_ms;

  net::RendezvousServer server(ranks, /*collect_results=*/true, budget_ms);
  net::ProcessLauncher launcher;
  if (worker_argv.empty()) {
    launcher.fork_workers(ranks, [&](int rank) -> int {
      server.close_listener_in_child();
      worker_main(rank, ranks, server.port(), tcp, body);
    });
  } else {
    const int port = server.port();
    launcher.exec_workers(
        ranks, worker_argv,
        [&](int rank) -> std::vector<std::pair<std::string, std::string>> {
          return {{kEnvRank, std::to_string(rank)},
                  {kEnvWorld, std::to_string(ranks)},
                  {kEnvPort, std::to_string(port)},
                  {kEnvFault, tcp.fault.encode()}};
        });
  }

  // Serve inline — no threads existed at fork time, so the parent stayed
  // fork-safe — then reap every worker (deadline-bounded, never hangs).
  std::exception_ptr serve_error;
  try {
    server.serve();
  } catch (...) {
    serve_error = std::current_exception();
  }
  const std::vector<int> codes = launcher.wait_all(budget_ms);

  // One failing rank usually drags its peers down with PeerDied; report
  // the root cause (a silent death or a non-peer-death failure), not the
  // first cascade victim.
  RunOutcome out;
  std::string root_error, any_error;
  for (int r = 0; r < ranks; ++r) {
    const net::WorkerReport& rep =
        server.reports()[static_cast<std::size_t>(r)];
    if (!rep.reported) {
      const std::string msg = "mpp worker rank " + std::to_string(r) +
                              " died before reporting (exit code " +
                              std::to_string(codes[static_cast<std::size_t>(r)]) +
                              ")";
      if (root_error.empty()) root_error = msg;
      if (any_error.empty()) any_error = msg;
      continue;
    }
    if (!rep.ok) {
      const std::string msg =
          "mpp worker rank " + std::to_string(r) + " failed: " + rep.error;
      if (any_error.empty()) any_error = msg;
      if (root_error.empty() &&
          rep.error.find("peer rank") == std::string::npos)
        root_error = msg;
    }
    out.comm.messages_sent += rep.messages_sent;
    out.comm.bytes_sent += rep.bytes_sent;
    out.net.retransmits += rep.retransmits;
    out.net.fault_dropped += rep.fault_dropped;
    out.net.fault_duplicated += rep.fault_duplicated;
    out.net.fault_delayed += rep.fault_delayed;
    out.net.fault_severed += rep.fault_severed;
    if (r == 0) out.rank0_result = rep.result;
  }
  if (!root_error.empty()) throw Error(root_error);
  if (!any_error.empty()) throw Error(any_error);
  if (serve_error) std::rethrow_exception(serve_error);
  return out;
}

RunOutcome run_world(int ranks, const RunOptions& options,
                     const std::function<void(Comm&)>& body) {
  if (options.spawn)
    return run_spawned(ranks, options.worker_argv, body, options.tcp);
  return run_threads(ranks, options, body);
}

CommStats run(int ranks, const std::function<void(Comm&)>& body) {
  return run_world(ranks, RunOptions{}, body).comm;
}

}  // namespace peachy::mpp
