#include "mpp/telemetry.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <span>
#include <thread>
#include <utility>

#include "core/error.hpp"
#include "net/metrics_server.hpp"
#include "net/tcp.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "obs/cluster.hpp"

namespace peachy::mpp::telemetry {

namespace {

constexpr std::uint32_t kSnapshotVersion = 1;

void append_string(std::vector<std::byte>& out, const std::string& s) {
  net::append_u32(out, static_cast<std::uint32_t>(s.size()));
  net::append_bytes(out, s.data(), s.size());
}

std::string read_string(const std::byte*& p, const std::byte* end) {
  const std::uint32_t n = net::read_u32(p, end);
  PEACHY_REQUIRE(static_cast<std::size_t>(end - p) >= n,
                 "telemetry snapshot truncated inside a string");
  std::string s(n, '\0');
  if (n) std::memcpy(s.data(), p, n);
  p += n;
  return s;
}

void append_i64(std::vector<std::byte>& out, std::int64_t v) {
  net::append_u64(out, static_cast<std::uint64_t>(v));
}

std::int64_t read_i64(const std::byte*& p, const std::byte* end) {
  return static_cast<std::int64_t>(net::read_u64(p, end));
}

}  // namespace

std::vector<std::byte> encode_snapshot(
    int rank, const std::vector<obs::MetricSample>& samples,
    const std::vector<obs::TraceEvent>& events) {
  std::vector<std::byte> out;
  net::append_u32(out, kSnapshotVersion);
  net::append_u32(out, static_cast<std::uint32_t>(rank));
  net::append_u64(out, samples.size());
  for (const obs::MetricSample& s : samples) {
    append_string(out, s.name);
    net::append_u32(out, static_cast<std::uint32_t>(s.kind));
    append_i64(out, s.value);
    net::append_u64(out, s.count);
    append_i64(out, s.sum);
    net::append_u64(out, s.buckets.size());
    for (std::uint64_t b : s.buckets) net::append_u64(out, b);
  }
  net::append_u64(out, events.size());
  for (const obs::TraceEvent& ev : events) {
    append_string(out, ev.name);
    append_string(out, ev.cat);
    net::append_u32(out, static_cast<std::uint32_t>(ev.ph));
    append_i64(out, ev.ts_ns);
    append_i64(out, ev.dur_ns);
    net::append_u32(out, static_cast<std::uint32_t>(ev.tid));
    net::append_u64(out, ev.args.size());
    for (const auto& [key, value] : ev.args) {
      append_string(out, key);
      append_i64(out, value);
    }
  }
  return out;
}

Snapshot decode_snapshot(const std::vector<std::byte>& payload) {
  const std::byte* p = payload.data();
  const std::byte* end = p + payload.size();
  const std::uint32_t version = net::read_u32(p, end);
  PEACHY_REQUIRE(version == kSnapshotVersion,
                 "telemetry snapshot version " << version << " != "
                                               << kSnapshotVersion);
  Snapshot snap;
  snap.rank = static_cast<int>(net::read_u32(p, end));
  const std::uint64_t n_samples = net::read_u64(p, end);
  snap.samples.reserve(n_samples);
  for (std::uint64_t i = 0; i < n_samples; ++i) {
    obs::MetricSample s;
    s.name = read_string(p, end);
    s.kind = static_cast<obs::MetricSample::Kind>(net::read_u32(p, end));
    s.value = read_i64(p, end);
    s.count = net::read_u64(p, end);
    s.sum = read_i64(p, end);
    const std::uint64_t n_buckets = net::read_u64(p, end);
    s.buckets.reserve(n_buckets);
    for (std::uint64_t b = 0; b < n_buckets; ++b)
      s.buckets.push_back(net::read_u64(p, end));
    snap.samples.push_back(std::move(s));
  }
  const std::uint64_t n_events = net::read_u64(p, end);
  snap.events.reserve(n_events);
  for (std::uint64_t i = 0; i < n_events; ++i) {
    obs::TraceEvent ev;
    ev.name = read_string(p, end);
    ev.cat = read_string(p, end);
    ev.ph = static_cast<obs::TraceEvent::Phase>(net::read_u32(p, end));
    ev.ts_ns = read_i64(p, end);
    ev.dur_ns = read_i64(p, end);
    ev.tid = static_cast<int>(net::read_u32(p, end));
    const std::uint64_t n_args = net::read_u64(p, end);
    ev.args.reserve(n_args);
    for (std::uint64_t a = 0; a < n_args; ++a) {
      std::string key = read_string(p, end);
      const std::int64_t value = read_i64(p, end);
      ev.args.emplace_back(std::move(key), value);
    }
    snap.events.push_back(std::move(ev));
  }
  PEACHY_REQUIRE(p == end, "telemetry snapshot has "
                               << (end - p) << " trailing bytes");
  return snap;
}

}  // namespace peachy::mpp::telemetry

namespace peachy::mpp {

using telemetry::kTagFinal;
using telemetry::kTagPeriodic;

struct TelemetrySession::Impl {
  net::Transport& transport;
  const int world;
  const Telemetry cfg;
  const int rank;

  std::mutex wake_mu;
  std::condition_variable wake_cv;
  bool stopping = false;
  std::atomic<bool> finished{false};
  std::thread worker;

  // Rank 0 only: latest periodic snapshot per peer + the live endpoint.
  std::mutex latest_mu;
  std::map<int, std::vector<obs::MetricSample>> latest;
  std::unique_ptr<obs::MetricsServer> server;

  Impl(net::Transport& t, int world_size, const Telemetry& config)
      : transport(t), world(world_size), cfg(config), rank(t.rank()) {}

  /// Sleeps up to `ms`; returns false when finish() asked us to stop.
  bool sleep_unless_stopping(int ms) {
    std::unique_lock lock(wake_mu);
    wake_cv.wait_for(lock, std::chrono::milliseconds(ms),
                     [&] { return stopping; });
    return !stopping;
  }

  std::string rollup_text() {
    std::vector<obs::cluster::RankMetrics> ranks;
    ranks.push_back({0, obs::Registry::global().samples()});
    {
      std::lock_guard lock(latest_mu);
      for (const auto& [r, samples] : latest) ranks.push_back({r, samples});
    }
    return obs::cluster::cluster_prometheus_text(ranks);
  }

  /// Worker loop (rank > 0): periodically ship a metrics-only snapshot to
  /// rank 0. A send failure (rank 0 died, link severed) ends shipping but
  /// never the world — the body's own traffic reports that error.
  void shipper_loop() {
    while (sleep_unless_stopping(cfg.interval_ms)) {
      try {
        const std::vector<std::byte> payload = telemetry::encode_snapshot(
            rank, obs::Registry::global().samples(), {});
        transport.send(0, kTagPeriodic,
                       std::span<const std::byte>(payload));
      } catch (const Error&) {
        return;
      }
    }
  }

  /// Hub loop (rank 0): drain periodic snapshots without ever blocking on
  /// a peer (try_recv survives deaths), keep the latest per rank.
  void hub_loop() {
    const int tick_ms = std::max(10, std::min(cfg.interval_ms, 50));
    std::vector<std::byte> payload;
    do {
      for (int r = 1; r < world; ++r) {
        while (transport.try_recv(r, kTagPeriodic, payload)) {
          try {
            telemetry::Snapshot snap = telemetry::decode_snapshot(payload);
            std::lock_guard lock(latest_mu);
            latest[r] = std::move(snap.samples);
          } catch (const Error&) {
            // A corrupt snapshot only costs one refresh.
          }
        }
      }
    } while (sleep_unless_stopping(tick_ms));
  }

  void start() {
    if (rank == 0) {
      if (cfg.metrics_port >= 0) {
        obs::MetricsServer::Options opts;
        opts.port = cfg.metrics_port;
        server = std::make_unique<obs::MetricsServer>(
            opts, [this] { return rollup_text(); });
        if (!cfg.port_file.empty()) {
          std::ofstream out(cfg.port_file, std::ios::trunc);
          out << server->port() << "\n";
        }
      }
      worker = std::thread([this] { hub_loop(); });
    } else {
      worker = std::thread([this] { shipper_loop(); });
    }
  }

  void stop_worker() {
    {
      std::lock_guard lock(wake_mu);
      stopping = true;
    }
    wake_cv.notify_all();
    if (worker.joinable()) worker.join();
  }

  void finish_worker() {
    stop_worker();
    try {
      const std::vector<std::byte> payload = telemetry::encode_snapshot(
          rank, obs::Registry::global().samples(),
          obs::Tracer::global().snapshot());
      transport.send(0, kTagFinal, std::span<const std::byte>(payload));
    } catch (const Error&) {
      // Rank 0 is gone; its gather will account for us as dead.
    }
  }

  void finish_hub() {
    stop_worker();
    // Gather finals. A rank that died before shipping one surfaces as a
    // recv error here — skip it; its flight recorder has the story.
    std::map<int, telemetry::Snapshot> finals;
    for (int r = 1; r < world; ++r) {
      try {
        finals[r] = telemetry::decode_snapshot(transport.recv(r, kTagFinal));
      } catch (const Error&) {
      }
    }
    {
      std::lock_guard lock(latest_mu);
      for (auto& [r, snap] : finals) latest[r] = snap.samples;
    }
    if (!cfg.trace_path.empty()) {
      // Clock-correct each rank's events into rank 0's timebase: the
      // estimator reports offset = peer_clock - local_clock, so a peer
      // timestamp maps to local time by subtracting it.
      std::map<int, net::TcpTransport::ClockEstimate> clocks;
      if (auto* tcp = dynamic_cast<net::TcpTransport*>(&transport))
        clocks = tcp->clock_estimates();
      std::vector<obs::TraceEvent> events = obs::Tracer::global().snapshot();
      for (obs::TraceEvent& ev : events) ev.pid = 0;
      std::map<int, std::string> names{{0, "rank 0"}};
      for (auto& [r, snap] : finals) {
        std::int64_t offset_ns = 0;
        if (auto it = clocks.find(r); it != clocks.end())
          offset_ns = it->second.offset_ns;
        for (obs::TraceEvent& ev : snap.events) {
          ev.pid = r;
          ev.ts_ns -= offset_ns;
          events.push_back(std::move(ev));
        }
        names[r] = "rank " + std::to_string(r);
      }
      try {
        obs::write_chrome_trace(cfg.trace_path, std::move(events), names);
      } catch (const Error&) {
        // An unwritable trace path must not fail the world.
      }
    }
    if (server) server->stop();
  }
};

TelemetrySession::TelemetrySession(net::Transport& transport, int world_size,
                                   const Telemetry& config)
    : impl_(std::make_unique<Impl>(transport, world_size, config)) {
  impl_->start();
}

TelemetrySession::~TelemetrySession() { finish(); }

int TelemetrySession::metrics_port() const {
  return impl_->server ? impl_->server->port() : -1;
}

void TelemetrySession::finish() {
  if (impl_->finished.exchange(true)) return;
  if (impl_->rank == 0)
    impl_->finish_hub();
  else
    impl_->finish_worker();
}

}  // namespace peachy::mpp
