#include "mpp/checkpoint.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "core/error.hpp"
#include "net/wire.hpp"

namespace peachy::mpp {

namespace {

// File layout (little-endian, built on the net wire scalar helpers):
//   u32 magic 'PCKP' | u32 version | u32 world | u32 epoch
//   world x { u64 size | bytes }
//   u32 crc32 of everything above
constexpr std::uint32_t kMagic = 0x504b4350;  // "PCKP"
constexpr std::uint32_t kVersion = 1;

std::filesystem::path committed_path(const std::string& dir) {
  return std::filesystem::path(dir) / kCheckpointFile;
}

}  // namespace

void save_checkpoint(const std::string& dir, const CheckpointImage& image) {
  std::vector<std::byte> buf;
  net::append_u32(buf, kMagic);
  net::append_u32(buf, kVersion);
  net::append_u32(buf, static_cast<std::uint32_t>(image.blobs.size()));
  net::append_u32(buf, static_cast<std::uint32_t>(image.epoch));
  for (const auto& blob : image.blobs) {
    net::append_u64(buf, blob.size());
    net::append_bytes(buf, blob.data(), blob.size());
  }
  net::append_u32(buf, net::crc32(buf.data(), buf.size()));

  const std::filesystem::path tmp =
      std::filesystem::path(dir) / "ckpt.tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    PEACHY_REQUIRE(out, "cannot open checkpoint temp file " << tmp.string());
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
    out.flush();
    PEACHY_REQUIRE(out, "short write to checkpoint file " << tmp.string());
  }
  // The commit point: readers see either the old image or the new one.
  std::error_code ec;
  std::filesystem::rename(tmp, committed_path(dir), ec);
  PEACHY_REQUIRE(!ec, "cannot commit checkpoint " << committed_path(dir).string()
                                                  << ": " << ec.message());
}

std::optional<CheckpointImage> load_checkpoint(const std::string& dir,
                                               int world) {
  const std::filesystem::path path = committed_path(dir);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;  // never checkpointed (or dir wiped) — fine
  in.seekg(0, std::ios::end);
  const std::streamoff len = in.tellg();
  in.seekg(0, std::ios::beg);
  std::vector<std::byte> buf(static_cast<std::size_t>(len > 0 ? len : 0));
  in.read(reinterpret_cast<char*>(buf.data()),
          static_cast<std::streamsize>(buf.size()));
  PEACHY_REQUIRE(in.gcount() == static_cast<std::streamsize>(buf.size()),
                 "short read from checkpoint " << path.string());

  PEACHY_REQUIRE(buf.size() >= 20,
                 "checkpoint " << path.string() << " is truncated ("
                               << buf.size() << " bytes)");
  const std::byte* p = buf.data();
  const std::byte* crc_end = buf.data() + buf.size() - 4;
  const std::byte* end = buf.data() + buf.size();

  // Verify the trailing CRC over everything before it, first — every other
  // field is untrustworthy until this passes.
  {
    const std::byte* q = crc_end;
    const std::uint32_t stored = net::read_u32(q, end);
    const std::uint32_t actual =
        net::crc32(buf.data(), static_cast<std::size_t>(crc_end - buf.data()));
    PEACHY_REQUIRE(stored == actual,
                   "checkpoint " << path.string() << " is corrupt: crc "
                                 << actual << " != stored " << stored);
  }

  PEACHY_REQUIRE(net::read_u32(p, crc_end) == kMagic,
                 "checkpoint " << path.string() << " has bad magic");
  const std::uint32_t version = net::read_u32(p, crc_end);
  PEACHY_REQUIRE(version == kVersion,
                 "checkpoint " << path.string() << " has version " << version
                               << ", this build reads " << kVersion);
  const std::uint32_t file_world = net::read_u32(p, crc_end);
  PEACHY_REQUIRE(file_world == static_cast<std::uint32_t>(world),
                 "checkpoint " << path.string() << " was written by a world of "
                               << file_world << " ranks, not " << world);

  CheckpointImage image;
  image.epoch = static_cast<int>(net::read_u32(p, crc_end));
  image.blobs.resize(file_world);
  for (auto& blob : image.blobs) {
    const std::uint64_t n = net::read_u64(p, crc_end);
    PEACHY_REQUIRE(p + n <= crc_end,
                   "checkpoint " << path.string()
                                 << " is truncated inside a rank blob");
    blob.assign(p, p + n);
    p += n;
  }
  PEACHY_REQUIRE(p == crc_end, "checkpoint " << path.string()
                                             << " has trailing garbage");
  return image;
}

}  // namespace peachy::mpp
