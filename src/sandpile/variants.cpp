#include "sandpile/variants.hpp"

#include "sandpile/kernels.hpp"

namespace peachy::sandpile {

const std::vector<Variant>& all_variants() {
  static const std::vector<Variant> kAll = {
      Variant::kSeqSync,       Variant::kSeqAsync,
      Variant::kOmpSync,       Variant::kOmpTiledSync,
      Variant::kOmpLazySync,   Variant::kOmpSyncVector,
      Variant::kOmpAsyncWave,  Variant::kOmpLazyAsyncWave,
  };
  return kAll;
}

std::string to_string(Variant v) {
  switch (v) {
    case Variant::kSeqSync: return "seq-sync";
    case Variant::kSeqAsync: return "seq-async";
    case Variant::kOmpSync: return "omp-sync";
    case Variant::kOmpTiledSync: return "omp-tiled-sync";
    case Variant::kOmpLazySync: return "omp-lazy-sync";
    case Variant::kOmpSyncVector: return "omp-sync-vector";
    case Variant::kOmpAsyncWave: return "omp-async-wave";
    case Variant::kOmpLazyAsyncWave: return "omp-lazy-async-wave";
  }
  return "?";
}

namespace {

VariantOutcome run_sync(Variant v, Field& field, const VariantOptions& opt,
                        pap::TileGrid tiles, pap::RunOptions run_opt,
                        bool vectorized) {
  SyncEngine engine(field);
  run_opt.trace = opt.trace;
  run_opt.max_iterations = opt.max_iterations;
  run_opt.schedule = opt.schedule;
  run_opt.on_iteration = engine.swap_hook(opt.on_iteration);
  pap::Runner runner(tiles, run_opt);
  VariantOutcome out;
  out.variant = v;
  out.run = runner.run(engine.kernel(vectorized));
  return out;
}

VariantOutcome run_async(Variant v, Field& field, const VariantOptions& opt,
                         pap::TileGrid tiles, pap::RunOptions run_opt,
                         bool drain) {
  AsyncEngine engine(field);
  run_opt.trace = opt.trace;
  run_opt.max_iterations = opt.max_iterations;
  run_opt.schedule = opt.schedule;
  run_opt.on_iteration = opt.on_iteration;
  pap::Runner runner(tiles, run_opt);
  VariantOutcome out;
  out.variant = v;
  out.run = runner.run(engine.kernel(drain));
  return out;
}

}  // namespace

VariantOutcome run_variant(Variant v, Field& field,
                           const VariantOptions& opt) {
  const int h = field.height(), w = field.width();
  pap::RunOptions run_opt;
  run_opt.threads = opt.threads;

  switch (v) {
    case Variant::kSeqSync: {
      run_opt.threads = 1;
      return run_sync(v, field, opt, pap::TileGrid(h, w, h, w), run_opt,
                      /*vectorized=*/false);
    }
    case Variant::kSeqAsync: {
      run_opt.threads = 1;
      // One whole-grid tile, one in-place sweep per iteration.
      return run_async(v, field, opt, pap::TileGrid(h, w, h, w), run_opt,
                       /*drain=*/false);
    }
    case Variant::kOmpSync: {
      // Row bands: the natural first OpenMP cut (one band per row, the
      // scheduler does the rest). Full-width bands avoid false sharing on
      // row boundaries.
      return run_sync(v, field, opt, pap::TileGrid(h, w, 1, w), run_opt,
                      /*vectorized=*/false);
    }
    case Variant::kOmpTiledSync: {
      return run_sync(v, field, opt,
                      pap::TileGrid(h, w, opt.tile_h, opt.tile_w), run_opt,
                      /*vectorized=*/false);
    }
    case Variant::kOmpLazySync: {
      run_opt.lazy = true;
      return run_sync(v, field, opt,
                      pap::TileGrid(h, w, opt.tile_h, opt.tile_w), run_opt,
                      /*vectorized=*/false);
    }
    case Variant::kOmpSyncVector: {
      run_opt.lazy = true;
      return run_sync(v, field, opt,
                      pap::TileGrid(h, w, opt.tile_h, opt.tile_w), run_opt,
                      /*vectorized=*/true);
    }
    case Variant::kOmpAsyncWave: {
      run_opt.checkerboard = true;
      return run_async(v, field, opt,
                       pap::TileGrid(h, w, opt.tile_h, opt.tile_w), run_opt,
                       /*drain=*/true);
    }
    case Variant::kOmpLazyAsyncWave: {
      run_opt.checkerboard = true;
      run_opt.lazy = true;
      return run_async(v, field, opt,
                       pap::TileGrid(h, w, opt.tile_h, opt.tile_w), run_opt,
                       /*drain=*/true);
    }
  }
  PEACHY_REQUIRE(false, "unknown variant");
  return {};
}

}  // namespace peachy::sandpile
