#include "sandpile/theory.hpp"

#include <deque>
#include <vector>

namespace peachy::sandpile {

namespace {
void check_same_shape(const Field& a, const Field& b) {
  PEACHY_REQUIRE(a.height() == b.height() && a.width() == b.width(),
                 "shape mismatch: " << a.height() << "x" << a.width() << " vs "
                                    << b.height() << "x" << b.width());
}
}  // namespace

Field add(const Field& a, const Field& b) {
  check_same_shape(a, b);
  Field out(a.height(), a.width());
  for (int y = 0; y < a.height(); ++y)
    for (int x = 0; x < a.width(); ++x) out.at(y, x) = a.at(y, x) + b.at(y, x);
  return out;
}

Field subtract(const Field& a, const Field& b) {
  check_same_shape(a, b);
  Field out(a.height(), a.width());
  for (int y = 0; y < a.height(); ++y)
    for (int x = 0; x < a.width(); ++x) {
      PEACHY_REQUIRE(a.at(y, x) >= b.at(y, x),
                     "subtract underflow at (" << y << "," << x << ")");
      out.at(y, x) = a.at(y, x) - b.at(y, x);
    }
  return out;
}

Field scale(const Field& a, Cell factor) {
  Field out(a.height(), a.width());
  for (int y = 0; y < a.height(); ++y)
    for (int x = 0; x < a.width(); ++x) out.at(y, x) = a.at(y, x) * factor;
  return out;
}

Field group_add(const Field& a, const Field& b) {
  Field sum = add(a, b);
  stabilize_reference(sum);
  return sum;
}

Field group_identity(int height, int width) {
  const Field m2 = scale(max_stable_pile(height, width), 2);
  Field s = m2;  // S(2m)
  stabilize_reference(s);
  Field id = subtract(m2, s);  // 2m - S(2m)
  stabilize_reference(id);
  return id;
}

bool is_recurrent(const Field& stable) {
  PEACHY_REQUIRE(stable.is_stable(), "burning test requires a stable input");
  const int h = stable.height(), w = stable.width();

  // Fire the sink: every interior cell receives one grain per shared edge
  // with the border frame.
  Field f(h, w);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      Cell sink_edges = 0;
      if (y == 0) ++sink_edges;
      if (y == h - 1) ++sink_edges;
      if (x == 0) ++sink_edges;
      if (x == w - 1) ++sink_edges;
      f.at(y, x) = stable.at(y, x) + sink_edges;
    }

  // Stabilize while counting per-cell topples; recurrent iff each cell
  // topples exactly once (Dhar's burning test).
  Grid2D<int> topples(h, w, 0);
  auto& g = f.padded();
  std::deque<std::pair<int, int>> worklist;
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      if (f.at(y, x) >= kTopple) worklist.emplace_back(y, x);
  while (!worklist.empty()) {
    const auto [y, x] = worklist.front();
    worklist.pop_front();
    const int py = y + 1, px = x + 1;
    const Cell grains = g(py, px);
    if (grains < kTopple) continue;
    if (++topples(y, x) > 1) return false;  // toppled twice: not recurrent
    const Cell share = grains / kTopple;
    g(py, px) = grains % kTopple;
    g(py - 1, px) += share;
    g(py + 1, px) += share;
    g(py, px - 1) += share;
    g(py, px + 1) += share;
    auto enqueue = [&](int yy, int xx) {
      if (yy >= 0 && yy < h && xx >= 0 && xx < w && f.at(yy, xx) >= kTopple)
        worklist.emplace_back(yy, xx);
    };
    enqueue(y - 1, x);
    enqueue(y + 1, x);
    enqueue(y, x - 1);
    enqueue(y, x + 1);
  }

  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      if (topples(y, x) != 1) return false;
  return f.same_interior(stable);
}

}  // namespace peachy::sandpile
