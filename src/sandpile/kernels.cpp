#include "sandpile/kernels.hpp"

#include <bit>

namespace peachy::sandpile {

// The kernels replace % kTopple and / kTopple with mask/shift; that rewrite
// is only an identity while the threshold stays a power of two.
static_assert(std::has_single_bit(kTopple),
              "kTopple must be a power of two for the mask/shift kernels");
inline constexpr Cell kToppleMask = kTopple - 1;
inline constexpr int kToppleShift = std::countr_zero(kTopple);

SyncEngine::SyncEngine(Field& field)
    : field_(&field), next_(field.padded()) {}

bool SyncEngine::compute_tile(const pap::Tile& t) {
  const Grid2D<Cell>& cur = field_->padded();
  Grid2D<Cell>& nxt = next_;
  bool changed = false;
  for (int y = t.y0; y < t.y0 + t.h; ++y) {
    const int py = y + 1;  // padded row
    const Cell* mid = cur.row(py) + t.x0 + 1;
    const Cell* up = cur.row(py - 1) + t.x0 + 1;
    const Cell* down = cur.row(py + 1) + t.x0 + 1;
    Cell* out = nxt.row(py) + t.x0 + 1;
    for (int x = 0; x < t.w; ++x) {
      const Cell v = (mid[x] & kToppleMask) + (mid[x - 1] >> kToppleShift) +
                     (mid[x + 1] >> kToppleShift) + (up[x] >> kToppleShift) +
                     (down[x] >> kToppleShift);
      out[x] = v;
      changed |= v != mid[x];
    }
  }
  return changed;
}

bool SyncEngine::compute_tile_vector(const pap::Tile& t) {
  const Grid2D<Cell>& cur = field_->padded();
  Grid2D<Cell>& nxt = next_;
  Cell diff = 0;
  for (int y = t.y0; y < t.y0 + t.h; ++y) {
    const int py = y + 1;
    // Row pointers at padded column t.x0 + 1; reading [-1] and [w] lands in
    // the sink padding, so the loop body is branch-free.
    const Cell* __restrict mid = cur.row(py) + t.x0 + 1;
    const Cell* __restrict up = cur.row(py - 1) + t.x0 + 1;
    const Cell* __restrict down = cur.row(py + 1) + t.x0 + 1;
    Cell* __restrict out = nxt.row(py) + t.x0 + 1;
    for (int x = 0; x < t.w; ++x) {
      const Cell v = (mid[x] & kToppleMask) + (mid[x - 1] >> kToppleShift) +
                     (mid[x + 1] >> kToppleShift) + (up[x] >> kToppleShift) +
                     (down[x] >> kToppleShift);
      out[x] = v;
      diff |= v ^ mid[x];
    }
  }
  return diff != 0;
}

void SyncEngine::swap_buffers() {
  std::swap(field_->padded(), next_);
}

pap::TileKernel SyncEngine::kernel(bool vectorized) {
  if (vectorized)
    return [this](const pap::Tile& t, int) { return compute_tile_vector(t); };
  return [this](const pap::Tile& t, int) { return compute_tile(t); };
}

pap::IterationHook SyncEngine::swap_hook(pap::IterationHook chained) {
  return [this, chained = std::move(chained)](int iter, bool changed) {
    swap_buffers();
    if (chained) chained(iter, changed);
  };
}

bool AsyncEngine::sweep_tile(const pap::Tile& t) {
  Grid2D<Cell>& g = field_->padded();
  bool changed = false;
  for (int y = t.y0; y < t.y0 + t.h; ++y) {
    for (int x = t.x0; x < t.x0 + t.w; ++x) {
      const int py = y + 1, px = x + 1;
      const Cell grains = g(py, px);
      if (grains < kTopple) continue;
      const Cell share = grains >> kToppleShift;
      g(py, px - 1) += share;
      g(py, px + 1) += share;
      g(py - 1, px) += share;
      g(py + 1, px) += share;
      g(py, px) = grains & kToppleMask;
      changed = true;
    }
  }
  return changed;
}

bool AsyncEngine::drain_tile(const pap::Tile& t) {
  bool changed = false;
  while (sweep_tile(t)) changed = true;
  return changed;
}

pap::TileKernel AsyncEngine::kernel(bool drain) {
  if (drain)
    return [this](const pap::Tile& t, int) { return drain_tile(t); };
  return [this](const pap::Tile& t, int) { return sweep_tile(t); };
}

}  // namespace peachy::sandpile
