#include "sandpile/distributed.hpp"

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "sandpile/result_blob.hpp"

namespace peachy::sandpile {

namespace {

// Per-rank buffer: (owned + 2k) x (W+2) padded rows; local row r holds
// global interior row (lo - k + r). Rows mapping outside [0, H) are global
// sink rows and stay zero forever.
struct LocalBlock {
  int lo = 0, hi = 0;  // owned global interior rows [lo, hi)
  int k = 1;           // halo depth
  int width = 0;       // interior width W
  Grid2D<Cell> cur, next;

  int owned() const { return hi - lo; }
  int local_rows() const { return owned() + 2 * k; }
  int global_row(int r) const { return lo - k + r; }
  bool is_interior_global(int g, int height) const {
    return g >= 0 && g < height;
  }
};

}  // namespace

DistributedResult stabilize_distributed(const Field& initial,
                                        const DistributedOptions& options) {
  const int H = initial.height(), W = initial.width();
  const int R = options.ranks, k = options.halo_depth;
  PEACHY_REQUIRE(R >= 1, "need >= 1 rank, got " << R);
  PEACHY_REQUIRE(k >= 1, "halo depth must be >= 1, got " << k);
  PEACHY_REQUIRE(H >= R, "need height >= ranks (" << H << " < " << R << ")");

  // Rank 0 ships the gathered field home as a result blob — worker ranks
  // may be separate processes, so nothing is written through captures.
  const mpp::RunOutcome outcome = mpp::run_world(R, options.run, [&](
                                                     mpp::Comm& comm) {
    const int rank = comm.rank();
    LocalBlock blk;
    blk.lo = rank * H / R;
    blk.hi = (rank + 1) * H / R;
    blk.k = k;
    blk.width = W;
    blk.cur = Grid2D<Cell>(blk.local_rows(), W + 2, 0);
    blk.next = Grid2D<Cell>(blk.local_rows(), W + 2, 0);

    // Load owned + initially known halo rows from the initial field.
    for (int r = 0; r < blk.local_rows(); ++r) {
      const int g = blk.global_row(r);
      if (!blk.is_interior_global(g, H)) continue;
      for (int x = 0; x < W; ++x) blk.cur(r, x + 1) = initial.at(g, x);
    }
    blk.next = blk.cur;

    constexpr int kTagDown = 1;  // data travelling to the rank below
    constexpr int kTagUp = 2;    // data travelling to the rank above
    const std::size_t row_cells = static_cast<std::size_t>(W) + 2;

    bool globally_stable = false;
    bool aborted = false;
    int round = 0;
    // Resume from the last committed checkpoint, if any: each rank gets its
    // own slab back and the loop continues at the recorded round.
    if (comm.checkpointing()) {
      if (auto blob = comm.restore()) {
        detail::SlabBlob slab =
            detail::decode_slab(*blob, blk.local_rows(), W + 2);
        round = slab.round;
        blk.cur = std::move(slab.grid);
        blk.next = blk.cur;
      }
    }
    for (;;) {
      if (options.max_rounds > 0 && round >= options.max_rounds) break;

      // --- Halo exchange (mpp sends never block, so send-then-recv is
      // deadlock-free in any order).
      {
        obs::Span exchange("sandpile.ghost_exchange", "sandpile");
        exchange.arg("rank", rank);
        exchange.arg("round", round);
        // Halo rows leave as byte views over the grid itself (zero-copy
        // lane: no intermediate vector between the slab and the wire).
        if (rank > 0)
          comm.send(rank - 1, kTagUp,
                    std::as_bytes(std::span(blk.cur.row(k), row_cells * k)));
        if (rank < R - 1)
          comm.send(rank + 1, kTagDown,
                    std::as_bytes(std::span(blk.cur.row(blk.owned()),
                                            row_cells * k)));
        if (rank > 0)
          comm.recv(rank - 1, kTagDown, blk.cur.row(0), row_cells * k);
        if (rank < R - 1)
          comm.recv(rank + 1, kTagUp, blk.cur.row(blk.owned() + k),
                    row_cells * k);
      }

      // --- k synchronous sub-iterations on a shrinking valid band.
      bool changed_owned = false;
      for (int j = 0; j < k; ++j) {
        const int r_lo = j + 1;
        const int r_hi = blk.local_rows() - j - 1;
        for (int r = r_lo; r < r_hi; ++r) {
          const int g = blk.global_row(r);
          if (!blk.is_interior_global(g, H)) continue;
          const Cell* up = blk.cur.row(r - 1);
          const Cell* mid = blk.cur.row(r);
          const Cell* down = blk.cur.row(r + 1);
          Cell* out = blk.next.row(r);
          const bool owned_row = r >= k && r < k + blk.owned();
          for (int x = 1; x <= W; ++x) {
            const Cell v = mid[x] % kTopple + mid[x - 1] / kTopple +
                           mid[x + 1] / kTopple + up[x] / kTopple +
                           down[x] / kTopple;
            out[x] = v;
            if (owned_row && v != mid[x]) changed_owned = true;
          }
        }
        std::swap(blk.cur, blk.next);
      }

      ++round;
      if (rank == 0 && obs::enabled())
        obs::Registry::global().counter("sandpile.exchange_rounds").add(1);
      // Termination decision, one max-allreduce for both signals: bit 0 =
      // "my owned cells changed", bit 1 = "rank 0 wants to abort". The
      // abort values (2, 3) dominate the max, so when it is set every rank
      // stops at this same round regardless of the changed flags — a
      // consistent cancellation cut.
      const std::int64_t mine =
          (changed_owned ? 1 : 0) |
          ((rank == 0 && options.should_abort && options.should_abort()) ? 2
                                                                         : 0);
      const std::int64_t verdict = comm.allreduce_max(mine);
      if (verdict >= 2) {
        aborted = true;
        break;
      }
      if (verdict == 0) {
        globally_stable = true;
        break;
      }
      // Checkpoint right after the allreduce: every rank is provably at the
      // same round here, so the saved cut is globally consistent.
      if (options.checkpoint_every > 0 && comm.checkpointing() &&
          round % options.checkpoint_every == 0) {
        const std::vector<std::byte> slab = detail::encode_slab(round, blk.cur);
        comm.checkpoint(slab.data(), slab.size());
      }
    }

    // --- Gather owned rows (interior cells only) at rank 0.
    std::vector<Cell> mine;
    mine.reserve(static_cast<std::size_t>(blk.owned()) * W);
    for (int r = k; r < k + blk.owned(); ++r)
      for (int x = 1; x <= W; ++x) mine.push_back(blk.cur(r, x));
    std::vector<Cell> all = comm.gather(0, mine);
    if (rank == 0) {
      PEACHY_CHECK(all.size() == static_cast<std::size_t>(H) * W);
      Field gathered(H, W);
      for (int y = 0; y < H; ++y)
        for (int x = 0; x < W; ++x)
          gathered.at(y, x) = all[static_cast<std::size_t>(y) * W + x];
      const std::vector<std::byte> blob =
          detail::encode_result(gathered, globally_stable, round, aborted);
      comm.set_result(blob.data(), blob.size());
    }
  });

  detail::ResultBlob blob = detail::decode_result(outcome.rank0_result);
  DistributedResult result{std::move(blob.field), blob.stable,
                           blob.aborted,         blob.rounds,
                           blob.rounds * k,      outcome.comm,
                           outcome.net,          outcome.restarts,
                           outcome.peak_rss_bytes};
  return result;
}

}  // namespace peachy::sandpile
