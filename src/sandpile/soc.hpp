// Self-organized criticality measurements.
//
// The sandpile model the assignment simulates comes from Bak, Tang &
// Wiesenfeld's "Self-organized criticality" [3]: driving the pile one
// grain at a time, the system organizes itself into a critical state
// whose avalanche sizes follow a power law. This module implements the
// classic experiment — drive to criticality, then sample avalanches — as
// the natural "cool extension" of the assignment (and a strong correctness
// probe: the exponents are known).
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "sandpile/field.hpp"

namespace peachy::sandpile {

/// Observables of one avalanche triggered by a single grain drop.
struct Avalanche {
  std::int64_t size = 0;      ///< total topple operations
  std::int64_t area = 0;      ///< distinct cells that toppled
  std::int64_t duration = 0;  ///< parallel-update waves until stable
  std::int64_t lost = 0;      ///< grains that fell into the sink
};

/// Adds one grain at interior cell (y, x) of a *stable* field and relaxes
/// the resulting avalanche, recording its observables. The field must be
/// stable on entry and is stable again on return.
Avalanche drop_grain(Field& field, int y, int x);

/// Drives `field` to the self-organized critical state by dropping
/// `grains` single grains at uniformly random cells (relaxing each).
/// Returns the number of topples performed. Deterministic in `rng`.
std::int64_t drive_to_criticality(Field& field, std::int64_t grains, Rng& rng);

/// Samples `drops` single-grain avalanches at random cells on a (critical)
/// field; the field remains stable between drops.
std::vector<Avalanche> sample_avalanches(Field& field, std::int64_t drops,
                                         Rng& rng);

/// One bucket of a logarithmically binned distribution.
struct LogBin {
  std::int64_t lo = 0;     ///< inclusive lower edge
  std::int64_t hi = 0;     ///< exclusive upper edge
  std::int64_t count = 0;
  double density = 0;      ///< count / (samples * bin width)
};

/// Log-binned (factor-2 buckets) distribution of positive values; values
/// of zero are counted into the returned `zeros` output if non-null.
std::vector<LogBin> log_binned(const std::vector<std::int64_t>& values,
                               std::int64_t* zeros = nullptr);

/// Least-squares slope of log10(density) against log10(bin center) over
/// bins with at least `min_count` samples — the power-law exponent
/// estimate (for the 2-D BTW avalanche-size distribution, tau is ~1.0-1.3).
/// Throws peachy::Error if fewer than two usable bins exist.
double power_law_exponent(const std::vector<LogBin>& bins,
                          std::int64_t min_count = 8);

}  // namespace peachy::sandpile
