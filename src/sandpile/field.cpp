#include "sandpile/field.hpp"

#include <deque>

#include "core/colormap.hpp"
#include "core/rng.hpp"

namespace peachy::sandpile {

Field::Field(int height, int width)
    : height_(height), width_(width), padded_(height + 2, width + 2, 0) {
  PEACHY_REQUIRE(height >= 1 && width >= 1,
                 "sandpile must be non-empty: " << height << "x" << width);
}

std::int64_t Field::interior_grains() const {
  std::int64_t total = 0;
  for (int y = 0; y < height_; ++y)
    for (int x = 0; x < width_; ++x) total += at(y, x);
  return total;
}

std::int64_t Field::sink_grains() const {
  return padded_.sum<std::int64_t>() - interior_grains();
}

bool Field::is_stable() const {
  for (int y = 0; y < height_; ++y)
    for (int x = 0; x < width_; ++x)
      if (at(y, x) >= kTopple) return false;
  return true;
}

std::int64_t Field::count_cells_with(Cell grains) const {
  std::int64_t n = 0;
  for (int y = 0; y < height_; ++y)
    for (int x = 0; x < width_; ++x)
      if (at(y, x) == grains) ++n;
  return n;
}

Image Field::render() const {
  Image img(height_, width_);
  for (int y = 0; y < height_; ++y)
    for (int x = 0; x < width_; ++x)
      img(y, x) = sandpile_color(at(y, x));
  return img;
}

bool Field::same_interior(const Field& other) const {
  if (height_ != other.height_ || width_ != other.width_) return false;
  for (int y = 0; y < height_; ++y)
    for (int x = 0; x < width_; ++x)
      if (at(y, x) != other.at(y, x)) return false;
  return true;
}

Field center_pile(int height, int width, Cell grains) {
  Field f(height, width);
  f.at(height / 2, width / 2) = grains;
  return f;
}

Field uniform_pile(int height, int width, Cell grains) {
  Field f(height, width);
  for (int y = 0; y < height; ++y)
    for (int x = 0; x < width; ++x) f.at(y, x) = grains;
  return f;
}

Field sparse_random_pile(int height, int width, double density, Cell lo,
                         Cell hi, std::uint64_t seed) {
  PEACHY_REQUIRE(density >= 0.0 && density <= 1.0,
                 "density must be in [0,1], got " << density);
  PEACHY_REQUIRE(lo <= hi, "need lo <= hi, got [" << lo << "," << hi << "]");
  Field f(height, width);
  Rng rng(seed);
  for (int y = 0; y < height; ++y)
    for (int x = 0; x < width; ++x)
      if (rng.bernoulli(density))
        f.at(y, x) = static_cast<Cell>(rng.uniform_int(lo, hi));
  return f;
}

Field max_stable_pile(int height, int width) {
  return uniform_pile(height, width, kTopple - 1);
}

std::int64_t stabilize_reference(Field& field) {
  const int h = field.height(), w = field.width();
  std::deque<std::pair<int, int>> worklist;
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      if (field.at(y, x) >= kTopple) worklist.emplace_back(y, x);

  auto& grid = field.padded();
  std::int64_t topples = 0;
  auto maybe_enqueue = [&](int py, int px) {
    // Padded coordinates; only interior cells can topple.
    if (py >= 1 && py <= h && px >= 1 && px <= w && grid(py, px) >= kTopple)
      worklist.emplace_back(py - 1, px - 1);
  };

  while (!worklist.empty()) {
    const auto [y, x] = worklist.front();
    worklist.pop_front();
    const int py = y + 1, px = x + 1;
    const Cell grains = grid(py, px);
    if (grains < kTopple) continue;  // may have been toppled already
    const Cell share = grains / kTopple;
    grid(py, px) = grains % kTopple;
    grid(py - 1, px) += share;
    grid(py + 1, px) += share;
    grid(py, px - 1) += share;
    grid(py, px + 1) += share;
    ++topples;
    maybe_enqueue(py - 1, px);
    maybe_enqueue(py + 1, px);
    maybe_enqueue(py, px - 1);
    maybe_enqueue(py, px + 1);
  }
  return topples;
}

}  // namespace peachy::sandpile
