// Distributed sandpile via the Ghost Cell Pattern (paper §II.B, 4th
// assignment; Kjolstad & Snir 2010), over the mpp message-passing runtime.
//
// The interior rows are block-partitioned across ranks (1-D decomposition).
// Each rank keeps `halo_depth` ghost rows per side. With depth k, ranks
// exchange halos every k synchronous iterations and recompute a shrinking
// ghost band in between — the paper's "trade redundant computation for
// less-frequent communication". Termination is a global all-reduce of the
// per-rank changed flags at each exchange round.
#pragma once

#include <functional>

#include "mpp/mpp.hpp"
#include "sandpile/field.hpp"

namespace peachy::sandpile {

/// Configuration of a distributed stabilization.
struct DistributedOptions {
  int ranks = 4;
  int halo_depth = 1;      ///< k: iterations per halo exchange
  int max_rounds = 0;      ///< 0 = run until globally stable
  /// Checkpoint every N exchange rounds (0 = never). Needs a checkpoint
  /// directory — run supervised (run.resilience.max_restarts > 0) or set
  /// run.resilience.checkpoint_dir. On start the body restores the last
  /// committed slab set, so an interrupted run resumes mid-computation.
  int checkpoint_every = 0;
  mpp::RunOptions run;     ///< which substrate carries the halos
  /// Cooperative cancellation: evaluated on rank 0 once per exchange round
  /// and broadcast through the termination all-reduce, so every rank stops
  /// at the same consistent cut. The result comes back with aborted=true
  /// (and the grid as of that round). peachyd's job cancel rides this.
  std::function<bool()> should_abort;
};

/// Outcome of a distributed stabilization.
struct DistributedResult {
  Field field;                 ///< stabilized configuration (gathered)
  bool stable = false;
  bool aborted = false;        ///< should_abort() fired before stability
  int rounds = 0;              ///< halo-exchange rounds executed
  int iterations = 0;          ///< synchronous iterations (== rounds * k)
  mpp::CommStats comm;         ///< aggregate messages/bytes over all ranks
  mpp::NetStats net;           ///< frame-level counters (tcp only)
  int restarts = 0;            ///< supervised world restarts (0 = clean run)
  std::uint64_t peak_rss_bytes = 0;  ///< worker RSS peak; spawned only
};

/// Stabilizes `initial` with `options.ranks` ranks using synchronous
/// updates and depth-k ghost rows. The input field is not modified.
///
/// Requires ranks >= 1, halo_depth >= 1, and height >= ranks (every rank
/// must own at least one row).
DistributedResult stabilize_distributed(const Field& initial,
                                        const DistributedOptions& options);

}  // namespace peachy::sandpile
