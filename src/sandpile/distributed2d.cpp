#include "sandpile/distributed2d.hpp"

#include <algorithm>
#include <span>
#include <vector>

#include "obs/obs.hpp"
#include "sandpile/result_blob.hpp"

namespace peachy::sandpile {

namespace {

// Per-rank block geometry on the process grid.
struct Block2d {
  int py = 0, px = 0;          // process-grid coordinates
  int rlo = 0, rhi = 0;        // owned global rows [rlo, rhi)
  int clo = 0, chi = 0;        // owned global cols [clo, chi)
  int k = 1;

  int rows() const { return rhi - rlo; }
  int cols() const { return chi - clo; }
  int local_rows() const { return rows() + 2 * k; }
  int local_cols() const { return cols() + 2 * k; }
  int global_row(int r) const { return rlo - k + r; }
  int global_col(int c) const { return clo - k + c; }
};

}  // namespace

Distributed2dResult stabilize_distributed_2d(const Field& initial,
                                             const Distributed2dOptions& opt) {
  const int H = initial.height(), W = initial.width();
  const int Py = opt.ranks_y, Px = opt.ranks_x, k = opt.halo_depth;
  PEACHY_REQUIRE(Py >= 1 && Px >= 1, "process grid must be >= 1x1");
  PEACHY_REQUIRE(k >= 1, "halo depth must be >= 1, got " << k);
  PEACHY_REQUIRE(H >= Py && W >= Px,
                 "grid " << H << "x" << W << " too small for " << Py << "x"
                         << Px << " ranks");

  // Rank 0 ships the gathered field home as a result blob — worker ranks
  // may be separate processes, so nothing is written through captures.
  const mpp::RunOutcome outcome = mpp::run_world(Py * Px, opt.run, [&](
                                                     mpp::Comm& comm) {
    Block2d blk;
    blk.py = comm.rank() / Px;
    blk.px = comm.rank() % Px;
    blk.rlo = blk.py * H / Py;
    blk.rhi = (blk.py + 1) * H / Py;
    blk.clo = blk.px * W / Px;
    blk.chi = (blk.px + 1) * W / Px;
    blk.k = k;

    const int LR = blk.local_rows(), LC = blk.local_cols();
    Grid2D<Cell> cur(LR, LC, 0), next(LR, LC, 0);
    for (int r = 0; r < LR; ++r) {
      const int gy = blk.global_row(r);
      if (gy < 0 || gy >= H) continue;
      for (int c = 0; c < LC; ++c) {
        const int gx = blk.global_col(c);
        if (gx < 0 || gx >= W) continue;
        cur(r, c) = initial.at(gy, gx);
      }
    }
    next = cur;

    const int north = blk.py > 0 ? comm.rank() - Px : -1;
    const int south = blk.py < Py - 1 ? comm.rank() + Px : -1;
    const int west = blk.px > 0 ? comm.rank() - 1 : -1;
    const int east = blk.px < Px - 1 ? comm.rank() + 1 : -1;
    constexpr int kTagSouth = 1, kTagNorth = 2, kTagEast = 3, kTagWest = 4;

    // Packed strip buffers (reused each round).
    std::vector<Cell> row_out(static_cast<std::size_t>(k) * blk.cols());
    std::vector<Cell> row_in(row_out.size());
    std::vector<Cell> col_out(static_cast<std::size_t>(k) * LR);
    std::vector<Cell> col_in(col_out.size());

    auto pack_rows = [&](int r0, std::vector<Cell>& buf) {
      std::size_t i = 0;
      for (int r = r0; r < r0 + k; ++r)
        for (int c = k; c < k + blk.cols(); ++c) buf[i++] = cur(r, c);
    };
    auto unpack_rows = [&](int r0, const std::vector<Cell>& buf) {
      std::size_t i = 0;
      for (int r = r0; r < r0 + k; ++r)
        for (int c = k; c < k + blk.cols(); ++c) cur(r, c) = buf[i++];
    };
    auto pack_cols = [&](int c0, std::vector<Cell>& buf) {
      std::size_t i = 0;
      for (int c = c0; c < c0 + k; ++c)
        for (int r = 0; r < LR; ++r) buf[i++] = cur(r, c);
    };
    auto unpack_cols = [&](int c0, const std::vector<Cell>& buf) {
      std::size_t i = 0;
      for (int c = c0; c < c0 + k; ++c)
        for (int r = 0; r < LR; ++r) cur(r, c) = buf[i++];
    };

    bool globally_stable = false;
    int round = 0;
    // Resume from the last committed checkpoint, if any: each rank gets its
    // own slab back and the loop continues at the recorded round.
    if (comm.checkpointing()) {
      if (auto blob = comm.restore()) {
        detail::SlabBlob slab = detail::decode_slab(*blob, LR, LC);
        round = slab.round;
        cur = std::move(slab.grid);
        next = cur;
      }
    }
    for (;;) {
      if (opt.max_rounds > 0 && round >= opt.max_rounds) break;

      obs::Span exchange("sandpile.ghost_exchange", "sandpile");
      exchange.arg("rank", comm.rank());
      exchange.arg("round", round);

      // Phase 1: vertical exchange (owned-column strips).
      if (north >= 0) {
        pack_rows(k, row_out);
        // Packed strips ride the zero-copy lane as byte views.
        comm.send(north, kTagNorth, std::as_bytes(std::span(row_out)));
      }
      if (south >= 0) {
        pack_rows(blk.rows(), row_out);
        comm.send(south, kTagSouth, std::as_bytes(std::span(row_out)));
      }
      if (north >= 0) {
        comm.recv(north, kTagSouth, row_in.data(), row_in.size());
        unpack_rows(0, row_in);
      }
      if (south >= 0) {
        comm.recv(south, kTagNorth, row_in.data(), row_in.size());
        unpack_rows(blk.rows() + k, row_in);
      }

      // Phase 2: horizontal exchange over the full local height — the
      // strips include the rows just received, which carries the corners.
      if (west >= 0) {
        pack_cols(k, col_out);
        comm.send(west, kTagWest, std::as_bytes(std::span(col_out)));
      }
      if (east >= 0) {
        pack_cols(blk.cols(), col_out);
        comm.send(east, kTagEast, std::as_bytes(std::span(col_out)));
      }
      if (west >= 0) {
        comm.recv(west, kTagEast, col_in.data(), col_in.size());
        unpack_cols(0, col_in);
      }
      if (east >= 0) {
        comm.recv(east, kTagWest, col_in.data(), col_in.size());
        unpack_cols(blk.cols() + k, col_in);
      }
      exchange.close();

      // k synchronous sub-iterations on a band shrinking in both axes.
      bool changed_owned = false;
      for (int j = 0; j < k; ++j) {
        for (int r = j + 1; r < LR - j - 1; ++r) {
          const int gy = blk.global_row(r);
          if (gy < 0 || gy >= H) continue;
          const Cell* up = cur.row(r - 1);
          const Cell* mid = cur.row(r);
          const Cell* down = cur.row(r + 1);
          Cell* out = next.row(r);
          const bool owned_row = r >= k && r < k + blk.rows();
          for (int c = j + 1; c < LC - j - 1; ++c) {
            const int gx = blk.global_col(c);
            if (gx < 0 || gx >= W) continue;
            const Cell v = mid[c] % kTopple + mid[c - 1] / kTopple +
                           mid[c + 1] / kTopple + up[c] / kTopple +
                           down[c] / kTopple;
            out[c] = v;
            if (owned_row && c >= k && c < k + blk.cols() && v != mid[c])
              changed_owned = true;
          }
        }
        std::swap(cur, next);
      }

      ++round;
      if (!comm.allreduce_or(changed_owned)) {
        globally_stable = true;
        break;
      }
      // Checkpoint right after the allreduce: every rank is provably at the
      // same round here, so the saved cut is globally consistent.
      if (opt.checkpoint_every > 0 && comm.checkpointing() &&
          round % opt.checkpoint_every == 0) {
        const std::vector<std::byte> slab = detail::encode_slab(round, cur);
        comm.checkpoint(slab.data(), slab.size());
      }
    }

    // Gather owned blocks at rank 0 (rank order; root reassembles from the
    // known partition).
    std::vector<Cell> mine;
    mine.reserve(static_cast<std::size_t>(blk.rows()) * blk.cols());
    for (int r = k; r < k + blk.rows(); ++r)
      for (int c = k; c < k + blk.cols(); ++c) mine.push_back(cur(r, c));
    std::vector<Cell> all = comm.gather(0, mine);
    if (comm.rank() == 0) {
      PEACHY_CHECK(all.size() == static_cast<std::size_t>(H) * W);
      Field gathered(H, W);
      std::size_t i = 0;
      for (int r = 0; r < Py * Px; ++r) {
        const int py = r / Px, px = r % Px;
        const int rlo = py * H / Py, rhi = (py + 1) * H / Py;
        const int clo = px * W / Px, chi = (px + 1) * W / Px;
        for (int y = rlo; y < rhi; ++y)
          for (int x = clo; x < chi; ++x) gathered.at(y, x) = all[i++];
      }
      const std::vector<std::byte> blob =
          detail::encode_result(gathered, globally_stable, round);
      comm.set_result(blob.data(), blob.size());
    }
  });

  detail::ResultBlob blob = detail::decode_result(outcome.rank0_result);
  Distributed2dResult result{std::move(blob.field), blob.stable,
                             blob.rounds,          blob.rounds * k,
                             outcome.comm,         outcome.net,
                             outcome.restarts};
  return result;
}

}  // namespace peachy::sandpile
