// The sandpile compute kernels of paper Fig. 2, as pap tile kernels.
//
// SyncEngine  — double-buffered synchronous update: every cell's new value
//               is computed from the old buffer (sync_compute_new_state).
// AsyncEngine — in-place update: an unstable cell pushes grains into its
//               neighbours immediately (async_compute_new_state). Race-free
//               in parallel only under Runner's checkerboard waves.
//
// SyncEngine offers two code paths for the same math:
//  * compute_tile        — straightforward per-cell loop through Grid2D
//                          accessors (the "given code" students start from);
//  * compute_tile_vector — the assignment-3 rewrite: raw row pointers and a
//                          branch-free inner loop the compiler can
//                          auto-vectorize. The sink padding makes it legal
//                          for inner *and* outer tiles.
#pragma once

#include "pap/runner.hpp"
#include "sandpile/field.hpp"

namespace peachy::sandpile {

/// Double-buffered synchronous kernel.
class SyncEngine {
 public:
  /// Binds to `field`; the auxiliary buffer starts as a copy so that tiles
  /// skipped by lazy evaluation always satisfy cur == next (see runner.hpp).
  explicit SyncEngine(Field& field);

  Field& field() { return *field_; }

  /// Generic per-cell path. Returns true if any cell of the tile changed.
  bool compute_tile(const pap::Tile& t);

  /// Vector-friendly path (identical results, auto-vectorizable loop).
  bool compute_tile_vector(const pap::Tile& t);

  /// Publishes the new iteration: swaps current and next buffers.
  /// Must run between iterations (single-threaded context).
  void swap_buffers();

  /// Convenience adapters for pap::Runner.
  pap::TileKernel kernel(bool vectorized = false);
  pap::IterationHook swap_hook(pap::IterationHook chained = nullptr);

 private:
  Field* field_;
  Grid2D<Cell> next_;
};

/// In-place asynchronous kernel.
class AsyncEngine {
 public:
  explicit AsyncEngine(Field& field) : field_(&field) {}

  Field& field() { return *field_; }

  /// One sweep over the tile: each unstable cell topples once (Fig. 2
  /// bottom). Returns true if any cell toppled.
  bool sweep_tile(const pap::Tile& t);

  /// Sweeps the tile until no cell inside it is unstable (the classic
  /// "drain the tile locally" optimization). Spills into neighbouring
  /// tiles/sink are applied in place. Returns true if anything toppled.
  bool drain_tile(const pap::Tile& t);

  /// Adapter for pap::Runner; `drain` selects drain_tile over sweep_tile.
  pap::TileKernel kernel(bool drain = true);

 private:
  Field* field_;
};

}  // namespace peachy::sandpile
