// The Bak–Tang–Wiesenfeld Abelian sandpile state (paper §II.A).
//
// A sandpile is an N x M 4-connected cellular automaton whose border cells
// form a special "sink" cell. A cell holding g >= 4 grains is unstable and
// gives g/4 grains to each of its 4 neighbours, keeping g%4. Dhar proved the
// fixed point is independent of the toppling order (the *abelian* property),
// which is what makes every parallelization strategy in the assignment
// legal — and what our property tests check.
//
// Storage is a (H+2) x (W+2) padded grid: the 1-cell frame is the sink.
// Interior coordinates are 0-based; Field::at(y, x) addresses interior cell
// (y, x) regardless of padding.
#pragma once

#include <cstdint>
#include <string>

#include "core/grid2d.hpp"
#include "core/image.hpp"

namespace peachy::sandpile {

/// Grain count of one cell. 32 bits comfortably holds the paper's largest
/// initial pile (25 000 grains).
using Cell = std::uint32_t;

/// Number of grains at which a cell becomes unstable.
inline constexpr Cell kTopple = 4;

/// Sandpile state with sink padding.
class Field {
 public:
  /// Creates a height x width pile with all cells empty.
  Field(int height, int width);

  int height() const { return height_; }
  int width() const { return width_; }

  /// Interior cell access (0-based interior coordinates).
  Cell& at(int y, int x) { return padded_(y + 1, x + 1); }
  Cell at(int y, int x) const { return padded_(y + 1, x + 1); }

  /// The padded grid, for kernels that index with the sink frame
  /// (padded coordinates: interior is [1..height] x [1..width]).
  Grid2D<Cell>& padded() { return padded_; }
  const Grid2D<Cell>& padded() const { return padded_; }

  /// Total grains on interior cells.
  std::int64_t interior_grains() const;

  /// Grains accumulated in the sink frame (asynchronous kernels deposit
  /// there; synchronous kernels never write the frame).
  std::int64_t sink_grains() const;

  /// True when every interior cell holds fewer than kTopple grains.
  bool is_stable() const;

  /// Number of interior cells holding exactly `grains` grains.
  std::int64_t count_cells_with(Cell grains) const;

  /// Renders the interior with the Fig. 1 palette (0=black, 1=green,
  /// 2=blue, 3=red, unstable=white).
  Image render() const;

  /// Interior-only equality (ignores whatever the sink frame holds).
  bool same_interior(const Field& other) const;

  friend bool operator==(const Field& a, const Field& b) {
    return a.padded_ == b.padded_;
  }

 private:
  int height_, width_;
  Grid2D<Cell> padded_;
};

// --- Initial configurations used by the paper's experiments ---------------

/// Fig. 1a: `grains` grains dropped on the center cell.
Field center_pile(int height, int width, Cell grains);

/// Fig. 1b: every interior cell starts with `grains` grains (4 in Fig. 1b).
Field uniform_pile(int height, int width, Cell grains);

/// Fig. 3's "sparse configuration": each cell independently receives a
/// uniform load in [lo, hi] with probability `density`, else stays empty.
/// Deterministic in `seed`.
Field sparse_random_pile(int height, int width, double density, Cell lo,
                         Cell hi, std::uint64_t seed);

/// The maximal stable configuration (every cell at 3 grains) — the starting
/// point for sandpile-group experiments (src/sandpile/theory.hpp).
Field max_stable_pile(int height, int width);

// --- Reference solver ------------------------------------------------------

/// Stabilizes `field` in place with a sequential worklist of unstable cells
/// (the oracle all parallel variants are tested against). Returns the number
/// of topple operations performed.
std::int64_t stabilize_reference(Field& field);

}  // namespace peachy::sandpile
