// Sandpile-group utilities — the "cool and inspirational" extension layer.
//
// Stable sandpile configurations form an abelian group (the sandpile /
// critical group) under "add cell-wise, then stabilize". Its identity
// element is itself a famously intricate fractal image — a natural
// follow-up artifact to Fig. 1 and the basis of the sandpile_identity
// example. These helpers implement the group operation and the classic
// identity construction id = S(2m - S(2m)) with m the all-3s configuration.
#pragma once

#include "sandpile/field.hpp"

namespace peachy::sandpile {

/// Cell-wise sum of two piles of identical shape (no stabilization).
Field add(const Field& a, const Field& b);

/// Cell-wise difference a - b; requires a >= b cell-wise.
Field subtract(const Field& a, const Field& b);

/// Cell-wise scalar multiple.
Field scale(const Field& a, Cell factor);

/// The sandpile group operation: stabilize(a + b).
Field group_add(const Field& a, const Field& b);

/// The identity element of the h x w sandpile group:
/// id = S(2m - S(2m)), m = max_stable_pile(h, w).
Field group_identity(int height, int width);

/// True if `stable` is a recurrent configuration (passes Dhar's burning
/// test: toppling every border-adjacent "virtual sink fire" exactly once
/// burns every cell exactly once). Input must be stable.
bool is_recurrent(const Field& stable);

}  // namespace peachy::sandpile
