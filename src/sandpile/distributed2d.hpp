// 2-D block-decomposed distributed sandpile (Ghost Cell Pattern, full
// form). The fourth assignment's 1-D row decomposition (distributed.hpp)
// sends 2 messages of W*k cells per rank per round; splitting both
// dimensions sends 4 smaller messages whose total volume scales with the
// block *perimeter* — the surface-to-volume argument of Kjolstad & Snir's
// pattern. Corners (needed by the 5-point stencil once k >= 2) are carried
// by the classic two-phase exchange: rows first, then columns including
// the freshly received halo rows.
#pragma once

#include "mpp/mpp.hpp"
#include "sandpile/field.hpp"

namespace peachy::sandpile {

/// Configuration of a 2-D distributed stabilization.
struct Distributed2dOptions {
  int ranks_y = 2;       ///< process-grid rows
  int ranks_x = 2;       ///< process-grid columns
  int halo_depth = 1;    ///< k: iterations per halo exchange
  int max_rounds = 0;    ///< 0 = run until globally stable
  /// Checkpoint every N exchange rounds (0 = never); see
  /// DistributedOptions::checkpoint_every for the directory requirements.
  int checkpoint_every = 0;
  mpp::RunOptions run;   ///< which substrate carries the halos
};

/// Outcome of a 2-D distributed stabilization.
struct Distributed2dResult {
  Field field;
  bool stable = false;
  int rounds = 0;
  int iterations = 0;
  mpp::CommStats comm;
  mpp::NetStats net;     ///< frame-level counters (tcp only)
  int restarts = 0;      ///< supervised world restarts (0 = clean run)
};

/// Stabilizes `initial` on a ranks_y x ranks_x process grid with depth-k
/// ghost rings and synchronous updates. Requires height >= ranks_y and
/// width >= ranks_x. The input is not modified.
Distributed2dResult stabilize_distributed_2d(const Field& initial,
                                             const Distributed2dOptions&
                                                 options);

}  // namespace peachy::sandpile
