#include "sandpile/soc.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace peachy::sandpile {

Avalanche drop_grain(Field& field, int y, int x) {
  PEACHY_REQUIRE(y >= 0 && y < field.height() && x >= 0 && x < field.width(),
                 "drop outside the pile: (" << y << "," << x << ")");
  const std::int64_t sink_before = field.sink_grains();
  auto& g = field.padded();
  ++field.at(y, x);

  Avalanche av;
  std::set<std::pair<int, int>> toppled_cells;

  // Parallel-update waves: all currently unstable cells topple together;
  // the wave count is the avalanche duration (BTW's time dimension).
  std::vector<std::pair<int, int>> wave;
  if (field.at(y, x) >= kTopple) wave.emplace_back(y, x);
  while (!wave.empty()) {
    ++av.duration;
    std::set<std::pair<int, int>> next;
    for (const auto [cy, cx] : wave) {
      const int py = cy + 1, px = cx + 1;
      const Cell grains = g(py, px);
      if (grains < kTopple) continue;  // drained by an earlier wave member
      const Cell share = grains / kTopple;
      g(py, px) = grains % kTopple;
      g(py - 1, px) += share;
      g(py + 1, px) += share;
      g(py, px - 1) += share;
      g(py, px + 1) += share;
      ++av.size;
      toppled_cells.emplace(cy, cx);
      for (const auto [ny, nx] : {std::pair{cy - 1, cx}, {cy + 1, cx},
                                  {cy, cx - 1}, {cy, cx + 1}}) {
        if (ny >= 0 && ny < field.height() && nx >= 0 && nx < field.width() &&
            field.at(ny, nx) >= kTopple)
          next.emplace(ny, nx);
      }
      if (g(py, px) >= kTopple) next.emplace(cy, cx);
    }
    wave.assign(next.begin(), next.end());
  }

  av.area = static_cast<std::int64_t>(toppled_cells.size());
  av.lost = field.sink_grains() - sink_before;
  return av;
}

std::int64_t drive_to_criticality(Field& field, std::int64_t grains,
                                  Rng& rng) {
  PEACHY_REQUIRE(grains >= 0, "negative grain count");
  std::int64_t topples = 0;
  for (std::int64_t i = 0; i < grains; ++i) {
    const int y = static_cast<int>(rng.uniform_int(0, field.height() - 1));
    const int x = static_cast<int>(rng.uniform_int(0, field.width() - 1));
    topples += drop_grain(field, y, x).size;
  }
  return topples;
}

std::vector<Avalanche> sample_avalanches(Field& field, std::int64_t drops,
                                         Rng& rng) {
  PEACHY_REQUIRE(drops >= 0, "negative drop count");
  std::vector<Avalanche> out;
  out.reserve(static_cast<std::size_t>(drops));
  for (std::int64_t i = 0; i < drops; ++i) {
    const int y = static_cast<int>(rng.uniform_int(0, field.height() - 1));
    const int x = static_cast<int>(rng.uniform_int(0, field.width() - 1));
    out.push_back(drop_grain(field, y, x));
  }
  return out;
}

std::vector<LogBin> log_binned(const std::vector<std::int64_t>& values,
                               std::int64_t* zeros) {
  std::int64_t zero_count = 0;
  std::int64_t max_value = 0;
  std::size_t positive = 0;
  for (std::int64_t v : values) {
    PEACHY_REQUIRE(v >= 0, "log binning needs non-negative values");
    if (v == 0) {
      ++zero_count;
    } else {
      ++positive;
      max_value = std::max(max_value, v);
    }
  }
  if (zeros != nullptr) *zeros = zero_count;

  std::vector<LogBin> bins;
  for (std::int64_t lo = 1; lo <= max_value; lo *= 2) {
    LogBin bin;
    bin.lo = lo;
    bin.hi = lo * 2;
    bins.push_back(bin);
  }
  for (std::int64_t v : values) {
    if (v <= 0) continue;
    const auto idx = static_cast<std::size_t>(
        std::floor(std::log2(static_cast<double>(v))));
    ++bins[std::min(idx, bins.size() - 1)].count;
  }
  for (LogBin& bin : bins) {
    const double width = static_cast<double>(bin.hi - bin.lo);
    bin.density = positive
                      ? static_cast<double>(bin.count) /
                            (static_cast<double>(positive) * width)
                      : 0.0;
  }
  return bins;
}

double power_law_exponent(const std::vector<LogBin>& bins,
                          std::int64_t min_count) {
  // Least-squares fit of log10(density) ~ -tau * log10(center).
  std::vector<std::pair<double, double>> points;
  for (const LogBin& bin : bins) {
    if (bin.count < min_count || bin.density <= 0) continue;
    const double center =
        std::sqrt(static_cast<double>(bin.lo) * static_cast<double>(bin.hi));
    points.emplace_back(std::log10(center), std::log10(bin.density));
  }
  PEACHY_REQUIRE(points.size() >= 2,
                 "need >= 2 usable bins for a power-law fit, got "
                     << points.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const auto& [px, py] : points) {
    sx += px;
    sy += py;
    sxx += px * px;
    sxy += px * py;
  }
  const double n = static_cast<double>(points.size());
  const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  return -slope;  // tau
}

}  // namespace peachy::sandpile
