// Serialization of a distributed stabilization's outcome into the rank-0
// result blob (mpp::Comm::set_result). Inside a thread world this is a
// round-trip through a vector; inside a spawned world it is the only road
// home — rank 0's worker process sends these bytes to the launcher over its
// rendezvous connection.
#pragma once

#include <cstddef>
#include <vector>

#include "core/error.hpp"
#include "net/wire.hpp"
#include "sandpile/field.hpp"

namespace peachy::sandpile::detail {

struct ResultBlob {
  Field field{1, 1};
  bool stable = false;
  bool aborted = false;
  int rounds = 0;
};

/// The status byte: 0 = ran out of rounds, 1 = globally stable, 2 = the
/// run was aborted (DistributedOptions::should_abort fired).
inline std::vector<std::byte> encode_result(const Field& field, bool stable,
                                            int rounds, bool aborted = false) {
  const int H = field.height(), W = field.width();
  std::vector<std::byte> blob;
  blob.reserve(13 + static_cast<std::size_t>(H) * W * sizeof(Cell));
  net::append_u32(blob, static_cast<std::uint32_t>(H));
  net::append_u32(blob, static_cast<std::uint32_t>(W));
  net::append_u32(blob, static_cast<std::uint32_t>(rounds));
  blob.push_back(static_cast<std::byte>(aborted ? 2 : (stable ? 1 : 0)));
  for (int y = 0; y < H; ++y)
    for (int x = 0; x < W; ++x) net::append_u32(blob, field.at(y, x));
  return blob;
}

inline ResultBlob decode_result(const std::vector<std::byte>& blob) {
  const std::byte* p = blob.data();
  const std::byte* end = p + blob.size();
  ResultBlob r;
  const int H = static_cast<int>(net::read_u32(p, end));
  const int W = static_cast<int>(net::read_u32(p, end));
  r.rounds = static_cast<int>(net::read_u32(p, end));
  PEACHY_REQUIRE(p < end, "truncated sandpile result blob");
  const int status = std::to_integer<int>(*p++);
  r.stable = status == 1;
  r.aborted = status == 2;
  r.field = Field(H, W);
  for (int y = 0; y < H; ++y)
    for (int x = 0; x < W; ++x)
      r.field.at(y, x) = static_cast<Cell>(net::read_u32(p, end));
  return r;
}

// --- Per-rank checkpoint slabs --------------------------------------------
// What one rank saves through mpp::Comm::checkpoint: the exchange round it
// completed plus its entire local buffer (owned cells, halos, and sink
// padding). Checkpoints are taken right after the termination allreduce, so
// every rank's slab describes the same global round — restoring the set and
// re-entering the loop continues the deterministic run exactly where the
// failed attempt stood.

struct SlabBlob {
  int round = 0;
  Grid2D<Cell> grid;
};

inline std::vector<std::byte> encode_slab(int round, const Grid2D<Cell>& grid) {
  std::vector<std::byte> blob;
  blob.reserve(12 + grid.size() * sizeof(Cell));
  net::append_u32(blob, static_cast<std::uint32_t>(round));
  net::append_u32(blob, static_cast<std::uint32_t>(grid.height()));
  net::append_u32(blob, static_cast<std::uint32_t>(grid.width()));
  for (std::size_t i = 0; i < grid.size(); ++i)
    net::append_u32(blob, grid.data()[i]);
  return blob;
}

/// `rows` x `cols` is the geometry this rank expects — a slab saved under a
/// different decomposition must fail loudly, not restore into the wrong shape.
inline SlabBlob decode_slab(const std::vector<std::byte>& blob, int rows,
                            int cols) {
  const std::byte* p = blob.data();
  const std::byte* end = p + blob.size();
  SlabBlob s;
  s.round = static_cast<int>(net::read_u32(p, end));
  const int h = static_cast<int>(net::read_u32(p, end));
  const int w = static_cast<int>(net::read_u32(p, end));
  PEACHY_REQUIRE(h == rows && w == cols,
                 "checkpoint slab is " << h << "x" << w << ", this rank needs "
                                       << rows << "x" << cols);
  s.grid = Grid2D<Cell>(h, w, 0);
  for (std::size_t i = 0; i < s.grid.size(); ++i)
    s.grid.data()[i] = static_cast<Cell>(net::read_u32(p, end));
  PEACHY_REQUIRE(p == end, "trailing garbage in checkpoint slab");
  return s;
}

}  // namespace peachy::sandpile::detail
