// Named sandpile solver variants — the ladder of the four assignments
// (§II.B): sequential baselines, OpenMP parallelization, tiling, lazy
// evaluation, vectorized kernels, and multi-wave asynchronous scheduling.
//
// Every variant stabilizes the same Field in place and returns run
// statistics; tests assert they all reach stabilize_reference's fixed point
// (Dhar's theorem in action).
#pragma once

#include <string>
#include <vector>

#include "pap/runner.hpp"
#include "sandpile/field.hpp"

namespace peachy::sandpile {

/// The solver variants students produce across the four assignments.
enum class Variant {
  kSeqSync,          ///< assignment 0 given code: sequential, double buffer
  kSeqAsync,         ///< assignment 0 given code: sequential, in place
  kOmpSync,          ///< assignment 1: OpenMP over row bands
  kOmpTiledSync,     ///< assignment 2: OpenMP over 2-D tiles
  kOmpLazySync,      ///< assignment 2: + lazy tile activation
  kOmpSyncVector,    ///< assignment 3: vector-friendly kernel, tiled + lazy
  kOmpAsyncWave,     ///< assignment 2/3: async kernel, checkerboard waves
  kOmpLazyAsyncWave, ///< the Fig. 3 configuration: lazy async waves
};

/// All variants, in assignment order.
const std::vector<Variant>& all_variants();

std::string to_string(Variant v);

/// Knobs shared by every variant.
struct VariantOptions {
  int threads = 0;                      ///< 0 = OpenMP default
  pap::Schedule schedule = pap::Schedule::kDynamic;
  int tile_h = 32, tile_w = 32;         ///< ignored by kSeq*/kOmpSync
  int max_iterations = 0;               ///< 0 = run to the fixed point
  TraceRecorder* trace = nullptr;       ///< optional Fig. 3-style tracing
  pap::IterationHook on_iteration;      ///< optional per-iteration callback
                                        ///< (runs after buffer swaps)
};

/// Outcome of running one variant.
struct VariantOutcome {
  Variant variant{};
  pap::RunResult run;
};

/// Stabilizes `field` in place with the chosen variant.
VariantOutcome run_variant(Variant v, Field& field,
                           const VariantOptions& options = {});

}  // namespace peachy::sandpile
