#include "core/table.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

#include "core/error.hpp"

namespace peachy {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  PEACHY_CHECK(!header_.empty());
}

void TextTable::row(std::vector<std::string> cells) {
  PEACHY_REQUIRE(cells.size() == header_.size(),
                 "row has " << cells.size() << " cells, header has "
                            << header_.size());
  body_.push_back(std::move(cells));
}

void TextTable::row(std::initializer_list<std::string> cells) {
  row(std::vector<std::string>(cells));
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s)
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' &&
        c != '+' && c != 'e' && c != 'E' && c != '%' && c != 'x')
      return false;
  return true;
}
}  // namespace

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> w(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
  for (const auto& r : body_)
    for (std::size_t c = 0; c < r.size(); ++c) w[c] = std::max(w[c], r[c].size());

  auto emit = [&](const std::vector<std::string>& r, bool align_numbers) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << "  ";
      const bool right = align_numbers && looks_numeric(r[c]);
      os << (right ? std::setw(static_cast<int>(w[c])) : std::setw(0));
      if (right) {
        os << r[c];
      } else {
        os << r[c] << std::string(w[c] - r[c].size(), ' ');
      }
    }
    os << '\n';
  };

  emit(header_, false);
  std::size_t total = 0;
  for (std::size_t c = 0; c < w.size(); ++c) total += w[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : body_) emit(r, true);
}

std::string TextTable::num(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

std::string TextTable::num(std::int64_t v) { return std::to_string(v); }

}  // namespace peachy
